package relstore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Snapshot telemetry, shared by every store in the process. The age gauge
// is the canary for snapshot leaks (a report that never calls Close pins
// version history forever); reclaims make version GC observable. Live
// snapshots and reclaims are labeled by partition: a snapshot pins every
// partition, so each open snapshot counts once under every partition
// label, and a skewed reclaim distribution shows which partitions carry
// the update-heavy workflows.
var (
	mSnapshots = telemetry.NewCounter("stampede_relstore_snapshots_total",
		"Point-in-time snapshots taken.")
	mSnapshotsLive = telemetry.NewGaugeVec("stampede_relstore_snapshots_live",
		"Snapshots currently open (pinning version history), by partition.", "partition")
	mVersionReclaims = telemetry.NewCounterVec("stampede_relstore_version_reclaims_total",
		"Dead row and index-posting versions reclaimed by version GC, by partition.", "partition")
)

func init() {
	telemetry.NewGaugeFunc("stampede_relstore_snapshot_oldest_age_seconds",
		"Age of the oldest open snapshot, in seconds; 0 when none is open.",
		oldestSnapshotAge)
}

// Process-wide registry of open snapshots' start times, feeding the
// oldest-age gauge across all stores.
var (
	snapAgeMu sync.Mutex
	snapAgeT0 = make(map[*Snapshot]time.Time)
)

func oldestSnapshotAge() float64 {
	snapAgeMu.Lock()
	defer snapAgeMu.Unlock()
	var oldest time.Time
	for _, t0 := range snapAgeT0 {
		if oldest.IsZero() || t0.Before(oldest) {
			oldest = t0
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return time.Since(oldest).Seconds()
}

// Reader is the read-only query surface shared by the live Store and a
// point-in-time Snapshot, so query code can run against either.
type Reader interface {
	Select(q Query) ([]Row, error)
	SelectOne(q Query) (Row, error)
	Get(tableName string, id int64) (Row, error)
	Count(tableName string) (int, error)
}

var (
	_ Reader = (*Store)(nil)
	_ Reader = (*Snapshot)(nil)
)

// Snapshot is an immutable point-in-time view across every table of every
// partition. It pins a vector of partition epochs acquired atomically with
// respect to multi-partition batches (see Store.pinAll), so a cross-table,
// cross-partition traversal can never observe a torn batch. Reads through
// a snapshot take no locks and return the stored (immutable) row versions
// without copying; the caller must not mutate them. A snapshot pins
// version history on every partition: Close releases it so version GC can
// reclaim superseded rows. Close is idempotent.
type Snapshot struct {
	s      *Store
	v      view
	pins   []*epochPin
	t0     time.Time
	closed atomic.Bool
}

// epochPin is one entry in a partition's pin registry: an epoch some
// reader (a Snapshot, or an in-flight Store-level read) can still observe,
// which that partition's GC horizon must therefore not pass.
type epochPin struct {
	epoch uint64
}

// Snapshot pins the newest published epoch of every partition and returns
// a consistent view of the whole store at that instant. Concurrent writers
// proceed unhindered; their changes are simply invisible to this snapshot.
func (s *Store) Snapshot() *Snapshot {
	pins := s.pinAll()
	sn := &Snapshot{
		s:    s,
		v:    makeView(s, pins, false),
		pins: pins,
		t0:   time.Now(),
	}
	snapAgeMu.Lock()
	snapAgeT0[sn] = sn.t0
	snapAgeMu.Unlock()
	mSnapshots.Inc()
	for _, p := range s.parts {
		p.mLive.Inc()
	}
	return sn
}

// Close releases the snapshot, unpinning its epochs for version GC.
func (sn *Snapshot) Close() {
	if sn.closed.Swap(true) {
		return
	}
	for i, p := range sn.s.parts {
		p.unpin(sn.pins[i])
		p.mLive.Dec()
	}
	snapAgeMu.Lock()
	delete(snapAgeT0, sn)
	snapAgeMu.Unlock()
}

// Epoch reports the sum of the snapshot's pinned partition epochs — the
// same monotonic store version Store.Epoch reports.
func (sn *Snapshot) Epoch() uint64 {
	var sum uint64
	for _, pv := range sn.v.parts {
		sum += pv.epoch
	}
	return sum
}

// Epochs reports the pinned per-partition epoch vector.
func (sn *Snapshot) Epochs() []uint64 {
	out := make([]uint64, len(sn.v.parts))
	for i, pv := range sn.v.parts {
		out[i] = pv.epoch
	}
	return out
}

// Select returns all rows matching the query as of the snapshot's epoch
// vector. Unlike Store.Select, the rows are not copies — they are the
// immutable stored versions and must not be mutated.
func (sn *Snapshot) Select(q Query) ([]Row, error) { return sn.v.sel(q) }

// SelectOne returns the single matching row, nil when none match, and an
// error when more than one matches.
func (sn *Snapshot) SelectOne(q Query) (Row, error) { return sn.v.selOne(q) }

// Get returns the row with the given primary key as of the snapshot's
// epoch vector, or nil when absent. The row must not be mutated.
func (sn *Snapshot) Get(tableName string, id int64) (Row, error) {
	return sn.v.get(tableName, id)
}

// Count returns the number of rows visible in the snapshot.
func (sn *Snapshot) Count(tableName string) (int, error) {
	total := 0
	found := false
	for _, pv := range sn.v.parts {
		t, ok := pv.ts.byName[tableName]
		if !ok {
			continue
		}
		found = true
		t.rows.Range(func(_ int64, c *rowChain) bool {
			if c.visibleAt(pv.epoch) != nil {
				total++
			}
			return true
		})
	}
	if !found {
		return 0, fmt.Errorf("relstore: no table %s", tableName)
	}
	return total, nil
}

// TableNames lists the snapshot's tables in creation order.
func (sn *Snapshot) TableNames() []string {
	return append([]string(nil), sn.v.parts[0].ts.order...)
}

// view is the read-side engine: one (table set, visibility epoch) pair per
// partition. Store reads build an ephemeral view at the newest epoch
// vector and clone results (callers may mutate them); Snapshot pins one
// view and returns the immutable versions directly.
type view struct {
	parts []partView
	clone bool
}

// partView is one partition's slice of a view. The epoch is loaded (inside
// pin) before the table set, so the table set can only be newer — a table
// created after the epoch resolves but holds no rows visible at it.
type partView struct {
	ts    *tableSet
	epoch uint64
}

func makeView(s *Store, pins []*epochPin, clone bool) view {
	v := view{parts: make([]partView, len(s.parts)), clone: clone}
	for i, p := range s.parts {
		v.parts[i] = partView{ts: p.tables.Load(), epoch: pins[i].epoch}
	}
	return v
}

// pinnedView captures the current epoch vector and table sets for one
// Store-level read, registering each epoch in its partition's pin registry
// so version GC cannot reclaim history the view can still see while the
// read is in flight; the release func must be called when the read
// completes.
func (s *Store) pinnedView(clone bool) (view, func()) {
	pins := s.pinAll()
	return makeView(s, pins, clone), func() {
		for i, p := range s.parts {
			p.unpin(pins[i])
		}
	}
}

func (v view) maybeClone(row Row) Row {
	if v.clone {
		return row.Clone()
	}
	return row
}

func (v view) get(tableName string, id int64) (Row, error) {
	found := false
	for _, pv := range v.parts {
		t, ok := pv.ts.byName[tableName]
		if !ok {
			continue
		}
		found = true
		c, ok := t.rows.Load(id)
		if !ok {
			continue
		}
		ver := c.visibleAt(pv.epoch)
		if ver == nil {
			continue
		}
		return v.maybeClone(ver.row), nil
	}
	if !found {
		return nil, fmt.Errorf("relstore: no table %s", tableName)
	}
	return nil, nil
}
