package relstore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Snapshot telemetry, shared by every store in the process. The age gauge
// is the canary for snapshot leaks (a report that never calls Close pins
// version history forever); reclaims make version GC observable.
var (
	mSnapshots = telemetry.NewCounter("stampede_relstore_snapshots_total",
		"Point-in-time snapshots taken.")
	mSnapshotsLive = telemetry.NewGauge("stampede_relstore_snapshots_live",
		"Snapshots currently open (pinning version history).")
	mVersionReclaims = telemetry.NewCounter("stampede_relstore_version_reclaims_total",
		"Dead row and index-posting versions reclaimed by version GC.")
)

func init() {
	telemetry.NewGaugeFunc("stampede_relstore_snapshot_oldest_age_seconds",
		"Age of the oldest open snapshot, in seconds; 0 when none is open.",
		oldestSnapshotAge)
}

// Process-wide registry of open snapshots' start times, feeding the
// oldest-age gauge across all stores.
var (
	snapAgeMu sync.Mutex
	snapAgeT0 = make(map[*Snapshot]time.Time)
)

func oldestSnapshotAge() float64 {
	snapAgeMu.Lock()
	defer snapAgeMu.Unlock()
	var oldest time.Time
	for _, t0 := range snapAgeT0 {
		if oldest.IsZero() || t0.Before(oldest) {
			oldest = t0
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return time.Since(oldest).Seconds()
}

// Reader is the read-only query surface shared by the live Store and a
// point-in-time Snapshot, so query code can run against either.
type Reader interface {
	Select(q Query) ([]Row, error)
	SelectOne(q Query) (Row, error)
	Get(tableName string, id int64) (Row, error)
	Count(tableName string) (int, error)
}

var (
	_ Reader = (*Store)(nil)
	_ Reader = (*Snapshot)(nil)
)

// Snapshot is an immutable point-in-time view across every table of a
// store. Reads through a snapshot take no locks and return the stored
// (immutable) row versions without copying; the caller must not mutate
// them. A snapshot pins version history: Close releases it so version GC
// can reclaim superseded rows. Close is idempotent.
type Snapshot struct {
	s      *Store
	v      view
	pin    *epochPin
	t0     time.Time
	closed atomic.Bool
}

// epochPin is one entry in the store's pin registry: an epoch some reader
// (a Snapshot, or an in-flight Store-level read) can still observe, which
// the GC horizon must therefore not pass.
type epochPin struct {
	epoch uint64
}

// pin loads the newest published epoch and registers it as a floor for
// the version-GC horizon, in one snapMu critical section. gcHorizon reads
// minLive under the same mutex, so a writer can never compute a horizon
// above an epoch a concurrent registration has loaded but not yet
// published — either the registration completes first and minLive
// accounts for it, or the writer's horizon read happens first and the
// registration then loads an epoch at or above everything being pruned.
func (s *Store) pin() *epochPin {
	s.snapMu.Lock()
	p := &epochPin{epoch: s.epoch.Load()}
	s.pins[p] = struct{}{}
	if p.epoch < s.minLive.Load() {
		s.minLive.Store(p.epoch)
	}
	s.snapMu.Unlock()
	return p
}

// unpin releases a pin and recomputes the GC floor.
func (s *Store) unpin(p *epochPin) {
	s.snapMu.Lock()
	delete(s.pins, p)
	min := ^uint64(0)
	for q := range s.pins {
		if q.epoch < min {
			min = q.epoch
		}
	}
	s.minLive.Store(min)
	s.snapMu.Unlock()
}

// Snapshot pins the newest published epoch and returns a consistent view
// of the whole store at that instant. Concurrent writers proceed
// unhindered; their changes are simply invisible to this snapshot.
func (s *Store) Snapshot() *Snapshot {
	p := s.pin()
	sn := &Snapshot{
		s:   s,
		v:   view{ts: s.tables.Load(), epoch: p.epoch},
		pin: p,
		t0:  time.Now(),
	}
	snapAgeMu.Lock()
	snapAgeT0[sn] = sn.t0
	snapAgeMu.Unlock()
	mSnapshots.Inc()
	mSnapshotsLive.Inc()
	return sn
}

// Close releases the snapshot, unpinning its epoch for version GC.
func (sn *Snapshot) Close() {
	if sn.closed.Swap(true) {
		return
	}
	sn.s.unpin(sn.pin)
	snapAgeMu.Lock()
	delete(snapAgeT0, sn)
	snapAgeMu.Unlock()
	mSnapshotsLive.Dec()
}

// Epoch reports the epoch this snapshot is pinned to.
func (sn *Snapshot) Epoch() uint64 { return sn.v.epoch }

// Select returns all rows matching the query as of the snapshot's epoch.
// Unlike Store.Select, the rows are not copies — they are the immutable
// stored versions and must not be mutated.
func (sn *Snapshot) Select(q Query) ([]Row, error) { return sn.v.sel(q) }

// SelectOne returns the single matching row, nil when none match, and an
// error when more than one matches.
func (sn *Snapshot) SelectOne(q Query) (Row, error) { return sn.v.selOne(q) }

// Get returns the row with the given primary key as of the snapshot's
// epoch, or nil when absent. The row must not be mutated.
func (sn *Snapshot) Get(tableName string, id int64) (Row, error) {
	return sn.v.get(tableName, id)
}

// Count returns the number of rows visible in the snapshot.
func (sn *Snapshot) Count(tableName string) (int, error) {
	t, ok := sn.v.ts.byName[tableName]
	if !ok {
		return 0, fmt.Errorf("relstore: no table %s", tableName)
	}
	n := 0
	t.rows.Range(func(_ int64, c *rowChain) bool {
		if c.visibleAt(sn.v.epoch) != nil {
			n++
		}
		return true
	})
	return n, nil
}

// TableNames lists the snapshot's tables in creation order.
func (sn *Snapshot) TableNames() []string {
	return append([]string(nil), sn.v.ts.order...)
}

// view is the read-side engine: an immutable table set plus a visibility
// epoch. Store reads build an ephemeral view at the newest epoch and clone
// results (callers may mutate them); Snapshot pins one view and returns
// the immutable versions directly.
type view struct {
	ts    *tableSet
	epoch uint64
	clone bool
}

// pinnedView captures the current epoch and table set for one Store-level
// read, registering the epoch in the pin registry so version GC cannot
// reclaim history the view can still see while the read is in flight; the
// release func must be called when the read completes. The epoch is loaded
// (inside pin) before the table set, so the table set can only be newer —
// a table created after the epoch resolves but holds no rows visible at it.
func (s *Store) pinnedView(clone bool) (view, func()) {
	p := s.pin()
	return view{ts: s.tables.Load(), epoch: p.epoch, clone: clone}, func() { s.unpin(p) }
}

func (v view) maybeClone(row Row) Row {
	if v.clone {
		return row.Clone()
	}
	return row
}

func (v view) get(tableName string, id int64) (Row, error) {
	t, ok := v.ts.byName[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %s", tableName)
	}
	c, ok := t.rows.Load(id)
	if !ok {
		return nil, nil
	}
	ver := c.visibleAt(v.epoch)
	if ver == nil {
		return nil, nil
	}
	return v.maybeClone(ver.row), nil
}
