package relstore

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSnapshotPointInTime: a snapshot keeps seeing the state at its epoch
// while the live store moves on through inserts, updates and deletes.
func TestSnapshotPointInTime(t *testing.T) {
	s := newTestStore(t)
	wf, err := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := s.Insert("job", Row{"wf_id": wf, "exec_job_id": "a", "runtime": 1.0})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Insert("job", Row{"wf_id": wf, "exec_job_id": "b", "runtime": 2.0})
	if err != nil {
		t.Fatal(err)
	}

	sn := s.Snapshot()
	defer sn.Close()

	// Mutate after the snapshot: update j1, delete j2, insert j3.
	if err := s.Update("job", j1, Row{"runtime": 99.0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("job", j2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("job", Row{"wf_id": wf, "exec_job_id": "c"}); err != nil {
		t.Fatal(err)
	}

	// The snapshot still sees the original two rows with original values.
	row, err := sn.Get("job", j1)
	if err != nil || row == nil {
		t.Fatalf("snapshot Get(j1) = %v, %v", row, err)
	}
	if rt := row["runtime"].(float64); rt != 1.0 {
		t.Fatalf("snapshot sees runtime %v, want pre-update 1.0", rt)
	}
	if row, err := sn.Get("job", j2); err != nil || row == nil {
		t.Fatalf("snapshot lost deleted row: %v, %v", row, err)
	}
	if n, err := sn.Count("job"); err != nil || n != 2 {
		t.Fatalf("snapshot Count = %d, %v, want 2", n, err)
	}
	rows, err := sn.Select(Query{Table: "job", Conds: []Cond{Eq("wf_id", wf)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("snapshot indexed Select = %d rows, want 2", len(rows))
	}

	// The live store sees the new state.
	live, err := s.Get("job", j1)
	if err != nil {
		t.Fatal(err)
	}
	if rt := live["runtime"].(float64); rt != 99.0 {
		t.Fatalf("live store sees runtime %v, want 99.0", rt)
	}
	if row, _ := s.Get("job", j2); row != nil {
		t.Fatalf("live store still has deleted row %v", row)
	}
	if n, _ := s.Count("job"); n != 2 { // j1 + j3
		t.Fatalf("live Count = %d, want 2", n)
	}

	// A fresh snapshot sees the new state too.
	sn2 := s.Snapshot()
	defer sn2.Close()
	if row, _ := sn2.Get("job", j2); row != nil {
		t.Fatalf("new snapshot resurrected deleted row %v", row)
	}
}

// TestSelectOrderDeterministic: indexed, unique-probe and scan paths all
// return rows in primary-key order, even when rows were inserted out of
// index-key order and updated in between (regression for ordering drift
// between the index path and the scan path).
func TestSelectOrderDeterministic(t *testing.T) {
	s := newTestStore(t)
	wf, err := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	if err != nil {
		t.Fatal(err)
	}
	// Insert with exec_job_id values deliberately out of order relative to
	// assigned primary keys.
	names := []string{"z", "m", "a", "q", "b"}
	ids := make([]int64, len(names))
	for i, name := range names {
		id, err := s.Insert("job", Row{"wf_id": wf, "exec_job_id": name})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// Churn: update two rows so their index postings are re-created (a
	// naive newest-first posting walk would move them to the front).
	if err := s.Update("job", ids[0], Row{"runtime": 1.5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Update("job", ids[2], Row{"runtime": 2.5}); err != nil {
		t.Fatal(err)
	}

	assertPKOrder := func(label string, rows []Row, wantLen int) {
		t.Helper()
		if len(rows) != wantLen {
			t.Fatalf("%s: %d rows, want %d", label, len(rows), wantLen)
		}
		for i := 1; i < len(rows); i++ {
			if rows[i-1].ID() >= rows[i].ID() {
				t.Fatalf("%s: ids out of order: %d before %d", label, rows[i-1].ID(), rows[i].ID())
			}
		}
	}

	// Indexed path (wf_id is indexed on the job table).
	rows, err := s.Select(Query{Table: "job", Conds: []Cond{Eq("wf_id", wf)}})
	if err != nil {
		t.Fatal(err)
	}
	assertPKOrder("indexed", rows, len(names))

	// Scan path (no index covers runtime).
	rows, err = s.Select(Query{Table: "job"})
	if err != nil {
		t.Fatal(err)
	}
	assertPKOrder("scan", rows, len(names))

	// Same guarantees through a snapshot.
	sn := s.Snapshot()
	defer sn.Close()
	rows, err = sn.Select(Query{Table: "job", Conds: []Cond{Eq("wf_id", wf)}})
	if err != nil {
		t.Fatal(err)
	}
	assertPKOrder("snapshot indexed", rows, len(names))
	rows, err = sn.Select(Query{Table: "job"})
	if err != nil {
		t.Fatal(err)
	}
	assertPKOrder("snapshot scan", rows, len(names))
}

// TestSnapshotCrossTableConsistency: a snapshot is a point in time across
// all tables, so reading the child table before the parent table (the
// torn-read direction) still resolves every foreign key.
func TestSnapshotCrossTableConsistency(t *testing.T) {
	s := newTestStore(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			wf, err := s.Insert("workflow", Row{"wf_uuid": fmt.Sprintf("u%d", i), "ts": now})
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 3; j++ {
				if _, err := s.Insert("job", Row{"wf_id": wf, "exec_job_id": fmt.Sprintf("j%d", j)}); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for r := 0; r < 200; r++ {
		sn := s.Snapshot()
		// Deliberately read children first, parents second: without a
		// point-in-time view this is the racy order.
		jobs, err := sn.Select(Query{Table: "job"})
		if err != nil {
			t.Fatal(err)
		}
		wfs, err := sn.Select(Query{Table: "workflow"})
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int64]bool, len(wfs))
		for _, w := range wfs {
			seen[w.ID()] = true
		}
		for _, j := range jobs {
			if !seen[j["wf_id"].(int64)] {
				t.Fatalf("torn read: job %d references workflow %v missing from the same snapshot",
					j.ID(), j["wf_id"])
			}
		}
		sn.Close()
	}
	close(stop)
	wg.Wait()
}

// TestUpdateDeleteVsSnapshotStress: concurrent snapshots racing Update and
// Delete always observe internally consistent rows — the two columns every
// Update writes in lockstep never diverge, and a row read twice within one
// snapshot never changes. Run with -race.
func TestUpdateDeleteVsSnapshotStress(t *testing.T) {
	s := newTestStore(t)
	wf, err := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	if err != nil {
		t.Fatal(err)
	}
	const nRows = 8
	ids := make([]int64, nRows)
	for i := range ids {
		id, err := s.Insert("job", Row{"wf_id": wf, "exec_job_id": fmt.Sprintf("j%d", i), "runtime": 0.0, "done": false})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: runtime and done move in lockstep
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := ids[i%nRows]
			if i%37 == 0 {
				if err := s.Delete("job", id); err != nil {
					t.Error(err)
					return
				}
				nid, err := s.Insert("job", Row{
					"wf_id": wf, "exec_job_id": fmt.Sprintf("j%d", i%nRows),
					"runtime": float64(i), "done": i%2 == 0,
				})
				if err != nil {
					t.Error(err)
					return
				}
				ids[i%nRows] = nid
				continue
			}
			if err := s.Update("job", id, Row{"runtime": float64(i), "done": i%2 == 0}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var rwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for k := 0; k < 300; k++ {
				sn := s.Snapshot()
				rows, err := sn.Select(Query{Table: "job"})
				if err != nil {
					t.Error(err)
					sn.Close()
					return
				}
				for _, row := range rows {
					i := int(row["runtime"].(float64))
					if i != 0 && row["done"].(bool) != (i%2 == 0) {
						t.Errorf("torn row: runtime=%d done=%v", i, row["done"])
					}
					// Re-read within the same snapshot: must be identical.
					again, err := sn.Get("job", row.ID())
					if err != nil || again == nil {
						t.Errorf("row %d vanished within its snapshot: %v, %v", row.ID(), again, err)
						continue
					}
					if again["runtime"].(float64) != row["runtime"].(float64) {
						t.Errorf("row %d changed within one snapshot", row.ID())
					}
				}
				sn.Close()
			}
		}()
	}
	rwg.Wait()
	close(stop)
	wg.Wait()
}

// TestVersionGC: dead versions are reclaimed once no snapshot pins them,
// and retained — still readable — while one does.
func TestVersionGC(t *testing.T) {
	s := newTestStore(t)
	wf, err := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Insert("job", Row{"wf_id": wf, "exec_job_id": "a", "runtime": 0.0})
	if err != nil {
		t.Fatal(err)
	}

	// With no snapshot open, repeated updates must not grow the chain: the
	// writer prunes as it goes.
	before := mVersionReclaims.With("0").Value()
	for i := 1; i <= 50; i++ {
		if err := s.Update("job", id, Row{"runtime": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := mVersionReclaims.With("0").Value(); got-before < 49 {
		t.Fatalf("reclaims grew by %d over 50 updates, want >= 49", got-before)
	}
	chainv, _ := s.parts[0].tables.Load().byName["job"].rows.Load(id)
	if n := chainLen(chainv); n > 2 {
		t.Fatalf("chain length %d after unpinned updates, want <= 2", n)
	}

	// An open snapshot pins its version: the chain grows, and the pinned
	// value stays readable.
	sn := s.Snapshot()
	pinned, err := sn.Get("job", id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 110; i++ {
		if err := s.Update("job", id, Row{"runtime": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	again, err := sn.Get("job", id)
	if err != nil || again == nil {
		t.Fatalf("pinned read failed: %v, %v", again, err)
	}
	if again["runtime"].(float64) != pinned["runtime"].(float64) {
		t.Fatalf("pinned version changed: %v -> %v", pinned["runtime"], again["runtime"])
	}
	if n := chainLen(chainv); n < 2 {
		t.Fatalf("chain length %d while a snapshot pins history, want >= 2", n)
	}

	// Close the snapshot; the next write (or an explicit GC) reclaims.
	sn.Close()
	if err := s.Update("job", id, Row{"runtime": 999.0}); err != nil {
		t.Fatal(err)
	}
	if n := chainLen(chainv); n > 2 {
		t.Fatalf("chain length %d after snapshot close + write, want <= 2", n)
	}

	// Deleted rows disappear entirely under GC.
	if err := s.Delete("job", id); err != nil {
		t.Fatal(err)
	}
	if n := s.GC(); n < 1 {
		t.Fatalf("GC reclaimed %d, want >= 1", n)
	}
	if _, ok := s.parts[0].tables.Load().byName["job"].rows.Load(id); ok {
		t.Fatal("deleted row's chain survived GC with no snapshot open")
	}
}

func chainLen(c *rowChain) int {
	n := 0
	for v := c.head.Load(); v != nil; v = v.prev.Load() {
		n++
	}
	return n
}

// TestSnapshotTableNames: the snapshot's table list is stable even if
// tables are created after it.
func TestSnapshotTableNames(t *testing.T) {
	s := newTestStore(t)
	sn := s.Snapshot()
	defer sn.Close()
	if err := s.CreateTable(TableSchema{Name: "late", Columns: []Column{{Name: "x", Type: Int, Nullable: true}}}); err != nil {
		t.Fatal(err)
	}
	for _, name := range sn.TableNames() {
		if name == "late" {
			t.Fatal("snapshot lists a table created after it")
		}
	}
	if len(s.TableNames()) != 3 {
		t.Fatalf("live TableNames = %v", s.TableNames())
	}
}

// TestSnapshotWALReplay: snapshots work identically on a store replayed
// from a WAL file — replayed history lands at epoch 1 and update/delete
// records resolve to the final state.
func TestSnapshotWALReplay(t *testing.T) {
	path := t.TempDir() + "/snap.db"
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(wfSchema()); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(jobSchema()); err != nil {
		t.Fatal(err)
	}
	wf, err := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := s.Insert("job", Row{"wf_id": wf, "exec_job_id": "a", "runtime": 1.0})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Insert("job", Row{"wf_id": wf, "exec_job_id": "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update("job", j1, Row{"runtime": 42.0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("job", j2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	sn := re.Snapshot()
	defer sn.Close()
	row, err := sn.Get("job", j1)
	if err != nil || row == nil {
		t.Fatalf("replayed Get = %v, %v", row, err)
	}
	if rt := row["runtime"].(float64); rt != 42.0 {
		t.Fatalf("replayed runtime = %v, want 42.0", rt)
	}
	if row, _ := sn.Get("job", j2); row != nil {
		t.Fatalf("replayed snapshot resurrected deleted row %v", row)
	}
	rows, err := sn.Select(Query{Table: "job", Conds: []Cond{Eq("wf_id", wf)}})
	if err != nil || len(rows) != 1 {
		t.Fatalf("replayed indexed Select = %v, %v", rows, err)
	}
}

// TestSnapshotAgeAndClose: Close is idempotent and unpins promptly.
func TestSnapshotAgeAndClose(t *testing.T) {
	s := newTestStore(t)
	sn := s.Snapshot()
	if sn.Epoch() != s.Epoch() {
		t.Fatalf("snapshot epoch %d != store epoch %d", sn.Epoch(), s.Epoch())
	}
	sn.Close()
	sn.Close() // idempotent
	if got := s.parts[0].minLive.Load(); got != ^uint64(0) {
		t.Fatalf("minLive after close = %d, want MaxUint64", got)
	}
	_ = time.Now // keep time imported for helpers above
}
