package relstore

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func wfSchema() TableSchema {
	return TableSchema{
		Name: "workflow",
		Columns: []Column{
			{Name: "wf_uuid", Type: Str},
			{Name: "dax_label", Type: Str, Nullable: true},
			{Name: "submit_hostname", Type: Str, Nullable: true},
			{Name: "ts", Type: Time},
		},
		Unique:  [][]string{{"wf_uuid"}},
		Indexes: [][]string{{"submit_hostname"}},
	}
}

func jobSchema() TableSchema {
	return TableSchema{
		Name: "job",
		Columns: []Column{
			{Name: "wf_id", Type: Int},
			{Name: "exec_job_id", Type: Str},
			{Name: "runtime", Type: Float, Nullable: true},
			{Name: "done", Type: Bool, Nullable: true},
		},
		Unique:      [][]string{{"wf_id", "exec_job_id"}},
		Indexes:     [][]string{{"wf_id"}},
		ForeignKeys: []ForeignKey{{Column: "wf_id", RefTable: "workflow", RefColumn: "id"}},
	}
}

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	if err := s.CreateTable(wfSchema()); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(jobSchema()); err != nil {
		t.Fatal(err)
	}
	return s
}

var now = time.Date(2012, 3, 13, 12, 35, 38, 0, time.UTC)

func TestInsertGetRoundTrip(t *testing.T) {
	s := newTestStore(t)
	id, err := s.Insert("workflow", Row{"wf_uuid": "u1", "dax_label": "dart", "ts": now})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("first id = %d", id)
	}
	row, err := s.Get("workflow", id)
	if err != nil {
		t.Fatal(err)
	}
	if row["wf_uuid"] != "u1" || row["dax_label"] != "dart" {
		t.Fatalf("row = %v", row)
	}
	if ts := row["ts"].(time.Time); !ts.Equal(now) {
		t.Fatalf("ts = %v", ts)
	}
	if row["submit_hostname"] != nil {
		t.Fatalf("absent nullable column = %v, want nil", row["submit_hostname"])
	}
	if missing, err := s.Get("workflow", 99); err != nil || missing != nil {
		t.Fatalf("Get(99) = %v, %v", missing, err)
	}
}

func TestInsertTypeErrors(t *testing.T) {
	s := newTestStore(t)
	cases := []Row{
		{"wf_uuid": 42, "ts": now},                  // int into string
		{"wf_uuid": "u", "ts": "not-a-time"},        // bad time string
		{"wf_uuid": "u"},                            // missing required ts
		{"wf_uuid": nil, "ts": now},                 // null into non-nullable
		{"wf_uuid": "u", "ts": now, "ghost": 1},     // unknown column
		{"wf_uuid": "u", "ts": now, "id": int64(5)}, // id is assigned, not an error but ignored
	}
	for i, r := range cases[:5] {
		if _, err := s.Insert("workflow", r); err == nil {
			t.Errorf("case %d: insert succeeded, want error", i)
		}
	}
	if id, err := s.Insert("workflow", cases[5]); err != nil || id != 1 {
		t.Errorf("explicit id not ignored: id=%d err=%v", id, err)
	}
}

func TestUniqueConstraint(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	var ue *UniqueError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UniqueError", err)
	}
	if ue.Table != "workflow" || ue.ExistingID != 1 {
		t.Fatalf("UniqueError = %+v", ue)
	}
}

func TestCompositeUniqueAcrossColumns(t *testing.T) {
	s := newTestStore(t)
	wf, _ := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	if _, err := s.Insert("job", Row{"wf_id": wf, "exec_job_id": "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("job", Row{"wf_id": wf, "exec_job_id": "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("job", Row{"wf_id": wf, "exec_job_id": "a"}); err == nil {
		t.Fatal("composite duplicate accepted")
	}
	// Length-prefixed keys: ("a","bc") vs ("ab","c") must not collide.
	if _, err := s.Insert("job", Row{"wf_id": wf, "exec_job_id": "x"}); err != nil {
		t.Fatal(err)
	}
}

func TestForeignKeyEnforced(t *testing.T) {
	s := newTestStore(t)
	_, err := s.Insert("job", Row{"wf_id": int64(7), "exec_job_id": "a"})
	var fe *FKError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want FKError", err)
	}
	s.SetForeignKeyChecks(false)
	if _, err := s.Insert("job", Row{"wf_id": int64(7), "exec_job_id": "a"}); err != nil {
		t.Fatalf("FK check not disabled: %v", err)
	}
}

func TestUpdate(t *testing.T) {
	s := newTestStore(t)
	wf, _ := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	jid, _ := s.Insert("job", Row{"wf_id": wf, "exec_job_id": "a"})
	if err := s.Update("job", jid, Row{"runtime": 74.0, "done": true}); err != nil {
		t.Fatal(err)
	}
	row, _ := s.Get("job", jid)
	if row["runtime"] != 74.0 || row["done"] != true {
		t.Fatalf("row after update = %v", row)
	}
	if err := s.Update("job", jid, Row{"id": int64(9)}); err == nil {
		t.Error("pk update accepted")
	}
	if err := s.Update("job", 999, Row{"runtime": 1.0}); err == nil {
		t.Error("update of missing row accepted")
	}
	if err := s.Update("job", jid, Row{"exec_job_id": nil}); err == nil {
		t.Error("null into non-nullable accepted on update")
	}
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	s := newTestStore(t)
	id1, _ := s.Insert("workflow", Row{"wf_uuid": "u1", "submit_hostname": "h1", "ts": now})
	id2, _ := s.Insert("workflow", Row{"wf_uuid": "u2", "submit_hostname": "h1", "ts": now})
	if err := s.Update("workflow", id1, Row{"submit_hostname": "h2"}); err != nil {
		t.Fatal(err)
	}
	rows, err := s.Select(Query{Table: "workflow", Conds: []Cond{Eq("submit_hostname", "h1")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].ID() != id2 {
		t.Fatalf("index stale after update: %v", rows)
	}
	// Unique index must move too: reusing u1 fails, but the old slot frees
	// after an update away from it.
	if err := s.Update("workflow", id2, Row{"wf_uuid": "u1"}); err == nil {
		t.Fatal("duplicate unique value accepted after update")
	}
	if err := s.Update("workflow", id1, Row{"wf_uuid": "u9"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Update("workflow", id2, Row{"wf_uuid": "u1"}); err != nil {
		t.Fatalf("unique slot not freed by update: %v", err)
	}
}

func TestDelete(t *testing.T) {
	s := newTestStore(t)
	id, _ := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	if err := s.Delete("workflow", id); err != nil {
		t.Fatal(err)
	}
	if row, _ := s.Get("workflow", id); row != nil {
		t.Fatal("row survived delete")
	}
	if err := s.Delete("workflow", id); err != nil {
		t.Fatal("second delete errored")
	}
	// Unique slot released.
	if _, err := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now}); err != nil {
		t.Fatalf("unique not released by delete: %v", err)
	}
}

func TestInsertBatchAtomic(t *testing.T) {
	s := newTestStore(t)
	wf, _ := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	rows := []Row{
		{"wf_id": wf, "exec_job_id": "a"},
		{"wf_id": wf, "exec_job_id": "b"},
		{"wf_id": wf, "exec_job_id": "a"}, // dup within batch
	}
	if _, err := s.InsertBatch("job", rows); err == nil {
		t.Fatal("batch with internal duplicate accepted")
	}
	if n, _ := s.Count("job"); n != 0 {
		t.Fatalf("failed batch left %d rows", n)
	}
	ids, err := s.InsertBatch("job", rows[:2])
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestCreateTableValidation(t *testing.T) {
	s := NewStore()
	bad := []TableSchema{
		{Name: ""},
		{Name: "t", Columns: []Column{{Name: "id", Type: Int}}},
		{Name: "t", Columns: []Column{{Name: "a", Type: Int}, {Name: "a", Type: Str}}},
		{Name: "t", Columns: []Column{{Name: "a", Type: Int}}, Unique: [][]string{{"ghost"}}},
		{Name: "t", Columns: []Column{{Name: "a", Type: Int}}, Indexes: [][]string{{}}},
		{Name: "t", Columns: []Column{{Name: "a", Type: Int}}, ForeignKeys: []ForeignKey{{Column: "ghost"}}},
	}
	for i, sch := range bad {
		if err := s.CreateTable(sch); err == nil {
			t.Errorf("case %d: bad schema accepted", i)
		}
	}
	good := wfSchema()
	if err := s.CreateTable(good); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(good); err != nil {
		t.Errorf("idempotent re-create failed: %v", err)
	}
	good.Indexes = nil
	if err := s.CreateTable(good); err == nil || !strings.Contains(err.Error(), "different schema") {
		t.Errorf("conflicting re-create: %v", err)
	}
}

func TestConcurrentInsertsAndReads(t *testing.T) {
	s := newTestStore(t)
	wf, _ := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	var wg sync.WaitGroup
	const writers, per = 4, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_, err := s.Insert("job", Row{
					"wf_id":       wf,
					"exec_job_id": strings.Repeat("x", w+1) + "-" + string(rune('0'+i%10)) + string(rune('0'+i/10)),
				})
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := s.Select(Query{Table: "job", Conds: []Cond{Eq("wf_id", wf)}}); err != nil {
					t.Errorf("select: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n, _ := s.Count("job"); n != writers*per {
		t.Fatalf("count = %d, want %d", n, writers*per)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := newTestStore(t)
	id, _ := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	row, _ := s.Get("workflow", id)
	row["wf_uuid"] = "mutated"
	again, _ := s.Get("workflow", id)
	if again["wf_uuid"] != "u1" {
		t.Fatal("Get leaked internal row reference")
	}
}
