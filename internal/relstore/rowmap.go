package relstore

import "sync/atomic"

// rowMap maps a table's int64 primary keys to row chains. Primary keys
// are assigned densely from 1, so a two-level page table indexed by id
// replaces the generic hash map this used to be (a sync.Map): Load is
// two atomic loads and some arithmetic, Store writes one slot, and
// neither boxes the key into an interface the way an any-keyed map
// forces — on the loader's insert path that boxing plus the map's
// per-entry nodes were several heap allocations per row.
//
// Concurrency follows the store's single-writer discipline: Store and
// Delete run under Store.writeMu only; Load and Range are lock-free and
// safe concurrently with the writer. The directory grows copy-on-write
// (pages never move), so a reader that loaded an old directory still
// sees every page it contains.
type rowMap struct {
	dir atomic.Pointer[[]atomic.Pointer[rowPage]]
}

const (
	rowPageShift = 10
	rowPageSize  = 1 << rowPageShift // chains per page
)

type rowPage [rowPageSize]atomic.Pointer[rowChain]

// Load returns the chain stored under id, or (nil, false).
func (m *rowMap) Load(id int64) (*rowChain, bool) {
	if id < 0 {
		return nil, false
	}
	dp := m.dir.Load()
	if dp == nil {
		return nil, false
	}
	pi := int(id >> rowPageShift)
	if pi >= len(*dp) {
		return nil, false
	}
	p := (*dp)[pi].Load()
	if p == nil {
		return nil, false
	}
	c := p[id&(rowPageSize-1)].Load()
	return c, c != nil
}

// Store publishes chain under id. Writer-only.
func (m *rowMap) Store(id int64, c *rowChain) {
	if id < 0 {
		panic("relstore: negative row id")
	}
	pi := int(id >> rowPageShift)
	dp := m.dir.Load()
	if dp == nil || pi >= len(*dp) {
		n := 8
		if dp != nil && len(*dp)*2 > n {
			n = len(*dp) * 2
		}
		for n <= pi {
			n *= 2
		}
		nd := make([]atomic.Pointer[rowPage], n)
		if dp != nil {
			for i := range *dp {
				nd[i].Store((*dp)[i].Load())
			}
		}
		m.dir.Store(&nd)
		dp = &nd
	}
	p := (*dp)[pi].Load()
	if p == nil {
		p = new(rowPage)
		(*dp)[pi].Store(p)
	}
	p[id&(rowPageSize-1)].Store(c)
}

// Delete clears the slot for id (the page stays; ids are never reused).
// Writer-only.
func (m *rowMap) Delete(id int64) {
	if id < 0 {
		return
	}
	dp := m.dir.Load()
	if dp == nil {
		return
	}
	pi := int(id >> rowPageShift)
	if pi >= len(*dp) {
		return
	}
	if p := (*dp)[pi].Load(); p != nil {
		p[id&(rowPageSize-1)].Store(nil)
	}
}

// Range calls f for every stored chain in ascending id order until f
// returns false. Entries stored concurrently may or may not be visited,
// as with any lock-free iteration.
func (m *rowMap) Range(f func(id int64, c *rowChain) bool) {
	dp := m.dir.Load()
	if dp == nil {
		return
	}
	for pi := range *dp {
		p := (*dp)[pi].Load()
		if p == nil {
			continue
		}
		for si := range p {
			if c := p[si].Load(); c != nil {
				if !f(int64(pi)<<rowPageShift|int64(si), c) {
					return
				}
			}
		}
	}
}
