package relstore

import (
	"fmt"
	"sort"
	"time"
)

// Cond is an equality condition on one column. Select uses an index when
// the conditions exactly cover one; otherwise it scans.
type Cond struct {
	Column string
	Value  any
}

// Eq builds an equality condition.
func Eq(column string, value any) Cond { return Cond{Column: column, Value: value} }

// Query describes a select over one table: equality conditions (ANDed), an
// optional arbitrary predicate applied after them, ordering and limit.
type Query struct {
	Table   string
	Conds   []Cond
	Where   func(Row) bool // optional, applied after Conds
	OrderBy string         // optional column; rows sort ascending by it
	Desc    bool
	Limit   int // 0 = unlimited
}

// Select returns copies of all rows matching the query, as of the newest
// published epoch vector. Rows come back in OrderBy order when set,
// otherwise in primary-key order — on the indexed, unique, and scan paths
// alike, across partitions — so results are deterministic either way.
func (s *Store) Select(q Query) ([]Row, error) {
	v, release := s.pinnedView(true)
	defer release()
	return v.sel(q)
}

// SelectOne returns the single matching row, nil when none match, and an
// error when more than one matches.
func (s *Store) SelectOne(q Query) (Row, error) {
	v, release := s.pinnedView(true)
	defer release()
	return v.selOne(q)
}

// sel evaluates a query against the view's epoch vector: each partition
// yields its candidates in primary-key order, the per-partition results
// merge into global primary-key order (ids are unique store-wide), and
// Where/OrderBy/Limit apply to the merged set — so a query behaves
// identically whatever the partition count.
func (v view) sel(q Query) ([]Row, error) {
	var t *table
	for _, pv := range v.parts {
		if tt, ok := pv.ts.byName[q.Table]; ok {
			t = tt
			break
		}
	}
	if t == nil {
		return nil, fmt.Errorf("relstore: no table %s", q.Table)
	}
	for _, c := range q.Conds {
		if _, ok := t.colType[c.Column]; !ok {
			return nil, fmt.Errorf("relstore: table %s has no column %s", q.Table, c.Column)
		}
	}
	if q.OrderBy != "" {
		if _, ok := t.colType[q.OrderBy]; !ok {
			return nil, fmt.Errorf("relstore: table %s has no column %s to order by", q.Table, q.OrderBy)
		}
	}

	var out []Row
	for _, pv := range v.parts {
		tt, ok := pv.ts.byName[q.Table]
		if !ok {
			continue
		}
		part, err := gather(tt, pv.epoch, q)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = part
		} else {
			out = append(out, part...)
		}
	}
	if len(v.parts) > 1 {
		sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	}
	if q.Where != nil {
		kept := out[:0]
		for _, row := range out {
			if q.Where(row) {
				kept = append(kept, row)
			}
		}
		out = kept
	}
	if v.clone {
		for i := range out {
			out[i] = out[i].Clone()
		}
	}
	if q.OrderBy != "" {
		col := q.OrderBy
		sort.SliceStable(out, func(i, j int) bool {
			if q.Desc {
				return valueLess(out[j][col], out[i][col])
			}
			return valueLess(out[i][col], out[j][col])
		})
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out, nil
}

// gather collects one partition's matching rows at one epoch, in
// primary-key order. Candidate rows come from an index posting chain, a
// unique-constraint probe, or a full scan; all three paths yield
// primary-key order.
func gather(t *table, epoch uint64, q Query) ([]Row, error) {
	var out []Row
	matched := false
	if len(q.Conds) > 0 {
		cols := make([]string, len(q.Conds))
		probe := Row{}
		for i, c := range q.Conds {
			cols[i] = c.Column
			cv, err := coerce(q.Table, c.Column, t.colType[c.Column], c.Value)
			if err != nil {
				return nil, err
			}
			probe[c.Column] = cv
		}
		if ixn := t.findIndex(cols); ixn >= 0 {
			ix := t.indexes[ixn]
			var ids []int64
			if ix.mi != nil {
				v, isNil := intKeyOf(probe, ix.intCol)
				ids = ix.idsAtInt(v, isNil, epoch)
			} else {
				ids = ix.idsAt(compositeKey(probe, cols), epoch)
			}
			for _, id := range ids {
				if row := lookupAt(t, id, epoch); row != nil && condsMatch(t, q.Table, q.Conds, row) {
					out = append(out, row)
				}
			}
			matched = true
		} else {
			for u, ucols := range t.schema.Unique {
				if len(ucols) == len(cols) && sameCols(ucols, cols) {
					if id, ok := t.uniques[u].idAt(compositeKey(probe, ucols), epoch); ok {
						if row := lookupAt(t, id, epoch); row != nil && condsMatch(t, q.Table, q.Conds, row) {
							out = append(out, row)
						}
					}
					matched = true
					break
				}
			}
		}
	}
	if !matched {
		t.rows.Range(func(_ int64, c *rowChain) bool {
			ver := c.visibleAt(epoch)
			if ver == nil {
				return true
			}
			if condsMatch(t, q.Table, q.Conds, ver.row) {
				out = append(out, ver.row)
			}
			return true
		})
		sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	}
	return out, nil
}

// lookupAt resolves an index candidate id to its row visible at epoch, or
// nil.
func lookupAt(t *table, id int64, epoch uint64) Row {
	c, ok := t.rows.Load(id)
	if !ok {
		return nil
	}
	ver := c.visibleAt(epoch)
	if ver == nil {
		return nil
	}
	return ver.row
}

func (v view) selOne(q Query) (Row, error) {
	q.Limit = 2
	rows, err := v.sel(q)
	if err != nil {
		return nil, err
	}
	switch len(rows) {
	case 0:
		return nil, nil
	case 1:
		return rows[0], nil
	default:
		return nil, fmt.Errorf("relstore: query on %s matched more than one row", q.Table)
	}
}

func sameCols(a, b []string) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func condsMatch(t *table, tableName string, conds []Cond, row Row) bool {
	for _, c := range conds {
		cv, err := coerce(tableName, c.Column, t.colType[c.Column], c.Value)
		if err != nil {
			return false
		}
		if !valueEq(row[c.Column], cv) {
			return false
		}
	}
	return true
}

func valueEq(a, b any) bool {
	if ta, ok := a.(time.Time); ok {
		tb, ok := b.(time.Time)
		return ok && ta.Equal(tb)
	}
	return a == b
}

// valueLess orders values of the same type; nil sorts first.
func valueLess(a, b any) bool {
	if a == nil {
		return b != nil
	}
	if b == nil {
		return false
	}
	switch x := a.(type) {
	case int64:
		y, ok := b.(int64)
		return ok && x < y
	case float64:
		y, ok := b.(float64)
		return ok && x < y
	case string:
		y, ok := b.(string)
		return ok && x < y
	case bool:
		y, ok := b.(bool)
		return ok && !x && y
	case time.Time:
		y, ok := b.(time.Time)
		return ok && x.Before(y)
	}
	return false
}
