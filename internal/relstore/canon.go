package relstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Canonical binary serialization of store state, shared by Snapshot.Hash
// (which streams it into SHA-256) and the checkpoint writer/loader (which
// stream it to and from disk). Because both consumers use the exact same
// framing — tables in sorted-name order, rows in primary-key order,
// columns in schema declaration order, every value type-tagged, nothing
// wall-clock- or partition-dependent — a checkpoint image is precisely the
// hashed state, and recovery equivalence can be asserted by comparing
// hashes.

// canonWriter emits the canonical encoding. Write errors stick: the first
// one is kept and all later writes become no-ops, so serialization code
// can stay unconditional and check err once at the end (hash.Hash writers
// never error; file writers can).
type canonWriter struct {
	w       io.Writer
	scratch [8]byte
	err     error
}

func (c *canonWriter) uint(v uint64) {
	if c.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(c.scratch[:], v)
	_, c.err = c.w.Write(c.scratch[:])
}

func (c *canonWriter) str(s string) {
	c.uint(uint64(len(s)))
	if c.err != nil {
		return
	}
	_, c.err = io.WriteString(c.w, s)
}

// value writes one canonical type-tagged value.
func (c *canonWriter) value(v any) error {
	switch x := v.(type) {
	case nil:
		c.str("n")
	case int64:
		c.str("i")
		c.uint(uint64(x))
	case float64:
		c.str("f")
		c.str(strconv.FormatFloat(x, 'g', -1, 64))
	case string:
		c.str("s")
		c.str(x)
	case bool:
		c.str("b")
		if x {
			c.uint(1)
		} else {
			c.uint(0)
		}
	case time.Time:
		c.str("t")
		c.uint(uint64(x.UTC().UnixNano()))
	default:
		return fmt.Errorf("unhashable value type %T", v)
	}
	return c.err
}

// row writes one row: the "row" marker, the primary key, then every value
// in schema column order. Error messages keep the shapes Hash has always
// produced, since replay tests match on them.
func (c *canonWriter) row(tableName string, cols []Column, r Row) error {
	id, ok := r["id"].(int64)
	if !ok {
		return fmt.Errorf("relstore: hash %s: row id %v (%T) is not int64", tableName, r["id"], r["id"])
	}
	c.str("row")
	c.uint(uint64(id))
	for _, col := range cols {
		if err := c.value(r[col.Name]); err != nil {
			return fmt.Errorf("relstore: hash %s.%s id=%d: %w", tableName, col.Name, id, err)
		}
	}
	return c.err
}

// writeTableState writes one table's visible rows at one epoch: the
// "table" marker, name, row count, then rows in primary-key order.
func (c *canonWriter) writeTableState(t *table, epoch uint64) error {
	rows := make([]Row, 0, t.live.Load())
	t.rows.Range(func(_ int64, ch *rowChain) bool {
		if ver := ch.visibleAt(epoch); ver != nil {
			rows = append(rows, ver.row)
		}
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID() < rows[j].ID() })
	name := t.schema.Name
	c.str("table")
	c.str(name)
	c.uint(uint64(len(rows)))
	for _, r := range rows {
		if err := c.row(name, t.schema.Columns, r); err != nil {
			return err
		}
	}
	return c.err
}

// writeState writes a whole table set's visible state at one epoch, in
// sorted table-name order — the framing Hash uses, applied to a single
// partition. This is the checkpoint image body.
func (c *canonWriter) writeState(ts *tableSet, epoch uint64) error {
	names := append([]string(nil), ts.order...)
	sort.Strings(names)
	for _, name := range names {
		if err := c.writeTableState(ts.byName[name], epoch); err != nil {
			return err
		}
	}
	return c.err
}

// canonReader decodes the canonical encoding. The tag makes every value
// self-describing, so decoding needs no schema — though the checkpoint
// loader still walks schema column order, mirroring the writer.
type canonReader struct {
	r       io.Reader
	scratch [8]byte
}

func (c *canonReader) uint() (uint64, error) {
	if _, err := io.ReadFull(c.r, c.scratch[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(c.scratch[:]), nil
}

func (c *canonReader) str() (string, error) {
	n, err := c.uint()
	if err != nil {
		return "", err
	}
	if n > 1<<30 {
		return "", fmt.Errorf("relstore: canonical string length %d implausible", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(c.r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// value reads one type-tagged value.
func (c *canonReader) value() (any, error) {
	tag, err := c.str()
	if err != nil {
		return nil, err
	}
	switch tag {
	case "n":
		return nil, nil
	case "i":
		v, err := c.uint()
		return int64(v), err
	case "f":
		s, err := c.str()
		if err != nil {
			return nil, err
		}
		return strconv.ParseFloat(s, 64)
	case "s":
		return c.str()
	case "b":
		v, err := c.uint()
		return v != 0, err
	case "t":
		v, err := c.uint()
		return time.Unix(0, int64(v)).UTC(), err
	default:
		return nil, fmt.Errorf("relstore: unknown canonical value tag %q", tag)
	}
}

// expect reads a marker string and errors when it differs.
func (c *canonReader) expect(marker string) error {
	got, err := c.str()
	if err != nil {
		return err
	}
	if got != marker {
		return fmt.Errorf("relstore: canonical stream: want %q marker, got %q", marker, got)
	}
	return nil
}
