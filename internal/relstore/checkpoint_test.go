package relstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// openDirStore opens a store directory with automatic checkpoints
// effectively off, so tests control checkpoint timing explicitly.
func openDirStore(t *testing.T, dir string, parts int) *Store {
	t.Helper()
	s, err := OpenDir(dir, Options{Partitions: parts, CheckpointEvery: 1 << 62})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func storeHash(t *testing.T, s *Store) string {
	t.Helper()
	sn := s.Snapshot()
	defer sn.Close()
	h, err := sn.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// copyDir snapshots a store directory byte for byte — the moral
// equivalent of a kill -9 plus a disk image, for crash tests.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOpenDirPersistReopen round-trips a partitioned store through
// Close/OpenDir: the recovered state hashes identical to the live one,
// partition count comes from the MANIFEST (opts cannot change it), and
// writes continue cleanly after recovery.
func TestOpenDirPersistReopen(t *testing.T) {
	dir := t.TempDir()
	s := openDirStore(t, dir, 4)
	applyRoutedOps(t, s, 120)
	want := storeHash(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDir(dir, Options{Partitions: 9}) // MANIFEST wins
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.NumPartitions(); got != 4 {
		t.Fatalf("reopen partition count %d, want 4 from MANIFEST", got)
	}
	if got := storeHash(t, s2); got != want {
		t.Fatalf("recovered hash %s, want %s", got, want)
	}
	if _, err := s2.Writer(3).Insert("parent", Row{"name": "post-recovery"}); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestCheckpointTruncatesWAL checks the checkpoint protocol end to end:
// the image covers the WAL high-water, segments at or below it are
// deleted, recovery afterwards loads checkpoint + tail and hashes
// identical to the pre-checkpoint live state plus the tail writes.
func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s := openDirStore(t, dir, 2)
	applyRoutedOps(t, s, 80)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	stats := s.CheckpointStats()
	for i, cs := range stats {
		if !cs.Taken || cs.Seq == 0 || cs.Bytes == 0 {
			t.Fatalf("partition %d checkpoint not taken: %+v", i, cs)
		}
		pdir := filepath.Join(dir, partDirName(i))
		segs, err := listNumbered(pdir, "wal-", ".log")
		if err != nil {
			t.Fatal(err)
		}
		for _, sg := range segs {
			if sg.start <= cs.Seq {
				t.Fatalf("partition %d: segment %s not truncated behind checkpoint seq %d", i, sg.path, cs.Seq)
			}
		}
		if _, err := os.Stat(ckptPath(pdir, cs.Seq)); err != nil {
			t.Fatalf("partition %d: checkpoint image missing: %v", i, err)
		}
	}

	// Tail writes past the checkpoint land in fresh segments.
	for i := 0; i < 20; i++ {
		w := s.Writer(i % 2)
		if _, err := w.Insert("parent", Row{"name": fmt.Sprintf("tail%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	want := storeHash(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := InspectDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Partitions != 2 {
		t.Fatalf("InspectDir partitions %d, want 2", info.Partitions)
	}
	var tail uint64
	for _, pi := range info.Parts {
		if pi.CheckpointSeq == 0 {
			t.Fatalf("partition %d: InspectDir sees no checkpoint: %+v", pi.Partition, pi)
		}
		if pi.LastSeq < pi.CheckpointSeq {
			t.Fatalf("partition %d: LastSeq %d below checkpoint %d", pi.Partition, pi.LastSeq, pi.CheckpointSeq)
		}
		tail += pi.TailRecords
	}
	if tail != 20 {
		t.Fatalf("InspectDir tail records %d, want 20", tail)
	}

	s2 := openDirStore(t, dir, 2)
	defer s2.Close()
	if got := storeHash(t, s2); got != want {
		t.Fatalf("checkpoint+tail recovery hash %s, want %s", got, want)
	}
}

// TestAutoCheckpointTriggers checks the background trigger: once a
// partition absorbs CheckpointEvery WAL records, a checkpoint appears
// without any explicit call.
func TestAutoCheckpointTriggers(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir, Options{Partitions: 2, CheckpointEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.CreateTable(concurrencySchemas()[0]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := s.Writer(i%2).Insert("parent", Row{"name": fmt.Sprintf("auto%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		taken := 0
		for _, cs := range s.CheckpointStats() {
			if cs.Taken {
				taken++
			}
		}
		if taken == 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no automatic checkpoint after 64 records with CheckpointEvery=16: %+v", s.CheckpointStats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRecoveryFallsBackPastInvalidCheckpoint plants a garbage image newer
// than the real one: recovery must reject it on footer verification,
// fall back to the valid image, and still replay the WAL tail — ending
// bit-identical to the pre-crash state.
func TestRecoveryFallsBackPastInvalidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openDirStore(t, dir, 1)
	applyRoutedOps(t, s, 60)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	realSeq := s.CheckpointStats()[0].Seq
	for i := 0; i < 15; i++ {
		if _, err := s.Insert("parent", Row{"name": fmt.Sprintf("tail%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	want := storeHash(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	pdir := filepath.Join(dir, partDirName(0))
	bogus := ckptPath(pdir, realSeq+5)
	if err := os.WriteFile(bogus, []byte("this is not a checkpoint image and fails sha256 verification"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openDirStore(t, dir, 1)
	defer s2.Close()
	if got := storeHash(t, s2); got != want {
		t.Fatalf("fallback recovery hash %s, want %s", got, want)
	}
	if s2.CheckpointStats()[0].Seq != realSeq {
		t.Fatalf("recovered from seq %d, want fallback to %d", s2.CheckpointStats()[0].Seq, realSeq)
	}
}

// TestCrashMatrixTornWALTail is the byte-level crash matrix: the newest
// WAL segment is cut (or garbage-extended) at a sweep of offsets, and
// every mutilation must recover to exactly the intact-record prefix —
// the state an in-memory store reaches after the same prefix of inserts.
// Double recovery of the same crash image must also agree, and a second
// reopen after the truncating recovery is clean.
func TestCrashMatrixTornWALTail(t *testing.T) {
	// Single partition, one insert per record: WAL record k is insert k,
	// so a prefix of records maps to a prefix of inserts.
	const inserts = 30
	dir := t.TempDir()
	s := openDirStore(t, dir, 1)
	if err := s.CreateTable(concurrencySchemas()[0]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < inserts; i++ {
		if _, err := s.Insert("parent", Row{"name": fmt.Sprintf("row%04d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Expected hash for every prefix, from in-memory replays of the same
	// logical history. wantHash[k] = state after k inserts. The create
	// record is part of the WAL too: prefixes that cut into it recover an
	// empty store with no tables; those land before firstRecOK below.
	wantHash := make([]string, inserts+1)
	for k := 0; k <= inserts; k++ {
		m := NewStore()
		if err := m.CreateTable(concurrencySchemas()[0]); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if _, err := m.Insert("parent", Row{"name": fmt.Sprintf("row%04d", i)}); err != nil {
				t.Fatal(err)
			}
		}
		wantHash[k] = storeHash(t, m)
	}

	pdir := filepath.Join(dir, partDirName(0))
	segs, err := listNumbered(pdir, "wal-", ".log")
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one WAL segment, got %d (%v)", len(segs), err)
	}
	whole, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries: newline offsets. Line 0 is the create record,
	// lines 1..inserts are the insert records.
	var bounds []int
	for i, b := range whole {
		if b == '\n' {
			bounds = append(bounds, i+1)
		}
	}
	if len(bounds) != inserts+1 {
		t.Fatalf("WAL has %d records, want %d", len(bounds), inserts+1)
	}

	// recordsIntact = whole newline-terminated records surviving a cut at
	// byte offset cut, plus the complete-but-unterminated final record
	// recovery also applies when nothing was appended after it (the cut
	// removed exactly the trailing newline).
	recordsIntact := func(cut int, garbage string) int {
		n := 0
		terminated := false
		for _, b := range bounds {
			if b <= cut {
				n++
			}
			if garbage == "" && b == cut+1 {
				terminated = true
			}
		}
		if terminated {
			n++
		}
		return n
	}

	offsets := []int{len(whole), len(whole) - 1, len(whole) - 7}
	for _, b := range bounds {
		offsets = append(offsets, b, b+1, b+half(bounds, b))
	}
	for _, cut := range offsets {
		if cut < bounds[0] || cut > len(whole) {
			continue // cutting inside the create record loses the schema; not a prefix state
		}
		for _, garbage := range []string{"", "{\"torn\":", "\xff\xfe not json"} {
			name := fmt.Sprintf("cut%d-g%d", cut, len(garbage))
			img := filepath.Join(t.TempDir(), "img")
			copyDir(t, dir, img)
			seg := filepath.Join(img, partDirName(0), filepath.Base(segs[0].path))
			mut := append(append([]byte(nil), whole[:cut]...), garbage...)
			if err := os.WriteFile(seg, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			img2 := filepath.Join(t.TempDir(), "img2")
			copyDir(t, img, img2)

			wantK := recordsIntact(cut, garbage) - 1 // minus the create record
			r1 := openDirStore(t, img, 1)
			got := storeHash(t, r1)
			if got != wantHash[wantK] {
				t.Fatalf("%s: recovered hash != in-memory prefix of %d inserts", name, wantK)
			}
			if err := r1.Close(); err != nil {
				t.Fatal(err)
			}
			// The truncating recovery must leave a cleanly reopenable dir.
			r1b := openDirStore(t, img, 1)
			if rh := storeHash(t, r1b); rh != got {
				t.Fatalf("%s: second reopen diverged", name)
			}
			r1b.Close()

			r2 := openDirStore(t, img2, 1)
			if h2 := storeHash(t, r2); h2 != got {
				t.Fatalf("%s: double recovery diverged: %s vs %s", name, got, h2)
			}
			r2.Close()
		}
	}
}

// half returns half the distance from b to the next boundary after it,
// to generate mid-record cut offsets.
func half(bounds []int, b int) int {
	for _, nb := range bounds {
		if nb > b {
			return (nb - b) / 2
		}
	}
	return 0
}

// TestKillDuringParallelGroupCommit images the store directory while
// four partitions are group-committing fsynced batches in parallel —
// the closest a test gets to kill -9 mid-commit without forking. Every
// image must recover (possibly truncating a torn tail), recover the
// same way twice, and contain only whole per-partition record prefixes.
func TestKillDuringParallelGroupCommit(t *testing.T) {
	const parts = 4
	dir := t.TempDir()
	s := openDirStore(t, dir, parts)
	if err := s.CreateTable(concurrencySchemas()[0]); err != nil {
		t.Fatal(err)
	}
	s.SetSync(true)
	// One durable row per partition before imaging starts, so every crash
	// image holds at least the schema and a first record per partition.
	for p := 0; p < parts; p++ {
		if _, err := s.Writer(p).Insert("parent", Row{"name": fmt.Sprintf("seed%d", p)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wwg sync.WaitGroup
	for p := 0; p < parts; p++ {
		wwg.Add(1)
		go func(p int) {
			defer wwg.Done()
			w := s.Writer(p)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := w.Insert("parent", Row{"name": fmt.Sprintf("p%d-%d", p, i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}

	images := make([]string, 3)
	for i := range images {
		time.Sleep(20 * time.Millisecond)
		images[i] = filepath.Join(t.TempDir(), fmt.Sprintf("img%d", i))
		copyDir(t, dir, images[i])
	}
	close(stop)
	wwg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	for i, img := range images {
		img2 := filepath.Join(t.TempDir(), "again")
		copyDir(t, img, img2)
		r1 := openDirStore(t, img, parts)
		h1 := storeHash(t, r1)
		n, err := r1.Count("parent")
		if err != nil {
			t.Fatalf("image %d: %v", i, err)
		}
		if cn := len(mustSelect(t, r1, "parent")); cn != n {
			t.Fatalf("image %d: Count %d != Select %d", i, n, cn)
		}
		r1.Close()
		r2 := openDirStore(t, img2, parts)
		if h2 := storeHash(t, r2); h2 != h1 {
			t.Fatalf("image %d: double recovery diverged", i)
		}
		r2.Close()
	}
}

func mustSelect(t *testing.T, s *Store, table string) []Row {
	t.Helper()
	rows, err := s.Select(Query{Table: table})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}
