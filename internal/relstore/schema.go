// Package relstore is an embedded, in-process relational store: typed
// tables with auto-increment primary keys, unique and secondary indexes,
// foreign-key checks, predicate queries, and write-ahead-log persistence.
//
// The published Stampede loader writes to SQLite/MySQL/PostgreSQL through
// SQLAlchemy; this repository is stdlib-only, so relstore supplies the
// relational semantics the archive layer (the paper's Figure 3 schema)
// needs: indexed point lookups for the high-rate load path and scans with
// filters for the query interface.
package relstore

import (
	"fmt"
	"time"
)

// ColType enumerates column value types.
type ColType int

const (
	Int ColType = iota
	Float
	Str
	Time
	Bool
)

func (t ColType) String() string {
	switch t {
	case Int:
		return "int"
	case Float:
		return "float"
	case Str:
		return "string"
	case Time:
		return "time"
	case Bool:
		return "bool"
	}
	return "unknown"
}

// Column describes one column of a table.
type Column struct {
	Name     string
	Type     ColType
	Nullable bool
}

// ForeignKey declares that values of Column must exist in RefTable's
// RefColumn (which must be unique or the primary key there).
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// TableSchema describes a table. Every table gets an implicit integer
// primary-key column named "id" that auto-increments; declaring a column
// named "id" explicitly is an error.
type TableSchema struct {
	Name    string
	Columns []Column
	// Unique constraints; each entry is a list of column names whose
	// combined value must be unique across rows (nulls compare equal,
	// intentionally stricter than SQL).
	Unique [][]string
	// Indexes are non-unique secondary indexes for fast equality lookup.
	Indexes [][]string
	// ForeignKeys are checked on insert and update.
	ForeignKeys []ForeignKey
}

func (s *TableSchema) validate() error {
	if s.Name == "" {
		return fmt.Errorf("relstore: table with empty name")
	}
	seen := map[string]ColType{}
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("relstore: table %s has a column with empty name", s.Name)
		}
		if c.Name == "id" {
			return fmt.Errorf("relstore: table %s declares reserved column id", s.Name)
		}
		if _, dup := seen[c.Name]; dup {
			return fmt.Errorf("relstore: table %s has duplicate column %s", s.Name, c.Name)
		}
		seen[c.Name] = c.Type
	}
	check := func(kind string, cols []string) error {
		if len(cols) == 0 {
			return fmt.Errorf("relstore: table %s has an empty %s", s.Name, kind)
		}
		for _, c := range cols {
			if _, ok := seen[c]; !ok && c != "id" {
				return fmt.Errorf("relstore: table %s %s references unknown column %s", s.Name, kind, c)
			}
		}
		return nil
	}
	for _, u := range s.Unique {
		if err := check("unique constraint", u); err != nil {
			return err
		}
	}
	for _, ix := range s.Indexes {
		if err := check("index", ix); err != nil {
			return err
		}
	}
	for _, fk := range s.ForeignKeys {
		if _, ok := seen[fk.Column]; !ok {
			return fmt.Errorf("relstore: table %s foreign key on unknown column %s", s.Name, fk.Column)
		}
	}
	return nil
}

// Row is one record: column name to value. Values are int64, float64,
// string, time.Time, bool, or nil. The primary key appears under "id"
// after insert.
type Row map[string]any

// Clone returns a shallow copy of the row (values are immutable types).
func (r Row) Clone() Row {
	c := make(Row, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

// ID returns the row's primary key.
func (r Row) ID() int64 {
	id, _ := r["id"].(int64)
	return id
}

// coerce normalises a dynamic value to the column's canonical Go type.
// Numeric widening (int->int64, int64->float64 for Float columns, JSON's
// float64 -> int64 for Int columns when integral) is permitted; anything
// else is a type error. When the value is already canonical, the original
// interface v is returned untouched — unwrapping to the concrete type and
// returning that would re-box the value, one avoidable heap allocation per
// column on the insert hot path.
func coerce(table, col string, t ColType, v any) (any, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case Int:
		switch x := v.(type) {
		case int64:
			return v, nil
		case int:
			return int64(x), nil
		case int32:
			return int64(x), nil
		case float64:
			if x == float64(int64(x)) {
				return int64(x), nil
			}
		}
	case Float:
		switch x := v.(type) {
		case float64:
			return v, nil
		case float32:
			return float64(x), nil
		case int64:
			return float64(x), nil
		case int:
			return float64(x), nil
		}
	case Str:
		if _, ok := v.(string); ok {
			return v, nil
		}
	case Time:
		switch x := v.(type) {
		case time.Time:
			if x.Location() == time.UTC {
				return v, nil
			}
			return x.UTC(), nil
		case string:
			ts, err := time.Parse(time.RFC3339Nano, x)
			if err == nil {
				return ts.UTC(), nil
			}
		}
	case Bool:
		if _, ok := v.(bool); ok {
			return v, nil
		}
	}
	return nil, fmt.Errorf("relstore: %s.%s: value %v (%T) is not a %s", table, col, v, v, t)
}
