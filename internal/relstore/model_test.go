package relstore

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// Model-based test: a random sequence of inserts, updates, deletes and
// lookups runs against both the store and a plain-map reference model;
// any divergence is a bug. A final WAL round trip checks that the
// persisted state replays to the same contents.

type modelRow struct {
	name string
	wf   int64
	run  float64
}

func TestStoreAgainstModel(t *testing.T) {
	const (
		ops  = 4000
		wfs  = 5
		seed = 99
	)
	rng := rand.New(rand.NewSource(seed))
	path := filepath.Join(t.TempDir(), "model.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(TableSchema{
		Name: "m",
		Columns: []Column{
			{Name: "name", Type: Str},
			{Name: "wf", Type: Int},
			{Name: "run", Type: Float, Nullable: true},
		},
		Unique:  [][]string{{"wf", "name"}},
		Indexes: [][]string{{"wf"}},
	}); err != nil {
		t.Fatal(err)
	}

	model := map[int64]modelRow{} // id -> row
	byKey := map[string]int64{}   // wf/name -> id
	key := func(wf int64, name string) string { return fmt.Sprintf("%d/%s", wf, name) }

	for op := 0; op < ops; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // insert
			r := modelRow{
				name: fmt.Sprintf("job%03d", rng.Intn(200)),
				wf:   int64(rng.Intn(wfs)),
				run:  float64(rng.Intn(100)),
			}
			id, err := s.Insert("m", Row{"name": r.name, "wf": r.wf, "run": r.run})
			_, dup := byKey[key(r.wf, r.name)]
			if dup {
				if err == nil {
					t.Fatalf("op %d: duplicate accepted", op)
				}
				continue
			}
			if err != nil {
				t.Fatalf("op %d: insert: %v", op, err)
			}
			model[id] = r
			byKey[key(r.wf, r.name)] = id
		case 4, 5: // update run of a random live row
			id := randomID(rng, model)
			if id == 0 {
				continue
			}
			newRun := float64(rng.Intn(1000))
			if err := s.Update("m", id, Row{"run": newRun}); err != nil {
				t.Fatalf("op %d: update: %v", op, err)
			}
			r := model[id]
			r.run = newRun
			model[id] = r
		case 6: // delete
			id := randomID(rng, model)
			if id == 0 {
				continue
			}
			if err := s.Delete("m", id); err != nil {
				t.Fatalf("op %d: delete: %v", op, err)
			}
			r := model[id]
			delete(byKey, key(r.wf, r.name))
			delete(model, id)
		case 7: // point lookup by pk
			id := randomID(rng, model)
			if id == 0 {
				continue
			}
			row, err := s.Get("m", id)
			if err != nil || row == nil {
				t.Fatalf("op %d: get %d: %v %v", op, id, row, err)
			}
			want := model[id]
			if row["name"] != want.name || row["wf"] != want.wf || row["run"] != want.run {
				t.Fatalf("op %d: row %d = %v, want %+v", op, id, row, want)
			}
		case 8: // indexed query by wf
			wf := int64(rng.Intn(wfs))
			rows, err := s.Select(Query{Table: "m", Conds: []Cond{Eq("wf", wf)}})
			if err != nil {
				t.Fatalf("op %d: select: %v", op, err)
			}
			wantCount := 0
			for _, r := range model {
				if r.wf == wf {
					wantCount++
				}
			}
			if len(rows) != wantCount {
				t.Fatalf("op %d: wf=%d rows=%d want=%d", op, wf, len(rows), wantCount)
			}
		case 9: // unique lookup
			id := randomID(rng, model)
			if id == 0 {
				continue
			}
			r := model[id]
			row, err := s.SelectOne(Query{Table: "m", Conds: []Cond{Eq("wf", r.wf), Eq("name", r.name)}})
			if err != nil || row == nil || row.ID() != id {
				t.Fatalf("op %d: unique lookup: %v %v", op, row, err)
			}
		}
	}

	// Full-state comparison.
	verify := func(st *Store, label string) {
		n, err := st.Count("m")
		if err != nil || n != len(model) {
			t.Fatalf("%s: count %d, want %d (%v)", label, n, len(model), err)
		}
		for id, want := range model {
			row, err := st.Get("m", id)
			if err != nil || row == nil {
				t.Fatalf("%s: lost row %d", label, id)
			}
			if row["name"] != want.name || row["wf"] != want.wf || row["run"] != want.run {
				t.Fatalf("%s: row %d = %v, want %+v", label, id, row, want)
			}
		}
	}
	verify(s, "live store")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	verify(re, "replayed store")
}

func randomID(rng *rand.Rand, model map[int64]modelRow) int64 {
	if len(model) == 0 {
		return 0
	}
	n := rng.Intn(len(model))
	for id := range model {
		if n == 0 {
			return id
		}
		n--
	}
	return 0
}
