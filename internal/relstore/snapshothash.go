package relstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"time"
)

// Hash returns a deterministic digest of the snapshot's entire visible
// state: SHA-256 over a canonical serialization of every table. Two
// snapshots hash equal iff they hold the same rows with the same primary
// keys and values — which is exactly the bit-identical-materialization
// property the event log's replay tests assert (rebuild the store twice
// from the same log prefix, hash both, compare).
//
// The serialization is canonical, never "whatever iteration order the
// maps had": tables in sorted-name order, rows in primary-key order (the
// order Select already guarantees), columns in schema declaration order
// with the id first, and every value rendered through an explicit
// type-tagged encoding (times as UTC nanoseconds, so no location or
// formatting ambiguity survives). Nothing wall-clock-dependent is
// hashed: no epochs, no snapshot timestamps, no WAL positions.
func (sn *Snapshot) Hash() (string, error) {
	h := sha256.New()
	var scratch [8]byte
	writeUint := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	writeStr := func(s string) {
		writeUint(uint64(len(s)))
		h.Write([]byte(s))
	}

	names := sn.TableNames()
	sort.Strings(names)
	for _, name := range names {
		t := sn.v.ts.byName[name]
		writeStr("table")
		writeStr(name)
		rows, err := sn.Select(Query{Table: name})
		if err != nil {
			return "", err
		}
		writeUint(uint64(len(rows)))
		for _, row := range rows {
			id, ok := row["id"].(int64)
			if !ok {
				return "", fmt.Errorf("relstore: hash %s: row id %v (%T) is not int64", name, row["id"], row["id"])
			}
			writeStr("row")
			writeUint(uint64(id))
			for _, col := range t.schema.Columns {
				if err := hashValue(writeStr, writeUint, row[col.Name]); err != nil {
					return "", fmt.Errorf("relstore: hash %s.%s id=%d: %w", name, col.Name, id, err)
				}
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// hashValue writes one canonical type-tagged value.
func hashValue(writeStr func(string), writeUint func(uint64), v any) error {
	switch x := v.(type) {
	case nil:
		writeStr("n")
	case int64:
		writeStr("i")
		writeUint(uint64(x))
	case float64:
		writeStr("f")
		writeStr(strconv.FormatFloat(x, 'g', -1, 64))
	case string:
		writeStr("s")
		writeStr(x)
	case bool:
		writeStr("b")
		if x {
			writeUint(1)
		} else {
			writeUint(0)
		}
	case time.Time:
		writeStr("t")
		writeUint(uint64(x.UTC().UnixNano()))
	default:
		return fmt.Errorf("unhashable value type %T", v)
	}
	return nil
}
