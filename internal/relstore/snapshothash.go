package relstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
)

// Hash returns a deterministic digest of the snapshot's entire visible
// state: SHA-256 over the canonical serialization (canon.go) of every
// table. Two snapshots hash equal iff they hold the same rows with the
// same primary keys and values — which is exactly the
// bit-identical-materialization property the event log's replay tests
// assert (rebuild the store twice from the same log prefix, hash both,
// compare).
//
// The serialization is canonical, never "whatever iteration order the
// maps had": tables in sorted-name order, rows in primary-key order (the
// order Select already guarantees, merged across partitions), columns in
// schema declaration order with the id first, and every value rendered
// through an explicit type-tagged encoding (times as UTC nanoseconds, so
// no location or formatting ambiguity survives). Nothing
// wall-clock-dependent is hashed: no epochs, no snapshot timestamps, no
// WAL positions — and nothing partition-dependent either: primary keys
// are allocated in call order from per-table counters shared across
// partitions and Select merges partitions back into primary-key order, so
// the same event history replayed into stores with different partition
// counts hashes identically. Checkpoint images reuse this exact
// serialization per partition.
func (sn *Snapshot) Hash() (string, error) {
	h := sha256.New()
	cw := &canonWriter{w: h}
	names := sn.TableNames()
	sort.Strings(names)
	for _, name := range names {
		var t *table
		for _, pv := range sn.v.parts {
			if tt, ok := pv.ts.byName[name]; ok {
				t = tt
				break
			}
		}
		if t == nil {
			return "", fmt.Errorf("relstore: hash: no table %s", name)
		}
		cw.str("table")
		cw.str(name)
		rows, err := sn.Select(Query{Table: name})
		if err != nil {
			return "", err
		}
		cw.uint(uint64(len(rows)))
		for _, row := range rows {
			if err := cw.row(name, t.schema.Columns, row); err != nil {
				return "", err
			}
		}
	}
	if cw.err != nil {
		return "", cw.err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
