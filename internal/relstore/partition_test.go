package relstore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// applyRoutedOps drives one deterministic op sequence into a store with
// any partition count, routing each logical row to partition key%N — the
// same modular routing the archive uses for workflow stripes. Returned
// ids feed the update/delete phases so every store sees the identical
// logical history.
func applyRoutedOps(t *testing.T, s *Store, rows int) {
	t.Helper()
	for _, ts := range concurrencySchemas() {
		if err := s.CreateTable(ts); err != nil {
			t.Fatal(err)
		}
	}
	n := s.NumPartitions()
	parentIDs := make([]int64, rows)
	childIDs := make([]int64, rows)
	for i := 0; i < rows; i++ {
		w := s.Writer(i % n)
		id, err := w.Insert("parent", Row{"name": fmt.Sprintf("p%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		parentIDs[i] = id
	}
	for i := 0; i < rows; i++ {
		w := s.Writer(i % n)
		id, err := w.Insert("child", Row{"parent_id": parentIDs[i], "n": int64(i * i)})
		if err != nil {
			t.Fatal(err)
		}
		childIDs[i] = id
	}
	for i := 0; i < rows; i += 3 {
		w := s.Writer(i % n)
		if err := w.Update("parent", parentIDs[i], Row{"name": fmt.Sprintf("p%d-renamed", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Drop a scattering of child+parent pairs; both route to i%n, so the
	// whole history of any one row plays out in a single partition.
	for i := 5; i < rows; i += 7 {
		w := s.Writer(i % n)
		if err := w.Delete("child", childIDs[i]); err != nil {
			t.Fatal(err)
		}
		if err := w.Delete("parent", parentIDs[i]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHashIndependentOfPartitionCount is the acceptance property for the
// partitioned refactor: the same logical history applied to 1-, 4- and
// 16-partition stores materializes the same snapshot hash, because
// primary keys come from per-table allocators shared across partitions
// and Select merges partitions back into primary-key order.
func TestHashIndependentOfPartitionCount(t *testing.T) {
	hashes := map[int]string{}
	for _, parts := range []int{1, 4, 16} {
		s := NewStoreN(parts)
		applyRoutedOps(t, s, 200)
		sn := s.Snapshot()
		h, err := sn.Hash()
		sn.Close()
		if err != nil {
			t.Fatalf("%d partitions: %v", parts, err)
		}
		hashes[parts] = h
	}
	if hashes[1] != hashes[4] || hashes[4] != hashes[16] {
		t.Fatalf("snapshot hash depends on partition count:\n 1: %s\n 4: %s\n16: %s",
			hashes[1], hashes[4], hashes[16])
	}
}

// TestWriterPartitionPinning checks a Writer commits into exactly its
// partition: epochs move only there, and cross-partition reads still see
// every row through the merged view.
func TestWriterPartitionPinning(t *testing.T) {
	s := NewStoreN(4)
	if err := s.CreateTable(concurrencySchemas()[0]); err != nil {
		t.Fatal(err)
	}
	before := s.Epochs()
	w := s.Writer(2)
	if w.Partition() != 2 {
		t.Fatalf("Writer(2).Partition() = %d", w.Partition())
	}
	if _, err := w.Insert("parent", Row{"name": "pinned"}); err != nil {
		t.Fatal(err)
	}
	after := s.Epochs()
	for i := range after {
		want := before[i]
		if i == 2 {
			want++
		}
		if after[i] != want {
			t.Fatalf("partition %d epoch %d, want %d (vector %v -> %v)", i, after[i], want, before, after)
		}
	}
	rows, err := s.Select(Query{Table: "parent"})
	if err != nil || len(rows) != 1 {
		t.Fatalf("merged select saw %d rows, %v; want 1", len(rows), err)
	}
}

// TestSnapshotNeverSeesTornMultiPartitionBatch hammers InsertBatchParts
// batches that straddle every partition while snapshot readers count
// rows per batch marker: any snapshot must see a whole batch or none of
// it, never a prefix — the vector-epoch acquisition has to be atomic
// with respect to the multi-partition commit.
func TestSnapshotNeverSeesTornMultiPartitionBatch(t *testing.T) {
	const parts = 4
	const batchLen = 8 // 2 rows per partition
	s := NewStoreN(parts)
	if err := s.CreateTable(TableSchema{
		Name: "events",
		Columns: []Column{
			{Name: "batch", Type: Int},
		},
		Indexes: [][]string{{"batch"}},
	}); err != nil {
		t.Fatal(err)
	}

	const totalBatches = 600
	var batches atomic.Int64
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		for b := int64(0); b < totalBatches; b++ {
			rows := make([]Row, batchLen)
			routes := make([]int, batchLen)
			for i := range rows {
				rows[i] = Row{"batch": b}
				routes[i] = i % parts
			}
			if _, err := s.InsertBatchParts("events", rows, routes); err != nil {
				t.Error(err)
				return
			}
			batches.Store(b + 1)
		}
	}()

	// Readers probe through the batch index (bounded work per check, so
	// the test stays sane on one core): the newest possibly-in-flight
	// batch must be all-or-nothing, and batches committed strictly before
	// the snapshot pin must be whole.
	var rwg sync.WaitGroup
	for r := 0; r < 3; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			for k := 0; ; k++ {
				hi := batches.Load() // committed strictly before the pin below
				sn := s.Snapshot()
				probe := []int64{hi} // in flight (or next) at pin time
				if hi > 0 {
					probe = append(probe, hi-1, int64(k)%hi)
				}
				for _, b := range probe {
					rows, err := sn.Select(Query{Table: "events", Conds: []Cond{Eq("batch", b)}})
					if err != nil {
						t.Error(err)
						sn.Close()
						return
					}
					if n := len(rows); n != 0 && n != batchLen {
						t.Errorf("snapshot %v saw torn batch %d: %d of %d rows", sn.Epochs(), b, n, batchLen)
					}
					if b < hi && len(rows) != batchLen {
						t.Errorf("snapshot %v lost committed batch %d: saw %d of %d rows", sn.Epochs(), b, len(rows), batchLen)
					}
				}
				sn.Close()
				if hi >= totalBatches {
					return
				}
			}
		}(r)
	}
	wwg.Wait()
	rwg.Wait()
}

// TestReadersNeverLoseRowsToGCPerPartition is the per-partition version
// of TestReadersNeverLoseRowsToGC: every partition has its own writer
// constantly superseding one pinned row while readers snapshot across
// the whole vector. Run under -race this exercises each partition's
// epoch-pin registry and GC horizon independently.
func TestReadersNeverLoseRowsToGCPerPartition(t *testing.T) {
	const parts = 4
	s := NewStoreN(parts)
	if err := s.CreateTable(concurrencySchemas()[0]); err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, parts)
	for p := 0; p < parts; p++ {
		id, err := s.Writer(p).Insert("parent", Row{"name": fmt.Sprintf("pinned%d", p)})
		if err != nil {
			t.Fatal(err)
		}
		ids[p] = id
	}
	stop := make(chan struct{})
	var wwg sync.WaitGroup
	for p := 0; p < parts; p++ {
		wwg.Add(1)
		go func(p int) {
			defer wwg.Done()
			w := s.Writer(p)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := w.Update("parent", ids[p], Row{"name": fmt.Sprintf("p%d-v%d", p, i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	var rwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for k := 0; k < 300; k++ {
				sn := s.Snapshot()
				for p, id := range ids {
					if row, err := sn.Get("parent", id); err != nil || row == nil {
						t.Errorf("snapshot %v lost partition %d row %d: %v, %v", sn.Epochs(), p, id, row, err)
						sn.Close()
						return
					}
				}
				if rows, err := sn.Select(Query{Table: "parent"}); err != nil || len(rows) != parts {
					t.Errorf("snapshot Select = %d rows, %v, want %d", len(rows), err, parts)
					sn.Close()
					return
				}
				sn.Close()
			}
		}()
	}
	rwg.Wait()
	close(stop)
	wwg.Wait()
	if n := s.GC(); n < 0 {
		t.Fatalf("GC reclaimed %d", n)
	}
}
