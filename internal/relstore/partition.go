package relstore

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// partition is one independently writable slice of a Store: its own writer
// mutex, epoch counter, table instances, WAL segment chain, epoch-pin
// registry and version-GC horizon. The single-writer / many-reader MVCC
// discipline the store used to apply globally now applies per partition,
// so writers on distinct partitions commit truly in parallel — each with
// its own group-commit fsync — while readers stay lock-free.
type partition struct {
	idx int
	// writeMu serializes this partition's Insert/InsertBatch/Update/Delete
	// (and its slice of CreateTable). Multi-partition batches lock several
	// writeMus in ascending partition order.
	writeMu sync.Mutex
	// epoch is the partition's newest published epoch. A mutation works at
	// epoch+1 and publishes by storing the new value after all its versions
	// are linked, so a reader that loads the epoch sees all of the mutation
	// or none.
	epoch atomic.Uint64
	// tables is copy-on-write: CreateTable swaps in a whole new set, so
	// readers resolve table names with one atomic load. Every partition
	// holds its own instances of the same logical tables (shared schema and
	// id allocator, disjoint rows).
	tables atomic.Pointer[tableSet]
	wal    atomic.Pointer[walWriter] // nil for purely in-memory partitions

	// snapMu guards the pin registry (open snapshots plus in-flight
	// Store-level reads); minLive caches the oldest pinned epoch
	// (MaxUint64 when none) as the version-GC floor. gcHorizon reads
	// minLive under snapMu too, so horizon computation serializes with
	// pin registration — see pin.
	snapMu  sync.Mutex
	pins    map[*epochPin]struct{}
	minLive atomic.Uint64

	// Checkpoint state; dir is empty unless the store is directory-backed.
	dir           string
	ckptMu        sync.Mutex // one checkpoint at a time per partition
	ckptRunning   atomic.Bool
	recsSinceCkpt atomic.Uint64
	lastCkptSeq   atomic.Uint64
	lastCkptUnix  atomic.Int64 // UnixNano of last completed checkpoint; 0 = never
	lastCkptBytes atomic.Int64
	lastCkptDurNS atomic.Int64

	// Pre-resolved per-partition telemetry children (Vec.With locks and
	// must stay off hot paths).
	mLive     *telemetry.Gauge
	mReclaims *telemetry.Counter
}

func newPartition(idx int) *partition {
	label := strconv.Itoa(idx)
	p := &partition{
		idx:       idx,
		pins:      make(map[*epochPin]struct{}),
		mLive:     mSnapshotsLive.With(label),
		mReclaims: mVersionReclaims.With(label),
	}
	p.tables.Store(&tableSet{byName: make(map[string]*table)})
	p.minLive.Store(^uint64(0))
	return p
}

// table returns the partition's instance of tableName, or an error.
func (p *partition) table(tableName string) (*table, error) {
	t, ok := p.tables.Load().byName[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %s", tableName)
	}
	return t, nil
}

// insert runs Insert/InsertOwned against this partition. The caller does
// not hold writeMu.
func (p *partition) insert(s *Store, tableName string, row Row, owned bool) (int64, error) {
	p.writeMu.Lock()
	defer p.writeMu.Unlock()
	t, err := p.table(tableName)
	if err != nil {
		return 0, err
	}
	var n Row
	if owned {
		n, err = t.normalizeOwned(row)
	} else {
		n, err = t.normalize(row)
	}
	if err != nil {
		return 0, err
	}
	return p.insertRowLocked(s, tableName, t, n)
}

// insertRowLocked runs the shared tail of the insert paths: uniqueness and
// FK checks, id assignment, version linking and epoch publish. The caller
// holds p.writeMu and has normalized n.
func (p *partition) insertRowLocked(s *Store, tableName string, t *table, n Row) (int64, error) {
	e := p.epoch.Load() + 1
	keys := t.buildUniqueKeys(n)
	if err := t.checkUniqueKeys(keys, 0); err != nil {
		return 0, err
	}
	if err := s.checkForeignKeys(p, t, n); err != nil {
		return 0, err
	}
	id := t.alloc.Add(1)
	n["id"] = id
	t.putRowKeys(n, e, keys)
	p.epoch.Store(e)
	t.live.Add(1)
	if w := p.wal.Load(); w != nil {
		if err := w.logInsertBatch(tableName, []Row{n}); err != nil {
			return id, err
		}
		p.noteRecords(s, 1)
	}
	return id, nil
}

// insertBatch adds many rows under one lock acquisition, one epoch, and one
// WAL record. It fails atomically: on any error no row from the batch is
// applied; because the whole batch publishes as a single epoch, a snapshot
// either sees all of the batch or none of it.
func (p *partition) insertBatch(s *Store, tableName string, rows []Row) ([]int64, error) {
	p.writeMu.Lock()
	defer p.writeMu.Unlock()
	t, err := p.table(tableName)
	if err != nil {
		return nil, err
	}
	normalized, err := p.validateBatch(s, tableName, t, rows)
	if err != nil {
		return nil, err
	}
	e := p.epoch.Load() + 1
	ids := make([]int64, len(normalized))
	for i, n := range normalized {
		id := t.alloc.Add(1)
		n["id"] = id
		t.putRow(n, e)
		ids[i] = id
	}
	p.epoch.Store(e)
	t.live.Add(int64(len(normalized)))
	if w := p.wal.Load(); w != nil {
		if err := w.logInsertBatch(tableName, normalized); err != nil {
			return ids, err
		}
		p.noteRecords(s, 1)
	}
	return ids, nil
}

// validateBatch normalizes and validates every row before any mutation, so
// batch failure is atomic. Unique checks also consider earlier rows in the
// same batch. The caller holds p.writeMu.
func (p *partition) validateBatch(s *Store, tableName string, t *table, rows []Row) ([]Row, error) {
	normalized := make([]Row, len(rows))
	batchKeys := make([]map[string]bool, len(t.schema.Unique))
	for i := range batchKeys {
		batchKeys[i] = make(map[string]bool)
	}
	for i, r := range rows {
		n, err := t.normalize(r)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		if err := t.checkUnique(n, 0); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		for u, cols := range t.schema.Unique {
			key := compositeKey(n, cols)
			if batchKeys[u][key] {
				return nil, fmt.Errorf("row %d: %w", i, &UniqueError{Table: tableName, Columns: cols})
			}
			batchKeys[u][key] = true
		}
		if err := s.checkForeignKeys(p, t, n); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		normalized[i] = n
	}
	return normalized, nil
}

// update rewrites the named columns of the row with primary key id, which
// must live in this partition.
func (p *partition) update(s *Store, tableName string, id int64, changes Row) error {
	p.writeMu.Lock()
	defer p.writeMu.Unlock()
	t, err := p.table(tableName)
	if err != nil {
		return err
	}
	chain, ok := t.rows.Load(id)
	var old *rowVersion
	if ok {
		old = chain.liveVersion()
	}
	if old == nil {
		return fmt.Errorf("relstore: %s has no row %d", tableName, id)
	}
	merged := old.row.Clone()
	for k, v := range changes {
		if k == "id" {
			return fmt.Errorf("relstore: cannot update primary key")
		}
		ct, ok := t.colType[k]
		if !ok {
			return fmt.Errorf("relstore: table %s has no column %s", tableName, k)
		}
		cvv, err := coerce(tableName, k, ct, v)
		if err != nil {
			return err
		}
		if cvv == nil {
			nullable := false
			for _, c := range t.schema.Columns {
				if c.Name == k {
					nullable = c.Nullable
					break
				}
			}
			if !nullable {
				return fmt.Errorf("relstore: table %s: column %s may not be null", tableName, k)
			}
		}
		merged[k] = cvv
	}
	if err := t.checkUnique(merged, id); err != nil {
		return err
	}
	if err := s.checkForeignKeys(p, t, merged); err != nil {
		return err
	}
	e := p.epoch.Load() + 1
	t.supersede(chain, old, merged, e)
	p.gcAfterWrite(t, chain, id, old.row, merged, e-1)
	p.epoch.Store(e)
	if w := p.wal.Load(); w != nil {
		if err := w.logUpdate(tableName, id, merged); err != nil {
			return err
		}
		p.noteRecords(s, 1)
	}
	return nil
}

// delete removes a row; deleting an absent row is a no-op.
func (p *partition) delete(s *Store, tableName string, id int64) error {
	p.writeMu.Lock()
	defer p.writeMu.Unlock()
	t, err := p.table(tableName)
	if err != nil {
		return err
	}
	chain, ok := t.rows.Load(id)
	if !ok {
		return nil
	}
	old := chain.liveVersion()
	if old == nil {
		return nil
	}
	e := p.epoch.Load() + 1
	t.kill(old, e)
	p.gcAfterWrite(t, chain, id, old.row, nil, e-1)
	p.epoch.Store(e)
	t.live.Add(-1)
	if w := p.wal.Load(); w != nil {
		if err := w.logDelete(tableName, id); err != nil {
			return err
		}
		p.noteRecords(s, 1)
	}
	return nil
}

// gcHorizon is the oldest epoch any current or future reader can pin on
// this partition: the oldest registered pin's epoch, or the last published
// epoch when none is open. minLive is read under snapMu so the computation
// serializes with pin registration: a registration is one snapMu critical
// section (epoch load + minLive publish), so it either lands before this
// read — and minLive accounts for it — or it runs entirely after, in which
// case it loads an epoch >= published and cannot observe anything pruned
// at or below the horizon returned here.
func (p *partition) gcHorizon(published uint64) uint64 {
	p.snapMu.Lock()
	m := p.minLive.Load()
	p.snapMu.Unlock()
	if m < published {
		return m
	}
	return published
}

// gcAfterWrite prunes the version chains a mutation just touched — the
// row's own chain plus the posting chains for the old and new key values —
// so hot rows do not accumulate history when no snapshot needs it.
func (p *partition) gcAfterWrite(t *table, c *rowChain, id int64, oldRow, newRow Row, published uint64) {
	minE := p.gcHorizon(published)
	n := pruneChain(c, minE)
	if hv := c.head.Load(); hv != nil {
		if end := hv.end.Load(); end != 0 && end <= minE {
			// The whole chain is invisible at and after the horizon:
			// drop the row entry itself. Primary keys are never reused,
			// so a later insert cannot collide with a paused reader.
			t.rows.Delete(id)
			n++
		}
	}
	if oldRow != nil {
		n += t.pruneRowKeys(oldRow, minE)
	}
	if newRow != nil {
		n += t.pruneRowKeys(newRow, minE)
	}
	if n > 0 {
		p.mReclaims.Add(uint64(n))
	}
}

// pin loads the partition's newest published epoch and registers it as a
// floor for the version-GC horizon, in one snapMu critical section.
func (p *partition) pin() *epochPin {
	p.snapMu.Lock()
	pin := &epochPin{epoch: p.epoch.Load()}
	p.pins[pin] = struct{}{}
	if pin.epoch < p.minLive.Load() {
		p.minLive.Store(pin.epoch)
	}
	p.snapMu.Unlock()
	return pin
}

// unpin releases a pin and recomputes the GC floor.
func (p *partition) unpin(pin *epochPin) {
	p.snapMu.Lock()
	delete(p.pins, pin)
	min := ^uint64(0)
	for q := range p.pins {
		if q.epoch < min {
			min = q.epoch
		}
	}
	p.minLive.Store(min)
	p.snapMu.Unlock()
}

// noteRecords counts WAL records toward the automatic-checkpoint trigger
// and kicks off a background checkpoint when the threshold is crossed.
// Called under writeMu right after a successful WAL append.
func (p *partition) noteRecords(s *Store, n uint64) {
	if s.ckptEvery == 0 || p.dir == "" {
		return
	}
	if p.recsSinceCkpt.Add(n) >= s.ckptEvery && p.ckptRunning.CompareAndSwap(false, true) {
		go func() {
			defer p.ckptRunning.Store(false)
			// Best-effort: a failed background checkpoint leaves the WAL
			// intact and the next threshold crossing retries. The error is
			// surfaced via CheckpointStats.
			_ = p.checkpoint(s)
		}()
	}
}
