package relstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestOpenPersistReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(wfSchema()); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(jobSchema()); err != nil {
		t.Fatal(err)
	}
	wf, err := s.Insert("workflow", Row{"wf_uuid": "u1", "dax_label": "dart", "ts": now})
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Row, 10)
	for i := range jobs {
		jobs[i] = Row{"wf_id": wf, "exec_job_id": fmt.Sprintf("j%d", i), "runtime": float64(i)}
	}
	ids, err := s.InsertBatch("job", jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update("job", ids[3], Row{"runtime": 74.0, "done": true}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("job", ids[7]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n, _ := re.Count("job"); n != 9 {
		t.Fatalf("job count after reopen = %d, want 9", n)
	}
	row, err := re.Get("job", ids[3])
	if err != nil || row == nil {
		t.Fatalf("Get after reopen: %v, %v", row, err)
	}
	if row["runtime"] != 74.0 || row["done"] != true {
		t.Fatalf("update lost: %v", row)
	}
	if gone, _ := re.Get("job", ids[7]); gone != nil {
		t.Fatal("deleted row resurrected")
	}
	wfRow, _ := re.Get("workflow", wf)
	if ts := wfRow["ts"].(time.Time); !ts.Equal(now) {
		t.Fatalf("time corrupted across reopen: %v", ts)
	}
	// Indexes rebuilt: indexed select and unique enforcement both work.
	rows, err := re.Select(Query{Table: "job", Conds: []Cond{Eq("wf_id", wf)}})
	if err != nil || len(rows) != 9 {
		t.Fatalf("indexed select after reopen: %d rows, %v", len(rows), err)
	}
	if _, err := re.Insert("workflow", Row{"wf_uuid": "u1", "ts": now}); err == nil {
		t.Fatal("unique constraint not rebuilt")
	}
	// New inserts continue the id sequence rather than reusing ids.
	nid, err := re.Insert("job", Row{"wf_id": wf, "exec_job_id": "new"})
	if err != nil {
		t.Fatal(err)
	}
	if nid <= ids[len(ids)-1] {
		t.Fatalf("id sequence reset: new id %d", nid)
	}
}

func TestOpenTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.CreateTable(wfSchema())
	_, _ = s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write of the final record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"insert","table":"workflow","rows":[{"wf_uu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := Open(path)
	if err != nil {
		t.Fatalf("torn final line not tolerated: %v", err)
	}
	defer re.Close()
	if n, _ := re.Count("workflow"); n != 1 {
		t.Fatalf("count = %d, want 1", n)
	}
}

func TestOpenCorruptionMidFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.db")
	content := `{"op":"create","table":"w","schema":{"Name":"w","Columns":[{"Name":"a","Type":0,"Nullable":true}]}}
THIS IS NOT JSON
{"op":"insert","table":"w","rows":[{"id":1,"a":5}]}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestFlushMakesDataVisibleToReaderProcess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flush.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_ = s.CreateTable(wfSchema())
	_, _ = s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// A second store opened on the same (flushed) file sees the data —
	// how the dashboard reads a database the loader is still writing.
	re := NewStore()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := re.replay(f); err != nil {
		t.Fatal(err)
	}
	if n, _ := re.Count("workflow"); n != 1 {
		t.Fatalf("reader sees %d rows, want 1", n)
	}
}

func TestInMemoryFlushCloseNoops(t *testing.T) {
	s := NewStore()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
