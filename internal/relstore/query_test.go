package relstore

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func seedJobs(t *testing.T, s *Store, wf int64, n int) {
	t.Helper()
	rows := make([]Row, n)
	for i := 0; i < n; i++ {
		rows[i] = Row{
			"wf_id":       wf,
			"exec_job_id": fmt.Sprintf("job-%03d", i),
			"runtime":     float64(i % 10),
		}
	}
	if _, err := s.InsertBatch("job", rows); err != nil {
		t.Fatal(err)
	}
}

func TestSelectByIndexedColumn(t *testing.T) {
	s := newTestStore(t)
	wf1, _ := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	wf2, _ := s.Insert("workflow", Row{"wf_uuid": "u2", "ts": now})
	seedJobs(t, s, wf1, 20)
	seedJobs(t, s, wf2, 5)
	rows, err := s.Select(Query{Table: "job", Conds: []Cond{Eq("wf_id", wf1)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("got %d rows, want 20", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].ID() <= rows[i-1].ID() {
			t.Fatal("indexed select not in pk order")
		}
	}
}

func TestSelectByUniqueColumn(t *testing.T) {
	s := newTestStore(t)
	_, _ = s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	row, err := s.SelectOne(Query{Table: "workflow", Conds: []Cond{Eq("wf_uuid", "u1")}})
	if err != nil || row == nil {
		t.Fatalf("SelectOne = %v, %v", row, err)
	}
	none, err := s.SelectOne(Query{Table: "workflow", Conds: []Cond{Eq("wf_uuid", "ghost")}})
	if err != nil || none != nil {
		t.Fatalf("SelectOne(ghost) = %v, %v", none, err)
	}
}

func TestSelectOneAmbiguous(t *testing.T) {
	s := newTestStore(t)
	wf, _ := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	seedJobs(t, s, wf, 3)
	if _, err := s.SelectOne(Query{Table: "job", Conds: []Cond{Eq("wf_id", wf)}}); err == nil {
		t.Fatal("ambiguous SelectOne succeeded")
	}
}

func TestSelectScanWithWhere(t *testing.T) {
	s := newTestStore(t)
	wf, _ := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	seedJobs(t, s, wf, 30)
	rows, err := s.Select(Query{
		Table: "job",
		Where: func(r Row) bool { return r["runtime"].(float64) >= 8 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // runtimes cycle 0..9 over 30 rows; 8,9 appear 3x each
		t.Fatalf("got %d rows, want 6", len(rows))
	}
}

func TestSelectOrderByAndLimit(t *testing.T) {
	s := newTestStore(t)
	wf, _ := s.Insert("workflow", Row{"wf_uuid": "u1", "ts": now})
	seedJobs(t, s, wf, 25)
	rows, err := s.Select(Query{Table: "job", OrderBy: "runtime", Desc: true, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("limit ignored: %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i]["runtime"].(float64) > rows[i-1]["runtime"].(float64) {
			t.Fatal("descending order violated")
		}
	}
	if _, err := s.Select(Query{Table: "job", OrderBy: "ghost"}); err == nil {
		t.Fatal("order by unknown column accepted")
	}
}

func TestSelectTimeOrdering(t *testing.T) {
	s := newTestStore(t)
	base := now
	for i := 4; i >= 0; i-- {
		_, err := s.Insert("workflow", Row{"wf_uuid": fmt.Sprintf("u%d", i), "ts": base.Add(time.Duration(i) * time.Minute)})
		if err != nil {
			t.Fatal(err)
		}
	}
	rows, err := s.Select(Query{Table: "workflow", OrderBy: "ts"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i]["ts"].(time.Time).Before(rows[i-1]["ts"].(time.Time)) {
			t.Fatal("time ordering violated")
		}
	}
}

func TestSelectErrors(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.Select(Query{Table: "ghost"}); err == nil {
		t.Error("select from unknown table accepted")
	}
	if _, err := s.Select(Query{Table: "job", Conds: []Cond{Eq("ghost", 1)}}); err == nil {
		t.Error("condition on unknown column accepted")
	}
}

func TestSelectIndexedEqualsScanProperty(t *testing.T) {
	// Property: for random data, an indexed equality query returns exactly
	// the rows a full scan with the same predicate returns.
	s := newTestStore(t)
	wfIDs := make([]int64, 5)
	for i := range wfIDs {
		wfIDs[i], _ = s.Insert("workflow", Row{"wf_uuid": fmt.Sprintf("u%d", i), "ts": now})
	}
	n := 0
	f := func(picks []uint8) bool {
		for _, p := range picks {
			wf := wfIDs[int(p)%len(wfIDs)]
			n++
			if _, err := s.Insert("job", Row{"wf_id": wf, "exec_job_id": fmt.Sprintf("j%05d", n)}); err != nil {
				return false
			}
		}
		for _, wf := range wfIDs {
			indexed, err := s.Select(Query{Table: "job", Conds: []Cond{Eq("wf_id", wf)}})
			if err != nil {
				return false
			}
			target := wf
			scanned, err := s.Select(Query{Table: "job", Where: func(r Row) bool { return r["wf_id"] == target }})
			if err != nil {
				return false
			}
			if len(indexed) != len(scanned) {
				return false
			}
			for i := range indexed {
				if indexed[i].ID() != scanned[i].ID() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
