package relstore

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// concurrencySchemas is a minimal parent/child pair exercising the
// per-table locking plus FK read-locks.
func concurrencySchemas() []TableSchema {
	return []TableSchema{
		{
			Name: "parent",
			Columns: []Column{
				{Name: "name", Type: Str},
			},
			Unique: [][]string{{"name"}},
		},
		{
			Name: "child",
			Columns: []Column{
				{Name: "parent_id", Type: Int},
				{Name: "n", Type: Int},
			},
			ForeignKeys: []ForeignKey{{Column: "parent_id", RefTable: "parent", RefColumn: "id"}},
			Indexes:     [][]string{{"parent_id"}},
		},
	}
}

// TestConcurrentInsertBatchAcrossTables runs concurrent batch writers on
// two tables (with an FK between them) plus concurrent readers; run under
// -race this checks the per-table locking discipline end to end.
func TestConcurrentInsertBatchAcrossTables(t *testing.T) {
	s := NewStore()
	for _, ts := range concurrencySchemas() {
		if err := s.CreateTable(ts); err != nil {
			t.Fatal(err)
		}
	}
	const writers = 4
	const batches = 25
	const batchLen = 8

	// Pre-create one parent per writer so child inserts always have a
	// valid FK target.
	parentIDs := make([]int64, writers)
	for i := range parentIDs {
		id, err := s.Insert("parent", Row{"name": fmt.Sprintf("p%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		parentIDs[i] = id
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers*2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) { // child writer
			defer wg.Done()
			for b := 0; b < batches; b++ {
				rows := make([]Row, batchLen)
				for i := range rows {
					rows[i] = Row{"parent_id": parentIDs[w], "n": int64(b*batchLen + i)}
				}
				if _, err := s.InsertBatch("child", rows); err != nil {
					errs <- err
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) { // parent writer + reader
			defer wg.Done()
			for b := 0; b < batches; b++ {
				if _, err := s.Insert("parent", Row{"name": fmt.Sprintf("p%d-%d", w, b)}); err != nil {
					errs <- err
					return
				}
				if _, err := s.Select(Query{Table: "child", Conds: []Cond{Eq("parent_id", parentIDs[w])}}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n, _ := s.Count("child"); n != writers*batches*batchLen {
		t.Fatalf("child rows = %d, want %d", n, writers*batches*batchLen)
	}
	if n, _ := s.Count("parent"); n != writers+writers*batches {
		t.Fatalf("parent rows = %d, want %d", n, writers+writers*batches)
	}
}

// TestConcurrentFlushGroupCommit checks that concurrent writers calling
// Flush against a synced WAL all return with their records durable, and
// that the WAL replays to the same state.
func TestConcurrentFlushGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(concurrencySchemas()[0]); err != nil {
		t.Fatal(err)
	}
	s.SetSync(true)

	const writers = 8
	const each = 20
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := s.Insert("parent", Row{"name": fmt.Sprintf("w%d-%d", w, i)}); err != nil {
					errs <- err
					return
				}
				if err := s.Flush(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	syncs := s.Syncs()
	if syncs == 0 || syncs > writers*each {
		t.Fatalf("syncs = %d, want 1..%d", syncs, writers*each)
	}
	t.Logf("group commit: %d Flush calls coalesced into %d fsyncs", writers*each, syncs)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n, _ := re.Count("parent"); n != writers*each {
		t.Fatalf("replayed rows = %d, want %d", n, writers*each)
	}
}
