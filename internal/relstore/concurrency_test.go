package relstore

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// concurrencySchemas is a minimal parent/child pair exercising the
// per-table locking plus FK read-locks.
func concurrencySchemas() []TableSchema {
	return []TableSchema{
		{
			Name: "parent",
			Columns: []Column{
				{Name: "name", Type: Str},
			},
			Unique: [][]string{{"name"}},
		},
		{
			Name: "child",
			Columns: []Column{
				{Name: "parent_id", Type: Int},
				{Name: "n", Type: Int},
			},
			ForeignKeys: []ForeignKey{{Column: "parent_id", RefTable: "parent", RefColumn: "id"}},
			Indexes:     [][]string{{"parent_id"}},
		},
	}
}

// TestConcurrentInsertBatchAcrossTables runs concurrent batch writers on
// two tables (with an FK between them) plus concurrent readers; run under
// -race this checks the per-table locking discipline end to end.
func TestConcurrentInsertBatchAcrossTables(t *testing.T) {
	s := NewStore()
	for _, ts := range concurrencySchemas() {
		if err := s.CreateTable(ts); err != nil {
			t.Fatal(err)
		}
	}
	const writers = 4
	const batches = 25
	const batchLen = 8

	// Pre-create one parent per writer so child inserts always have a
	// valid FK target.
	parentIDs := make([]int64, writers)
	for i := range parentIDs {
		id, err := s.Insert("parent", Row{"name": fmt.Sprintf("p%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		parentIDs[i] = id
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers*2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) { // child writer
			defer wg.Done()
			for b := 0; b < batches; b++ {
				rows := make([]Row, batchLen)
				for i := range rows {
					rows[i] = Row{"parent_id": parentIDs[w], "n": int64(b*batchLen + i)}
				}
				if _, err := s.InsertBatch("child", rows); err != nil {
					errs <- err
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) { // parent writer + reader
			defer wg.Done()
			for b := 0; b < batches; b++ {
				if _, err := s.Insert("parent", Row{"name": fmt.Sprintf("p%d-%d", w, b)}); err != nil {
					errs <- err
					return
				}
				if _, err := s.Select(Query{Table: "child", Conds: []Cond{Eq("parent_id", parentIDs[w])}}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n, _ := s.Count("child"); n != writers*batches*batchLen {
		t.Fatalf("child rows = %d, want %d", n, writers*batches*batchLen)
	}
	if n, _ := s.Count("parent"); n != writers+writers*batches {
		t.Fatalf("parent rows = %d, want %d", n, writers+writers*batches)
	}
}

// TestCountNeverTornMidBatch: Store.Count moves by whole published
// mutations only. A single writer inserts fixed-size batches while readers
// poll Count; a count that is not a multiple of the batch size means the
// counter exposed a partially applied batch (regression: the per-row
// counter used to increment before the batch's epoch published).
func TestCountNeverTornMidBatch(t *testing.T) {
	s := NewStore()
	if err := s.CreateTable(concurrencySchemas()[0]); err != nil {
		t.Fatal(err)
	}
	const batchLen = 8
	const batches = 200
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n, err := s.Count("parent")
				if err != nil {
					t.Error(err)
					return
				}
				if n%batchLen != 0 {
					t.Errorf("Count = %d mid-batch, want a multiple of %d", n, batchLen)
					return
				}
			}
		}()
	}
	for b := 0; b < batches; b++ {
		rows := make([]Row, batchLen)
		for i := range rows {
			rows[i] = Row{"name": fmt.Sprintf("p%d-%d", b, i)}
		}
		if _, err := s.InsertBatch("parent", rows); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	rwg.Wait()
	if n, _ := s.Count("parent"); n != batches*batchLen {
		t.Fatalf("final Count = %d, want %d", n, batches*batchLen)
	}
}

// TestReadersNeverLoseRowsToGC: a row that exists continuously must be
// visible to every snapshot and every Store-level read, no matter how the
// writer churns its versions. Regression for the GC-horizon race: a reader
// that had loaded its epoch but not yet registered it could race a writer
// whose prune horizon had already advanced past that epoch, silently
// emptying the reader's view.
func TestReadersNeverLoseRowsToGC(t *testing.T) {
	s := NewStore()
	if err := s.CreateTable(concurrencySchemas()[0]); err != nil {
		t.Fatal(err)
	}
	id, err := s.Insert("parent", Row{"name": "pinned"})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() { // writer: tight updates move the prune horizon constantly
		defer wwg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Update("parent", id, Row{"name": fmt.Sprintf("v%d", i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var rwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for k := 0; k < 500; k++ {
				sn := s.Snapshot()
				if row, err := sn.Get("parent", id); err != nil || row == nil {
					t.Errorf("snapshot at epoch %d lost the row: %v, %v", sn.Epoch(), row, err)
					sn.Close()
					return
				}
				sn.Close()
				if row, err := s.Get("parent", id); err != nil || row == nil {
					t.Errorf("live Get lost the row: %v, %v", row, err)
					return
				}
				if rows, err := s.Select(Query{Table: "parent"}); err != nil || len(rows) != 1 {
					t.Errorf("live Select = %d rows, %v, want 1", len(rows), err)
					return
				}
			}
		}()
	}
	rwg.Wait()
	close(stop)
	wwg.Wait()
}

// TestConcurrentFlushGroupCommit checks that concurrent writers calling
// Flush against a synced WAL all return with their records durable, and
// that the WAL replays to the same state.
func TestConcurrentFlushGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(concurrencySchemas()[0]); err != nil {
		t.Fatal(err)
	}
	s.SetSync(true)

	const writers = 8
	const each = 20
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := s.Insert("parent", Row{"name": fmt.Sprintf("w%d-%d", w, i)}); err != nil {
					errs <- err
					return
				}
				if err := s.Flush(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	syncs := s.Syncs()
	if syncs == 0 || syncs > writers*each {
		t.Fatalf("syncs = %d, want 1..%d", syncs, writers*each)
	}
	t.Logf("group commit: %d Flush calls coalesced into %d fsyncs", writers*each, syncs)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n, _ := re.Count("parent"); n != writers*each {
		t.Fatalf("replayed rows = %d, want %d", n, writers*each)
	}
}
