package relstore

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Directory-mode persistence: a store directory holds a MANIFEST fixing
// the partition count plus one subdirectory per partition, each with its
// own WAL segment chain and checkpoint images:
//
//	dir/MANIFEST                      {"version":1,"partitions":N}
//	dir/p000/wal-<start>.log          WAL segments; <start> = seq of first record
//	dir/p000/checkpoint-<seq>.ck      canonical state image covering WAL 1..<seq>
//
// A checkpoint cuts the partition's WAL exactly at its record high-water S
// (epoch publish and WAL append both happen under the partition's writer
// mutex, so "state at the pinned epoch" and "records 1..S" name the same
// thing), writes the canonical image for that epoch, and then deletes the
// WAL segments and older checkpoints it supersedes. Recovery is therefore
// load-newest-checkpoint + replay-segments-with-start-greater-than-S, and
// is bit-identical (by Snapshot.Hash) to replaying the whole history.
//
// Checkpoint image layout: one JSON header line (version, partition, seq,
// table schemas in creation order), the canonical state serialization from
// canon.go (the exact framing Snapshot.Hash digests), and a trailing raw
// SHA-256 of everything before it. The footer is verified before any row
// is applied, so a torn checkpoint write can never half-load; recovery
// falls back to the previous image, whose WAL segments are only deleted
// after a successor is durable.

// DefaultCheckpointEvery is the per-partition WAL record count between
// automatic checkpoints when Options doesn't override it.
const DefaultCheckpointEvery = 1 << 16

// Options configures OpenDir.
type Options struct {
	// Partitions is the partition count for a newly created directory;
	// 0 means 1. An existing directory's MANIFEST always wins, so a store
	// reopens with the partition count it was created with.
	Partitions int
	// CheckpointEvery is the number of WAL records a partition absorbs
	// before an automatic background checkpoint; 0 means
	// DefaultCheckpointEvery. Negative is impossible (unsigned); use
	// math.MaxUint64 to effectively disable automatic checkpoints.
	CheckpointEvery uint64
}

type dirManifest struct {
	Version    int `json:"version"`
	Partitions int `json:"partitions"`
}

type ckptHeader struct {
	Version   int           `json:"version"`
	Partition int           `json:"partition"`
	Seq       uint64        `json:"seq"`
	Tables    []TableSchema `json:"tables"`
}

// errInvalidCkpt marks a checkpoint image that failed verification (short
// file, bad footer, unparsable header) — recovery skips it and falls back
// to an older image, never half-applying it.
var errInvalidCkpt = errors.New("relstore: invalid checkpoint image")

func ckptPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%020d.ck", seq))
}

func partDirName(i int) string { return fmt.Sprintf("p%03d", i) }

// OpenDir opens (or creates) a partitioned, checkpoint-capable store at
// dir: it loads each partition's newest valid checkpoint, replays that
// partition's WAL tail (truncating a torn final record), and attaches the
// WAL writers. The partition count of an existing directory comes from its
// MANIFEST; opts.Partitions only applies to a fresh directory.
func OpenDir(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	n := opts.Partitions
	manifestPath := filepath.Join(dir, "MANIFEST")
	if b, err := os.ReadFile(manifestPath); err == nil {
		var m dirManifest
		if err := json.Unmarshal(b, &m); err != nil || m.Partitions < 1 {
			return nil, fmt.Errorf("relstore: bad MANIFEST in %s", dir)
		}
		n = m.Partitions
	} else if errors.Is(err, os.ErrNotExist) {
		if n < 1 {
			n = 1
		}
		b, _ := json.Marshal(dirManifest{Version: 1, Partitions: n})
		if err := writeFileSync(manifestPath, append(b, '\n')); err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	s := NewStoreN(n)
	s.dir = dir
	s.ckptEvery = opts.CheckpointEvery
	if s.ckptEvery == 0 {
		s.ckptEvery = DefaultCheckpointEvery
	}
	for i, p := range s.parts {
		p.dir = filepath.Join(dir, partDirName(i))
		if err := os.MkdirAll(p.dir, 0o755); err != nil {
			return nil, err
		}
	}
	// Recover every partition before attaching any writer: replaying
	// partition k's create records runs CreateTable across all partitions,
	// which must not be re-logged into already-attached WALs.
	seqs := make([]uint64, n)
	starts := make([]uint64, n)
	for i, p := range s.parts {
		seq, fileStart, err := p.recover(s)
		if err != nil {
			return nil, fmt.Errorf("relstore: recovering %s: %w", p.dir, err)
		}
		seqs[i], starts[i] = seq, fileStart
	}
	for _, p := range s.parts {
		p.epoch.Store(1)
	}
	for i, p := range s.parts {
		if err := p.attachWAL(seqs[i], starts[i]); err != nil {
			return nil, err
		}
	}
	registerCheckpointTelemetry(s)
	return s, nil
}

// recover rebuilds one partition from its newest valid checkpoint plus the
// WAL segments past it. It returns the recovered record high-water and the
// start of the segment new appends should continue in (0 when a fresh
// segment must be created).
func (p *partition) recover(s *Store) (seq, fileStart uint64, err error) {
	ckpts, err := listNumbered(p.dir, "checkpoint-", ".ck")
	if err != nil {
		return 0, 0, err
	}
	var base uint64
	for i := len(ckpts) - 1; i >= 0; i-- { // newest first
		got, lerr := p.loadCheckpoint(s, ckpts[i].path)
		if lerr == nil {
			base = got
			p.lastCkptSeq.Store(got)
			if st, serr := os.Stat(ckpts[i].path); serr == nil {
				p.lastCkptBytes.Store(st.Size())
				p.lastCkptUnix.Store(st.ModTime().UnixNano())
			}
			break
		}
		if !errors.Is(lerr, errInvalidCkpt) {
			return 0, 0, lerr
		}
	}

	files, err := listNumbered(p.dir, "wal-", ".log")
	if err != nil {
		return 0, 0, err
	}
	seq = base
	for idx, wf := range files {
		if wf.start <= base {
			// Fully covered by the checkpoint (segments are cut exactly at
			// checkpoint boundaries); left behind only if a post-checkpoint
			// cleanup crashed. Safe to drop now.
			_ = os.Remove(wf.path)
			continue
		}
		if wf.start != seq+1 {
			return 0, 0, fmt.Errorf("WAL gap: segment %s after seq %d", filepath.Base(wf.path), seq)
		}
		newest := idx == len(files)-1
		n, rerr := p.replaySegment(s, wf.path, newest)
		if rerr != nil {
			return 0, 0, rerr
		}
		seq = wf.start - 1 + n
		fileStart = wf.start
	}
	// Clear stale temp images from an interrupted checkpoint write.
	if tmps, _ := filepath.Glob(filepath.Join(p.dir, "*.tmp")); tmps != nil {
		for _, t := range tmps {
			_ = os.Remove(t)
		}
	}
	return seq, fileStart, nil
}

// replaySegment applies one WAL segment's records into the partition. Only
// the newest segment may end in a torn record (crash mid-append); the torn
// bytes are truncated away so the segment is clean for appending. Any
// malformed record elsewhere is corruption and fails recovery.
func (p *partition) replaySegment(s *Store, path string, newest bool) (uint64, error) {
	flags := os.O_RDONLY
	if newest {
		flags = os.O_RDWR
	}
	f, err := os.OpenFile(path, flags, 0)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 256*1024)
	var off int64
	var records uint64
	truncTorn := func() error {
		if err := f.Truncate(off); err != nil {
			return fmt.Errorf("%s: truncating torn tail: %w", path, err)
		}
		return f.Sync()
	}
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr == nil {
			if len(bytes.TrimSpace(line)) == 0 {
				off += int64(len(line))
				continue
			}
			var rec walRecord
			if jerr := json.Unmarshal(line, &rec); jerr != nil {
				if !newest {
					return records, fmt.Errorf("%s: corrupt record at offset %d: %v", path, off, jerr)
				}
				// Tolerate only a torn *final* record: anything after it
				// means mid-file corruption.
				if _, e := r.ReadByte(); e != io.EOF {
					return records, fmt.Errorf("%s: corrupt record at offset %d: %v", path, off, jerr)
				}
				return records, truncTorn()
			}
			if aerr := s.applyRecord(p, rec); aerr != nil {
				return records, fmt.Errorf("%s: %w", path, aerr)
			}
			records++
			off += int64(len(line))
			continue
		}
		if rerr == io.EOF {
			if len(line) > 0 {
				var rec walRecord
				if jerr := json.Unmarshal(line, &rec); jerr == nil {
					if aerr := s.applyRecord(p, rec); aerr != nil {
						return records, fmt.Errorf("%s: %w", path, aerr)
					}
					records++
					off += int64(len(line))
					// Complete record but no newline: terminate it so the
					// next append starts on a fresh line.
					if newest {
						if _, werr := f.WriteAt([]byte("\n"), off); werr == nil {
							off++
						}
					}
				} else if newest {
					return records, truncTorn()
				} else {
					return records, fmt.Errorf("%s: torn record in non-final segment", path)
				}
			}
			return records, nil
		}
		return records, rerr
	}
}

// attachWAL opens (or creates) the partition's append segment and installs
// the writer with its recovered sequence state.
func (p *partition) attachWAL(seq, fileStart uint64) error {
	if fileStart == 0 {
		fileStart = seq + 1
	}
	f, err := os.OpenFile(walPath(p.dir, fileStart), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w := newWalWriter(f, p.idx)
	w.dir = p.dir
	w.seq = seq
	w.fileStart = fileStart
	w.committed = seq // everything recovered is on disk by definition
	p.wal.Store(w)
	return nil
}

// Checkpoint forces a checkpoint of every partition now: each cuts its
// WAL at the current high-water, writes a canonical state image, and
// drops the WAL segments the image supersedes. Safe to call concurrently
// with writers and snapshots; partitions checkpoint independently.
func (s *Store) Checkpoint() error {
	var first error
	for _, p := range s.parts {
		if err := p.checkpoint(s); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// checkpoint writes one partition's state image and truncates its WAL.
// See the package comment at the top of this file for the protocol; the
// key invariant is that the epoch pin and the WAL cut are taken under one
// writeMu critical section, so the image is exactly records 1..S.
func (p *partition) checkpoint(s *Store) error {
	if p.dir == "" {
		return nil
	}
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	w := p.wal.Load()
	if w == nil {
		return nil
	}
	p.writeMu.Lock()
	pin := p.pin()
	ts := p.tables.Load()
	S, err := w.rotate()
	p.writeMu.Unlock()
	defer p.unpin(pin)
	if err != nil {
		return err
	}
	p.recsSinceCkpt.Store(0)
	if S == 0 || (p.lastCkptUnix.Load() != 0 && S == p.lastCkptSeq.Load()) {
		return nil // nothing new to cover
	}
	t0 := time.Now()
	bytesWritten, err := p.writeCheckpointImage(ts, pin.epoch, S)
	if err != nil {
		return err
	}
	p.lastCkptSeq.Store(S)
	p.lastCkptBytes.Store(bytesWritten)
	p.lastCkptDurNS.Store(int64(time.Since(t0)))
	p.lastCkptUnix.Store(time.Now().UnixNano())
	p.cleanupAfterCheckpoint(S)
	return nil
}

// writeCheckpointImage serializes the partition's state at epoch into
// checkpoint-<S>.ck via a temp file, fsync and rename, and returns the
// image size.
func (p *partition) writeCheckpointImage(ts *tableSet, epoch, S uint64) (int64, error) {
	final := ckptPath(p.dir, S)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	fail := func(e error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, e
	}
	h := sha256.New()
	bw := bufio.NewWriterSize(f, 256*1024)
	mw := io.MultiWriter(bw, h)
	schemas := make([]TableSchema, 0, len(ts.order))
	for _, name := range ts.order {
		schemas = append(schemas, *ts.byName[name].schema)
	}
	hb, err := json.Marshal(ckptHeader{Version: 1, Partition: p.idx, Seq: S, Tables: schemas})
	if err != nil {
		return fail(err)
	}
	if _, err := mw.Write(append(hb, '\n')); err != nil {
		return fail(err)
	}
	cw := &canonWriter{w: mw}
	if err := cw.writeState(ts, epoch); err != nil {
		return fail(err)
	}
	if _, err := bw.Write(h.Sum(nil)); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	syncDir(p.dir)
	st, err := os.Stat(final)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// cleanupAfterCheckpoint drops what the durable image at S supersedes: WAL
// segments holding only records <= S (segments are cut at checkpoint
// boundaries, so start <= S implies that) and older checkpoint images.
// Best-effort — recovery tolerates and re-deletes leftovers.
func (p *partition) cleanupAfterCheckpoint(S uint64) {
	if files, err := listNumbered(p.dir, "wal-", ".log"); err == nil {
		for _, wf := range files {
			if wf.start <= S {
				_ = os.Remove(wf.path)
			}
		}
	}
	if ckpts, err := listNumbered(p.dir, "checkpoint-", ".ck"); err == nil {
		for _, ck := range ckpts {
			if ck.start < S {
				_ = os.Remove(ck.path)
			}
		}
	}
}

// loadCheckpoint verifies and applies one checkpoint image, returning the
// WAL seq it covers. The SHA-256 footer is checked over the whole image
// before anything is applied; verification failures return errInvalidCkpt
// so recovery can fall back to an older image.
func (p *partition) loadCheckpoint(s *Store, path string) (uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, errInvalidCkpt
	}
	if len(b) < sha256.Size+2 {
		return 0, errInvalidCkpt
	}
	body := b[:len(b)-sha256.Size]
	var want [sha256.Size]byte
	copy(want[:], b[len(b)-sha256.Size:])
	if sha256.Sum256(body) != want {
		return 0, errInvalidCkpt
	}
	nl := bytes.IndexByte(body, '\n')
	if nl < 0 {
		return 0, errInvalidCkpt
	}
	var hdr ckptHeader
	if err := json.Unmarshal(body[:nl], &hdr); err != nil {
		return 0, errInvalidCkpt
	}
	if hdr.Version != 1 || hdr.Partition != p.idx {
		return 0, fmt.Errorf("relstore: checkpoint %s: header mismatch (version %d, partition %d)", path, hdr.Version, hdr.Partition)
	}
	for i := range hdr.Tables {
		if err := s.CreateTable(hdr.Tables[i]); err != nil {
			return 0, err
		}
	}
	ts := p.tables.Load()
	cr := &canonReader{r: bytes.NewReader(body[nl+1:])}
	for {
		marker, err := cr.str()
		if err == io.EOF {
			return hdr.Seq, nil
		}
		if err != nil {
			return 0, err
		}
		if marker != "table" {
			return 0, fmt.Errorf("relstore: checkpoint %s: want table marker, got %q", path, marker)
		}
		name, err := cr.str()
		if err != nil {
			return 0, err
		}
		t, ok := ts.byName[name]
		if !ok {
			return 0, fmt.Errorf("relstore: checkpoint %s: unknown table %s", path, name)
		}
		count, err := cr.uint()
		if err != nil {
			return 0, err
		}
		for i := uint64(0); i < count; i++ {
			if err := cr.expect("row"); err != nil {
				return 0, err
			}
			idU, err := cr.uint()
			if err != nil {
				return 0, err
			}
			id := int64(idU)
			row := make(Row, len(t.schema.Columns)+1)
			row["id"] = id
			for _, col := range t.schema.Columns {
				v, err := cr.value()
				if err != nil {
					return 0, err
				}
				row[col.Name] = v
			}
			t.putRow(row, 1)
			t.live.Add(1)
			t.noteID(id)
		}
	}
}

// CheckpointStat describes one partition's last completed checkpoint.
type CheckpointStat struct {
	Partition int
	Taken     bool          // false when the partition has never checkpointed
	Seq       uint64        // WAL record high-water the image covers
	Bytes     int64         // image size on disk
	Duration  time.Duration // wall time the image took to write
	Age       time.Duration // time since the image completed
}

// CheckpointStats reports per-partition checkpoint state, for the
// dashboard status page and operator tooling. In-memory stores report one
// never-checkpointed entry per partition.
func (s *Store) CheckpointStats() []CheckpointStat {
	out := make([]CheckpointStat, len(s.parts))
	for i, p := range s.parts {
		st := CheckpointStat{Partition: i}
		if un := p.lastCkptUnix.Load(); un != 0 {
			st.Taken = true
			st.Seq = p.lastCkptSeq.Load()
			st.Bytes = p.lastCkptBytes.Load()
			st.Duration = time.Duration(p.lastCkptDurNS.Load())
			st.Age = time.Since(time.Unix(0, un))
		}
		out[i] = st
	}
	return out
}

// numbered is one <prefix><%020d><suffix> file.
type numbered struct {
	path  string
	start uint64
}

// listNumbered lists dir's prefix/suffix-named files in ascending numeric
// order.
func listNumbered(dir, prefix, suffix string) ([]numbered, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []numbered
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || len(name) <= len(prefix)+len(suffix) ||
			name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
			continue
		}
		n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
		if err != nil {
			continue
		}
		out = append(out, numbered{path: filepath.Join(dir, name), start: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	return out, nil
}

func writeFileSync(path string, b []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// DirInfo describes a store directory without opening it for writing.
type DirInfo struct {
	Partitions int
	Parts      []PartitionInfo
}

// PartitionInfo is one partition's on-disk recovery picture: how much a
// restart loads from the checkpoint image versus replays from the WAL
// tail.
type PartitionInfo struct {
	Partition       int
	CheckpointSeq   uint64 // WAL high-water the newest checkpoint covers; 0 = none
	CheckpointBytes int64  // newest checkpoint image size
	WALSegments     int    // segments past the checkpoint
	TailRecords     uint64 // complete records a restart will replay
	LastSeq         uint64 // record high-water across checkpoint + tail
}

// InspectDir reads a store directory's partition map and recovery state
// without replaying anything (stampede-replay -info).
func InspectDir(dir string) (*DirInfo, error) {
	b, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		return nil, fmt.Errorf("relstore: %s is not a store directory: %w", dir, err)
	}
	var m dirManifest
	if err := json.Unmarshal(b, &m); err != nil || m.Partitions < 1 {
		return nil, fmt.Errorf("relstore: bad MANIFEST in %s", dir)
	}
	info := &DirInfo{Partitions: m.Partitions}
	for i := 0; i < m.Partitions; i++ {
		pdir := filepath.Join(dir, partDirName(i))
		pi := PartitionInfo{Partition: i}
		if ckpts, err := listNumbered(pdir, "checkpoint-", ".ck"); err == nil && len(ckpts) > 0 {
			newest := ckpts[len(ckpts)-1]
			pi.CheckpointSeq = newest.start
			if st, err := os.Stat(newest.path); err == nil {
				pi.CheckpointBytes = st.Size()
			}
		}
		pi.LastSeq = pi.CheckpointSeq
		files, err := listNumbered(pdir, "wal-", ".log")
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		for _, wf := range files {
			if wf.start <= pi.CheckpointSeq {
				continue
			}
			n, err := countLines(wf.path)
			if err != nil {
				return nil, err
			}
			pi.WALSegments++
			pi.TailRecords += n
			pi.LastSeq = wf.start - 1 + n
		}
		info.Parts = append(info.Parts, pi)
	}
	return info, nil
}

func countLines(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var n uint64
	buf := make([]byte, 256*1024)
	for {
		c, err := f.Read(buf)
		for _, b := range buf[:c] {
			if b == '\n' {
				n++
			}
		}
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return 0, err
		}
	}
}

// Checkpoint telemetry: scrape-time gauges per partition index, fed from a
// process-wide registry of live directory-backed stores (a SetFunc closure
// must not pin a closed store, and test suites open many stores in one
// process).
var (
	mCkptAge = telemetry.NewGaugeVec("stampede_relstore_checkpoint_age_seconds",
		"Seconds since the partition's last completed checkpoint; 0 when none.", "partition")
	mCkptBytes = telemetry.NewGaugeVec("stampede_relstore_checkpoint_bytes",
		"Size of the partition's last checkpoint image, in bytes.", "partition")
	mCkptDur = telemetry.NewGaugeVec("stampede_relstore_checkpoint_duration_seconds",
		"Wall time of the partition's last checkpoint write.", "partition")

	ckptRegMu     sync.Mutex
	ckptLive      = make(map[int][]*partition) // partition index → live dir-backed partitions
	ckptInstalled = make(map[int]bool)
)

func registerCheckpointTelemetry(s *Store) {
	ckptRegMu.Lock()
	defer ckptRegMu.Unlock()
	for _, p := range s.parts {
		ckptLive[p.idx] = append(ckptLive[p.idx], p)
		if ckptInstalled[p.idx] {
			continue
		}
		ckptInstalled[p.idx] = true
		idx := p.idx
		label := strconv.Itoa(idx)
		mCkptAge.SetFunc(func() float64 {
			if q := newestCheckpointed(idx); q != nil {
				return time.Since(time.Unix(0, q.lastCkptUnix.Load())).Seconds()
			}
			return 0
		}, label)
		mCkptBytes.SetFunc(func() float64 {
			if q := newestCheckpointed(idx); q != nil {
				return float64(q.lastCkptBytes.Load())
			}
			return 0
		}, label)
		mCkptDur.SetFunc(func() float64 {
			if q := newestCheckpointed(idx); q != nil {
				return time.Duration(q.lastCkptDurNS.Load()).Seconds()
			}
			return 0
		}, label)
	}
}

// newestCheckpointed picks, among live partitions with this index, the one
// that checkpointed most recently.
func newestCheckpointed(idx int) *partition {
	ckptRegMu.Lock()
	defer ckptRegMu.Unlock()
	var best *partition
	for _, p := range ckptLive[idx] {
		if p.lastCkptUnix.Load() == 0 {
			continue
		}
		if best == nil || p.lastCkptUnix.Load() > best.lastCkptUnix.Load() {
			best = p
		}
	}
	return best
}

func unregisterCheckpointTelemetry(s *Store) {
	ckptRegMu.Lock()
	defer ckptRegMu.Unlock()
	for _, p := range s.parts {
		live := ckptLive[p.idx]
		for i, q := range live {
			if q == p {
				ckptLive[p.idx] = append(live[:i], live[i+1:]...)
				break
			}
		}
	}
}
