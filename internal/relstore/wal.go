package relstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// WAL telemetry, shared by every store in the process and labeled by
// partition. Flushes vs fsyncs is the group-commit story in two counters:
// their ratio is how many commit requests each disk sync absorbed — now
// observable per partition, since every partition runs its own independent
// group commit.
var (
	mWALRecords = telemetry.NewCounterVec("stampede_relstore_wal_records_total",
		"Records appended to write-ahead logs, by partition.", "partition")
	mWALFlushes = telemetry.NewCounterVec("stampede_relstore_wal_flushes_total",
		"Commit (Flush) requests; divide by fsyncs for the group-commit coalescing ratio.", "partition")
	mWALFsyncs = telemetry.NewCounterVec("stampede_relstore_wal_fsyncs_total",
		"fsyncs performed on write-ahead logs, by partition.", "partition")
	mWALFsyncSeconds = telemetry.NewHistogramVec("stampede_relstore_wal_fsync_seconds",
		"Latency of one WAL bufio flush + fsync.", telemetry.DurationBuckets, "partition")
)

// Persistence: every mutation appends one JSON record to its partition's
// write-ahead log. Open (legacy single file) and OpenDir (partitioned
// segments + checkpoints) replay the log to rebuild the store, so a
// database is exactly the history of committed mutations — simple,
// crash-tolerant (a torn final line is detected, and truncated in
// directory mode), and adequate for the monitoring archive's
// append-mostly workload. In directory mode each partition owns a chain
// of segment files named wal-<start>.log, where <start> is the sequence
// number of the segment's first record; checkpoints cut segments at their
// exact high-water, so recovery's skip rule is simply "replay segments
// whose start exceeds the checkpoint seq".

type walRecord struct {
	Op    string           `json:"op"` // create, insert, update, delete
	Table string           `json:"table"`
	Rows  []map[string]any `json:"rows,omitempty"`
	ID    int64            `json:"id,omitempty"`
	Sch   *TableSchema     `json:"schema,omitempty"`
}

type walWriter struct {
	mu   sync.Mutex // guards f, w, sync flag, seq, fileStart
	f    *os.File
	w    *bufio.Writer
	sync bool
	seq  uint64 // records appended so far (absolute in directory mode)

	// Directory mode: dir is the partition's segment directory and
	// fileStart the seq of the current segment's first record. Empty dir
	// means legacy single-file mode, which never rotates.
	dir       string
	fileStart uint64

	// Group-commit state. Concurrent Flush callers elect one leader that
	// flushes (and fsyncs) everything appended so far; the rest wait on
	// cond and return as soon as `committed` covers the records they saw.
	// With per-shard loader flushes this coalesces many ~200µs fsyncs
	// into one. rotate() also rides this state to exclude a leader whose
	// fsync holds f outside mu.
	cmu        sync.Mutex
	cond       *sync.Cond
	committing bool
	committed  uint64 // highest seq known flushed (and synced, if enabled)
	syncs      uint64 // fsyncs performed, for observing group-commit coalescing

	// Pre-resolved per-partition telemetry children (Vec.With locks and
	// must stay off the append path).
	mRecords  *telemetry.Counter
	mFlushes  *telemetry.Counter
	mFsyncs   *telemetry.Counter
	mFsyncLat *telemetry.Histogram
}

func newWalWriter(f *os.File, part int) *walWriter {
	label := strconv.Itoa(part)
	w := &walWriter{
		f:         f,
		w:         bufio.NewWriterSize(f, 256*1024),
		fileStart: 1,
		mRecords:  mWALRecords.With(label),
		mFlushes:  mWALFlushes.With(label),
		mFsyncs:   mWALFsyncs.With(label),
		mFsyncLat: mWALFsyncSeconds.With(label),
	}
	w.cond = sync.NewCond(&w.cmu)
	return w
}

func (w *walWriter) append(rec walRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := w.w.Write(b); err != nil {
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return err
	}
	w.seq++
	w.mRecords.Inc()
	return nil
}

func (w *walWriter) setSync(on bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sync = on
}

func (w *walWriter) logCreate(s *TableSchema) error {
	return w.append(walRecord{Op: "create", Table: s.Name, Sch: s})
}

func (w *walWriter) logInsertBatch(tbl string, rows []Row) error {
	enc := make([]map[string]any, len(rows))
	for i, r := range rows {
		enc[i] = encodeRow(r)
	}
	return w.append(walRecord{Op: "insert", Table: tbl, Rows: enc})
}

func (w *walWriter) logUpdate(tbl string, id int64, full Row) error {
	return w.append(walRecord{Op: "update", Table: tbl, ID: id, Rows: []map[string]any{encodeRow(full)}})
}

func (w *walWriter) logDelete(tbl string, id int64) error {
	return w.append(walRecord{Op: "delete", Table: tbl, ID: id})
}

// flush makes every record appended before the call durable (fsynced when
// SetSync is on). Concurrent callers group-commit: one leader performs the
// bufio flush and fsync for everything appended so far, the rest block
// until the leader's commit covers their records. The fsync itself runs
// without holding the append mutex, so shards keep appending while the
// disk syncs.
func (w *walWriter) flush() error {
	w.mFlushes.Inc()
	w.mu.Lock()
	target := w.seq
	w.mu.Unlock()

	w.cmu.Lock()
	for {
		if w.committed >= target {
			w.cmu.Unlock()
			return nil
		}
		if !w.committing {
			break
		}
		w.cond.Wait()
	}
	w.committing = true
	w.cmu.Unlock()

	// Yield before snapshotting until appends quiesce, so runnable peers
	// (e.g. loader shards that just finished a batch) get to append first
	// and ride this commit instead of electing their own leader for the
	// very next fsync. Bounded so a steady stream of un-flushed appends
	// can't starve the commit.
	// "Quiesced" means two consecutive yield rounds with no new appends:
	// a peer that needs one round of compute before it can append still
	// makes this commit instead of electing its own leader for the very
	// next fsync.
	stable := 0
	for i := 0; i < 16; i++ {
		runtime.Gosched()
		w.mu.Lock()
		cur := w.seq
		w.mu.Unlock()
		if cur == target {
			if stable++; stable >= 2 {
				break
			}
			continue
		}
		stable = 0
		target = cur
	}

	w.mu.Lock()
	upto := w.seq
	t0 := time.Now()
	err := w.w.Flush()
	doSync := w.sync
	f := w.f
	w.mu.Unlock()
	if err == nil && doSync {
		err = f.Sync()
	}

	w.cmu.Lock()
	if err == nil && doSync {
		w.syncs++
		w.mFsyncs.Inc()
		w.mFsyncLat.ObserveSince(t0)
	}
	w.committing = false
	if err == nil && upto > w.committed {
		w.committed = upto
	}
	w.cond.Broadcast()
	w.cmu.Unlock()
	return err
}

// rotate cuts the WAL at its current record high-water S: it flushes (and
// fsyncs, when sync is on) and closes the current segment, then opens a
// fresh one starting at S+1. The caller holds the partition's writeMu, so
// no append can interleave; rotate still excludes an in-flight group-commit
// leader, which touches f outside mu during its fsync. When the current
// segment holds no records it is reused and nothing is cut. Returns S.
func (w *walWriter) rotate() (uint64, error) {
	w.cmu.Lock()
	for w.committing {
		w.cond.Wait()
	}
	w.committing = true
	w.cmu.Unlock()

	done := func(committed uint64) {
		w.cmu.Lock()
		w.committing = false
		if committed > w.committed {
			w.committed = committed
		}
		w.cond.Broadcast()
		w.cmu.Unlock()
	}

	w.mu.Lock()
	S := w.seq
	if w.dir == "" || S+1 == w.fileStart {
		w.mu.Unlock()
		done(0)
		return S, nil
	}
	err := w.w.Flush()
	if err == nil && w.sync {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		w.mu.Unlock()
		done(0)
		return S, err
	}
	nf, err := os.OpenFile(walPath(w.dir, S+1), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		w.mu.Unlock()
		done(0)
		return S, err
	}
	w.f = nf
	w.w = bufio.NewWriterSize(nf, 256*1024)
	w.fileStart = S + 1
	w.mu.Unlock()
	done(S)
	return S, nil
}

func (w *walWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

func walPath(dir string, start uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%020d.log", start))
}

// encodeRow renders times as RFC 3339 strings so JSON round-trips; the
// schema's column types drive decoding on replay.
func encodeRow(r Row) map[string]any {
	out := make(map[string]any, len(r))
	for k, v := range r {
		if t, ok := v.(time.Time); ok {
			out[k] = t.UTC().Format(time.RFC3339Nano)
		} else {
			out[k] = v
		}
	}
	return out
}

// Open opens (or creates) a persistent single-partition store backed by
// the one WAL file at path, replaying any existing history first. This is
// the legacy single-file layout; OpenDir is the partitioned,
// checkpoint-capable layout.
func Open(path string) (*Store, error) {
	s := NewStore()
	if f, err := os.Open(path); err == nil {
		err = s.replay(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("relstore: replaying %s: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.parts[0].wal.Store(newWalWriter(f, 0))
	return s, nil
}

// SetSync makes every Flush also fsync the WAL files: full durability at
// the cost of one disk sync per commit per partition, the trade a
// production archive makes and the reason the loader batches inserts.
// No-op for in-memory stores.
func (s *Store) SetSync(on bool) {
	for _, p := range s.parts {
		if w := p.wal.Load(); w != nil {
			w.setSync(on)
		}
	}
}

// Syncs reports how many fsyncs the WALs have performed, summed over
// partitions. With concurrent Flush callers this is typically far below
// the number of Flush calls — the visible effect of group commit.
// In-memory stores report 0.
func (s *Store) Syncs() uint64 {
	var total uint64
	for _, p := range s.parts {
		w := p.wal.Load()
		if w == nil {
			continue
		}
		w.cmu.Lock()
		total += w.syncs
		w.cmu.Unlock()
	}
	return total
}

// Flush forces buffered WAL records to the OS on every partition,
// flushing partitions in parallel — each partition's group commit and
// fsync is independent, which is the point of the parallel WAL.
// In-memory stores return nil.
func (s *Store) Flush() error {
	if len(s.parts) == 1 {
		w := s.parts[0].wal.Load()
		if w == nil {
			return nil
		}
		return w.flush()
	}
	errs := make([]error, len(s.parts))
	var wg sync.WaitGroup
	for i, p := range s.parts {
		w := p.wal.Load()
		if w == nil {
			continue
		}
		wg.Add(1)
		go func(i int, w *walWriter) {
			defer wg.Done()
			errs[i] = w.flush()
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes every partition's WAL, waiting out any
// in-flight background checkpoint first. The store remains usable in
// memory but stops persisting. In-memory stores return nil.
func (s *Store) Close() error {
	var first error
	for _, p := range s.parts {
		// Taking ckptMu waits for a running checkpoint; a checkpoint that
		// starts later sees the nil wal and no-ops.
		p.ckptMu.Lock()
		w := p.wal.Swap(nil)
		p.ckptMu.Unlock()
		if w != nil {
			if err := w.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	unregisterCheckpointTelemetry(s)
	return first
}

// replay applies legacy single-file WAL records into partition 0 of an
// empty store. Replay bypasses FK and unique re-validation (the records
// were valid when written) but rebuilds all indexes. Every record lands at
// epoch 1 — the store starts with a flat, single-version history — and
// epoch 1 is published at the end. A torn trailing record (crash
// mid-write) ends the replay cleanly.
func (s *Store) replay(r io.Reader) error {
	p := s.parts[0]
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 256*1024), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			// Only tolerate a torn *final* line; corruption mid-file is an error.
			if !sc.Scan() {
				p.epoch.Store(1)
				return nil
			}
			return fmt.Errorf("line %d: %v", line, err)
		}
		if err := s.applyRecord(p, rec); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	p.epoch.Store(1)
	return sc.Err()
}

// applyRecord applies one WAL record into partition p at epoch 1. Create
// records go through CreateTable (idempotent, installs the table in every
// partition); row records touch only p's table instances.
func (s *Store) applyRecord(p *partition, rec walRecord) error {
	const e = 1 // all replayed history lands in one epoch
	switch rec.Op {
	case "create":
		if rec.Sch == nil {
			return errors.New("create record without schema")
		}
		return s.CreateTable(*rec.Sch)
	case "insert":
		t, ok := p.tables.Load().byName[rec.Table]
		if !ok {
			return fmt.Errorf("insert into unknown table %s", rec.Table)
		}
		for _, enc := range rec.Rows {
			row, err := t.decodeRow(enc)
			if err != nil {
				return err
			}
			id := row.ID()
			if id == 0 {
				return fmt.Errorf("insert record without id in %s", rec.Table)
			}
			t.putRow(row, e)
			t.live.Add(1)
			t.noteID(id)
		}
		return nil
	case "update":
		t, ok := p.tables.Load().byName[rec.Table]
		if !ok {
			return fmt.Errorf("update of unknown table %s", rec.Table)
		}
		if len(rec.Rows) != 1 {
			return errors.New("update record without full row")
		}
		row, err := t.decodeRow(rec.Rows[0])
		if err != nil {
			return err
		}
		row["id"] = rec.ID
		if c, ok := t.rows.Load(rec.ID); ok {
			if old := c.liveVersion(); old != nil {
				t.supersede(c, old, row, e)
				// Both versions carry epoch 1; nothing can ever read the
				// superseded one, so drop it immediately.
				pruneChain(c, e)
				t.pruneRowKeys(old.row, e)
				return nil
			}
		}
		t.putRow(row, e)
		t.live.Add(1)
		return nil
	case "delete":
		t, ok := p.tables.Load().byName[rec.Table]
		if !ok {
			return fmt.Errorf("delete from unknown table %s", rec.Table)
		}
		if c, ok := t.rows.Load(rec.ID); ok {
			if old := c.liveVersion(); old != nil {
				t.kill(old, e)
				t.live.Add(-1)
				t.rows.Delete(rec.ID)
				t.pruneRowKeys(old.row, e)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown WAL op %q", rec.Op)
	}
}

// decodeRow converts a JSON-decoded map back to canonical column types.
func (t *table) decodeRow(enc map[string]any) (Row, error) {
	row := make(Row, len(enc))
	for k, v := range enc {
		ct, ok := t.colType[k]
		if !ok {
			return nil, fmt.Errorf("table %s: WAL row has unknown column %s", t.schema.Name, k)
		}
		cv, err := coerce(t.schema.Name, k, ct, v)
		if err != nil {
			return nil, err
		}
		row[k] = cv
	}
	return row, nil
}
