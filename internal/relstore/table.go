package relstore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// table holds rows and index structures for one TableSchema. Each table
// carries its own RW mutex so writers to distinct tables (the sharded
// loader's concurrent ApplyBatch calls land on different tables most of
// the time) do not serialize on one store-wide lock. Locking discipline
// lives in Store.lockForWrite.
type table struct {
	mu      sync.RWMutex
	schema  *TableSchema
	colType map[string]ColType
	rows    map[int64]Row
	nextID  int64
	// uniques and indexes map a composite key string to row ids.
	uniques []map[string]int64
	indexes []map[string][]int64
}

func newTable(s *TableSchema) *table {
	t := &table{
		schema:  s,
		colType: make(map[string]ColType, len(s.Columns)+1),
		rows:    make(map[int64]Row),
		nextID:  1,
	}
	t.colType["id"] = Int
	for _, c := range s.Columns {
		t.colType[c.Name] = c.Type
	}
	for range s.Unique {
		t.uniques = append(t.uniques, make(map[string]int64))
	}
	for range s.Indexes {
		t.indexes = append(t.indexes, make(map[string][]int64))
	}
	return t
}

// compositeKey encodes the values of cols from row into one string key.
// A length-prefixed encoding keeps ("a","bc") distinct from ("ab","c").
func compositeKey(row Row, cols []string) string {
	var b strings.Builder
	for _, c := range cols {
		v := row[c]
		var s string
		switch x := v.(type) {
		case nil:
			s = "\x00nil"
		case int64:
			s = strconv.FormatInt(x, 10)
		case float64:
			s = strconv.FormatFloat(x, 'g', -1, 64)
		case string:
			s = x
		case bool:
			s = strconv.FormatBool(x)
		case time.Time:
			s = x.UTC().Format(time.RFC3339Nano)
		default:
			s = fmt.Sprint(x)
		}
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	return b.String()
}

// normalize coerces every value in r to canonical types, checks that all
// columns exist, and fills absent nullable columns with nil. The returned
// row is a fresh copy owned by the table.
func (t *table) normalize(r Row) (Row, error) {
	out := make(Row, len(t.schema.Columns)+1)
	for k, v := range r {
		if k == "id" {
			continue // assigned by the table
		}
		ct, ok := t.colType[k]
		if !ok {
			return nil, fmt.Errorf("relstore: table %s has no column %s", t.schema.Name, k)
		}
		cv, err := coerce(t.schema.Name, k, ct, v)
		if err != nil {
			return nil, err
		}
		out[k] = cv
	}
	for _, c := range t.schema.Columns {
		if _, present := out[c.Name]; !present {
			if !c.Nullable {
				return nil, fmt.Errorf("relstore: table %s: column %s is required", t.schema.Name, c.Name)
			}
			out[c.Name] = nil
		} else if out[c.Name] == nil && !c.Nullable {
			return nil, fmt.Errorf("relstore: table %s: column %s may not be null", t.schema.Name, c.Name)
		}
	}
	return out, nil
}

// checkUnique verifies unique constraints for row (excluding the row with
// id exclude, for updates).
func (t *table) checkUnique(row Row, exclude int64) error {
	for i, cols := range t.schema.Unique {
		key := compositeKey(row, cols)
		if existing, ok := t.uniques[i][key]; ok && existing != exclude {
			return &UniqueError{Table: t.schema.Name, Columns: cols, ExistingID: existing}
		}
	}
	return nil
}

func (t *table) indexRow(row Row) {
	id := row.ID()
	for i, cols := range t.schema.Unique {
		t.uniques[i][compositeKey(row, cols)] = id
	}
	for i, cols := range t.schema.Indexes {
		key := compositeKey(row, cols)
		t.indexes[i][key] = append(t.indexes[i][key], id)
	}
}

func (t *table) unindexRow(row Row) {
	id := row.ID()
	for i, cols := range t.schema.Unique {
		key := compositeKey(row, cols)
		if t.uniques[i][key] == id {
			delete(t.uniques[i], key)
		}
	}
	for i, cols := range t.schema.Indexes {
		key := compositeKey(row, cols)
		ids := t.indexes[i][key]
		for j, x := range ids {
			if x == id {
				t.indexes[i][key] = append(ids[:j], ids[j+1:]...)
				break
			}
		}
		if len(t.indexes[i][key]) == 0 {
			delete(t.indexes[i], key)
		}
	}
}

// findIndex returns the position of an index exactly covering cols (order
// sensitive), or -1.
func (t *table) findIndex(cols []string) int {
	for i, ix := range t.schema.Indexes {
		if len(ix) != len(cols) {
			continue
		}
		match := true
		for j := range ix {
			if ix[j] != cols[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// sortedIDs returns all row ids ascending; scans use it for deterministic
// iteration order.
func (t *table) sortedIDs() []int64 {
	ids := make([]int64, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// UniqueError reports a unique-constraint violation. The loader relies on
// it to implement idempotent replay (duplicate static events on workflow
// restart are skipped, not fatal).
type UniqueError struct {
	Table      string
	Columns    []string
	ExistingID int64
}

func (e *UniqueError) Error() string {
	return fmt.Sprintf("relstore: unique constraint on %s(%s) violated (existing row %d)",
		e.Table, strings.Join(e.Columns, ","), e.ExistingID)
}
