package relstore

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// table holds one TableSchema's rows as multi-version chains plus posting
// lists for unique constraints and secondary indexes. All mutation is
// serialized by the store-wide writer mutex; readers never lock. Every
// structure a reader can reach is either immutable after publication or
// published through an atomic pointer/uint store, so readers race-freely
// observe a consistent prefix of history at their pinned epoch.
type table struct {
	schema  *TableSchema
	colType map[string]ColType
	rows    rowMap // id -> *rowChain, see rowmap.go
	// alloc is the primary-key allocator, shared by every partition's
	// instance of one logical table so ids are unique store-wide and —
	// crucially — assigned in call order under sequential replay, which is
	// what keeps Snapshot.Hash independent of the partition count.
	alloc   *atomic.Int64
	live    atomic.Int64 // rows visible at the newest epoch (O(1) Store.Count)
	uniques []*postingIndex
	indexes []*postingIndex

	// Writer-owned scratch, valid only between two writes under writeMu:
	// composite-key build buffers and the per-insert unique-key slice,
	// reused so the common insert allocates no key material at all (keys
	// are interned as strings only when a never-seen key value appears).
	keyBuf   []byte
	keyBuf2  []byte
	valBuf   []byte
	ukeys    [][]byte
	ubuckets []*postingBucket // buckets for ukeys, resolved by buildUniqueKeys

	// Version-chain nodes are slab-allocated in writer-owned chunks: the
	// loader inserts millions of rows whose chains live forever, so paying
	// one allocation per slabSize nodes instead of three per row is pure
	// win. Tradeoff: the GC can only reclaim a whole slab, so a chunk in
	// which even one node is live pins its siblings (and, for rowVersion,
	// their Row references). Insert-heavy archive tables keep nearly every
	// node live anyway; workloads that churn rows should size GC
	// expectations accordingly.
	verSlab    []rowVersion
	chainSlab  []rowChain
	pchainSlab []postingChain
	postSlab   []posting
	bucketSlab []postingBucket
}

// slabSize is the node-slab chunk length (see the slab fields above).
const slabSize = 256

func (t *table) newVersion(row Row, begin uint64) *rowVersion {
	if len(t.verSlab) == 0 {
		t.verSlab = make([]rowVersion, slabSize)
	}
	v := &t.verSlab[0]
	t.verSlab = t.verSlab[1:]
	v.row = row
	v.begin = begin
	return v
}

func (t *table) newChain() *rowChain {
	if len(t.chainSlab) == 0 {
		t.chainSlab = make([]rowChain, slabSize)
	}
	c := &t.chainSlab[0]
	t.chainSlab = t.chainSlab[1:]
	return c
}

func (t *table) newPosting(begin uint64) *posting {
	if len(t.postSlab) == 0 {
		t.postSlab = make([]posting, slabSize)
	}
	p := &t.postSlab[0]
	t.postSlab = t.postSlab[1:]
	p.begin = begin
	return p
}

// rowChain is the per-row version list, newest version first.
type rowChain struct {
	head atomic.Pointer[rowVersion]
}

// rowVersion is one immutable version of a row. A version is visible to a
// reader at epoch e when begin <= e and (end == 0 or end > e). row and
// begin are written before the version is published via an atomic head
// store and never change afterwards; end is set once, when a newer version
// supersedes the row or a delete tombstones it. prev is atomic so version
// GC can truncate the tail while readers walk the chain.
type rowVersion struct {
	row   Row
	begin uint64
	end   atomic.Uint64 // 0 = still current
	prev  atomic.Pointer[rowVersion]
}

// visibleAt returns the version of this chain visible at epoch e, or nil.
// The chain is ordered newest first, so the first version with begin <= e
// decides: either it is visible at e or the row does not exist at e (any
// older version ended no later than this one began).
func (c *rowChain) visibleAt(e uint64) *rowVersion {
	for v := c.head.Load(); v != nil; v = v.prev.Load() {
		if v.begin > e {
			continue
		}
		if end := v.end.Load(); end == 0 || end > e {
			return v
		}
		return nil
	}
	return nil
}

// liveVersion returns the newest un-ended version — the writer's view.
func (c *rowChain) liveVersion() *rowVersion {
	if v := c.head.Load(); v != nil && v.end.Load() == 0 {
		return v
	}
	return nil
}

// pruneChain drops versions no reader at epoch >= minE can reach: every
// version below the newest one whose begin <= minE. Dropped versions stay
// internally linked, so a reader paused mid-walk finishes safely. Returns
// the number of versions reclaimed. Writer-only.
func pruneChain(c *rowChain, minE uint64) int {
	v := c.head.Load()
	for v != nil && v.begin > minE {
		v = v.prev.Load()
	}
	if v == nil {
		return 0
	}
	n := 0
	for old := v.prev.Load(); old != nil; old = old.prev.Load() {
		n++
	}
	if n > 0 {
		v.prev.Store(nil)
	}
	return n
}

// postingIndex maps a composite key to a bucket of per-row interval
// chains. Keeping one chain per (key, id) pair — rather than one list per
// key — makes every writer-side operation (tombstone, prune) O(1) in the
// number of rows sharing the key, which is what keeps hot keys (all jobs
// of one workflow, say) from turning every update into a full-key walk.
//
// One plain map serves both sides. The writer (already serialized by
// Store.writeMu) reads it without taking mu — it is the only goroutine
// that ever mutates the map, so its own lookups cannot race — which lets
// the hot insert path run a plain map[string] access with a []byte key,
// a lookup the compiler performs without materialising the string.
// Readers take mu.RLock for the map access only; the writer takes
// mu.Lock just for the two rare map mutations (first sighting of a key,
// dropping an emptied key), so readers never wait on a batch in
// progress — only on a single map write. Bucket contents stay lock-free
// for readers as before.
type postingIndex struct {
	mu sync.RWMutex
	m  map[string]*postingBucket
	// mi replaces m for indexes over exactly one Int column (most of the
	// archive's hot secondary indexes — wf_id, job_id, job_instance_id):
	// buckets are keyed by the column value directly, so the insert path
	// skips the composite-key encode, hashes an int64 instead of a byte
	// string, and never materialises a key string for the map — at a
	// million rows those per-new-key allocations and string rehashes are
	// a measurable slice of load time. nilb is the bucket for rows whose
	// indexed column is NULL (the "\x00nil" key of the string form).
	// Locking is identical to m: the writer reads unlocked, map/nilb
	// mutations and reader lookups synchronise on mu.
	mi     map[int64]*postingBucket
	nilb   *postingBucket
	intCol string // the indexed column when mi is non-nil
}

// intKeyOf extracts row's value for a specialized index column. normalize
// guarantees an Int column holds int64 or nil, so anything else is nil.
func intKeyOf(row Row, col string) (v int64, isNil bool) {
	if x, ok := row[col].(int64); ok {
		return x, false
	}
	return 0, true
}

// bucketInt returns the bucket for value v (or the NULL bucket).
// Writer-only: the unlocked map read mirrors addPosting's ix.m access.
func (ix *postingIndex) bucketInt(v int64, isNil bool) *postingBucket {
	if isNil {
		return ix.nilb
	}
	return ix.mi[v]
}

// bucketIntLocked is bucketInt for goroutines not holding the partition's
// writer mutex.
func (ix *postingIndex) bucketIntLocked(v int64, isNil bool) *postingBucket {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if isNil {
		return ix.nilb
	}
	return ix.mi[v]
}

// postingBucket is every row that ever matched one key. Readers walk
// chains, an atomic singly-linked list of the rows' interval chains
// (newest-joined first). The remaining fields are writer-owned: ids
// counts entries so an emptied bucket can drop its key without a walk,
// and wByID accelerates one row's chain lookup — it stays nil while the
// bucket is small (unique keys hold one row; most index keys a handful)
// and is built only once the chain walk would get long.
type postingBucket struct {
	chains atomic.Pointer[postingChain]
	wByID  map[int64]*postingChain
	ids    int64
}

// bucketMapThreshold is the bucket size at which wByID is materialised.
const bucketMapThreshold = 16

// chainOf returns the bucket's chain for row id, or nil. Writer-only.
func (b *postingBucket) chainOf(id int64) *postingChain {
	if b.wByID != nil {
		return b.wByID[id]
	}
	for c := b.chains.Load(); c != nil; c = c.next.Load() {
		if c.id == id {
			return c
		}
	}
	return nil
}

// liveID returns a row currently holding the bucket's key, if any — the
// writer's view, used for unique checks and FK probes. Dead chains are
// pruned on write, so a unique key's bucket stays near one entry.
func (b *postingBucket) liveID() (int64, bool) {
	for c := b.chains.Load(); c != nil; c = c.next.Load() {
		if c.liveIn() {
			return c.id, true
		}
	}
	return 0, false
}

// postingChain is one row's validity intervals for one key, newest first.
// next links the chains of all rows in the same bucket.
type postingChain struct {
	id   int64
	head atomic.Pointer[posting]
	next atomic.Pointer[postingChain]
}

// posting records that the row matched the key during the epoch range
// [begin, end). Like rowVersion, begin is immutable after the atomic head
// publish and end is set once.
type posting struct {
	begin uint64
	end   atomic.Uint64 // 0 = still current
	next  atomic.Pointer[posting]
}

func postingVisible(p *posting, e uint64) bool {
	if p.begin > e {
		return false
	}
	end := p.end.Load()
	return end == 0 || end > e
}

// visibleIn reports whether some interval of chain c covers epoch e. The
// chain is newest first and intervals are disjoint, so the first interval
// with begin <= e decides.
func (c *postingChain) visibleIn(e uint64) bool {
	for p := c.head.Load(); p != nil; p = p.next.Load() {
		if p.begin > e {
			continue
		}
		return postingVisible(p, e)
	}
	return false
}

// liveIn reports whether the chain's newest interval is still open.
func (c *postingChain) liveIn() bool {
	p := c.head.Load()
	return p != nil && p.end.Load() == 0
}

// addPosting opens a live interval for (key, id) at epoch e, drawing the
// bucket, chain and posting nodes from t's slabs. Writer-only. When both
// the key and the (key, id) chain already exist — the common case for
// secondary indexes — nothing allocates; a never-seen key costs the one
// interned string (the map insert must materialise it) plus an amortised
// share of a bucket slab.
func (t *table) addPosting(ix *postingIndex, key []byte, id int64, e uint64) {
	t.addPostingIn(ix, key, ix.m[string(key)], id, e)
}

// addPostingIn is addPosting with the key's bucket already resolved (nil
// when the key is unseen) — the insert path reuses the lookup the unique
// check already did. Writer-only.
func (t *table) addPostingIn(ix *postingIndex, key []byte, b *postingBucket, id int64, e uint64) {
	if b == nil {
		b = t.newBucket()
		ix.mu.Lock()
		ix.m[string(key)] = b
		ix.mu.Unlock()
	}
	c := b.chainOf(id)
	if c == nil {
		c = t.attachChain(b, id)
	}
	t.pushPosting(c, e)
}

// addFreshPosting is addPostingIn for a row id the index has never seen —
// every brand-new insert, since primary keys are never reused. The
// bucket's chainOf probe is skipped: in a hot many-row bucket (all jobs
// of one workflow under the wf_id index, say) that probe is a lookup in
// a wByID map the size of the table, paid per insert for a chain that
// cannot exist.
func (t *table) addFreshPosting(ix *postingIndex, key []byte, b *postingBucket, id int64, e uint64) {
	if b == nil {
		b = t.newBucket()
		ix.mu.Lock()
		ix.m[string(key)] = b
		ix.mu.Unlock()
	}
	t.pushPosting(t.attachChain(b, id), e)
}

// addPostingInt is addPostingIn for a specialized single-Int index.
func (t *table) addPostingInt(ix *postingIndex, v int64, isNil bool, id int64, e uint64) {
	b := ix.bucketInt(v, isNil)
	if b == nil {
		b = t.newIntBucket(ix, v, isNil)
	}
	c := b.chainOf(id)
	if c == nil {
		c = t.attachChain(b, id)
	}
	t.pushPosting(c, e)
}

// addFreshPostingInt is addFreshPosting for a specialized single-Int
// index: no key encode, no chainOf probe.
func (t *table) addFreshPostingInt(ix *postingIndex, v int64, isNil bool, id int64, e uint64) {
	b := ix.bucketInt(v, isNil)
	if b == nil {
		b = t.newIntBucket(ix, v, isNil)
	}
	t.pushPosting(t.attachChain(b, id), e)
}

// newIntBucket installs an empty bucket under value v (or NULL) of a
// specialized index.
func (t *table) newIntBucket(ix *postingIndex, v int64, isNil bool) *postingBucket {
	b := t.newBucket()
	ix.mu.Lock()
	if isNil {
		ix.nilb = b
	} else {
		ix.mi[v] = b
	}
	ix.mu.Unlock()
	return b
}

// attachChain creates and links a new chain for row id into bucket b,
// maintaining the wByID acceleration map. Writer-only.
func (t *table) attachChain(b *postingBucket, id int64) *postingChain {
	c := t.newPChain(id)
	c.next.Store(b.chains.Load())
	b.chains.Store(c)
	if b.wByID != nil {
		b.wByID[id] = c
	} else if b.ids >= bucketMapThreshold {
		m := make(map[int64]*postingChain, 2*bucketMapThreshold)
		for x := b.chains.Load(); x != nil; x = x.next.Load() {
			m[x.id] = x
		}
		b.wByID = m
	}
	b.ids++
	return c
}

// pushPosting opens a live interval at epoch e on chain c. Writer-only.
func (t *table) pushPosting(c *postingChain, e uint64) {
	p := t.newPosting(e)
	p.next.Store(c.head.Load())
	c.head.Store(p)
}

// newBucket returns a slab-allocated, empty postingBucket.
func (t *table) newBucket() *postingBucket {
	if len(t.bucketSlab) == 0 {
		t.bucketSlab = make([]postingBucket, slabSize)
	}
	b := &t.bucketSlab[0]
	t.bucketSlab = t.bucketSlab[1:]
	return b
}

// newPChain returns a slab-allocated postingChain for row id.
func (t *table) newPChain(id int64) *postingChain {
	if len(t.pchainSlab) == 0 {
		t.pchainSlab = make([]postingChain, slabSize)
	}
	c := &t.pchainSlab[0]
	t.pchainSlab = t.pchainSlab[1:]
	c.id = id
	return c
}

// endPosting closes the live interval for (key, id) at epoch e.
// Writer-only (its map read is unlocked).
func (ix *postingIndex) endPosting(key []byte, id int64, e uint64) {
	b, ok := ix.m[string(key)]
	if !ok {
		return
	}
	endChainPosting(b, id, e)
}

// endPostingInt is endPosting for a specialized single-Int index.
func (ix *postingIndex) endPostingInt(v int64, isNil bool, id int64, e uint64) {
	b := ix.bucketInt(v, isNil)
	if b == nil {
		return
	}
	endChainPosting(b, id, e)
}

func endChainPosting(b *postingBucket, id int64, e uint64) {
	if c := b.chainOf(id); c != nil {
		if p := c.head.Load(); p != nil && p.end.Load() == 0 {
			p.end.Store(e)
		}
	}
}

// liveID returns the id of a row currently holding key — the writer's
// view, used for unique checks and FK probes. Writer-only.
func (ix *postingIndex) liveID(key string) (int64, bool) {
	b, ok := ix.m[key]
	if !ok {
		return 0, false
	}
	return b.liveID()
}

// liveIDLocked is liveID for goroutines that do not hold this partition's
// writer mutex (cross-partition FK probes): the map access takes the read
// lock; the bucket walk is the same lock-free atomic traversal readers use.
func (ix *postingIndex) liveIDLocked(key string) (int64, bool) {
	ix.mu.RLock()
	b, ok := ix.m[key]
	ix.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return b.liveID()
}

// liveIDInt / liveIDIntLocked are the liveID pair for a specialized
// single-Int index.
func (ix *postingIndex) liveIDInt(v int64, isNil bool) (int64, bool) {
	b := ix.bucketInt(v, isNil)
	if b == nil {
		return 0, false
	}
	return b.liveID()
}

func (ix *postingIndex) liveIDIntLocked(v int64, isNil bool) (int64, bool) {
	b := ix.bucketIntLocked(v, isNil)
	if b == nil {
		return 0, false
	}
	return b.liveID()
}

// noteID raises the shared id allocator to at least id; replay and
// checkpoint load call it so post-recovery inserts continue above every
// recovered primary key. Single-threaded (recovery) only.
func (t *table) noteID(id int64) {
	if id > t.alloc.Load() {
		t.alloc.Store(id)
	}
}

// idAt returns the id of the row holding key at epoch e. For unique keys
// at most one row is visible at any epoch. Reader-safe.
func (ix *postingIndex) idAt(key string, e uint64) (int64, bool) {
	ix.mu.RLock()
	b, ok := ix.m[key]
	ix.mu.RUnlock()
	if !ok {
		return 0, false
	}
	for c := b.chains.Load(); c != nil; c = c.next.Load() {
		if c.visibleIn(e) {
			return c.id, true
		}
	}
	return 0, false
}

// idsAt collects the ids of all rows matching key at epoch e, ascending by
// primary key so indexed Selects are deterministic. Reader-safe.
func (ix *postingIndex) idsAt(key string, e uint64) []int64 {
	ix.mu.RLock()
	b, ok := ix.m[key]
	ix.mu.RUnlock()
	if !ok {
		return nil
	}
	var ids []int64
	for c := b.chains.Load(); c != nil; c = c.next.Load() {
		if c.visibleIn(e) {
			ids = append(ids, c.id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// idsAtInt is idsAt for a specialized single-Int index.
func (ix *postingIndex) idsAtInt(v int64, isNil bool, e uint64) []int64 {
	b := ix.bucketIntLocked(v, isNil)
	if b == nil {
		return nil
	}
	var ids []int64
	for c := b.chains.Load(); c != nil; c = c.next.Load() {
		if c.visibleIn(e) {
			ids = append(ids, c.id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func postingDead(p *posting, minE uint64) bool {
	end := p.end.Load()
	return end != 0 && end <= minE
}

// pruneIntervals drops intervals of c that no reader at epoch >= minE can
// see. Unlinked postings keep their own next pointers, so a paused reader
// finishes its walk. Reports how many were reclaimed and whether the chain
// is now empty. Writer-only.
func pruneIntervals(c *postingChain, minE uint64) (reclaimed int, empty bool) {
	v := c.head.Load()
	for v != nil && v.begin > minE {
		v = v.next.Load()
	}
	if v == nil {
		return 0, c.head.Load() == nil
	}
	n := 0
	for old := v.next.Load(); old != nil; old = old.next.Load() {
		n++
	}
	if n > 0 {
		v.next.Store(nil)
	}
	if postingDead(v, minE) {
		// v itself is invisible to every reader at or above the horizon;
		// unlink it too (it is the tail after the truncation above).
		n++
		if c.head.Load() == v {
			c.head.Store(nil)
		} else {
			for p := c.head.Load(); p != nil; p = p.next.Load() {
				if p.next.Load() == v {
					p.next.Store(nil)
					break
				}
			}
		}
	}
	return n, c.head.Load() == nil
}

// unlink removes chain c from the bucket's reader list. A reader paused
// on c still finishes its walk (c keeps its next pointer); readers that
// start later skip it. The walk is O(bucket), but unlinking only happens
// when a row's last interval for the key dies — key changes and deletes,
// not the insert-heavy steady state. Writer-only.
func (b *postingBucket) unlink(c *postingChain) {
	head := b.chains.Load()
	if head == c {
		b.chains.Store(c.next.Load())
		return
	}
	for p := head; p != nil; p = p.next.Load() {
		if p.next.Load() == c {
			p.next.Store(c.next.Load())
			return
		}
	}
}

// pruneID prunes the single interval chain for (key, id), dropping the id
// entry — and the key's bucket when it empties — once nothing visible
// remains. Writer-only.
func (ix *postingIndex) pruneID(key []byte, id int64, minE uint64) int {
	b, ok := ix.m[string(key)]
	if !ok {
		return 0
	}
	n, emptied := pruneChainIn(b, id, minE)
	if emptied {
		ix.mu.Lock()
		delete(ix.m, string(key))
		ix.mu.Unlock()
	}
	return n
}

// pruneIDInt is pruneID for a specialized single-Int index.
func (ix *postingIndex) pruneIDInt(v int64, isNil bool, id int64, minE uint64) int {
	b := ix.bucketInt(v, isNil)
	if b == nil {
		return 0
	}
	n, emptied := pruneChainIn(b, id, minE)
	if emptied {
		ix.mu.Lock()
		if isNil {
			ix.nilb = nil
		} else {
			delete(ix.mi, v)
		}
		ix.mu.Unlock()
	}
	return n
}

// pruneChainIn prunes bucket b's chain for row id, reporting reclaimed
// postings and whether the bucket emptied (the caller drops its key).
// Writer-only.
func pruneChainIn(b *postingBucket, id int64, minE uint64) (int, bool) {
	c := b.chainOf(id)
	if c == nil {
		return 0, false
	}
	n, empty := pruneIntervals(c, minE)
	if empty {
		b.unlink(c)
		if b.wByID != nil {
			delete(b.wByID, id)
		}
		b.ids--
	}
	return n, b.ids == 0 && empty
}

// pruneAll prunes every chain in the index. Writer-only. Unlinking a
// chain mid-walk is safe: the chain keeps its next pointer.
func (ix *postingIndex) pruneAll(minE uint64) int {
	n := 0
	for key, b := range ix.m {
		if pruneBucketAll(b, minE, &n) {
			ix.mu.Lock()
			delete(ix.m, key)
			ix.mu.Unlock()
		}
	}
	for v, b := range ix.mi {
		if pruneBucketAll(b, minE, &n) {
			ix.mu.Lock()
			delete(ix.mi, v)
			ix.mu.Unlock()
		}
	}
	if b := ix.nilb; b != nil && pruneBucketAll(b, minE, &n) {
		ix.mu.Lock()
		ix.nilb = nil
		ix.mu.Unlock()
	}
	return n
}

// pruneBucketAll prunes every chain of one bucket, accumulating reclaimed
// postings into *n and reporting whether the bucket emptied. Writer-only.
func pruneBucketAll(b *postingBucket, minE uint64, n *int) bool {
	for c := b.chains.Load(); c != nil; c = c.next.Load() {
		r, empty := pruneIntervals(c, minE)
		*n += r
		if empty {
			b.unlink(c)
			if b.wByID != nil {
				delete(b.wByID, c.id)
			}
			b.ids--
		}
	}
	return b.ids == 0
}

func newTable(s *TableSchema, alloc *atomic.Int64) *table {
	t := &table{
		schema:   s,
		colType:  make(map[string]ColType, len(s.Columns)+1),
		alloc:    alloc,
		ukeys:    make([][]byte, len(s.Unique)),
		ubuckets: make([]*postingBucket, len(s.Unique)),
	}
	t.colType["id"] = Int
	for _, c := range s.Columns {
		t.colType[c.Name] = c.Type
	}
	for range s.Unique {
		t.uniques = append(t.uniques, &postingIndex{m: map[string]*postingBucket{}})
	}
	for _, cols := range s.Indexes {
		ix := &postingIndex{m: map[string]*postingBucket{}}
		if len(cols) == 1 && t.colType[cols[0]] == Int {
			ix.mi = map[int64]*postingBucket{}
			ix.intCol = cols[0]
		}
		t.indexes = append(t.indexes, ix)
	}
	return t
}

// putRow installs a brand-new row (id already assigned) as a fresh chain
// beginning at epoch e and indexes it. Writer-only. The caller maintains
// t.live — the Store bumps it only after the epoch publishes, so Count
// never reports a partially applied batch.
func (t *table) putRow(row Row, e uint64) {
	t.putRowKeys(row, e, t.buildUniqueKeys(row))
}

// putRowKeys is putRow with the row's unique keys already built (the
// insert path computes them once and shares them between the unique check
// and indexing).
func (t *table) putRowKeys(row Row, e uint64, ukeys [][]byte) {
	c := t.newChain()
	c.head.Store(t.newVersion(row, e))
	id := row.ID()
	t.rows.Store(id, c)
	for i := range ukeys {
		t.addFreshPosting(t.uniques[i], ukeys[i], t.ubuckets[i], id, e)
	}
	for i, cols := range t.schema.Indexes {
		if ix := t.indexes[i]; ix.mi != nil {
			v, isNil := intKeyOf(row, ix.intCol)
			t.addFreshPostingInt(ix, v, isNil, id, e)
			continue
		}
		t.keyBuf = t.keyInto(t.keyBuf[:0], row, cols)
		ix := t.indexes[i]
		t.addFreshPosting(ix, t.keyBuf, ix.m[string(t.keyBuf)], id, e)
	}
}

// supersede replaces the live version old of chain c with row at epoch e.
// Readers pinned below e keep seeing old; readers at e and later see row.
// Only keys the update actually changed are re-posted: the common archive
// updates (exitcode, durations, host assignment) leave every indexed
// column untouched, and comparing the encoded keys is far cheaper than
// tombstoning and re-adding identical postings.
func (t *table) supersede(c *rowChain, old *rowVersion, row Row, e uint64) {
	id := row.ID()
	for i, cols := range t.schema.Unique {
		t.reindexChanged(t.uniques[i], old.row, row, cols, id, e)
	}
	for i, cols := range t.schema.Indexes {
		if ix := t.indexes[i]; ix.mi != nil {
			t.reindexChangedInt(ix, old.row, row, id, e)
			continue
		}
		t.reindexChanged(t.indexes[i], old.row, row, cols, id, e)
	}
	v := t.newVersion(row, e)
	v.prev.Store(old)
	old.end.Store(e)
	c.head.Store(v)
}

// reindexChanged moves (oldRow -> newRow)'s posting for one key set when
// the encoded keys differ, and does nothing when they are equal.
func (t *table) reindexChanged(ix *postingIndex, oldRow, newRow Row, cols []string, id int64, e uint64) {
	t.keyBuf = t.keyInto(t.keyBuf[:0], oldRow, cols)
	t.keyBuf2 = t.keyInto(t.keyBuf2[:0], newRow, cols)
	if bytes.Equal(t.keyBuf, t.keyBuf2) {
		return
	}
	ix.endPosting(t.keyBuf, id, e)
	t.addPosting(ix, t.keyBuf2, id, e)
}

// reindexChangedInt is reindexChanged for a specialized single-Int index:
// the old/new values compare directly, with no key encode at all on the
// (dominant) unchanged path. The re-add goes through the chainOf-probing
// addPostingInt — a value can flip back to one the row held before, whose
// chain still exists.
func (t *table) reindexChangedInt(ix *postingIndex, oldRow, newRow Row, id int64, e uint64) {
	ov, onil := intKeyOf(oldRow, ix.intCol)
	nv, nnil := intKeyOf(newRow, ix.intCol)
	if ov == nv && onil == nnil {
		return
	}
	ix.endPostingInt(ov, onil, id, e)
	t.addPostingInt(ix, nv, nnil, id, e)
}

// kill tombstones the live version at epoch e (delete). As with putRow,
// the caller maintains t.live after publishing the epoch.
func (t *table) kill(old *rowVersion, e uint64) {
	t.unindexRow(old.row, e)
	old.end.Store(e)
}

// appendKeyValue appends the canonical key encoding of one column value.
func appendKeyValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(b, "\x00nil"...)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case float64:
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	case string:
		return append(b, x...)
	case bool:
		return strconv.AppendBool(b, x)
	case time.Time:
		return x.UTC().AppendFormat(b, time.RFC3339Nano)
	default:
		return fmt.Append(b, x)
	}
}

// keyInto builds the composite key for cols of row into dst and returns
// it. Writer-only (it shares t.valBuf); reader paths use compositeKey.
func (t *table) keyInto(dst []byte, row Row, cols []string) []byte {
	for _, c := range cols {
		t.valBuf = appendKeyValue(t.valBuf[:0], row[c])
		dst = strconv.AppendInt(dst, int64(len(t.valBuf)), 10)
		dst = append(dst, ':')
		dst = append(dst, t.valBuf...)
	}
	return dst
}

// buildUniqueKeys fills t.ukeys with row's unique-constraint keys and
// returns it; the slice and its buffers are scratch, valid until the
// next build. Each key's bucket is resolved into t.ubuckets as a side
// effect, so the unique check and the posting insert that follow pay for
// one map lookup per constraint between them. Writer-only.
func (t *table) buildUniqueKeys(row Row) [][]byte {
	for i, cols := range t.schema.Unique {
		t.ukeys[i] = t.keyInto(t.ukeys[i][:0], row, cols)
		t.ubuckets[i] = t.uniques[i].m[string(t.ukeys[i])]
	}
	return t.ukeys
}

// compositeKey encodes the values of cols from row into one string key.
// A length-prefixed encoding keeps ("a","bc") distinct from ("ab","c").
// It must encode identically to keyInto; both delegate to appendKeyValue.
func compositeKey(row Row, cols []string) string {
	var b, val []byte
	for _, c := range cols {
		val = appendKeyValue(val[:0], row[c])
		b = strconv.AppendInt(b, int64(len(val)), 10)
		b = append(b, ':')
		b = append(b, val...)
	}
	return string(b)
}

// normalize coerces every value in r to canonical types, checks that all
// columns exist, and fills absent nullable columns with nil. The returned
// row is a fresh copy owned by the table.
//
// Both normalize variants drive the walk from the schema's column list
// rather than ranging over r: the column's type is in hand (no colType
// lookup per key) and presence costs one probe of the small row map, about
// half the map traffic of the key-driven shape. Keys of r that are not
// columns surface as a count mismatch, diagnosed after the walk.
func (t *table) normalize(r Row) (Row, error) {
	out := make(Row, len(t.schema.Columns)+1)
	n := len(r)
	if _, ok := r["id"]; ok {
		n-- // assigned by the table
	}
	found := 0
	for _, c := range t.schema.Columns {
		v, present := r[c.Name]
		if present {
			found++
		}
		if !present {
			if !c.Nullable {
				return nil, fmt.Errorf("relstore: table %s: column %s is required", t.schema.Name, c.Name)
			}
			out[c.Name] = nil
			continue
		}
		if v == nil {
			if !c.Nullable {
				return nil, fmt.Errorf("relstore: table %s: column %s may not be null", t.schema.Name, c.Name)
			}
			out[c.Name] = nil
			continue
		}
		cv, err := coerce(t.schema.Name, c.Name, c.Type, v)
		if err != nil {
			return nil, err
		}
		out[c.Name] = cv
	}
	if found != n {
		return nil, t.unknownColumn(r)
	}
	return out, nil
}

// normalizeOwned is normalize for callers that transfer ownership of r.
// The stored row is still a fresh map: callers typically pass a literal
// holding only the present columns, and nil-filling the absent ones in
// place would grow that undersized map through the runtime's incremental
// rehash — hashing every key twice and churning allocations — which costs
// more than one exactly-sized copy. Ownership transfer still matters for
// the contract: the caller must not touch r afterwards, so coerced values
// may alias it (InsertOwned documents this).
func (t *table) normalizeOwned(r Row) (Row, error) {
	return t.normalize(r)
}

// unknownColumn names a key of r that is not a column of t. Called only
// when normalize's presence count proved such a key exists.
func (t *table) unknownColumn(r Row) error {
	for k := range r {
		if _, ok := t.colType[k]; !ok {
			return fmt.Errorf("relstore: table %s has no column %s", t.schema.Name, k)
		}
	}
	return fmt.Errorf("relstore: table %s: row has an unknown column", t.schema.Name)
}

// checkUnique verifies unique constraints for row (excluding the row with
// id exclude, for updates) against the writer's view.
func (t *table) checkUnique(row Row, exclude int64) error {
	return t.checkUniqueKeys(t.buildUniqueKeys(row), exclude)
}

// checkUniqueKeys is checkUnique over keys pre-built by buildUniqueKeys,
// probing the buckets that build already resolved.
func (t *table) checkUniqueKeys(keys [][]byte, exclude int64) error {
	for i := range keys {
		if b := t.ubuckets[i]; b != nil {
			if id, live := b.liveID(); live && id != exclude {
				return &UniqueError{Table: t.schema.Name, Columns: t.schema.Unique[i], ExistingID: id}
			}
		}
	}
	return nil
}

func (t *table) unindexRow(row Row, e uint64) {
	id := row.ID()
	for i, cols := range t.schema.Unique {
		t.keyBuf = t.keyInto(t.keyBuf[:0], row, cols)
		t.uniques[i].endPosting(t.keyBuf, id, e)
	}
	for i, cols := range t.schema.Indexes {
		if ix := t.indexes[i]; ix.mi != nil {
			v, isNil := intKeyOf(row, ix.intCol)
			ix.endPostingInt(v, isNil, id, e)
			continue
		}
		t.keyBuf = t.keyInto(t.keyBuf[:0], row, cols)
		t.indexes[i].endPosting(t.keyBuf, id, e)
	}
}

// pruneRowKeys prunes this row's own interval chains under each of its
// keys; writers call it for the rows they just touched so history never
// accumulates, without ever walking the other rows sharing a key.
func (t *table) pruneRowKeys(row Row, minE uint64) int {
	id := row.ID()
	n := 0
	for i, cols := range t.schema.Unique {
		t.keyBuf = t.keyInto(t.keyBuf[:0], row, cols)
		n += t.uniques[i].pruneID(t.keyBuf, id, minE)
	}
	for i, cols := range t.schema.Indexes {
		if ix := t.indexes[i]; ix.mi != nil {
			v, isNil := intKeyOf(row, ix.intCol)
			n += ix.pruneIDInt(v, isNil, id, minE)
			continue
		}
		t.keyBuf = t.keyInto(t.keyBuf[:0], row, cols)
		n += t.indexes[i].pruneID(t.keyBuf, id, minE)
	}
	return n
}

// findIndex returns the position of an index exactly covering cols (order
// sensitive), or -1.
func (t *table) findIndex(cols []string) int {
	for i, ix := range t.schema.Indexes {
		if len(ix) != len(cols) {
			continue
		}
		match := true
		for j := range ix {
			if ix[j] != cols[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// UniqueError reports a unique-constraint violation. The loader relies on
// it to implement idempotent replay (duplicate static events on workflow
// restart are skipped, not fatal).
type UniqueError struct {
	Table      string
	Columns    []string
	ExistingID int64
}

func (e *UniqueError) Error() string {
	return fmt.Sprintf("relstore: unique constraint on %s(%s) violated (existing row %d)",
		e.Table, strings.Join(e.Columns, ","), e.ExistingID)
}
