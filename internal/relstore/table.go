package relstore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// table holds one TableSchema's rows as multi-version chains plus posting
// lists for unique constraints and secondary indexes. All mutation is
// serialized by the store-wide writer mutex; readers never lock. Every
// structure a reader can reach is either immutable after publication or
// published through an atomic pointer/uint store, so readers race-freely
// observe a consistent prefix of history at their pinned epoch.
type table struct {
	schema  *TableSchema
	colType map[string]ColType
	rows    sync.Map     // int64 id -> *rowChain
	nextID  int64        // writer-owned: only touched under Store.writeMu
	live    atomic.Int64 // rows visible at the newest epoch (O(1) Store.Count)
	uniques []*postingIndex
	indexes []*postingIndex
}

// rowChain is the per-row version list, newest version first.
type rowChain struct {
	head atomic.Pointer[rowVersion]
}

// rowVersion is one immutable version of a row. A version is visible to a
// reader at epoch e when begin <= e and (end == 0 or end > e). row and
// begin are written before the version is published via an atomic head
// store and never change afterwards; end is set once, when a newer version
// supersedes the row or a delete tombstones it. prev is atomic so version
// GC can truncate the tail while readers walk the chain.
type rowVersion struct {
	row   Row
	begin uint64
	end   atomic.Uint64 // 0 = still current
	prev  atomic.Pointer[rowVersion]
}

// visibleAt returns the version of this chain visible at epoch e, or nil.
// The chain is ordered newest first, so the first version with begin <= e
// decides: either it is visible at e or the row does not exist at e (any
// older version ended no later than this one began).
func (c *rowChain) visibleAt(e uint64) *rowVersion {
	for v := c.head.Load(); v != nil; v = v.prev.Load() {
		if v.begin > e {
			continue
		}
		if end := v.end.Load(); end == 0 || end > e {
			return v
		}
		return nil
	}
	return nil
}

// liveVersion returns the newest un-ended version — the writer's view.
func (c *rowChain) liveVersion() *rowVersion {
	if v := c.head.Load(); v != nil && v.end.Load() == 0 {
		return v
	}
	return nil
}

// pruneChain drops versions no reader at epoch >= minE can reach: every
// version below the newest one whose begin <= minE. Dropped versions stay
// internally linked, so a reader paused mid-walk finishes safely. Returns
// the number of versions reclaimed. Writer-only.
func pruneChain(c *rowChain, minE uint64) int {
	v := c.head.Load()
	for v != nil && v.begin > minE {
		v = v.prev.Load()
	}
	if v == nil {
		return 0
	}
	n := 0
	for old := v.prev.Load(); old != nil; old = old.prev.Load() {
		n++
	}
	if n > 0 {
		v.prev.Store(nil)
	}
	return n
}

// postingIndex maps a composite key to a bucket of per-row interval
// chains. Keeping one chain per (key, id) pair — rather than one list per
// key — makes every writer-side operation (tombstone, prune) O(1) in the
// number of rows sharing the key, which is what keeps hot keys (all jobs
// of one workflow, say) from turning every update into a full-key walk.
type postingIndex struct {
	m sync.Map // string key -> *postingBucket
}

// postingBucket is every row that ever matched one key, id -> its interval
// chain. ids counts the byID entries so an emptied bucket can drop its key
// without ranging the map; it is writer-owned (mutated under writeMu).
type postingBucket struct {
	byID sync.Map // int64 id -> *postingChain
	ids  int64
}

// postingChain is one row's validity intervals for one key, newest first.
type postingChain struct {
	head atomic.Pointer[posting]
}

// posting records that the row matched the key during the epoch range
// [begin, end). Like rowVersion, begin is immutable after the atomic head
// publish and end is set once.
type posting struct {
	begin uint64
	end   atomic.Uint64 // 0 = still current
	next  atomic.Pointer[posting]
}

func postingVisible(p *posting, e uint64) bool {
	if p.begin > e {
		return false
	}
	end := p.end.Load()
	return end == 0 || end > e
}

// visibleIn reports whether some interval of chain c covers epoch e. The
// chain is newest first and intervals are disjoint, so the first interval
// with begin <= e decides.
func (c *postingChain) visibleIn(e uint64) bool {
	for p := c.head.Load(); p != nil; p = p.next.Load() {
		if p.begin > e {
			continue
		}
		return postingVisible(p, e)
	}
	return false
}

// liveIn reports whether the chain's newest interval is still open.
func (c *postingChain) liveIn() bool {
	p := c.head.Load()
	return p != nil && p.end.Load() == 0
}

// add opens a live interval for (key, id) at epoch e. Writer-only.
func (ix *postingIndex) add(key string, id int64, e uint64) {
	bv, ok := ix.m.Load(key)
	if !ok {
		bv, _ = ix.m.LoadOrStore(key, &postingBucket{})
	}
	b := bv.(*postingBucket)
	cv, loaded := b.byID.Load(id)
	if !loaded {
		cv, loaded = b.byID.LoadOrStore(id, &postingChain{})
	}
	if !loaded {
		b.ids++
	}
	c := cv.(*postingChain)
	p := &posting{begin: e}
	p.next.Store(c.head.Load())
	c.head.Store(p)
}

// endPosting closes the live interval for (key, id) at epoch e.
func (ix *postingIndex) endPosting(key string, id int64, e uint64) {
	if c := ix.chain(key, id); c != nil {
		if p := c.head.Load(); p != nil && p.end.Load() == 0 {
			p.end.Store(e)
		}
	}
}

func (ix *postingIndex) chain(key string, id int64) *postingChain {
	bv, ok := ix.m.Load(key)
	if !ok {
		return nil
	}
	cv, ok := bv.(*postingBucket).byID.Load(id)
	if !ok {
		return nil
	}
	return cv.(*postingChain)
}

// liveID returns the id of a row currently holding key — the writer's
// view, used for unique checks and FK probes. Dead entries are pruned on
// write, so a unique key's bucket stays near one entry.
func (ix *postingIndex) liveID(key string) (int64, bool) {
	bv, ok := ix.m.Load(key)
	if !ok {
		return 0, false
	}
	var id int64
	found := false
	bv.(*postingBucket).byID.Range(func(k, v any) bool {
		if v.(*postingChain).liveIn() {
			id, found = k.(int64), true
			return false
		}
		return true
	})
	return id, found
}

// idAt returns the id of the row holding key at epoch e. For unique keys
// at most one row is visible at any epoch.
func (ix *postingIndex) idAt(key string, e uint64) (int64, bool) {
	bv, ok := ix.m.Load(key)
	if !ok {
		return 0, false
	}
	var id int64
	found := false
	bv.(*postingBucket).byID.Range(func(k, v any) bool {
		if v.(*postingChain).visibleIn(e) {
			id, found = k.(int64), true
			return false
		}
		return true
	})
	return id, found
}

// idsAt collects the ids of all rows matching key at epoch e, ascending by
// primary key so indexed Selects are deterministic.
func (ix *postingIndex) idsAt(key string, e uint64) []int64 {
	bv, ok := ix.m.Load(key)
	if !ok {
		return nil
	}
	var ids []int64
	bv.(*postingBucket).byID.Range(func(k, v any) bool {
		if v.(*postingChain).visibleIn(e) {
			ids = append(ids, k.(int64))
		}
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func postingDead(p *posting, minE uint64) bool {
	end := p.end.Load()
	return end != 0 && end <= minE
}

// pruneIntervals drops intervals of c that no reader at epoch >= minE can
// see. Unlinked postings keep their own next pointers, so a paused reader
// finishes its walk. Reports how many were reclaimed and whether the chain
// is now empty. Writer-only.
func pruneIntervals(c *postingChain, minE uint64) (reclaimed int, empty bool) {
	v := c.head.Load()
	for v != nil && v.begin > minE {
		v = v.next.Load()
	}
	if v == nil {
		return 0, c.head.Load() == nil
	}
	n := 0
	for old := v.next.Load(); old != nil; old = old.next.Load() {
		n++
	}
	if n > 0 {
		v.next.Store(nil)
	}
	if postingDead(v, minE) {
		// v itself is invisible to every reader at or above the horizon;
		// unlink it too (it is the tail after the truncation above).
		n++
		if c.head.Load() == v {
			c.head.Store(nil)
		} else {
			for p := c.head.Load(); p != nil; p = p.next.Load() {
				if p.next.Load() == v {
					p.next.Store(nil)
					break
				}
			}
		}
	}
	return n, c.head.Load() == nil
}

// pruneID prunes the single interval chain for (key, id), dropping the id
// entry — and the key's bucket when it empties — once nothing visible
// remains. Writer-only.
func (ix *postingIndex) pruneID(key string, id int64, minE uint64) int {
	bv, ok := ix.m.Load(key)
	if !ok {
		return 0
	}
	b := bv.(*postingBucket)
	cv, ok := b.byID.Load(id)
	if !ok {
		return 0
	}
	n, empty := pruneIntervals(cv.(*postingChain), minE)
	if empty {
		b.byID.Delete(id)
		b.ids--
		if b.ids == 0 {
			ix.m.Delete(key)
		}
	}
	return n
}

// pruneAll prunes every chain in the index. Writer-only.
func (ix *postingIndex) pruneAll(minE uint64) int {
	n := 0
	ix.m.Range(func(k, bv any) bool {
		b := bv.(*postingBucket)
		b.byID.Range(func(id, cv any) bool {
			r, empty := pruneIntervals(cv.(*postingChain), minE)
			n += r
			if empty {
				b.byID.Delete(id)
				b.ids--
			}
			return true
		})
		if b.ids == 0 {
			ix.m.Delete(k)
		}
		return true
	})
	return n
}

func newTable(s *TableSchema) *table {
	t := &table{
		schema:  s,
		colType: make(map[string]ColType, len(s.Columns)+1),
		nextID:  1,
	}
	t.colType["id"] = Int
	for _, c := range s.Columns {
		t.colType[c.Name] = c.Type
	}
	for range s.Unique {
		t.uniques = append(t.uniques, &postingIndex{})
	}
	for range s.Indexes {
		t.indexes = append(t.indexes, &postingIndex{})
	}
	return t
}

// putRow installs a brand-new row (id already assigned) as a fresh chain
// beginning at epoch e and indexes it. Writer-only. The caller maintains
// t.live — the Store bumps it only after the epoch publishes, so Count
// never reports a partially applied batch.
func (t *table) putRow(row Row, e uint64) {
	c := &rowChain{}
	c.head.Store(&rowVersion{row: row, begin: e})
	t.rows.Store(row.ID(), c)
	t.indexRow(row, e)
}

// supersede replaces the live version old of chain c with row at epoch e.
// Readers pinned below e keep seeing old; readers at e and later see row.
func (t *table) supersede(c *rowChain, old *rowVersion, row Row, e uint64) {
	t.unindexRow(old.row, e)
	v := &rowVersion{row: row, begin: e}
	v.prev.Store(old)
	old.end.Store(e)
	c.head.Store(v)
	t.indexRow(row, e)
}

// kill tombstones the live version at epoch e (delete). As with putRow,
// the caller maintains t.live after publishing the epoch.
func (t *table) kill(old *rowVersion, e uint64) {
	t.unindexRow(old.row, e)
	old.end.Store(e)
}

// compositeKey encodes the values of cols from row into one string key.
// A length-prefixed encoding keeps ("a","bc") distinct from ("ab","c").
func compositeKey(row Row, cols []string) string {
	var b strings.Builder
	for _, c := range cols {
		v := row[c]
		var s string
		switch x := v.(type) {
		case nil:
			s = "\x00nil"
		case int64:
			s = strconv.FormatInt(x, 10)
		case float64:
			s = strconv.FormatFloat(x, 'g', -1, 64)
		case string:
			s = x
		case bool:
			s = strconv.FormatBool(x)
		case time.Time:
			s = x.UTC().Format(time.RFC3339Nano)
		default:
			s = fmt.Sprint(x)
		}
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	return b.String()
}

// normalize coerces every value in r to canonical types, checks that all
// columns exist, and fills absent nullable columns with nil. The returned
// row is a fresh copy owned by the table.
func (t *table) normalize(r Row) (Row, error) {
	out := make(Row, len(t.schema.Columns)+1)
	for k, v := range r {
		if k == "id" {
			continue // assigned by the table
		}
		ct, ok := t.colType[k]
		if !ok {
			return nil, fmt.Errorf("relstore: table %s has no column %s", t.schema.Name, k)
		}
		cv, err := coerce(t.schema.Name, k, ct, v)
		if err != nil {
			return nil, err
		}
		out[k] = cv
	}
	for _, c := range t.schema.Columns {
		if _, present := out[c.Name]; !present {
			if !c.Nullable {
				return nil, fmt.Errorf("relstore: table %s: column %s is required", t.schema.Name, c.Name)
			}
			out[c.Name] = nil
		} else if out[c.Name] == nil && !c.Nullable {
			return nil, fmt.Errorf("relstore: table %s: column %s may not be null", t.schema.Name, c.Name)
		}
	}
	return out, nil
}

// checkUnique verifies unique constraints for row (excluding the row with
// id exclude, for updates) against the writer's view.
func (t *table) checkUnique(row Row, exclude int64) error {
	for i, cols := range t.schema.Unique {
		if id, ok := t.uniques[i].liveID(compositeKey(row, cols)); ok && id != exclude {
			return &UniqueError{Table: t.schema.Name, Columns: cols, ExistingID: id}
		}
	}
	return nil
}

func (t *table) indexRow(row Row, e uint64) {
	id := row.ID()
	for i, cols := range t.schema.Unique {
		t.uniques[i].add(compositeKey(row, cols), id, e)
	}
	for i, cols := range t.schema.Indexes {
		t.indexes[i].add(compositeKey(row, cols), id, e)
	}
}

func (t *table) unindexRow(row Row, e uint64) {
	id := row.ID()
	for i, cols := range t.schema.Unique {
		t.uniques[i].endPosting(compositeKey(row, cols), id, e)
	}
	for i, cols := range t.schema.Indexes {
		t.indexes[i].endPosting(compositeKey(row, cols), id, e)
	}
}

// pruneRowKeys prunes this row's own interval chains under each of its
// keys; writers call it for the rows they just touched so history never
// accumulates, without ever walking the other rows sharing a key.
func (t *table) pruneRowKeys(row Row, minE uint64) int {
	id := row.ID()
	n := 0
	for i, cols := range t.schema.Unique {
		n += t.uniques[i].pruneID(compositeKey(row, cols), id, minE)
	}
	for i, cols := range t.schema.Indexes {
		n += t.indexes[i].pruneID(compositeKey(row, cols), id, minE)
	}
	return n
}

// findIndex returns the position of an index exactly covering cols (order
// sensitive), or -1.
func (t *table) findIndex(cols []string) int {
	for i, ix := range t.schema.Indexes {
		if len(ix) != len(cols) {
			continue
		}
		match := true
		for j := range ix {
			if ix[j] != cols[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// UniqueError reports a unique-constraint violation. The loader relies on
// it to implement idempotent replay (duplicate static events on workflow
// restart are skipped, not fatal).
type UniqueError struct {
	Table      string
	Columns    []string
	ExistingID int64
}

func (e *UniqueError) Error() string {
	return fmt.Sprintf("relstore: unique constraint on %s(%s) violated (existing row %d)",
		e.Table, strings.Join(e.Columns, ","), e.ExistingID)
}
