package relstore

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Store is a set of multi-version tables. Concurrency follows the classic
// single-writer / many-reader MVCC shape: one store-wide writer mutex
// serializes all mutations, and every mutation runs at a fresh epoch that
// is published with one atomic store once the change is fully in place.
// Readers never take a lock — Snapshot pins the newest published epoch and
// reads version chains whose visible prefix at that epoch can no longer
// change, so a heavy scan cannot stall the loader and a cross-table
// traversal cannot observe a torn mid-batch state.
type Store struct {
	// writeMu serializes Insert/InsertBatch/Update/Delete/CreateTable.
	// Multi-table invariants (foreign keys) stay simple because the single
	// writer means a referenced row cannot disappear mid-check.
	writeMu sync.Mutex
	// epoch is the newest published epoch. A mutation works at epoch+1 and
	// publishes by storing the new value after all its versions are linked,
	// so a reader that loads the epoch sees all of the mutation or none.
	epoch atomic.Uint64
	// tables is copy-on-write: CreateTable swaps in a whole new set, so
	// readers resolve table names with one atomic load.
	tables atomic.Pointer[tableSet]
	wal    atomic.Pointer[walWriter] // nil for purely in-memory stores
	// checkFKs can be disabled for bulk replay of already-validated data.
	checkFKs atomic.Bool

	// snapMu guards the pin registry (open snapshots plus in-flight
	// Store-level reads); minLive caches the oldest pinned epoch
	// (MaxUint64 when none) as the version-GC floor. gcHorizon reads
	// minLive under snapMu too, so horizon computation serializes with
	// pin registration — see pin.
	snapMu  sync.Mutex
	pins    map[*epochPin]struct{}
	minLive atomic.Uint64
}

// tableSet is an immutable name→table mapping plus creation order.
type tableSet struct {
	byName map[string]*table
	order  []string
}

// NewStore returns an empty in-memory store with foreign-key checking on.
func NewStore() *Store {
	s := &Store{pins: make(map[*epochPin]struct{})}
	s.tables.Store(&tableSet{byName: make(map[string]*table)})
	s.checkFKs.Store(true)
	s.minLive.Store(^uint64(0))
	return s
}

// SetForeignKeyChecks toggles FK enforcement (on by default).
func (s *Store) SetForeignKeyChecks(on bool) { s.checkFKs.Store(on) }

// Epoch returns the newest published epoch: the point-in-time a snapshot
// taken now would pin. The tracing layer stamps it on commit spans as
// "the version at which this event became visible to readers".
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// CreateTable registers a table. Creating a table that already exists with
// an identical schema is a no-op, so archive initialisation is idempotent.
func (s *Store) CreateTable(schema TableSchema) error {
	if err := schema.validate(); err != nil {
		return err
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	ts := s.tables.Load()
	if existing, ok := ts.byName[schema.Name]; ok {
		if fmt.Sprintf("%+v", *existing.schema) == fmt.Sprintf("%+v", schema) {
			return nil
		}
		return fmt.Errorf("relstore: table %s already exists with a different schema", schema.Name)
	}
	cp := schema
	next := &tableSet{
		byName: make(map[string]*table, len(ts.byName)+1),
		order:  append(append([]string(nil), ts.order...), schema.Name),
	}
	for k, v := range ts.byName {
		next.byName[k] = v
	}
	next.byName[schema.Name] = newTable(&cp)
	s.tables.Store(next)
	if w := s.wal.Load(); w != nil {
		if err := w.logCreate(&cp); err != nil {
			return err
		}
	}
	return nil
}

// TableNames lists tables in creation order.
func (s *Store) TableNames() []string {
	return append([]string(nil), s.tables.Load().order...)
}

// Count returns the number of live rows. Each table keeps a live-row
// counter, so this is O(1) and scan-free. The counter moves by one bulk
// add per mutation, after its epoch publishes, so Count never includes a
// partially applied batch — it reflects whole published mutations only,
// though it may momentarily lag the very newest publish. Readers that
// need a count exactly consistent with other reads should use
// Snapshot().Count, which tallies at the pinned epoch.
func (s *Store) Count(tableName string) (int, error) {
	t, ok := s.tables.Load().byName[tableName]
	if !ok {
		return 0, fmt.Errorf("relstore: no table %s", tableName)
	}
	return int(t.live.Load()), nil
}

// Insert adds one row and returns its assigned primary key. The row is
// copied; the caller keeps ownership of row.
func (s *Store) Insert(tableName string, row Row) (int64, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	t, ok := s.tables.Load().byName[tableName]
	if !ok {
		return 0, fmt.Errorf("relstore: no table %s", tableName)
	}
	n, err := t.normalize(row)
	if err != nil {
		return 0, err
	}
	return s.insertRowLocked(tableName, t, n)
}

// InsertOwned is Insert for callers that hand over ownership of row: the
// map is coerced in place and becomes the stored version, skipping the
// defensive copy Insert makes. The caller must not read or write row after
// the call. This is the archive's hot path — every materialised event
// builds exactly one fresh Row literal and donates it.
func (s *Store) InsertOwned(tableName string, row Row) (int64, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	t, ok := s.tables.Load().byName[tableName]
	if !ok {
		return 0, fmt.Errorf("relstore: no table %s", tableName)
	}
	n, err := t.normalizeOwned(row)
	if err != nil {
		return 0, err
	}
	return s.insertRowLocked(tableName, t, n)
}

// insertRowLocked runs the shared tail of Insert/InsertOwned: uniqueness
// and FK checks, id assignment, version linking and epoch publish. The
// caller holds writeMu and has normalized n.
func (s *Store) insertRowLocked(tableName string, t *table, n Row) (int64, error) {
	e := s.epoch.Load() + 1
	keys := t.buildUniqueKeys(n)
	if err := t.checkUniqueKeys(keys, 0); err != nil {
		return 0, err
	}
	if err := s.checkForeignKeys(t, n); err != nil {
		return 0, err
	}
	id := t.nextID
	t.nextID++
	n["id"] = id
	t.putRowKeys(n, e, keys)
	s.epoch.Store(e)
	t.live.Add(1)
	if w := s.wal.Load(); w != nil {
		if err := w.logInsertBatch(tableName, []Row{n}); err != nil {
			return id, err
		}
	}
	return id, nil
}

// InsertBatch adds many rows under one lock acquisition, one epoch, and
// one WAL write — the fast path the stampede loader batches into. It fails
// atomically: on any error no row from the batch is applied. Because the
// whole batch publishes as a single epoch, a snapshot either sees all of
// the batch or none of it.
func (s *Store) InsertBatch(tableName string, rows []Row) ([]int64, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	t, ok := s.tables.Load().byName[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %s", tableName)
	}
	normalized := make([]Row, len(rows))
	// Validate everything before mutating, so failure is atomic. Unique
	// checks must also consider earlier rows in the same batch.
	batchKeys := make([]map[string]bool, len(t.schema.Unique))
	for i := range batchKeys {
		batchKeys[i] = make(map[string]bool)
	}
	for i, r := range rows {
		n, err := t.normalize(r)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		if err := t.checkUnique(n, 0); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		for u, cols := range t.schema.Unique {
			key := compositeKey(n, cols)
			if batchKeys[u][key] {
				return nil, fmt.Errorf("row %d: %w", i, &UniqueError{Table: tableName, Columns: cols})
			}
			batchKeys[u][key] = true
		}
		if err := s.checkForeignKeys(t, n); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		normalized[i] = n
	}
	e := s.epoch.Load() + 1
	ids := make([]int64, len(normalized))
	for i, n := range normalized {
		id := t.nextID
		t.nextID++
		n["id"] = id
		t.putRow(n, e)
		ids[i] = id
	}
	s.epoch.Store(e)
	t.live.Add(int64(len(normalized)))
	if w := s.wal.Load(); w != nil {
		if err := w.logInsertBatch(tableName, normalized); err != nil {
			return ids, err
		}
	}
	return ids, nil
}

// checkForeignKeys verifies row's FK values against the writer's view; the
// caller holds writeMu, so referenced rows cannot vanish mid-check.
func (s *Store) checkForeignKeys(t *table, row Row) error {
	if !s.checkFKs.Load() {
		return nil
	}
	ts := s.tables.Load()
	for _, fk := range t.schema.ForeignKeys {
		v := row[fk.Column]
		if v == nil {
			continue // null FK means "no reference", as in SQL
		}
		ref, ok := ts.byName[fk.RefTable]
		if !ok {
			return fmt.Errorf("relstore: %s.%s references missing table %s", t.schema.Name, fk.Column, fk.RefTable)
		}
		if !refExists(ref, fk.RefColumn, v) {
			return &FKError{
				Table: t.schema.Name, Column: fk.Column,
				RefTable: fk.RefTable, RefColumn: fk.RefColumn, Value: v,
			}
		}
	}
	return nil
}

func refExists(ref *table, col string, v any) bool {
	if col == "id" {
		id, ok := v.(int64)
		if !ok {
			return false
		}
		c, ok := ref.rows.Load(id)
		return ok && c.liveVersion() != nil
	}
	// Try a unique constraint or index covering exactly this column.
	probe := Row{col: v}
	for i, cols := range ref.schema.Unique {
		if len(cols) == 1 && cols[0] == col {
			_, ok := ref.uniques[i].liveID(compositeKey(probe, cols))
			return ok
		}
	}
	if ix := ref.findIndex([]string{col}); ix >= 0 {
		_, ok := ref.indexes[ix].liveID(compositeKey(probe, []string{col}))
		return ok
	}
	found := false
	ref.rows.Range(func(_ int64, c *rowChain) bool {
		if lv := c.liveVersion(); lv != nil && valueEq(lv.row[col], v) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Get returns the row with the given primary key, or nil when absent. The
// returned row is a copy; mutating it does not affect the store.
func (s *Store) Get(tableName string, id int64) (Row, error) {
	v, release := s.pinnedView(true)
	defer release()
	return v.get(tableName, id)
}

// Update rewrites the named columns of the row with primary key id.
func (s *Store) Update(tableName string, id int64, changes Row) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	t, ok := s.tables.Load().byName[tableName]
	if !ok {
		return fmt.Errorf("relstore: no table %s", tableName)
	}
	chain, ok := t.rows.Load(id)
	var old *rowVersion
	if ok {
		old = chain.liveVersion()
	}
	if old == nil {
		return fmt.Errorf("relstore: %s has no row %d", tableName, id)
	}
	merged := old.row.Clone()
	for k, v := range changes {
		if k == "id" {
			return fmt.Errorf("relstore: cannot update primary key")
		}
		ct, ok := t.colType[k]
		if !ok {
			return fmt.Errorf("relstore: table %s has no column %s", tableName, k)
		}
		cvv, err := coerce(tableName, k, ct, v)
		if err != nil {
			return err
		}
		if cvv == nil {
			nullable := false
			for _, c := range t.schema.Columns {
				if c.Name == k {
					nullable = c.Nullable
					break
				}
			}
			if !nullable {
				return fmt.Errorf("relstore: table %s: column %s may not be null", tableName, k)
			}
		}
		merged[k] = cvv
	}
	if err := t.checkUnique(merged, id); err != nil {
		return err
	}
	if err := s.checkForeignKeys(t, merged); err != nil {
		return err
	}
	e := s.epoch.Load() + 1
	t.supersede(chain, old, merged, e)
	s.gcAfterWrite(t, chain, id, old.row, merged, e-1)
	s.epoch.Store(e)
	if w := s.wal.Load(); w != nil {
		if err := w.logUpdate(tableName, id, merged); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes a row; deleting an absent row is a no-op.
func (s *Store) Delete(tableName string, id int64) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	t, ok := s.tables.Load().byName[tableName]
	if !ok {
		return fmt.Errorf("relstore: no table %s", tableName)
	}
	chain, ok := t.rows.Load(id)
	if !ok {
		return nil
	}
	old := chain.liveVersion()
	if old == nil {
		return nil
	}
	e := s.epoch.Load() + 1
	t.kill(old, e)
	s.gcAfterWrite(t, chain, id, old.row, nil, e-1)
	s.epoch.Store(e)
	t.live.Add(-1)
	if w := s.wal.Load(); w != nil {
		if err := w.logDelete(tableName, id); err != nil {
			return err
		}
	}
	return nil
}

// gcHorizon is the oldest epoch any current or future reader can pin:
// the oldest registered pin's epoch, or the last published epoch when
// none is open. minLive is read under snapMu so the computation
// serializes with pin registration: a registration is one snapMu
// critical section (epoch load + minLive publish), so it either lands
// before this read — and minLive accounts for it — or it runs entirely
// after, in which case it loads an epoch >= published (the caller only
// publishes a newer epoch after pruning) and cannot observe anything
// pruned at or below the horizon returned here. Without the mutex a
// registration preempted between loading epoch E and publishing
// minLive=E would let a writer prune at a horizon above E, silently
// emptying the not-yet-registered reader's view.
func (s *Store) gcHorizon(published uint64) uint64 {
	s.snapMu.Lock()
	m := s.minLive.Load()
	s.snapMu.Unlock()
	if m < published {
		return m
	}
	return published
}

// gcAfterWrite prunes the version chains a mutation just touched — the
// row's own chain plus the posting chains for the old and new key values —
// so hot rows (job-state updates, instance retries) do not accumulate
// history when no snapshot needs it. oldRow/newRow may be nil.
func (s *Store) gcAfterWrite(t *table, c *rowChain, id int64, oldRow, newRow Row, published uint64) {
	minE := s.gcHorizon(published)
	n := pruneChain(c, minE)
	if hv := c.head.Load(); hv != nil {
		if end := hv.end.Load(); end != 0 && end <= minE {
			// The whole chain is invisible at and after the horizon:
			// drop the row entry itself. Primary keys are never reused,
			// so a later insert cannot collide with a paused reader.
			t.rows.Delete(id)
			n++
		}
	}
	if oldRow != nil {
		n += t.pruneRowKeys(oldRow, minE)
	}
	if newRow != nil {
		n += t.pruneRowKeys(newRow, minE)
	}
	if n > 0 {
		mVersionReclaims.Add(uint64(n))
	}
}

// GC sweeps every table, pruning all row and posting versions that no live
// or future snapshot can observe, and returns the number reclaimed.
// Writers already prune the chains they touch as they go; GC is the full
// sweep for workloads that update hot rows and then go quiet.
func (s *Store) GC() int {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	minE := s.gcHorizon(s.epoch.Load())
	total := 0
	ts := s.tables.Load()
	for _, name := range ts.order {
		t := ts.byName[name]
		t.rows.Range(func(id int64, c *rowChain) bool {
			total += pruneChain(c, minE)
			if hv := c.head.Load(); hv != nil {
				if end := hv.end.Load(); end != 0 && end <= minE {
					t.rows.Delete(id)
					total++
				}
			}
			return true
		})
		for _, ix := range t.uniques {
			total += ix.pruneAll(minE)
		}
		for _, ix := range t.indexes {
			total += ix.pruneAll(minE)
		}
	}
	if total > 0 {
		mVersionReclaims.Add(uint64(total))
	}
	return total
}

// FKError reports a foreign-key violation.
type FKError struct {
	Table, Column, RefTable, RefColumn string
	Value                              any
}

func (e *FKError) Error() string {
	return fmt.Sprintf("relstore: %s.%s=%v has no match in %s.%s",
		e.Table, e.Column, e.Value, e.RefTable, e.RefColumn)
}
