package relstore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Store is a set of multi-version tables, split into N workflow-routed
// partitions. Each partition follows the classic single-writer /
// many-reader MVCC shape on its own: one per-partition writer mutex
// serializes its mutations, every mutation runs at a fresh per-partition
// epoch published with one atomic store, and readers never take a lock.
// Writers on distinct partitions commit truly in parallel — each with its
// own WAL segment chain and group-commit fsync — which is what breaks the
// old store-wide single-writer wall for the loader's apply shards.
//
// Cross-partition reads stay point-in-time: Snapshot pins a vector of
// partition epochs (see pinAll) so a traversal can never observe a torn
// multi-partition batch. Primary keys are allocated from one shared
// counter per logical table, so ids are unique store-wide and a row's id
// says nothing about which partition holds it.
type Store struct {
	parts []*partition

	// mpSeq is a seqlock guarding multi-partition atomic commits
	// (InsertBatchParts). A writer makes the sequence odd, publishes every
	// involved partition's epoch, then makes it even again; pinAll retries
	// until it pins all partitions inside one even interval. Commits that
	// touch a single partition never touch mpSeq — their epoch publish is
	// already atomic on its own.
	mpSeq atomic.Uint64

	// checkFKs can be disabled for bulk replay of already-validated data.
	checkFKs atomic.Bool

	// createMu serializes CreateTable (which swaps every partition's table
	// set) and guards allocs.
	createMu sync.Mutex
	// allocs holds the shared per-logical-table primary-key allocators;
	// every partition's instance of one table points at the same counter.
	allocs map[string]*atomic.Int64

	// dir is the backing directory for directory-mode stores (see OpenDir);
	// empty for in-memory and legacy single-file stores.
	dir string
	// ckptEvery is the per-partition WAL-record count that triggers an
	// automatic background checkpoint; 0 disables automatic checkpoints.
	ckptEvery uint64
}

// tableSet is an immutable name→table mapping plus creation order.
type tableSet struct {
	byName map[string]*table
	order  []string
}

// NewStore returns an empty single-partition in-memory store with
// foreign-key checking on — the drop-in equivalent of the pre-partitioning
// store.
func NewStore() *Store { return NewStoreN(1) }

// NewStoreN returns an empty in-memory store with n partitions (minimum 1).
func NewStoreN(n int) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{
		parts:  make([]*partition, n),
		allocs: make(map[string]*atomic.Int64),
	}
	for i := range s.parts {
		s.parts[i] = newPartition(i)
	}
	s.checkFKs.Store(true)
	return s
}

// NumPartitions reports how many partitions the store has.
func (s *Store) NumPartitions() int { return len(s.parts) }

// SetForeignKeyChecks toggles FK enforcement (on by default).
func (s *Store) SetForeignKeyChecks(on bool) { s.checkFKs.Store(on) }

// Epoch returns the sum of all partitions' published epochs: a monotonic
// version counter for the whole store. The tracing layer stamps it on
// commit spans as "the version at which this event became visible".
func (s *Store) Epoch() uint64 {
	var sum uint64
	for _, p := range s.parts {
		sum += p.epoch.Load()
	}
	return sum
}

// Epochs returns the current per-partition epoch vector. It is a
// convenience for diagnostics; unlike Snapshot it makes no atomicity
// claim across partitions.
func (s *Store) Epochs() []uint64 {
	out := make([]uint64, len(s.parts))
	for i, p := range s.parts {
		out[i] = p.epoch.Load()
	}
	return out
}

// PartitionStatus describes one live partition for operator tooling: its
// current visibility epoch and last-checkpoint high-water state (the
// on-disk counterpart is PartitionInfo / InspectDir). The health engine's
// diagnostics bundles embed this map so a triage report can say which
// partition fell behind.
type PartitionStatus struct {
	Partition            int     `json:"partition"`
	Epoch                uint64  `json:"epoch"`
	CheckpointTaken      bool    `json:"checkpoint_taken"`
	CheckpointSeq        uint64  `json:"checkpoint_seq"`
	CheckpointBytes      int64   `json:"checkpoint_bytes,omitempty"`
	CheckpointAgeSeconds float64 `json:"checkpoint_age_seconds,omitempty"`
}

// PartitionMap reports the per-partition epoch vector joined with each
// partition's checkpoint state. Like Epochs it makes no cross-partition
// atomicity claim — it is a diagnostics read, not a snapshot.
func (s *Store) PartitionMap() []PartitionStatus {
	stats := s.CheckpointStats()
	out := make([]PartitionStatus, len(s.parts))
	for i, p := range s.parts {
		out[i] = PartitionStatus{Partition: i, Epoch: p.epoch.Load()}
		if i < len(stats) && stats[i].Taken {
			out[i].CheckpointTaken = true
			out[i].CheckpointSeq = stats[i].Seq
			out[i].CheckpointBytes = stats[i].Bytes
			out[i].CheckpointAgeSeconds = stats[i].Age.Seconds()
		}
	}
	return out
}

// Writer is a handle bound to one partition. Loader apply shards hold one
// writer each (shard i → partition i%N), so their commits serialize only
// against writes to the same partition.
type Writer struct {
	s *Store
	p *partition
}

// Writer returns the write handle for partition i.
func (s *Store) Writer(i int) Writer {
	return Writer{s: s, p: s.parts[i]}
}

// Partition reports which partition this writer commits to.
func (w Writer) Partition() int { return w.p.idx }

// Insert adds one row to the writer's partition and returns its assigned
// primary key. The row is copied; the caller keeps ownership of row.
func (w Writer) Insert(tableName string, row Row) (int64, error) {
	return w.p.insert(w.s, tableName, row, false)
}

// InsertOwned is Insert for callers that hand over ownership of row: the
// map is coerced in place and becomes the stored version, skipping the
// defensive copy Insert makes. The caller must not read or write row after
// the call. This is the archive's hot path — every materialised event
// builds exactly one fresh Row literal and donates it.
func (w Writer) InsertOwned(tableName string, row Row) (int64, error) {
	return w.p.insert(w.s, tableName, row, true)
}

// InsertBatch adds many rows to the writer's partition under one lock
// acquisition, one epoch, and one WAL write.
func (w Writer) InsertBatch(tableName string, rows []Row) ([]int64, error) {
	return w.p.insertBatch(w.s, tableName, rows)
}

// Update rewrites the named columns of the row with primary key id, which
// must live in this writer's partition.
func (w Writer) Update(tableName string, id int64, changes Row) error {
	return w.p.update(w.s, tableName, id, changes)
}

// Delete removes a row from this writer's partition; deleting an absent
// row is a no-op.
func (w Writer) Delete(tableName string, id int64) error {
	return w.p.delete(w.s, tableName, id)
}

// CreateTable registers a table in every partition. Each partition gets
// its own instance (disjoint rows, private indexes) sharing one schema and
// one primary-key allocator. Creating a table that already exists with an
// identical schema is a no-op, so archive initialisation is idempotent.
func (s *Store) CreateTable(schema TableSchema) error {
	if err := schema.validate(); err != nil {
		return err
	}
	s.createMu.Lock()
	defer s.createMu.Unlock()
	if existing, ok := s.parts[0].tables.Load().byName[schema.Name]; ok {
		if fmt.Sprintf("%+v", *existing.schema) == fmt.Sprintf("%+v", schema) {
			return nil
		}
		return fmt.Errorf("relstore: table %s already exists with a different schema", schema.Name)
	}
	cp := schema
	alloc, ok := s.allocs[schema.Name]
	if !ok {
		alloc = &atomic.Int64{}
		s.allocs[schema.Name] = alloc
	}
	for _, p := range s.parts {
		p.writeMu.Lock()
		ts := p.tables.Load()
		next := &tableSet{
			byName: make(map[string]*table, len(ts.byName)+1),
			order:  append(append([]string(nil), ts.order...), schema.Name),
		}
		for k, v := range ts.byName {
			next.byName[k] = v
		}
		next.byName[schema.Name] = newTable(&cp, alloc)
		p.tables.Store(next)
		// Log the create while still holding writeMu, so no insert into the
		// new table can precede it in this partition's WAL.
		if w := p.wal.Load(); w != nil {
			if err := w.logCreate(&cp); err != nil {
				p.writeMu.Unlock()
				return err
			}
		}
		p.writeMu.Unlock()
	}
	return nil
}

// TableNames lists tables in creation order.
func (s *Store) TableNames() []string {
	return append([]string(nil), s.parts[0].tables.Load().order...)
}

// Count returns the number of live rows across all partitions. Each
// partition's table keeps a live-row counter, so this is O(partitions) and
// scan-free. A counter moves by one bulk add per mutation, after its epoch
// publishes, so Count never includes a partially applied batch. Readers
// that need a count exactly consistent with other reads should use
// Snapshot().Count, which tallies at the pinned epoch vector.
func (s *Store) Count(tableName string) (int, error) {
	total := 0
	for _, p := range s.parts {
		t, ok := p.tables.Load().byName[tableName]
		if !ok {
			return 0, fmt.Errorf("relstore: no table %s", tableName)
		}
		total += int(t.live.Load())
	}
	return total, nil
}

// Insert adds one row to partition 0 and returns its assigned primary key.
// Partition-aware callers should route through Writer instead.
func (s *Store) Insert(tableName string, row Row) (int64, error) {
	return s.parts[0].insert(s, tableName, row, false)
}

// InsertOwned is Writer.InsertOwned against partition 0.
func (s *Store) InsertOwned(tableName string, row Row) (int64, error) {
	return s.parts[0].insert(s, tableName, row, true)
}

// InsertBatch adds many rows to partition 0 under one lock acquisition,
// one epoch, and one WAL write — the fast path the stampede loader batches
// into. It fails atomically: on any error no row from the batch is applied.
// Because the whole batch publishes as a single epoch, a snapshot either
// sees all of the batch or none of it.
func (s *Store) InsertBatch(tableName string, rows []Row) ([]int64, error) {
	return s.parts[0].insertBatch(s, tableName, rows)
}

// InsertBatchParts adds many rows in one atomic batch spanning partitions:
// rows[i] goes to partition parts[i]. The involved partitions' writer
// mutexes are taken in ascending order (deadlock-free against concurrent
// multi-partition batches), every row is validated before any is applied,
// primary keys are assigned in input order, and the per-partition epochs
// publish inside one odd mpSeq interval — so a snapshot observes all of
// the batch or none of it, never a torn subset.
func (s *Store) InsertBatchParts(tableName string, rows []Row, parts []int) ([]int64, error) {
	if len(rows) != len(parts) {
		return nil, fmt.Errorf("relstore: InsertBatchParts: %d rows but %d partition assignments", len(rows), len(parts))
	}
	if len(rows) == 0 {
		return nil, nil
	}
	involved := make([]bool, len(s.parts))
	for _, pi := range parts {
		if pi < 0 || pi >= len(s.parts) {
			return nil, fmt.Errorf("relstore: partition %d out of range [0,%d)", pi, len(s.parts))
		}
		involved[pi] = true
	}
	var locked []*partition
	for i, p := range s.parts {
		if involved[i] {
			p.writeMu.Lock()
			locked = append(locked, p)
		}
	}
	unlock := func() {
		for i := len(locked) - 1; i >= 0; i-- {
			locked[i].writeMu.Unlock()
		}
	}

	tbl := make([]*table, len(s.parts))
	for i, p := range s.parts {
		if !involved[i] {
			continue
		}
		t, err := p.table(tableName)
		if err != nil {
			unlock()
			return nil, err
		}
		tbl[i] = t
	}

	// Validate everything before mutating, so failure is atomic. Unique
	// checks consider earlier rows of the batch bound for the same
	// partition (uniqueness is enforced per partition; rows that share a
	// routing key land in the same partition, which is what makes the
	// per-partition check globally sufficient under workflow routing).
	normalized := make([]Row, len(rows))
	batchKeys := make(map[int][]map[string]bool)
	for i, r := range rows {
		pi := parts[i]
		t := tbl[pi]
		n, err := t.normalize(r)
		if err != nil {
			unlock()
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		if err := t.checkUnique(n, 0); err != nil {
			unlock()
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		bk, ok := batchKeys[pi]
		if !ok {
			bk = make([]map[string]bool, len(t.schema.Unique))
			for u := range bk {
				bk[u] = make(map[string]bool)
			}
			batchKeys[pi] = bk
		}
		for u, cols := range t.schema.Unique {
			key := compositeKey(n, cols)
			if bk[u][key] {
				unlock()
				return nil, fmt.Errorf("row %d: %w", i, &UniqueError{Table: tableName, Columns: cols})
			}
			bk[u][key] = true
		}
		if err := s.checkForeignKeys(s.parts[pi], t, n); err != nil {
			unlock()
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		normalized[i] = n
	}

	newE := make([]uint64, len(s.parts))
	perPart := make([][]Row, len(s.parts))
	counts := make([]int64, len(s.parts))
	for i, p := range s.parts {
		if involved[i] {
			newE[i] = p.epoch.Load() + 1
		}
	}
	ids := make([]int64, len(rows))
	for i, n := range normalized {
		pi := parts[i]
		id := tbl[pi].alloc.Add(1)
		n["id"] = id
		tbl[pi].putRow(n, newE[pi])
		ids[i] = id
		perPart[pi] = append(perPart[pi], n)
		counts[pi]++
	}
	// Publish all involved epochs inside one odd seqlock interval.
	s.mpSeq.Add(1)
	for i, p := range s.parts {
		if involved[i] {
			p.epoch.Store(newE[i])
		}
	}
	s.mpSeq.Add(1)
	for i := range s.parts {
		if involved[i] {
			tbl[i].live.Add(counts[i])
		}
	}
	var werr error
	for i, p := range s.parts {
		if !involved[i] {
			continue
		}
		if w := p.wal.Load(); w != nil {
			if err := w.logInsertBatch(tableName, perPart[i]); err != nil {
				if werr == nil {
					werr = err
				}
			} else {
				p.noteRecords(s, 1)
			}
		}
	}
	unlock()
	return ids, werr
}

// pinAll pins every partition's published epoch inside one even mpSeq
// interval, so the resulting epoch vector can never straddle a
// multi-partition batch commit.
func (s *Store) pinAll() []*epochPin {
	pins := make([]*epochPin, len(s.parts))
	for {
		s0 := s.mpSeq.Load()
		if s0&1 == 0 {
			for i, p := range s.parts {
				pins[i] = p.pin()
			}
			if s.mpSeq.Load() == s0 {
				return pins
			}
			for i, p := range s.parts {
				p.unpin(pins[i])
			}
		}
		runtime.Gosched()
	}
}

// checkForeignKeys verifies row's FK values. The caller holds p's writeMu,
// so a reference within the same partition is checked against a stable
// writer view. References into other partitions are probed lock-free
// against their newest published state; under the archive's workflow
// routing these are append-only parent rows (workflow, host), so the probe
// is exact in practice.
func (s *Store) checkForeignKeys(p *partition, t *table, row Row) error {
	if !s.checkFKs.Load() {
		return nil
	}
	for _, fk := range t.schema.ForeignKeys {
		v := row[fk.Column]
		if v == nil {
			continue // null FK means "no reference", as in SQL
		}
		ref, ok := p.tables.Load().byName[fk.RefTable]
		if !ok {
			return fmt.Errorf("relstore: %s.%s references missing table %s", t.schema.Name, fk.Column, fk.RefTable)
		}
		if refExists(ref, fk.RefColumn, v, true) {
			continue
		}
		found := false
		for _, q := range s.parts {
			if q == p {
				continue
			}
			if refq, ok := q.tables.Load().byName[fk.RefTable]; ok && refExists(refq, fk.RefColumn, v, false) {
				found = true
				break
			}
		}
		if !found {
			return &FKError{
				Table: t.schema.Name, Column: fk.Column,
				RefTable: fk.RefTable, RefColumn: fk.RefColumn, Value: v,
			}
		}
	}
	return nil
}

// refExists probes one table instance for a live row with col = v.
// writerView means the caller holds that partition's writeMu and may use
// the writer-unlocked index read path; otherwise the reader-safe locked
// path is used. Row-chain probes (the id fast path and the scan fallback)
// are lock-free-safe either way.
func refExists(ref *table, col string, v any, writerView bool) bool {
	if col == "id" {
		id, ok := v.(int64)
		if !ok {
			return false
		}
		c, ok := ref.rows.Load(id)
		return ok && c.liveVersion() != nil
	}
	// Try a unique constraint or index covering exactly this column.
	probe := Row{col: v}
	for i, cols := range ref.schema.Unique {
		if len(cols) == 1 && cols[0] == col {
			key := compositeKey(probe, cols)
			if writerView {
				_, ok := ref.uniques[i].liveID(key)
				return ok
			}
			_, ok := ref.uniques[i].liveIDLocked(key)
			return ok
		}
	}
	if ixn := ref.findIndex([]string{col}); ixn >= 0 {
		ix := ref.indexes[ixn]
		if ix.mi != nil {
			v, isNil := intKeyOf(probe, ix.intCol)
			if writerView {
				_, ok := ix.liveIDInt(v, isNil)
				return ok
			}
			_, ok := ix.liveIDIntLocked(v, isNil)
			return ok
		}
		key := compositeKey(probe, []string{col})
		if writerView {
			_, ok := ix.liveID(key)
			return ok
		}
		_, ok := ix.liveIDLocked(key)
		return ok
	}
	found := false
	ref.rows.Range(func(_ int64, c *rowChain) bool {
		if lv := c.liveVersion(); lv != nil && valueEq(lv.row[col], v) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Get returns the row with the given primary key, or nil when absent. The
// returned row is a copy; mutating it does not affect the store.
func (s *Store) Get(tableName string, id int64) (Row, error) {
	v, release := s.pinnedView(true)
	defer release()
	return v.get(tableName, id)
}

// partitionOf finds the partition holding a live-or-recent chain for id,
// or nil. Rows never migrate between partitions, so a lock-free probe
// suffices to locate the owner before taking its writer mutex.
func (s *Store) partitionOf(tableName string, id int64) *partition {
	for _, p := range s.parts {
		if t, ok := p.tables.Load().byName[tableName]; ok {
			if _, ok := t.rows.Load(id); ok {
				return p
			}
		}
	}
	return nil
}

// Update rewrites the named columns of the row with primary key id,
// wherever it lives.
func (s *Store) Update(tableName string, id int64, changes Row) error {
	if p := s.partitionOf(tableName, id); p != nil {
		return p.update(s, tableName, id, changes)
	}
	if _, ok := s.parts[0].tables.Load().byName[tableName]; !ok {
		return fmt.Errorf("relstore: no table %s", tableName)
	}
	return fmt.Errorf("relstore: %s has no row %d", tableName, id)
}

// Delete removes a row wherever it lives; deleting an absent row is a
// no-op.
func (s *Store) Delete(tableName string, id int64) error {
	if p := s.partitionOf(tableName, id); p != nil {
		return p.delete(s, tableName, id)
	}
	if _, ok := s.parts[0].tables.Load().byName[tableName]; !ok {
		return fmt.Errorf("relstore: no table %s", tableName)
	}
	return nil
}

// GC sweeps every partition, pruning all row and posting versions that no
// live or future snapshot can observe, and returns the number reclaimed.
// Writers already prune the chains they touch as they go; GC is the full
// sweep for workloads that update hot rows and then go quiet. Partitions
// are swept one at a time, so GC never stalls more than one writer.
func (s *Store) GC() int {
	total := 0
	for _, p := range s.parts {
		total += p.gc()
	}
	return total
}

// gc sweeps one partition under its writer mutex.
func (p *partition) gc() int {
	p.writeMu.Lock()
	defer p.writeMu.Unlock()
	minE := p.gcHorizon(p.epoch.Load())
	total := 0
	ts := p.tables.Load()
	for _, name := range ts.order {
		t := ts.byName[name]
		t.rows.Range(func(id int64, c *rowChain) bool {
			total += pruneChain(c, minE)
			if hv := c.head.Load(); hv != nil {
				if end := hv.end.Load(); end != 0 && end <= minE {
					t.rows.Delete(id)
					total++
				}
			}
			return true
		})
		for _, ix := range t.uniques {
			total += ix.pruneAll(minE)
		}
		for _, ix := range t.indexes {
			total += ix.pruneAll(minE)
		}
	}
	if total > 0 {
		p.mReclaims.Add(uint64(total))
	}
	return total
}

// FKError reports a foreign-key violation.
type FKError struct {
	Table, Column, RefTable, RefColumn string
	Value                              any
}

func (e *FKError) Error() string {
	return fmt.Sprintf("relstore: %s.%s=%v has no match in %s.%s",
		e.Table, e.Column, e.Value, e.RefTable, e.RefColumn)
}
