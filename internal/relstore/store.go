package relstore

import (
	"fmt"
	"sort"
	"sync"
)

// Store is a set of tables. Concurrency uses two lock levels: s.mu guards
// the table map itself (table creation, WAL pointer, configuration) and is
// held shared for the duration of every row operation, while each table
// carries its own RW mutex so writers to different tables proceed in
// parallel. Multi-table invariants (foreign keys) stay simple because a
// writer locks its target table exclusively plus every referenced table
// shared, always in table-name order, so concurrent writers can never
// deadlock and a referenced row can not disappear mid-check.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*table
	order  []string
	wal    *walWriter // nil for purely in-memory stores
	// checkFKs can be disabled for bulk replay of already-validated data.
	checkFKs bool
}

// NewStore returns an empty in-memory store with foreign-key checking on.
func NewStore() *Store {
	return &Store{tables: make(map[string]*table), checkFKs: true}
}

// SetForeignKeyChecks toggles FK enforcement (on by default).
func (s *Store) SetForeignKeyChecks(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checkFKs = on
}

// CreateTable registers a table. Creating a table that already exists with
// an identical schema is a no-op, so archive initialisation is idempotent.
func (s *Store) CreateTable(schema TableSchema) error {
	if err := schema.validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.tables[schema.Name]; ok {
		if fmt.Sprintf("%+v", *existing.schema) == fmt.Sprintf("%+v", schema) {
			return nil
		}
		return fmt.Errorf("relstore: table %s already exists with a different schema", schema.Name)
	}
	cp := schema
	s.tables[schema.Name] = newTable(&cp)
	s.order = append(s.order, schema.Name)
	if s.wal != nil {
		if err := s.wal.logCreate(&cp); err != nil {
			return err
		}
	}
	return nil
}

// TableNames lists tables in creation order.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...)
}

// Count returns the number of rows in a table.
func (s *Store) Count(tableName string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("relstore: no table %s", tableName)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows), nil
}

// lockForWrite acquires the target table's write lock plus a read lock on
// every table its foreign keys reference, in lexicographic table-name
// order. The global order makes concurrent writers on any table mix
// deadlock-free; a self-referencing FK (workflow.parent_wf_id) is covered
// by the write lock and skipped. The caller must hold s.mu at least
// shared. Release via the returned func (reverse order).
func (s *Store) lockForWrite(target *table) func() {
	type entry struct {
		t     *table
		write bool
	}
	locks := []entry{{t: target, write: true}}
	for _, fk := range target.schema.ForeignKeys {
		if fk.RefTable == target.schema.Name {
			continue
		}
		ref, ok := s.tables[fk.RefTable]
		if !ok {
			continue // surfaced as an FK error during the check itself
		}
		dup := false
		for _, l := range locks {
			if l.t == ref {
				dup = true
				break
			}
		}
		if !dup {
			locks = append(locks, entry{t: ref})
		}
	}
	sort.Slice(locks, func(i, j int) bool {
		return locks[i].t.schema.Name < locks[j].t.schema.Name
	})
	for _, l := range locks {
		if l.write {
			l.t.mu.Lock()
		} else {
			l.t.mu.RLock()
		}
	}
	return func() {
		for i := len(locks) - 1; i >= 0; i-- {
			if locks[i].write {
				locks[i].t.mu.Unlock()
			} else {
				locks[i].t.mu.RUnlock()
			}
		}
	}
}

// Insert adds one row and returns its assigned primary key.
func (s *Store) Insert(tableName string, row Row) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("relstore: no table %s", tableName)
	}
	unlock := s.lockForWrite(t)
	defer unlock()
	return s.insertLocked(t, row)
}

// InsertBatch adds many rows under one lock acquisition and one WAL write,
// the fast path the stampede loader batches into. It fails atomically: on
// any error no row from the batch is applied.
func (s *Store) InsertBatch(tableName string, rows []Row) ([]int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %s", tableName)
	}
	unlock := s.lockForWrite(t)
	defer unlock()
	normalized := make([]Row, len(rows))
	// Validate everything before mutating, so failure is atomic. Unique
	// checks must also consider earlier rows in the same batch.
	batchKeys := make([]map[string]bool, len(t.schema.Unique))
	for i := range batchKeys {
		batchKeys[i] = make(map[string]bool)
	}
	for i, r := range rows {
		n, err := t.normalize(r)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		if err := t.checkUnique(n, 0); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		for u, cols := range t.schema.Unique {
			key := compositeKey(n, cols)
			if batchKeys[u][key] {
				return nil, fmt.Errorf("row %d: %w", i, &UniqueError{Table: tableName, Columns: cols})
			}
			batchKeys[u][key] = true
		}
		if err := s.checkForeignKeysLocked(t, n); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		normalized[i] = n
	}
	ids := make([]int64, len(normalized))
	for i, n := range normalized {
		id := t.nextID
		t.nextID++
		n["id"] = id
		t.rows[id] = n
		t.indexRow(n)
		ids[i] = id
	}
	if s.wal != nil {
		if err := s.wal.logInsertBatch(tableName, normalized); err != nil {
			return ids, err
		}
	}
	return ids, nil
}

// insertLocked does the single-row insert; the caller holds s.mu shared
// and the table locks from lockForWrite.
func (s *Store) insertLocked(t *table, row Row) (int64, error) {
	n, err := t.normalize(row)
	if err != nil {
		return 0, err
	}
	if err := t.checkUnique(n, 0); err != nil {
		return 0, err
	}
	if err := s.checkForeignKeysLocked(t, n); err != nil {
		return 0, err
	}
	id := t.nextID
	t.nextID++
	n["id"] = id
	t.rows[id] = n
	t.indexRow(n)
	if s.wal != nil {
		if err := s.wal.logInsertBatch(t.schema.Name, []Row{n}); err != nil {
			return id, err
		}
	}
	return id, nil
}

// checkForeignKeysLocked verifies row's FK values; the caller holds the
// locks from lockForWrite, which include a shared lock on every
// referenced table.
func (s *Store) checkForeignKeysLocked(t *table, row Row) error {
	if !s.checkFKs {
		return nil
	}
	for _, fk := range t.schema.ForeignKeys {
		v := row[fk.Column]
		if v == nil {
			continue // null FK means "no reference", as in SQL
		}
		ref, ok := s.tables[fk.RefTable]
		if !ok {
			return fmt.Errorf("relstore: %s.%s references missing table %s", t.schema.Name, fk.Column, fk.RefTable)
		}
		if !s.refExistsLocked(ref, fk.RefColumn, v) {
			return &FKError{
				Table: t.schema.Name, Column: fk.Column,
				RefTable: fk.RefTable, RefColumn: fk.RefColumn, Value: v,
			}
		}
	}
	return nil
}

func (s *Store) refExistsLocked(ref *table, col string, v any) bool {
	if col == "id" {
		id, ok := v.(int64)
		if !ok {
			return false
		}
		_, exists := ref.rows[id]
		return exists
	}
	// Try a unique constraint or index covering exactly this column.
	probe := Row{col: v}
	for i, cols := range ref.schema.Unique {
		if len(cols) == 1 && cols[0] == col {
			_, ok := ref.uniques[i][compositeKey(probe, cols)]
			return ok
		}
	}
	if ix := ref.findIndex([]string{col}); ix >= 0 {
		return len(ref.indexes[ix][compositeKey(probe, []string{col})]) > 0
	}
	for _, row := range ref.rows {
		if row[col] == v {
			return true
		}
	}
	return false
}

// Get returns the row with the given primary key, or nil when absent. The
// returned row is a copy; mutating it does not affect the store.
func (s *Store) Get(tableName string, id int64) (Row, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %s", tableName)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.rows[id]
	if !ok {
		return nil, nil
	}
	return r.Clone(), nil
}

// Update rewrites the named columns of the row with primary key id.
func (s *Store) Update(tableName string, id int64, changes Row) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[tableName]
	if !ok {
		return fmt.Errorf("relstore: no table %s", tableName)
	}
	unlock := s.lockForWrite(t)
	defer unlock()
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("relstore: %s has no row %d", tableName, id)
	}
	merged := old.Clone()
	for k, v := range changes {
		if k == "id" {
			return fmt.Errorf("relstore: cannot update primary key")
		}
		ct, ok := t.colType[k]
		if !ok {
			return fmt.Errorf("relstore: table %s has no column %s", tableName, k)
		}
		cv, err := coerce(tableName, k, ct, v)
		if err != nil {
			return err
		}
		if cv == nil {
			nullable := false
			for _, c := range t.schema.Columns {
				if c.Name == k {
					nullable = c.Nullable
					break
				}
			}
			if !nullable {
				return fmt.Errorf("relstore: table %s: column %s may not be null", tableName, k)
			}
		}
		merged[k] = cv
	}
	if err := t.checkUnique(merged, id); err != nil {
		return err
	}
	if err := s.checkForeignKeysLocked(t, merged); err != nil {
		return err
	}
	t.unindexRow(old)
	t.rows[id] = merged
	t.indexRow(merged)
	if s.wal != nil {
		if err := s.wal.logUpdate(tableName, id, merged); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes a row; deleting an absent row is a no-op.
func (s *Store) Delete(tableName string, id int64) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[tableName]
	if !ok {
		return fmt.Errorf("relstore: no table %s", tableName)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[id]
	if !ok {
		return nil
	}
	t.unindexRow(old)
	delete(t.rows, id)
	if s.wal != nil {
		if err := s.wal.logDelete(tableName, id); err != nil {
			return err
		}
	}
	return nil
}

// FKError reports a foreign-key violation.
type FKError struct {
	Table, Column, RefTable, RefColumn string
	Value                              any
}

func (e *FKError) Error() string {
	return fmt.Sprintf("relstore: %s.%s=%v has no match in %s.%s",
		e.Table, e.Column, e.Value, e.RefTable, e.RefColumn)
}
