package trace

import (
	"sync"
	"testing"
)

func TestRingRoundsToPowerOfTwo(t *testing.T) {
	r := NewRing(100)
	if len(r.slots) != 128 {
		t.Fatalf("NewRing(100) allocated %d slots, want 128", len(r.slots))
	}
}

func TestRingStoresSpans(t *testing.T) {
	r := NewRing(16)
	r.Record(42, StageParse, "wf-a", 1000, 2500)
	r.RecordCommit(42, "wf-a", 3000, 4000, 9)
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	p := spans[0]
	if p.ID != 42 || p.Stage != StageParse || p.Label != "wf-a" || p.Start != 1000 || p.End != 2500 || p.Epoch != 0 {
		t.Fatalf("parse span = %+v", p)
	}
	c := spans[1]
	if c.Stage != StageCommit || c.Epoch != 9 {
		t.Fatalf("commit span = %+v", c)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 20; i++ {
		r.Record(uint64(i+1), StageApply, "wf", int64(i)*100, int64(i)*100+50)
	}
	spans := r.Spans()
	if len(spans) != 8 {
		t.Fatalf("got %d spans after wrap, want 8", len(spans))
	}
	for _, sp := range spans {
		if sp.ID < 13 { // ids 13..20 are the newest 8
			t.Fatalf("stale span %d survived the wrap", sp.ID)
		}
	}
}

func TestRingSkipsEmptyAndInFlightSlots(t *testing.T) {
	r := NewRing(8)
	r.Record(1, StageEmit, "wf", 10, 20)
	// Simulate a writer parked mid-store: odd sequence.
	r.slots[3].seq.Store(7)
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1 (empty and in-flight slots skipped)", len(spans))
	}
}

func TestRingConcurrentWriters(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(uint64(g*1000+i+1), Stage(i%int(numStages)), "wf", int64(i), int64(i+1))
				if i%50 == 0 {
					r.Spans() // concurrent reads must never see torn spans
				}
			}
		}(g)
	}
	wg.Wait()
	for _, sp := range r.Spans() {
		if sp.End-sp.Start != 1 {
			t.Fatalf("torn span: %+v", sp)
		}
	}
}
