// Package trace is the pipeline's end-to-end event-tracing layer: it
// follows individual BP events from engine emission (using the event's
// own ts) through bus routing, parse, validation, shard queueing,
// archive apply and batch commit — the paper's evaluation measures
// exactly this path ("the average latency from the time an event was
// generated until it was available in the database"), and this package
// makes the same measurement continuously available on a live system.
//
// Tracing is always on but sampled: a deterministic hash of the raw BP
// line selects roughly one event in SampleEvery. Determinism means every
// process that sees the same line makes the same decision, so a trace's
// spans line up across the broker, the loader and the archive without
// any context propagation on the wire. Sampled events carry their trace
// id on the pooled bp.Event (reset by ReleaseEvent); spans land in a
// fixed-size lock-free ring buffer (ring.go) and feed per-stage latency
// histograms. Unsampled events pay one hash and no allocations — the
// hot-path budget in hotpath_alloc_test.go holds with tracing at the
// default rate.
//
// Freshness watermarks are independent of span sampling: the archive
// advances a per-workflow high-water mark of applied event timestamps on
// every event, exposed as stampede_trace_freshness_seconds (now − max
// applied ts). Under scaled virtual clocks (pegasus-run/triana-run
// -scale) event timestamps run ahead of the wall clock, so freshness —
// like emit spans — can be negative; values are recorded truthfully and
// the caveat is documented in DESIGN.md.
package trace

import (
	"encoding/binary"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Stage identifies one hop of an event's journey. The values are wire
// format for ring slots; do not reorder.
type Stage uint8

const (
	// StageEmit spans the event's own ts to its handoff into the pipeline:
	// the bus publish for engine emitters, the parse start for file loads.
	StageEmit Stage = iota
	// StageRoute is broker dwell: bus enqueue (Message.TS) to the
	// consumer's dequeue.
	StageRoute
	// StageParse is BP line decode.
	StageParse
	// StageValidate is YANG schema validation.
	StageValidate
	// StageQueue is the wait between validation and the batch starting to
	// apply: shard channel dwell plus batch-buffer residence (bounded by
	// the loader's FlushEvery).
	StageQueue
	// StageApply is the archive fold of the event's batch.
	StageApply
	// StageCommit is the batch's durability flush and epoch publish — the
	// moment the event became visible to snapshot readers.
	StageCommit
	// StageDropped is a tombstone: the event's copy was discarded on a
	// full queue. Its label is the queue name, its span the queue dwell
	// before the drop.
	StageDropped

	numStages
)

var stageNames = [numStages]string{
	"emit", "route", "parse", "validate", "queue", "apply", "commit", "dropped",
}

// String returns the stage's label as exposed on metrics and JSON.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// DefaultSampleEvery is the default sampling rate: one event in 64.
const DefaultSampleEvery = 64

var sampleEvery atomic.Int64

func init() {
	sampleEvery.Store(DefaultSampleEvery)
}

// SetSampleEvery sets the sampling rate to one event in n. n == 1 traces
// everything; n == 0 disables tracing; negative n is treated as 0.
func SetSampleEvery(n int) {
	if n < 0 {
		n = 0
	}
	sampleEvery.Store(int64(n))
}

// SampleEvery returns the current sampling rate (0 = disabled).
func SampleEvery() int { return int(sampleEvery.Load()) }

// Enabled reports whether tracing is on at all. Instrumentation sites
// use it to skip clock reads for the unsampled fast path.
func Enabled() bool { return sampleEvery.Load() != 0 }

// Sample decides whether the raw BP line is traced and returns its trace
// id, or 0 when unsampled (or tracing is off). The id is a deterministic
// hash of the line bytes, so every process observing the same line
// derives the same id and the same decision — spans recorded broker-side
// and loader-side assemble into one trace with no context on the wire.
func Sample(line []byte) uint64 {
	n := sampleEvery.Load()
	if n == 0 {
		return 0
	}
	id := hashLine(line)
	if id%uint64(n) != 0 {
		return 0
	}
	return id
}

// hashLine is FNV-1a folded eight bytes at a time: same distribution
// class as the byte-wise variant at ~1/6th the cost for a typical
// 200-byte BP line, which keeps the per-event tracing tax inside the
// loader's <5% throughput budget. 0 is reserved for "unsampled".
func hashLine(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for len(b) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(b)) * prime64
		b = b[8:]
	}
	for _, c := range b {
		h = (h ^ uint64(c)) * prime64
	}
	if h == 0 {
		h = 1
	}
	return h
}

// Per-stage latency histograms, children pre-resolved so Record is two
// atomic bumps and a ring write. Resolving them at init also guarantees
// the family appears in the exposition (with zero counts) before the
// first sampled event.
var (
	mStageSeconds = telemetry.NewHistogramVec("stampede_trace_stage_seconds",
		"Per-stage latency of sampled events, from engine emission to snapshot visibility.",
		telemetry.DurationBuckets, "stage")
	stageHists [numStages]*telemetry.Histogram

	mSpans = telemetry.NewCounter("stampede_trace_spans_total",
		"Spans recorded for sampled events across all stages.")
)

func init() {
	for s := Stage(0); s < numStages; s++ {
		stageHists[s] = mStageSeconds.With(s.String())
	}
}

// Record stores one span of a sampled event: trace id, stage, label (the
// workflow uuid, or the queue name for StageDropped) and the span's
// [start, end] in Unix nanoseconds. It is lock-free and allocation-free
// once the label has been seen.
func Record(id uint64, st Stage, label string, start, end int64) {
	recordSpan(id, st, label, start, end, 0)
}

// RecordCommit is Record for StageCommit with the relstore epoch at
// which the event's batch became visible to snapshot readers.
func RecordCommit(id uint64, label string, start, end int64, epoch uint64) {
	recordSpan(id, StageCommit, label, start, end, epoch)
}

func recordSpan(id uint64, st Stage, label string, start, end int64, epoch uint64) {
	if id == 0 {
		return
	}
	stageHists[st].Observe(float64(end-start) / 1e9)
	mSpans.Inc()
	defaultRing.put(id, st, nameIdx(label), start, end, epoch)
}

// Emit records the emission span for one formatted BP line if it is
// sampled: the event's own ts to now (the handoff into the bus). Engine
// appenders call it at publish time. A ts in the future of the wall
// clock (scaled virtual engine clocks) is clamped to a zero-length span.
func Emit(line []byte, ts time.Time, wf string) {
	id := Sample(line)
	if id == 0 {
		return
	}
	now := time.Now().UnixNano()
	start := ts.UnixNano()
	if start > now {
		start = now
	}
	Record(id, StageEmit, wf, start, now)
}

// Drop records a tombstone for a message discarded on a full queue: the
// span is broker dwell from enqueue to the drop, labeled with the queue
// name. The mq broker calls it so a trace that dies on an overflowing
// queue says so instead of going silent.
func Drop(queue string, body []byte, enqueued time.Time) {
	id := Sample(body)
	if id == 0 {
		return
	}
	Record(id, StageDropped, queue, enqueued.UnixNano(), time.Now().UnixNano())
}

// nowNS is a convenience for instrumentation sites.
func nowNS() int64 { return time.Now().UnixNano() }
