package trace

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureRing builds a deterministic ring: two full pipeline traces and
// one drop tombstone, all at fixed timestamps. The dashboard tests build
// the identical fixture so /api/traces and the analyzer report are
// checked against the same trace IDs.
func fixtureRing() *Ring {
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC).UnixNano()
	ms := int64(time.Millisecond)
	r := NewRing(64)

	// Trace 0x2a: bus-fed event, emission through commit.
	r.Record(0x2a, StageEmit, "wf-aaaa", base, base+2*ms)
	r.Record(0x2a, StageRoute, "wf-aaaa", base+2*ms, base+5*ms)
	r.Record(0x2a, StageParse, "wf-aaaa", base+5*ms, base+5*ms+ms/2)
	r.Record(0x2a, StageValidate, "wf-aaaa", base+5*ms+ms/2, base+6*ms)
	r.Record(0x2a, StageQueue, "wf-aaaa", base+6*ms, base+30*ms)
	r.Record(0x2a, StageApply, "wf-aaaa", base+30*ms, base+32*ms)
	r.RecordCommit(0x2a, "wf-aaaa", base+32*ms, base+33*ms, 7)

	// Trace 0x77: file load (no route hop), slower apply window.
	fb := base + 100*ms
	r.Record(0x77, StageEmit, "wf-bbbb", fb, fb+ms)
	r.Record(0x77, StageParse, "wf-bbbb", fb+ms, fb+2*ms)
	r.Record(0x77, StageValidate, "wf-bbbb", fb+2*ms, fb+3*ms)
	r.Record(0x77, StageQueue, "wf-bbbb", fb+3*ms, fb+50*ms)
	r.Record(0x77, StageApply, "wf-bbbb", fb+50*ms, fb+58*ms)
	r.RecordCommit(0x77, "wf-bbbb", fb+58*ms, fb+60*ms, 8)

	// Trace 0x99: copy dropped on a saturated queue.
	db := base + 200*ms
	r.Record(0x99, StageDropped, "slow.consumer", db, db+15*ms)
	return r
}

func TestCollectAssemblesTraces(t *testing.T) {
	traces := Collect(fixtureRing())
	if len(traces) != 3 {
		t.Fatalf("got %d traces, want 3", len(traces))
	}

	a := traces[0]
	if a.ID != "000000000000002a" || a.Workflow != "wf-aaaa" || a.Dropped {
		t.Fatalf("trace A = %+v", a)
	}
	if a.Epoch != 7 {
		t.Fatalf("trace A epoch = %d, want 7", a.Epoch)
	}
	if len(a.Spans) != 7 {
		t.Fatalf("trace A has %d spans, want 7", len(a.Spans))
	}
	if a.Spans[0].Stage != "emit" || a.Spans[6].Stage != "commit" {
		t.Fatalf("trace A stage order: %v ... %v", a.Spans[0].Stage, a.Spans[6].Stage)
	}
	if got, want := a.Total, 0.033; got != want {
		t.Fatalf("trace A total = %v, want %v", got, want)
	}
	if a.Start != "2026-08-05T12:00:00.000000000Z" {
		t.Fatalf("trace A start = %q", a.Start)
	}

	b := traces[1]
	if b.ID != "0000000000000077" || len(b.Spans) != 6 || b.Epoch != 8 {
		t.Fatalf("trace B = %+v", b)
	}

	d := traces[2]
	if !d.Dropped || d.Queue != "slow.consumer" || d.Workflow != "" {
		t.Fatalf("tombstone trace = %+v", d)
	}
}

func TestReportConsistentWithTraces(t *testing.T) {
	traces := Collect(fixtureRing())
	rep := BuildReport(traces, 64)

	// Every stage's span count in the report must equal the number of
	// spans of that stage across the assembled traces — the same trace
	// IDs produce the same per-stage breakdown in both surfaces.
	counts := map[string]int{}
	for _, tr := range traces {
		for _, h := range tr.Spans {
			counts[h.Stage]++
		}
	}
	seen := map[string]bool{}
	for _, st := range rep.Stages {
		if st.Count != counts[st.Stage] {
			t.Errorf("stage %s: report count %d, traces have %d", st.Stage, st.Count, counts[st.Stage])
		}
		seen[st.Stage] = true
	}
	for stage, n := range counts {
		if n > 0 && !seen[stage] {
			t.Errorf("stage %s in traces but missing from report", stage)
		}
	}
	if rep.Traces != 3 || rep.Dropped != 1 {
		t.Fatalf("Traces=%d Dropped=%d, want 3 and 1", rep.Traces, rep.Dropped)
	}
	// End-to-end excludes the tombstone-only trace.
	if rep.Total.Count != 2 {
		t.Fatalf("end-to-end count = %d, want 2", rep.Total.Count)
	}
	if rep.Total.Max != 0.060 {
		t.Fatalf("end-to-end max = %v, want 0.06", rep.Total.Max)
	}
}

func TestReportGolden(t *testing.T) {
	rep := BuildReport(Collect(fixtureRing()), 64)
	got := rep.Render()
	golden := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("report drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestDumpRoundTrips(t *testing.T) {
	in := Dump{SampleEvery: 64, Traces: Collect(fixtureRing())}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Dump
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.SampleEvery != 64 || len(out.Traces) != len(in.Traces) {
		t.Fatalf("round trip lost data: %+v", out)
	}
	// The analyzer consumes exactly this decoded form.
	rep := BuildReport(out.Traces, out.SampleEvery)
	if rep.Traces != 3 {
		t.Fatalf("report over decoded dump: %d traces", rep.Traces)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	vs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(vs, 0.50); p != 5 {
		t.Errorf("p50 = %v, want 5", p)
	}
	if p := percentile(vs, 0.90); p != 9 {
		t.Errorf("p90 = %v, want 9", p)
	}
	if p := percentile(vs, 0.99); p != 10 {
		t.Errorf("p99 = %v, want 10", p)
	}
	if p := percentile([]float64{3}, 0.5); p != 3 {
		t.Errorf("single-element p50 = %v", p)
	}
}
