package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Ring slots are fixed-width words (ring.go), so span labels — workflow
// uuids, queue names — are stored as indices into a process-wide
// copy-on-write name table. Reads are one atomic pointer load and a map
// lookup with no allocations; inserts (first sighting of a label) clone
// the map under a mutex, the same discipline as the bp intern table.

// maxNames bounds the table so a label-cardinality explosion cannot grow
// memory without bound; labels past the cap collapse to index 0 ("").
const maxNames = 65536

type nameTable struct {
	mu     sync.Mutex
	byName atomic.Pointer[map[string]uint32]
	names  atomic.Pointer[[]string] // index -> name; append-only snapshots
}

var names nameTable

func init() {
	m := map[string]uint32{"": 0}
	ns := []string{""}
	names.byName.Store(&m)
	names.names.Store(&ns)
}

// nameIdx interns a label, returning its slot index.
func nameIdx(name string) uint32 {
	if name == "" {
		return 0
	}
	if idx, ok := (*names.byName.Load())[name]; ok {
		return idx
	}
	names.mu.Lock()
	defer names.mu.Unlock()
	old := *names.byName.Load()
	if idx, ok := old[name]; ok {
		return idx
	}
	if len(old) >= maxNames {
		return 0
	}
	idx := uint32(len(old))
	next := make(map[string]uint32, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = idx
	ns := append(append([]string(nil), *names.names.Load()...), name)
	names.byName.Store(&next)
	names.names.Store(&ns)
	return idx
}

// nameAt resolves a slot index back to its label.
func nameAt(idx uint32) string {
	ns := *names.names.Load()
	if int(idx) < len(ns) {
		return ns[idx]
	}
	return ""
}

// Watermark is one workflow's freshness high-water mark: the maximum
// event timestamp the archive has applied (and published) for it.
// Advance is a lock-free max-CAS, cheap enough for the per-event apply
// path; the freshness gauge (now − max) is computed at scrape time.
type Watermark struct {
	max atomic.Int64 // Unix nanoseconds; 0 = nothing applied yet
}

// Advance raises the watermark to ts if it is newer. Out-of-order
// applies (restart replays, multi-producer buses) leave it untouched.
func (w *Watermark) Advance(ts int64) {
	for {
		old := w.max.Load()
		if ts <= old || w.max.CompareAndSwap(old, ts) {
			return
		}
	}
}

// Max returns the newest applied event timestamp, or the zero time when
// nothing has been applied.
func (w *Watermark) Max() time.Time {
	ns := w.max.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

var mFreshness = telemetry.NewGaugeVec("stampede_trace_freshness_seconds",
	"Per-workflow data freshness: now minus the newest applied event timestamp. "+
		"Negative under scaled virtual engine clocks.", "workflow")

// maxWatermarks bounds per-workflow gauge cardinality; workflows past
// the cap share one overflow watermark so Advance stays cheap and
// correct in aggregate even when the gauge set is saturated.
const maxWatermarks = 4096

var watermarks struct {
	mu sync.Mutex
	by atomic.Pointer[map[string]*Watermark]
	of Watermark // shared overflow entry past maxWatermarks
}

func init() {
	m := map[string]*Watermark{}
	watermarks.by.Store(&m)
}

// WatermarkFor returns the workflow's watermark, creating (and
// registering its freshness gauge) on first sight. The archive caches
// the pointer per stripe, so steady state never touches the map.
func WatermarkFor(wf string) *Watermark {
	if w, ok := (*watermarks.by.Load())[wf]; ok {
		return w
	}
	watermarks.mu.Lock()
	defer watermarks.mu.Unlock()
	old := *watermarks.by.Load()
	if w, ok := old[wf]; ok {
		return w
	}
	if len(old) >= maxWatermarks {
		return &watermarks.of
	}
	w := &Watermark{}
	next := make(map[string]*Watermark, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[wf] = w
	watermarks.by.Store(&next)
	mFreshness.SetFunc(func() float64 {
		ns := w.max.Load()
		if ns == 0 {
			return 0
		}
		return float64(time.Now().UnixNano()-ns) / 1e9
	}, wf)
	return w
}

// WatermarkOf reports the workflow's watermark without creating one.
func WatermarkOf(wf string) (time.Time, bool) {
	w, ok := (*watermarks.by.Load())[wf]
	if !ok {
		return time.Time{}, false
	}
	return w.Max(), true
}

// WatermarkMax returns the newest applied event timestamp across the
// given workflows, ignoring ones with no watermark yet. The watermark
// table is process-global, so freshness monitors scope their reads to
// the workflows of one run rather than the whole process.
func WatermarkMax(wfs []string) (time.Time, bool) {
	var max time.Time
	any := false
	by := *watermarks.by.Load()
	for _, wf := range wfs {
		w, ok := by[wf]
		if !ok {
			continue
		}
		if ts := w.Max(); !ts.IsZero() && ts.After(max) {
			max = ts
			any = true
		}
	}
	return max, any
}
