package trace

import (
	"sort"
	"sync/atomic"
)

// Ring is a fixed-size lock-free span buffer. Writers claim slots from a
// global ticket counter and publish through a per-slot sequence word
// (odd while a write is in flight, even when stable); every slot field
// is a word-sized atomic, so concurrent Record calls from the loader's
// shards, the broker and the engines need no lock and the race detector
// sees only atomic traffic. Readers snapshot slots optimistically and
// skip any slot whose sequence changed mid-read. A writer that laps the
// ring inside another writer's store window could in principle interleave
// — at 8k slots that requires one Record to stall for an entire ring
// generation, and the worst case is one garbled diagnostic span.
type Ring struct {
	slots []slot
	mask  uint64
	next  atomic.Uint64
}

type slot struct {
	seq   atomic.Uint64 // 0 = empty; odd = write in flight
	id    atomic.Uint64
	meta  atomic.Uint64 // stage<<32 | label index
	start atomic.Int64
	end   atomic.Int64
	extra atomic.Uint64 // relstore epoch on commit spans
}

// DefaultRingSize holds the most recent ~1k traces at the default stage
// count; ~512 KiB resident.
const DefaultRingSize = 8192

var defaultRing = NewRing(DefaultRingSize)

// Default returns the process-wide ring that package-level Record writes
// to and the dashboard serves from.
func Default() *Ring { return defaultRing }

// NewRing returns a ring holding the most recent n spans, rounded up to
// a power of two.
func NewRing(n int) *Ring {
	size := 1
	for size < n {
		size <<= 1
	}
	return &Ring{slots: make([]slot, size), mask: uint64(size - 1)}
}

func (r *Ring) put(id uint64, st Stage, label uint32, start, end int64, epoch uint64) {
	s := &r.slots[(r.next.Add(1)-1)&r.mask]
	s.seq.Add(1) // odd: write in flight
	s.id.Store(id)
	s.meta.Store(uint64(st)<<32 | uint64(label))
	s.start.Store(start)
	s.end.Store(end)
	s.extra.Store(epoch)
	s.seq.Add(1) // even: stable
}

// Record stores one span into this ring (the package-level Record uses
// the default ring and also feeds the stage histograms).
func (r *Ring) Record(id uint64, st Stage, label string, start, end int64) {
	r.put(id, st, nameIdx(label), start, end, 0)
}

// RecordCommit is Record for StageCommit carrying the visibility epoch.
func (r *Ring) RecordCommit(id uint64, label string, start, end int64, epoch uint64) {
	r.put(id, StageCommit, nameIdx(label), start, end, epoch)
}

// Span is one stable ring entry.
type Span struct {
	ID    uint64
	Stage Stage
	Label string // workflow uuid, or queue name for StageDropped
	Start int64  // Unix nanoseconds
	End   int64
	Epoch uint64 // relstore visibility epoch; commit spans only
}

// Spans returns every stable span currently in the ring, oldest-first in
// slot order. Slots mid-write or overwritten during the read are
// skipped.
func (r *Ring) Spans() []Span {
	out := make([]Span, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		seq := s.seq.Load()
		if seq == 0 || seq%2 == 1 {
			continue
		}
		sp := Span{
			ID:    s.id.Load(),
			Start: s.start.Load(),
			End:   s.end.Load(),
			Epoch: s.extra.Load(),
		}
		meta := s.meta.Load()
		if s.seq.Load() != seq {
			continue // overwritten mid-read
		}
		sp.Stage = Stage(meta >> 32)
		sp.Label = nameAt(uint32(meta))
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}
