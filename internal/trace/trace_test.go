package trace

import (
	"bytes"
	"testing"
	"time"
)

func TestHashDeterministic(t *testing.T) {
	line := []byte("ts=2012-03-20T17:44:31.331549Z event=stampede.job.mainjob.start xwf.id=aaaa job.id=create_dir")
	a := hashLine(line)
	b := hashLine(append([]byte(nil), line...)) // fresh copy, same bytes
	if a != b {
		t.Fatalf("hashLine not deterministic: %x vs %x", a, b)
	}
	if a == 0 {
		t.Fatal("hashLine returned reserved id 0")
	}
	if c := hashLine([]byte("different line")); c == a {
		t.Fatalf("distinct lines collided: %x", c)
	}
}

func TestHashZeroRemapped(t *testing.T) {
	if hashLine(nil) == 0 {
		t.Fatal("empty input hashed to reserved 0")
	}
}

func TestSampleRate(t *testing.T) {
	defer SetSampleEvery(DefaultSampleEvery)

	SetSampleEvery(0)
	if Enabled() {
		t.Fatal("Enabled() true with rate 0")
	}
	if id := Sample([]byte("anything")); id != 0 {
		t.Fatalf("Sample returned %x with tracing off", id)
	}

	SetSampleEvery(1)
	if !Enabled() {
		t.Fatal("Enabled() false with rate 1")
	}
	line := []byte("ts=2012-03-20T17:44:31Z event=x")
	id := Sample(line)
	if id == 0 {
		t.Fatal("rate 1 must sample every line")
	}
	if id != hashLine(line) {
		t.Fatal("sampled id is not the line hash")
	}
	// Same line, same decision and id: the cross-process assembly invariant.
	if again := Sample(line); again != id {
		t.Fatalf("same line sampled differently: %x vs %x", again, id)
	}

	SetSampleEvery(-5)
	if Enabled() {
		t.Fatal("negative rate should disable tracing")
	}
}

func TestSampleSelectivity(t *testing.T) {
	defer SetSampleEvery(DefaultSampleEvery)
	SetSampleEvery(64)
	sampled := 0
	var buf bytes.Buffer
	for i := 0; i < 4096; i++ {
		buf.Reset()
		buf.WriteString("ts=2012-03-20T17:44:31Z event=stampede.job.mainjob.start job.id=j")
		for v := i; ; v /= 10 {
			buf.WriteByte(byte('0' + v%10))
			if v < 10 {
				break
			}
		}
		if Sample(buf.Bytes()) != 0 {
			sampled++
		}
	}
	// Expected 64 of 4096; allow generous slack for hash variance.
	if sampled < 16 || sampled > 256 {
		t.Fatalf("sampled %d of 4096 lines at rate 1/64; want roughly 64", sampled)
	}
}

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StageEmit: "emit", StageRoute: "route", StageParse: "parse",
		StageValidate: "validate", StageQueue: "queue", StageApply: "apply",
		StageCommit: "commit", StageDropped: "dropped",
	}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("Stage(%d).String() = %q, want %q", st, st.String(), name)
		}
	}
	if Stage(200).String() != "unknown" {
		t.Errorf("out-of-range stage: %q", Stage(200).String())
	}
}

func TestEmitClampsFutureTimestamps(t *testing.T) {
	defer SetSampleEvery(DefaultSampleEvery)
	SetSampleEvery(1)
	line := []byte("ts=2999-01-01T00:00:00Z event=future")
	id := hashLine(line)
	Emit(line, time.Now().Add(time.Hour), "wf-future")
	for _, sp := range Default().Spans() {
		if sp.ID == id && sp.Stage == StageEmit {
			if sp.End-sp.Start != 0 {
				t.Fatalf("future ts not clamped: span %d ns", sp.End-sp.Start)
			}
			return
		}
	}
	t.Fatal("emit span not recorded")
}

func TestWatermarkAdvance(t *testing.T) {
	var w Watermark
	if !w.Max().IsZero() {
		t.Fatal("fresh watermark not zero")
	}
	t1 := time.Date(2012, 3, 20, 17, 44, 31, 0, time.UTC)
	w.Advance(t1.UnixNano())
	if !w.Max().Equal(t1) {
		t.Fatalf("Max() = %v, want %v", w.Max(), t1)
	}
	// Out-of-order applies must not regress the high-water mark.
	w.Advance(t1.Add(-time.Minute).UnixNano())
	if !w.Max().Equal(t1) {
		t.Fatalf("watermark regressed to %v", w.Max())
	}
	t2 := t1.Add(time.Second)
	w.Advance(t2.UnixNano())
	if !w.Max().Equal(t2) {
		t.Fatalf("Max() = %v, want %v", w.Max(), t2)
	}
}

func TestWatermarkForStable(t *testing.T) {
	a := WatermarkFor("wf-stable-test")
	b := WatermarkFor("wf-stable-test")
	if a != b {
		t.Fatal("WatermarkFor returned different pointers for one workflow")
	}
	a.Advance(time.Now().UnixNano())
	if ts, ok := WatermarkOf("wf-stable-test"); !ok || ts.IsZero() {
		t.Fatalf("WatermarkOf = %v, %v", ts, ok)
	}
	if _, ok := WatermarkOf("wf-never-seen"); ok {
		t.Fatal("WatermarkOf invented a workflow")
	}
}

func TestNameTableRoundTrip(t *testing.T) {
	idx := nameIdx("some-workflow-uuid")
	if idx == 0 {
		t.Fatal("non-empty label interned at reserved index 0")
	}
	if nameIdx("some-workflow-uuid") != idx {
		t.Fatal("re-interning changed the index")
	}
	if got := nameAt(idx); got != "some-workflow-uuid" {
		t.Fatalf("nameAt(%d) = %q", idx, got)
	}
	if nameAt(1<<30) != "" {
		t.Fatal("out-of-range index did not collapse to empty")
	}
}
