package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Trace is one sampled event's assembled journey, the JSON shape served
// by the dashboard's GET /api/traces and consumed by stampede-analyzer
// -traces. Offsets are relative to the trace's start so a waterfall can
// be drawn without re-deriving the baseline.
type Trace struct {
	ID       string  `json:"id"` // hash id, zero-padded hex
	Workflow string  `json:"workflow,omitempty"`
	Queue    string  `json:"queue,omitempty"` // set when a copy died on this queue
	Start    string  `json:"start"`           // RFC 3339 with nanoseconds, UTC
	Total    float64 `json:"total_seconds"`   // first span start to last span end
	Dropped  bool    `json:"dropped,omitempty"`
	Epoch    uint64  `json:"epoch,omitempty"` // relstore epoch of visibility
	Spans    []Hop   `json:"spans"`
}

// Hop is one stage of a trace.
type Hop struct {
	Stage   string  `json:"stage"`
	Offset  float64 `json:"offset_seconds"` // from trace start
	Seconds float64 `json:"seconds"`
}

// Dump is the /api/traces response envelope.
type Dump struct {
	SampleEvery int     `json:"sample_every"`
	Traces      []Trace `json:"traces"`
}

// Collect assembles the ring's stable spans into traces, oldest-first
// (ties broken by id so the order is deterministic for fixed inputs).
func Collect(r *Ring) []Trace {
	spans := r.Spans()
	byID := make(map[uint64][]Span)
	order := make([]uint64, 0, len(spans))
	for _, sp := range spans {
		if _, ok := byID[sp.ID]; !ok {
			order = append(order, sp.ID)
		}
		byID[sp.ID] = append(byID[sp.ID], sp)
	}
	out := make([]Trace, 0, len(order))
	for _, id := range order {
		out = append(out, assemble(id, byID[id]))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func assemble(id uint64, spans []Span) Trace {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Stage < spans[j].Stage
	})
	t0, t1 := spans[0].Start, spans[0].End
	tr := Trace{ID: fmt.Sprintf("%016x", id)}
	for _, sp := range spans {
		if sp.End > t1 {
			t1 = sp.End
		}
		switch sp.Stage {
		case StageDropped:
			tr.Dropped = true
			tr.Queue = sp.Label
		default:
			if tr.Workflow == "" {
				tr.Workflow = sp.Label
			}
		}
		if sp.Epoch != 0 {
			tr.Epoch = sp.Epoch
		}
		tr.Spans = append(tr.Spans, Hop{
			Stage:   sp.Stage.String(),
			Offset:  float64(sp.Start-t0) / 1e9,
			Seconds: float64(sp.End-sp.Start) / 1e9,
		})
	}
	tr.Start = time.Unix(0, t0).UTC().Format("2006-01-02T15:04:05.000000000Z07:00")
	tr.Total = float64(t1-t0) / 1e9
	return tr
}

// StageStats is the latency distribution of one stage across a set of
// traces.
type StageStats struct {
	Stage string  `json:"stage"`
	Count int     `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P90   float64 `json:"p90_seconds"`
	P99   float64 `json:"p99_seconds"`
	Max   float64 `json:"max_seconds"`
}

// Report is the end-to-end latency percentile breakdown the analyzer
// renders — the shape of the paper's latency table, computed from
// sampled traces instead of an offline run.
type Report struct {
	SampleEvery int          `json:"sample_every"`
	Traces      int          `json:"traces"`
	Dropped     int          `json:"dropped"`
	Stages      []StageStats `json:"stages"`
	Total       StageStats   `json:"total"` // first span start to last span end
}

// BuildReport aggregates per-stage and end-to-end latency percentiles
// over assembled traces. Tombstone-only traces count as Dropped and are
// excluded from the end-to-end distribution.
func BuildReport(traces []Trace, sampleEvery int) *Report {
	rep := &Report{SampleEvery: sampleEvery, Traces: len(traces)}
	byStage := make(map[string][]float64)
	var totals []float64
	for _, tr := range traces {
		live := false
		for _, h := range tr.Spans {
			byStage[h.Stage] = append(byStage[h.Stage], h.Seconds)
			if h.Stage != StageDropped.String() {
				live = true
			}
		}
		if live {
			totals = append(totals, tr.Total)
		}
		if tr.Dropped && !live {
			rep.Dropped++
		}
	}
	for s := Stage(0); s < numStages; s++ {
		vs := byStage[s.String()]
		if len(vs) == 0 {
			continue
		}
		rep.Stages = append(rep.Stages, stageStats(s.String(), vs))
	}
	rep.Total = stageStats("end-to-end", totals)
	return rep
}

func stageStats(name string, vs []float64) StageStats {
	st := StageStats{Stage: name, Count: len(vs)}
	if len(vs) == 0 {
		return st
	}
	sort.Float64s(vs)
	st.P50 = percentile(vs, 0.50)
	st.P90 = percentile(vs, 0.90)
	st.P99 = percentile(vs, 0.99)
	st.Max = vs[len(vs)-1]
	return st
}

// percentile is nearest-rank on an ascending slice.
func percentile(sorted []float64, q float64) float64 {
	rank := int(q*float64(len(sorted))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Render formats the report as the analyzer's console table.
func (r *Report) Render() string {
	var b strings.Builder
	rate := "off"
	if r.SampleEvery > 0 {
		rate = "1/" + strconv.Itoa(r.SampleEvery)
	}
	fmt.Fprintf(&b, "Event-to-visibility latency: %d sampled traces (%d dropped), sample rate %s\n\n",
		r.Traces, r.Dropped, rate)
	fmt.Fprintf(&b, "%-12s %6s %12s %12s %12s %12s\n", "stage", "spans", "p50(s)", "p90(s)", "p99(s)", "max(s)")
	for _, st := range r.Stages {
		fmt.Fprintf(&b, "%-12s %6d %12.6f %12.6f %12.6f %12.6f\n",
			st.Stage, st.Count, st.P50, st.P90, st.P99, st.Max)
	}
	st := r.Total
	fmt.Fprintf(&b, "%-12s %6d %12.6f %12.6f %12.6f %12.6f\n",
		st.Stage, st.Count, st.P50, st.P90, st.P99, st.Max)
	return b.String()
}
