package triana

import (
	"sync"

	"repro/internal/bp"
	"repro/internal/mq"
	"repro/internal/schema"
	"repro/internal/trace"
)

// Appender receives the Stampede events the StampedeLog produces and
// delivers them somewhere: a BP log file for later loading, or the
// message bus for real-time processing — the two paths of the paper's
// Figure 5 ("recorded to either a file for later evaluation, or posted
// directly to an AMQP queue").
type Appender interface {
	Append(ev *bp.Event) error
}

// WriterAppender writes events as BP lines through a bp.Writer.
type WriterAppender struct {
	W *bp.Writer
}

// Append implements Appender.
func (a *WriterAppender) Append(ev *bp.Event) error { return a.W.Write(ev) }

// BusAppender publishes events to an in-process broker, routing on the
// event type — the RabbitMQ appender of the paper, minus the network hop.
type BusAppender struct {
	Broker *mq.Broker
}

// Append implements Appender.
func (a *BusAppender) Append(ev *bp.Event) error {
	body := []byte(ev.Format())
	// The emission span (the event's own ts up to this bus handoff) is
	// recorded engine-side: the loader's route span picks up from the
	// broker enqueue time, so the two compose without wire context.
	trace.Emit(body, ev.TS, ev.Get(schema.AttrXwfID))
	a.Broker.Publish(ev.Type, body)
	return nil
}

// ClientAppender publishes events over a TCP connection to a broker
// server: the full remote-AMQP deployment. It uses the fire-and-forget
// path so logging never blocks the engine on a bus round trip.
type ClientAppender struct {
	Client *mq.Client
}

// Append implements Appender.
func (a *ClientAppender) Append(ev *bp.Event) error {
	body := []byte(ev.Format())
	trace.Emit(body, ev.TS, ev.Get(schema.AttrXwfID))
	return a.Client.PublishAsync(ev.Type, body)
}

// MultiAppender fans one event out to several appenders (the DART run
// kept the plain-text log AND fed the queue). The first error wins but
// every appender still sees the event.
type MultiAppender []Appender

// Append implements Appender.
func (m MultiAppender) Append(ev *bp.Event) error {
	var first error
	for _, a := range m {
		if err := a.Append(ev); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CollectAppender buffers events in memory; tests and the analyzer's
// in-process pipelines use it.
type CollectAppender struct {
	mu     sync.Mutex
	events []*bp.Event
}

// Append implements Appender.
func (c *CollectAppender) Append(ev *bp.Event) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev.Clone())
	return nil
}

// Events returns a snapshot of everything appended so far.
func (c *CollectAppender) Events() []*bp.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*bp.Event(nil), c.events...)
}
