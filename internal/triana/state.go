// Package triana implements a Triana-style dataflow workflow engine: task
// graphs of Java-"Unit"-like components connected by cables, a scheduler
// that drives the task-graph lifecycle with runnable instances, the
// execution-event vocabulary of the paper's §V-B, and both execution
// modes — single step (each component runs once, like a DAG) and
// continuous (components stream until stopped or their input dries up).
//
// The StampedeLog type in this package is the integration the paper
// contributes: it listens for Triana execution events and converts them
// to Stampede events (1:1 task-to-job mapping, no planning stage), which
// an appender then writes to a BP log file or the message bus.
package triana

import "time"

// State is a Triana task or task-graph state. The names are exactly the
// set the paper lists as natively recognised by the workflow and task
// listener interfaces.
type State int

const (
	NotInitialized State = iota
	NotExecutable
	Scheduled
	Woken // WOKEN: submit recorded, waiting for input data
	Running
	Paused
	Complete
	Resetting
	Reset
	Error
	Suspended
	Unknown
	Lock
)

var stateNames = [...]string{
	"NOT_INITIALIZED", "NOT_EXECUTABLE", "SCHEDULED", "WOKEN", "RUNNING",
	"PAUSED", "COMPLETE", "RESETTING", "RESET", "ERROR", "SUSPENDED",
	"UNKNOWN", "LOCK",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "UNKNOWN"
}

// Terminal reports whether the state ends a task's lifecycle.
func (s State) Terminal() bool {
	return s == Complete || s == Error || s == Suspended || s == NotExecutable
}

// ExecutionEvent is one state transition, carrying the previous state for
// the context-dependent Stampede mappings (e.g. RUNNING after PAUSED is a
// held.end, RUNNING after SCHEDULED is a main.start).
type ExecutionEvent struct {
	Task     *Task // nil for task-graph-level events
	Graph    *TaskGraph
	Old, New State
	Time     time.Time
	// Invocation is the 1-based invocation index for per-invocation
	// events in continuous mode; 0 otherwise.
	Invocation int
	// Terminal marks the final transition of a task's run: in continuous
	// mode a task completes many invocations before its terminal
	// COMPLETE, and listeners need to tell them apart.
	Terminal bool
	// Err carries the unit error on transitions into Error.
	Err error
}

// Listener receives execution events. Implementations must be fast or
// hand off asynchronously: the scheduler calls them inline.
type Listener interface {
	OnEvent(ExecutionEvent)
}

// ListenerFunc adapts a function to the Listener interface.
type ListenerFunc func(ExecutionEvent)

// OnEvent implements Listener.
func (f ListenerFunc) OnEvent(ev ExecutionEvent) { f(ev) }
