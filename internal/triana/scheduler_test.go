package triana

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// passthrough builds a unit that records its invocations and forwards
// input.
func passthrough(name string, log *[]string, mu *sync.Mutex) Unit {
	return &FuncUnit{UnitName: name, Fn: func(ctx *ProcessContext) ([]any, error) {
		mu.Lock()
		*log = append(*log, name)
		mu.Unlock()
		if len(ctx.Inputs) == 0 {
			return []any{name}, nil
		}
		out := make([]any, len(ctx.Inputs))
		copy(out, ctx.Inputs)
		if len(out) > 1 {
			return []any{out}, nil
		}
		return out, nil
	}}
}

func TestSingleStepLinearPipeline(t *testing.T) {
	g := NewTaskGraph("linear")
	var mu sync.Mutex
	var order []string
	a := g.MustAddTask("a", passthrough("a", &order, &mu))
	b := g.MustAddTask("b", passthrough("b", &order, &mu))
	c := g.MustAddTask("c", passthrough("c", &order, &mu))
	if _, err := g.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(b, c); err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(g, Options{Mode: SingleStep})
	report, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 3 || report.Errored != 0 || report.Invocations != 3 {
		t.Fatalf("report = %+v", report)
	}
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(order) != "[a b c]" {
		t.Fatalf("execution order = %v", order)
	}
	if g.State() != Complete {
		t.Fatalf("graph state = %v", g.State())
	}
	if report.RunUUID == "" {
		t.Fatal("no run uuid")
	}
}

func TestSingleStepDiamondDataFlow(t *testing.T) {
	// a -> b, a -> c, (b,c) -> d; d must receive both values.
	g := NewTaskGraph("diamond")
	src := g.MustAddTask("src", &FuncUnit{UnitName: "src", Fn: func(*ProcessContext) ([]any, error) {
		return []any{7}, nil
	}})
	double := g.MustAddTask("double", &FuncUnit{UnitName: "double", Fn: func(ctx *ProcessContext) ([]any, error) {
		return []any{ctx.Inputs[0].(int) * 2}, nil
	}})
	triple := g.MustAddTask("triple", &FuncUnit{UnitName: "triple", Fn: func(ctx *ProcessContext) ([]any, error) {
		return []any{ctx.Inputs[0].(int) * 3}, nil
	}})
	var got []any
	sink := g.MustAddTask("sink", &FuncUnit{UnitName: "sink", Fn: func(ctx *ProcessContext) ([]any, error) {
		got = append([]any(nil), ctx.Inputs...)
		return nil, nil
	}})
	for _, pair := range [][2]*Task{{src, double}, {src, triple}, {double, sink}, {triple, sink}} {
		if _, err := g.Connect(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	s := NewScheduler(g, Options{Mode: SingleStep})
	report, err := s.Run(context.Background())
	if err != nil || report.Err != nil {
		t.Fatalf("run: %v %v", err, report)
	}
	if len(got) != 2 || got[0] != 14 || got[1] != 21 {
		t.Fatalf("sink inputs = %v", got)
	}
}

func TestSingleStepErrorPropagatesNotExecutable(t *testing.T) {
	g := NewTaskGraph("failing")
	bad := g.MustAddTask("bad", &FuncUnit{UnitName: "bad", Fn: func(*ProcessContext) ([]any, error) {
		return nil, errors.New("boom")
	}})
	down := g.MustAddTask("down", &FuncUnit{UnitName: "down", Fn: func(ctx *ProcessContext) ([]any, error) {
		t.Error("downstream of failed task ran")
		return nil, nil
	}})
	indep := g.MustAddTask("indep", &FuncUnit{UnitName: "indep", Fn: func(*ProcessContext) ([]any, error) {
		return []any{1}, nil
	}})
	_, _ = g.Connect(bad, down)
	s := NewScheduler(g, Options{Mode: SingleStep})
	report, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report.Err == nil {
		t.Fatal("run with failure reported success")
	}
	if bad.State() != Error || down.State() != NotExecutable || indep.State() != Complete {
		t.Fatalf("states: bad=%v down=%v indep=%v", bad.State(), down.State(), indep.State())
	}
	if g.State() != Error {
		t.Fatalf("graph state = %v", g.State())
	}
}

func TestSingleStepRejectsCycle(t *testing.T) {
	g := NewTaskGraph("loop")
	var mu sync.Mutex
	var order []string
	a := g.MustAddTask("a", passthrough("a", &order, &mu))
	b := g.MustAddTask("b", passthrough("b", &order, &mu))
	_, _ = g.Connect(a, b)
	_, _ = g.Connect(b, a)
	s := NewScheduler(g, Options{Mode: SingleStep})
	if _, err := s.Run(context.Background()); err == nil {
		t.Fatal("cycle accepted in single-step mode")
	}
}

func TestContinuousStreaming(t *testing.T) {
	g := NewTaskGraph("stream")
	items := []any{1, 2, 3, 4, 5}
	src := g.MustAddTask("src", &SliceSource{UnitName: "src", Items: items, Streaming: true})
	var mu sync.Mutex
	var got []int
	sink := g.MustAddTask("sink", &FuncUnit{UnitName: "sink", Fn: func(ctx *ProcessContext) ([]any, error) {
		mu.Lock()
		got = append(got, ctx.Inputs[0].(int))
		mu.Unlock()
		return nil, nil
	}})
	_, _ = g.Connect(src, sink)
	s := NewScheduler(g, Options{Mode: Continuous})
	report, err := s.Run(context.Background())
	if err != nil || report.Err != nil {
		t.Fatalf("run: %v %+v", err, report)
	}
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(got) != "[1 2 3 4 5]" {
		t.Fatalf("streamed values = %v", got)
	}
	// src: 5 invocations, sink: 5 invocations.
	if report.Invocations != 10 {
		t.Fatalf("invocations = %d, want 10", report.Invocations)
	}
}

func TestContinuousIterativeThreshold(t *testing.T) {
	// The paper's motivating continuous example: analyze until a threshold
	// is reached within an iterative algorithm.
	g := NewTaskGraph("iterate")
	n := 0
	src := g.MustAddTask("gen", &FuncUnit{UnitName: "gen", Fn: func(ctx *ProcessContext) ([]any, error) {
		n++
		if n > 50 {
			return nil, ErrStopIteration
		}
		return []any{float64(n) * 0.1}, nil
	}})
	var crossed float64
	sink := g.MustAddTask("check", &FuncUnit{UnitName: "check", Fn: func(ctx *ProcessContext) ([]any, error) {
		v := ctx.Inputs[0].(float64)
		if v >= 2.0 && crossed == 0 {
			crossed = v
		}
		return nil, nil
	}})
	_, _ = g.Connect(src, sink)
	s := NewScheduler(g, Options{Mode: Continuous})
	report, err := s.Run(context.Background())
	if err != nil || report.Err != nil {
		t.Fatalf("run: %v %+v", err, report)
	}
	if crossed < 2.0 {
		t.Fatalf("threshold never crossed: %v", crossed)
	}
	if report.Completed != 2 {
		t.Fatalf("completed = %d", report.Completed)
	}
}

func TestStopInterruptsContinuousRun(t *testing.T) {
	g := NewTaskGraph("infinite")
	src := g.MustAddTask("ticker", &FuncUnit{UnitName: "ticker", Fn: func(*ProcessContext) ([]any, error) {
		time.Sleep(time.Millisecond)
		return []any{1}, nil
	}})
	sink := g.MustAddTask("sink", &FuncUnit{UnitName: "sink", Fn: func(*ProcessContext) ([]any, error) {
		return nil, nil
	}})
	_, _ = g.Connect(src, sink)
	s := NewScheduler(g, Options{Mode: Continuous})
	done := make(chan *RunReport)
	go func() {
		report, err := s.Run(context.Background())
		if err != nil {
			t.Errorf("run: %v", err)
		}
		done <- report
	}()
	time.Sleep(30 * time.Millisecond)
	s.Stop()
	select {
	case report := <-done:
		if report.Invocations == 0 {
			t.Error("nothing ran before stop")
		}
		if g.State() != Suspended {
			t.Errorf("graph state = %v", g.State())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not end the run")
	}
}

func TestPauseAndResume(t *testing.T) {
	g := NewTaskGraph("pausable")
	count := 0
	var mu sync.Mutex
	src := g.MustAddTask("gen", &FuncUnit{UnitName: "gen", Fn: func(*ProcessContext) ([]any, error) {
		mu.Lock()
		count++
		c := count
		mu.Unlock()
		if c >= 100 {
			return nil, ErrStopIteration
		}
		return []any{c}, nil
	}})
	sink := g.MustAddTask("sink", &FuncUnit{UnitName: "sink", Fn: func(*ProcessContext) ([]any, error) {
		return nil, nil
	}})
	_, _ = g.Connect(src, sink)

	var events []ExecutionEvent
	var evMu sync.Mutex
	s := NewScheduler(g, Options{Mode: Continuous, Listeners: []Listener{
		ListenerFunc(func(ev ExecutionEvent) {
			evMu.Lock()
			events = append(events, ev)
			evMu.Unlock()
		}),
	}})
	s.Pause() // pause before start: tasks block at the gate immediately
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := s.Run(context.Background()); err != nil {
			t.Errorf("run: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	atPause := count
	mu.Unlock()
	if atPause != 0 {
		t.Fatalf("work ran while paused: %d", atPause)
	}
	s.Resume()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("run did not finish after resume")
	}
	mu.Lock()
	if count < 100 {
		t.Fatalf("count = %d", count)
	}
	mu.Unlock()
	evMu.Lock()
	defer evMu.Unlock()
	sawPaused, sawRelease := false, false
	for _, ev := range events {
		if ev.Task != nil && ev.New == Paused {
			sawPaused = true
		}
		if ev.Task != nil && ev.Old == Paused {
			sawRelease = true
		}
	}
	if !sawPaused || !sawRelease {
		t.Errorf("pause events: paused=%v released=%v", sawPaused, sawRelease)
	}
}

func TestRerunIsNewWorkflow(t *testing.T) {
	g := NewTaskGraph("rerun")
	g.MustAddTask("only", &FuncUnit{UnitName: "only", Fn: func(*ProcessContext) ([]any, error) {
		return nil, nil
	}})
	s := NewScheduler(g, Options{Mode: SingleStep})
	r1, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1.RunUUID == r2.RunUUID {
		t.Fatal("re-run kept the same workflow uuid")
	}
	if r2.Completed != 1 {
		t.Fatalf("second run report = %+v", r2)
	}
}

func TestResetLifecycle(t *testing.T) {
	g := NewTaskGraph("resettable")
	a := g.MustAddTask("a", &FuncUnit{UnitName: "a", Fn: func(*ProcessContext) ([]any, error) {
		return []any{1}, nil
	}})
	b := g.MustAddTask("b", &FuncUnit{UnitName: "b", Fn: func(*ProcessContext) ([]any, error) {
		return nil, nil
	}})
	_, _ = g.Connect(a, b)

	var mu sync.Mutex
	var transitions []State
	s := NewScheduler(g, Options{Mode: SingleStep, Listeners: []Listener{
		ListenerFunc(func(ev ExecutionEvent) {
			if ev.Task == nil {
				mu.Lock()
				transitions = append(transitions, ev.New)
				mu.Unlock()
			}
		}),
	}})
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if g.State() != NotInitialized || a.State() != NotInitialized {
		t.Fatalf("states after reset: graph=%v a=%v", g.State(), a.State())
	}
	mu.Lock()
	sawResetting, sawReset := false, false
	for _, st := range transitions {
		if st == Resetting {
			sawResetting = true
		}
		if st == Reset {
			sawReset = true
		}
	}
	mu.Unlock()
	if !sawResetting || !sawReset {
		t.Fatalf("reset lifecycle events missing: %v", transitions)
	}
	// The graph runs again after a reset.
	report, err := s.Run(context.Background())
	if err != nil || report.Completed != 2 {
		t.Fatalf("rerun after reset: %+v, %v", report, err)
	}
}

func TestResetWhileRunningRejected(t *testing.T) {
	g := NewTaskGraph("busy")
	started := make(chan struct{})
	release := make(chan struct{})
	g.MustAddTask("slow", &FuncUnit{UnitName: "slow", Fn: func(*ProcessContext) ([]any, error) {
		close(started)
		<-release
		return nil, nil
	}})
	s := NewScheduler(g, Options{Mode: SingleStep})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = s.Run(context.Background())
	}()
	<-started
	if err := s.Reset(); err == nil {
		t.Error("reset of a running graph accepted")
	}
	close(release)
	<-done
	if err := s.Reset(); err != nil {
		t.Errorf("reset after completion: %v", err)
	}
}

func TestGraphValidation(t *testing.T) {
	g := NewTaskGraph("bad")
	if _, err := g.AddTask("", nil); err == nil {
		t.Error("empty task name accepted")
	}
	a := g.MustAddTask("a", &FuncUnit{UnitName: "a", Fn: func(*ProcessContext) ([]any, error) { return nil, nil }})
	if _, err := g.AddTask("a", nil); err == nil {
		t.Error("duplicate task accepted")
	}
	if _, err := g.Connect(a, a); err == nil {
		t.Error("self-loop accepted")
	}
	other := NewTaskGraph("other")
	b := other.MustAddTask("b", &FuncUnit{UnitName: "b", Fn: func(*ProcessContext) ([]any, error) { return nil, nil }})
	if _, err := g.Connect(a, b); err == nil {
		t.Error("cross-graph cable accepted")
	}
	empty := NewTaskGraph("empty")
	s := NewScheduler(empty, Options{})
	if _, err := s.Run(context.Background()); err == nil {
		t.Error("empty graph ran")
	}
}

func TestTaskParams(t *testing.T) {
	g := NewTaskGraph("params")
	tk := g.MustAddTask("t", &FuncUnit{UnitName: "t", Fn: func(ctx *ProcessContext) ([]any, error) {
		return []any{ctx.Task.Param("factor")}, nil
	}})
	tk.SetParam("factor", "16")
	if tk.Param("factor") != "16" {
		t.Fatal("param not stored")
	}
	if tk.Param("missing") != "" {
		t.Fatal("missing param non-empty")
	}
}
