package triana

import (
	"context"
	"testing"
	"time"

	"repro/internal/wfclock"
)

func TestGatherUnitCollectsAllInputs(t *testing.T) {
	g := NewTaskGraph("gather")
	mk := func(name string, v int) *Task {
		return g.MustAddTask(name, &FuncUnit{UnitName: name, Fn: func(*ProcessContext) ([]any, error) {
			return []any{v}, nil
		}})
	}
	a := mk("a", 1)
	b := mk("b", 2)
	c := mk("c", 3)
	gather := g.MustAddTask("gather", &GatherUnit{UnitName: "gather"})
	var got []any
	sink := g.MustAddTask("sink", &FuncUnit{UnitName: "sink", Fn: func(ctx *ProcessContext) ([]any, error) {
		got, _ = ctx.Inputs[0].([]any)
		return nil, nil
	}})
	for _, src := range []*Task{a, b, c} {
		if _, err := g.Connect(src, gather); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Connect(gather, sink); err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(g, Options{Mode: SingleStep})
	report, err := s.Run(context.Background())
	if err != nil || report.Err != nil {
		t.Fatalf("run: %v %v", err, report)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("gathered = %v", got)
	}
	if (&GatherUnit{}).TypeDesc() != "file" {
		t.Error("type desc changed")
	}
}

func TestSliceSourceSingleStepEmitsWholeSlice(t *testing.T) {
	g := NewTaskGraph("batch")
	src := g.MustAddTask("src", &SliceSource{UnitName: "src", Items: []any{1, 2, 3}})
	var got []any
	sink := g.MustAddTask("sink", &FuncUnit{UnitName: "sink", Fn: func(ctx *ProcessContext) ([]any, error) {
		got, _ = ctx.Inputs[0].([]any)
		return nil, nil
	}})
	_, _ = g.Connect(src, sink)
	s := NewScheduler(g, Options{Mode: SingleStep})
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("single-step slice source emitted %v", got)
	}
}

func TestWorkUnitPassthroughAndDefaults(t *testing.T) {
	clk := wfclock.NewScaled(time.Unix(0, 0).UTC(), 10000)
	g := NewTaskGraph("work")
	src := g.MustAddTask("src", &FuncUnit{UnitName: "src", Fn: func(*ProcessContext) ([]any, error) {
		return []any{"payload"}, nil
	}})
	work := g.MustAddTask("work", &WorkUnit{UnitName: "work", Duration: 5 * time.Second, Clock: clk})
	var got any
	sink := g.MustAddTask("sink", &FuncUnit{UnitName: "sink", Fn: func(ctx *ProcessContext) ([]any, error) {
		got = ctx.Inputs[0]
		return nil, nil
	}})
	_, _ = g.Connect(src, work)
	_, _ = g.Connect(work, sink)
	s := NewScheduler(g, Options{Mode: SingleStep, Clock: clk})
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got != "payload" {
		t.Fatalf("workunit did not pass input through: %v", got)
	}
	if (&WorkUnit{}).TypeDesc() != "processing" {
		t.Error("default type desc changed")
	}
	if (&WorkUnit{Desc: "file"}).TypeDesc() != "file" {
		t.Error("explicit type desc ignored")
	}
}

func TestFuncUnitTypeDescDefault(t *testing.T) {
	if (&FuncUnit{}).TypeDesc() != "unit" {
		t.Error("FuncUnit default type desc changed")
	}
	if (&FuncUnit{Desc: "source"}).TypeDesc() != "source" {
		t.Error("FuncUnit explicit type desc ignored")
	}
}
