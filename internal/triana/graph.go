package triana

import (
	"fmt"
	"sync"

	"repro/internal/uuid"
)

// Unit is the component contract, mirroring Triana's Java Unit class: a
// named piece of code with a Process method. Inputs arrive as one value
// per connected input cable; the returned slice is distributed across the
// output cables (a single return value is broadcast to all of them).
type Unit interface {
	Name() string
	Process(ctx *ProcessContext) ([]any, error)
}

// TypeDesc is implemented by units that want a Stampede type_desc other
// than the default "unit".
type TypeDesc interface {
	TypeDesc() string
}

// ProcessContext is what a unit sees during one invocation.
type ProcessContext struct {
	// Inputs holds one value per input cable, in connection order. Source
	// units (no inputs) see an empty slice.
	Inputs []any
	// Invocation is the 1-based invocation count for this task in the
	// current run.
	Invocation int
	// Task is the node being executed (for name/parameter access).
	Task *Task
}

// ErrStopIteration is returned by a continuous-mode source unit to signal
// that it has no more data; the scheduler treats it as normal completion,
// the "local condition" that releases a component in the paper's terms.
var ErrStopIteration = fmt.Errorf("triana: stop iteration")

// Cable is a directed, buffered connection between two tasks. Buffering
// provides the "queuing function at both the input and output cables"
// that Triana's streaming mode relies on.
type Cable struct {
	From, To *Task
	ch       chan any
}

// cableCapacity is the queue depth per cable; deep enough that single-step
// workflows never block on output.
const cableCapacity = 64

// Task is one node of a task graph: a unit plus its cable endpoints and
// some engine state.
type Task struct {
	Name  string
	Unit  Unit
	Graph *TaskGraph

	inputs  []*Cable
	outputs []*Cable

	mu    sync.Mutex
	state State
	// Params are free-form key/value settings (the GUI's parameter panel);
	// units read them via ctx.Task.Param.
	params map[string]string
}

// State returns the task's current state.
func (t *Task) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

func (t *Task) setState(s State) State {
	t.mu.Lock()
	old := t.state
	t.state = s
	t.mu.Unlock()
	return old
}

// SetParam sets a parameter on the task.
func (t *Task) SetParam(key, value string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.params == nil {
		t.params = map[string]string{}
	}
	t.params[key] = value
}

// Param reads a parameter ("" when unset).
func (t *Task) Param(key string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.params[key]
}

// InDegree and OutDegree report cable counts.
func (t *Task) InDegree() int  { return len(t.inputs) }
func (t *Task) OutDegree() int { return len(t.outputs) }

// TaskGraph is a workflow: tasks plus cables. A TaskGraph can contain a
// task whose unit runs another TaskGraph (a sub-workflow); Triana's model
// is recursive.
type TaskGraph struct {
	Name string
	// RunUUID identifies one execution of this graph; a re-run is a new
	// workflow with a fresh UUID, exactly as §V-B describes.
	RunUUID string

	mu     sync.Mutex
	tasks  []*Task
	cables []*Cable
	byName map[string]*Task
	state  State
}

// NewTaskGraph returns an empty graph.
func NewTaskGraph(name string) *TaskGraph {
	return &TaskGraph{Name: name, byName: map[string]*Task{}}
}

// AddTask adds a unit as a named task. Task names must be unique within
// the graph.
func (g *TaskGraph) AddTask(name string, u Unit) (*Task, error) {
	if name == "" {
		return nil, fmt.Errorf("triana: empty task name")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.byName[name]; dup {
		return nil, fmt.Errorf("triana: duplicate task %q", name)
	}
	t := &Task{Name: name, Unit: u, Graph: g, state: NotInitialized}
	g.tasks = append(g.tasks, t)
	g.byName[name] = t
	return t, nil
}

// MustAddTask is AddTask for graph-construction code where a failure is a
// programming error.
func (g *TaskGraph) MustAddTask(name string, u Unit) *Task {
	t, err := g.AddTask(name, u)
	if err != nil {
		panic(err)
	}
	return t
}

// Connect wires an output of from to an input of to.
func (g *TaskGraph) Connect(from, to *Task) (*Cable, error) {
	if from == nil || to == nil {
		return nil, fmt.Errorf("triana: connect with nil task")
	}
	if from.Graph != g || to.Graph != g {
		return nil, fmt.Errorf("triana: connect across graphs")
	}
	if from == to {
		return nil, fmt.Errorf("triana: self-loop on %q", from.Name)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	c := &Cable{From: from, To: to, ch: make(chan any, cableCapacity)}
	g.cables = append(g.cables, c)
	from.outputs = append(from.outputs, c)
	to.inputs = append(to.inputs, c)
	return c, nil
}

// Tasks returns the tasks in insertion order.
func (g *TaskGraph) Tasks() []*Task {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Task(nil), g.tasks...)
}

// Cables returns the cables in insertion order.
func (g *TaskGraph) Cables() []*Cable {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Cable(nil), g.cables...)
}

// Task returns a task by name, nil when absent.
func (g *TaskGraph) Task(name string) *Task {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.byName[name]
}

// State returns the graph's lifecycle state.
func (g *TaskGraph) State() State {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.state
}

func (g *TaskGraph) setState(s State) State {
	g.mu.Lock()
	old := g.state
	g.state = s
	g.mu.Unlock()
	return old
}

// freshRunUUID assigns a new run identity; the scheduler calls it at the
// start of every run because a re-run is a new workflow.
func (g *TaskGraph) freshRunUUID() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.RunUUID = uuid.New().String()
	return g.RunUUID
}

// HasCycle reports whether the cable graph contains a directed cycle.
// Triana permits loops in continuous mode; the scheduler rejects them in
// single-step mode where they would deadlock.
func (g *TaskGraph) HasCycle() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[*Task]int, len(g.tasks))
	var visit func(t *Task) bool
	visit = func(t *Task) bool {
		color[t] = grey
		for _, c := range t.outputs {
			switch color[c.To] {
			case grey:
				return true
			case white:
				if visit(c.To) {
					return true
				}
			}
		}
		color[t] = black
		return false
	}
	for _, t := range g.tasks {
		if color[t] == white && visit(t) {
			return true
		}
	}
	return false
}
