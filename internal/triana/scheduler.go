package triana

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/wfclock"
)

// Mode selects between Triana's two execution modes.
type Mode int

const (
	// SingleStep schedules each component to execute exactly once, like a
	// DAG — the mode the paper's DART experiment uses.
	SingleStep Mode = iota
	// Continuous keeps components waiting for data until released by a
	// local condition (ErrStopIteration from sources) or stopped.
	Continuous
)

func (m Mode) String() string {
	if m == Continuous {
		return "continuous"
	}
	return "single-step"
}

// Options configures a scheduler.
type Options struct {
	Mode  Mode
	Clock wfclock.Clock // defaults to wfclock.Real
	// Listeners receive every execution event (the StampedeLog goes
	// here).
	Listeners []Listener
	// Hostname is reported as the execution host (the paper logs
	// localhost for local runs).
	Hostname string
}

// Scheduler controls the start/stop/reset lifecycle of one task graph and
// owns the runnable instances that execute its tasks.
type Scheduler struct {
	graph *TaskGraph
	opts  Options
	clock wfclock.Clock

	mu        sync.Mutex
	listeners []Listener
	pauseCh   chan struct{} // closed = running; replaced when paused
	paused    bool
	stop      context.CancelFunc
	running   bool
}

// NewScheduler builds a scheduler for the graph.
func NewScheduler(g *TaskGraph, opts Options) *Scheduler {
	if opts.Clock == nil {
		opts.Clock = wfclock.Real
	}
	if opts.Hostname == "" {
		opts.Hostname = "localhost"
	}
	open := make(chan struct{})
	close(open)
	return &Scheduler{
		graph:     g,
		opts:      opts,
		clock:     opts.Clock,
		listeners: append([]Listener(nil), opts.Listeners...),
		pauseCh:   open,
	}
}

// AddListener registers an additional execution-event listener. Must be
// called before Run.
func (s *Scheduler) AddListener(l Listener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.listeners = append(s.listeners, l)
}

// Clock returns the scheduler's clock (units simulating work use it).
func (s *Scheduler) Clock() wfclock.Clock { return s.clock }

func (s *Scheduler) emit(ev ExecutionEvent) {
	s.mu.Lock()
	ls := s.listeners
	s.mu.Unlock()
	for _, l := range ls {
		l.OnEvent(ev)
	}
}

func (s *Scheduler) taskTransition(t *Task, to State, inv int, err error) {
	s.taskTransitionT(t, to, inv, err, false)
}

// taskTransitionT is taskTransition with an explicit terminal marker.
func (s *Scheduler) taskTransitionT(t *Task, to State, inv int, err error, terminal bool) {
	old := t.setState(to)
	s.emit(ExecutionEvent{
		Task: t, Graph: s.graph, Old: old, New: to,
		Time: s.clock.Now(), Invocation: inv, Err: err, Terminal: terminal,
	})
}

func (s *Scheduler) graphTransition(to State) {
	old := s.graph.setState(to)
	s.emit(ExecutionEvent{Graph: s.graph, Old: old, New: to, Time: s.clock.Now()})
}

// Pause holds every component before its next invocation; the GUI's pause
// control. Running invocations finish first.
func (s *Scheduler) Pause() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.paused {
		return
	}
	s.paused = true
	s.pauseCh = make(chan struct{})
}

// Resume releases a Pause.
func (s *Scheduler) Resume() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.paused {
		return
	}
	s.paused = false
	close(s.pauseCh)
}

// Stop aborts the run; the GUI's stop button. In-flight invocations are
// interrupted at their next blocking point.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	stop := s.stop
	s.mu.Unlock()
	if stop != nil {
		stop()
	}
}

func (s *Scheduler) gate() chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pauseCh
}

// waitGate blocks while the scheduler is paused. It returns false when the
// context died while waiting. The task emits Paused/resume transitions
// around the wait so the Stampede held.start/held.end mapping fires.
func (s *Scheduler) waitGate(ctx context.Context, t *Task) bool {
	g := s.gate()
	select {
	case <-g:
		return true
	default:
	}
	// Blocked: announce the pause.
	prev := t.State()
	s.taskTransition(t, Paused, 0, nil)
	select {
	case <-g:
		s.taskTransition(t, prev, 0, nil)
		return true
	case <-ctx.Done():
		return false
	}
}

// Reset returns a finished (or never-started) task graph to its initial
// state, emitting the RESETTING/RESET lifecycle transitions the paper's
// event vocabulary includes. Resetting a running graph is an error; Stop
// it first.
func (s *Scheduler) Reset() error {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return fmt.Errorf("triana: cannot reset a running task graph")
	}
	s.mu.Unlock()
	s.graphTransition(Resetting)
	for _, t := range s.graph.Tasks() {
		if t.State() != NotInitialized {
			s.taskTransition(t, Resetting, 0, nil)
			s.taskTransition(t, Reset, 0, nil)
		}
	}
	for _, c := range s.graph.Cables() {
		c.ch = make(chan any, cableCapacity)
	}
	for _, t := range s.graph.Tasks() {
		t.setState(NotInitialized)
	}
	s.graphTransition(Reset)
	s.graph.setState(NotInitialized)
	return nil
}

// RunReport summarises one run.
type RunReport struct {
	RunUUID       string
	Completed     int
	Errored       int
	NotExecutable int
	Suspended     int
	Invocations   int
	Err           error
}

// Run executes the task graph to completion (or Stop/context
// cancellation). It is synchronous; use a goroutine to drive the GUI-style
// controls concurrently.
func (s *Scheduler) Run(ctx context.Context) (*RunReport, error) {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return nil, fmt.Errorf("triana: scheduler already running")
	}
	s.running = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running = false
		s.stop = nil
		s.mu.Unlock()
	}()

	tasks := s.graph.Tasks()
	if len(tasks) == 0 {
		return nil, fmt.Errorf("triana: empty task graph %q", s.graph.Name)
	}
	if s.opts.Mode == SingleStep && s.graph.HasCycle() {
		return nil, fmt.Errorf("triana: task graph %q has a cycle; single-step mode requires a DAG", s.graph.Name)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.mu.Lock()
	s.stop = cancel
	s.mu.Unlock()

	s.graph.freshRunUUID()
	// Reset cables and task state for a fresh run.
	for _, c := range s.graph.Cables() {
		c.ch = make(chan any, cableCapacity)
	}
	for _, t := range tasks {
		t.setState(NotInitialized)
	}

	s.graphTransition(Scheduled)
	s.graphTransition(Running)

	report := &RunReport{RunUUID: s.graph.RunUUID}
	var invMu sync.Mutex

	var wg sync.WaitGroup
	for _, t := range tasks {
		wg.Add(1)
		go func(t *Task) {
			defer wg.Done()
			n := s.runTask(runCtx, t)
			invMu.Lock()
			report.Invocations += n
			invMu.Unlock()
		}(t)
	}
	wg.Wait()

	for _, t := range tasks {
		switch t.State() {
		case Complete:
			report.Completed++
		case Error:
			report.Errored++
		case NotExecutable:
			report.NotExecutable++
		default:
			report.Suspended++
		}
	}
	switch {
	case report.Errored > 0:
		s.graphTransition(Error)
		report.Err = fmt.Errorf("triana: %d task(s) failed", report.Errored)
	case ctx.Err() != nil || report.Suspended > 0:
		s.graphTransition(Suspended)
	default:
		s.graphTransition(Complete)
	}
	return report, nil
}

// closeOutputs closes every outgoing cable of t exactly once per run; in
// this engine each task is the sole writer of its output cables.
func closeOutputs(t *Task) {
	for _, c := range t.outputs {
		close(c.ch)
	}
}

// receiveInputs gathers one value per input cable. It returns
// (values, true) on success; (nil, false) when any cable closed without a
// value or the context died.
func receiveInputs(ctx context.Context, t *Task) ([]any, bool) {
	vals := make([]any, len(t.inputs))
	for i, c := range t.inputs {
		select {
		case v, ok := <-c.ch:
			if !ok {
				return nil, false
			}
			vals[i] = v
		case <-ctx.Done():
			return nil, false
		}
	}
	return vals, true
}

// sendOutputs distributes the unit's return values over the output
// cables: one-to-one when lengths match, broadcast when a single value
// goes to many cables.
func sendOutputs(ctx context.Context, t *Task, out []any) error {
	if len(t.outputs) == 0 {
		return nil
	}
	if len(out) == 0 {
		return nil
	}
	if len(out) != len(t.outputs) && len(out) != 1 {
		return fmt.Errorf("triana: unit %q returned %d outputs for %d cables",
			t.Name, len(out), len(t.outputs))
	}
	for i, c := range t.outputs {
		v := out[0]
		if len(out) == len(t.outputs) {
			v = out[i]
		}
		select {
		case c.ch <- v:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// runTask is one runnable instance: the goroutine driving one task
// through its lifecycle. It returns the number of invocations executed.
func (s *Scheduler) runTask(ctx context.Context, t *Task) int {
	defer closeOutputs(t)
	s.taskTransition(t, Scheduled, 0, nil)
	s.taskTransition(t, Woken, 0, nil) // submit recorded; waiting for data

	invocations := 0
	for {
		if !s.waitGate(ctx, t) {
			s.taskTransitionT(t, Suspended, 0, nil, true)
			return invocations
		}
		var inputs []any
		if len(t.inputs) > 0 {
			vals, ok := receiveInputs(ctx, t)
			if !ok {
				if ctx.Err() != nil {
					s.taskTransitionT(t, Suspended, 0, nil, true)
				} else if invocations == 0 {
					// Upstream never produced data: not executable.
					s.taskTransitionT(t, NotExecutable, 0, nil, true)
				} else {
					s.taskTransitionT(t, Complete, 0, nil, true)
				}
				return invocations
			}
			inputs = vals
		} else if invocations > 0 && s.opts.Mode == SingleStep {
			// Sources run exactly once in single-step mode.
			s.taskTransitionT(t, Complete, 0, nil, true)
			return invocations
		}

		invocations++
		s.taskTransition(t, Running, invocations, nil)
		out, err := t.Unit.Process(&ProcessContext{Inputs: inputs, Invocation: invocations, Task: t})
		if err == ErrStopIteration {
			// The invocation never did work: mark it Reset (ignored by the
			// Stampede mapping) and finish cleanly.
			s.taskTransition(t, Reset, invocations, nil)
			invocations--
			s.taskTransitionT(t, Complete, 0, nil, true)
			return invocations
		}
		if err != nil {
			s.taskTransitionT(t, Error, invocations, err, true)
			if s.opts.Mode == Continuous {
				// A dead consumer would leave upstream producers blocked on
				// full cables forever; a continuous-mode failure aborts the
				// whole run, as interactively stopping the graph would.
				s.Stop()
			}
			return invocations
		}
		if err := sendOutputs(ctx, t, out); err != nil {
			s.taskTransitionT(t, Suspended, invocations, nil, true)
			return invocations
		}
		s.taskTransitionT(t, Complete, invocations, nil, s.opts.Mode == SingleStep)

		if s.opts.Mode == SingleStep {
			return invocations
		}
		if len(t.inputs) == 0 && ctx.Err() != nil {
			return invocations
		}
		// Continuous mode: go back to waiting for data.
		s.taskTransition(t, Woken, 0, nil)
	}
}
