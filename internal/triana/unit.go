package triana

import (
	"time"

	"repro/internal/wfclock"
)

// FuncUnit adapts a function to the Unit interface; most workflow
// components in the examples are built from it, the way Triana units wrap
// small pieces of Java code.
type FuncUnit struct {
	UnitName string
	Desc     string // Stampede type_desc; "unit" when empty
	Fn       func(ctx *ProcessContext) ([]any, error)
}

// Name implements Unit.
func (u *FuncUnit) Name() string { return u.UnitName }

// TypeDesc implements the TypeDesc extension.
func (u *FuncUnit) TypeDesc() string {
	if u.Desc == "" {
		return "unit"
	}
	return u.Desc
}

// Process implements Unit.
func (u *FuncUnit) Process(ctx *ProcessContext) ([]any, error) { return u.Fn(ctx) }

// SliceSource emits the elements of a slice one per invocation in
// continuous mode, then stops — the streaming "chunks of data from
// previous tasks" source. In single-step mode it emits the whole slice as
// one value.
type SliceSource struct {
	UnitName string
	Items    []any
	// Streaming selects per-item emission (continuous mode).
	Streaming bool
}

// Name implements Unit.
func (u *SliceSource) Name() string { return u.UnitName }

// TypeDesc implements the TypeDesc extension.
func (u *SliceSource) TypeDesc() string { return "source" }

// Process implements Unit.
func (u *SliceSource) Process(ctx *ProcessContext) ([]any, error) {
	if !u.Streaming {
		return []any{u.Items}, nil
	}
	i := ctx.Invocation - 1
	if i >= len(u.Items) {
		return nil, ErrStopIteration
	}
	return []any{u.Items[i]}, nil
}

// WorkUnit simulates a computation of fixed duration on the scheduler's
// clock and passes its input through. Workloads with a calibrated cost
// model (the DART sweep) use it so virtual-clock runs reproduce the
// paper's timing tables.
type WorkUnit struct {
	UnitName string
	Desc     string
	Duration time.Duration
	Clock    wfclock.Clock
	// Fn optionally performs real work with the inputs; its outputs are
	// forwarded. When nil the inputs pass through unchanged.
	Fn func(ctx *ProcessContext) ([]any, error)
}

// Name implements Unit.
func (u *WorkUnit) Name() string { return u.UnitName }

// TypeDesc implements the TypeDesc extension.
func (u *WorkUnit) TypeDesc() string {
	if u.Desc == "" {
		return "processing"
	}
	return u.Desc
}

// Process implements Unit.
func (u *WorkUnit) Process(ctx *ProcessContext) ([]any, error) {
	clk := u.Clock
	if clk == nil {
		clk = wfclock.Real
	}
	clk.Sleep(u.Duration)
	if u.Fn != nil {
		return u.Fn(ctx)
	}
	out := make([]any, len(ctx.Inputs))
	copy(out, ctx.Inputs)
	if len(out) == 0 {
		out = []any{nil}
	}
	return out, nil
}

// GatherUnit collects all its inputs into one slice output — the pattern
// of the DART Zipper task that collates results.
type GatherUnit struct {
	UnitName string
}

// Name implements Unit.
func (u *GatherUnit) Name() string { return u.UnitName }

// TypeDesc implements the TypeDesc extension.
func (u *GatherUnit) TypeDesc() string { return "file" }

// Process implements Unit.
func (u *GatherUnit) Process(ctx *ProcessContext) ([]any, error) {
	gathered := make([]any, len(ctx.Inputs))
	copy(gathered, ctx.Inputs)
	return []any{gathered}, nil
}
