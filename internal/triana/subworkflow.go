package triana

import (
	"context"
	"fmt"

	"repro/internal/wfclock"
)

// SubWorkflowUnit runs a nested task graph when invoked: Triana's
// recursive model, where a task within a task graph may itself be a
// task graph. The unit creates a child StampedeLog wired into the same
// appender, links the child run to the parent job with xwf.map.subwf_job,
// and propagates the hierarchy identifiers so the archive can reconstruct
// parent/child relations.
type SubWorkflowUnit struct {
	UnitName string
	// Build constructs the child graph for one invocation; it receives
	// the inputs so meta-workflows can concretise sub-workflows from data
	// at runtime (the paper's §V-D).
	Build func(inputs []any) (*TaskGraph, error)
	// ParentLog is the parent workflow's StampedeLog; may be nil when the
	// parent is not being monitored.
	ParentLog *StampedeLog
	// Appender receives the child's Stampede events (usually the same
	// appender as the parent's).
	Appender Appender
	// Opts configures the child scheduler (mode, clock, hostname).
	Opts Options
}

// ParentLogSetter is implemented by units that need the enclosing
// workflow's StampedeLog to chain the monitoring hierarchy. When a
// SubWorkflowUnit runs a child graph, it injects the child's log into
// every task unit that implements this interface — so arbitrarily deep
// nesting (sub-workflows spawning sub-workflows) wires itself up.
type ParentLogSetter interface {
	SetParentLog(*StampedeLog)
}

// SetParentLog implements ParentLogSetter: an explicitly configured
// ParentLog wins; otherwise the enclosing run's log is adopted.
func (u *SubWorkflowUnit) SetParentLog(l *StampedeLog) {
	if u.ParentLog == nil {
		u.ParentLog = l
	}
}

// Name implements Unit.
func (u *SubWorkflowUnit) Name() string { return u.UnitName }

// TypeDesc implements the TypeDesc extension.
func (u *SubWorkflowUnit) TypeDesc() string { return "sub-workflow" }

// Process implements Unit: it builds and synchronously executes the child
// workflow, returning the child's run UUID as its output value.
func (u *SubWorkflowUnit) Process(ctx *ProcessContext) ([]any, error) {
	child, err := u.Build(ctx.Inputs)
	if err != nil {
		return nil, fmt.Errorf("triana: building sub-workflow for %s: %w", ctx.Task.Name, err)
	}
	opts := u.Opts
	if opts.Clock == nil {
		opts.Clock = wfclock.Real
	}
	var childLog *StampedeLog
	if u.Appender != nil {
		childLog = NewStampedeLog(u.Appender)
		if u.ParentLog != nil {
			childLog.ParentUUID = u.ParentLog.WorkflowUUID()
			childLog.RootUUID = u.ParentLog.RootUUID
			if childLog.RootUUID == "" {
				childLog.RootUUID = u.ParentLog.WorkflowUUID()
			}
			childLog.Site = u.ParentLog.Site
		}
		if opts.Hostname != "" {
			childLog.Hostname = opts.Hostname
		}
		opts.Listeners = append(opts.Listeners, childLog)
		// Chain the hierarchy into any nested sub-workflow units.
		for _, t := range child.Tasks() {
			if ps, ok := t.Unit.(ParentLogSetter); ok {
				ps.SetParentLog(childLog)
			}
		}
	}
	sched := NewScheduler(child, opts)
	report, err := sched.Run(context.Background())
	if err != nil {
		return nil, err
	}
	if u.ParentLog != nil && childLog != nil {
		u.ParentLog.MapSubWorkflow(ctx.Task.Name, report.RunUUID, opts.Clock.Now())
	}
	if report.Err != nil {
		return nil, report.Err
	}
	return []any{report.RunUUID}, nil
}
