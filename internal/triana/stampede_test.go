package triana

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/bp"
	"repro/internal/loader"
	"repro/internal/mq"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/wfclock"
)

// runMonitored executes a graph with a StampedeLog attached and returns
// the log, the collected events, and the run report.
func runMonitored(t *testing.T, g *TaskGraph, mode Mode) (*StampedeLog, *CollectAppender, *RunReport) {
	t.Helper()
	app := &CollectAppender{}
	log := NewStampedeLog(app)
	s := NewScheduler(g, Options{Mode: mode, Listeners: []Listener{log}})
	report, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if log.Err() != nil {
		t.Fatalf("appender error: %v", log.Err())
	}
	return log, app, report
}

func simpleGraph() *TaskGraph {
	g := NewTaskGraph("demo")
	a := g.MustAddTask("reader", &FuncUnit{UnitName: "read-unit", Desc: "file", Fn: func(*ProcessContext) ([]any, error) {
		return []any{"data"}, nil
	}})
	b := g.MustAddTask("proc", &FuncUnit{UnitName: "proc-unit", Desc: "processing", Fn: func(ctx *ProcessContext) ([]any, error) {
		return []any{ctx.Inputs[0]}, nil
	}})
	_, _ = g.Connect(a, b)
	return g
}

func TestStampedeEventsAreSchemaValid(t *testing.T) {
	g := simpleGraph()
	_, app, _ := runMonitored(t, g, SingleStep)
	v, err := schema.NewValidator()
	if err != nil {
		t.Fatal(err)
	}
	v.Strict = true
	evs := app.Events()
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	for i, ev := range evs {
		if err := v.Validate(ev); err != nil {
			t.Errorf("event %d: %v", i, err)
		}
	}
}

func TestStampedeEventSequence(t *testing.T) {
	g := simpleGraph()
	log, app, _ := runMonitored(t, g, SingleStep)
	var types []string
	for _, ev := range app.Events() {
		types = append(types, ev.Type)
	}
	// The planning block must precede xwf.start, which must precede any
	// job-instance event; xwf.end must be last.
	idx := func(typ string) int {
		for i, s := range types {
			if s == typ {
				return i
			}
		}
		return -1
	}
	if idx(schema.WfPlan) != 0 {
		t.Errorf("first event = %s", types[0])
	}
	if !(idx(schema.StaticStart) < idx(schema.TaskInfo) &&
		idx(schema.TaskInfo) < idx(schema.StaticEnd) &&
		idx(schema.StaticEnd) < idx(schema.XwfStart)) {
		t.Errorf("static block misordered: %v", types)
	}
	if idx(schema.XwfStart) > idx(schema.SubmitStart) {
		t.Errorf("submit before xwf.start: %v", types)
	}
	if types[len(types)-1] != schema.XwfEnd {
		t.Errorf("last event = %s", types[len(types)-1])
	}
	// 1:1 task-job mapping for both tasks.
	maps := 0
	for _, ev := range app.Events() {
		if ev.Type == schema.MapTaskJob {
			maps++
			if ev.Get(schema.AttrTaskID) != ev.Get(schema.AttrJobID) {
				t.Errorf("map not 1:1: %s", ev.Format())
			}
		}
	}
	if maps != 2 {
		t.Errorf("task-job mappings = %d", maps)
	}
	if log.WorkflowUUID() == "" {
		t.Error("no workflow uuid recorded")
	}
}

// loadEvents pushes collected events through the loader into a fresh
// archive.
func loadEvents(t *testing.T, app *CollectAppender) *query.QI {
	t.Helper()
	a := archive.NewInMemory()
	l, err := loader.New(a, loader.Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range app.Events() {
		parsed, err := bp.Parse(ev.Format())
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if err := a.Apply(parsed); err != nil {
			t.Fatalf("apply %s: %v", ev.Type, err)
		}
	}
	_ = l
	return query.New(a)
}

func TestTrianaRunLoadsIntoArchive(t *testing.T) {
	g := simpleGraph()
	log, app, _ := runMonitored(t, g, SingleStep)
	q := loadEvents(t, app)
	wf, err := q.WorkflowByUUID(log.WorkflowUUID())
	if err != nil || wf == nil {
		t.Fatalf("workflow: %v %v", wf, err)
	}
	summary, err := stats.Compute(q, wf.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if summary.Tasks.Total != 2 || summary.Tasks.Succeeded != 2 {
		t.Errorf("tasks = %+v", summary.Tasks)
	}
	if summary.Jobs.Total != 2 || summary.Jobs.Succeeded != 2 {
		t.Errorf("jobs = %+v", summary.Jobs)
	}
	jobs, _ := q.Jobs(wf.ID)
	for _, j := range jobs {
		insts, _ := q.JobInstances(j.ID)
		if len(insts) != 1 {
			t.Fatalf("job %s has %d instances", j.ExecJobID, len(insts))
		}
		invs, _ := q.InvocationsForInstance(insts[0].ID)
		if len(invs) != 1 {
			t.Fatalf("job %s has %d invocations", j.ExecJobID, len(invs))
		}
	}
}

func TestTrianaFailureMapping(t *testing.T) {
	g := NewTaskGraph("failing")
	bad := g.MustAddTask("bad", &FuncUnit{UnitName: "bad-unit", Fn: func(*ProcessContext) ([]any, error) {
		return nil, errors.New("NullPointerException at Unit.process")
	}})
	down := g.MustAddTask("down", &FuncUnit{UnitName: "down-unit", Fn: func(ctx *ProcessContext) ([]any, error) {
		return nil, nil
	}})
	_, _ = g.Connect(bad, down)
	log, app, report := runMonitored(t, g, SingleStep)
	if report.Err == nil {
		t.Fatal("failure not reported")
	}
	// inv.end and main.end must carry return code -1 (the paper's rule).
	sawInvEnd, sawMainEnd, sawXwfFail := false, false, false
	for _, ev := range app.Events() {
		switch ev.Type {
		case schema.InvEnd:
			if code, _ := ev.Int(schema.AttrExitcode); code == -1 {
				sawInvEnd = true
			}
		case schema.MainEnd:
			if code, _ := ev.Int(schema.AttrExitcode); code == -1 {
				sawMainEnd = true
				if ev.Get(schema.AttrStderrText) == "" {
					t.Error("failed main.end lacks stderr text")
				}
			}
		case schema.XwfEnd:
			if st, _ := ev.Int(schema.AttrStatus); st == -1 {
				sawXwfFail = true
			}
		}
	}
	if !sawInvEnd || !sawMainEnd || !sawXwfFail {
		t.Fatalf("failure events: inv=%v main=%v xwf=%v", sawInvEnd, sawMainEnd, sawXwfFail)
	}
	q := loadEvents(t, app)
	wf, _ := q.WorkflowByUUID(log.WorkflowUUID())
	summary, _ := stats.Compute(q, wf.ID, true)
	if summary.Jobs.Failed != 1 {
		t.Errorf("failed jobs = %d", summary.Jobs.Failed)
	}
	if summary.Jobs.Incomplete != 1 { // downstream never ran
		t.Errorf("incomplete jobs = %d", summary.Jobs.Incomplete)
	}
}

func TestContinuousModeMultipleInvocationsPerJob(t *testing.T) {
	g := NewTaskGraph("stream")
	src := g.MustAddTask("chunks", &SliceSource{UnitName: "chunk-src", Items: []any{1, 2, 3}, Streaming: true})
	sink := g.MustAddTask("consume", &FuncUnit{UnitName: "consume-unit", Fn: func(*ProcessContext) ([]any, error) {
		return nil, nil
	}})
	_, _ = g.Connect(src, sink)
	log, app, _ := runMonitored(t, g, Continuous)

	invStarts := map[string]int{}
	invEnds := map[string]int{}
	mainEnds := map[string]int{}
	for _, ev := range app.Events() {
		job := ev.Get(schema.AttrJobID)
		switch ev.Type {
		case schema.InvStart:
			invStarts[job]++
		case schema.InvEnd:
			invEnds[job]++
		case schema.MainEnd:
			mainEnds[job]++
		}
	}
	// The source runs 3 real invocations plus the stop-iteration probe
	// (start without end); the sink runs 3.
	if invEnds["chunks"] != 3 || invEnds["consume"] != 3 {
		t.Errorf("inv.ends = %v", invEnds)
	}
	if mainEnds["chunks"] != 1 || mainEnds["consume"] != 1 {
		t.Errorf("main.ends = %v (job instance must close exactly once)", mainEnds)
	}
	q := loadEvents(t, app)
	wf, _ := q.WorkflowByUUID(log.WorkflowUUID())
	jobs, _ := q.Jobs(wf.ID)
	for _, j := range jobs {
		insts, _ := q.JobInstances(j.ID)
		if len(insts) != 1 {
			t.Fatalf("%s: %d instances", j.ExecJobID, len(insts))
		}
		invs, _ := q.InvocationsForInstance(insts[0].ID)
		if len(invs) != 3 {
			t.Fatalf("%s: %d invocations, want 3", j.ExecJobID, len(invs))
		}
	}
}

func TestSubWorkflowHierarchyEvents(t *testing.T) {
	app := &CollectAppender{}
	parentLog := NewStampedeLog(app)
	parent := NewTaskGraph("parent")

	buildChild := func(inputs []any) (*TaskGraph, error) {
		child := NewTaskGraph("child")
		a := child.MustAddTask("c-work", &FuncUnit{UnitName: "c-work", Fn: func(*ProcessContext) ([]any, error) {
			return []any{"x"}, nil
		}})
		b := child.MustAddTask("c-out", &FuncUnit{UnitName: "c-out", Fn: func(ctx *ProcessContext) ([]any, error) {
			return nil, nil
		}})
		_, _ = child.Connect(a, b)
		return child, nil
	}
	parent.MustAddTask("spawn", &SubWorkflowUnit{
		UnitName:  "spawn-sub",
		Build:     buildChild,
		ParentLog: parentLog,
		Appender:  app,
		Opts:      Options{Mode: SingleStep},
	})
	s := NewScheduler(parent, Options{Mode: SingleStep, Listeners: []Listener{parentLog}})
	report, err := s.Run(context.Background())
	if err != nil || report.Err != nil {
		t.Fatalf("run: %v %v", err, report.Err)
	}

	// Find the child's plan event: it must carry the parent linkage.
	var childUUID string
	sawMap := false
	for _, ev := range app.Events() {
		if ev.Type == schema.WfPlan && ev.Get(schema.AttrParentXwf) != "" {
			if ev.Get(schema.AttrParentXwf) != parentLog.WorkflowUUID() {
				t.Errorf("child parent = %s, want %s", ev.Get(schema.AttrParentXwf), parentLog.WorkflowUUID())
			}
			childUUID = ev.Get(schema.AttrXwfID)
		}
		if ev.Type == schema.MapSubwfJob {
			sawMap = true
			if ev.Get(schema.AttrJobID) != "spawn" {
				t.Errorf("subwf mapped to job %q", ev.Get(schema.AttrJobID))
			}
		}
	}
	if childUUID == "" || !sawMap {
		t.Fatalf("hierarchy events missing: child=%q map=%v", childUUID, sawMap)
	}

	q := loadEvents(t, app)
	root, _ := q.WorkflowByUUID(parentLog.WorkflowUUID())
	subs, err := q.SubWorkflows(root.ID)
	if err != nil || len(subs) != 1 {
		t.Fatalf("subs = %d, %v", len(subs), err)
	}
	summary, _ := stats.Compute(q, root.ID, true)
	if summary.SubWorkflows.Total != 1 || summary.SubWorkflows.Succeeded != 1 {
		t.Errorf("subwf summary = %+v", summary.SubWorkflows)
	}
	if summary.Jobs.Total != 3 { // spawn + 2 child jobs
		t.Errorf("jobs total = %d", summary.Jobs.Total)
	}
}

func TestThreeLevelHierarchy(t *testing.T) {
	// Triana's model is recursive: a sub-workflow can itself spawn
	// sub-workflows. Build grandparent -> parent -> child and verify the
	// archive reconstructs the full ancestry.
	app := &CollectAppender{}
	rootLog := NewStampedeLog(app)

	leaf := func() (*TaskGraph, error) {
		g := NewTaskGraph("leaf")
		g.MustAddTask("leaf-work", &FuncUnit{UnitName: "leaf-work", Fn: func(*ProcessContext) ([]any, error) {
			return nil, nil
		}})
		return g, nil
	}
	root := NewTaskGraph("grandparent")
	midUnit := &SubWorkflowUnit{
		UnitName:  "spawn-mid",
		ParentLog: rootLog,
		Appender:  app,
		Opts:      Options{Mode: SingleStep},
		Build: func([]any) (*TaskGraph, error) {
			mid := NewTaskGraph("parent")
			// The nested unit's ParentLog is injected automatically by the
			// enclosing SubWorkflowUnit (ParentLogSetter).
			_, err := mid.AddTask("spawn-leaf", &SubWorkflowUnit{
				UnitName: "spawn-leaf",
				Build:    func([]any) (*TaskGraph, error) { return leaf() },
				Appender: app,
				Opts:     Options{Mode: SingleStep},
			})
			return mid, err
		},
	}
	root.MustAddTask("spawn", midUnit)
	s := NewScheduler(root, Options{Mode: SingleStep, Listeners: []Listener{rootLog}})
	report, err := s.Run(context.Background())
	if err != nil || report.Err != nil {
		t.Fatalf("run: %v %v", err, report.Err)
	}

	q := loadEvents(t, app)
	rootWf, _ := q.WorkflowByUUID(rootLog.WorkflowUUID())
	if rootWf == nil {
		t.Fatal("root missing")
	}
	level1, err := q.SubWorkflows(rootWf.ID)
	if err != nil || len(level1) != 1 {
		t.Fatalf("level1 = %d, %v", len(level1), err)
	}
	level2, err := q.SubWorkflows(level1[0].ID)
	if err != nil || len(level2) != 1 {
		t.Fatalf("level2 = %d, %v", len(level2), err)
	}
	if level2[0].RootUUID != rootLog.WorkflowUUID() {
		t.Errorf("grandchild root = %s, want %s", level2[0].RootUUID, rootLog.WorkflowUUID())
	}
	desc, err := q.Descendants(rootWf.ID)
	if err != nil || len(desc) != 2 {
		t.Fatalf("descendants = %d, %v", len(desc), err)
	}
	summary, err := stats.Compute(q, rootWf.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if summary.SubWorkflows.Total != 2 || summary.SubWorkflows.Succeeded != 2 {
		t.Errorf("subwf summary = %+v", summary.SubWorkflows)
	}
	// Jobs: 1 (root spawn) + 1 (mid spawn) + 1 (leaf work) = 3.
	if summary.Jobs.Total != 3 {
		t.Errorf("jobs = %+v", summary.Jobs)
	}
}

func TestScaledClockCompressesDurations(t *testing.T) {
	// A 10-virtual-second work unit on a 1000x clock: the logged
	// invocation duration must be ~10s while real time stays tiny.
	clk := wfclock.NewScaled(time.Date(2012, 3, 13, 12, 0, 0, 0, time.UTC), 1000)
	g := NewTaskGraph("scaled")
	g.MustAddTask("work", &WorkUnit{UnitName: "work", Duration: 10 * time.Second, Clock: clk})
	app := &CollectAppender{}
	log := NewStampedeLog(app)
	s := NewScheduler(g, Options{Mode: SingleStep, Clock: clk, Listeners: []Listener{log}})
	realStart := time.Now()
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if real := time.Since(realStart); real > 2*time.Second {
		t.Fatalf("scaled run took %v real", real)
	}
	for _, ev := range app.Events() {
		if ev.Type == schema.InvEnd {
			d, _ := ev.Float(schema.AttrDur)
			// Scheduling overhead is amplified 1000x by the clock; allow a
			// generous upper bound, the property under test being that the
			// modeled 10s survived compression at all.
			if d < 8 || d > 30 {
				t.Fatalf("virtual duration = %v, want ~10", d)
			}
			return
		}
	}
	t.Fatal("no inv.end event")
}

func TestBusAppenderRealtimePipeline(t *testing.T) {
	// Engine -> broker -> loader, all live; the loader consumes while the
	// workflow runs.
	broker := mq.NewBroker()
	qq, _ := broker.DeclareQueue("stampede", mq.QueueOpts{Durable: true})
	_ = broker.Bind("stampede", "stampede.#")
	a := archive.NewInMemory()
	l, _ := loader.New(a, loader.Options{Validate: true, FlushEvery: 5 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	loaderDone := make(chan loader.Stats)
	go func() {
		st, _ := l.ConsumeQueue(ctx, qq)
		loaderDone <- st
	}()

	g := simpleGraph()
	app := &BusAppender{Broker: broker}
	log := NewStampedeLog(app)
	s := NewScheduler(g, Options{Mode: SingleStep, Listeners: []Listener{log}})
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Wait for the loader to drain, then stop it.
	deadline := time.After(5 * time.Second)
	for {
		if n, _ := a.Store().Count(archive.TWorkflowState); n >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("loader never saw the workflow finish")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	st := <-loaderDone
	if st.Loaded == 0 || st.Invalid > 0 {
		t.Fatalf("loader stats = %+v", st)
	}
	q := query.New(a)
	wf, _ := q.WorkflowByUUID(log.WorkflowUUID())
	if wf == nil {
		t.Fatal("workflow missing from archive")
	}
}
