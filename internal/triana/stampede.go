package triana

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bp"
	"repro/internal/schema"
)

// StampedeLog listens for Triana execution events and converts them to
// Stampede events, implementing the paper's §V-B mapping:
//
//   - graph RUNNING        -> wf.plan, static block (task/job/edge infos,
//     1:1 task-to-job mappings), xwf.start
//   - task WOKEN           -> job_inst.submit.start / submit.end
//   - task RUNNING         -> job_inst.main.start + host.info (first time),
//     inv.start (every invocation); after PAUSED -> job_inst.held.end
//   - task PAUSED          -> job_inst.held.start
//   - task COMPLETE (inv)  -> inv.end exit 0
//   - task ERROR (inv)     -> inv.end exit -1
//   - task terminal        -> job_inst.main.term + main.end (exit 0 or -1)
//   - task SUSPENDED       -> job_inst.abort.info (when it had started)
//   - graph terminal       -> xwf.end
//
// Because Triana has no planning stage, tasks map 1:1 onto jobs; the
// StampedeLog itself fabricates the schema-compliance events (mappings,
// job descriptions) that have no direct Triana counterpart.
type StampedeLog struct {
	appender Appender

	// ParentUUID and RootUUID wire sub-workflows into the hierarchy. Both
	// empty for a top-level workflow (root becomes the run itself).
	ParentUUID string
	RootUUID   string
	// Site and Hostname identify where the run executes.
	Site     string
	Hostname string

	mu       sync.Mutex
	wfUUID   string
	started  map[string]time.Time // task -> main.start time
	invStart map[string]time.Time // task#inv -> inv.start time
	ended    map[string]bool      // task -> main.end emitted
	appErr   error
	appended int
}

// NewStampedeLog builds the listener. Register it on the scheduler with
// AddListener (or via Options.Listeners).
func NewStampedeLog(appender Appender) *StampedeLog {
	return &StampedeLog{
		appender: appender,
		Site:     "local",
		Hostname: "localhost",
		started:  map[string]time.Time{},
		invStart: map[string]time.Time{},
		ended:    map[string]bool{},
	}
}

// Err returns the first appender error encountered, if any.
func (l *StampedeLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appErr
}

// Appended returns the number of events successfully handed to the
// appender.
func (l *StampedeLog) Appended() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// WorkflowUUID returns the run's executable-workflow id once the run has
// started ("" before).
func (l *StampedeLog) WorkflowUUID() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wfUUID
}

func (l *StampedeLog) append(ev *bp.Event) {
	if err := l.appender.Append(ev); err != nil {
		if l.appErr == nil {
			l.appErr = err
		}
		return
	}
	l.appended++
}

func (l *StampedeLog) newEvent(typ string, ts time.Time) *bp.Event {
	return bp.New(typ, ts).
		Set(schema.AttrLevel, bp.LevelInfo).
		Set(schema.AttrXwfID, l.wfUUID)
}

func (l *StampedeLog) jiEvent(typ string, ts time.Time, task string) *bp.Event {
	// Triana has no retries: every job has exactly one instance.
	return l.newEvent(typ, ts).Set(schema.AttrJobID, task).SetInt(schema.AttrJobInstID, 1)
}

// OnEvent implements Listener.
func (l *StampedeLog) OnEvent(ev ExecutionEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ev.Task == nil {
		l.onGraphEvent(ev)
		return
	}
	l.onTaskEvent(ev)
}

func (l *StampedeLog) onGraphEvent(ev ExecutionEvent) {
	switch ev.New {
	case Running:
		l.wfUUID = ev.Graph.RunUUID
		l.emitPlanning(ev)
		l.append(l.newEvent(schema.XwfStart, ev.Time).SetInt("restart_count", 0))
	case Complete:
		l.append(l.newEvent(schema.XwfEnd, ev.Time).
			SetInt("restart_count", 0).SetInt(schema.AttrStatus, 0))
	case Error, Suspended:
		if l.wfUUID == "" {
			return
		}
		l.append(l.newEvent(schema.XwfEnd, ev.Time).
			SetInt("restart_count", 0).SetInt(schema.AttrStatus, -1))
	}
}

// emitPlanning records the workflow "planning" block: the Task, Edge and
// Job descriptions defined by Stampede, immediately before the task graph
// starts running.
func (l *StampedeLog) emitPlanning(ev ExecutionEvent) {
	ts := ev.Time
	root := l.RootUUID
	if root == "" {
		root = l.wfUUID
	}
	plan := l.newEvent(schema.WfPlan, ts).
		Set("submit.hostname", l.Hostname).
		Set("dax.label", ev.Graph.Name).
		Set(schema.AttrRootXwf, root)
	if l.ParentUUID != "" {
		plan.Set(schema.AttrParentXwf, l.ParentUUID)
	}
	l.append(plan)
	l.append(l.newEvent(schema.StaticStart, ts))
	for _, t := range ev.Graph.Tasks() {
		typeDesc := "unit"
		if td, ok := t.Unit.(TypeDesc); ok {
			typeDesc = td.TypeDesc()
		}
		l.append(l.newEvent(schema.TaskInfo, ts).
			Set(schema.AttrTaskID, t.Name).
			Set("type_desc", typeDesc).
			Set(schema.AttrTransform, t.Unit.Name()))
		l.append(l.newEvent(schema.JobInfo, ts).
			Set(schema.AttrJobID, t.Name).
			Set("type_desc", typeDesc).
			SetInt("clustered", 0).
			SetInt("max_retries", 0).
			Set(schema.AttrExecutable, t.Unit.Name()).
			SetInt("task_count", 1))
		// No planning stage: a one-to-one task-to-job mapping.
		l.append(l.newEvent(schema.MapTaskJob, ts).
			Set(schema.AttrTaskID, t.Name).
			Set(schema.AttrJobID, t.Name))
	}
	for _, c := range ev.Graph.Cables() {
		l.append(l.newEvent(schema.TaskEdge, ts).
			Set("parent.task.id", c.From.Name).
			Set("child.task.id", c.To.Name))
		l.append(l.newEvent(schema.JobEdge, ts).
			Set("parent.job.id", c.From.Name).
			Set("child.job.id", c.To.Name))
	}
	l.append(l.newEvent(schema.StaticEnd, ts))
}

func invKey(task string, inv int) string { return fmt.Sprintf("%s#%d", task, inv) }

func (l *StampedeLog) onTaskEvent(ev ExecutionEvent) {
	name := ev.Task.Name
	// A transition out of PAUSED is a hold release regardless of target.
	if ev.Old == Paused {
		l.append(l.jiEvent(schema.HeldEnd, ev.Time, name).SetInt(schema.AttrStatus, 0))
		if ev.New != Running {
			return
		}
	}
	switch ev.New {
	case Woken:
		// Only the first WOKEN is a submission; continuous-mode tasks
		// return to WOKEN between invocations.
		if _, submitted := l.started[name]; !submitted && !l.ended[name] {
			if !l.ended["submit#"+name] {
				l.ended["submit#"+name] = true
				l.append(l.jiEvent(schema.SubmitStart, ev.Time, name))
				l.append(l.jiEvent(schema.SubmitEnd, ev.Time, name).SetInt(schema.AttrStatus, 0))
			}
		}
	case Paused:
		l.append(l.jiEvent(schema.HeldStart, ev.Time, name))
	case Running:
		if ev.Invocation <= 0 {
			return
		}
		if _, ok := l.started[name]; !ok {
			l.started[name] = ev.Time
			l.append(l.jiEvent(schema.MainStart, ev.Time, name))
			l.append(l.jiEvent(schema.HostInfo, ev.Time, name).
				Set(schema.AttrSite, l.Site).
				Set(schema.AttrHostname, l.Hostname).
				Set("ip", "127.0.0.1"))
		}
		l.invStart[invKey(name, ev.Invocation)] = ev.Time
		l.append(l.jiEvent(schema.InvStart, ev.Time, name).SetInt(schema.AttrInvID, int64(ev.Invocation)))
	case Complete:
		if ev.Invocation > 0 {
			l.emitInvEnd(ev, 0)
		}
		if ev.Terminal && !l.ended[name] {
			// Terminal completion: close out the job instance. In
			// single-step mode this fires on the same event as the
			// invocation end.
			if _, ranAtAll := l.started[name]; ranAtAll {
				l.ended[name] = true
				l.append(l.jiEvent(schema.MainTerm, ev.Time, name).SetInt(schema.AttrStatus, 0))
				l.append(l.jiEvent(schema.MainEnd, ev.Time, name).
					SetInt(schema.AttrStatus, 0).
					SetInt(schema.AttrExitcode, 0).
					Set(schema.AttrSite, l.Site))
			}
		}
	case Error:
		if ev.Invocation > 0 {
			l.emitInvEnd(ev, -1)
		}
		if !l.ended[name] {
			l.ended[name] = true
			stderr := ""
			if ev.Err != nil {
				stderr = ev.Err.Error()
			}
			l.append(l.jiEvent(schema.MainTerm, ev.Time, name).SetInt(schema.AttrStatus, -1))
			l.append(l.jiEvent(schema.MainEnd, ev.Time, name).
				SetInt(schema.AttrStatus, -1).
				SetInt(schema.AttrExitcode, -1).
				Set(schema.AttrSite, l.Site).
				Set(schema.AttrStderrText, stderr))
		}
	case Suspended:
		if _, ranAtAll := l.started[name]; ranAtAll && !l.ended[name] {
			l.ended[name] = true
			l.append(l.jiEvent(schema.AbortInfo, ev.Time, name))
		}
	}
}

func (l *StampedeLog) emitInvEnd(ev ExecutionEvent, exit int64) {
	name := ev.Task.Name
	key := invKey(name, ev.Invocation)
	start, ok := l.invStart[key]
	if !ok {
		start = ev.Time
	}
	delete(l.invStart, key)
	dur := ev.Time.Sub(start).Seconds()
	l.append(l.jiEvent(schema.InvEnd, ev.Time, name).
		SetInt(schema.AttrInvID, int64(ev.Invocation)).
		Set(schema.AttrStartTime, start.UTC().Format(bp.TimeFormat)).
		SetFloat(schema.AttrDur, dur).
		SetInt(schema.AttrExitcode, exit).
		Set(schema.AttrTransform, ev.Task.Unit.Name()).
		Set(schema.AttrTaskID, name).
		Set(schema.AttrHostname, l.Hostname).
		Set(schema.AttrSite, l.Site))
}

// MapSubWorkflow emits the xwf.map.subwf_job event associating a child
// run with the parent job that spawned it. Sub-workflow units call this
// once the child's run UUID exists.
func (l *StampedeLog) MapSubWorkflow(jobName, childUUID string, ts time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.append(l.newEvent(schema.MapSubwfJob, ts).
		Set(schema.AttrSubwfID, childUUID).
		Set(schema.AttrJobID, jobName).
		SetInt(schema.AttrJobInstID, 1))
}
