package bp_test

import (
	"testing"

	"repro/internal/bp"
	"repro/internal/synth"
)

// FuzzParse checks that Parse never panics on arbitrary lines and that
// every line Parse accepts reaches a canonical fixed point: the parsed
// event's Format output re-parses, formats identically, and preserves the
// type and every attribute. This is the property the loader and broker
// rely on when events cross process boundaries as formatted lines.
func FuzzParse(f *testing.F) {
	// Seed with realistic lines from the deterministic trace synthesizer
	// so the fuzzer starts from the full event-type vocabulary.
	tr := synth.Generate(synth.Config{Seed: 7, Jobs: 5, Hosts: 2, FailureRate: 0.3, MaxRetries: 2})
	for i, ev := range tr.Events {
		if i >= 80 {
			break
		}
		f.Add(ev.Format())
	}
	// Hand-picked edge cases: epoch timestamps, quoting, escapes, empty
	// values, duplicate keys, whitespace runs.
	for _, s := range []string{
		`ts=2012-03-13T12:35:38.000000Z event=stampede.xwf.start xwf.id=ea17e8ac restart_count=0`,
		`ts=1331642138.25 event=x`,
		`ts=-1.5 event=x a=""`,
		`ts=0 event=x a="quoted \"value\"" b="line\nbreak" c="back\\slash"`,
		"ts=1 event=x \t a=1 \t\t b=2  a=3",
		`ts=1 event="spaced type" k==v`,
		`ts="2012-03-13T12:35:38.000000Z" event=x`,
		`ts=1e300 event=x`,
		`ts=NaN event=x`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		ev, err := bp.Parse(line)
		// ParseBytes must agree with Parse on every input: same event or
		// same rejection. The zero-copy parser shares the tokenizer, but
		// this is the property that keeps it honest if they ever split.
		bev, berr := bp.ParseBytes([]byte(line))
		if (err == nil) != (berr == nil) {
			t.Fatalf("Parse/ParseBytes disagree on %q: %v vs %v", line, err, berr)
		}
		if berr == nil {
			if bev.Type != ev.Type || !bev.TS.Equal(ev.TS) || len(bev.Attrs) != len(ev.Attrs) {
				t.Fatalf("Parse/ParseBytes events differ on %q:\n  %v\n  %v", line, ev, bev)
			}
			for i := range ev.Attrs {
				if ev.Attrs[i] != bev.Attrs[i] {
					t.Fatalf("attr %d differs on %q: %v vs %v", i, line, ev.Attrs[i], bev.Attrs[i])
				}
			}
			bp.ReleaseEvent(bev)
		}
		if err != nil {
			return // rejected input is fine; panics are not
		}
		canon := ev.Format()
		ev2, err := bp.Parse(canon)
		if err != nil {
			t.Fatalf("canonical line of %q failed to re-parse: %q: %v", line, canon, err)
		}
		if again := ev2.Format(); again != canon {
			t.Fatalf("canonical form unstable:\n first: %q\nsecond: %q", canon, again)
		}
		if ev2.Type != ev.Type {
			t.Fatalf("type changed across round-trip: %q -> %q", ev.Type, ev2.Type)
		}
		if len(ev2.Attrs) != len(ev.Attrs) {
			t.Fatalf("attr count changed: %v -> %v", ev.Attrs, ev2.Attrs)
		}
		for i := range ev.Attrs {
			k, v := ev.Attrs[i].Key, ev.Attrs[i].Val
			if got, ok := ev2.Attrs.Lookup(k); !ok || got != v {
				t.Fatalf("attr %q changed across round-trip: %q -> %q", k, v, got)
			}
		}
		// The canonical timestamp has microsecond precision; once at that
		// precision it must be exact.
		ev3, err := bp.Parse(ev2.Format())
		if err != nil {
			t.Fatal(err)
		}
		if !ev3.TS.Equal(ev2.TS) {
			t.Fatalf("timestamp drifts after canonicalisation: %v -> %v", ev2.TS, ev3.TS)
		}
	})
}
