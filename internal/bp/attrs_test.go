package bp_test

import (
	"testing"

	"repro/internal/bp"
)

func TestAttrsSetSortedAndLastWins(t *testing.T) {
	var a bp.Attrs
	a.Set("m", "1")
	a.Set("a", "2")
	a.Set("z", "3")
	a.Set("m", "4") // replace, not append
	a.Set("b", "5")
	if a.Len() != 4 {
		t.Fatalf("Len = %d, want 4: %v", a.Len(), a)
	}
	want := []bp.Pair{{"a", "2"}, {"b", "5"}, {"m", "4"}, {"z", "3"}}
	for i, p := range want {
		if a[i] != p {
			t.Fatalf("a[%d] = %v, want %v (full: %v)", i, a[i], p, a)
		}
	}
	if got := a.Get("m"); got != "4" {
		t.Fatalf("Get(m) = %q, want 4 (last write wins)", got)
	}
	if _, ok := a.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) reported present")
	}
	if a.Get("missing") != "" {
		t.Fatal("Get(missing) not empty")
	}
}

func TestAttrsClone(t *testing.T) {
	var a bp.Attrs
	a.Set("k", "v")
	c := a.Clone()
	c.Set("k", "changed")
	if a.Get("k") != "v" {
		t.Fatal("Clone shares backing array with original")
	}
	if bp.Attrs(nil).Clone() != nil {
		t.Fatal("Clone of nil should stay nil")
	}
}

func TestDuplicateKeysLastWins(t *testing.T) {
	// The map representation gave duplicate keys last-write-wins
	// semantics; the slice representation must preserve that.
	ev, err := bp.Parse("ts=1 event=x a=1 b=2 a=3")
	if err != nil {
		t.Fatal(err)
	}
	if got := ev.Get("a"); got != "3" {
		t.Fatalf("duplicate key: Get(a) = %q, want 3", got)
	}
	if ev.Attrs.Len() != 2 {
		t.Fatalf("attr count = %d, want 2: %v", ev.Attrs.Len(), ev.Attrs)
	}
}

func TestInternCanonicalises(t *testing.T) {
	// Two separately-built equal strings must intern to one instance.
	s1 := bp.Intern(string([]byte("intern.test.key.1")))
	s2 := bp.Intern(string([]byte("intern.test.key.1")))
	if s1 != s2 {
		t.Fatal("interned strings differ in value")
	}
	// Oversized strings pass through untouched.
	big := string(make([]byte, 100))
	if bp.Intern(big) != big {
		t.Fatal("oversized string should pass through")
	}
	if bp.Intern("") != "" {
		t.Fatal("empty string should pass through")
	}
}

func TestPoolRoundTrip(t *testing.T) {
	ev := bp.GetEvent()
	ev.Type = "x"
	ev.Attrs.Set("k", "v")
	clone := ev.Clone()
	bp.ReleaseEvent(ev)
	if clone.Type != "x" || clone.Get("k") != "v" {
		t.Fatalf("clone corrupted by release: %v", clone)
	}
	// A fresh get must hand back an empty event even if it recycled ev.
	ev2 := bp.GetEvent()
	if ev2.Type != "" || ev2.Attrs.Len() != 0 || !ev2.TS.IsZero() {
		t.Fatalf("pooled event not reset: %v", ev2)
	}
	bp.ReleaseEvent(ev2)
	bp.ReleaseEvent(nil) // tolerated

	hits, misses, returns := bp.PoolStats()
	if hits+misses == 0 || returns == 0 {
		t.Fatalf("pool stats not counting: hits=%d misses=%d returns=%d", hits, misses, returns)
	}
}

func TestParseBytesReleasesOnError(t *testing.T) {
	_, _, before := bp.PoolStats()
	if _, err := bp.ParseBytes([]byte("not a bp line")); err == nil {
		t.Fatal("want error")
	}
	_, _, after := bp.PoolStats()
	if after != before+1 {
		t.Fatalf("ParseBytes leaked the pooled event on error: returns %d -> %d", before, after)
	}
}

func TestParseTime(t *testing.T) {
	for _, v := range []string{
		"2012-03-13T12:35:38.000000Z",
		"2012-03-13T12:35:38.123456Z",
		"2012-03-13T12:35:38Z",
		"1331642138.25",
		"0",
	} {
		ts, err := bp.ParseTime(v)
		if err != nil {
			t.Fatalf("ParseTime(%q): %v", v, err)
		}
		if ts.IsZero() && v != "0001-01-01T00:00:00.000000Z" {
			// epoch 0 is 1970, not the zero time
			if v == "0" && ts.Unix() != 0 {
				t.Fatalf("ParseTime(0) = %v", ts)
			}
		}
	}
	// The fixed-width fast path must agree with time.Parse exactly.
	canon := "2016-02-29T23:59:59.999999Z"
	ts, err := bp.ParseTime(canon)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.UTC().Format(bp.TimeFormat); got != canon {
		t.Fatalf("fast path round-trip: %q -> %q", canon, got)
	}
	for _, bad := range []string{"", "NaN", "+Inf", "1e300", "2012-13-40T00:00:00.000000Z", "not-a-time"} {
		if _, err := bp.ParseTime(bad); err == nil {
			t.Fatalf("ParseTime(%q) accepted", bad)
		}
	}
}
