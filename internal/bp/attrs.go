package bp

// Attrs is the event attribute set: a small slice of key=value pairs kept
// sorted by key. Stampede events carry a closed vocabulary of at most a
// dozen-ish attributes, so a sorted slice beats a map on every axis the
// loader hot path cares about: one backing allocation (reused across pool
// recycles) instead of a header plus buckets, cache-line locality on
// lookup, and an iteration order that is already the deterministic order
// Format needs — no per-Format key sort.
//
// The zero value is ready to use. Lookups are linear: for n <= 16 a scan
// is faster than both binary search and map hashing.
type Attrs []Pair

// Pair is one attribute.
type Pair struct {
	Key, Val string
}

// Len reports the number of attributes.
func (a Attrs) Len() int { return len(a) }

// Get returns the value for key, or "" when absent.
func (a Attrs) Get(key string) string {
	for i := range a {
		if a[i].Key == key {
			return a[i].Val
		}
	}
	return ""
}

// Lookup returns the value for key and whether it is present.
func (a Attrs) Lookup(key string) (string, bool) {
	for i := range a {
		if a[i].Key == key {
			return a[i].Val, true
		}
	}
	return "", false
}

// Has reports whether key is present.
func (a Attrs) Has(key string) bool {
	_, ok := a.Lookup(key)
	return ok
}

// Set stores key=val, replacing any existing value (last write wins, the
// same semantics the old map representation had for duplicate keys).
// Insertion keeps the slice sorted; appending already-sorted input — the
// canonical order Format emits — is the no-move fast path.
func (a *Attrs) Set(key, val string) {
	s := *a
	// Fast path: key sorts at (or replaces) the end.
	if n := len(s); n == 0 || s[n-1].Key < key {
		*a = append(s, Pair{key, val})
		return
	}
	for i := range s {
		if s[i].Key == key {
			s[i].Val = val
			return
		}
		if s[i].Key > key {
			s = append(s, Pair{})
			copy(s[i+1:], s[i:])
			s[i] = Pair{key, val}
			*a = s
			return
		}
	}
	*a = append(s, Pair{key, val})
}

// Clone returns an independent copy of the attribute set.
func (a Attrs) Clone() Attrs {
	if a == nil {
		return nil
	}
	return append(Attrs(nil), a...)
}
