package bp

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event pooling for the ingest hot path. ParseBytes (and Reader in pooled
// mode) draws Event structs and their Attrs backing arrays from a
// process-wide sync.Pool; the loader returns them with ReleaseEvent once
// the apply shard has committed the batch they rode in.
//
// Ownership rules:
//
//   - A pooled event is owned by exactly one goroutine at a time; the
//     pipeline hands ownership along with the pointer (parse stage →
//     validator → apply shard).
//   - After ReleaseEvent the pointer must not be touched; the struct and
//     its Attrs slice will be rewritten by an unrelated parse.
//   - The event's strings (Type, attr keys and values) are immutable and
//     GC-managed — they are never recycled. Code that extracts strings
//     (the archive folding values into rows) may retain them past the
//     event's release with no copy.
//   - Retaining the *Event itself past release requires Clone, which
//     escapes the pool by deep-copying into GC-managed memory.
//
// ReleaseEvent accepts any event, pooled or not; releasing is always an
// ownership assertion, never a type distinction.

var eventPool = sync.Pool{New: func() any {
	poolMisses.Add(1)
	return new(Event)
}}

var (
	poolGets   atomic.Uint64
	poolMisses atomic.Uint64
	poolPuts   atomic.Uint64
)

// attrsKeepCap bounds the Attrs capacity a released event may carry back
// into the pool, so one pathological wide event cannot pin a large array
// forever.
const attrsKeepCap = 64

// GetEvent returns an empty event from the pool. See the ownership rules
// above; pair it with ReleaseEvent.
func GetEvent() *Event {
	poolGets.Add(1)
	return eventPool.Get().(*Event)
}

// ReleaseEvent resets e and returns it to the pool. The caller must not
// use e afterwards. Nil is tolerated.
func ReleaseEvent(e *Event) {
	if e == nil {
		return
	}
	e.TS = time.Time{}
	e.Type = ""
	e.TraceID = 0
	e.TraceNS = 0
	if cap(e.Attrs) > attrsKeepCap {
		e.Attrs = nil
	} else {
		e.Attrs = e.Attrs[:0]
	}
	poolPuts.Add(1)
	eventPool.Put(e)
}

// PoolStats reports cumulative event-pool traffic: gets that were served
// by recycling (hits), gets that had to allocate (misses), and events
// returned. The loader exposes these as telemetry gauges.
func PoolStats() (hits, misses, returns uint64) {
	g, m, p := poolGets.Load(), poolMisses.Load(), poolPuts.Load()
	if g < m {
		g = m
	}
	return g - m, m, p
}
