package bp

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestReaderSkipsBlanksAndComments(t *testing.T) {
	in := strings.Join([]string{
		"# header comment",
		"",
		"ts=2012-03-13T12:35:38.000000Z event=a",
		"   ",
		"# another",
		"ts=2012-03-13T12:35:39.000000Z event=b",
	}, "\n")
	r := NewReader(strings.NewReader(in))
	evs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Type != "a" || evs[1].Type != "b" {
		t.Fatalf("got %d events", len(evs))
	}
}

func TestReaderStrictFailsWithLineNumber(t *testing.T) {
	in := "ts=2012-03-13T12:35:38.000000Z event=a\ngarbage line\n"
	r := NewReader(strings.NewReader(in))
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Read()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2 mention", err)
	}
}

func TestReaderLenientSkips(t *testing.T) {
	in := "garbage\nts=2012-03-13T12:35:38.000000Z event=a\nmore garbage\n"
	r := NewReader(strings.NewReader(in))
	r.SetLenient(true)
	evs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || r.Skipped() != 2 {
		t.Fatalf("events=%d skipped=%d", len(evs), r.Skipped())
	}
}

func TestWriterReaderPipeline(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	base := time.Date(2012, 3, 13, 12, 35, 38, 0, time.UTC)
	const n = 100
	for i := 0; i < n; i++ {
		e := New("stampede.inv.end", base.Add(time.Duration(i)*time.Second)).
			SetInt("inv.id", int64(i)).
			Set("stdout", "line one\nline two")
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != n {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	evs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != n {
		t.Fatalf("read %d events, want %d", len(evs), n)
	}
	if got := evs[42].Get("stdout"); got != "line one\nline two" {
		t.Fatalf("multiline value corrupted: %q", got)
	}
}

func TestWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e := New("x", time.Unix(int64(i), 0)).SetInt("g", int64(g))
				if err := w.Write(e); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("interleaved writes corrupted stream: %v", err)
	}
	if len(evs) != workers*per {
		t.Fatalf("got %d events, want %d", len(evs), workers*per)
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestReaderLongLine(t *testing.T) {
	long := strings.Repeat("x", 200_000)
	in := "ts=2012-03-13T12:35:38.000000Z event=a payload=" + long + "\n"
	evs, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || len(evs[0].Get("payload")) != 200_000 {
		t.Fatal("long line mangled")
	}
}
