// Package bp implements the NetLogger "Logging Best Practices" (BP) log
// format used by Stampede for every monitoring message.
//
// A BP message is a single line of space-separated key=value pairs, e.g.
//
//	ts=2012-03-13T12:35:38.000000Z event=stampede.xwf.start level=Info \
//	    xwf.id=ea17e8ac-02ac-4909-b5e3-16e367392556 restart_count=0
//
// Two attributes are special: "ts", an ISO 8601 timestamp (or seconds
// since the epoch), and "event", a dot-separated hierarchical type name
// that the message bus routes on. Values containing spaces, quotes or '='
// are double-quoted with backslash escaping.
//
// The package provides the Event value type, single-line Format/Parse, and
// buffered stream Reader/Writer types for log files and sockets.
package bp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// TimeFormat is the canonical BP timestamp layout: ISO 8601 in UTC with
// microsecond precision, as emitted by the NetLogger toolkit.
const TimeFormat = "2006-01-02T15:04:05.000000Z"

// Reserved attribute names with dedicated struct fields on Event.
const (
	KeyTS    = "ts"
	KeyEvent = "event"
)

// Level values conventionally carried in the "level" attribute.
const (
	LevelInfo  = "Info"
	LevelWarn  = "Warn"
	LevelError = "Error"
	LevelDebug = "Debug"
)

// Event is one BP log message: a timestamp, a hierarchical event type, and
// a flat set of string attributes. Attrs never contains the "ts" or
// "event" keys; those live in the dedicated fields.
type Event struct {
	TS    time.Time
	Type  string
	Attrs map[string]string
}

// New returns an Event of the given type at the given time with no
// attributes yet.
func New(typ string, ts time.Time) *Event {
	return &Event{TS: ts, Type: typ, Attrs: make(map[string]string, 8)}
}

// Set stores a string attribute and returns the event for chaining.
// Setting "ts" or "event" through Set is a programming error and panics.
func (e *Event) Set(key, value string) *Event {
	if key == KeyTS || key == KeyEvent {
		panic("bp: use the TS/Type fields for " + key)
	}
	if e.Attrs == nil {
		e.Attrs = make(map[string]string, 8)
	}
	e.Attrs[key] = value
	return e
}

// SetInt stores an integer attribute.
func (e *Event) SetInt(key string, v int64) *Event { return e.Set(key, strconv.FormatInt(v, 10)) }

// SetFloat stores a float attribute with the compact formatting NetLogger
// uses (no exponent for typical durations).
func (e *Event) SetFloat(key string, v float64) *Event {
	return e.Set(key, strconv.FormatFloat(v, 'f', -1, 64))
}

// Get returns the attribute value, or "" when absent.
func (e *Event) Get(key string) string { return e.Attrs[key] }

// Has reports whether the attribute is present.
func (e *Event) Has(key string) bool { _, ok := e.Attrs[key]; return ok }

// Int parses the attribute as a base-10 integer.
func (e *Event) Int(key string) (int64, error) {
	v, ok := e.Attrs[key]
	if !ok {
		return 0, fmt.Errorf("bp: attribute %q missing on %s", key, e.Type)
	}
	return strconv.ParseInt(v, 10, 64)
}

// Float parses the attribute as a float64.
func (e *Event) Float(key string) (float64, error) {
	v, ok := e.Attrs[key]
	if !ok {
		return 0, fmt.Errorf("bp: attribute %q missing on %s", key, e.Type)
	}
	return strconv.ParseFloat(v, 64)
}

// Clone returns a deep copy of the event.
func (e *Event) Clone() *Event {
	c := &Event{TS: e.TS, Type: e.Type, Attrs: make(map[string]string, len(e.Attrs))}
	for k, v := range e.Attrs {
		c.Attrs[k] = v
	}
	return c
}

// Format renders the event as one BP line without a trailing newline.
// "ts" and "event" come first, then the remaining attributes in sorted
// order so output is deterministic and diff-able.
func (e *Event) Format() string {
	var b strings.Builder
	b.Grow(64 + 24*len(e.Attrs))
	b.WriteString(KeyTS)
	b.WriteByte('=')
	b.WriteString(e.TS.UTC().Format(TimeFormat))
	b.WriteByte(' ')
	b.WriteString(KeyEvent)
	b.WriteByte('=')
	// Event types are dot-separated identifiers in practice, but quote
	// defensively so any parsed event formats back to a parseable line.
	writeValue(&b, e.Type)
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteByte('=')
		writeValue(&b, e.Attrs[k])
	}
	return b.String()
}

// String implements fmt.Stringer as an alias of Format.
func (e *Event) String() string { return e.Format() }

func needsQuoting(v string) bool {
	if v == "" {
		return true
	}
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case ' ', '\t', '"', '=', '\n', '\r', '\\':
			return true
		}
	}
	return false
}

func writeValue(b *strings.Builder, v string) {
	if !needsQuoting(v) {
		b.WriteString(v)
		return
	}
	b.WriteByte('"')
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '"', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
}

// Parse decodes one BP line. Both the ISO 8601 layout and fractional
// seconds-since-epoch timestamps are accepted, matching NetLogger's
// tolerance. Lines missing ts or event are rejected.
func Parse(line string) (*Event, error) {
	e := &Event{Attrs: make(map[string]string, 8)}
	i := 0
	n := len(line)
	sawTS, sawEvent := false, false
	for i < n {
		// Skip inter-pair whitespace.
		for i < n && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= n {
			break
		}
		// Key runs to '='.
		ks := i
		for i < n && line[i] != '=' && line[i] != ' ' {
			i++
		}
		if i >= n || line[i] != '=' {
			return nil, fmt.Errorf("bp: malformed pair at byte %d of %q", ks, truncate(line))
		}
		key := line[ks:i]
		if key == "" {
			return nil, fmt.Errorf("bp: empty key at byte %d of %q", ks, truncate(line))
		}
		i++ // consume '='
		var val string
		if i < n && line[i] == '"' {
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				c := line[i]
				if c == '\\' && i+1 < n {
					switch nxt := line[i+1]; nxt {
					case 'n':
						sb.WriteByte('\n')
					case 'r':
						sb.WriteByte('\r')
					case '"', '\\':
						sb.WriteByte(nxt)
					default:
						sb.WriteByte('\\')
						sb.WriteByte(nxt)
					}
					i += 2
					continue
				}
				if c == '"' {
					i++
					closed = true
					break
				}
				sb.WriteByte(c)
				i++
			}
			if !closed {
				return nil, fmt.Errorf("bp: unterminated quote in %q", truncate(line))
			}
			val = sb.String()
		} else {
			vs := i
			for i < n && line[i] != ' ' && line[i] != '\t' {
				i++
			}
			val = line[vs:i]
		}
		switch key {
		case KeyTS:
			ts, err := parseTS(val)
			if err != nil {
				return nil, err
			}
			e.TS = ts
			sawTS = true
		case KeyEvent:
			if val == "" {
				return nil, fmt.Errorf("bp: empty event type in %q", truncate(line))
			}
			e.Type = val
			sawEvent = true
		default:
			e.Attrs[key] = val
		}
	}
	if !sawTS {
		return nil, fmt.Errorf("bp: missing ts in %q", truncate(line))
	}
	if !sawEvent {
		return nil, fmt.Errorf("bp: missing event in %q", truncate(line))
	}
	return e, nil
}

func parseTS(v string) (time.Time, error) {
	if t, err := time.Parse(time.RFC3339Nano, v); err == nil {
		return t.UTC(), nil
	}
	if t, err := time.Parse(TimeFormat, v); err == nil {
		return t.UTC(), nil
	}
	// Seconds since the epoch, possibly fractional. The range check keeps
	// the result inside years 1–9999 (and rejects NaN/±Inf), so every
	// accepted timestamp can be re-formatted as ISO 8601 and re-parsed.
	const minEpoch, maxEpoch = -62135596800, 253402300799
	if f, err := strconv.ParseFloat(v, 64); err == nil {
		if !(f >= minEpoch && f <= maxEpoch) { // negated so NaN is rejected too
			return time.Time{}, fmt.Errorf("bp: epoch timestamp %q out of range", v)
		}
		sec := int64(f)
		nsec := int64((f - float64(sec)) * 1e9)
		return time.Unix(sec, nsec).UTC(), nil
	}
	return time.Time{}, fmt.Errorf("bp: unparseable timestamp %q", v)
}

func truncate(s string) string {
	if len(s) > 120 {
		return s[:120] + "..."
	}
	return s
}
