// Package bp implements the NetLogger "Logging Best Practices" (BP) log
// format used by Stampede for every monitoring message.
//
// A BP message is a single line of space-separated key=value pairs, e.g.
//
//	ts=2012-03-13T12:35:38.000000Z event=stampede.xwf.start level=Info \
//	    xwf.id=ea17e8ac-02ac-4909-b5e3-16e367392556 restart_count=0
//
// Two attributes are special: "ts", an ISO 8601 timestamp (or seconds
// since the epoch), and "event", a dot-separated hierarchical type name
// that the message bus routes on. Values containing spaces, quotes or '='
// are double-quoted with backslash escaping.
//
// The package provides the Event value type, single-line Format/Parse, and
// buffered stream Reader/Writer types for log files and sockets.
//
// The decode path is built for the loader's throughput target: ParseBytes
// tokenizes without splitting, attr keys and event types are interned
// (one allocation per process, not per event), values are zero-copy
// slices of a single retained backing string, and events recycle through
// a sync.Pool (see pool.go for the ownership rules).
package bp

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// TimeFormat is the canonical BP timestamp layout: ISO 8601 in UTC with
// microsecond precision, as emitted by the NetLogger toolkit.
const TimeFormat = "2006-01-02T15:04:05.000000Z"

// Reserved attribute names with dedicated struct fields on Event.
const (
	KeyTS    = "ts"
	KeyEvent = "event"
)

// Level values conventionally carried in the "level" attribute.
const (
	LevelInfo  = "Info"
	LevelWarn  = "Warn"
	LevelError = "Error"
	LevelDebug = "Debug"
)

// Event is one BP log message: a timestamp, a hierarchical event type, and
// a flat set of string attributes. Attrs never contains the "ts" or
// "event" keys; those live in the dedicated fields.
type Event struct {
	TS    time.Time
	Type  string
	Attrs Attrs

	// Trace context for the sampled-event tracing layer (internal/trace).
	// TraceID is the deterministic hash of the event's raw line, 0 when
	// the event is unsampled; TraceNS is the Unix-nanosecond boundary of
	// the last recorded stage. Both ride the pooled event through the
	// pipeline and are reset by ReleaseEvent. bp itself never reads them.
	TraceID uint64
	TraceNS int64
}

// New returns an Event of the given type at the given time with no
// attributes yet.
func New(typ string, ts time.Time) *Event {
	return &Event{TS: ts, Type: typ, Attrs: make(Attrs, 0, 8)}
}

// Set stores a string attribute and returns the event for chaining.
// Setting "ts" or "event" through Set is a programming error and panics.
func (e *Event) Set(key, value string) *Event {
	if key == KeyTS || key == KeyEvent {
		panic("bp: use the TS/Type fields for " + key)
	}
	e.Attrs.Set(key, value)
	return e
}

// SetInt stores an integer attribute.
func (e *Event) SetInt(key string, v int64) *Event { return e.Set(key, strconv.FormatInt(v, 10)) }

// SetFloat stores a float attribute with the compact formatting NetLogger
// uses (no exponent for typical durations).
func (e *Event) SetFloat(key string, v float64) *Event {
	return e.Set(key, strconv.FormatFloat(v, 'f', -1, 64))
}

// Get returns the attribute value, or "" when absent.
func (e *Event) Get(key string) string { return e.Attrs.Get(key) }

// Lookup returns the attribute value and whether it is present.
func (e *Event) Lookup(key string) (string, bool) { return e.Attrs.Lookup(key) }

// Has reports whether the attribute is present.
func (e *Event) Has(key string) bool { return e.Attrs.Has(key) }

// Int parses the attribute as a base-10 integer.
func (e *Event) Int(key string) (int64, error) {
	v, ok := e.Attrs.Lookup(key)
	if !ok {
		return 0, fmt.Errorf("bp: attribute %q missing on %s", key, e.Type)
	}
	return strconv.ParseInt(v, 10, 64)
}

// IntOr parses the attribute as a base-10 integer, returning def when the
// attribute is absent or malformed. Unlike Int it allocates nothing on
// the miss path, so hot callers that discard the error use it.
func (e *Event) IntOr(key string, def int64) int64 {
	v, ok := e.Attrs.Lookup(key)
	if !ok {
		return def
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return def
	}
	return n
}

// Float parses the attribute as a float64.
func (e *Event) Float(key string) (float64, error) {
	v, ok := e.Attrs.Lookup(key)
	if !ok {
		return 0, fmt.Errorf("bp: attribute %q missing on %s", key, e.Type)
	}
	return strconv.ParseFloat(v, 64)
}

// Clone returns a deep copy of the event. For a pooled event this is the
// escape hatch: the copy is ordinary GC-managed memory that survives
// ReleaseEvent of the original.
func (e *Event) Clone() *Event {
	return &Event{TS: e.TS, Type: e.Type, Attrs: e.Attrs.Clone(),
		TraceID: e.TraceID, TraceNS: e.TraceNS}
}

// Format renders the event as one BP line without a trailing newline.
// "ts" and "event" come first, then the remaining attributes in sorted
// order so output is deterministic and diff-able. Attrs is stored sorted,
// so no per-call key sort is needed.
func (e *Event) Format() string {
	var b strings.Builder
	b.Grow(64 + 24*len(e.Attrs))
	b.WriteString(KeyTS)
	b.WriteByte('=')
	b.WriteString(e.TS.UTC().Format(TimeFormat))
	b.WriteByte(' ')
	b.WriteString(KeyEvent)
	b.WriteByte('=')
	// Event types are dot-separated identifiers in practice, but quote
	// defensively so any parsed event formats back to a parseable line.
	writeValue(&b, e.Type)
	for i := range e.Attrs {
		b.WriteByte(' ')
		b.WriteString(e.Attrs[i].Key)
		b.WriteByte('=')
		writeValue(&b, e.Attrs[i].Val)
	}
	return b.String()
}

// String implements fmt.Stringer as an alias of Format.
func (e *Event) String() string { return e.Format() }

func needsQuoting(v string) bool {
	if v == "" {
		return true
	}
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case ' ', '\t', '"', '=', '\n', '\r', '\\':
			return true
		}
	}
	return false
}

func writeValue(b *strings.Builder, v string) {
	if !needsQuoting(v) {
		b.WriteString(v)
		return
	}
	b.WriteByte('"')
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '"', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
}

// Parse decodes one BP line. Both the ISO 8601 layout and fractional
// seconds-since-epoch timestamps are accepted, matching NetLogger's
// tolerance. Lines missing ts or event are rejected.
//
// The returned event is ordinary GC-managed memory owned by the caller;
// its attr values are zero-copy slices of line. Streaming consumers that
// can honour the pool ownership rules should prefer ParseBytes.
func Parse(line string) (*Event, error) {
	e := &Event{}
	if err := e.parseLine(line); err != nil {
		return nil, err
	}
	return e, nil
}

// ParseBytes decodes one BP line from a byte slice without tokenization
// copies: the line is copied once into a retained backing string and
// every value is a slice of it, keys and the event type resolve through
// the intern table, and the Event struct plus its Attrs array come from
// the event pool. The caller owns the result and must ReleaseEvent it
// (or Clone to escape); see pool.go. line itself may be reused by the
// caller immediately — steady-state cost is the one backing allocation.
func ParseBytes(line []byte) (*Event, error) {
	e := GetEvent()
	if err := e.parseLine(string(line)); err != nil {
		ReleaseEvent(e)
		return nil, err
	}
	return e, nil
}

// parseLine tokenizes one line into e, which must be empty. Values are
// substrings of line; keys and the event type are interned.
func (e *Event) parseLine(line string) error {
	i := 0
	n := len(line)
	sawTS, sawEvent := false, false
	for i < n {
		// Skip inter-pair whitespace.
		for i < n && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= n {
			break
		}
		// Key runs to '='.
		ks := i
		for i < n && line[i] != '=' && line[i] != ' ' {
			i++
		}
		if i >= n || line[i] != '=' {
			return fmt.Errorf("bp: malformed pair at byte %d of %q", ks, truncate(line))
		}
		key := line[ks:i]
		if key == "" {
			return fmt.Errorf("bp: empty key at byte %d of %q", ks, truncate(line))
		}
		i++ // consume '='
		var val string
		if i < n && line[i] == '"' {
			i++
			vs := i
			// Scan ahead: a quoted run without backslashes is the common
			// case and needs no unescape buffer — slice it directly.
			for i < n && line[i] != '"' && line[i] != '\\' {
				i++
			}
			if i < n && line[i] == '"' {
				val = line[vs:i]
				i++
			} else {
				var err error
				val, i, err = unquoteSlow(line, vs)
				if err != nil {
					return err
				}
			}
		} else {
			vs := i
			for i < n && line[i] != ' ' && line[i] != '\t' {
				i++
			}
			val = line[vs:i]
		}
		switch key {
		case KeyTS:
			ts, err := ParseTime(val)
			if err != nil {
				return err
			}
			e.TS = ts
			sawTS = true
		case KeyEvent:
			if val == "" {
				return fmt.Errorf("bp: empty event type in %q", truncate(line))
			}
			e.Type = Intern(val)
			sawEvent = true
		default:
			e.Attrs.Set(Intern(key), internHit(val))
		}
	}
	if !sawTS {
		return fmt.Errorf("bp: missing ts in %q", truncate(line))
	}
	if !sawEvent {
		return fmt.Errorf("bp: missing event in %q", truncate(line))
	}
	return nil
}

// unquoteSlow finishes a quoted value that contains escapes, starting
// from the value's first byte at vs (the opening quote already consumed).
// It returns the unescaped value and the index after the closing quote.
func unquoteSlow(line string, vs int) (string, int, error) {
	n := len(line)
	var sb strings.Builder
	i := vs
	for i < n {
		c := line[i]
		if c == '\\' && i+1 < n {
			switch nxt := line[i+1]; nxt {
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case '"', '\\':
				sb.WriteByte(nxt)
			default:
				sb.WriteByte('\\')
				sb.WriteByte(nxt)
			}
			i += 2
			continue
		}
		if c == '"' {
			return sb.String(), i + 1, nil
		}
		sb.WriteByte(c)
		i++
	}
	return "", i, fmt.Errorf("bp: unterminated quote in %q", truncate(line))
}

// ParseTime decodes a BP timestamp value: the canonical ISO 8601 layout
// (via an allocation-free fixed-width fast path), any RFC 3339 variant,
// or fractional seconds since the epoch. Exported so consumers of
// timestamp-valued attributes (the archive's inv.end start_time) can
// reuse the loader's tolerance without formatting a synthetic line.
func ParseTime(v string) (time.Time, error) {
	if t, ok := parseCanonicalTS(v); ok {
		return t, nil
	}
	if t, err := time.Parse(time.RFC3339Nano, v); err == nil {
		return t.UTC(), nil
	}
	if t, err := time.Parse(TimeFormat, v); err == nil {
		return t.UTC(), nil
	}
	// Seconds since the epoch, possibly fractional. The range check keeps
	// the result inside years 1–9999 (and rejects NaN/±Inf), so every
	// accepted timestamp can be re-formatted as ISO 8601 and re-parsed.
	const minEpoch, maxEpoch = -62135596800, 253402300799
	if f, err := strconv.ParseFloat(v, 64); err == nil {
		if !(f >= minEpoch && f <= maxEpoch) { // negated so NaN is rejected too
			return time.Time{}, fmt.Errorf("bp: epoch timestamp %q out of range", v)
		}
		sec := int64(f)
		nsec := int64((f - float64(sec)) * 1e9)
		return time.Unix(sec, nsec).UTC(), nil
	}
	return time.Time{}, fmt.Errorf("bp: unparseable timestamp %q", v)
}

// parseCanonicalTS decodes exactly the TimeFormat layout
// ("2006-01-02T15:04:05.000000Z", 27 bytes) without going through
// time.Parse. Every timestamp the toolchain itself emits takes this path.
func parseCanonicalTS(v string) (time.Time, bool) {
	if len(v) != 27 || v[4] != '-' || v[7] != '-' || v[10] != 'T' ||
		v[13] != ':' || v[16] != ':' || v[19] != '.' || v[26] != 'Z' {
		return time.Time{}, false
	}
	num := func(s string) (int, bool) {
		n := 0
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c < '0' || c > '9' {
				return 0, false
			}
			n = n*10 + int(c-'0')
		}
		return n, true
	}
	year, ok1 := num(v[0:4])
	month, ok2 := num(v[5:7])
	day, ok3 := num(v[8:10])
	hour, ok4 := num(v[11:13])
	min, ok5 := num(v[14:16])
	sec, ok6 := num(v[17:19])
	micro, ok7 := num(v[20:26])
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7) {
		return time.Time{}, false
	}
	if month < 1 || month > 12 || day < 1 || day > daysIn(year, month) ||
		hour > 23 || min > 59 || sec > 59 {
		// Out-of-range components (leap seconds, "2012-13-40") fall back
		// to time.Parse so acceptance matches the pre-fast-path parser.
		return time.Time{}, false
	}
	return time.Date(year, time.Month(month), day, hour, min, sec, micro*1000, time.UTC), true
}

func daysIn(year, month int) int {
	switch month {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	}
	if year%4 == 0 && (year%100 != 0 || year%400 == 0) {
		return 29
	}
	return 28
}

func truncate(s string) string {
	if len(s) > 120 {
		return s[:120] + "..."
	}
	return s
}
