//go:build !race

package bp_test

import (
	"testing"

	"repro/internal/bp"
)

// The race detector instruments allocations and sync.Pool behaviour, so
// the enforced ceilings only run in normal builds; the race CI step still
// compiles this file's package without them.

// TestParseBytesAllocCeiling pins the steady-state allocation cost of the
// zero-copy parse path: one backing-string copy of the line, nothing
// else. If a change re-introduces per-pair or per-event allocations the
// ceiling fails before the benchmark numbers ever regress.
func TestParseBytesAllocCeiling(t *testing.T) {
	line := []byte(`ts=2012-03-13T12:35:38.123456Z event=stampede.job_inst.main.end level=Info ` +
		`xwf.id=ea17e8ac-02ac-4909-b5e3-16e367392556 job.id=merge_j3 job_inst.id=7 ` +
		`js.id=5 sched.id=39.0 status=0 exitcode=0 multiplier_factor=1`)
	// Warm the pool and the intern table: first sight of each key inserts
	// a canonical copy, steady state only looks it up.
	for i := 0; i < 64; i++ {
		ev, err := bp.ParseBytes(line)
		if err != nil {
			t.Fatal(err)
		}
		bp.ReleaseEvent(ev)
	}
	avg := testing.AllocsPerRun(1000, func() {
		ev, err := bp.ParseBytes(line)
		if err != nil {
			t.Fatal(err)
		}
		bp.ReleaseEvent(ev)
	})
	// 1 = the string(line) copy every value slices into. Allow one slop
	// allocation for runtime noise, no more.
	if avg > 2 {
		t.Errorf("ParseBytes allocates %.1f/op in steady state, want <= 2", avg)
	}
}

// TestFormatAllocCeiling keeps the encode side honest too: Format over a
// sorted Attrs slice needs exactly one builder growth.
func TestFormatAllocCeiling(t *testing.T) {
	ev, err := bp.Parse(`ts=2012-03-13T12:35:38.123456Z event=stampede.xwf.start level=Info ` +
		`xwf.id=ea17e8ac-02ac-4909-b5e3-16e367392556 restart_count=0`)
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(1000, func() {
		_ = ev.Format()
	})
	if avg > 2 {
		t.Errorf("Format allocates %.1f/op, want <= 2 (no per-call key sort)", avg)
	}
}
