package bp

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var ts0 = time.Date(2012, 3, 13, 12, 35, 38, 0, time.UTC)

func TestFormatPaperExample(t *testing.T) {
	e := New("stampede.xwf.start", ts0).
		Set("level", "Info").
		Set("xwf.id", "ea17e8ac-02ac-4909-b5e3-16e367392556").
		SetInt("restart_count", 0)
	got := e.Format()
	want := "ts=2012-03-13T12:35:38.000000Z event=stampede.xwf.start " +
		"level=Info restart_count=0 xwf.id=ea17e8ac-02ac-4909-b5e3-16e367392556"
	if got != want {
		t.Fatalf("Format:\n got  %q\n want %q", got, want)
	}
}

func TestParsePaperExample(t *testing.T) {
	line := "ts=2012-03-13T12:35:38.000000Z event=stampede.xwf.start " +
		"level=Info xwf.id=ea17e8ac-02ac-4909-b5e3-16e367392556 restart_count=0"
	e, err := Parse(line)
	if err != nil {
		t.Fatal(err)
	}
	if e.Type != "stampede.xwf.start" {
		t.Errorf("Type = %q", e.Type)
	}
	if !e.TS.Equal(ts0) {
		t.Errorf("TS = %v, want %v", e.TS, ts0)
	}
	if got := e.Get("xwf.id"); got != "ea17e8ac-02ac-4909-b5e3-16e367392556" {
		t.Errorf("xwf.id = %q", got)
	}
	if n, err := e.Int("restart_count"); err != nil || n != 0 {
		t.Errorf("restart_count = %d, %v", n, err)
	}
}

func TestRoundTripQuoting(t *testing.T) {
	cases := []string{
		"plain",
		"has space",
		`has "quotes"`,
		"has=equals",
		"tab\there",
		"newline\nhere",
		"carriage\rreturn",
		`back\slash`,
		"",
		"trailing space ",
		` leading`,
		`mix "of= every\thing` + "\n",
	}
	for _, v := range cases {
		e := New("test.event", ts0).Set("k", v)
		back, err := Parse(e.Format())
		if err != nil {
			t.Fatalf("Parse(%q): %v", e.Format(), err)
		}
		if got := back.Get("k"); got != v {
			t.Errorf("round trip %q -> %q", v, got)
		}
	}
}

func TestQuickRoundTripArbitraryValues(t *testing.T) {
	f := func(key string, val string) bool {
		// Keys must be non-empty and contain no separators; sanitise as the
		// schema layer would.
		key = strings.Map(func(r rune) rune {
			if r == '=' || r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '"' {
				return '_'
			}
			return r
		}, key)
		if key == "" || key == KeyTS || key == KeyEvent {
			key = "k"
		}
		// Values: the format is byte-oriented; normalise to valid UTF-8 as
		// Go strings from quick already are.
		e := New("t.e", ts0).Set(key, val)
		back, err := Parse(e.Format())
		if err != nil {
			return false
		}
		return back.Get(key) == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseEpochSeconds(t *testing.T) {
	e, err := Parse("ts=1331642138.25 event=x")
	if err != nil {
		t.Fatal(err)
	}
	want := time.Unix(1331642138, 250000000).UTC()
	if !e.TS.Equal(want) {
		t.Fatalf("TS = %v, want %v", e.TS, want)
	}
}

func TestParseRFC3339Nano(t *testing.T) {
	e, err := Parse("ts=2012-03-13T12:35:38.123456789Z event=x")
	if err != nil {
		t.Fatal(err)
	}
	if e.TS.Nanosecond() != 123456789 {
		t.Fatalf("nanos = %d", e.TS.Nanosecond())
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"missing ts":      "event=x a=1",
		"missing event":   "ts=2012-03-13T12:35:38.000000Z a=1",
		"empty event":     `ts=2012-03-13T12:35:38.000000Z event= a=1`,
		"bad ts":          "ts=notatime event=x",
		"no equals":       "ts=2012-03-13T12:35:38.000000Z event=x loose",
		"unclosed quote":  `ts=2012-03-13T12:35:38.000000Z event=x a="oops`,
		"empty key":       `ts=2012-03-13T12:35:38.000000Z event=x =v`,
		"only whitespace": "   ",
	}
	for name, line := range bad {
		if _, err := Parse(line); err == nil {
			t.Errorf("%s: Parse(%q) succeeded, want error", name, line)
		}
	}
}

func TestSetPanicsOnReservedKeys(t *testing.T) {
	for _, k := range []string{KeyTS, KeyEvent} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%q) did not panic", k)
				}
			}()
			New("x", ts0).Set(k, "v")
		}()
	}
}

func TestIntFloatAccessors(t *testing.T) {
	e := New("x", ts0).SetInt("i", -42).SetFloat("f", 74.5)
	if v, err := e.Int("i"); err != nil || v != -42 {
		t.Errorf("Int = %d, %v", v, err)
	}
	if v, err := e.Float("f"); err != nil || v != 74.5 {
		t.Errorf("Float = %v, %v", v, err)
	}
	if _, err := e.Int("absent"); err == nil {
		t.Error("Int(absent) succeeded")
	}
	if _, err := e.Float("absent"); err == nil {
		t.Error("Float(absent) succeeded")
	}
	if _, err := e.Int("f"); err == nil {
		t.Error("Int of float value succeeded")
	}
}

func TestCloneIndependence(t *testing.T) {
	e := New("x", ts0).Set("a", "1")
	c := e.Clone()
	c.Set("a", "2").Set("b", "3")
	if e.Get("a") != "1" || e.Has("b") {
		t.Fatal("Clone shares attribute map")
	}
}

func TestFormatDeterministic(t *testing.T) {
	e := New("x", ts0).Set("z", "1").Set("a", "2").Set("m", "3")
	first := e.Format()
	for i := 0; i < 20; i++ {
		if got := e.Format(); got != first {
			t.Fatalf("nondeterministic Format: %q vs %q", got, first)
		}
	}
	if !strings.Contains(first, "a=2 m=3 z=1") {
		t.Fatalf("attributes not sorted: %q", first)
	}
}
