package bp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Reader decodes a stream of BP log lines. Blank lines and lines starting
// with '#' are skipped, matching the behaviour of nl_load on log files
// that interleave comments with events.
type Reader struct {
	s       *bufio.Scanner
	line    int
	lenient bool
	pooled  bool
	skipped int
	last    []byte // raw bytes of the last line Read returned

	// Sampling hook (SetSampler): run on the raw line before the parse so
	// a sampled line's parse span has a true start time, while unsampled
	// lines skip the clock read entirely.
	sampler  func([]byte) uint64
	sampleID uint64
	sampleT0 int64

	// Ingest tap (SetTap): run on every content line before the parse,
	// malformed ones included, so an event log sees the stream exactly as
	// it arrived.
	tap func([]byte) error
}

// NewReader wraps r for line-oriented BP decoding. The scanner buffer
// accepts individual lines up to 1 MiB, comfortably above any event the
// Stampede schema can produce.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Reader{s: s}
}

// SetLenient makes Read skip malformed lines instead of failing the
// stream. Production log directories routinely contain partial last lines
// from crashed writers; the loader turns this on and reports the skip
// count afterwards.
func (r *Reader) SetLenient(on bool) { r.lenient = on }

// Skipped reports how many malformed lines were dropped in lenient mode.
func (r *Reader) Skipped() int { return r.skipped }

// SetPooled makes Read return pool-recycled events (see the ownership
// rules in pool.go): each returned event must be handed to ReleaseEvent
// when the caller is done with it, or escaped with Clone. The loader
// turns this on; ReadAll callers, which retain every event, must not.
func (r *Reader) SetPooled(on bool) { r.pooled = on }

// Read returns the next event, or io.EOF at end of stream. In pooled mode
// (SetPooled) the caller owns the returned event and must release it.
func (r *Reader) Read() (*Event, error) {
	for r.s.Scan() {
		r.line++
		// Work on the scanner's byte view: Text() would copy every line
		// into a fresh string before the parser even starts.
		line := bytes.TrimSpace(r.s.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		if r.tap != nil {
			if err := r.tap(line); err != nil {
				// A tap failure is a durability failure, not a data
				// problem: fatal even in lenient mode.
				return nil, fmt.Errorf("line %d: tap: %w", r.line, err)
			}
		}
		if r.sampler != nil {
			if r.sampleID = r.sampler(line); r.sampleID != 0 {
				r.sampleT0 = time.Now().UnixNano()
			}
		}
		ev, err := r.parse(line)
		if err != nil {
			if r.lenient {
				r.skipped++
				continue
			}
			return nil, fmt.Errorf("line %d: %w", r.line, err)
		}
		r.last = line
		return ev, nil
	}
	if err := r.s.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

func (r *Reader) parse(line []byte) (*Event, error) {
	if r.pooled {
		return ParseBytes(line)
	}
	e := &Event{}
	if err := e.parseLine(string(line)); err != nil {
		return nil, err
	}
	return e, nil
}

// Bytes returns the raw line of the most recent successful Read, valid
// only until the next Read (the scanner reuses its buffer).
func (r *Reader) Bytes() []byte { return r.last }

// SetSampler installs a function run on every raw line before it is
// parsed. A non-zero return marks the line sampled and records a
// pre-parse timestamp; LastSample exposes both after the Read. The hook
// keeps this package free of any tracing dependency while giving the
// loader a parse-span start that costs unsampled lines nothing but the
// hash.
func (r *Reader) SetSampler(fn func(line []byte) uint64) { r.sampler = fn }

// LastSample returns the sampler's id for the line of the most recent
// successful Read and the pre-parse clock reading taken for it. id is 0
// when the line was unsampled or no sampler is set.
func (r *Reader) LastSample() (id uint64, t0 int64) { return r.sampleID, r.sampleT0 }

// SetTap installs a function run on every content line (comments and
// blanks excluded, malformed lines included) before it is parsed. The
// loader uses it to append raw lines to the event log so the log, not
// the parsed stream, is the source of truth. The line buffer is only
// valid for the duration of the call. A tap error fails the Read even in
// lenient mode: lenient tolerates bad data, not a broken log.
func (r *Reader) SetTap(fn func(line []byte) error) { r.tap = fn }

// ReadAll drains the stream into a slice. It stops at the first error in
// strict mode.
func (r *Reader) ReadAll() ([]*Event, error) {
	var out []*Event
	for {
		ev, err := r.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}

// Writer encodes events as BP lines to an io.Writer. It is safe for use by
// multiple goroutines: engines log from many worker threads into one file,
// exactly as Triana's LOG4J appenders do.
type Writer struct {
	mu sync.Mutex
	w  *bufio.Writer
	n  int
}

// NewWriter wraps w for BP encoding.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64*1024)}
}

// Write appends one event as a line.
func (w *Writer) Write(e *Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.w.WriteString(e.Format()); err != nil {
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of events written.
func (w *Writer) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Flush forces buffered lines to the underlying writer.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.w.Flush()
}
