package bp

import (
	"strings"
	"sync"
	"sync/atomic"
)

// The intern table maps hot strings — attribute keys, event type names,
// enum-ish values like levels — to one canonical per-process instance, so
// parsing a million events allocates each key once instead of a million
// times. The vocabulary is closed in practice (the Stampede schema
// declares every key), so the table is seeded at init and grows only on
// first sight of a new key; growth is bounded so hostile input cannot
// turn the table into a leak.
const (
	maxInternLen     = 64
	maxInternEntries = 4096
)

// The table is copy-on-write: readers load the current map through an
// atomic pointer and probe it with no lock at all — the parser does two
// intern lookups per attribute, so even an uncontended RWMutex pair per
// lookup is measurable at loader rates. Growth (rare: the vocabulary is
// closed) clones the map under mu and publishes the successor.
type internTable struct {
	mu sync.Mutex
	m  atomic.Pointer[map[string]string]
}

var interned = newInternTable()

func newInternTable() *internTable {
	t := &internTable{}
	m := make(map[string]string, 256)
	t.m.Store(&m)
	return t
}

// insertLocked publishes a successor map containing s. Caller holds mu.
func (t *internTable) insertLocked(s string) string {
	old := *t.m.Load()
	if v, ok := old[s]; ok {
		return v
	}
	next := make(map[string]string, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	// Clone so the table never pins a caller's backing buffer (e.g. one
	// attr key keeping a whole parsed line alive).
	v := strings.Clone(s)
	next[v] = v
	t.m.Store(&next)
	return v
}

func init() {
	InternStrings(
		KeyTS, KeyEvent, "level",
		LevelInfo, LevelWarn, LevelError, LevelDebug,
	)
}

// InternStrings pre-seeds the intern table with known-hot strings.
// Packages that define event vocabularies (the Stampede schema) call it
// from init so the first event of a stream already hits the table.
func InternStrings(ss ...string) {
	interned.mu.Lock()
	for _, s := range ss {
		if len(s) > 0 && len(s) <= maxInternLen {
			interned.insertLocked(s)
		}
	}
	interned.mu.Unlock()
}

// Intern returns the canonical instance of s, registering it on first
// sight (bounded; past the cap s itself is returned). The returned string
// is safe to retain indefinitely only when s is — callers interning
// substrings of a transient buffer get the clone-on-insert guarantee.
func Intern(s string) string {
	if len(s) == 0 || len(s) > maxInternLen {
		return s
	}
	t := interned
	m := *t.m.Load()
	if v, ok := m[s]; ok {
		return v
	}
	if len(m) >= maxInternEntries {
		return s
	}
	t.mu.Lock()
	v := t.insertLocked(s)
	t.mu.Unlock()
	return v
}

// internHit returns the canonical instance when s is already interned and
// s itself otherwise. Values use this lookup-only path: keys form a closed
// vocabulary worth registering, values (uuids, paths) mostly do not.
func internHit(s string) string {
	if len(s) == 0 || len(s) > maxInternLen {
		return s
	}
	if v, ok := (*interned.m.Load())[s]; ok {
		return v
	}
	return s
}
