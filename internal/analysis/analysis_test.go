package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstDirectComputation(t *testing.T) {
	xs := []float64{74, 75, 74, 75, 36, 1, 1, 64, 51}
	var w Welford
	for _, x := range xs {
		w.Observe(x)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Errorf("mean %v want %v", w.Mean(), mean)
	}
	if math.Abs(w.Var()-variance) > 1e-9 {
		t.Errorf("var %v want %v", w.Var(), variance)
	}
	if w.Min() != 1 || w.Max() != 75 || w.N() != len(xs) {
		t.Errorf("min/max/n = %v/%v/%d", w.Min(), w.Max(), w.N())
	}
}

func TestWelfordPropertyMeanWithinBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		count := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			w.Observe(x)
			count++
		}
		if count == 0 {
			return true
		}
		return w.Mean() >= w.Min()-1e-6 && w.Mean() <= w.Max()+1e-6 && w.Var() >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeDetectorFlagsOutlier(t *testing.T) {
	d := NewRuntimeDetector()
	// Warm up with consistent runtimes around 74s.
	base := []float64{73, 74, 75, 74, 73, 75, 74, 74}
	for _, x := range base {
		if _, bad := d.Observe("exec", x); bad {
			t.Fatalf("baseline flagged: %v", x)
		}
	}
	a, bad := d.Observe("exec", 400)
	if !bad {
		t.Fatal("5x runtime not flagged")
	}
	if a.Group != "exec" || a.Score < 3 {
		t.Errorf("anomaly = %+v", a)
	}
	// The outlier must not poison the baseline.
	if _, bad := d.Observe("exec", 74); bad {
		t.Error("normal runtime flagged after outlier")
	}
	st := d.GroupStats("exec")
	if st.Mean() > 100 {
		t.Errorf("outlier polluted mean: %v", st.Mean())
	}
}

func TestRuntimeDetectorWarmup(t *testing.T) {
	d := NewRuntimeDetector()
	// First MinSamples observations are never flagged, however odd.
	for i, x := range []float64{1, 1000, 2, 900, 3} {
		if _, bad := d.Observe("noisy", x); bad {
			t.Fatalf("observation %d flagged during warm-up", i)
		}
	}
}

func TestRuntimeDetectorSeparatesGroups(t *testing.T) {
	d := NewRuntimeDetector()
	for i := 0; i < 10; i++ {
		d.Observe("fast", 1.0+0.01*float64(i%3))
		d.Observe("slow", 74.0+0.5*float64(i%3))
	}
	// A 74s runtime is normal for "slow" but anomalous for "fast".
	if _, bad := d.Observe("slow", 74.5); bad {
		t.Error("normal slow runtime flagged")
	}
	if _, bad := d.Observe("fast", 74.5); !bad {
		t.Error("fast-group outlier missed")
	}
}

func TestStragglerHosts(t *testing.T) {
	samples := map[string][]float64{
		"worker1": {70, 72, 74, 71},
		"worker2": {73, 75, 74, 72},
		"worker3": {290, 310, 305, 298}, // 4x slower
	}
	reports := StragglerHosts(samples, 1.5, 3)
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, r := range reports {
		want := r.Host == "worker3"
		if r.Straggler != want {
			t.Errorf("%s straggler=%v, want %v (ratio %.2f)", r.Host, r.Straggler, want, r.Ratio)
		}
	}
}

func TestStragglerHostsMinSamples(t *testing.T) {
	samples := map[string][]float64{
		"worker1": {70, 71, 72, 70},
		"worker2": {900}, // slow but only one sample
	}
	reports := StragglerHosts(samples, 1.5, 3)
	for _, r := range reports {
		if r.Host == "worker2" {
			t.Error("host with too few samples got a verdict")
		}
	}
}

func TestNaiveBayesSeparatesClasses(t *testing.T) {
	nb := NewNaiveBayes(2)
	// Class false: low failure fraction, low retry rate. Class true: high.
	for i := 0; i < 50; i++ {
		jitter := float64(i%5) * 0.01
		if err := nb.Train([]float64{0.02 + jitter, 0.1 + jitter}, false); err != nil {
			t.Fatal(err)
		}
		if err := nb.Train([]float64{0.6 + jitter, 1.5 + jitter}, true); err != nil {
			t.Fatal(err)
		}
	}
	if !nb.Trained() {
		t.Fatal("not trained")
	}
	pGood, err := nb.Predict([]float64{0.03, 0.12})
	if err != nil {
		t.Fatal(err)
	}
	pBad, err := nb.Predict([]float64{0.55, 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if pGood > 0.2 {
		t.Errorf("healthy workflow scored %v", pGood)
	}
	if pBad < 0.8 {
		t.Errorf("failing workflow scored %v", pBad)
	}
}

func TestNaiveBayesEdgeCases(t *testing.T) {
	nb := NewNaiveBayes(1)
	if p, _ := nb.Predict([]float64{1}); p != 0.5 {
		t.Errorf("untrained prior = %v", p)
	}
	_ = nb.Train([]float64{1}, false)
	if p, _ := nb.Predict([]float64{1}); p != 0 {
		t.Errorf("single-class prior = %v", p)
	}
	if err := nb.Train([]float64{1, 2}, true); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := nb.Predict([]float64{1, 2}); err == nil {
		t.Error("predict dimension mismatch accepted")
	}
}

func TestLinRegRecoversLine(t *testing.T) {
	var r LinReg
	for x := 0.0; x < 20; x++ {
		r.Observe(x, 3+2*x)
	}
	a, b := r.Coeffs()
	if math.Abs(a-3) > 1e-9 || math.Abs(b-2) > 1e-9 {
		t.Fatalf("coeffs = %v, %v", a, b)
	}
	if y := r.Predict(100); math.Abs(y-203) > 1e-6 {
		t.Fatalf("predict(100) = %v", y)
	}
}

func TestLinRegDegenerate(t *testing.T) {
	var r LinReg
	if a, b := r.Coeffs(); a != 0 || b != 0 {
		t.Errorf("empty coeffs = %v, %v", a, b)
	}
	r.Observe(5, 10)
	r.Observe(5, 14) // constant x
	a, b := r.Coeffs()
	if b != 0 || math.Abs(a-12) > 1e-9 {
		t.Errorf("degenerate coeffs = %v, %v", a, b)
	}
}

func TestETAEstimator(t *testing.T) {
	e := ETAEstimator{TotalWork: 1000}
	if got := e.Remaining(0, 10); !math.IsInf(got, 1) {
		t.Errorf("no-progress ETA = %v", got)
	}
	// 250 units in 100s -> 2.5/s -> 750 remaining -> 300s.
	if got := e.Remaining(250, 100); math.Abs(got-300) > 1e-9 {
		t.Errorf("ETA = %v, want 300", got)
	}
	if got := e.Remaining(1000, 400); got != 0 {
		t.Errorf("complete ETA = %v", got)
	}
	if got := e.Remaining(1200, 400); got != 0 {
		t.Errorf("overshoot ETA = %v", got)
	}
}
