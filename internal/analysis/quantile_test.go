package analysis

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func exactQuantile(xs []float64, p float64) float64 {
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	idx := int(p * float64(len(tmp)))
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

func TestP2AgainstExactUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []float64{0.5, 0.9, 0.95} {
		q, err := NewP2Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		var xs []float64
		for i := 0; i < 20000; i++ {
			x := rng.Float64() * 100
			xs = append(xs, x)
			q.Observe(x)
		}
		got := q.Value()
		want := exactQuantile(xs, p)
		if math.Abs(got-want) > 2.0 { // 2% of range on 20k uniform samples
			t.Errorf("p=%v: estimate %.2f vs exact %.2f", p, got, want)
		}
	}
}

func TestP2AgainstExactSkewed(t *testing.T) {
	// Runtime-like distribution: lognormal-ish via exp of normals.
	rng := rand.New(rand.NewSource(2))
	q, err := NewP2Quantile(0.95)
	if err != nil {
		t.Fatal(err)
	}
	var xs []float64
	for i := 0; i < 20000; i++ {
		x := 60 * math.Exp(0.3*rng.NormFloat64())
		xs = append(xs, x)
		q.Observe(x)
	}
	got := q.Value()
	want := exactQuantile(xs, 0.95)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("p95 estimate %.2f vs exact %.2f", got, want)
	}
}

func TestP2SmallSamples(t *testing.T) {
	q, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q.Value() != 0 {
		t.Error("empty estimator nonzero")
	}
	q.Observe(10)
	q.Observe(20)
	q.Observe(30)
	v := q.Value()
	if v < 10 || v > 30 {
		t.Errorf("small-sample median = %v", v)
	}
	if q.N() != 3 {
		t.Errorf("N = %d", q.N())
	}
}

func TestP2MonotoneInvariant(t *testing.T) {
	// Marker heights must stay sorted whatever the input order.
	rng := rand.New(rand.NewSource(3))
	q, _ := NewP2Quantile(0.9)
	for i := 0; i < 5000; i++ {
		q.Observe(rng.ExpFloat64() * 50)
		if q.n >= 5 {
			for j := 1; j < 5; j++ {
				if q.heights[j] < q.heights[j-1] {
					t.Fatalf("heights out of order at n=%d: %v", q.n, q.heights)
				}
			}
		}
	}
}

func TestP2BadQuantile(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		if _, err := NewP2Quantile(p); err == nil {
			t.Errorf("p=%v accepted", p)
		}
	}
}
