package analysis

import (
	"errors"
	"math"
)

// NaiveBayes is a Gaussian naive Bayes binary classifier over fixed-width
// float feature vectors: the workflow-level failure predictor of the
// Stampede analysis work. Features are aggregate workflow statistics
// (failure fraction so far, retry rate, mean queue delay, ...).
type NaiveBayes struct {
	dim   int
	stats [2][]Welford // per class, per feature
	count [2]int
}

// NewNaiveBayes returns a classifier over dim-dimensional features.
func NewNaiveBayes(dim int) *NaiveBayes {
	nb := &NaiveBayes{dim: dim}
	for c := 0; c < 2; c++ {
		nb.stats[c] = make([]Welford, dim)
	}
	return nb
}

// Train folds in one labeled example (label true = positive class, e.g.
// "workflow failed").
func (nb *NaiveBayes) Train(features []float64, label bool) error {
	if len(features) != nb.dim {
		return errors.New("analysis: feature dimension mismatch")
	}
	c := 0
	if label {
		c = 1
	}
	nb.count[c]++
	for i, f := range features {
		nb.stats[c][i].Observe(f)
	}
	return nil
}

// Trained reports whether both classes have at least one example.
func (nb *NaiveBayes) Trained() bool { return nb.count[0] > 0 && nb.count[1] > 0 }

// Predict returns P(label=true | features). With an untrained class it
// returns the prior of the trained data.
func (nb *NaiveBayes) Predict(features []float64) (float64, error) {
	if len(features) != nb.dim {
		return 0, errors.New("analysis: feature dimension mismatch")
	}
	total := nb.count[0] + nb.count[1]
	if total == 0 {
		return 0.5, nil
	}
	if nb.count[0] == 0 {
		return 1, nil
	}
	if nb.count[1] == 0 {
		return 0, nil
	}
	var logp [2]float64
	for c := 0; c < 2; c++ {
		logp[c] = math.Log(float64(nb.count[c]) / float64(total))
		for i, f := range features {
			w := nb.stats[c][i]
			mean := w.Mean()
			// Variance smoothing keeps degenerate (constant) features from
			// producing infinite likelihoods.
			v := w.Var() + 1e-6
			logp[c] += -0.5*math.Log(2*math.Pi*v) - (f-mean)*(f-mean)/(2*v)
		}
	}
	// Softmax over the two log-probabilities.
	m := math.Max(logp[0], logp[1])
	p0 := math.Exp(logp[0] - m)
	p1 := math.Exp(logp[1] - m)
	return p1 / (p0 + p1), nil
}

// LinReg is simple least-squares linear regression y = a + b*x, used for
// runtime prediction (e.g. workflow makespan vs job count, for the
// provisioning estimates the paper motivates).
type LinReg struct {
	n        int
	sx, sy   float64
	sxx, sxy float64
}

// Observe folds in one (x, y) sample.
func (r *LinReg) Observe(x, y float64) {
	r.n++
	r.sx += x
	r.sy += y
	r.sxx += x * x
	r.sxy += x * y
}

// N returns the sample count.
func (r *LinReg) N() int { return r.n }

// Coeffs returns intercept a and slope b. With fewer than 2 samples or a
// degenerate x spread it returns the mean of y as intercept and zero
// slope.
func (r *LinReg) Coeffs() (a, b float64) {
	if r.n == 0 {
		return 0, 0
	}
	nf := float64(r.n)
	denom := nf*r.sxx - r.sx*r.sx
	if r.n < 2 || math.Abs(denom) < 1e-12 {
		return r.sy / nf, 0
	}
	b = (nf*r.sxy - r.sx*r.sy) / denom
	a = (r.sy - b*r.sx) / nf
	return a, b
}

// Predict evaluates the fitted line at x.
func (r *LinReg) Predict(x float64) float64 {
	a, b := r.Coeffs()
	return a + b*x
}

// ETAEstimator predicts workflow completion from progress: given the
// fraction of total work completed and the elapsed wall time, it
// extrapolates the remaining time assuming steady throughput — the
// "performance prediction of runtime" view the dashboard shows for
// running workflows.
type ETAEstimator struct {
	TotalWork float64 // planned total (e.g. cumulative expected runtime or job count)
}

// Remaining estimates seconds left given completed work and elapsed
// seconds. It returns +Inf before any progress exists.
func (e ETAEstimator) Remaining(completed, elapsed float64) float64 {
	if completed <= 0 || elapsed <= 0 {
		return math.Inf(1)
	}
	if completed >= e.TotalWork {
		return 0
	}
	rate := completed / elapsed
	return (e.TotalWork - completed) / rate
}
