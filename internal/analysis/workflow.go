package analysis

import (
	"sort"

	"repro/internal/query"
)

// FeatureDim is the width of the workflow feature vector WorkflowFeatures
// produces for the failure predictor.
const FeatureDim = 5

// WorkflowFeatures aggregates one workflow hierarchy into the feature
// vector the failure predictor trains on:
//
//	[0] fraction of finished jobs that failed
//	[1] retries per job
//	[2] mean queue time (seconds)
//	[3] mean invocation runtime (seconds)
//	[4] runtime coefficient of variation (std/mean)
func WorkflowFeatures(q *query.QI, wfID int64) ([]float64, error) {
	ids := []int64{wfID}
	desc, err := q.Descendants(wfID)
	if err != nil {
		return nil, err
	}
	for _, d := range desc {
		ids = append(ids, d.ID)
	}
	var finished, failed, retries, jobs int
	var queue Welford
	var runtime Welford
	for _, id := range ids {
		js, err := q.Jobs(id)
		if err != nil {
			return nil, err
		}
		for _, j := range js {
			jobs++
			insts, err := q.JobInstances(j.ID)
			if err != nil {
				return nil, err
			}
			if len(insts) == 0 {
				continue
			}
			retries += len(insts) - 1
			last := insts[len(insts)-1]
			if last.HasExitcode {
				finished++
				if last.Exitcode != 0 {
					failed++
				}
			}
			d, err := q.InstanceDelays(last.ID)
			if err != nil {
				return nil, err
			}
			queue.Observe(d.QueueTime.Seconds())
			invs, err := q.InvocationsForInstance(last.ID)
			if err != nil {
				return nil, err
			}
			for _, inv := range invs {
				runtime.Observe(inv.RemoteDuration)
			}
		}
	}
	f := make([]float64, FeatureDim)
	if finished > 0 {
		f[0] = float64(failed) / float64(finished)
	}
	if jobs > 0 {
		f[1] = float64(retries) / float64(jobs)
	}
	f[2] = queue.Mean()
	f[3] = runtime.Mean()
	if runtime.Mean() > 0 {
		f[4] = runtime.Std() / runtime.Mean()
	}
	return f, nil
}

// DetectRuntimeAnomalies replays a workflow hierarchy's invocations in
// start-time order through a RuntimeDetector grouped by transformation
// and returns everything it flags.
func DetectRuntimeAnomalies(q *query.QI, wfID int64, det *RuntimeDetector) ([]Anomaly, error) {
	if det == nil {
		det = NewRuntimeDetector()
	}
	ids := []int64{wfID}
	desc, err := q.Descendants(wfID)
	if err != nil {
		return nil, err
	}
	for _, d := range desc {
		ids = append(ids, d.ID)
	}
	var invs []query.Invocation
	for _, id := range ids {
		batch, err := q.Invocations(id)
		if err != nil {
			return nil, err
		}
		invs = append(invs, batch...)
	}
	sort.Slice(invs, func(i, j int) bool { return invs[i].StartTime.Before(invs[j].StartTime) })
	var out []Anomaly
	for _, inv := range invs {
		if a, bad := det.Observe(inv.Transformation, inv.RemoteDuration); bad {
			out = append(out, a)
		}
	}
	return out, nil
}

// HostSamples collects invocation durations per execution host across a
// workflow hierarchy, the input for StragglerHosts.
func HostSamples(q *query.QI, wfID int64) (map[string][]float64, error) {
	ids := []int64{wfID}
	desc, err := q.Descendants(wfID)
	if err != nil {
		return nil, err
	}
	for _, d := range desc {
		ids = append(ids, d.ID)
	}
	out := map[string][]float64{}
	for _, id := range ids {
		js, err := q.Jobs(id)
		if err != nil {
			return nil, err
		}
		for _, j := range js {
			insts, err := q.JobInstances(j.ID)
			if err != nil {
				return nil, err
			}
			for _, inst := range insts {
				if inst.Hostname == "" {
					continue
				}
				invs, err := q.InvocationsForInstance(inst.ID)
				if err != nil {
					return nil, err
				}
				for _, inv := range invs {
					out[inst.Hostname] = append(out[inst.Hostname], inv.RemoteDuration)
				}
			}
		}
	}
	return out, nil
}
