package analysis

import (
	"bytes"
	"testing"

	"repro/internal/archive"
	"repro/internal/loader"
	"repro/internal/query"
	"repro/internal/synth"
)

func load(t *testing.T, cfg synth.Config) (*query.QI, *synth.Trace, int64) {
	t.Helper()
	tr := synth.Generate(cfg)
	a := archive.NewInMemory()
	l, err := loader.New(a, loader.Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadReader(&buf); err != nil {
		t.Fatal(err)
	}
	q := query.New(a)
	wf, err := q.WorkflowByUUID(tr.RootUUID)
	if err != nil || wf == nil {
		t.Fatalf("root missing: %v", err)
	}
	return q, tr, wf.ID
}

func TestWorkflowFeaturesHealthyVsFailing(t *testing.T) {
	qGood, _, goodID := load(t, synth.Config{Seed: 1, Jobs: 30})
	qBad, trBad, badID := load(t, synth.Config{Seed: 11, Jobs: 30, FailureRate: 0.5, MaxRetries: 1})
	if trBad.FailedJobs == 0 {
		t.Skip("no failures generated")
	}
	fg, err := WorkflowFeatures(qGood, goodID)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := WorkflowFeatures(qBad, badID)
	if err != nil {
		t.Fatal(err)
	}
	if len(fg) != FeatureDim || len(fb) != FeatureDim {
		t.Fatalf("dims = %d, %d", len(fg), len(fb))
	}
	if fg[0] != 0 {
		t.Errorf("healthy failure fraction = %v", fg[0])
	}
	if fb[0] <= fg[0] || fb[1] <= fg[1] {
		t.Errorf("failing workflow features not separated: good=%v bad=%v", fg, fb)
	}
}

func TestFailurePredictionEndToEnd(t *testing.T) {
	// Train the classifier on a corpus of synthetic workflows with and
	// without injected faults, then verify it classifies held-out runs.
	nb := NewNaiveBayes(FeatureDim)
	for seed := int64(0); seed < 10; seed++ {
		qg, _, idg := load(t, synth.Config{Seed: seed, Jobs: 20})
		fg, err := WorkflowFeatures(qg, idg)
		if err != nil {
			t.Fatal(err)
		}
		if err := nb.Train(fg, false); err != nil {
			t.Fatal(err)
		}
		qb, trb, idb := load(t, synth.Config{Seed: seed + 100, Jobs: 20, FailureRate: 0.45, MaxRetries: 2})
		fb, err := WorkflowFeatures(qb, idb)
		if err != nil {
			t.Fatal(err)
		}
		if err := nb.Train(fb, trb.FailedJobs > 0 || trb.TotalRetries > 0); err != nil {
			t.Fatal(err)
		}
	}
	if !nb.Trained() {
		t.Skip("corpus produced a single class")
	}
	qh, _, idh := load(t, synth.Config{Seed: 77, Jobs: 20})
	fh, _ := WorkflowFeatures(qh, idh)
	pHealthy, err := nb.Predict(fh)
	if err != nil {
		t.Fatal(err)
	}
	qf, trf, idf := load(t, synth.Config{Seed: 177, Jobs: 20, FailureRate: 0.45, MaxRetries: 2})
	ff, _ := WorkflowFeatures(qf, idf)
	pFailing, err := nb.Predict(ff)
	if err != nil {
		t.Fatal(err)
	}
	if trf.FailedJobs+trf.TotalRetries == 0 {
		t.Skip("held-out failing run had no faults")
	}
	if pFailing <= pHealthy {
		t.Errorf("failing run scored %v <= healthy %v", pFailing, pHealthy)
	}
}

func TestDetectRuntimeAnomaliesFindsInjectedStraggler(t *testing.T) {
	// One host 6x slower than its peers: its invocations should be
	// flagged against the transformation's distribution.
	q, _, id := load(t, synth.Config{
		Seed: 9, Jobs: 120, Hosts: 6, SlotsPerHost: 2,
		JobTypes:     []synth.JobType{{Name: "exec", MeanSeconds: 60, StddevPct: 0.05, Weight: 1}},
		HostSlowdown: map[int]float64{2: 6.0},
	})
	anomalies, err := DetectRuntimeAnomalies(q, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(anomalies) == 0 {
		t.Fatal("injected 6x straggler produced no anomalies")
	}
	for _, a := range anomalies {
		if a.Group != "exec" {
			t.Errorf("anomaly in unexpected group %q", a.Group)
		}
		if a.Value < a.Expected {
			t.Errorf("flagged a fast run: %+v", a)
		}
	}
}

func TestDetectRuntimeAnomaliesCleanRunQuiet(t *testing.T) {
	q, _, id := load(t, synth.Config{
		Seed: 10, Jobs: 100, Hosts: 4,
		JobTypes: []synth.JobType{{Name: "exec", MeanSeconds: 60, StddevPct: 0.1, Weight: 1}},
	})
	anomalies, err := DetectRuntimeAnomalies(q, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Normal variation should produce at most a stray flag or two, not a
	// flood (100 invocations, 3-sigma threshold).
	if len(anomalies) > 3 {
		t.Fatalf("clean run flagged %d times", len(anomalies))
	}
}

func TestHostSamplesAndStragglerPipeline(t *testing.T) {
	q, tr, id := load(t, synth.Config{
		Seed: 12, Jobs: 90, Hosts: 3, SlotsPerHost: 2,
		JobTypes:     []synth.JobType{{Name: "exec", MeanSeconds: 50, StddevPct: 0.05, Weight: 1}},
		HostSlowdown: map[int]float64{1: 4.0},
	})
	samples, err := HostSamples(q, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("hosts sampled = %d", len(samples))
	}
	total := 0
	for _, xs := range samples {
		total += len(xs)
	}
	if total != 90 {
		t.Errorf("samples = %d, want 90", total)
	}
	reports := StragglerHosts(samples, 1.5, 5)
	found := false
	for _, r := range reports {
		if r.Host == tr.Hostnames[1] {
			if !r.Straggler {
				t.Errorf("slowed host not flagged: %+v", r)
			}
			found = true
		} else if r.Straggler {
			t.Errorf("healthy host %s flagged (ratio %.2f)", r.Host, r.Ratio)
		}
	}
	if !found {
		t.Error("slowed host missing from reports")
	}
}
