// Package analysis implements the Stampede analysis layer the paper
// builds on the archive (§IV's bullets and reference [37]): online
// anomaly detection for job runtimes, straggler-host identification,
// workflow-level failure prediction, and runtime prediction for
// provisioning estimates.
//
// Everything here is streaming-friendly: detectors consume observations
// one at a time with O(1) state per group, so the same code runs over a
// live event feed or a finished archive.
package analysis

import (
	"fmt"
	"math"
	"sync"
)

// Welford is a numerically stable online mean/variance accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe folds one sample in.
func (w *Welford) Observe(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with <2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min and Max return the observed extremes.
func (w *Welford) Min() float64 { return w.min }
func (w *Welford) Max() float64 { return w.max }

// Anomaly is one flagged observation.
type Anomaly struct {
	Group    string  // e.g. transformation name
	Value    float64 // observed value
	Expected float64 // group mean at detection time
	Score    float64 // |z|-score
	Detail   string
}

func (a Anomaly) String() string {
	return fmt.Sprintf("%s: value %.2f vs expected %.2f (z=%.1f) %s",
		a.Group, a.Value, a.Expected, a.Score, a.Detail)
}

// RuntimeDetector flags job runtimes that deviate from their
// transformation's running distribution — the job-level "distinguish
// actual failures from normal variation" analysis.
type RuntimeDetector struct {
	mu sync.Mutex
	// Threshold is the |z|-score above which an observation is anomalous.
	// The default 3.0 matches the usual three-sigma rule.
	Threshold float64
	// MinSamples suppresses detection until a group has this many
	// observations, avoiding false alarms on cold statistics.
	MinSamples int
	groups     map[string]*Welford
}

// NewRuntimeDetector returns a detector with the default 3-sigma
// threshold and a 5-sample warm-up per group.
func NewRuntimeDetector() *RuntimeDetector {
	return &RuntimeDetector{Threshold: 3.0, MinSamples: 5, groups: map[string]*Welford{}}
}

// Observe folds one (group, runtime) observation in and reports whether it
// is anomalous against the statistics gathered so far. The observation is
// only added to the group statistics when it is NOT anomalous, so a burst
// of stragglers cannot drag the baseline toward itself.
func (d *RuntimeDetector) Observe(group string, runtime float64) (Anomaly, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w, ok := d.groups[group]
	if !ok {
		w = &Welford{}
		d.groups[group] = w
	}
	if w.N() >= d.MinSamples {
		std := w.Std()
		if std > 0 {
			z := math.Abs(runtime-w.Mean()) / std
			if z >= d.Threshold {
				return Anomaly{
					Group:    group,
					Value:    runtime,
					Expected: w.Mean(),
					Score:    z,
					Detail:   fmt.Sprintf("(n=%d std=%.2f)", w.N(), std),
				}, true
			}
		}
	}
	w.Observe(runtime)
	return Anomaly{}, false
}

// GroupStats returns a copy of a group's accumulator (zero value when the
// group is unknown).
func (d *RuntimeDetector) GroupStats(group string) Welford {
	d.mu.Lock()
	defer d.mu.Unlock()
	if w, ok := d.groups[group]; ok {
		return *w
	}
	return Welford{}
}

// HostReport compares per-host runtime means for one transformation and
// flags stragglers.
type HostReport struct {
	Host       string
	Mean       float64
	GlobalMean float64
	Ratio      float64
	Samples    int
	Straggler  bool
}

// StragglerHosts groups (host, runtime) samples and reports hosts whose
// mean runtime exceeds ratio× the mean of the remaining hosts. minSamples
// guards against verdicts on a handful of jobs.
func StragglerHosts(samples map[string][]float64, ratio float64, minSamples int) []HostReport {
	if ratio <= 1 {
		ratio = 1.5
	}
	var reports []HostReport
	// Global sums for leave-one-out means.
	var totalSum float64
	var totalN int
	perHost := map[string]*Welford{}
	for host, xs := range samples {
		w := &Welford{}
		for _, x := range xs {
			w.Observe(x)
			totalSum += x
			totalN++
		}
		perHost[host] = w
	}
	for host, w := range perHost {
		if w.N() < minSamples {
			continue
		}
		restN := totalN - w.N()
		if restN == 0 {
			continue
		}
		restMean := (totalSum - w.Mean()*float64(w.N())) / float64(restN)
		r := HostReport{
			Host:       host,
			Mean:       w.Mean(),
			GlobalMean: restMean,
			Samples:    w.N(),
		}
		if restMean > 0 {
			r.Ratio = w.Mean() / restMean
			r.Straggler = r.Ratio >= ratio
		}
		reports = append(reports, r)
	}
	return reports
}
