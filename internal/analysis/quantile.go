package analysis

import (
	"fmt"
	"sort"
)

// P2Quantile is the P² (P-squared) algorithm of Jain & Chlamtac: an
// online estimate of a single quantile in O(1) space, without storing
// observations. The workflow analysis uses it for percentile-based
// runtime thresholds (e.g. flag anything beyond the running p95) where
// keeping full histories for every transformation would not scale to
// CyberShake-sized workflows.
type P2Quantile struct {
	p       float64
	n       int
	heights [5]float64
	pos     [5]float64 // actual marker positions (1-based)
	desired [5]float64
	inc     [5]float64
	initial []float64
}

// NewP2Quantile returns an estimator for the p-quantile (0 < p < 1).
func NewP2Quantile(p float64) (*P2Quantile, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("analysis: quantile %v out of (0,1)", p)
	}
	q := &P2Quantile{p: p}
	q.pos = [5]float64{1, 2, 3, 4, 5}
	q.desired = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q, nil
}

// Observe folds one sample in.
func (q *P2Quantile) Observe(x float64) {
	q.n++
	if q.n <= 5 {
		q.initial = append(q.initial, x)
		if q.n == 5 {
			sort.Float64s(q.initial)
			copy(q.heights[:], q.initial)
		}
		return
	}
	// Find the cell k such that heights[k] <= x < heights[k+1].
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.desired[i] += q.inc[i]
	}
	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.desired[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

func (q *P2Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// N returns the sample count.
func (q *P2Quantile) N() int { return q.n }

// Value returns the current quantile estimate. With fewer than 5 samples
// it falls back to the exact order statistic of what it has seen.
func (q *P2Quantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if q.n < 5 {
		tmp := append([]float64(nil), q.initial...)
		sort.Float64s(tmp)
		idx := int(q.p * float64(len(tmp)))
		if idx >= len(tmp) {
			idx = len(tmp) - 1
		}
		return tmp[idx]
	}
	return q.heights[2]
}
