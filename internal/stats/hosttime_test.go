package stats

import (
	"strings"
	"testing"
	"time"

	"repro/internal/synth"
)

func TestHostTimeSeries(t *testing.T) {
	q, tr, root := load(t, synth.Config{
		Seed: 21, Jobs: 60, Hosts: 3, SlotsPerHost: 2,
		JobTypes: []synth.JobType{{Name: "exec", MeanSeconds: 50, StddevPct: 0.1, Weight: 1}},
	})
	buckets, err := HostTimeSeries(q, root, true, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) == 0 {
		t.Fatal("no buckets")
	}
	hosts := map[string]bool{}
	totalInv := 0
	var totalRuntime float64
	for _, b := range buckets {
		hosts[b.Host] = true
		totalInv += b.Invocations
		totalRuntime += b.Runtime
		if b.Offset < 0 {
			t.Errorf("negative offset %v", b.Offset)
		}
		if b.Invocations == 0 {
			t.Errorf("empty bucket emitted: %+v", b)
		}
	}
	if len(hosts) != 3 {
		t.Errorf("hosts = %d, want 3", len(hosts))
	}
	if totalInv != 60 {
		t.Errorf("invocations across buckets = %d, want 60", totalInv)
	}
	// Cross-check against the untimed host breakdown.
	usage, err := HostsBreakdown(q, root, true)
	if err != nil {
		t.Fatal(err)
	}
	var usageRuntime float64
	for _, u := range usage {
		usageRuntime += u.TotalRuntime
	}
	if diff := totalRuntime - usageRuntime; diff > 1 || diff < -1 {
		t.Errorf("time-bucketed runtime %.1f != total %.1f", totalRuntime, usageRuntime)
	}
	// Buckets for one host are in time order.
	for i := 1; i < len(buckets); i++ {
		if buckets[i].Host == buckets[i-1].Host && buckets[i].Offset <= buckets[i-1].Offset {
			t.Errorf("buckets out of order at %d", i)
		}
	}
	// A multi-minute run spans more than one bucket.
	multi := false
	for _, b := range buckets {
		if b.Offset >= 60 {
			multi = true
		}
	}
	if !multi {
		t.Error("run collapsed into a single bucket")
	}
	text := RenderHostTimeSeries(buckets)
	if !strings.Contains(text, "t_start_s") || !strings.Contains(text, tr.Hostnames[0]) {
		t.Errorf("render incomplete:\n%s", text)
	}
}

func TestHostTimeSeriesDefaultBucket(t *testing.T) {
	q, _, root := load(t, synth.Config{Seed: 22, Jobs: 10})
	a, err := HostTimeSeries(q, root, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HostTimeSeries(q, root, true, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Errorf("default bucket differs from 1m: %d vs %d", len(a), len(b))
	}
}
