package stats

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/archive"
	"repro/internal/loader"
	"repro/internal/query"
	"repro/internal/synth"
)

// TestSummaryInvariantsProperty checks algebraic invariants of the
// statistics pipeline over randomly parameterized synthetic workflows:
// whatever the workload shape, the reports must be internally consistent.
func TestSummaryInvariantsProperty(t *testing.T) {
	f := func(seed int64, jobsRaw, hostsRaw uint8, failRaw uint8, subRaw uint8) bool {
		cfg := synth.Config{
			Seed:         seed,
			Jobs:         int(jobsRaw%40) + 5,
			Hosts:        int(hostsRaw%4) + 1,
			SlotsPerHost: 2,
			FailureRate:  float64(failRaw%50) / 100, // 0 .. 0.49
			MaxRetries:   2,
			SubWorkflows: int(subRaw % 4), // 0..3
		}
		tr := synth.Generate(cfg)
		q, root, ok := loadTraceQuiet(t, tr)
		if !ok {
			return false
		}
		s, err := Compute(q, root, true)
		if err != nil {
			t.Logf("compute: %v", err)
			return false
		}
		// 1. Count algebra.
		if s.Tasks.Succeeded+s.Tasks.Failed+s.Tasks.Incomplete != s.Tasks.Total {
			t.Logf("task counts inconsistent: %+v", s.Tasks)
			return false
		}
		if s.Jobs.Succeeded+s.Jobs.Failed+s.Jobs.Incomplete != s.Jobs.Total {
			t.Logf("job counts inconsistent: %+v", s.Jobs)
			return false
		}
		// 2. Trace ground truth.
		if s.Jobs.Failed != tr.FailedJobs || s.Jobs.Retries != tr.TotalRetries {
			t.Logf("vs trace: %+v, failed=%d retries=%d", s.Jobs, tr.FailedJobs, tr.TotalRetries)
			return false
		}
		// 3. Breakdown totals equal the cumulative wall time.
		rows, err := Breakdown(q, root, true)
		if err != nil {
			return false
		}
		var breakdownTotal float64
		for _, r := range rows {
			if r.Count != r.Success+r.Failed {
				t.Logf("breakdown row inconsistent: %+v", r)
				return false
			}
			if r.Min > r.Mean+1e-9 || r.Mean > r.Max+1e-9 {
				t.Logf("breakdown ordering violated: %+v", r)
				return false
			}
			breakdownTotal += r.Total
		}
		if math.Abs(breakdownTotal-s.CumulativeJobWallTime.Seconds()) > 1.0 {
			t.Logf("breakdown %.1f != cumulative %.1f", breakdownTotal, s.CumulativeJobWallTime.Seconds())
			return false
		}
		// 4. Host usage covers the same work.
		usage, err := HostsBreakdown(q, root, true)
		if err != nil {
			return false
		}
		var hostTotal float64
		for _, u := range usage {
			hostTotal += u.TotalRuntime
		}
		if math.Abs(hostTotal-breakdownTotal) > 1.0 {
			t.Logf("host runtime %.1f != breakdown %.1f", hostTotal, breakdownTotal)
			return false
		}
		// 5. Progress series end at the total invocation count.
		series, err := ProgressSeries(q, root)
		if err != nil {
			return false
		}
		finalInvs := 0
		for _, pts := range series {
			finalInvs += pts[len(pts)-1].Invocations
		}
		// With sub-workflows, series cover only the bundles (the root's
		// own submission jobs are excluded); without, the root itself.
		if cfg.SubWorkflows <= 1 && finalInvs == 0 && s.Jobs.Total > 0 {
			t.Logf("empty progress series")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// loadTraceQuiet loads a pre-generated trace into a fresh archive.
func loadTraceQuiet(t *testing.T, tr *synth.Trace) (*query.QI, int64, bool) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Logf("write: %v", err)
		return nil, 0, false
	}
	a := archive.NewInMemory()
	l, err := loader.New(a, loader.Options{Validate: true})
	if err != nil {
		t.Logf("loader: %v", err)
		return nil, 0, false
	}
	if _, err := l.LoadReader(&buf); err != nil {
		t.Logf("load: %v", err)
		return nil, 0, false
	}
	q := query.New(a)
	wf, err := q.WorkflowByUUID(tr.RootUUID)
	if err != nil || wf == nil {
		t.Logf("root: %v", err)
		return nil, 0, false
	}
	return q, wf.ID, true
}
