package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/archive"
	"repro/internal/loader"
	"repro/internal/query"
	"repro/internal/synth"
)

func load(t *testing.T, cfg synth.Config) (*query.QI, *synth.Trace, int64) {
	t.Helper()
	tr := synth.Generate(cfg)
	a := archive.NewInMemory()
	l, err := loader.New(a, loader.Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadReader(&buf); err != nil {
		t.Fatal(err)
	}
	q := query.New(a)
	wf, err := q.WorkflowByUUID(tr.RootUUID)
	if err != nil || wf == nil {
		t.Fatalf("root workflow missing: %v", err)
	}
	return q, tr, wf.ID
}

func TestSummaryFlatWorkflow(t *testing.T) {
	q, tr, root := load(t, synth.Config{Seed: 1, Jobs: 30, TasksPerJob: 1})
	s, err := Compute(q, root, true)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tasks.Total != 30 || s.Tasks.Succeeded != 30 || s.Tasks.Failed != 0 {
		t.Errorf("tasks = %+v", s.Tasks)
	}
	if s.Jobs.Total != 30 || s.Jobs.Succeeded != 30 || s.Jobs.Retries != 0 {
		t.Errorf("jobs = %+v", s.Jobs)
	}
	if s.SubWorkflows.Total != 0 {
		t.Errorf("subwf = %+v", s.SubWorkflows)
	}
	if s.WallTime.Seconds() <= 0 {
		t.Error("wall time zero")
	}
	if s.CumulativeJobWallTime < s.WallTime {
		t.Errorf("cumulative %v < wall %v with parallel hosts", s.CumulativeJobWallTime, s.WallTime)
	}
	_ = tr
}

func TestSummaryHierarchy(t *testing.T) {
	q, _, root := load(t, synth.Config{Seed: 2, Jobs: 40, SubWorkflows: 5})
	s, err := Compute(q, root, true)
	if err != nil {
		t.Fatal(err)
	}
	if s.SubWorkflows.Total != 5 || s.SubWorkflows.Succeeded != 5 {
		t.Errorf("subwf = %+v", s.SubWorkflows)
	}
	// 40 exec tasks live in sub-workflows; jobs also count the 5 root
	// submission jobs.
	if s.Tasks.Total != 40 {
		t.Errorf("tasks total = %d, want 40", s.Tasks.Total)
	}
	if s.Jobs.Total != 45 {
		t.Errorf("jobs total = %d, want 45", s.Jobs.Total)
	}
	// Non-recursive scope sees only the root's own jobs.
	flat, err := Compute(q, root, false)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Jobs.Total != 5 || flat.Tasks.Total != 0 {
		t.Errorf("non-recursive = %+v", flat)
	}
}

func TestSummaryFailuresAndRetries(t *testing.T) {
	q, tr, root := load(t, synth.Config{Seed: 11, Jobs: 60, FailureRate: 0.35, MaxRetries: 2})
	s, err := Compute(q, root, true)
	if err != nil {
		t.Fatal(err)
	}
	if s.Jobs.Failed != tr.FailedJobs {
		t.Errorf("failed jobs = %d, trace %d", s.Jobs.Failed, tr.FailedJobs)
	}
	if s.Jobs.Retries != tr.TotalRetries {
		t.Errorf("retries = %d, trace %d", s.Jobs.Retries, tr.TotalRetries)
	}
	if s.Jobs.Succeeded+s.Jobs.Failed+s.Jobs.Incomplete != s.Jobs.Total {
		t.Errorf("job counts do not add up: %+v", s.Jobs)
	}
	if s.Tasks.Failed == 0 && tr.FailedJobs > 0 {
		t.Error("failed jobs but no failed tasks")
	}
}

func TestSummaryRender(t *testing.T) {
	q, _, root := load(t, synth.Config{Seed: 3, Jobs: 16, SubWorkflows: 2})
	s, _ := Compute(q, root, true)
	text := s.Render()
	for _, want := range []string{"Tasks", "Jobs", "Sub WF", "Workflow wall time", "Workflow cumulative job wall time"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}
}

func TestBreakdownGroupsByTransformation(t *testing.T) {
	types := []synth.JobType{
		{Name: "exec", MeanSeconds: 70, StddevPct: 0.05, Weight: 4},
		{Name: "zipper", MeanSeconds: 1, StddevPct: 0, Weight: 1},
	}
	q, _, root := load(t, synth.Config{Seed: 4, Jobs: 25, JobTypes: types})
	rows, err := Breakdown(q, root, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("breakdown rows = %d, want 2", len(rows))
	}
	byName := map[string]BreakdownRow{}
	for _, r := range rows {
		byName[r.Type] = r
	}
	ex := byName["exec"]
	zp := byName["zipper"]
	if ex.Count != 20 || zp.Count != 5 {
		t.Errorf("counts: exec=%d zipper=%d", ex.Count, zp.Count)
	}
	if ex.Mean < 50 || ex.Mean > 90 {
		t.Errorf("exec mean = %.1f, want ~70", ex.Mean)
	}
	if zp.Mean > 3 {
		t.Errorf("zipper mean = %.1f, want ~1", zp.Mean)
	}
	if ex.Min > ex.Mean || ex.Max < ex.Mean {
		t.Errorf("min/mean/max inconsistent: %+v", ex)
	}
	if got := ex.Total; math.Abs(got-ex.Mean*float64(ex.Count)) > 0.5 {
		t.Errorf("total %.1f != mean*count %.1f", got, ex.Mean*float64(ex.Count))
	}
	text := RenderBreakdown(rows)
	if !strings.Contains(text, "exec") || !strings.Contains(text, "zipper") {
		t.Errorf("render missing rows:\n%s", text)
	}
}

func TestJobsReport(t *testing.T) {
	q, _, root := load(t, synth.Config{Seed: 5, Jobs: 10, Hosts: 2, SlotsPerHost: 1, QueueDelayMean: 1})
	rows, err := JobsReport(q, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Try != 1 {
			t.Errorf("%s try = %d", r.Job, r.Try)
		}
		if r.Site != "cloud" {
			t.Errorf("%s site = %q", r.Job, r.Site)
		}
		if r.InvocationDuration <= 0 {
			t.Errorf("%s invocation duration = %v", r.Job, r.InvocationDuration)
		}
		if r.Runtime <= 0 {
			t.Errorf("%s runtime = %v", r.Job, r.Runtime)
		}
		if r.QueueTime < 0 {
			t.Errorf("%s negative queue time", r.Job)
		}
		if r.Host == "None" {
			t.Errorf("%s has no host", r.Job)
		}
		if r.Exit != 0 {
			t.Errorf("%s exit = %d", r.Job, r.Exit)
		}
	}
	text := RenderJobs(rows)
	if !strings.Contains(text, "Queue Time") || !strings.Contains(text, "Invocation Duration") {
		t.Errorf("render headers missing:\n%s", text)
	}
}

func TestJobsReportRetriesShowFinalTry(t *testing.T) {
	q, tr, root := load(t, synth.Config{Seed: 4, Jobs: 60, FailureRate: 0.4, MaxRetries: 3})
	if tr.TotalRetries == 0 {
		t.Skip("no retries in trace")
	}
	rows, err := JobsReport(q, root)
	if err != nil {
		t.Fatal(err)
	}
	sawRetried := false
	for _, r := range rows {
		if r.Try > 1 {
			sawRetried = true
		}
	}
	if !sawRetried {
		t.Error("no job row shows try > 1")
	}
}

func TestHostsBreakdown(t *testing.T) {
	q, _, root := load(t, synth.Config{Seed: 6, Jobs: 40, Hosts: 4})
	usage, err := HostsBreakdown(q, root, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(usage) != 4 {
		t.Fatalf("hosts = %d", len(usage))
	}
	totalJobs := 0
	for _, u := range usage {
		totalJobs += u.Jobs
		if u.TotalRuntime <= 0 || u.Invocations == 0 {
			t.Errorf("host %s: %+v", u.Host, u)
		}
	}
	if totalJobs != 40 {
		t.Errorf("jobs across hosts = %d, want 40", totalJobs)
	}
}

func TestProgressSeriesPerBundle(t *testing.T) {
	q, tr, root := load(t, synth.Config{Seed: 7, Jobs: 48, SubWorkflows: 6, Hosts: 4, SlotsPerHost: 2})
	series, err := ProgressSeries(q, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("series = %d, want 6", len(series))
	}
	for uuid, pts := range series {
		if len(pts) < 2 {
			t.Fatalf("bundle %s has %d points", uuid, len(pts))
		}
		// Monotone in both axes.
		for i := 1; i < len(pts); i++ {
			if pts[i].T < pts[i-1].T {
				t.Errorf("bundle %s time went backwards at %d", uuid, i)
			}
			if pts[i].CumRuntime < pts[i-1].CumRuntime {
				t.Errorf("bundle %s cumulative runtime decreased", uuid)
			}
		}
		final := pts[len(pts)-1]
		if final.Invocations != 8 { // 48 jobs / 6 bundles
			t.Errorf("bundle %s finished %d invocations, want 8", uuid, final.Invocations)
		}
	}
	text := RenderProgress(series)
	if !strings.Contains(text, "cum_runtime_s") {
		t.Errorf("render missing header")
	}
	_ = tr
}

func TestProgressSeriesFlatWorkflowFallsBackToRoot(t *testing.T) {
	q, tr, root := load(t, synth.Config{Seed: 8, Jobs: 12})
	series, err := ProgressSeries(q, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("series = %d, want 1", len(series))
	}
	pts := series[tr.RootUUID]
	if pts == nil {
		t.Fatal("root series missing")
	}
	if pts[len(pts)-1].Invocations != 12 {
		t.Errorf("final invocations = %d", pts[len(pts)-1].Invocations)
	}
}
