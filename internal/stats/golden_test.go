package stats

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/query"
	"repro/internal/synth"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// golden compares got against testdata/<name>, or rewrites the file when
// the -update flag is set:
//
//	go test ./internal/stats -run TestGolden -update
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// goldenWorkload is one fixed synthetic run exercised by every report:
// a hierarchical workflow with retries, failures and multiple hosts, so
// each renderer's formatting paths (percentages, retry columns, host
// names, sub-workflow rollups) all appear in the goldens.
func goldenWorkload(t *testing.T) (*query.QI, int64) {
	t.Helper()
	qi, _, id := load(t, synth.Config{
		Seed: 42, Jobs: 18, SubWorkflows: 3,
		Hosts: 3, SlotsPerHost: 2,
		FailureRate: 0.2, MaxRetries: 2,
	})
	return qi, id
}

func TestGoldenSummary(t *testing.T) {
	q, root := goldenWorkload(t)
	s, err := Compute(q, root, true)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "summary.golden", s.Render())
}

func TestGoldenBreakdown(t *testing.T) {
	q, root := goldenWorkload(t)
	rows, err := Breakdown(q, root, true)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "breakdown.golden", RenderBreakdown(rows))
}

func TestGoldenJobs(t *testing.T) {
	q, root := goldenWorkload(t)
	rows, err := JobsReport(q, root)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "jobs.golden", RenderJobs(rows))
}
