package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/query"
)

// HostTimeBucket is one cell of the "tasks and jobs over time on hosts"
// breakdown: how many invocations each host completed, and how much
// runtime they accumulated, within one time window of the run.
type HostTimeBucket struct {
	Host        string
	BucketStart time.Time
	Offset      float64 // seconds from the workflow start
	Invocations int
	Runtime     float64 // seconds of invocation runtime finishing in this bucket
}

// HostTimeSeries computes the per-host activity timeline over the
// workflow hierarchy, bucketed into the given window. A zero window
// defaults to 60 seconds (the granularity the published tool uses).
func HostTimeSeries(q *query.QI, wfID int64, recurse bool, bucket time.Duration) ([]HostTimeBucket, error) {
	if bucket <= 0 {
		bucket = time.Minute
	}
	q, done := q.Snapshot()
	defer done()
	ids, err := scope(q, wfID, recurse)
	if err != nil {
		return nil, err
	}
	states, err := q.WorkflowStates(wfID)
	if err != nil {
		return nil, err
	}
	var start time.Time
	for _, s := range states {
		if s.State == "WORKFLOW_STARTED" {
			start = s.Timestamp
			break
		}
	}
	type key struct {
		host   string
		bucket int64
	}
	acc := map[key]*HostTimeBucket{}
	for _, id := range ids {
		jobs, err := q.Jobs(id)
		if err != nil {
			return nil, err
		}
		for _, j := range jobs {
			insts, err := q.JobInstances(j.ID)
			if err != nil {
				return nil, err
			}
			for _, inst := range insts {
				host := inst.Hostname
				if host == "" {
					host = "None"
				}
				invs, err := q.InvocationsForInstance(inst.ID)
				if err != nil {
					return nil, err
				}
				for _, inv := range invs {
					end := inv.StartTime.Add(time.Duration(inv.RemoteDuration * float64(time.Second)))
					if start.IsZero() {
						start = inv.StartTime
					}
					b := int64(end.Sub(start) / bucket)
					if b < 0 {
						b = 0
					}
					k := key{host, b}
					cell, ok := acc[k]
					if !ok {
						cell = &HostTimeBucket{
							Host:        host,
							BucketStart: start.Add(time.Duration(b) * bucket),
							Offset:      (time.Duration(b) * bucket).Seconds(),
						}
						acc[k] = cell
					}
					cell.Invocations++
					cell.Runtime += inv.RemoteDuration
				}
			}
		}
	}
	out := make([]HostTimeBucket, 0, len(acc))
	for _, cell := range acc {
		out = append(out, *cell)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Host != out[j].Host {
			return out[i].Host < out[j].Host
		}
		return out[i].Offset < out[j].Offset
	})
	return out, nil
}

// RenderHostTimeSeries formats the timeline as aligned columns.
func RenderHostTimeSeries(buckets []HostTimeBucket) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %12s %12s\n", "Host", "t_start_s", "invocations", "runtime_s")
	for _, c := range buckets {
		fmt.Fprintf(&b, "%-16s %10.0f %12d %12.1f\n", c.Host, c.Offset, c.Invocations, c.Runtime)
	}
	return b.String()
}
