// Package stats implements stampede_statistics: workflow- and job-level
// performance statistics extracted through the Stampede query interface
// (the paper's §VII). Each report corresponds to a published artifact:
//
//   - Summary          -> Table I   (counts, wall time, cumulative time)
//   - Breakdown        -> Table II  (breakdown.txt, per-transformation)
//   - JobsReport       -> Tables III & IV (jobs.txt, per-job)
//   - HostsBreakdown   -> "jobs and runtime per host over time"
//   - ProgressSeries   -> Figure 7  (cumulative runtime per sub-workflow)
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/archive"
	"repro/internal/query"
)

// Counts is one row of the Table I summary.
type Counts struct {
	Succeeded  int
	Failed     int
	Incomplete int
	Total      int
	Retries    int
}

// Summary is the stampede-statistics summary block (Table I).
type Summary struct {
	Tasks        Counts
	Jobs         Counts
	SubWorkflows Counts
	// WallTime is the root workflow's start-to-end duration as reported
	// by the engine.
	WallTime time.Duration
	// CumulativeJobWallTime sums every invocation's remote duration
	// across the hierarchy — the "perfect system without delays" resource
	// estimate.
	CumulativeJobWallTime time.Duration
}

// scope resolves which workflow row ids a report covers.
func scope(q *query.QI, wfID int64, recurse bool) ([]int64, error) {
	ids := []int64{wfID}
	if !recurse {
		return ids, nil
	}
	desc, err := q.Descendants(wfID)
	if err != nil {
		return nil, err
	}
	for _, d := range desc {
		ids = append(ids, d.ID)
	}
	return ids, nil
}

// Compute builds the Table I summary for the workflow, aggregating over
// its whole sub-workflow hierarchy when recurse is set (the paper's DART
// numbers are hierarchy-wide).
func Compute(q *query.QI, wfID int64, recurse bool) (*Summary, error) {
	// One snapshot covers the whole report: totals, per-workflow drill-down
	// and wall time all describe the same instant of a live run.
	q, done := q.Snapshot()
	defer done()
	ids, err := scope(q, wfID, recurse)
	if err != nil {
		return nil, err
	}
	s := &Summary{}
	for _, id := range ids {
		if err := s.addWorkflow(q, id); err != nil {
			return nil, err
		}
	}
	// Sub-workflow counts come from the hierarchy itself.
	if recurse {
		desc, err := q.Descendants(wfID)
		if err != nil {
			return nil, err
		}
		for _, d := range desc {
			s.SubWorkflows.Total++
			states, err := q.WorkflowStates(d.ID)
			if err != nil {
				return nil, err
			}
			final := finalWfStatus(states)
			switch {
			case final == nil:
				s.SubWorkflows.Incomplete++
			case *final == 0:
				s.SubWorkflows.Succeeded++
			default:
				s.SubWorkflows.Failed++
			}
		}
	}
	wall, err := q.Walltime(wfID)
	if err != nil {
		return nil, err
	}
	s.WallTime = wall
	return s, nil
}

func finalWfStatus(states []query.StateRecord) *int64 {
	for i := len(states) - 1; i >= 0; i-- {
		if states[i].State == archive.WFStateTerminated && states[i].HasStatus {
			v := states[i].Status
			return &v
		}
	}
	return nil
}

func (s *Summary) addWorkflow(q *query.QI, wfID int64) error {
	jobs, err := q.Jobs(wfID)
	if err != nil {
		return err
	}
	tasks, err := q.Tasks(wfID)
	if err != nil {
		return err
	}
	invs, err := q.Invocations(wfID)
	if err != nil {
		return err
	}
	// Task outcomes come from the invocations that instantiated them.
	taskExit := map[string]int64{}
	taskSeen := map[string]bool{}
	for _, inv := range invs {
		if inv.AbsTaskID == "" {
			continue
		}
		taskSeen[inv.AbsTaskID] = true
		taskExit[inv.AbsTaskID] = inv.Exitcode
		s.CumulativeJobWallTime += time.Duration(inv.RemoteDuration * float64(time.Second))
	}
	for _, inv := range invs {
		if inv.AbsTaskID == "" {
			s.CumulativeJobWallTime += time.Duration(inv.RemoteDuration * float64(time.Second))
		}
	}
	for _, task := range tasks {
		s.Tasks.Total++
		switch {
		case !taskSeen[task.AbsTaskID]:
			s.Tasks.Incomplete++
		case taskExit[task.AbsTaskID] == 0:
			s.Tasks.Succeeded++
		default:
			s.Tasks.Failed++
		}
	}
	for _, j := range jobs {
		s.Jobs.Total++
		insts, err := q.JobInstances(j.ID)
		if err != nil {
			return err
		}
		if len(insts) == 0 {
			s.Jobs.Incomplete++
			continue
		}
		s.Jobs.Retries += len(insts) - 1
		last := insts[len(insts)-1]
		switch {
		case !last.HasExitcode:
			s.Jobs.Incomplete++
		case last.Exitcode == 0:
			s.Jobs.Succeeded++
		default:
			s.Jobs.Failed++
		}
	}
	return nil
}

// Render formats the summary as the published tool's text block (Table I).
func (s *Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %9s %6s %10s %5s %7s\n", "Type", "Succeeded", "Failed", "Incomplete", "Total", "Retries")
	row := func(name string, c Counts) {
		fmt.Fprintf(&b, "%-8s %9d %6d %10d %5d %7d\n", name, c.Succeeded, c.Failed, c.Incomplete, c.Total, c.Retries)
	}
	row("Tasks", s.Tasks)
	row("Jobs", s.Jobs)
	row("Sub WF", s.SubWorkflows)
	fmt.Fprintf(&b, "Workflow wall time : %s (%d seconds)\n", humanDuration(s.WallTime), int(s.WallTime.Seconds()))
	fmt.Fprintf(&b, "Workflow cumulative job wall time : %s (%d seconds)\n",
		humanDuration(s.CumulativeJobWallTime), int(s.CumulativeJobWallTime.Seconds()))
	return b.String()
}

func humanDuration(d time.Duration) string {
	total := int(d.Seconds())
	h, m, sec := total/3600, (total%3600)/60, total%60
	switch {
	case h > 0:
		return fmt.Sprintf("%d hrs, %d mins", h, m)
	case m > 0:
		return fmt.Sprintf("%d mins, %d sec", m, sec)
	default:
		return fmt.Sprintf("%d sec", sec)
	}
}

// BreakdownRow is one line of breakdown.txt (Table II): per-transformation
// invocation statistics within a workflow scope.
type BreakdownRow struct {
	Type    string
	Count   int
	Success int
	Failed  int
	Min     float64
	Max     float64
	Mean    float64
	Total   float64
}

// Breakdown computes Table II over the workflow (and its hierarchy when
// recurse is set), grouped by transformation and sorted by name.
func Breakdown(q *query.QI, wfID int64, recurse bool) ([]BreakdownRow, error) {
	q, done := q.Snapshot()
	defer done()
	ids, err := scope(q, wfID, recurse)
	if err != nil {
		return nil, err
	}
	acc := map[string]*BreakdownRow{}
	for _, id := range ids {
		invs, err := q.Invocations(id)
		if err != nil {
			return nil, err
		}
		for _, inv := range invs {
			r, ok := acc[inv.Transformation]
			if !ok {
				r = &BreakdownRow{Type: inv.Transformation, Min: math.Inf(1), Max: math.Inf(-1)}
				acc[inv.Transformation] = r
			}
			r.Count++
			if inv.Exitcode == 0 {
				r.Success++
			} else {
				r.Failed++
			}
			d := inv.RemoteDuration
			r.Total += d
			if d < r.Min {
				r.Min = d
			}
			if d > r.Max {
				r.Max = d
			}
		}
	}
	out := make([]BreakdownRow, 0, len(acc))
	for _, r := range acc {
		if r.Count > 0 {
			r.Mean = r.Total / float64(r.Count)
		}
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out, nil
}

// RenderBreakdown formats breakdown rows as the breakdown.txt table.
func RenderBreakdown(rows []BreakdownRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %5s %7s %6s %8s %8s %8s %9s\n",
		"Type", "Count", "Success", "Failed", "Min", "Max", "Mean", "Total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %5d %7d %6d %8.1f %8.1f %8.1f %9.1f\n",
			r.Type, r.Count, r.Success, r.Failed, r.Min, r.Max, r.Mean, r.Total)
	}
	return b.String()
}

// JobRow is one line of jobs.txt (Tables III and IV merged): the job's
// final attempt with both remote-view and engine-view timings.
type JobRow struct {
	Job                string
	Try                int64
	Site               string
	InvocationDuration float64 // Table III: duration on the remote host
	QueueTime          float64 // Table IV: seconds in the remote queue
	Runtime            float64 // Table IV: engine-measured runtime
	CPUTime            float64 // actual CPU seconds used, when captured
	HasCPUTime         bool
	Exit               int64
	Host               string
}

// JobsReport computes jobs.txt for one workflow (not recursive: the
// published tool reports each sub-workflow's jobs separately).
func JobsReport(q *query.QI, wfID int64) ([]JobRow, error) {
	q, done := q.Snapshot()
	defer done()
	jobs, err := q.Jobs(wfID)
	if err != nil {
		return nil, err
	}
	out := make([]JobRow, 0, len(jobs))
	for _, j := range jobs {
		insts, err := q.JobInstances(j.ID)
		if err != nil {
			return nil, err
		}
		if len(insts) == 0 {
			out = append(out, JobRow{Job: j.ExecJobID, Host: "None"})
			continue
		}
		last := insts[len(insts)-1]
		row := JobRow{
			Job:     j.ExecJobID,
			Try:     last.SubmitSeq,
			Site:    last.Site,
			Runtime: last.LocalDuration,
			Host:    last.Hostname,
		}
		if row.Host == "" {
			row.Host = "None"
		}
		if last.HasExitcode {
			row.Exit = last.Exitcode
		}
		invs, err := q.InvocationsForInstance(last.ID)
		if err != nil {
			return nil, err
		}
		for _, inv := range invs {
			row.InvocationDuration += inv.RemoteDuration
			if inv.HasCPUTime {
				row.CPUTime += inv.RemoteCPUTime
				row.HasCPUTime = true
			}
		}
		delays, err := q.InstanceDelays(last.ID)
		if err != nil {
			return nil, err
		}
		row.QueueTime = delays.QueueTime.Seconds()
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job < out[j].Job })
	return out, nil
}

// RenderJobs formats job rows as the two jobs.txt sections (Tables III
// and IV).
func RenderJobs(rows []JobRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %4s %-14s %s\n", "Job", "Try", "Site", "Invocation Duration")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %4d %-14s %.1f\n", r.Job, r.Try, r.Site, r.InvocationDuration)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-24s %10s %8s %9s %5s %-14s\n", "Job", "Queue Time", "Runtime", "CPU Time", "Exit", "Host")
	for _, r := range rows {
		cpu := "-"
		if r.HasCPUTime {
			cpu = fmt.Sprintf("%.1f", r.CPUTime)
		}
		fmt.Fprintf(&b, "%-24s %10.2f %8.1f %9s %5d %-14s\n", r.Job, r.QueueTime, r.Runtime, cpu, r.Exit, r.Host)
	}
	return b.String()
}

// HostUsage aggregates work per execution host (the paper's "breakdown of
// tasks and jobs over time on hosts").
type HostUsage struct {
	Host         string
	Jobs         int
	Invocations  int
	TotalRuntime float64
}

// HostsBreakdown aggregates invocation work by host across the hierarchy.
// Instances without host information are reported under "None".
func HostsBreakdown(q *query.QI, wfID int64, recurse bool) ([]HostUsage, error) {
	q, done := q.Snapshot()
	defer done()
	ids, err := scope(q, wfID, recurse)
	if err != nil {
		return nil, err
	}
	acc := map[string]*HostUsage{}
	for _, id := range ids {
		jobs, err := q.Jobs(id)
		if err != nil {
			return nil, err
		}
		for _, j := range jobs {
			insts, err := q.JobInstances(j.ID)
			if err != nil {
				return nil, err
			}
			for _, inst := range insts {
				host := inst.Hostname
				if host == "" {
					host = "None"
				}
				u, ok := acc[host]
				if !ok {
					u = &HostUsage{Host: host}
					acc[host] = u
				}
				u.Jobs++
				invs, err := q.InvocationsForInstance(inst.ID)
				if err != nil {
					return nil, err
				}
				for _, inv := range invs {
					u.Invocations++
					u.TotalRuntime += inv.RemoteDuration
				}
			}
		}
	}
	out := make([]HostUsage, 0, len(acc))
	for _, u := range acc {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out, nil
}

// ProgressPoint is one point of a Figure 7 curve: wall-clock offset from
// the root workflow's start, and the cumulative invocation runtime of the
// bundle at that moment.
type ProgressPoint struct {
	T           float64 // seconds since root start
	CumRuntime  float64 // seconds of completed invocation work
	Invocations int     // completed invocations so far
}

// ProgressSeries computes the Figure 7 progress-to-completion curves: one
// series per direct sub-workflow ("bundle") of the root, each tracking
// cumulative completed runtime against wall-clock time. When the root has
// no sub-workflows, a single series for the root itself is returned under
// its UUID.
func ProgressSeries(q *query.QI, rootID int64) (map[string][]ProgressPoint, error) {
	q, done := q.Snapshot()
	defer done()
	root, err := q.Workflow(rootID)
	if err != nil {
		return nil, err
	}
	states, err := q.WorkflowStates(rootID)
	if err != nil {
		return nil, err
	}
	var start time.Time
	for _, s := range states {
		if s.State == archive.WFStateStarted {
			start = s.Timestamp
			break
		}
	}
	if start.IsZero() {
		start = root.Timestamp
	}
	subs, err := q.SubWorkflows(rootID)
	if err != nil {
		return nil, err
	}
	if len(subs) == 0 {
		subs = []query.Workflow{*root}
	}
	out := make(map[string][]ProgressPoint, len(subs))
	for _, sub := range subs {
		invs, err := q.Invocations(sub.ID)
		if err != nil {
			return nil, err
		}
		type done struct {
			at  time.Time
			dur float64
		}
		events := make([]done, 0, len(invs))
		for _, inv := range invs {
			end := inv.StartTime.Add(time.Duration(inv.RemoteDuration * float64(time.Second)))
			events = append(events, done{at: end, dur: inv.RemoteDuration})
		}
		sort.Slice(events, func(i, j int) bool { return events[i].at.Before(events[j].at) })
		series := make([]ProgressPoint, 0, len(events)+1)
		series = append(series, ProgressPoint{T: 0})
		var cum float64
		for i, e := range events {
			cum += e.dur
			series = append(series, ProgressPoint{
				T:           e.at.Sub(start).Seconds(),
				CumRuntime:  cum,
				Invocations: i + 1,
			})
		}
		out[sub.UUID] = series
	}
	return out, nil
}

// RenderProgress renders progress series as aligned columns for plotting:
// one line per point, "series_index t cum_runtime".
func RenderProgress(series map[string][]ProgressPoint) string {
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %14s %6s\n", "bundle", "t_sec", "cum_runtime_s", "done")
	for i, k := range keys {
		for _, p := range series[k] {
			fmt.Fprintf(&b, "%-8d %10.1f %14.1f %6d\n", i, p.T, p.CumRuntime, p.Invocations)
		}
	}
	return b.String()
}
