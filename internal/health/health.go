// Package health is the system's self-monitoring layer: an SLO engine
// that evaluates declarative objectives over multi-window burn rates,
// drives an alert state machine (pending → firing → resolved), and — on
// any transition to firing — snapshots a flight recorder into a
// content-addressed diagnostics bundle (recorder.go). The paper argues a
// monitoring infrastructure must itself be monitored in real time; the
// telemetry package made the stack observable, this package makes it
// self-judging: is this node healthy enough to serve?
//
// Everything here runs at tick time (default 1s), off the hot path.
// Signals are pure reads of state the ingest pipeline already maintains
// — telemetry atomics, trace watermarks, checkpoint stats — so attaching
// an engine adds zero allocations per event (the root
// hotpath_alloc_test.go enforces this with an engine running).
//
// Burn-rate semantics follow SRE multi-window alerting: an objective
// allows a breach-sample budget (say 10% of ticks over the slow window);
// the burn rate is the observed breach fraction divided by that budget,
// and an alert goes pending only while BOTH the fast and the slow window
// burn at or above the configured rate — the fast window makes onset
// quick, the slow window keeps one spike from paging. Resolution is
// deliberately asymmetric: once firing, the alert resolves after the raw
// signal has been continuously clear for ClearFor, so recovery does not
// wait for the slow window's memory to decay.
package health

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wfclock"
)

// SignalFunc produces one observation of a health signal. ok=false means
// the signal is not available here (subsystem absent, no new data for
// windowed quantiles); absent observations count against no budget.
// Signals are evaluated exactly once per engine tick — stateful signals
// (rates, histogram deltas) rely on this and must not be shared between
// engines.
type SignalFunc func() (float64, bool)

// Op says which side of the threshold is a breach.
type Op uint8

const (
	// Above breaches when the signal exceeds the threshold.
	Above Op = iota
	// Below breaches when the signal is under the threshold.
	Below
)

// Objective is one declarative SLO.
type Objective struct {
	Name     string `json:"name"`
	Help     string `json:"help,omitempty"`
	Severity string `json:"severity,omitempty"` // "page", "ticket", ...
	Signal   string `json:"signal"`             // registered signal name
	Op       Op     `json:"-"`

	Threshold float64 `json:"threshold"`

	// Budget is the allowed breach fraction of ticks (error budget) per
	// window; 0 means 0.1. BurnRate is the multiple of Budget at which
	// the alert trips; 0 means 1.
	Budget   float64 `json:"budget,omitempty"`
	BurnRate float64 `json:"burn_rate,omitempty"`

	// Fast and Slow are the two burn windows (defaults 1m / 5m). For is
	// the pending-damping duration before firing. ClearFor is how long
	// the raw signal must stay continuously clear before a firing alert
	// resolves; 0 means Fast.
	Fast     time.Duration `json:"fast,omitempty"`
	Slow     time.Duration `json:"slow,omitempty"`
	For      time.Duration `json:"for,omitempty"`
	ClearFor time.Duration `json:"clear_for,omitempty"`

	// GateReady makes /readyz report 503 while this objective fires.
	GateReady bool `json:"gate_ready,omitempty"`
}

func (o Objective) breached(v float64) bool {
	if o.Op == Below {
		return v < o.Threshold
	}
	return v > o.Threshold
}

// State is an objective's position in the alert lifecycle.
type State uint8

const (
	Inactive State = iota
	Pending
	Firing
)

func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Firing:
		return "firing"
	default:
		return "inactive"
	}
}

// Alert is one lifecycle transition (or, from Active, a current alert).
// State is the transition entered: "pending", "firing", "resolved", or
// "canceled" (pending that cleared before its For elapsed).
type Alert struct {
	SLO       string    `json:"slo"`
	Severity  string    `json:"severity,omitempty"`
	State     string    `json:"state"`
	Signal    string    `json:"signal"`
	Value     float64   `json:"value"`
	Threshold float64   `json:"threshold"`
	FastBurn  float64   `json:"fast_burn"`
	SlowBurn  float64   `json:"slow_burn"`
	At        time.Time `json:"at"`
	Since     time.Time `json:"since,omitempty"` // pending/firing onset
	BundleID  string    `json:"bundle_id,omitempty"`
}

// Partition mirrors one store partition for the diagnostics bundle: the
// current visibility epoch and checkpoint high-water seq.
type Partition struct {
	Partition            int     `json:"partition"`
	Epoch                uint64  `json:"epoch"`
	CheckpointTaken      bool    `json:"checkpoint_taken"`
	CheckpointSeq        uint64  `json:"checkpoint_seq"`
	CheckpointBytes      int64   `json:"checkpoint_bytes,omitempty"`
	CheckpointAgeSeconds float64 `json:"checkpoint_age_seconds,omitempty"`
}

// Config wires an Engine. The zero value of every field is usable.
type Config struct {
	// Clock paces ticks and timestamps samples; nil means wfclock.Real.
	Clock wfclock.Clock
	// Every is the evaluation interval; 0 means 1s.
	Every time.Duration
	// Registry is where signals read metrics from and what the bundle
	// dumps; nil means telemetry.Default(). Engine metrics always
	// register on the Default registry regardless.
	Registry *telemetry.Registry
	// Ring supplies recent spans for the bundle; nil means
	// trace.Default().
	Ring *trace.Ring
	// BundleDir is where firing transitions write bundle-<id>.tar.gz;
	// empty disables automatic bundle files (/debug/bundle still works).
	BundleDir string
	// Partitions supplies the partition map for the bundle (see
	// PartitionsOf); nil means none.
	Partitions func() []Partition
	// RetainAlerts bounds the transition ring (0 = 256); RecorderNotes
	// bounds the flight-recorder note ring (0 = 512).
	RetainAlerts  int
	RecorderNotes int
	// OnAlert, if set, observes every transition after it is recorded
	// (bundle ID already attached on firing). Called outside the engine
	// lock from the tick goroutine; must not block for long.
	OnAlert func(Alert)
}

// Engine metrics live on the Default registry like every other
// subsystem's. Gauges are adjusted by delta so concurrent engines (tests)
// compose, and an engine removes its own contribution on Close.
var (
	mEvals = telemetry.NewCounter("stampede_health_evals_total",
		"Health engine evaluation ticks.")
	mBundlesTotal = telemetry.NewCounter("stampede_health_bundles_total",
		"Diagnostics bundles built.")
	mReady = telemetry.NewGauge("stampede_health_ready",
		"1 when no ready-gating objective is firing (most recent engine).")
	mAlertsFiring = telemetry.NewGauge("stampede_alerts_firing",
		"Objectives currently firing.")
	mAlertsPending = telemetry.NewGauge("stampede_alerts_pending",
		"Objectives currently pending (breaching, inside their for-duration).")
	mTransitions = telemetry.NewCounterVec("stampede_alerts_transitions_total",
		"Alert state transitions by entered state.", "state")
	mSignal = telemetry.NewGaugeVec("stampede_health_signal",
		"Last evaluated value of each health signal.", "signal")
	mBurn = telemetry.NewGaugeVec("stampede_health_burn_rate",
		"Error-budget burn rate per objective and window.", "slo", "window")
)

func init() {
	// Pre-resolve every transition child so the family shows up in the
	// exposition (and in dashboards) before the first alert ever fires.
	for _, s := range []string{"pending", "firing", "resolved", "canceled"} {
		mTransitions.With(s)
	}
	mReady.Set(1)
}

type sample struct {
	t      time.Time
	v      float64
	breach bool
	ok     bool
}

type signalState struct {
	fn   SignalFunc
	bits atomic.Uint64 // last value, float64 bits — read by scrape funcs
	ok   atomic.Bool
}

type objState struct {
	o       Objective
	samples []sample // circular, sized to the slow window
	pos, n  int
	state   State
	since   time.Time // pendingSince while pending, firedAt while firing
	// clearSince is the start of the current streak of clean (non-
	// breaching) ticks; zero while the raw signal is breaching.
	clearSince time.Time
	maxBurn    float64
	bundleID   string
	fastBits   atomic.Uint64 // scrape-time burn gauges
	slowBits   atomic.Uint64
}

func (s *objState) push(sm sample) {
	s.samples[s.pos] = sm
	s.pos = (s.pos + 1) % len(s.samples)
	if s.n < len(s.samples) {
		s.n++
	}
}

// frac returns the breach fraction over the trailing window w, walking
// newest-to-oldest. Samples whose signal was absent count as clean.
func (s *objState) frac(now time.Time, w time.Duration) float64 {
	cut := now.Add(-w)
	total, breaches := 0, 0
	for i := 0; i < s.n; i++ {
		sm := s.samples[(s.pos-1-i+len(s.samples))%len(s.samples)]
		if sm.t.Before(cut) {
			break
		}
		total++
		if sm.breach {
			breaches++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(breaches) / float64(total)
}

// Engine evaluates objectives on a tick and owns the alert lifecycle.
type Engine struct {
	cfg   Config
	clock wfclock.Clock
	every time.Duration
	reg   *telemetry.Registry
	ring  *trace.Ring
	rec   *Recorder
	start time.Time

	readyBit atomic.Bool // mirrors readiness for lock-free handlers

	mu       sync.Mutex
	signals  map[string]*signalState
	sigOrder []string
	objs     []*objState
	recent   []Alert // transition history, oldest first, bounded
	bundles  []string
	firing   int
	pending  int
	maxBurn  float64
	maxSLO   string
	closed   bool

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New returns an engine; call Register/AddObjective, then Start (or call
// Tick yourself under a manual clock).
func New(cfg Config) *Engine {
	if cfg.Clock == nil {
		cfg.Clock = wfclock.Real
	}
	if cfg.Every <= 0 {
		cfg.Every = time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default()
	}
	if cfg.Ring == nil {
		cfg.Ring = trace.Default()
	}
	if cfg.RetainAlerts <= 0 {
		cfg.RetainAlerts = 256
	}
	if cfg.RecorderNotes <= 0 {
		cfg.RecorderNotes = 512
	}
	e := &Engine{
		cfg:     cfg,
		clock:   cfg.Clock,
		every:   cfg.Every,
		reg:     cfg.Registry,
		ring:    cfg.Ring,
		start:   cfg.Clock.Now(),
		signals: make(map[string]*signalState),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	e.rec = newRecorder(cfg.Clock, cfg.RecorderNotes)
	e.readyBit.Store(true)
	return e
}

// Recorder returns the engine's flight recorder for Note calls.
func (e *Engine) Recorder() *Recorder { return e.rec }

// Register adds (or replaces) a named signal. The scrape-time
// stampede_health_signal gauge reads the cached last value, never the
// SignalFunc itself, so stateful signals advance only on ticks.
func (e *Engine) Register(name string, fn SignalFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ss, ok := e.signals[name]
	if !ok {
		ss = &signalState{}
		e.signals[name] = ss
		e.sigOrder = append(e.sigOrder, name)
		mSignal.SetFunc(func() float64 {
			return math.Float64frombits(ss.bits.Load())
		}, name)
	}
	ss.fn = fn
}

// AddObjective validates and installs one objective. The signal must
// already be registered.
func (e *Engine) AddObjective(o Objective) error {
	if o.Name == "" || o.Signal == "" {
		return fmt.Errorf("health: objective needs Name and Signal (got %q/%q)", o.Name, o.Signal)
	}
	if o.Budget <= 0 {
		o.Budget = 0.1
	}
	if o.Budget > 1 {
		return fmt.Errorf("health: objective %s: budget %v > 1", o.Name, o.Budget)
	}
	if o.BurnRate <= 0 {
		o.BurnRate = 1
	}
	if o.Fast <= 0 {
		o.Fast = time.Minute
	}
	if o.Slow <= 0 {
		o.Slow = 5 * time.Minute
	}
	if o.Fast > o.Slow {
		return fmt.Errorf("health: objective %s: fast window %v > slow window %v", o.Name, o.Fast, o.Slow)
	}
	if o.ClearFor <= 0 {
		o.ClearFor = o.Fast
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.signals[o.Signal]; !ok {
		return fmt.Errorf("health: objective %s wants unregistered signal %q", o.Name, o.Signal)
	}
	for _, st := range e.objs {
		if st.o.Name == o.Name {
			return fmt.Errorf("health: duplicate objective %q", o.Name)
		}
	}
	capacity := int(o.Slow/e.every) + 2
	if capacity < 8 {
		capacity = 8
	}
	st := &objState{o: o, samples: make([]sample, capacity), clearSince: e.clock.Now()}
	e.objs = append(e.objs, st)
	mBurn.SetFunc(func() float64 { return math.Float64frombits(st.fastBits.Load()) }, o.Name, "fast")
	mBurn.SetFunc(func() float64 { return math.Float64frombits(st.slowBits.Load()) }, o.Name, "slow")
	return nil
}

// AddObjectives installs every objective whose signal is registered here
// and skips the rest (a dashboard node has no WAL; its WAL objective
// simply doesn't apply). Invalid objectives still error.
func (e *Engine) AddObjectives(objs ...Objective) (int, error) {
	added := 0
	for _, o := range objs {
		e.mu.Lock()
		_, known := e.signals[o.Signal]
		e.mu.Unlock()
		if !known {
			continue
		}
		if err := e.AddObjective(o); err != nil {
			return added, err
		}
		added++
	}
	return added, nil
}

// Start begins ticking on the configured clock. Safe to call once.
func (e *Engine) Start() {
	e.startOnce.Do(func() {
		go func() {
			defer close(e.done)
			tk := wfclock.NewTicker(e.clock, e.every)
			defer tk.Stop()
			for {
				select {
				case <-e.stop:
					return
				case <-tk.C():
					e.Tick()
				}
			}
		}()
	})
}

// Close stops the tick loop and removes this engine's contribution to the
// shared alert gauges so later engines (tests) start from a clean slate.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	firing, pending := e.firing, e.pending
	e.mu.Unlock()

	select {
	case <-e.stop:
	default:
		close(e.stop)
	}
	e.startOnce.Do(func() { close(e.done) }) // never started: release waiters
	<-e.done
	mAlertsFiring.Add(int64(-firing))
	mAlertsPending.Add(int64(-pending))
}

// Tick evaluates every signal and objective once. Start calls this on
// the interval; manual-clock tests call it directly.
func (e *Engine) Tick() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	now := e.clock.Now()
	mEvals.Inc()

	// One evaluation per signal per tick; objectives read the cache.
	vals := make(map[string]sample, len(e.signals))
	for _, name := range e.sigOrder {
		ss := e.signals[name]
		v, ok := ss.fn()
		if !ok {
			v = 0
		}
		ss.bits.Store(math.Float64bits(v))
		ss.ok.Store(ok)
		vals[name] = sample{t: now, v: v, ok: ok}
	}

	var notify []Alert
	for _, st := range e.objs {
		sm := vals[st.o.Signal]
		sm.breach = sm.ok && st.o.breached(sm.v)
		st.push(sm)
		if sm.breach {
			st.clearSince = time.Time{}
		} else if st.clearSince.IsZero() {
			st.clearSince = now
		}

		fast := st.frac(now, st.o.Fast) / st.o.Budget
		slow := st.frac(now, st.o.Slow) / st.o.Budget
		st.fastBits.Store(math.Float64bits(fast))
		st.slowBits.Store(math.Float64bits(slow))
		if fast > st.maxBurn {
			st.maxBurn = fast
		}
		if fast > e.maxBurn {
			e.maxBurn, e.maxSLO = fast, st.o.Name
		}
		cond := fast >= st.o.BurnRate && slow >= st.o.BurnRate

		mk := func(state string) Alert {
			return Alert{
				SLO: st.o.Name, Severity: st.o.Severity, State: state,
				Signal: st.o.Signal, Value: sm.v, Threshold: st.o.Threshold,
				FastBurn: fast, SlowBurn: slow, At: now, Since: st.since,
			}
		}

		switch st.state {
		case Inactive:
			if cond {
				st.state, st.since = Pending, now
				e.pending++
				mAlertsPending.Inc()
				e.record(mk("pending"), &notify)
			}
		case Pending:
			if !cond {
				st.state = Inactive
				e.pending--
				mAlertsPending.Dec()
				e.record(mk("canceled"), &notify)
				break
			}
			if now.Sub(st.since) >= st.o.For {
				st.state, st.since = Firing, now
				e.pending--
				e.firing++
				mAlertsPending.Dec()
				mAlertsFiring.Inc()
				a := mk("firing")
				if id, err := e.autoBundleLocked(&a); err == nil && id != "" {
					a.BundleID, st.bundleID = id, id
				} else if err != nil {
					e.rec.Note("bundle", "write failed: %v", err)
				}
				e.record(a, &notify)
			}
		case Firing:
			if !st.clearSince.IsZero() && now.Sub(st.clearSince) >= st.o.ClearFor {
				e.record(mk("resolved"), &notify) // Since still carries firedAt
				st.state, st.since = Inactive, time.Time{}
				st.bundleID = ""
				e.firing--
				mAlertsFiring.Dec()
			}
		}
	}

	ready := true
	for _, st := range e.objs {
		if st.o.GateReady && st.state == Firing {
			ready = false
		}
	}
	e.readyBit.Store(ready)
	if ready {
		mReady.Set(1)
	} else {
		mReady.Set(0)
	}
	cb := e.cfg.OnAlert
	e.mu.Unlock()

	if cb != nil {
		for _, a := range notify {
			cb(a)
		}
	}
}

// record appends one transition to the bounded retention ring.
func (e *Engine) record(a Alert, notify *[]Alert) {
	e.recent = append(e.recent, a)
	if over := len(e.recent) - e.cfg.RetainAlerts; over > 0 {
		e.recent = append(e.recent[:0], e.recent[over:]...)
	}
	mTransitions.With(a.State).Inc()
	e.rec.Note("alert", "%s %s (value=%.4g threshold=%.4g burn fast=%.2f slow=%.2f)",
		a.SLO, a.State, a.Value, a.Threshold, a.FastBurn, a.SlowBurn)
	*notify = append(*notify, a)
}

// autoBundleLocked writes a bundle file for a firing transition when a
// BundleDir is configured.
func (e *Engine) autoBundleLocked(trigger *Alert) (string, error) {
	if e.cfg.BundleDir == "" {
		return "", nil
	}
	id, _, err := e.writeBundleLocked(trigger)
	return id, err
}

// Ready reports whether no ready-gating objective is firing. Lock-free:
// safe from HTTP handlers while a tick holds the engine lock.
func (e *Engine) Ready() bool { return e.readyBit.Load() }

// FiringCount returns the number of objectives currently firing.
func (e *Engine) FiringCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.firing
}

// PendingCount returns the number of objectives currently pending.
func (e *Engine) PendingCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pending
}

// Signal returns the named signal's last evaluated value.
func (e *Engine) Signal(name string) (float64, bool) {
	e.mu.Lock()
	ss, ok := e.signals[name]
	e.mu.Unlock()
	if !ok {
		return 0, false
	}
	return math.Float64frombits(ss.bits.Load()), ss.ok.Load()
}

// Active returns one Alert per objective not currently inactive.
func (e *Engine) Active() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.activeLocked()
}

func (e *Engine) activeLocked() []Alert {
	var out []Alert
	for _, st := range e.objs {
		if st.state == Inactive {
			continue
		}
		sm := st.samples[(st.pos-1+len(st.samples))%len(st.samples)]
		out = append(out, Alert{
			SLO: st.o.Name, Severity: st.o.Severity, State: st.state.String(),
			Signal: st.o.Signal, Value: sm.v, Threshold: st.o.Threshold,
			FastBurn: math.Float64frombits(st.fastBits.Load()),
			SlowBurn: math.Float64frombits(st.slowBits.Load()),
			At:       sm.t, Since: st.since, BundleID: st.bundleID,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SLO < out[j].SLO })
	return out
}

// Recent returns the retained transition history, oldest first.
func (e *Engine) Recent() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Alert(nil), e.recent...)
}

// Objectives returns the installed objectives.
func (e *Engine) Objectives() []Objective {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Objective, len(e.objs))
	for i, st := range e.objs {
		out[i] = st.o
	}
	return out
}

// MaxBurn returns the highest fast-window burn rate seen by any
// objective since the engine started, and which objective saw it.
func (e *Engine) MaxBurn() (string, float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.maxSLO, e.maxBurn
}

// Bundles returns the IDs of bundles written so far, oldest first.
func (e *Engine) Bundles() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.bundles...)
}
