package health

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/wfclock"
)

// Note is one flight-recorder entry: a log-worthy event (loader restart,
// checkpoint, alert transition) the bundle preserves for triage.
type Note struct {
	At   time.Time `json:"at"`
	Kind string    `json:"kind"`
	Msg  string    `json:"msg"`
}

// Recorder is the black box: a bounded ring of recent notes. Subsystems
// call Note at event frequency (restarts, recoveries — never per-event),
// and the engine snapshots it into every diagnostics bundle.
type Recorder struct {
	clock wfclock.Clock
	mu    sync.Mutex
	notes []Note
	pos   int
	n     int
}

func newRecorder(clock wfclock.Clock, capacity int) *Recorder {
	return &Recorder{clock: clock, notes: make([]Note, capacity)}
}

// Note records one formatted entry, overwriting the oldest when full.
func (r *Recorder) Note(kind, format string, args ...any) {
	n := Note{At: r.clock.Now(), Kind: kind, Msg: fmt.Sprintf(format, args...)}
	r.mu.Lock()
	r.notes[r.pos] = n
	r.pos = (r.pos + 1) % len(r.notes)
	if r.n < len(r.notes) {
		r.n++
	}
	r.mu.Unlock()
}

// Notes returns the retained entries, oldest first.
func (r *Recorder) Notes() []Note {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Note, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.notes[(r.pos-r.n+i+len(r.notes))%len(r.notes)])
	}
	return out
}

// Meta is the bundle's meta.json.
type Meta struct {
	CreatedAt time.Time `json:"created_at"`
	Build     BuildInfo `json:"build"`
	Trigger   *Alert    `json:"trigger,omitempty"`
}

// SignalValue is one signal's last evaluation, in signals.json.
type SignalValue struct {
	Value float64 `json:"value"`
	OK    bool    `json:"ok"`
}

// SampleRecord is one retained objective sample, in signals.json.
type SampleRecord struct {
	At     time.Time `json:"at"`
	Value  float64   `json:"value"`
	Breach bool      `json:"breach"`
	OK     bool      `json:"ok"`
}

// ObjectiveStatus is one objective's live state, in signals.json.
type ObjectiveStatus struct {
	Objective
	State    string         `json:"state"`
	FastBurn float64        `json:"fast_burn"`
	SlowBurn float64        `json:"slow_burn"`
	MaxBurn  float64        `json:"max_burn"`
	Samples  []SampleRecord `json:"samples,omitempty"`
}

// SignalsDump is signals.json: what the engine saw.
type SignalsDump struct {
	Signals    map[string]SignalValue `json:"signals"`
	Objectives []ObjectiveStatus      `json:"objectives"`
}

// SpanRecord is one trace-ring span, in spans.json.
type SpanRecord struct {
	ID    uint64 `json:"id"`
	Stage string `json:"stage"`
	Label string `json:"label,omitempty"`
	Start int64  `json:"start_ns"`
	End   int64  `json:"end_ns"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// AlertsDump is alerts.json: current and retained alert state.
type AlertsDump struct {
	Active []Alert `json:"active"`
	Recent []Alert `json:"recent"`
}

// bundleEntry is one file inside the tar.gz.
type bundleEntry struct {
	name string
	data []byte
}

// BundleTo builds a diagnostics bundle and writes the tar.gz to w,
// returning its content-addressed ID (truncated sha256 of the archive
// bytes). trigger, when non-nil, is recorded in meta.json as the alert
// that caused the capture.
func (e *Engine) BundleTo(w io.Writer, trigger *Alert) (string, error) {
	e.mu.Lock()
	data, id, err := e.bundleLocked(trigger)
	e.mu.Unlock()
	if err != nil {
		return "", err
	}
	_, err = w.Write(data)
	return id, err
}

// WriteBundle builds a bundle and writes bundle-<id>.tar.gz into the
// configured BundleDir (the working directory when unset).
func (e *Engine) WriteBundle(trigger *Alert) (id, path string, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.writeBundleLocked(trigger)
}

func (e *Engine) writeBundleLocked(trigger *Alert) (id, path string, err error) {
	data, id, err := e.bundleLocked(trigger)
	if err != nil {
		return "", "", err
	}
	dir := e.cfg.BundleDir
	if dir == "" {
		dir = "."
	}
	path = filepath.Join(dir, "bundle-"+id+".tar.gz")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", "", err
	}
	e.bundles = append(e.bundles, id)
	e.rec.Note("bundle", "wrote %s (%d bytes)", path, len(data))
	return id, path, nil
}

// bundleLocked snapshots the flight recorder, alert state, metrics,
// spans, partition map and runtime profiles into one in-memory tar.gz.
// Every data source it touches is lock-free or self-locking (telemetry
// atomics, the span ring, the recorder's own mutex) — nothing here calls
// back into the engine lock it already holds, which is what makes the
// capture atomic with the firing transition that requested it.
func (e *Engine) bundleLocked(trigger *Alert) (data []byte, id string, err error) {
	now := e.clock.Now()
	entries := make([]bundleEntry, 0, 9)
	addJSON := func(name string, v any) {
		b, jerr := json.MarshalIndent(v, "", "  ")
		if jerr != nil {
			b = []byte(fmt.Sprintf("{\"error\":%q}", jerr.Error()))
		}
		entries = append(entries, bundleEntry{name, append(b, '\n')})
	}

	addJSON("meta.json", Meta{CreatedAt: now, Build: e.buildInfoLocked(), Trigger: trigger})
	addJSON("alerts.json", AlertsDump{Active: e.activeLocked(), Recent: append([]Alert(nil), e.recent...)})
	addJSON("signals.json", e.signalsDumpLocked())
	addJSON("notes.json", e.rec.Notes())
	addJSON("spans.json", e.spanRecords())
	if e.cfg.Partitions != nil {
		addJSON("partitions.json", e.cfg.Partitions())
	}

	var prom bytes.Buffer
	_ = e.reg.WritePrometheus(&prom)
	entries = append(entries, bundleEntry{"metrics.prom", prom.Bytes()})

	var goroutines bytes.Buffer
	if p := pprof.Lookup("goroutine"); p != nil {
		_ = p.WriteTo(&goroutines, 1)
	}
	entries = append(entries, bundleEntry{"goroutines.txt", goroutines.Bytes()})

	var heap bytes.Buffer
	if p := pprof.Lookup("heap"); p != nil {
		_ = p.WriteTo(&heap, 0)
	}
	entries = append(entries, bundleEntry{"heap.pprof", heap.Bytes()})

	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	for _, en := range entries {
		hdr := &tar.Header{Name: en.name, Mode: 0o644, Size: int64(len(en.data)), ModTime: now}
		if err := tw.WriteHeader(hdr); err != nil {
			return nil, "", err
		}
		if _, err := tw.Write(en.data); err != nil {
			return nil, "", err
		}
	}
	if err := tw.Close(); err != nil {
		return nil, "", err
	}
	if err := gz.Close(); err != nil {
		return nil, "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	id = hex.EncodeToString(sum[:8])
	mBundlesTotal.Inc()
	return buf.Bytes(), id, nil
}

func (e *Engine) signalsDumpLocked() SignalsDump {
	d := SignalsDump{Signals: make(map[string]SignalValue, len(e.signals))}
	for name, ss := range e.signals {
		d.Signals[name] = SignalValue{Value: math.Float64frombits(ss.bits.Load()), OK: ss.ok.Load()}
	}
	for _, st := range e.objs {
		status := ObjectiveStatus{
			Objective: st.o,
			State:     st.state.String(),
			FastBurn:  math.Float64frombits(st.fastBits.Load()),
			SlowBurn:  math.Float64frombits(st.slowBits.Load()),
			MaxBurn:   st.maxBurn,
		}
		for i := st.n - 1; i >= 0; i-- {
			sm := st.samples[(st.pos-1-i+len(st.samples))%len(st.samples)]
			status.Samples = append(status.Samples, SampleRecord{At: sm.t, Value: sm.v, Breach: sm.breach, OK: sm.ok})
		}
		d.Objectives = append(d.Objectives, status)
	}
	return d
}

func (e *Engine) spanRecords() []SpanRecord {
	spans := e.ring.Spans()
	out := make([]SpanRecord, 0, len(spans))
	for _, sp := range spans {
		out = append(out, SpanRecord{
			ID: sp.ID, Stage: sp.Stage.String(), Label: sp.Label,
			Start: sp.Start, End: sp.End, Epoch: sp.Epoch,
		})
	}
	return out
}
