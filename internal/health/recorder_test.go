package health

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wfclock"
)

func TestRecorderRingBounds(t *testing.T) {
	r := newRecorder(wfclock.NewManual(testEpoch), 4)
	for i := 0; i < 10; i++ {
		r.Note("k", "note %d", i)
	}
	notes := r.Notes()
	if len(notes) != 4 {
		t.Fatalf("retained %d notes, want 4", len(notes))
	}
	for i, n := range notes {
		if want := fmt.Sprintf("note %d", 6+i); n.Msg != want {
			t.Fatalf("note[%d] = %q, want %q (oldest-first)", i, n.Msg, want)
		}
	}
}

// TestBundleRoundtrip writes a bundle from a live engine and reads it
// back through the doctor path, checking every section survives.
func TestBundleRoundtrip(t *testing.T) {
	clk := wfclock.NewManual(testEpoch)
	ring := trace.NewRing(64)
	ring.Record(1, trace.StageApply, "wf-1", 100, 200)
	ring.Record(2, trace.StageCommit, "wf-1", 200, 300)

	e := New(Config{
		Clock: clk, Every: time.Second, Ring: ring,
		BundleDir: t.TempDir(),
		Partitions: func() []Partition {
			return []Partition{{Partition: 0, Epoch: 42, CheckpointTaken: true, CheckpointSeq: 7}}
		},
	})
	defer e.Close()

	val := 5.0
	e.Register("sig", func() (float64, bool) { return val, true })
	if err := e.AddObjective(Objective{
		Name: "rt-slo", Signal: "sig", Threshold: 1,
		Budget: 0.5, BurnRate: 1, Fast: 2 * time.Second, Slow: 4 * time.Second,
		For: time.Second, ClearFor: 2 * time.Second, GateReady: true,
	}); err != nil {
		t.Fatal(err)
	}
	e.Recorder().Note("loader", "restart for test")
	tickUntil(t, clk, e, 20, "firing", func() bool { return e.FiringCount() == 1 })

	id, path, err := e.WriteBundle(&e.Recent()[len(e.Recent())-1])
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := ReadBundle(f)
	if err != nil {
		t.Fatal(err)
	}

	if b.Meta.Build.GoVersion == "" || b.Meta.Build.Partitions != 1 {
		t.Fatalf("meta build = %+v", b.Meta.Build)
	}
	if b.Meta.Trigger == nil || b.Meta.Trigger.SLO != "rt-slo" {
		t.Fatalf("trigger = %+v", b.Meta.Trigger)
	}
	if len(b.Alerts.Active) != 1 || b.Alerts.Active[0].State != "firing" {
		t.Fatalf("active alerts = %+v", b.Alerts.Active)
	}
	if sv, ok := b.Signals.Signals["sig"]; !ok || !sv.OK || sv.Value != 5 {
		t.Fatalf("signals = %+v", b.Signals.Signals)
	}
	if len(b.Signals.Objectives) != 1 || b.Signals.Objectives[0].State != "firing" {
		t.Fatalf("objective dump = %+v", b.Signals.Objectives)
	}
	breaches := 0
	for _, s := range b.Signals.Objectives[0].Samples {
		if s.Breach {
			breaches++
		}
	}
	if breaches == 0 {
		t.Fatal("bundle lost the breaching samples covering the alert")
	}
	foundNote := false
	for _, n := range b.Notes {
		if strings.Contains(n.Msg, "restart for test") {
			foundNote = true
		}
	}
	if !foundNote {
		t.Fatalf("flight-recorder note missing: %+v", b.Notes)
	}
	stages := map[string]bool{}
	for _, sp := range b.Spans {
		stages[sp.Stage] = true
	}
	if !stages["apply"] || !stages["commit"] {
		t.Fatalf("span stages = %v", stages)
	}
	if len(b.Partitions) != 1 || b.Partitions[0].Epoch != 42 {
		t.Fatalf("partitions = %+v", b.Partitions)
	}
	if _, ok := b.MetricValue("stampede_health_evals_total"); !ok {
		t.Fatal("metrics.prom missing health metrics")
	}

	var report bytes.Buffer
	b.Render(&report)
	out := report.String()
	for _, want := range []string{"rt-slo", "firing", "partition 0", "restart for test", "diagnostics bundle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}

	// Content addressing: the filename embeds the archive hash.
	if !strings.Contains(path, id) {
		t.Fatalf("path %q does not embed id %q", path, id)
	}
}

func TestReadBundleRejectsGarbage(t *testing.T) {
	if _, err := ReadBundle(strings.NewReader("not a bundle")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestHTTPEndpoints covers the five debug-mux endpoints end to end,
// including the readyz flip while an alert fires.
func TestHTTPEndpoints(t *testing.T) {
	clk := wfclock.NewManual(testEpoch)
	e := New(Config{Clock: clk, Every: time.Second})
	defer e.Close()
	val := 0.0
	e.Register("sig", func() (float64, bool) { return val, true })
	if err := e.AddObjective(Objective{
		Name: "http-slo", Signal: "sig", Threshold: 1,
		Budget: 0.5, BurnRate: 1, Fast: 2 * time.Second, Slow: 4 * time.Second,
		For: time.Second, ClearFor: 2 * time.Second, GateReady: true,
	}); err != nil {
		t.Fatal(err)
	}
	e.AttachDebug()
	srv := httptest.NewServer(telemetry.NewDebugMux())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "\"ok\"") {
		t.Fatalf("healthz = %d %s", code, body)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("readyz clean = %d", code)
	}
	if code, body := get("/api/buildinfo"); code != 200 || !strings.Contains(body, "go_version") {
		t.Fatalf("buildinfo = %d %s", code, body)
	}

	val = 5
	tickUntil(t, clk, e, 20, "firing", func() bool { return e.FiringCount() == 1 })
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "http-slo") {
		t.Fatalf("readyz firing = %d %s", code, body)
	}
	if code, body := get("/api/alerts"); code != 200 || !strings.Contains(body, "\"firing\"") {
		t.Fatalf("alerts = %d %s", code, body)
	}

	resp, err := srv.Client().Get(srv.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("X-Bundle-ID") == "" {
		t.Fatalf("bundle fetch = %d, id %q", resp.StatusCode, resp.Header.Get("X-Bundle-ID"))
	}
	b, err := ReadBundle(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Alerts.Active) != 1 {
		t.Fatalf("fetched bundle active = %+v", b.Alerts.Active)
	}

	val = 0
	tickUntil(t, clk, e, 20, "resolved", func() bool { return e.FiringCount() == 0 })
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("readyz after resolve = %d", code)
	}
}
