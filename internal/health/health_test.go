package health

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wfclock"
)

var testEpoch = time.Date(2012, 3, 13, 12, 0, 0, 0, time.UTC)

// tickUntil advances the manual clock one interval at a time, ticking the
// engine, until pred holds or max ticks elapse.
func tickUntil(t *testing.T, clk *wfclock.Manual, e *Engine, max int, what string, pred func() bool) int {
	t.Helper()
	for i := 1; i <= max; i++ {
		clk.Advance(e.every)
		e.Tick()
		if pred() {
			return i
		}
	}
	t.Fatalf("condition %q not reached in %d ticks", what, max)
	return 0
}

func states(alerts []Alert) []string {
	out := make([]string, len(alerts))
	for i, a := range alerts {
		out[i] = a.State
	}
	return out
}

// TestAlertLifecycle drives one objective through the full state machine
// on a manual clock: clean → pending → firing (ready gates, bundle
// written) → resolved once the signal stays clear for ClearFor.
func TestAlertLifecycle(t *testing.T) {
	clk := wfclock.NewManual(testEpoch)
	dir := t.TempDir()
	e := New(Config{Clock: clk, Every: time.Second, BundleDir: dir})
	defer e.Close()

	val := 0.0
	e.Register("sig", func() (float64, bool) { return val, true })
	err := e.AddObjective(Objective{
		Name: "test-slo", Signal: "sig", Op: Above, Threshold: 1,
		Budget: 0.5, BurnRate: 1, Fast: 3 * time.Second, Slow: 6 * time.Second,
		For: 2 * time.Second, ClearFor: 2 * time.Second, GateReady: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		clk.Advance(time.Second)
		e.Tick()
	}
	if !e.Ready() || e.FiringCount() != 0 || len(e.Recent()) != 0 {
		t.Fatalf("clean engine not quiet: ready=%v firing=%d recent=%v", e.Ready(), e.FiringCount(), e.Recent())
	}

	val = 5
	tickUntil(t, clk, e, 20, "pending", func() bool { return e.PendingCount() == 1 })
	if !e.Ready() {
		t.Fatal("pending alone must not gate readiness")
	}
	tickUntil(t, clk, e, 20, "firing", func() bool { return e.FiringCount() == 1 })
	if e.Ready() {
		t.Fatal("ready while a GateReady objective fires")
	}
	if got := states(e.Recent()); len(got) != 2 || got[0] != "pending" || got[1] != "firing" {
		t.Fatalf("transitions = %v, want [pending firing]", got)
	}

	// Firing wrote a bundle and stamped its ID on the transition.
	bundles := e.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("bundles = %v, want one", bundles)
	}
	fired := e.Recent()[1]
	if fired.BundleID != bundles[0] {
		t.Fatalf("firing transition bundle id %q != %q", fired.BundleID, bundles[0])
	}
	if _, err := os.Stat(filepath.Join(dir, "bundle-"+bundles[0]+".tar.gz")); err != nil {
		t.Fatalf("bundle file missing: %v", err)
	}
	if active := e.Active(); len(active) != 1 || active[0].State != "firing" || active[0].BundleID != bundles[0] {
		t.Fatalf("active = %+v", active)
	}

	// MaxBurn saw the breach.
	if slo, burn := e.MaxBurn(); slo != "test-slo" || burn < 1 {
		t.Fatalf("max burn = %s %.2f", slo, burn)
	}

	val = 0
	tickUntil(t, clk, e, 20, "resolved", func() bool { return e.FiringCount() == 0 })
	if !e.Ready() {
		t.Fatal("not ready after resolution")
	}
	if got := states(e.Recent()); len(got) != 3 || got[2] != "resolved" {
		t.Fatalf("transitions = %v, want [... resolved]", got)
	}
	if res := e.Recent()[2]; res.Since.IsZero() {
		t.Fatal("resolved transition lost its firing onset time")
	}
	if len(e.Active()) != 0 {
		t.Fatalf("active after resolve: %v", e.Active())
	}
}

// TestPendingCancel: a breach shorter than the For-duration must cancel,
// never fire — the damping the state machine exists for.
func TestPendingCancel(t *testing.T) {
	clk := wfclock.NewManual(testEpoch)
	e := New(Config{Clock: clk, Every: time.Second})
	defer e.Close()

	val := 0.0
	e.Register("sig", func() (float64, bool) { return val, true })
	if err := e.AddObjective(Objective{
		Name: "flap", Signal: "sig", Threshold: 1,
		Budget: 1, BurnRate: 1, Fast: 2 * time.Second, Slow: 4 * time.Second,
		For: 10 * time.Second, ClearFor: 2 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}

	val = 5
	tickUntil(t, clk, e, 20, "pending", func() bool { return e.PendingCount() == 1 })
	val = 0
	tickUntil(t, clk, e, 20, "canceled", func() bool { return e.PendingCount() == 0 })
	if e.FiringCount() != 0 {
		t.Fatal("canceled pending fired anyway")
	}
	got := states(e.Recent())
	if len(got) != 2 || got[0] != "pending" || got[1] != "canceled" {
		t.Fatalf("transitions = %v, want [pending canceled]", got)
	}
}

// TestMultiWindow: a short spike saturates the fast window but not the
// slow one, so the alert must stay quiet — the false-positive protection
// multi-window burn rates buy.
func TestMultiWindowSuppressesSpike(t *testing.T) {
	clk := wfclock.NewManual(testEpoch)
	e := New(Config{Clock: clk, Every: time.Second})
	defer e.Close()

	val := 0.0
	e.Register("sig", func() (float64, bool) { return val, true })
	if err := e.AddObjective(Objective{
		Name: "spiky", Signal: "sig", Threshold: 1,
		Budget: 0.5, BurnRate: 1, Fast: 2 * time.Second, Slow: 30 * time.Second,
		For: 0, ClearFor: 2 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}

	// Long clean history, then a 3-tick spike: fast burn hits 2x but the
	// slow window stays under budget.
	for i := 0; i < 30; i++ {
		clk.Advance(time.Second)
		e.Tick()
	}
	val = 5
	for i := 0; i < 3; i++ {
		clk.Advance(time.Second)
		e.Tick()
	}
	val = 0
	for i := 0; i < 5; i++ {
		clk.Advance(time.Second)
		e.Tick()
	}
	if got := e.Recent(); len(got) != 0 {
		t.Fatalf("spike produced transitions: %v", states(got))
	}
}

func TestAddObjectiveValidation(t *testing.T) {
	e := New(Config{Clock: wfclock.NewManual(testEpoch)})
	defer e.Close()
	e.Register("sig", func() (float64, bool) { return 0, true })

	if err := e.AddObjective(Objective{Name: "x", Signal: "nope"}); err == nil {
		t.Fatal("unknown signal accepted")
	}
	if err := e.AddObjective(Objective{Name: "", Signal: "sig"}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := e.AddObjective(Objective{Name: "x", Signal: "sig", Fast: time.Hour, Slow: time.Minute}); err == nil {
		t.Fatal("fast > slow accepted")
	}
	if err := e.AddObjective(Objective{Name: "x", Signal: "sig"}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddObjective(Objective{Name: "x", Signal: "sig"}); err == nil {
		t.Fatal("duplicate name accepted")
	}

	n, err := e.AddObjectives(Objective{Name: "y", Signal: "sig"}, Objective{Name: "z", Signal: "absent"})
	if err != nil || n != 1 {
		t.Fatalf("AddObjectives = %d, %v; want 1, nil", n, err)
	}
}

func TestCounterRateSignal(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("reqs_total", "")
	clk := wfclock.NewManual(testEpoch)
	sig := CounterRateSignal(clk, reg, "reqs_total")

	if _, ok := CounterRateSignal(clk, reg, "absent_total")(); ok {
		t.Fatal("absent family reported ok")
	}
	c.Add(100)
	if v, ok := sig(); !ok || v != 0 {
		t.Fatalf("first call = %v, %v; want baseline 0", v, ok)
	}
	clk.Advance(10 * time.Second)
	c.Add(50)
	if v, ok := sig(); !ok || math.Abs(v-5) > 1e-9 {
		t.Fatalf("rate = %v, want 5/s", v)
	}
}

func TestHistQuantileSignal(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat_seconds", "", nil)
	sig := HistQuantileSignal(reg, "lat_seconds", 0.99)

	h.Observe(0.008)
	if _, ok := sig(); ok {
		t.Fatal("first call must be baseline, not data")
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.008) // bucket (0.005, 0.01]
	}
	v, ok := sig()
	if !ok {
		t.Fatal("no value after 100 observations")
	}
	// All new observations in one bucket: p99 interpolates inside it.
	if v < 0.005 || v > 0.01 {
		t.Fatalf("p99 = %v, want within (0.005, 0.01]", v)
	}
	if _, ok := sig(); ok {
		t.Fatal("idle window reported data")
	}
	// A later, slower window dominates its own delta even though the
	// all-time histogram is still mostly-fast.
	for i := 0; i < 10; i++ {
		h.Observe(4.0)
	}
	v, ok = sig()
	if !ok || v < 2.5 || v > 5 {
		t.Fatalf("windowed p99 = %v, want within (2.5, 5]", v)
	}
}

func TestQuantileFromBuckets(t *testing.T) {
	upper := []float64{1, 2, 4}
	// 10 in (0,1], 10 in (1,2], 5 in +Inf.
	counts := []uint64{10, 10, 0, 5}
	if v := quantileFromBuckets(upper, counts, 0.5); v < 1 || v > 2 {
		t.Fatalf("p50 = %v", v)
	}
	if v := quantileFromBuckets(upper, counts, 0.99); v != 4 {
		t.Fatalf("p99 with +Inf tail = %v, want last finite bound 4", v)
	}
	if v := quantileFromBuckets(nil, nil, 0.5); v != 0 {
		t.Fatalf("empty = %v", v)
	}
}

func TestWatermarkLagSignal(t *testing.T) {
	pub, app := testEpoch.Add(10*time.Second), testEpoch
	haveApplied := false
	sig := WatermarkLagSignal(
		func() (time.Time, bool) { return pub, true },
		func() (time.Time, bool) { return app, haveApplied },
	)
	if _, ok := sig(); ok {
		t.Fatal("lag reported before any event applied")
	}
	haveApplied = true
	if v, ok := sig(); !ok || v != 10 {
		t.Fatalf("lag = %v, want 10s", v)
	}
	app = pub.Add(time.Second) // applied ahead (clock skew): clamp to 0
	if v, _ := sig(); v != 0 {
		t.Fatalf("negative lag not clamped: %v", v)
	}
}

// TestSignalAbsenceCountsClean: ok=false samples must not breach, and a
// firing alert must resolve when its signal disappears for ClearFor.
func TestSignalAbsenceCountsClean(t *testing.T) {
	clk := wfclock.NewManual(testEpoch)
	e := New(Config{Clock: clk, Every: time.Second})
	defer e.Close()

	val, have := 5.0, true
	e.Register("sig", func() (float64, bool) { return val, have })
	if err := e.AddObjective(Objective{
		Name: "gone", Signal: "sig", Threshold: 1,
		Budget: 0.5, BurnRate: 1, Fast: 2 * time.Second, Slow: 4 * time.Second,
		For: time.Second, ClearFor: 2 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	tickUntil(t, clk, e, 20, "firing", func() bool { return e.FiringCount() == 1 })
	have = false
	tickUntil(t, clk, e, 20, "resolved", func() bool { return e.FiringCount() == 0 })
}

func TestRegisterStandardAndDefaults(t *testing.T) {
	clk := wfclock.NewManual(testEpoch)
	e := New(Config{Clock: clk, Every: time.Second})
	defer e.Close()
	e.RegisterStandard(Sources{Clock: clk})

	for _, sig := range []string{SigApplyP99, SigCommitP99, SigMQDropRate, SigWALFsyncP99, SigViewsFlushP99, SigSSEResyncRate} {
		if _, ok := e.signals[sig]; !ok {
			t.Fatalf("standard signal %s missing", sig)
		}
	}
	// No store, broker or freshness source: those objectives are skipped,
	// the registry-backed ones install.
	n, err := e.AddObjectives(DefaultObjectives()...)
	if err != nil {
		t.Fatal(err)
	}
	if n < 5 {
		t.Fatalf("only %d default objectives installed", n)
	}
	clk.Advance(time.Second)
	e.Tick() // must not panic with partial sources
}
