package health

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/telemetry"
)

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		b = []byte(fmt.Sprintf("{\"error\":%q}", err.Error()))
	}
	w.Write(append(b, '\n'))
}

// HealthzHandler reports liveness: the process is up and the engine
// exists. Always 200 — readiness is /readyz's job.
func (e *Engine) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(processStart).Seconds(),
		})
	})
}

// ReadyzHandler reports readiness: 200 while no ready-gating objective
// fires, 503 (with the firing set) otherwise — the signal a federation
// router or load balancer keys on. Lock-free on the happy path.
func (e *Engine) ReadyzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if e.Ready() {
			writeJSON(w, http.StatusOK, map[string]any{"ready": true})
			return
		}
		var firing []Alert
		for _, a := range e.Active() {
			if a.State == "firing" {
				firing = append(firing, a)
			}
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready":  false,
			"firing": firing,
		})
	})
}

// AlertsHandler serves the alert lifecycle state: currently active
// alerts, the retained transition ring, and the installed objectives.
func (e *Engine) AlertsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"active":     e.Active(),
			"recent":     e.Recent(),
			"objectives": e.Objectives(),
		})
	})
}

// BuildinfoHandler serves BuildInfo.
func (e *Engine) BuildinfoHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.BuildInfo())
	})
}

// BundleHandler builds a fresh diagnostics bundle on demand and serves
// it as a tar.gz download — `stampede-doctor -addr` fetches this.
func (e *Engine) BundleHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		e.mu.Lock()
		data, id, err := e.bundleLocked(nil)
		e.mu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/gzip")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=bundle-%s.tar.gz", id))
		w.Header().Set("X-Bundle-ID", id)
		w.Write(data)
	})
}

// AttachDebug mounts the engine's endpoints on every debug mux
// (telemetry.HandleDebug): /healthz, /readyz, /api/alerts,
// /api/buildinfo, /debug/bundle. Call before StartDebugServer.
func (e *Engine) AttachDebug() {
	telemetry.HandleDebug("/healthz", e.HealthzHandler())
	telemetry.HandleDebug("/readyz", e.ReadyzHandler())
	telemetry.HandleDebug("/api/alerts", e.AlertsHandler())
	telemetry.HandleDebug("/api/buildinfo", e.BuildinfoHandler())
	telemetry.HandleDebug("/debug/bundle", e.BundleHandler())
}
