package health

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// BundleInfo is a parsed diagnostics bundle — everything stampede-doctor
// needs to render a triage report.
type BundleInfo struct {
	Meta       Meta
	Alerts     AlertsDump
	Signals    SignalsDump
	Notes      []Note
	Spans      []SpanRecord
	Partitions []Partition
	Metrics    []byte // raw Prometheus exposition
	Goroutines []byte // text goroutine profile (debug=1)
	Files      []string
}

// ReadBundle parses a diagnostics bundle tar.gz. Unknown files are
// listed but otherwise ignored, so newer bundles stay readable.
func ReadBundle(r io.Reader) (*BundleInfo, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("health: not a gzip bundle: %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	b := &BundleInfo{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("health: bad bundle archive: %w", err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return nil, fmt.Errorf("health: reading %s: %w", hdr.Name, err)
		}
		b.Files = append(b.Files, hdr.Name)
		switch hdr.Name {
		case "meta.json":
			err = json.Unmarshal(data, &b.Meta)
		case "alerts.json":
			err = json.Unmarshal(data, &b.Alerts)
		case "signals.json":
			err = json.Unmarshal(data, &b.Signals)
		case "notes.json":
			err = json.Unmarshal(data, &b.Notes)
		case "spans.json":
			err = json.Unmarshal(data, &b.Spans)
		case "partitions.json":
			err = json.Unmarshal(data, &b.Partitions)
		case "metrics.prom":
			b.Metrics = data
		case "goroutines.txt":
			b.Goroutines = data
		}
		if err != nil {
			return nil, fmt.Errorf("health: parsing %s: %w", hdr.Name, err)
		}
	}
	if len(b.Files) == 0 {
		return nil, fmt.Errorf("health: empty bundle")
	}
	return b, nil
}

// MetricValue scans the raw exposition for an unlabeled (or first
// matching) sample of the named metric.
func (b *BundleInfo) MetricValue(name string) (string, bool) {
	for _, line := range strings.Split(string(b.Metrics), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if len(rest) == 0 {
			continue
		}
		if rest[0] != ' ' && rest[0] != '{' {
			continue // longer metric name sharing the prefix
		}
		if i := strings.LastIndexByte(rest, ' '); i >= 0 {
			return rest[i+1:], true
		}
	}
	return "", false
}

// GoroutineCount parses the total from the goroutine profile header.
func (b *BundleInfo) GoroutineCount() int {
	var n int
	fmt.Sscanf(string(b.Goroutines), "goroutine profile: total %d", &n)
	return n
}

// Render pretty-prints the triage report: build identity, the triggering
// alert, the alert lifecycle, signals versus thresholds, recorder notes,
// span coverage by stage, and the partition map.
func (b *BundleInfo) Render(w io.Writer) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("== diagnostics bundle ==\n")
	bi := b.Meta.Build
	p("created   %s\n", b.Meta.CreatedAt.Format("2006-01-02 15:04:05.000 MST"))
	p("build     %s %s (%s", orDash(bi.Module), orDash(bi.Version), bi.GoVersion)
	if bi.Revision != "" {
		rev := bi.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		p(", rev %s", rev)
		if bi.Dirty {
			p("+dirty")
		}
	}
	p(")\n")
	p("node      pid %d, %d partition(s), up %.1fs\n", bi.PID, bi.Partitions, bi.UptimeSeconds)

	if t := b.Meta.Trigger; t != nil {
		p("\n-- trigger --\n")
		p("%s -> %s  signal %s = %.4g (threshold %.4g), burn fast %.2fx slow %.2fx\n",
			t.SLO, t.State, t.Signal, t.Value, t.Threshold, t.FastBurn, t.SlowBurn)
	}

	p("\n-- alerts --\n")
	if len(b.Alerts.Active) == 0 {
		p("no active alerts\n")
	}
	for _, a := range b.Alerts.Active {
		p("ACTIVE  %-24s %-8s %s=%.4g (thr %.4g) burn %.2f/%.2f\n",
			a.SLO, a.State, a.Signal, a.Value, a.Threshold, a.FastBurn, a.SlowBurn)
	}
	recent := b.Alerts.Recent
	if len(recent) > 10 {
		recent = recent[len(recent)-10:]
	}
	for _, a := range recent {
		p("%s  %-24s %-8s value %.4g burn %.2f/%.2f\n",
			a.At.Format("15:04:05.000"), a.SLO, a.State, a.Value, a.FastBurn, a.SlowBurn)
	}

	p("\n-- objectives --\n")
	for _, o := range b.Signals.Objectives {
		breaches := 0
		for _, s := range o.Samples {
			if s.Breach {
				breaches++
			}
		}
		p("%-24s %-8s thr %.4g  burn fast %.2fx slow %.2fx (max %.2fx)  %d/%d samples breaching\n",
			o.Name, o.State, o.Threshold, o.FastBurn, o.SlowBurn, o.MaxBurn, breaches, len(o.Samples))
	}

	if len(b.Signals.Signals) > 0 {
		p("\n-- signals --\n")
		names := make([]string, 0, len(b.Signals.Signals))
		for n := range b.Signals.Signals {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			sv := b.Signals.Signals[n]
			if sv.OK {
				p("%-32s %.6g\n", n, sv.Value)
			} else {
				p("%-32s (no data)\n", n)
			}
		}
	}

	notes := b.Notes
	if len(notes) > 12 {
		notes = notes[len(notes)-12:]
	}
	if len(notes) > 0 {
		p("\n-- flight recorder (last %d) --\n", len(notes))
		for _, n := range notes {
			p("%s  [%s] %s\n", n.At.Format("15:04:05.000"), n.Kind, n.Msg)
		}
	}

	if len(b.Spans) > 0 {
		p("\n-- spans --\n")
		byStage := map[string]int{}
		for _, sp := range b.Spans {
			byStage[sp.Stage]++
		}
		stages := make([]string, 0, len(byStage))
		for s := range byStage {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		p("%d spans in ring:", len(b.Spans))
		for _, s := range stages {
			p(" %s=%d", s, byStage[s])
		}
		p("\n")
	}

	if len(b.Partitions) > 0 {
		p("\n-- partitions --\n")
		for _, pt := range b.Partitions {
			p("partition %d  epoch %d", pt.Partition, pt.Epoch)
			if pt.CheckpointTaken {
				p("  checkpoint seq %d (%.1fs old, %d bytes)",
					pt.CheckpointSeq, pt.CheckpointAgeSeconds, pt.CheckpointBytes)
			} else {
				p("  never checkpointed")
			}
			p("\n")
		}
	}

	p("\n-- runtime --\n")
	if n := b.GoroutineCount(); n > 0 {
		p("goroutines %d\n", n)
	}
	for _, m := range []string{
		"stampede_loader_events_read_total",
		"stampede_mq_dropped_total",
		"stampede_views_resyncs_total",
		"stampede_health_bundles_total",
	} {
		if v, ok := b.MetricValue(m); ok {
			p("%-36s %s\n", m, v)
		}
	}
	p("files: %s\n", strings.Join(b.Files, ", "))
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
