package health

import (
	"time"

	"repro/internal/mq"
	"repro/internal/relstore"
	"repro/internal/telemetry"
	"repro/internal/wfclock"
)

// Signal names registered by RegisterStandard. Objectives reference
// signals by these names.
const (
	SigFreshnessLag  = "ingest_freshness_lag_seconds"
	SigApplyP99      = "apply_p99_seconds"
	SigCommitP99     = "commit_p99_seconds"
	SigMQDropRate    = "mq_drop_rate"
	SigMQBacklog     = "mq_backlog"
	SigWALFsyncP99   = "wal_fsync_p99_seconds"
	SigCheckpointAge = "checkpoint_age_seconds"
	SigViewsFlushP99 = "views_flush_p99_seconds"
	SigSSEResyncRate = "sse_resync_rate"
)

// CounterRateSignal derives a per-second rate from a registry counter
// family (summed across children, or one child when label values are
// given). The first evaluation establishes the baseline and reports 0.
// Stateful: evaluate from exactly one engine.
func CounterRateSignal(clock wfclock.Clock, reg *telemetry.Registry, name string, labels ...string) SignalFunc {
	var prev float64
	var prevT time.Time
	first := true
	return func() (float64, bool) {
		v, ok := reg.SumValue(name, labels...)
		if !ok {
			return 0, false
		}
		now := clock.Now()
		if first {
			prev, prevT, first = v, now, false
			return 0, true
		}
		dt := now.Sub(prevT).Seconds()
		if dt <= 0 {
			return 0, true
		}
		rate := (v - prev) / dt
		prev, prevT = v, now
		if rate < 0 { // counter reset (registry swapped in tests)
			rate = 0
		}
		return rate, true
	}
}

// HistQuantileSignal derives a windowed quantile from a registry
// histogram: each evaluation differences the cumulative bucket counts
// against the previous one and interpolates the quantile over only the
// new observations — a p99 of "what happened since the last tick" out of
// an all-time histogram, without touching the observing hot path.
// Reports ok=false when there were no new observations. Stateful:
// evaluate from exactly one engine.
func HistQuantileSignal(reg *telemetry.Registry, name string, q float64, labels ...string) SignalFunc {
	var prev []uint64
	return func() (float64, bool) {
		upper, counts, ok := reg.SumBuckets(name, labels...)
		if !ok {
			return 0, false
		}
		if prev == nil {
			// Baseline: pre-existing history is not "this window".
			prev = counts
			return 0, false
		}
		delta := make([]uint64, len(counts))
		total := uint64(0)
		for i, c := range counts {
			if i < len(prev) && prev[i] <= c {
				delta[i] = c - prev[i]
			} else {
				delta[i] = c
			}
			total += delta[i]
		}
		prev = counts
		if total == 0 {
			return 0, false
		}
		return quantileFromBuckets(upper, delta, q), true
	}
}

// quantileFromBuckets interpolates quantile q from non-cumulative bucket
// counts (last slot = +Inf). Observations landing in the +Inf bucket
// report the highest finite bound, like Prometheus histogram_quantile.
func quantileFromBuckets(upper []float64, counts []uint64, q float64) float64 {
	total := uint64(0)
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(upper) == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i >= len(upper) { // +Inf bucket
				return upper[len(upper)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = upper[i-1]
			}
			return lo + (upper[i]-lo)*(rank-cum)/float64(c)
		}
		cum = next
	}
	return upper[len(upper)-1]
}

// WatermarkLagSignal measures ingest freshness in event time: the gap
// between the newest event timestamp offered to the pipeline (published)
// and the newest applied to the store (applied). Event time matters
// because replayed/synthetic streams carry historical timestamps — wall
// clock minus applied watermark would be meaningless there.
func WatermarkLagSignal(published, applied func() (time.Time, bool)) SignalFunc {
	return func() (float64, bool) {
		p, ok := published()
		if !ok {
			return 0, false
		}
		a, ok := applied()
		if !ok {
			return 0, false
		}
		lag := p.Sub(a).Seconds()
		if lag < 0 {
			lag = 0
		}
		return lag, true
	}
}

// Sources names what a node has for RegisterStandard to wire. Nil fields
// simply skip the signals that need them.
type Sources struct {
	Clock    wfclock.Clock       // nil: wfclock.Real
	Registry *telemetry.Registry // nil: telemetry.Default()
	Store    *relstore.Store
	Broker   *mq.Broker
	// FreshnessLag supplies the node's event-time ingest lag (see
	// WatermarkLagSignal); nil skips the freshness signal.
	FreshnessLag SignalFunc
}

// RegisterStandard registers the standard signal set — every per-stage
// latency, drop-rate, durability and serving signal the ISSUE's SLOs
// need — reading only metrics and stats the pipeline already maintains.
func (e *Engine) RegisterStandard(s Sources) {
	clock := s.Clock
	if clock == nil {
		clock = wfclock.Real
	}
	reg := s.Registry
	if reg == nil {
		reg = telemetry.Default()
	}
	if s.FreshnessLag != nil {
		e.Register(SigFreshnessLag, s.FreshnessLag)
	}
	e.Register(SigApplyP99, HistQuantileSignal(reg, "stampede_trace_stage_seconds", 0.99, "apply"))
	e.Register(SigCommitP99, HistQuantileSignal(reg, "stampede_trace_stage_seconds", 0.99, "commit"))
	e.Register(SigMQDropRate, CounterRateSignal(clock, reg, "stampede_mq_dropped_total"))
	if s.Broker != nil {
		b := s.Broker
		e.Register(SigMQBacklog, func() (float64, bool) { return float64(b.Backlog()), true })
	}
	e.Register(SigWALFsyncP99, HistQuantileSignal(reg, "stampede_relstore_wal_fsync_seconds", 0.99))
	if s.Store != nil {
		st := s.Store
		e.Register(SigCheckpointAge, func() (float64, bool) {
			maxAge, any := 0.0, false
			for _, cs := range st.CheckpointStats() {
				if !cs.Taken {
					continue
				}
				any = true
				if age := cs.Age.Seconds(); age > maxAge {
					maxAge = age
				}
			}
			return maxAge, any
		})
	}
	e.Register(SigViewsFlushP99, HistQuantileSignal(reg, "stampede_views_flush_seconds", 0.99))
	e.Register(SigSSEResyncRate, CounterRateSignal(clock, reg, "stampede_views_resyncs_total"))
}

// PartitionsOf adapts a store's partition map for Config.Partitions.
func PartitionsOf(st *relstore.Store) func() []Partition {
	return func() []Partition {
		pm := st.PartitionMap()
		out := make([]Partition, len(pm))
		for i, p := range pm {
			out[i] = Partition{
				Partition:            p.Partition,
				Epoch:                p.Epoch,
				CheckpointTaken:      p.CheckpointTaken,
				CheckpointSeq:        p.CheckpointSeq,
				CheckpointBytes:      p.CheckpointBytes,
				CheckpointAgeSeconds: p.CheckpointAgeSeconds,
			}
		}
		return out
	}
}

// DefaultObjectives is the stock SLO set. Thresholds are deliberately
// generous (a breach should mean "users notice", not "a benchmark got
// slower"); deployments tune per node. AddObjectives skips any whose
// signal is not registered on the target engine.
func DefaultObjectives() []Objective {
	return []Objective{
		{
			Name: "ingest-freshness", Severity: "page", Signal: SigFreshnessLag,
			Help:      "Applied watermark must track the published stream.",
			Threshold: 5, Budget: 0.1, BurnRate: 2,
			Fast: time.Minute, Slow: 5 * time.Minute,
			For: 15 * time.Second, ClearFor: 30 * time.Second, GateReady: true,
		},
		{
			Name: "apply-latency-p99", Severity: "ticket", Signal: SigApplyP99,
			Help:      "Per-batch apply stage p99 from the trace histograms.",
			Threshold: 0.25, Budget: 0.1, BurnRate: 2,
			Fast: time.Minute, Slow: 5 * time.Minute, For: 30 * time.Second,
		},
		{
			Name: "mq-drop-rate", Severity: "page", Signal: SigMQDropRate,
			Help:      "Broker queue overflow drops per second.",
			Threshold: 0, Budget: 0.1, BurnRate: 2,
			Fast: time.Minute, Slow: 5 * time.Minute, For: 15 * time.Second,
		},
		{
			Name: "wal-fsync-p99", Severity: "ticket", Signal: SigWALFsyncP99,
			Help:      "WAL group-commit fsync p99.",
			Threshold: 0.5, Budget: 0.1, BurnRate: 2,
			Fast: time.Minute, Slow: 5 * time.Minute, For: 30 * time.Second,
		},
		{
			Name: "checkpoint-age", Severity: "ticket", Signal: SigCheckpointAge,
			Help:      "Oldest partition checkpoint age; stale checkpoints stretch recovery.",
			Threshold: 900, Budget: 0.25, BurnRate: 1,
			Fast: time.Minute, Slow: 5 * time.Minute, For: time.Minute,
		},
		{
			Name: "views-flush-p99", Severity: "ticket", Signal: SigViewsFlushP99,
			Help:      "Materialized-view flush latency p99.",
			Threshold: 0.25, Budget: 0.1, BurnRate: 2,
			Fast: time.Minute, Slow: 5 * time.Minute, For: 30 * time.Second,
		},
		{
			Name: "sse-resync-rate", Severity: "ticket", Signal: SigSSEResyncRate,
			Help:      "Slow-consumer resyncs per second across SSE subscribers.",
			Threshold: 50, Budget: 0.1, BurnRate: 2,
			Fast: time.Minute, Slow: 5 * time.Minute, For: 30 * time.Second,
		},
	}
}
