package health

import (
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// BuildInfo identifies what is running where: served at /api/buildinfo
// on every debug listener and embedded in each diagnostics bundle so a
// triage report starts from "which build, which node shape".
type BuildInfo struct {
	Module        string  `json:"module,omitempty"`
	Version       string  `json:"version,omitempty"`
	GoVersion     string  `json:"go_version"`
	Revision      string  `json:"vcs_revision,omitempty"`
	VCSTime       string  `json:"vcs_time,omitempty"`
	Dirty         bool    `json:"vcs_dirty,omitempty"`
	Partitions    int     `json:"partitions"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	PID           int     `json:"pid"`
}

var processStart = time.Now()

var readBuild = sync.OnceValue(func() BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version(), PID: os.Getpid()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = bi.Main.Path
	b.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.VCSTime = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
})

// BuildInfo returns the process build identity plus this engine's node
// shape (partition count) and uptime.
func (e *Engine) BuildInfo() BuildInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.buildInfoLocked()
}

func (e *Engine) buildInfoLocked() BuildInfo {
	b := readBuild()
	if e.cfg.Partitions != nil {
		b.Partitions = len(e.cfg.Partitions())
	}
	b.UptimeSeconds = time.Since(processStart).Seconds()
	return b
}
