// Package schema defines the Stampede workflow-monitoring data model as a
// YANG schema (the paper's §IV-B) and validates NetLogger BP log messages
// against it, playing the role pyang plays in the published toolchain.
//
// The schema text in Text covers every event the Stampede loader
// understands: workflow planning and lifecycle (stampede.wf.*,
// stampede.xwf.*), abstract-workflow structure (stampede.task.*),
// executable-workflow structure (stampede.job.*), job-instance lifecycle
// (stampede.job_inst.*) and invocations (stampede.inv.*).
package schema

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/bp"
	"repro/internal/yang"
)

// Event type names, one constant per container in the schema. Engines and
// normalizers emit these; the loader and archive dispatch on them.
const (
	WfPlan        = "stampede.wf.plan"
	StaticStart   = "stampede.static.start"
	StaticEnd     = "stampede.static.end"
	XwfStart      = "stampede.xwf.start"
	XwfEnd        = "stampede.xwf.end"
	TaskInfo      = "stampede.task.info"
	TaskEdge      = "stampede.task.edge"
	JobInfo       = "stampede.job.info"
	JobEdge       = "stampede.job.edge"
	MapTaskJob    = "stampede.wf.map.task_job"
	MapSubwfJob   = "stampede.xwf.map.subwf_job"
	JobInstPre    = "stampede.job_inst.pre.start"
	JobInstPreEnd = "stampede.job_inst.pre.end"
	SubmitStart   = "stampede.job_inst.submit.start"
	SubmitEnd     = "stampede.job_inst.submit.end"
	HeldStart     = "stampede.job_inst.held.start"
	HeldEnd       = "stampede.job_inst.held.end"
	MainStart     = "stampede.job_inst.main.start"
	MainTerm      = "stampede.job_inst.main.term"
	MainError     = "stampede.job_inst.main.error"
	MainEnd       = "stampede.job_inst.main.end"
	PostStart     = "stampede.job_inst.post.start"
	PostEnd       = "stampede.job_inst.post.end"
	HostInfo      = "stampede.job_inst.host.info"
	ImageInfo     = "stampede.job_inst.image.info"
	AbortInfo     = "stampede.job_inst.abort.info"
	InvStart      = "stampede.inv.start"
	InvEnd        = "stampede.inv.end"
)

// Attribute keys shared across events.
const (
	AttrLevel      = "level"
	AttrXwfID      = "xwf.id"
	AttrTaskID     = "task.id"
	AttrJobID      = "job.id"
	AttrJobInstID  = "job_inst.id"
	AttrInvID      = "inv.id"
	AttrStatus     = "status"
	AttrExitcode   = "exitcode"
	AttrSite       = "site"
	AttrHostname   = "hostname"
	AttrDur        = "dur"
	AttrStartTime  = "start_time"
	AttrParentXwf  = "parent.xwf.id"
	AttrRootXwf    = "root.xwf.id"
	AttrSubwfID    = "subwf.id"
	AttrRemoteCPU  = "remote_cpu_time"
	AttrTransform  = "transformation"
	AttrExecutable = "executable"
	AttrArgv       = "argv"
	AttrStdoutText = "stdout.text"
	AttrStderrText = "stderr.text"
)

func init() {
	// Register the Stampede vocabulary with the BP intern table so the
	// very first parsed event resolves its keys and type to canonical
	// per-process strings. bp cannot import schema (schema imports bp),
	// so the seeding runs from this side of the edge.
	bp.InternStrings(
		WfPlan, StaticStart, StaticEnd, XwfStart, XwfEnd,
		TaskInfo, TaskEdge, JobInfo, JobEdge, MapTaskJob, MapSubwfJob,
		JobInstPre, JobInstPreEnd, SubmitStart, SubmitEnd,
		HeldStart, HeldEnd, MainStart, MainTerm, MainError, MainEnd,
		PostStart, PostEnd, HostInfo, ImageInfo, AbortInfo,
		InvStart, InvEnd,
	)
	bp.InternStrings(
		AttrLevel, AttrXwfID, AttrTaskID, AttrJobID, AttrJobInstID,
		AttrInvID, AttrStatus, AttrExitcode, AttrSite, AttrHostname,
		AttrDur, AttrStartTime, AttrParentXwf, AttrRootXwf, AttrSubwfID,
		AttrRemoteCPU, AttrTransform, AttrExecutable, AttrArgv,
		AttrStdoutText, AttrStderrText,
	)
	// Non-constant keys the archive reads straight from events.
	bp.InternStrings(
		"submit.hostname", "dax.label", "dax.version", "dax.file",
		"dag.file.name", "submit_dir", "user", "planner.version",
		"restart_count", "type_desc", "parent.task.id", "child.task.id",
		"clustered", "max_retries", "task_count", "parent.job.id",
		"child.job.id", "stdout.file", "stderr.file", "multiplier_factor",
		"ip", "uname", "total_memory", "sched.id",
	)
}

var (
	once  sync.Once
	model *yang.Model
	mErr  error
)

// Model returns the resolved Stampede data model. The schema text is
// parsed once; a parse failure is a build defect and is reported on every
// call.
func Model() (*yang.Model, error) {
	once.Do(func() {
		root, err := yang.Parse(Text)
		if err != nil {
			mErr = err
			return
		}
		model, mErr = yang.Resolve(root)
	})
	return model, mErr
}

// MustModel is Model for initialisation paths where the embedded schema
// being unparseable should stop the program.
func MustModel() *yang.Model {
	m, err := Model()
	if err != nil {
		panic(err)
	}
	return m
}

// Validator checks BP events against the Stampede model.
type Validator struct {
	model *yang.Model
	// Strict rejects attributes that the event's container does not
	// declare. The published loader ignores extras, so Strict defaults to
	// false; tests for normalizers turn it on to catch typos.
	Strict bool
}

// NewValidator returns a validator over the embedded schema.
func NewValidator() (*Validator, error) {
	m, err := Model()
	if err != nil {
		return nil, err
	}
	return &Validator{model: m}, nil
}

// ValidationError aggregates everything wrong with one event.
type ValidationError struct {
	EventType string
	Problems  []string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("schema: event %s invalid: %s", e.EventType, strings.Join(e.Problems, "; "))
}

// Validate checks ev against its container definition: the event type must
// exist, mandatory leaves must be present, and every present attribute
// must type-check. It returns nil when the event conforms.
func (v *Validator) Validate(ev *bp.Event) error {
	c, ok := v.model.Containers[ev.Type]
	if !ok {
		return &ValidationError{EventType: ev.Type, Problems: []string{"unknown event type"}}
	}
	var problems []string
	for _, leaf := range c.OrderedLeaves() {
		// ts is carried on the Event struct, not in Attrs.
		if leaf.Name == bp.KeyTS {
			continue
		}
		val, present := ev.Attrs.Lookup(leaf.Name)
		if !present {
			if leaf.Mandatory {
				problems = append(problems, fmt.Sprintf("missing mandatory attribute %q", leaf.Name))
			}
			continue
		}
		if err := leaf.CheckValue(val); err != nil {
			problems = append(problems, fmt.Sprintf("attribute %q: %v", leaf.Name, err))
		}
	}
	if ev.TS.IsZero() {
		problems = append(problems, "zero timestamp")
	}
	if v.Strict {
		for i := range ev.Attrs {
			if _, declared := c.Leaves[ev.Attrs[i].Key]; !declared {
				problems = append(problems, fmt.Sprintf("undeclared attribute %q", ev.Attrs[i].Key))
			}
		}
	}
	if len(problems) > 0 {
		return &ValidationError{EventType: ev.Type, Problems: problems}
	}
	return nil
}

// Known reports whether the event type exists in the model.
func (v *Validator) Known(eventType string) bool {
	_, ok := v.model.Containers[eventType]
	return ok
}

// EventTypes returns all event type names in schema order.
func (v *Validator) EventTypes() []string { return v.model.ContainerNames() }
