// Package schema defines the Stampede workflow-monitoring data model as a
// YANG schema (the paper's §IV-B) and validates NetLogger BP log messages
// against it, playing the role pyang plays in the published toolchain.
//
// The schema text in Text covers every event the Stampede loader
// understands: workflow planning and lifecycle (stampede.wf.*,
// stampede.xwf.*), abstract-workflow structure (stampede.task.*),
// executable-workflow structure (stampede.job.*), job-instance lifecycle
// (stampede.job_inst.*) and invocations (stampede.inv.*).
package schema

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/bp"
	"repro/internal/yang"
)

// Event type names, one constant per container in the schema. Engines and
// normalizers emit these; the loader and archive dispatch on them.
const (
	WfPlan        = "stampede.wf.plan"
	StaticStart   = "stampede.static.start"
	StaticEnd     = "stampede.static.end"
	XwfStart      = "stampede.xwf.start"
	XwfEnd        = "stampede.xwf.end"
	TaskInfo      = "stampede.task.info"
	TaskEdge      = "stampede.task.edge"
	JobInfo       = "stampede.job.info"
	JobEdge       = "stampede.job.edge"
	MapTaskJob    = "stampede.wf.map.task_job"
	MapSubwfJob   = "stampede.xwf.map.subwf_job"
	JobInstPre    = "stampede.job_inst.pre.start"
	JobInstPreEnd = "stampede.job_inst.pre.end"
	SubmitStart   = "stampede.job_inst.submit.start"
	SubmitEnd     = "stampede.job_inst.submit.end"
	HeldStart     = "stampede.job_inst.held.start"
	HeldEnd       = "stampede.job_inst.held.end"
	MainStart     = "stampede.job_inst.main.start"
	MainTerm      = "stampede.job_inst.main.term"
	MainEnd       = "stampede.job_inst.main.end"
	PostStart     = "stampede.job_inst.post.start"
	PostEnd       = "stampede.job_inst.post.end"
	HostInfo      = "stampede.job_inst.host.info"
	ImageInfo     = "stampede.job_inst.image.info"
	AbortInfo     = "stampede.job_inst.abort.info"
	InvStart      = "stampede.inv.start"
	InvEnd        = "stampede.inv.end"
)

// Attribute keys shared across events.
const (
	AttrLevel      = "level"
	AttrXwfID      = "xwf.id"
	AttrTaskID     = "task.id"
	AttrJobID      = "job.id"
	AttrJobInstID  = "job_inst.id"
	AttrInvID      = "inv.id"
	AttrStatus     = "status"
	AttrExitcode   = "exitcode"
	AttrSite       = "site"
	AttrHostname   = "hostname"
	AttrDur        = "dur"
	AttrStartTime  = "start_time"
	AttrParentXwf  = "parent.xwf.id"
	AttrRootXwf    = "root.xwf.id"
	AttrSubwfID    = "subwf.id"
	AttrRemoteCPU  = "remote_cpu_time"
	AttrTransform  = "transformation"
	AttrExecutable = "executable"
	AttrArgv       = "argv"
	AttrStdoutText = "stdout.text"
	AttrStderrText = "stderr.text"
)

var (
	once  sync.Once
	model *yang.Model
	mErr  error
)

// Model returns the resolved Stampede data model. The schema text is
// parsed once; a parse failure is a build defect and is reported on every
// call.
func Model() (*yang.Model, error) {
	once.Do(func() {
		root, err := yang.Parse(Text)
		if err != nil {
			mErr = err
			return
		}
		model, mErr = yang.Resolve(root)
	})
	return model, mErr
}

// MustModel is Model for initialisation paths where the embedded schema
// being unparseable should stop the program.
func MustModel() *yang.Model {
	m, err := Model()
	if err != nil {
		panic(err)
	}
	return m
}

// Validator checks BP events against the Stampede model.
type Validator struct {
	model *yang.Model
	// Strict rejects attributes that the event's container does not
	// declare. The published loader ignores extras, so Strict defaults to
	// false; tests for normalizers turn it on to catch typos.
	Strict bool
}

// NewValidator returns a validator over the embedded schema.
func NewValidator() (*Validator, error) {
	m, err := Model()
	if err != nil {
		return nil, err
	}
	return &Validator{model: m}, nil
}

// ValidationError aggregates everything wrong with one event.
type ValidationError struct {
	EventType string
	Problems  []string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("schema: event %s invalid: %s", e.EventType, strings.Join(e.Problems, "; "))
}

// Validate checks ev against its container definition: the event type must
// exist, mandatory leaves must be present, and every present attribute
// must type-check. It returns nil when the event conforms.
func (v *Validator) Validate(ev *bp.Event) error {
	c, ok := v.model.Containers[ev.Type]
	if !ok {
		return &ValidationError{EventType: ev.Type, Problems: []string{"unknown event type"}}
	}
	var problems []string
	c.EachLeaf(func(leaf *yang.Leaf) bool {
		// ts is carried on the Event struct, not in Attrs.
		if leaf.Name == bp.KeyTS {
			return true
		}
		val, present := ev.Attrs[leaf.Name]
		if !present {
			if leaf.Mandatory {
				problems = append(problems, fmt.Sprintf("missing mandatory attribute %q", leaf.Name))
			}
			return true
		}
		if err := leaf.CheckValue(val); err != nil {
			problems = append(problems, fmt.Sprintf("attribute %q: %v", leaf.Name, err))
		}
		return true
	})
	if ev.TS.IsZero() {
		problems = append(problems, "zero timestamp")
	}
	if v.Strict {
		for k := range ev.Attrs {
			if _, declared := c.Leaves[k]; !declared {
				problems = append(problems, fmt.Sprintf("undeclared attribute %q", k))
			}
		}
	}
	if len(problems) > 0 {
		return &ValidationError{EventType: ev.Type, Problems: problems}
	}
	return nil
}

// Known reports whether the event type exists in the model.
func (v *Validator) Known(eventType string) bool {
	_, ok := v.model.Containers[eventType]
	return ok
}

// EventTypes returns all event type names in schema order.
func (v *Validator) EventTypes() []string { return v.model.ContainerNames() }
