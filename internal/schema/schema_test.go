package schema

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bp"
	"repro/internal/uuid"
)

var ts0 = time.Date(2012, 3, 13, 12, 35, 38, 0, time.UTC)

func newValidator(t *testing.T) *Validator {
	t.Helper()
	v, err := NewValidator()
	if err != nil {
		t.Fatalf("NewValidator: %v", err)
	}
	return v
}

func TestEmbeddedSchemaParses(t *testing.T) {
	m, err := Model()
	if err != nil {
		t.Fatalf("embedded schema does not parse: %v", err)
	}
	if m.ModuleName != "stampede" {
		t.Errorf("module name %q", m.ModuleName)
	}
	// Every exported event constant must resolve to a container.
	for _, name := range []string{
		WfPlan, StaticStart, StaticEnd, XwfStart, XwfEnd,
		TaskInfo, TaskEdge, JobInfo, JobEdge, MapTaskJob, MapSubwfJob,
		JobInstPre, JobInstPreEnd, SubmitStart, SubmitEnd,
		HeldStart, HeldEnd, MainStart, MainTerm, MainEnd,
		PostStart, PostEnd, HostInfo, ImageInfo, AbortInfo,
		InvStart, InvEnd,
	} {
		if _, ok := m.Containers[name]; !ok {
			t.Errorf("constant %q has no container in the schema", name)
		}
	}
}

func TestValidatePaperExample(t *testing.T) {
	v := newValidator(t)
	ev := bp.New(XwfStart, ts0).
		Set(AttrLevel, bp.LevelInfo).
		Set(AttrXwfID, "ea17e8ac-02ac-4909-b5e3-16e367392556").
		SetInt("restart_count", 0)
	if err := v.Validate(ev); err != nil {
		t.Fatalf("paper example rejected: %v", err)
	}
}

func TestValidateMissingMandatory(t *testing.T) {
	v := newValidator(t)
	ev := bp.New(XwfStart, ts0).Set(AttrXwfID, uuid.New().String())
	err := v.Validate(ev)
	if err == nil || !strings.Contains(err.Error(), "restart_count") {
		t.Fatalf("err = %v, want missing restart_count", err)
	}
}

func TestValidateBadTypes(t *testing.T) {
	v := newValidator(t)
	cases := []struct {
		name string
		ev   *bp.Event
		want string
	}{
		{
			"negative uint32",
			bp.New(XwfStart, ts0).SetInt("restart_count", -1),
			"restart_count",
		},
		{
			"malformed uuid",
			bp.New(XwfStart, ts0).SetInt("restart_count", 0).Set(AttrXwfID, "not-a-uuid"),
			"xwf.id",
		},
		{
			"non-numeric duration",
			bp.New(InvEnd, ts0).
				Set(AttrJobID, "j1").SetInt(AttrJobInstID, 1).SetInt(AttrInvID, 1).
				Set(AttrStartTime, "2012-03-13T12:35:38.000000Z").
				Set(AttrDur, "fast").SetInt(AttrExitcode, 0).Set(AttrTransform, "exec0"),
			"dur",
		},
	}
	for _, tc := range cases {
		err := v.Validate(tc.ev)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateUnknownEvent(t *testing.T) {
	v := newValidator(t)
	err := v.Validate(bp.New("stampede.nope", ts0))
	if err == nil || !strings.Contains(err.Error(), "unknown event type") {
		t.Fatalf("err = %v", err)
	}
	if v.Known("stampede.nope") {
		t.Error("Known(nope) = true")
	}
	if !v.Known(InvEnd) {
		t.Error("Known(InvEnd) = false")
	}
}

func TestValidateStrictRejectsUndeclared(t *testing.T) {
	v := newValidator(t)
	ev := bp.New(XwfStart, ts0).SetInt("restart_count", 0).Set("mystery", "x")
	if err := v.Validate(ev); err != nil {
		t.Fatalf("lenient mode rejected extra attr: %v", err)
	}
	v.Strict = true
	err := v.Validate(ev)
	if err == nil || !strings.Contains(err.Error(), "mystery") {
		t.Fatalf("strict mode err = %v", err)
	}
}

func TestValidateZeroTimestamp(t *testing.T) {
	v := newValidator(t)
	ev := &bp.Event{Type: XwfStart, Attrs: bp.Attrs{{Key: "restart_count", Val: "0"}}}
	err := v.Validate(ev)
	if err == nil || !strings.Contains(err.Error(), "zero timestamp") {
		t.Fatalf("err = %v", err)
	}
}

func TestInvEndFullRecordValidates(t *testing.T) {
	v := newValidator(t)
	v.Strict = true
	ev := bp.New(InvEnd, ts0).
		Set(AttrLevel, bp.LevelInfo).
		Set(AttrXwfID, uuid.New().String()).
		Set(AttrJobID, "processing.exec0").
		SetInt(AttrJobInstID, 1).
		SetInt(AttrInvID, 1).
		Set(AttrStartTime, ts0.Format(bp.TimeFormat)).
		SetFloat(AttrDur, 51.0).
		SetFloat(AttrRemoteCPU, 49.2).
		SetInt(AttrExitcode, 0).
		Set(AttrTransform, "processing.exec0").
		Set(AttrExecutable, "/usr/bin/java").
		Set(AttrArgv, "-jar dart.jar -p 0.5").
		Set(AttrTaskID, "t_exec0").
		Set(AttrSite, "trianacloud").
		Set(AttrHostname, "trianaworker6")
	if err := v.Validate(ev); err != nil {
		t.Fatalf("full inv.end rejected in strict mode: %v", err)
	}
}

func TestAllLifecycleEventsValidateMinimal(t *testing.T) {
	v := newValidator(t)
	wf := uuid.New().String()
	ref := func(e *bp.Event) *bp.Event {
		return e.Set(AttrXwfID, wf).Set(AttrJobID, "j").SetInt(AttrJobInstID, 1)
	}
	events := []*bp.Event{
		bp.New(WfPlan, ts0).Set(AttrXwfID, wf).Set("submit.hostname", "localhost").Set(AttrRootXwf, wf),
		bp.New(StaticStart, ts0).Set(AttrXwfID, wf),
		bp.New(StaticEnd, ts0).Set(AttrXwfID, wf),
		bp.New(XwfStart, ts0).Set(AttrXwfID, wf).SetInt("restart_count", 0),
		bp.New(TaskInfo, ts0).Set(AttrXwfID, wf).Set(AttrTaskID, "t1").
			Set("type_desc", "compute").Set(AttrTransform, "exec0"),
		bp.New(TaskEdge, ts0).Set(AttrXwfID, wf).Set("parent.task.id", "t1").Set("child.task.id", "t2"),
		bp.New(JobInfo, ts0).Set(AttrXwfID, wf).Set(AttrJobID, "j").Set("type_desc", "compute").
			SetInt("clustered", 0).SetInt("max_retries", 3).Set(AttrExecutable, "/bin/x").SetInt("task_count", 1),
		bp.New(JobEdge, ts0).Set(AttrXwfID, wf).Set("parent.job.id", "j1").Set("child.job.id", "j2"),
		bp.New(MapTaskJob, ts0).Set(AttrXwfID, wf).Set(AttrTaskID, "t1").Set(AttrJobID, "j"),
		bp.New(MapSubwfJob, ts0).Set(AttrXwfID, wf).Set(AttrSubwfID, uuid.New().String()).
			Set(AttrJobID, "j").SetInt(AttrJobInstID, 1),
		ref(bp.New(JobInstPre, ts0)),
		ref(bp.New(JobInstPreEnd, ts0)).SetInt(AttrStatus, 0).SetInt(AttrExitcode, 0),
		ref(bp.New(SubmitStart, ts0)),
		ref(bp.New(SubmitEnd, ts0)).SetInt(AttrStatus, 0),
		ref(bp.New(HeldStart, ts0)),
		ref(bp.New(HeldEnd, ts0)).SetInt(AttrStatus, 0),
		ref(bp.New(MainStart, ts0)),
		ref(bp.New(MainTerm, ts0)).SetInt(AttrStatus, 0),
		ref(bp.New(MainEnd, ts0)).SetInt(AttrStatus, 0).SetInt(AttrExitcode, 0),
		ref(bp.New(PostStart, ts0)),
		ref(bp.New(PostEnd, ts0)).SetInt(AttrStatus, 0).SetInt(AttrExitcode, 0),
		ref(bp.New(HostInfo, ts0)).Set(AttrSite, "local").Set(AttrHostname, "node1").Set("ip", "10.0.0.1"),
		ref(bp.New(ImageInfo, ts0)).SetInt("size", 1<<20),
		ref(bp.New(AbortInfo, ts0)),
		ref(bp.New(InvStart, ts0)).SetInt(AttrInvID, 1),
		ref(bp.New(InvEnd, ts0)).SetInt(AttrInvID, 1).
			Set(AttrStartTime, ts0.Format(bp.TimeFormat)).SetFloat(AttrDur, 1).
			SetInt(AttrExitcode, 0).Set(AttrTransform, "x"),
		bp.New(XwfEnd, ts0).Set(AttrXwfID, wf).SetInt("restart_count", 0).SetInt(AttrStatus, 0),
	}
	for _, ev := range events {
		if err := v.Validate(ev); err != nil {
			t.Errorf("%s: %v", ev.Type, err)
		}
	}
}

func TestValidateAfterBPRoundTrip(t *testing.T) {
	// Events must stay schema-valid across Format/Parse: the bus and log
	// files carry the text form.
	v := newValidator(t)
	ev := bp.New(MainEnd, ts0).
		Set(AttrXwfID, uuid.New().String()).
		Set(AttrJobID, "exec1").SetInt(AttrJobInstID, 1).
		SetInt(AttrStatus, 0).SetInt(AttrExitcode, 0).
		Set(AttrStdoutText, "result line 1\nresult line 2").
		Set(AttrSite, "trianacloud")
	back, err := bp.Parse(ev.Format())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(back); err != nil {
		t.Fatalf("round-tripped event invalid: %v", err)
	}
}

func TestEventTypesList(t *testing.T) {
	v := newValidator(t)
	types := v.EventTypes()
	if len(types) < 25 {
		t.Fatalf("only %d event types in schema", len(types))
	}
	for _, typ := range types {
		if !strings.HasPrefix(typ, "stampede.") {
			t.Errorf("event type %q lacks stampede. prefix", typ)
		}
	}
}
