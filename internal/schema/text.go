package schema

// Text is the Stampede log-message schema, authored in the YANG subset of
// internal/yang. It mirrors the structure of the published schema (the
// paper's [35]): a base-event grouping shared by every message, a
// job-instance reference grouping, and one container per event type.
const Text = `
module stampede {
    typedef nl_ts {
        type string;
        description "Timestamp, ISO8601 or seconds since 1/1/1970";
    }
    typedef uuid {
        type string;
        description "RFC 4122 canonical form";
    }

    grouping base-event {
        description "Common components in all events";
        leaf ts {
            type nl_ts;
            mandatory "true";
            description "Timestamp, ISO8601 or seconds since 1/1/1970";
        }
        leaf level {
            type string;
            description "Severity: Info, Warn, Error or Debug";
        }
        leaf xwf.id {
            type uuid;
            description "Executable workflow id";
        }
    }

    grouping job-inst-ref {
        description "Reference to one scheduled instance of a job";
        leaf job.id {
            type string;
            mandatory "true";
            description "Identifier of the job in the executable workflow";
        }
        leaf job_inst.id {
            type int32;
            mandatory "true";
            description "Submit sequence number of this instance (retries increment it)";
        }
    }

    container stampede.wf.plan {
        description "Workflow planned: static description is about to follow";
        uses base-event;
        leaf submit.hostname {
            type string;
            mandatory "true";
            description "Host from which the workflow was planned/submitted";
        }
        leaf dax.label { type string; }
        leaf dax.version { type string; }
        leaf dax.file { type string; }
        leaf dag.file.name { type string; }
        leaf planner.version { type string; }
        leaf submit_dir { type string; }
        leaf user { type string; }
        leaf argv { type string; }
        leaf parent.xwf.id {
            type uuid;
            description "Executable workflow id of the parent, for sub-workflows";
        }
        leaf root.xwf.id {
            type uuid;
            mandatory "true";
            description "Executable workflow id of the root of the hierarchy";
        }
    }

    container stampede.static.start {
        description "Start of the static (task/job/edge) description block";
        uses base-event;
    }
    container stampede.static.end {
        description "End of the static description block";
        uses base-event;
    }

    container stampede.xwf.start {
        description "Executable workflow execution started";
        uses base-event;
        leaf restart_count {
            type uint32;
            mandatory "true";
            description "Number of times workflow was restarted (due to failures)";
        }
    }
    container stampede.xwf.end {
        description "Executable workflow execution finished";
        uses base-event;
        leaf restart_count {
            type uint32;
            mandatory "true";
        }
        leaf status {
            type int32;
            mandatory "true";
            description "0 on success, -1 on failure";
        }
    }

    container stampede.task.info {
        description "One task of the abstract workflow";
        uses base-event;
        leaf task.id {
            type string;
            mandatory "true";
        }
        leaf type {
            type uint32;
            description "Numeric task type code";
        }
        leaf type_desc {
            type string;
            mandatory "true";
            description "Human-readable task type, e.g. compute or processing";
        }
        leaf transformation {
            type string;
            mandatory "true";
            description "Logical name of the executable/unit";
        }
        leaf argv { type string; }
    }
    container stampede.task.edge {
        description "Dependency between two abstract-workflow tasks";
        uses base-event;
        leaf parent.task.id {
            type string;
            mandatory "true";
        }
        leaf child.task.id {
            type string;
            mandatory "true";
        }
    }

    container stampede.job.info {
        description "One job (node) of the executable workflow";
        uses base-event;
        leaf job.id {
            type string;
            mandatory "true";
        }
        leaf type_desc {
            type string;
            mandatory "true";
        }
        leaf clustered {
            type uint32;
            mandatory "true";
            description "1 when several tasks were clustered into this job";
        }
        leaf max_retries {
            type uint32;
            mandatory "true";
        }
        leaf executable {
            type string;
            mandatory "true";
        }
        leaf argv { type string; }
        leaf task_count {
            type uint32;
            mandatory "true";
            description "Number of abstract tasks mapped into this job";
        }
    }
    container stampede.job.edge {
        description "Dependency between two executable-workflow jobs";
        uses base-event;
        leaf parent.job.id {
            type string;
            mandatory "true";
        }
        leaf child.job.id {
            type string;
            mandatory "true";
        }
    }

    container stampede.wf.map.task_job {
        description "Many-to-many mapping from abstract task to executable job";
        uses base-event;
        leaf task.id {
            type string;
            mandatory "true";
        }
        leaf job.id {
            type string;
            mandatory "true";
        }
    }
    container stampede.xwf.map.subwf_job {
        description "Associates a sub-workflow with the job that spawned it";
        uses base-event;
        leaf subwf.id {
            type uuid;
            mandatory "true";
            description "Executable workflow id of the sub-workflow";
        }
        uses job-inst-ref;
    }

    container stampede.job_inst.pre.start {
        description "Pre-script of a job instance started";
        uses base-event;
        uses job-inst-ref;
    }
    container stampede.job_inst.pre.end {
        description "Pre-script of a job instance finished";
        uses base-event;
        uses job-inst-ref;
        leaf status { type int32; mandatory "true"; }
        leaf exitcode { type int32; mandatory "true"; }
    }

    container stampede.job_inst.submit.start {
        description "Job instance is being submitted to the scheduling substrate";
        uses base-event;
        uses job-inst-ref;
    }
    container stampede.job_inst.submit.end {
        description "Submission finished (acknowledged by the scheduler)";
        uses base-event;
        uses job-inst-ref;
        leaf status { type int32; mandatory "true"; }
    }

    container stampede.job_inst.held.start {
        description "Job instance was held/paused";
        uses base-event;
        uses job-inst-ref;
    }
    container stampede.job_inst.held.end {
        description "Job instance was released from hold";
        uses base-event;
        uses job-inst-ref;
        leaf status { type int32; }
    }

    container stampede.job_inst.main.start {
        description "Main part of the job instance started executing";
        uses base-event;
        uses job-inst-ref;
        leaf stdout.file { type string; }
        leaf stderr.file { type string; }
    }
    container stampede.job_inst.main.term {
        description "Main part terminated (before postscript evaluation)";
        uses base-event;
        uses job-inst-ref;
        leaf status { type int32; mandatory "true"; }
    }
    container stampede.job_inst.main.error {
        description "Main part of the job instance failed; per-failure error detail";
        uses base-event;
        uses job-inst-ref;
        leaf status { type int32; }
        leaf exitcode { type int32; }
        leaf stderr.text { type string; }
    }
    container stampede.job_inst.main.end {
        description "Main part of the job instance finished";
        uses base-event;
        uses job-inst-ref;
        leaf stdout.file { type string; }
        leaf stdout.text { type string; }
        leaf stderr.file { type string; }
        leaf stderr.text { type string; }
        leaf user { type string; }
        leaf site { type string; }
        leaf multiplier_factor {
            type int32;
            description "Factor applied to runtimes for cumulative statistics";
        }
        leaf status { type int32; mandatory "true"; }
        leaf exitcode { type int32; mandatory "true"; }
    }

    container stampede.job_inst.post.start {
        description "Post-script of a job instance started";
        uses base-event;
        uses job-inst-ref;
    }
    container stampede.job_inst.post.end {
        description "Post-script of a job instance finished";
        uses base-event;
        uses job-inst-ref;
        leaf status { type int32; mandatory "true"; }
        leaf exitcode { type int32; mandatory "true"; }
    }

    container stampede.job_inst.host.info {
        description "Host where the job instance ran";
        uses base-event;
        uses job-inst-ref;
        leaf site { type string; mandatory "true"; }
        leaf hostname { type string; mandatory "true"; }
        leaf ip { type string; mandatory "true"; }
        leaf total_memory { type int64; }
        leaf uname { type string; }
    }
    container stampede.job_inst.image.info {
        description "Memory image size of the running job instance";
        uses base-event;
        uses job-inst-ref;
        leaf size { type int64; }
    }
    container stampede.job_inst.abort.info {
        description "Job instance was aborted by the engine or user";
        uses base-event;
        uses job-inst-ref;
    }

    container stampede.inv.start {
        description "Invocation of an executable on a resource started";
        uses base-event;
        uses job-inst-ref;
        leaf inv.id {
            type int32;
            mandatory "true";
            description "Index of this invocation within the job instance";
        }
    }
    container stampede.inv.end {
        description "Invocation finished; carries the measured performance record";
        uses base-event;
        uses job-inst-ref;
        leaf inv.id { type int32; mandatory "true"; }
        leaf start_time {
            type nl_ts;
            mandatory "true";
            description "When the invocation began on the remote host";
        }
        leaf dur {
            type decimal64;
            mandatory "true";
            description "Invocation duration in seconds on the remote host";
        }
        leaf remote_cpu_time {
            type decimal64;
            description "CPU seconds consumed, when captured";
        }
        leaf exitcode { type int32; mandatory "true"; }
        leaf transformation { type string; mandatory "true"; }
        leaf executable { type string; }
        leaf argv { type string; }
        leaf task.id {
            type string;
            description "Abstract task this invocation instantiates, when any";
        }
        leaf site { type string; }
        leaf hostname { type string; }
    }
}
`
