package synth

import "math"

// SlotSeconds is the discretization step of an arrival schedule: rates are
// piecewise-constant over 100ms slots, fine enough that a ramp's knee is
// measurable but coarse enough that a plan for minutes of wall time stays
// a few thousand floats.
const SlotSeconds = 0.1

// SchedulePlan is a Schedule discretized into SlotSeconds slots. It maps
// both directions: RateAt(t) for pacing and reporting the offered load,
// and TimeAt(i) for inverting "when should the i-th event be published?".
type SchedulePlan struct {
	Rates []float64 // offered events/s in each slot
	cum   []float64 // expected cumulative events by the END of slot i
}

// Plan discretizes the schedule. scale stretches or compresses every
// phase's duration by the same factor so a scenario authored for its
// natural length can be replayed as a 30-second smoke or an hour-long
// soak without editing rates (scale <= 0 means 1).
func (s *Schedule) Plan(scale float64) *SchedulePlan {
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		scale = 1
	}
	p := &SchedulePlan{}
	for _, ph := range s.Phases {
		secs := ph.Seconds * scale
		n := int(math.Ceil(secs / SlotSeconds))
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			// Sample the rate at the slot midpoint of UNSCALED phase time so
			// the shape (ramp slope, step boundaries, spike window) is
			// preserved under scaling.
			frac := (float64(i) + 0.5) / float64(n)
			p.Rates = append(p.Rates, ph.rateAt(frac))
		}
	}
	p.cum = make([]float64, len(p.Rates))
	total := 0.0
	for i, r := range p.Rates {
		total += r * SlotSeconds
		p.cum[i] = total
	}
	return p
}

// rateAt evaluates the phase's rate at fraction frac (0..1) of its span.
func (p *Phase) rateAt(frac float64) float64 {
	switch p.Mode {
	case "ramp":
		return p.Rate + (p.TargetRate-p.Rate)*frac
	case "step":
		r := p.Rate + p.Step*math.Floor(frac*p.Seconds/p.SlotSeconds)
		if p.TargetRate > 0 && r > p.TargetRate {
			r = p.TargetRate
		}
		return r
	case "spike":
		if frac >= 0.4 && frac < 0.6 {
			return p.TargetRate
		}
		return p.Rate
	default: // "constant"
		return p.Rate
	}
}

// DurationSeconds is the planned wall time.
func (p *SchedulePlan) DurationSeconds() float64 {
	return float64(len(p.Rates)) * SlotSeconds
}

// TotalEvents is the number of events the plan offers end to end.
func (p *SchedulePlan) TotalEvents() int {
	if len(p.cum) == 0 {
		return 0
	}
	return int(p.cum[len(p.cum)-1])
}

// RateAt returns the offered rate at wall offset t seconds.
func (p *SchedulePlan) RateAt(t float64) float64 {
	i := int(t / SlotSeconds)
	if i < 0 || len(p.Rates) == 0 {
		return 0
	}
	if i >= len(p.Rates) {
		i = len(p.Rates) - 1
	}
	return p.Rates[i]
}

// TimeAt inverts the plan: the wall offset, in seconds, at which event i
// (0-based) should be published. Events are spread uniformly within their
// slot. Offsets are non-decreasing in i; events beyond TotalEvents pile up
// at the end of the plan.
func (p *SchedulePlan) TimeAt(i int) float64 {
	target := float64(i) + 0.5 // publish at the midpoint of its "share"
	lo, hi := 0, len(p.cum)-1
	if hi < 0 || target >= p.cum[hi] {
		return p.DurationSeconds()
	}
	// First slot whose cumulative count exceeds target.
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] > target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	slotStart := float64(lo) * SlotSeconds
	prev := 0.0
	if lo > 0 {
		prev = p.cum[lo-1]
	}
	inSlot := p.cum[lo] - prev
	if inSlot <= 0 {
		return slotStart
	}
	return slotStart + SlotSeconds*(target-prev)/inSlot
}
