package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Line is one unit of the built scenario stream: either a rendered BP
// event or an injected-malformed garbage line, with its planned publish
// offset and fault annotations. The soak runner publishes (or,
// for Drop lines, discards-and-counts) these in order; the report audits
// the run against the same annotations.
type Line struct {
	At        float64   // planned publish offset, seconds from run start
	TS        time.Time // event timestamp; zero for malformed lines
	Key       string    // routing key (the BP event type)
	Body      []byte
	WF        string // workflow uuid; "" for malformed lines
	Malformed bool   // injected garbage: the loader must count it Malformed
	Drop      bool   // injected broker drop: never published, only counted
}

// Accounting is the stream's own ledger; the soak report checks the live
// run against it event for event.
type Accounting struct {
	Emitted           int // all lines built: Events + InjectedMalformed
	Events            int // real BP event lines
	InjectedMalformed int // garbage lines inserted
	InjectedDrops     int // real event lines marked Drop
	ToPublish         int // Emitted - InjectedDrops
}

// Stream is a fully built scenario: every line annotated, every
// expectation precomputed.
type Stream struct {
	Scenario *Scenario
	Plan     *SchedulePlan
	Lines    []Line

	Workflows  int
	WFLastTS   map[string]time.Time // workflow uuid -> TS of its final event
	DroppedWFs map[string]bool      // workflows with >= 1 injected-drop line

	// FailedJobs/TotalRetries aggregate the generator's failure injection
	// across all workflows; each failing attempt emitted one
	// stampede.job_inst.main.error event.
	FailedJobs   int
	TotalRetries int

	Acct Accounting
}

// garbageLines are the injected-malformed variants; each is rejected by
// bp.Parse for a different reason (no pairs, missing event, bad
// timestamp, unterminated quote).
var garbageLines = []string{
	"this line has no key value structure at all %%",
	"ts=2012-03-13T12:00:00.000000Z",
	"ts=@@not-a-time event=stampede.xwf.start",
	`ts=2012-03-13T12:00:00.000000Z event=stampede.xwf.start k="unterminated`,
}

// BuildStream turns a validated scenario into a deterministic annotated
// line stream lasting durationSeconds (0 = the schedule's natural
// length). The same scenario and duration always yield a byte-identical
// stream — the soak report leans on that to predict the run exactly.
func BuildStream(sc *Scenario, durationSeconds float64) (*Stream, error) {
	scale := 0.0
	natural := 0.0
	for _, ph := range sc.Arrival.Phases {
		natural += ph.Seconds
	}
	if durationSeconds > 0 && natural > 0 {
		scale = durationSeconds / natural
	}
	plan := sc.Arrival.Plan(scale)
	total := plan.TotalEvents()
	maxEvents := sc.MaxEvents
	if maxEvents == 0 {
		maxEvents = DefaultMaxEvents
	}
	if total > maxEvents {
		return nil, fmt.Errorf("scenario %q: schedule offers %d events; max_events is %d", sc.Name, total, maxEvents)
	}

	s := &Stream{
		Scenario:   sc,
		Plan:       plan,
		WFLastTS:   map[string]time.Time{},
		DroppedWFs: map[string]bool{},
	}

	// Weighted round-robin over tenants, deterministic in the arrival
	// index: arrival k belongs to the tenant owning slot k mod totalWeight.
	totalWeight := 0
	for _, t := range sc.Tenants {
		totalWeight += t.Weight
	}
	pick := func(k int) *Tenant {
		w := k % totalWeight
		for i := range sc.Tenants {
			if w < sc.Tenants[i].Weight {
				return &sc.Tenants[i]
			}
			w -= sc.Tenants[i].Weight
		}
		return &sc.Tenants[0]
	}

	// Generate workflows until the population covers the offered events.
	type wf struct {
		tr   *Trace
		base time.Time // earliest event TS, for relative offsets
	}
	var wfs []wf
	built := 0
	maxMakespan := 0.0
	for k := 0; built < total || k == 0; k++ {
		cfg := pick(k).config(sc, k)
		tr := Generate(cfg)
		if built+len(tr.Events) > maxEvents {
			return nil, fmt.Errorf("scenario %q: workflow population exceeds max_events %d", sc.Name, maxEvents)
		}
		wfs = append(wfs, wf{tr: tr, base: tr.Events[0].TS})
		built += len(tr.Events)
		s.FailedJobs += tr.FailedJobs
		s.TotalRetries += tr.TotalRetries
		if tr.MakespanSeconds > maxMakespan {
			maxMakespan = tr.MakespanSeconds
		}
		s.Workflows++
		uuids := append([]string{tr.RootUUID}, tr.SubUUIDs...)
		for _, u := range uuids {
			s.WFLastTS[u] = time.Time{}
		}
	}

	// Merge the per-workflow event lists into one publish order: workflow
	// j enters at the wall offset its first event is due under the
	// schedule, and its simulated timeline is compressed so late arrivals
	// interleave with earlier long-running workflows. Stable sort keeps
	// each workflow's events in causal order.
	compress := 1.0
	if maxMakespan > 0 {
		compress = plan.DurationSeconds() / (maxMakespan + plan.DurationSeconds())
	}
	type entry struct {
		sortT float64
		wfIdx int
		evIdx int
	}
	entries := make([]entry, 0, built)
	cum := 0
	for j := range wfs {
		arrival := plan.TimeAt(cum)
		for i, ev := range wfs[j].tr.Events {
			off := ev.TS.Sub(wfs[j].base).Seconds()
			entries = append(entries, entry{sortT: arrival + off*compress, wfIdx: j, evIdx: i})
		}
		cum += len(wfs[j].tr.Events)
	}
	sort.SliceStable(entries, func(a, b int) bool { return entries[a].sortT < entries[b].sortT })

	// Render and annotate. The fault rng is separate from the generator
	// rngs so tweaking a fault knob never reshapes the workflows
	// themselves — only which lines get mangled or dropped.
	frng := rand.New(rand.NewSource(sc.Seed ^ 0x5eedfa07))
	f := &sc.Faults
	s.Lines = make([]Line, 0, built+built/16)
	for i, en := range entries {
		ev := wfs[en.wfIdx].tr.Events[en.evIdx]
		wfUUID := ev.Get("xwf.id")
		if f.MalformedRate > 0 && frng.Float64() < f.MalformedRate {
			g := garbageLines[s.Acct.InjectedMalformed%len(garbageLines)]
			s.Lines = append(s.Lines, Line{
				At:        plan.TimeAt(i),
				Key:       "stampede.injected.garbage",
				Body:      []byte(g),
				Malformed: true,
			})
			s.Acct.InjectedMalformed++
		}
		ln := Line{
			At:   plan.TimeAt(i),
			TS:   ev.TS.Truncate(time.Microsecond),
			Key:  ev.Type,
			Body: []byte(ev.Format()),
			WF:   wfUUID,
		}
		if f.BrokerDropRate > 0 && frng.Float64() < f.BrokerDropRate {
			ln.Drop = true
			s.Acct.InjectedDrops++
			if wfUUID != "" {
				s.DroppedWFs[wfUUID] = true
			}
		}
		s.Lines = append(s.Lines, ln)
		if wfUUID != "" {
			// Rendered BP timestamps carry microseconds; track the last TS at
			// the same precision the loader will see after the round trip.
			ts := ev.TS.Truncate(time.Microsecond)
			if last, ok := s.WFLastTS[wfUUID]; !ok || ts.After(last) {
				s.WFLastTS[wfUUID] = ts
			}
		}
	}
	s.Acct.Events = built
	s.Acct.Emitted = len(s.Lines)
	s.Acct.ToPublish = s.Acct.Emitted - s.Acct.InjectedDrops
	return s, nil
}
