// Scenario engine: a declarative workload DSL over the synthetic trace
// generator. A scenario file declares a mixed tenant population (Pegasus,
// Triana and DART shapes in configurable proportions), an arrival-rate
// schedule (constant, ramp, step, spike — the vhive trace-synthesizer
// vocabulary) and a fault plan (job failures and retries, malformed BP
// lines, broker drops, slow consumers, a mid-run loader restart). Building
// a scenario yields a fully annotated, deterministic event stream the
// stampede-soak runner paces through mq → loader → archive and then
// audits event by event.
package synth

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Scenario is the root of the workload DSL.
type Scenario struct {
	Name        string   `json:"name"`
	Description string   `json:"description,omitempty"`
	Seed        int64    `json:"seed"`
	Tenants     []Tenant `json:"tenants"`
	Arrival     Schedule `json:"arrival"`
	Faults      Faults   `json:"faults,omitempty"`

	// MaxAllocsPerEvent, when > 0, makes the soak report fail if the
	// whole-run allocation count per applied event exceeds it — the same
	// ceiling discipline as hotpath_alloc_test.go, end to end.
	MaxAllocsPerEvent float64 `json:"max_allocs_per_event,omitempty"`

	// MaxEvents bounds the built stream (0 = DefaultMaxEvents): a schedule
	// asking for more events than this is a config error, not an OOM.
	MaxEvents int `json:"max_events,omitempty"`

	// Subscribers attaches this many live SSE clients to the soak run's
	// dashboard stream endpoint, exercising the materialized-view push
	// path (delta coalescing, bounded buffers, slow-consumer resync)
	// end to end under ingest load. 0 = no push serving.
	Subscribers int `json:"subscribers,omitempty"`
}

// DefaultMaxEvents bounds a built scenario stream when Scenario.MaxEvents
// is zero.
const DefaultMaxEvents = 3_000_000

// Tenant is one workflow population in the mix.
type Tenant struct {
	Name   string `json:"name"`
	Engine string `json:"engine"` // pegasus | triana | dart | generic
	Weight int    `json:"weight"` // relative share of workflow arrivals

	Workflow Shape `json:"workflow"`
}

// Shape parameterizes the workflows a tenant submits; zero values fall
// back to the engine preset and then to the generator defaults.
type Shape struct {
	Jobs           int         `json:"jobs,omitempty"`
	Width          int         `json:"width,omitempty"`
	TasksPerJob    int         `json:"tasks_per_job,omitempty"`
	Hosts          int         `json:"hosts,omitempty"`
	SlotsPerHost   int         `json:"slots_per_host,omitempty"`
	QueueDelayMean float64     `json:"queue_delay_mean,omitempty"`
	SubWorkflows   int         `json:"sub_workflows,omitempty"`
	JobTypes       []JobType   `json:"job_types,omitempty"`
	Stages         []StageSpec `json:"stages,omitempty"`
}

// Schedule is a sequence of arrival-rate phases; rates are BP events per
// second of wall time.
type Schedule struct {
	Phases []Phase `json:"phases"`
}

// Phase is one segment of the arrival schedule.
type Phase struct {
	// Mode: "constant" holds Rate; "ramp" moves linearly from Rate to
	// TargetRate; "step" starts at Rate and adds Step every SlotSeconds
	// (the vhive RPS start/step/target schedule); "spike" holds Rate but
	// bursts to TargetRate for the middle fifth of the phase.
	Mode        string  `json:"mode"`
	Seconds     float64 `json:"seconds"`
	Rate        float64 `json:"rate"`
	TargetRate  float64 `json:"target_rate,omitempty"`
	Step        float64 `json:"step,omitempty"`
	SlotSeconds float64 `json:"slot_seconds,omitempty"`
}

// Faults is the injected-failure plan. Every knob defaults to off.
type Faults struct {
	// JobFailureRate/MaxRetries drive the generator's failure injection
	// (exit code 1 + stampede.job_inst.main.error) for every tenant.
	JobFailureRate float64 `json:"job_failure_rate,omitempty"`
	MaxRetries     int     `json:"max_retries,omitempty"`

	// MalformedRate inserts unparseable garbage lines into the stream at
	// this per-line probability, simulating a corrupting producer.
	MalformedRate float64 `json:"malformed_rate,omitempty"`

	// BrokerDropRate discards real lines before they reach the broker at
	// this probability — the injected analogue of a full queue.
	BrokerDropRate float64 `json:"broker_drop_rate,omitempty"`

	// QueueCapacity bounds the soak queue (0 = mq.DefaultQueueCapacity);
	// small values force natural overflow drops.
	QueueCapacity int `json:"queue_capacity,omitempty"`

	// SlowConsumer stalls the consumer by DelayMS per message between the
	// given run fractions.
	SlowConsumer *SlowConsumer `json:"slow_consumer,omitempty"`

	// LoaderRestart tears the loader down mid-run at the given fraction of
	// the publish window and starts a fresh one on the same queue.
	LoaderRestart *LoaderRestart `json:"loader_restart,omitempty"`
}

// SlowConsumer describes a consumer stall window.
type SlowConsumer struct {
	StartFraction float64 `json:"start_fraction"`
	EndFraction   float64 `json:"end_fraction"`
	DelayMS       float64 `json:"delay_ms"`
}

// LoaderRestart describes a mid-run loader restart.
type LoaderRestart struct {
	AtFraction float64 `json:"at_fraction"`
}

// ParseScenario decodes and validates a scenario file. Unknown fields are
// rejected so typos fail loudly instead of silently disabling a fault.
func ParseScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// Trailing garbage after the closing brace is almost always a merge
	// accident; surface it.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after scenario object")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// badRate reports rates that are NaN, infinite or negative.
func badRate(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) || v < 0 }

// badFrac reports probabilities/fractions outside [0, 1].
func badFrac(v float64) bool { return badRate(v) || v > 1 }

// Validate checks the scenario for the whole class of configs the engine
// refuses to run: non-finite or negative rates, empty tenant mixes,
// unknown modes and engines, out-of-range probabilities and cyclic stage
// topologies. It returns an error, never panics — FuzzScenarioConfig
// holds it to that.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if len(s.Tenants) == 0 {
		return fmt.Errorf("scenario %q: at least one tenant is required", s.Name)
	}
	seen := map[string]bool{}
	for i := range s.Tenants {
		t := &s.Tenants[i]
		if t.Name == "" {
			return fmt.Errorf("scenario %q: tenant %d has no name", s.Name, i)
		}
		if seen[t.Name] {
			return fmt.Errorf("scenario %q: duplicate tenant %q", s.Name, t.Name)
		}
		seen[t.Name] = true
		switch t.Engine {
		case "pegasus", "triana", "dart", "generic", "":
		default:
			return fmt.Errorf("scenario %q: tenant %q: unknown engine %q", s.Name, t.Name, t.Engine)
		}
		if t.Weight < 1 {
			return fmt.Errorf("scenario %q: tenant %q: weight %d; need >= 1", s.Name, t.Name, t.Weight)
		}
		w := &t.Workflow
		for name, v := range map[string]int{
			"jobs": w.Jobs, "width": w.Width, "tasks_per_job": w.TasksPerJob,
			"hosts": w.Hosts, "slots_per_host": w.SlotsPerHost, "sub_workflows": w.SubWorkflows,
		} {
			if v < 0 {
				return fmt.Errorf("scenario %q: tenant %q: negative %s", s.Name, t.Name, name)
			}
		}
		if badRate(w.QueueDelayMean) {
			return fmt.Errorf("scenario %q: tenant %q: queue_delay_mean must be finite and non-negative", s.Name, t.Name)
		}
		for _, jt := range w.JobTypes {
			if jt.Name == "" || jt.Weight < 1 || badRate(jt.MeanSeconds) || badRate(jt.StddevPct) {
				return fmt.Errorf("scenario %q: tenant %q: invalid job type %+v", s.Name, t.Name, jt)
			}
		}
		if err := ValidateStages(w.Stages); err != nil {
			return fmt.Errorf("scenario %q: tenant %q: %w", s.Name, t.Name, err)
		}
	}
	if len(s.Arrival.Phases) == 0 {
		return fmt.Errorf("scenario %q: at least one arrival phase is required", s.Name)
	}
	anyRate := false
	for i, p := range s.Arrival.Phases {
		if badRate(p.Seconds) || p.Seconds == 0 {
			return fmt.Errorf("scenario %q: phase %d: seconds must be finite and positive", s.Name, i)
		}
		if badRate(p.Rate) || badRate(p.TargetRate) || badRate(p.Step) || badRate(p.SlotSeconds) {
			return fmt.Errorf("scenario %q: phase %d: rates must be finite and non-negative", s.Name, i)
		}
		switch p.Mode {
		case "constant", "":
		case "ramp", "spike":
			// target_rate may legitimately be below rate (ramp down).
		case "step":
			if p.Step == 0 || p.SlotSeconds == 0 {
				return fmt.Errorf("scenario %q: phase %d: step mode needs step and slot_seconds > 0", s.Name, i)
			}
		default:
			return fmt.Errorf("scenario %q: phase %d: unknown mode %q", s.Name, i, p.Mode)
		}
		if p.Rate > 0 || p.TargetRate > 0 {
			anyRate = true
		}
	}
	if !anyRate {
		return fmt.Errorf("scenario %q: arrival schedule never exceeds 0 events/s", s.Name)
	}
	f := &s.Faults
	for name, v := range map[string]float64{
		"job_failure_rate": f.JobFailureRate,
		"malformed_rate":   f.MalformedRate,
		"broker_drop_rate": f.BrokerDropRate,
	} {
		if badFrac(v) {
			return fmt.Errorf("scenario %q: faults.%s must be in [0, 1]", s.Name, name)
		}
	}
	if f.MaxRetries < 0 || f.MaxRetries > 16 {
		return fmt.Errorf("scenario %q: faults.max_retries %d out of range [0, 16]", s.Name, f.MaxRetries)
	}
	if f.QueueCapacity < 0 {
		return fmt.Errorf("scenario %q: faults.queue_capacity must be >= 0", s.Name)
	}
	if sc := f.SlowConsumer; sc != nil {
		if badFrac(sc.StartFraction) || badFrac(sc.EndFraction) || sc.EndFraction <= sc.StartFraction {
			return fmt.Errorf("scenario %q: faults.slow_consumer fractions must satisfy 0 <= start < end <= 1", s.Name)
		}
		if badRate(sc.DelayMS) {
			return fmt.Errorf("scenario %q: faults.slow_consumer.delay_ms must be finite and non-negative", s.Name)
		}
	}
	if lr := f.LoaderRestart; lr != nil {
		if badFrac(lr.AtFraction) {
			return fmt.Errorf("scenario %q: faults.loader_restart.at_fraction must be in [0, 1]", s.Name)
		}
	}
	if badRate(s.MaxAllocsPerEvent) {
		return fmt.Errorf("scenario %q: max_allocs_per_event must be finite and non-negative", s.Name)
	}
	if s.MaxEvents < 0 {
		return fmt.Errorf("scenario %q: max_events must be >= 0", s.Name)
	}
	if s.Subscribers < 0 || s.Subscribers > 100_000 {
		return fmt.Errorf("scenario %q: subscribers %d out of range [0, 100000]", s.Name, s.Subscribers)
	}
	return nil
}

// config maps a tenant onto the generator for one workflow arrival.
// Engine presets fill what the shape leaves open: Pegasus runs layered
// DAGs, Triana runs a staged pipeline, DART a meta-workflow of
// sub-workflow bundles.
func (t *Tenant) config(s *Scenario, k int) Config {
	w := t.Workflow
	cfg := Config{
		Seed:           s.Seed + int64(k)*1_000_003, // distinct, reproducible per arrival
		Label:          fmt.Sprintf("%s-%s-%05d", sanitizeLabel(s.Name), sanitizeLabel(t.Name), k),
		Jobs:           w.Jobs,
		Width:          w.Width,
		TasksPerJob:    w.TasksPerJob,
		Hosts:          w.Hosts,
		SlotsPerHost:   w.SlotsPerHost,
		QueueDelayMean: w.QueueDelayMean,
		SubWorkflows:   w.SubWorkflows,
		JobTypes:       w.JobTypes,
		Stages:         w.Stages,
		FailureRate:    s.Faults.JobFailureRate,
		MaxRetries:     s.Faults.MaxRetries,
	}
	switch t.Engine {
	case "triana":
		if len(cfg.Stages) == 0 && cfg.Jobs == 0 {
			cfg.Stages = []StageSpec{
				{Name: "ingest", Jobs: 2, MeanSeconds: 20, StddevPct: 0.1},
				{Name: "process", Jobs: 8, MeanSeconds: 90, StddevPct: 0.3, After: []string{"ingest"}},
				{Name: "merge", Jobs: 1, MeanSeconds: 15, StddevPct: 0.1, After: []string{"process"}},
			}
		}
	case "dart":
		if cfg.SubWorkflows == 0 {
			cfg.SubWorkflows = 4
		}
		if cfg.Jobs == 0 {
			cfg.Jobs = 24
		}
	case "pegasus":
		if cfg.Jobs == 0 {
			cfg.Jobs = 20
		}
		if cfg.Width == 0 && len(cfg.Stages) == 0 {
			cfg.Width = 5
		}
	}
	return cfg
}

// sanitizeLabel keeps scenario-derived labels BP- and uuid-seed-safe.
func sanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
