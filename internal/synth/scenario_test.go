package synth

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/bp"
	"repro/internal/schema"
)

// validScenarioJSON is the parse/fuzz baseline: every feature of the DSL
// in one document.
const validScenarioJSON = `{
  "name": "t",
  "seed": 5,
  "tenants": [
    {"name": "peg", "engine": "pegasus", "weight": 2, "workflow": {"jobs": 8, "width": 4}},
    {"name": "tri", "engine": "triana", "weight": 1, "workflow": {"stages": [
      {"Name": "a", "Jobs": 2, "MeanSeconds": 10},
      {"Name": "b", "Jobs": 1, "MeanSeconds": 5, "After": ["a"]}
    ]}}
  ],
  "arrival": {"phases": [
    {"mode": "constant", "seconds": 2, "rate": 500},
    {"mode": "ramp", "seconds": 2, "rate": 500, "target_rate": 1500},
    {"mode": "step", "seconds": 2, "rate": 100, "step": 100, "slot_seconds": 0.5},
    {"mode": "spike", "seconds": 2, "rate": 200, "target_rate": 2000}
  ]},
  "faults": {
    "job_failure_rate": 0.2,
    "max_retries": 1,
    "malformed_rate": 0.02,
    "broker_drop_rate": 0.01,
    "slow_consumer": {"start_fraction": 0.2, "end_fraction": 0.4, "delay_ms": 0.1},
    "loader_restart": {"at_fraction": 0.5}
  }
}`

func TestParseScenarioValid(t *testing.T) {
	sc, err := ParseScenario([]byte(validScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "t" || len(sc.Tenants) != 2 || len(sc.Arrival.Phases) != 4 {
		t.Fatalf("parsed scenario mangled: %+v", sc)
	}
}

func TestParseScenarioRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"empty object", `{}`},
		{"unknown field", `{"name":"x","typo_field":1,"tenants":[{"name":"a","weight":1,"workflow":{}}],"arrival":{"phases":[{"seconds":1,"rate":10}]}}`},
		{"no tenants", `{"name":"x","tenants":[],"arrival":{"phases":[{"seconds":1,"rate":10}]}}`},
		{"zero weight", `{"name":"x","tenants":[{"name":"a","weight":0,"workflow":{}}],"arrival":{"phases":[{"seconds":1,"rate":10}]}}`},
		{"duplicate tenant", `{"name":"x","tenants":[{"name":"a","weight":1,"workflow":{}},{"name":"a","weight":1,"workflow":{}}],"arrival":{"phases":[{"seconds":1,"rate":10}]}}`},
		{"unknown engine", `{"name":"x","tenants":[{"name":"a","engine":"condor","weight":1,"workflow":{}}],"arrival":{"phases":[{"seconds":1,"rate":10}]}}`},
		{"negative rate", `{"name":"x","tenants":[{"name":"a","weight":1,"workflow":{}}],"arrival":{"phases":[{"seconds":1,"rate":-5}]}}`},
		{"zero seconds", `{"name":"x","tenants":[{"name":"a","weight":1,"workflow":{}}],"arrival":{"phases":[{"seconds":0,"rate":10}]}}`},
		{"all-zero rates", `{"name":"x","tenants":[{"name":"a","weight":1,"workflow":{}}],"arrival":{"phases":[{"seconds":1,"rate":0}]}}`},
		{"unknown mode", `{"name":"x","tenants":[{"name":"a","weight":1,"workflow":{}}],"arrival":{"phases":[{"mode":"sawtooth","seconds":1,"rate":10}]}}`},
		{"step without step", `{"name":"x","tenants":[{"name":"a","weight":1,"workflow":{}}],"arrival":{"phases":[{"mode":"step","seconds":1,"rate":10}]}}`},
		{"drop rate over 1", `{"name":"x","tenants":[{"name":"a","weight":1,"workflow":{}}],"arrival":{"phases":[{"seconds":1,"rate":10}]},"faults":{"broker_drop_rate":1.5}}`},
		{"retries out of range", `{"name":"x","tenants":[{"name":"a","weight":1,"workflow":{}}],"arrival":{"phases":[{"seconds":1,"rate":10}]},"faults":{"max_retries":99}}`},
		{"inverted stall window", `{"name":"x","tenants":[{"name":"a","weight":1,"workflow":{}}],"arrival":{"phases":[{"seconds":1,"rate":10}]},"faults":{"slow_consumer":{"start_fraction":0.8,"end_fraction":0.2,"delay_ms":1}}}`},
		{"restart fraction over 1", `{"name":"x","tenants":[{"name":"a","weight":1,"workflow":{}}],"arrival":{"phases":[{"seconds":1,"rate":10}]},"faults":{"loader_restart":{"at_fraction":2}}}`},
		{"cyclic stages", `{"name":"x","tenants":[{"name":"a","weight":1,"workflow":{"stages":[{"Name":"s1","Jobs":1,"MeanSeconds":1,"After":["s2"]},{"Name":"s2","Jobs":1,"MeanSeconds":1,"After":["s1"]}]}}],"arrival":{"phases":[{"seconds":1,"rate":10}]}}`},
		{"self-dependent stage", `{"name":"x","tenants":[{"name":"a","weight":1,"workflow":{"stages":[{"Name":"s1","Jobs":1,"MeanSeconds":1,"After":["s1"]}]}}],"arrival":{"phases":[{"seconds":1,"rate":10}]}}`},
		{"trailing garbage", `{"name":"x","tenants":[{"name":"a","weight":1,"workflow":{}}],"arrival":{"phases":[{"seconds":1,"rate":10}]}} extra`},
	}
	for _, tc := range cases {
		if _, err := ParseScenario([]byte(tc.json)); err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
		}
	}
}

func TestValidateRejectsNonFinite(t *testing.T) {
	// NaN/Inf cannot arrive via JSON, but the API is public: Validate must
	// still refuse them with an error, not build a stream from them.
	base := func() *Scenario {
		sc, err := ParseScenario([]byte(validScenarioJSON))
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.1} {
		sc := base()
		sc.Faults.MalformedRate = v
		if err := sc.Validate(); err == nil {
			t.Errorf("malformed_rate %v accepted", v)
		}
		sc = base()
		sc.Arrival.Phases[0].Rate = v
		if err := sc.Validate(); err == nil {
			t.Errorf("rate %v accepted", v)
		}
		sc = base()
		sc.Tenants[0].Workflow.QueueDelayMean = v
		if err := sc.Validate(); err == nil {
			t.Errorf("queue_delay_mean %v accepted", v)
		}
	}
}

func TestSchedulePlanInversion(t *testing.T) {
	sc, err := ParseScenario([]byte(validScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	p := sc.Arrival.Plan(0)
	n := p.TotalEvents()
	if n < 100 {
		t.Fatalf("plan offers only %d events", n)
	}
	prev := -1.0
	for i := 0; i < n+10; i++ {
		at := p.TimeAt(i)
		if at < prev {
			t.Fatalf("TimeAt not monotone: TimeAt(%d)=%v < %v", i, at, prev)
		}
		if at < 0 || at > p.DurationSeconds() {
			t.Fatalf("TimeAt(%d)=%v outside [0,%v]", i, at, p.DurationSeconds())
		}
		prev = at
	}
	// Scaling stretches wall time but preserves the event count scaled by
	// the same factor (rates are per second of scaled wall time).
	p2 := sc.Arrival.Plan(2)
	if got, want := p2.DurationSeconds(), 2*p.DurationSeconds(); math.Abs(got-want) > 0.2 {
		t.Fatalf("scaled duration %v, want ~%v", got, want)
	}
}

// faultMatrix is the property-test grid: every fault knob on its own and
// all together.
var faultMatrix = []struct {
	name   string
	faults Faults
}{
	{"no faults", Faults{}},
	{"failures and retries", Faults{JobFailureRate: 0.3, MaxRetries: 2}},
	{"malformed", Faults{MalformedRate: 0.05}},
	{"drops", Faults{BrokerDropRate: 0.03}},
	{"everything", Faults{JobFailureRate: 0.25, MaxRetries: 1, MalformedRate: 0.04, BrokerDropRate: 0.02,
		SlowConsumer:  &SlowConsumer{StartFraction: 0.1, EndFraction: 0.3, DelayMS: 0.5},
		LoaderRestart: &LoaderRestart{AtFraction: 0.5}}},
}

func matrixScenario(f Faults) *Scenario {
	return &Scenario{
		Name: "prop",
		Seed: 99,
		Tenants: []Tenant{
			{Name: "peg", Engine: "pegasus", Weight: 2, Workflow: Shape{Jobs: 10, Width: 5}},
			{Name: "dart", Engine: "dart", Weight: 1, Workflow: Shape{Jobs: 8, SubWorkflows: 2}},
			{Name: "tri", Engine: "triana", Weight: 1},
		},
		Arrival: Schedule{Phases: []Phase{{Mode: "constant", Seconds: 2, Rate: 1200}}},
		Faults:  f,
	}
}

func streamFingerprint(s *Stream) string {
	var b bytes.Buffer
	for i := range s.Lines {
		ln := &s.Lines[i]
		fmt.Fprintf(&b, "%.6f|%s|%v|%v|%s\n", ln.At, ln.Key, ln.Malformed, ln.Drop, ln.Body)
	}
	return b.String()
}

func TestBuildStreamDeterministic(t *testing.T) {
	// Same seed + same config => byte-identical stream, under every fault
	// knob. This is what lets the soak report predict a run exactly.
	for _, tc := range faultMatrix {
		t.Run(tc.name, func(t *testing.T) {
			sc := matrixScenario(tc.faults)
			if err := sc.Validate(); err != nil {
				t.Fatal(err)
			}
			a, err := BuildStream(sc, 0)
			if err != nil {
				t.Fatal(err)
			}
			b, err := BuildStream(matrixScenario(tc.faults), 0)
			if err != nil {
				t.Fatal(err)
			}
			fa, fb := streamFingerprint(a), streamFingerprint(b)
			if fa != fb {
				t.Fatal("same scenario produced different streams")
			}
			if a.Acct != b.Acct {
				t.Fatalf("accounting differs: %+v vs %+v", a.Acct, b.Acct)
			}
			// A different seed must not reproduce the stream.
			scc := matrixScenario(tc.faults)
			scc.Seed = 100
			c, err := BuildStream(scc, 0)
			if err != nil {
				t.Fatal(err)
			}
			if streamFingerprint(c) == fa {
				t.Fatal("different seeds produced identical streams")
			}
		})
	}
}

func TestBuildStreamAccountingInternallyConsistent(t *testing.T) {
	for _, tc := range faultMatrix {
		t.Run(tc.name, func(t *testing.T) {
			s, err := BuildStream(matrixScenario(tc.faults), 0)
			if err != nil {
				t.Fatal(err)
			}
			malformed, drops, events := 0, 0, 0
			for i := range s.Lines {
				if s.Lines[i].Malformed {
					malformed++
					if s.Lines[i].Drop {
						t.Fatal("malformed line marked as injected drop")
					}
				} else {
					events++
				}
				if s.Lines[i].Drop {
					drops++
				}
			}
			if malformed != s.Acct.InjectedMalformed || drops != s.Acct.InjectedDrops ||
				events != s.Acct.Events || len(s.Lines) != s.Acct.Emitted ||
				s.Acct.ToPublish != s.Acct.Emitted-s.Acct.InjectedDrops {
				t.Fatalf("ledger mismatch: counted m=%d d=%d e=%d n=%d vs %+v",
					malformed, drops, events, len(s.Lines), s.Acct)
			}
			for i := 1; i < len(s.Lines); i++ {
				if s.Lines[i].At < s.Lines[i-1].At {
					t.Fatalf("publish offsets not monotone at line %d", i)
				}
			}
		})
	}
}

// TestBuildStreamCausallyValid parses every real line back and checks the
// schedule is causally valid per job instance under every fault knob: no
// interval ends before it starts, retry sequence numbers are consecutive
// from 1, and a retry never begins before the previous attempt ended.
func TestBuildStreamCausallyValid(t *testing.T) {
	for _, tc := range faultMatrix {
		t.Run(tc.name, func(t *testing.T) {
			s, err := BuildStream(matrixScenario(tc.faults), 0)
			if err != nil {
				t.Fatal(err)
			}
			type inst struct {
				submitStart, submitEnd, mainStart, mainEnd float64
			}
			insts := map[string]map[int64]*inst{} // wf|job -> seq -> times
			get := func(ev *bp.Event) *inst {
				key := ev.Get(schema.AttrXwfID) + "|" + ev.Get(schema.AttrJobID)
				seq, _ := ev.Int(schema.AttrJobInstID)
				if insts[key] == nil {
					insts[key] = map[int64]*inst{}
				}
				if insts[key][seq] == nil {
					insts[key][seq] = &inst{submitStart: -1, submitEnd: -1, mainStart: -1, mainEnd: -1}
				}
				return insts[key][seq]
			}
			for i := range s.Lines {
				ln := &s.Lines[i]
				if ln.Malformed {
					continue
				}
				ev, perr := bp.Parse(string(ln.Body))
				if perr != nil {
					t.Fatalf("real line failed to parse: %v", perr)
				}
				at := float64(ev.TS.UnixNano()) / 1e9
				switch ev.Type {
				case schema.SubmitStart:
					get(ev).submitStart = at
				case schema.SubmitEnd:
					get(ev).submitEnd = at
				case schema.MainStart:
					get(ev).mainStart = at
				case schema.MainEnd:
					get(ev).mainEnd = at
				case schema.InvEnd:
					if d, derr := ev.Float(schema.AttrDur); derr != nil || d < 0 {
						t.Fatalf("invocation with negative/missing dur: %v %v", d, derr)
					}
				}
			}
			jobs := 0
			for key, seqs := range insts {
				var prevEnd float64 = -1
				for want := int64(1); want <= int64(len(seqs)); want++ {
					in, ok := seqs[want]
					if !ok {
						t.Fatalf("%s: retry seqs not consecutive: missing %d of %d", key, want, len(seqs))
					}
					if in.submitStart > in.submitEnd || in.mainStart > in.mainEnd {
						t.Fatalf("%s seq %d: interval ends before it starts: %+v", key, want, in)
					}
					if want > 1 && in.submitStart < prevEnd {
						t.Fatalf("%s seq %d: retry submitted at %v before previous attempt ended at %v",
							key, want, in.submitStart, prevEnd)
					}
					prevEnd = in.mainEnd
					jobs++
				}
			}
			if jobs == 0 {
				t.Fatal("no job instances found in stream")
			}
		})
	}
}

func TestStageDAGSchedulesCausally(t *testing.T) {
	stages := []StageSpec{
		{Name: "ingest", Jobs: 3, MeanSeconds: 30, StddevPct: 0.2},
		{Name: "proc", Jobs: 6, MeanSeconds: 60, StddevPct: 0.3, After: []string{"ingest"}},
		{Name: "merge", Jobs: 1, MeanSeconds: 10, StddevPct: 0.1, After: []string{"proc", "ingest"}},
	}
	if err := ValidateStages(stages); err != nil {
		t.Fatal(err)
	}
	tr := Generate(Config{Seed: 21, Stages: stages, FailureRate: 0.2, MaxRetries: 1})
	// Collect per-job intervals and the declared edges.
	firstSubmit := map[string]float64{}
	lastEnd := map[string]float64{}
	type edge struct{ parent, child string }
	var edges []edge
	base := tr.Events[0].TS
	for _, ev := range tr.Events {
		at := ev.TS.Sub(base).Seconds()
		switch ev.Type {
		case schema.SubmitStart:
			job := ev.Get(schema.AttrJobID)
			if _, ok := firstSubmit[job]; !ok {
				firstSubmit[job] = at
			}
		case schema.MainEnd:
			job := ev.Get(schema.AttrJobID)
			if at > lastEnd[job] {
				lastEnd[job] = at
			}
		case schema.JobEdge:
			edges = append(edges, edge{ev.Get("parent.job.id"), ev.Get("child.job.id")})
		}
	}
	if len(edges) == 0 {
		t.Fatal("stage DAG produced no job edges")
	}
	for _, e := range edges {
		ps, ok1 := lastEnd[e.parent]
		cs, ok2 := firstSubmit[e.child]
		if !ok1 || !ok2 {
			t.Fatalf("edge %v references unscheduled job", e)
		}
		if cs < ps {
			t.Errorf("child %s submitted at %.2fs before parent %s ended at %.2fs", e.child, cs, e.parent, ps)
		}
	}
	for _, j := range []string{"ingest", "proc", "merge"} {
		found := false
		for job := range firstSubmit {
			if strings.HasPrefix(job, j+"_j") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no jobs from stage %s", j)
		}
	}
}

func TestMainErrorEmittedPerFailedAttempt(t *testing.T) {
	// Regression for the failed-invocation error event: every failing
	// attempt (retried or terminal) must announce itself with exactly one
	// stampede.job_inst.main.error at Error level.
	tr := Generate(Config{Seed: 31, Jobs: 80, FailureRate: 0.4, MaxRetries: 2})
	failedAttempts := tr.TotalRetries + tr.FailedJobs
	if failedAttempts == 0 {
		t.Fatal("no failures at rate 0.4")
	}
	count := 0
	for _, ev := range tr.Events {
		if ev.Type != schema.MainError {
			continue
		}
		count++
		if ev.Get(schema.AttrLevel) != bp.LevelError {
			t.Fatalf("main.error at level %q, want Error", ev.Get(schema.AttrLevel))
		}
		if code, _ := ev.Int(schema.AttrExitcode); code == 0 {
			t.Fatal("main.error with exit code 0")
		}
	}
	if count != failedAttempts {
		t.Fatalf("main.error events %d, want %d (retries %d + failed %d)",
			count, failedAttempts, tr.TotalRetries, tr.FailedJobs)
	}
	// And a clean trace must emit none.
	clean := Generate(Config{Seed: 31, Jobs: 40})
	for _, ev := range clean.Events {
		if ev.Type == schema.MainError {
			t.Fatal("main.error in a failure-free trace")
		}
	}
}

func FuzzScenarioConfig(f *testing.F) {
	f.Add([]byte(validScenarioJSON))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","seed":-1,"tenants":[{"name":"a","weight":1,"workflow":{}}],"arrival":{"phases":[{"seconds":1,"rate":10}]}}`))
	f.Add([]byte(`{"name":"x","tenants":[{"name":"a","weight":1,"workflow":{"stages":[{"Name":"s","Jobs":1,"MeanSeconds":1,"After":["s"]}]}}],"arrival":{"phases":[{"seconds":1,"rate":1}]}}`))
	f.Add([]byte(`{"name":"x","tenants":[{"name":"a","weight":1,"workflow":{}}],"arrival":{"phases":[{"mode":"step","seconds":1e308,"rate":1e308,"step":1e308,"slot_seconds":1e-308}]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(data)
		if err != nil {
			return // rejected with an error, never a panic: that's the contract
		}
		// Anything accepted must satisfy the validated invariants.
		if sc.Validate() != nil {
			t.Fatal("ParseScenario returned a scenario its own Validate rejects")
		}
		for _, p := range sc.Arrival.Phases {
			for _, v := range []float64{p.Seconds, p.Rate, p.TargetRate, p.Step, p.SlotSeconds} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("accepted non-finite/negative phase value %v", v)
				}
			}
		}
		for _, tn := range sc.Tenants {
			if tn.Weight < 1 {
				t.Fatalf("accepted tenant weight %d", tn.Weight)
			}
			if ValidateStages(tn.Workflow.Stages) != nil {
				t.Fatal("accepted invalid stage graph")
			}
		}
	})
}
