package synth

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/loader"
	"repro/internal/schema"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Jobs: 20, FailureRate: 0.2, MaxRetries: 2}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i].Format() != b.Events[i].Format() {
			t.Fatalf("event %d differs:\n%s\n%s", i, a.Events[i].Format(), b.Events[i].Format())
		}
	}
	c := Generate(Config{Seed: 8, Jobs: 20, FailureRate: 0.2, MaxRetries: 2})
	if len(c.Events) == len(a.Events) {
		same := true
		for i := range c.Events {
			if c.Events[i].Format() != a.Events[i].Format() {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGeneratedEventsScheduleValid(t *testing.T) {
	v, err := schema.NewValidator()
	if err != nil {
		t.Fatal(err)
	}
	v.Strict = true
	tr := Generate(Config{Seed: 3, Jobs: 15, FailureRate: 0.3, MaxRetries: 1, TasksPerJob: 2, Width: 5})
	for i, ev := range tr.Events {
		if err := v.Validate(ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	// Timestamps must be non-decreasing after the generator's sort.
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].TS.Before(tr.Events[i-1].TS) {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestGeneratedTraceLoads(t *testing.T) {
	tr := Generate(Config{Seed: 1, Jobs: 25, TasksPerJob: 3, FailureRate: 0.1, MaxRetries: 2, Width: 5})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	a := archive.NewInMemory()
	l, _ := loader.New(a, loader.Options{Validate: true})
	stats, err := l.LoadReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != uint64(len(tr.Events)) {
		t.Fatalf("loaded %d of %d", stats.Loaded, len(tr.Events))
	}
	if n, _ := a.Store().Count(archive.TJob); n != 25 {
		t.Errorf("jobs = %d", n)
	}
	if n, _ := a.Store().Count(archive.TTask); n != 75 {
		t.Errorf("tasks = %d, want 75 (3 per job)", n)
	}
	nInst, _ := a.Store().Count(archive.TJobInstance)
	if nInst != 25+tr.TotalRetries+tr.FailedJobs*0 {
		// every retry adds an instance; failed jobs with exhausted
		// retries already counted their instances
		t.Logf("instances=%d retries=%d failed=%d", nInst, tr.TotalRetries, tr.FailedJobs)
	}
	if nInst < 25 {
		t.Errorf("instances = %d < jobs", nInst)
	}
}

func TestSubWorkflowsShareHostsAndLink(t *testing.T) {
	tr := Generate(Config{Seed: 5, Jobs: 32, SubWorkflows: 4, Hosts: 2, SlotsPerHost: 2})
	if len(tr.SubUUIDs) != 4 {
		t.Fatalf("sub uuids = %d", len(tr.SubUUIDs))
	}
	a := archive.NewInMemory()
	l, _ := loader.New(a, loader.Options{Validate: true})
	var buf bytes.Buffer
	_, _ = tr.WriteTo(&buf)
	if _, err := l.LoadReader(&buf); err != nil {
		t.Fatal(err)
	}
	if n, _ := a.Store().Count(archive.TWorkflow); n != 5 {
		t.Fatalf("workflows = %d, want 5 (root+4)", n)
	}
	// All 32 exec jobs live in the sub-workflows; the root holds 4
	// submission jobs.
	if n, _ := a.Store().Count(archive.TJob); n != 36 {
		t.Fatalf("jobs = %d, want 36", n)
	}
}

func TestHostSlowdownStretchesRuntimes(t *testing.T) {
	fast := Generate(Config{Seed: 2, Jobs: 40, Hosts: 4, SlotsPerHost: 1})
	slow := Generate(Config{Seed: 2, Jobs: 40, Hosts: 4, SlotsPerHost: 1,
		HostSlowdown: map[int]float64{0: 5.0}})
	meanDur := func(tr *Trace, host string) (float64, int) {
		var sum float64
		var n int
		for _, ev := range tr.Events {
			if ev.Type == schema.InvEnd && ev.Get(schema.AttrHostname) == host {
				d, _ := ev.Float(schema.AttrDur)
				sum += d
				n++
			}
		}
		if n == 0 {
			return 0, 0
		}
		return sum / float64(n), n
	}
	fm, fn := meanDur(fast, "worker1")
	sm, sn := meanDur(slow, "worker1")
	if fn == 0 || sn == 0 {
		t.Fatalf("no invocations on worker1: %d %d", fn, sn)
	}
	if sm < 2*fm {
		t.Fatalf("slowdown not visible: fast mean %.1f, slow mean %.1f", fm, sm)
	}
}

func TestFailureInjectionProducesFailures(t *testing.T) {
	tr := Generate(Config{Seed: 11, Jobs: 100, FailureRate: 0.5, MaxRetries: 0})
	if tr.FailedJobs == 0 {
		t.Fatal("50% failure rate produced no failed jobs")
	}
	if tr.FailedJobs > 80 {
		t.Fatalf("failed jobs = %d, implausibly high for rate 0.5", tr.FailedJobs)
	}
	failEvents := 0
	for _, ev := range tr.Events {
		if ev.Type == schema.MainEnd {
			if code, _ := ev.Int(schema.AttrExitcode); code != 0 {
				failEvents++
			}
		}
	}
	if failEvents != tr.FailedJobs {
		t.Fatalf("main.end failures %d != FailedJobs %d", failEvents, tr.FailedJobs)
	}
}

func TestRetriesRecorded(t *testing.T) {
	tr := Generate(Config{Seed: 4, Jobs: 60, FailureRate: 0.4, MaxRetries: 3})
	if tr.TotalRetries == 0 {
		t.Fatal("no retries generated at 40% failure rate")
	}
	// Retried jobs must have multiple job_inst.id values.
	maxSeq := map[string]int64{}
	for _, ev := range tr.Events {
		if ev.Type == schema.SubmitStart {
			seq, _ := ev.Int(schema.AttrJobInstID)
			job := ev.Get(schema.AttrJobID)
			if seq > maxSeq[job] {
				maxSeq[job] = seq
			}
		}
	}
	multi := 0
	for _, s := range maxSeq {
		if s > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no job has a second instance despite retries")
	}
}

func TestMakespanReflectsContention(t *testing.T) {
	// Same work on fewer slots must take longer.
	wide := Generate(Config{Seed: 9, Jobs: 40, Hosts: 8, SlotsPerHost: 4})
	narrow := Generate(Config{Seed: 9, Jobs: 40, Hosts: 1, SlotsPerHost: 1})
	if narrow.MakespanSeconds < 2*wide.MakespanSeconds {
		t.Fatalf("contention invisible: narrow %.0fs vs wide %.0fs",
			narrow.MakespanSeconds, wide.MakespanSeconds)
	}
}

func TestWriteToText(t *testing.T) {
	tr := Generate(Config{Seed: 1, Jobs: 2})
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != len(tr.Events) {
		t.Fatalf("wrote %d, want %d", n, len(tr.Events))
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(tr.Events) {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "ts=") {
			t.Fatalf("bad line %q", l)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	tr := Generate(Config{Seed: 1})
	if len(tr.Events) == 0 {
		t.Fatal("empty trace from defaults")
	}
	if tr.RootUUID == "" || len(tr.Hostnames) != 4 {
		t.Fatalf("defaults not applied: %+v", tr)
	}
	if !tr.Events[0].TS.Equal(time.Date(2012, 3, 13, 12, 0, 0, 0, time.UTC)) {
		t.Fatalf("default start = %v", tr.Events[0].TS)
	}
}
