// Package synth generates synthetic workflow-engine traces: complete,
// schema-valid Stampede BP event streams for workflows of parameterized
// size, shape, failure rate and host behaviour.
//
// The paper's loader-scaling claims rest on production workflows
// (CyberShake, O(10^6) tasks) that are not available here; per the
// reproduction plan, this synthesizer is the substitute. It simulates a
// FIFO list-scheduler over a pool of hosts with bounded slots, so queue
// delays, host imbalance and retry behaviour emerge from the same
// generating process the real systems have, not from sampled constants.
package synth

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/bp"
	"repro/internal/schema"
	"repro/internal/uuid"
)

// JobType describes one class of jobs in the synthetic workflow.
type JobType struct {
	Name        string  // type_desc and transformation prefix
	MeanSeconds float64 // mean runtime
	StddevPct   float64 // runtime stddev as a fraction of the mean
	Weight      int     // relative share of jobs of this type
}

// Config parameterizes a synthetic trace.
type Config struct {
	Seed  int64
	Label string
	Start time.Time

	Jobs  int // number of executable jobs
	Width int // jobs per DAG level (levels = ceil(Jobs/Width)); 0 = no edges

	JobTypes []JobType // defaults to one "compute" type of 60s ± 20%

	TasksPerJob int // abstract tasks clustered per job (>=1); 1 = unclustered

	Hosts        int // execution hosts; default 4
	SlotsPerHost int // concurrent jobs per host; default 2

	QueueDelayMean float64 // extra per-job scheduling latency, seconds

	FailureRate float64 // probability an instance fails with exit code 1
	MaxRetries  int     // retries per job before giving up

	// HostSlowdown maps host index -> runtime multiplier, for injecting
	// the stragglers the anomaly-detection experiment must find.
	HostSlowdown map[int]float64

	// SubWorkflows splits jobs into this many sub-workflows under a root
	// workflow, as the DART meta-workflow does. 0 or 1 = single flat
	// workflow.
	SubWorkflows int

	// Stages declares an explicit stage DAG instead of the layered Width
	// topology: each stage runs Jobs jobs of the given runtime class, and
	// a stage's jobs become ready only when the parent-stage jobs they
	// have edges to have finished — the generated schedule is causally
	// valid by construction, not just by slot contention. When set, Jobs,
	// Width and JobTypes are ignored. Callers must check ValidateStages
	// first: Generate assumes an acyclic, resolvable stage graph.
	Stages []StageSpec
}

// StageSpec is one stage of an explicit workflow topology (the motel-synth
// style declarative shape: a named operation class with duration jitter
// and fan-out edges to downstream stages).
type StageSpec struct {
	Name        string   // stage name; job type and transformation prefix
	Jobs        int      // jobs in this stage (>=1)
	MeanSeconds float64  // mean runtime of a stage job
	StddevPct   float64  // runtime stddev as a fraction of the mean
	After       []string // names of parent stages this one depends on
}

// ValidateStages rejects stage graphs Generate cannot schedule: empty or
// duplicate names, non-positive job counts, negative or non-finite
// runtimes, references to unknown stages, and dependency cycles.
func ValidateStages(stages []StageSpec) error {
	if len(stages) == 0 {
		return nil
	}
	idx := make(map[string]int, len(stages))
	for i, s := range stages {
		if s.Name == "" {
			return fmt.Errorf("synth: stage %d has no name", i)
		}
		if _, dup := idx[s.Name]; dup {
			return fmt.Errorf("synth: duplicate stage name %q", s.Name)
		}
		if s.Jobs < 1 {
			return fmt.Errorf("synth: stage %q has %d jobs; need >= 1", s.Name, s.Jobs)
		}
		if math.IsNaN(s.MeanSeconds) || math.IsInf(s.MeanSeconds, 0) || s.MeanSeconds < 0 {
			return fmt.Errorf("synth: stage %q mean_seconds %v is not a finite non-negative number", s.Name, s.MeanSeconds)
		}
		if math.IsNaN(s.StddevPct) || math.IsInf(s.StddevPct, 0) || s.StddevPct < 0 {
			return fmt.Errorf("synth: stage %q stddev_pct %v is not a finite non-negative number", s.Name, s.StddevPct)
		}
		idx[s.Name] = i
	}
	for _, s := range stages {
		for _, dep := range s.After {
			if _, ok := idx[dep]; !ok {
				return fmt.Errorf("synth: stage %q depends on unknown stage %q", s.Name, dep)
			}
		}
	}
	if _, ok := topoStages(stages); !ok {
		return fmt.Errorf("synth: stage graph has a dependency cycle")
	}
	return nil
}

// topoStages returns the stage indices in a dependency-respecting order
// (Kahn's algorithm, declaration order among ready stages so the result
// is deterministic). ok is false when the graph has a cycle.
func topoStages(stages []StageSpec) (order []int, ok bool) {
	idx := make(map[string]int, len(stages))
	for i, s := range stages {
		idx[s.Name] = i
	}
	indeg := make([]int, len(stages))
	children := make([][]int, len(stages)) // parent index -> dependent stage indices
	for i, s := range stages {
		for _, dep := range s.After {
			if j, known := idx[dep]; known {
				indeg[i]++
				children[j] = append(children[j], i)
			}
		}
	}
	ready := make([]int, 0, len(stages))
	for i := range stages {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		order = append(order, i)
		for _, k := range children[i] {
			if indeg[k]--; indeg[k] == 0 {
				ready = append(ready, k)
			}
		}
	}
	return order, len(order) == len(stages)
}

func (c *Config) fill() {
	if c.Start.IsZero() {
		c.Start = time.Date(2012, 3, 13, 12, 0, 0, 0, time.UTC)
	}
	if c.Label == "" {
		c.Label = "synthetic"
	}
	if c.Jobs == 0 {
		c.Jobs = 10
	}
	if len(c.JobTypes) == 0 {
		c.JobTypes = []JobType{{Name: "compute", MeanSeconds: 60, StddevPct: 0.2, Weight: 1}}
	}
	if c.TasksPerJob < 1 {
		c.TasksPerJob = 1
	}
	if c.Hosts == 0 {
		c.Hosts = 4
	}
	if c.SlotsPerHost == 0 {
		c.SlotsPerHost = 2
	}
}

// Trace is a generated event stream plus the identifiers experiments need
// to locate things in the archive afterwards.
type Trace struct {
	Events    []*bp.Event
	RootUUID  string
	SubUUIDs  []string
	Hostnames []string
	// FailedJobs counts jobs whose final instance failed.
	FailedJobs int
	// TotalRetries counts extra instances beyond the first per job.
	TotalRetries int
	// MakespanSeconds is the simulated wall time of the root workflow.
	MakespanSeconds float64
}

// WriteTo renders the trace as BP lines.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bp.NewWriter(w)
	for _, ev := range t.Events {
		if err := bw.Write(ev); err != nil {
			return 0, err
		}
	}
	return int64(bw.Count()), bw.Flush()
}

// Generate builds the trace. The same Config (including Seed) always
// produces the identical event stream.
func Generate(cfg Config) *Trace {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{}

	hostNames := make([]string, cfg.Hosts)
	for i := range hostNames {
		hostNames[i] = fmt.Sprintf("worker%d", i+1)
	}
	tr.Hostnames = hostNames

	rootUUID := uuid.NewV5(uuid.NamespaceStampede, fmt.Sprintf("%s-%d-root", cfg.Label, cfg.Seed)).String()
	tr.RootUUID = rootUUID

	nSub := cfg.SubWorkflows
	if nSub <= 1 {
		g := newGen(&cfg, rng, tr)
		g.emitWorkflow(rootUUID, rootUUID, "", cfg.Jobs, 0, newSlots(hostNames, cfg.SlotsPerHost))
		tr.MakespanSeconds = g.makespan
		sortEvents(tr.Events)
		return tr
	}

	// Meta-workflow: root has one submission job per sub-workflow; each
	// sub-workflow carries its share of the exec jobs.
	g := newGen(&cfg, rng, tr)
	per := cfg.Jobs / nSub
	extra := cfg.Jobs % nSub
	subJobs := make([]int, nSub)
	for i := range subJobs {
		subJobs[i] = per
		if i < extra {
			subJobs[i]++
		}
	}
	g.emitMetaRoot(rootUUID, subJobs, cfg.Start, hostNames)
	tr.MakespanSeconds = g.makespan
	sortEvents(tr.Events)
	return tr
}

func sortEvents(evs []*bp.Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS.Before(evs[j].TS) })
}

// gen carries generation state across one trace.
type gen struct {
	cfg *Config
	rng *rand.Rand
	tr  *Trace
	// makespan tracks the latest event time relative to Start, seconds.
	makespan float64
}

func newGen(cfg *Config, rng *rand.Rand, tr *Trace) *gen {
	return &gen{cfg: cfg, rng: rng, tr: tr}
}

func (g *gen) emit(ev *bp.Event) {
	g.tr.Events = append(g.tr.Events, ev)
	if d := ev.TS.Sub(g.cfg.Start).Seconds(); d > g.makespan {
		g.makespan = d
	}
}

func (g *gen) pickType(i int) JobType {
	total := 0
	for _, jt := range g.cfg.JobTypes {
		total += jt.Weight
	}
	k := i % total
	for _, jt := range g.cfg.JobTypes {
		if k < jt.Weight {
			return jt
		}
		k -= jt.Weight
	}
	return g.cfg.JobTypes[0]
}

func (g *gen) runtime(jt JobType, host int) float64 {
	d := jt.MeanSeconds * (1 + jt.StddevPct*g.rng.NormFloat64())
	if d < 0.1 {
		d = 0.1
	}
	if m, ok := g.cfg.HostSlowdown[host]; ok {
		d *= m
	}
	return d
}

// slotState tracks when each host slot frees up (seconds from Start).
type slotState struct {
	free  [][]float64 // per host, per slot
	hosts []string
}

func newSlots(hosts []string, perHost int) *slotState {
	s := &slotState{hosts: hosts}
	s.free = make([][]float64, len(hosts))
	for i := range s.free {
		s.free[i] = make([]float64, perHost)
	}
	return s
}

// acquire finds the earliest-available slot at or after ready and returns
// the host index, slot index and start time. The caller books the slot
// with book once it knows the placement-dependent duration.
func (s *slotState) acquire(ready float64) (host, slot int, start float64) {
	best := s.free[0][0]
	for h := range s.free {
		for sl := range s.free[h] {
			if s.free[h][sl] < best {
				best, host, slot = s.free[h][sl], h, sl
			}
		}
	}
	start = best
	if ready > start {
		start = ready
	}
	return host, slot, start
}

// book marks the slot busy until end.
func (s *slotState) book(host, slot int, end float64) { s.free[host][slot] = end }

// emitWorkflow generates one complete workflow of n exec jobs. startSec
// is the workflow's start offset in seconds from cfg.Start; slots is the
// (possibly shared) host pool, whose free times are also global seconds,
// so concurrent sub-workflows contend for the same hosts.
// It returns the workflow's end offset in global seconds.
func (g *gen) emitWorkflow(wfUUID, rootUUID, parentUUID string, n int, startSec float64, slots *slotState) float64 {
	cfg := g.cfg
	hosts := slots.hosts
	at := func(sec float64) time.Time {
		return cfg.Start.Add(time.Duration(sec * float64(time.Second)))
	}
	base := func(typ string, sec float64) *bp.Event {
		return bp.New(typ, at(startSec+sec)).Set(schema.AttrXwfID, wfUUID).Set(schema.AttrLevel, bp.LevelInfo)
	}

	plan := base(schema.WfPlan, 0).
		Set("submit.hostname", "submit-host").
		Set("dax.label", cfg.Label).
		Set(schema.AttrRootXwf, rootUUID)
	if parentUUID != "" {
		plan.Set(schema.AttrParentXwf, parentUUID)
	}
	g.emit(plan)
	g.emit(base(schema.StaticStart, 0))

	type jobSpec struct {
		id      string
		jt      JobType
		tasks   []string
		parents []int // direct parent job indices (stage topology only)
	}
	// emitStruct writes the static description (task.info, job.info and the
	// task→job maps) for job i of type jt and returns its spec.
	emitStruct := func(i int, jt JobType) jobSpec {
		js := jobSpec{id: fmt.Sprintf("%s_j%04d", jt.Name, i), jt: jt}
		for t := 0; t < cfg.TasksPerJob; t++ {
			taskID := fmt.Sprintf("t_%s_%04d_%d", jt.Name, i, t)
			js.tasks = append(js.tasks, taskID)
			g.emit(base(schema.TaskInfo, 0).
				Set(schema.AttrTaskID, taskID).
				Set("type_desc", jt.Name).
				Set(schema.AttrTransform, jt.Name))
		}
		g.emit(base(schema.JobInfo, 0).
			Set(schema.AttrJobID, js.id).
			Set("type_desc", jt.Name).
			SetInt("clustered", boolInt(cfg.TasksPerJob > 1)).
			SetInt("max_retries", int64(cfg.MaxRetries)).
			Set(schema.AttrExecutable, "/opt/"+jt.Name).
			SetInt("task_count", int64(cfg.TasksPerJob)))
		for _, taskID := range js.tasks {
			g.emit(base(schema.MapTaskJob, 0).Set(schema.AttrTaskID, taskID).Set(schema.AttrJobID, js.id))
		}
		return js
	}
	var jobs []jobSpec
	if len(cfg.Stages) > 0 {
		// Explicit stage DAG: jobs are built in topological stage order and
		// each child records its parent jobs, so the execution loop below
		// can hold it back until they finish.
		order, _ := topoStages(cfg.Stages)
		stageJobs := make([][]int, len(cfg.Stages))
		for _, si := range order {
			st := cfg.Stages[si]
			jt := JobType{Name: st.Name, MeanSeconds: st.MeanSeconds, StddevPct: st.StddevPct, Weight: 1}
			for j := 0; j < st.Jobs; j++ {
				i := len(jobs)
				js := emitStruct(i, jt)
				for _, dep := range st.After {
					for pi, ps := range cfg.Stages {
						if ps.Name != dep {
							continue
						}
						parents := stageJobs[pi]
						if len(parents) == 0 {
							break
						}
						p := parents[j%len(parents)]
						js.parents = append(js.parents, p)
						g.emit(base(schema.JobEdge, 0).
							Set("parent.job.id", jobs[p].id).
							Set("child.job.id", js.id))
						g.emit(base(schema.TaskEdge, 0).
							Set("parent.task.id", jobs[p].tasks[0]).
							Set("child.task.id", js.tasks[0]))
						break
					}
				}
				stageJobs[si] = append(stageJobs[si], i)
				jobs = append(jobs, js)
			}
		}
	} else {
		jobs = make([]jobSpec, n)
		for i := 0; i < n; i++ {
			jobs[i] = emitStruct(i, g.pickType(i))
		}
		// DAG edges: layered by Width.
		if cfg.Width > 0 {
			for i := cfg.Width; i < n; i++ {
				parent := jobs[i-cfg.Width]
				g.emit(base(schema.JobEdge, 0).
					Set("parent.job.id", parent.id).
					Set("child.job.id", jobs[i].id))
				g.emit(base(schema.TaskEdge, 0).
					Set("parent.task.id", parent.tasks[0]).
					Set("child.task.id", jobs[i].tasks[0]))
			}
		}
	}
	g.emit(base(schema.StaticEnd, 0))
	g.emit(base(schema.XwfStart, 0.5).SetInt("restart_count", 0))

	// Execution events are timestamped in global seconds because the slot
	// pool (possibly shared with sibling sub-workflows) is global.
	gbase := func(typ string, gsec float64) *bp.Event {
		return bp.New(typ, at(gsec)).Set(schema.AttrXwfID, wfUUID).Set(schema.AttrLevel, bp.LevelInfo)
	}
	wfEnd := startSec + 0.5
	anyFailed := false
	jobEnds := make([]float64, len(jobs))
	for jidx, js := range jobs {
		// ready time: with an explicit stage DAG a job waits for its parent
		// jobs to finish (causally valid schedules by construction); on the
		// layered Width path parents are approximated via slot contention,
		// which dominates.
		ready := startSec + 0.5
		for _, p := range js.parents {
			if jobEnds[p] > ready {
				ready = jobEnds[p]
			}
		}
		done := false
		var seq int64
		for attempt := 0; attempt <= cfg.MaxRetries && !done; attempt++ {
			seq++
			fails := g.rng.Float64() < cfg.FailureRate
			queueDelay := cfg.QueueDelayMean * (0.5 + g.rng.Float64())
			host, slot, execStart := slots.acquire(ready + queueDelay)
			dur := g.runtime(js.jt, host) // runtime depends on placement
			endT := execStart + dur
			slots.book(host, slot, endT)

			ji := func(typ string, gsec float64) *bp.Event {
				return gbase(typ, gsec).Set(schema.AttrJobID, js.id).SetInt(schema.AttrJobInstID, seq)
			}
			g.emit(ji(schema.SubmitStart, ready))
			g.emit(ji(schema.SubmitEnd, ready+0.01).SetInt(schema.AttrStatus, 0))
			g.emit(ji(schema.MainStart, execStart))
			g.emit(ji(schema.HostInfo, execStart).
				Set(schema.AttrSite, "cloud").
				Set(schema.AttrHostname, hosts[host]).
				Set("ip", fmt.Sprintf("10.0.0.%d", host+1)))
			exit := int64(0)
			if fails {
				exit = 1
			}
			for ti, taskID := range js.tasks {
				share := dur / float64(len(js.tasks))
				invStart := execStart + float64(ti)*share
				g.emit(ji(schema.InvStart, invStart).SetInt(schema.AttrInvID, int64(ti+1)))
				g.emit(ji(schema.InvEnd, invStart+share).
					SetInt(schema.AttrInvID, int64(ti+1)).
					Set(schema.AttrStartTime, at(invStart).Format(bp.TimeFormat)).
					SetFloat(schema.AttrDur, round2(share)).
					SetFloat(schema.AttrRemoteCPU, round2(share*0.97)).
					SetInt(schema.AttrExitcode, exit).
					Set(schema.AttrTransform, js.jt.Name).
					Set(schema.AttrTaskID, taskID).
					Set(schema.AttrHostname, hosts[host]).
					Set(schema.AttrSite, "cloud"))
			}
			if fails {
				// The paper's monitord announces each failed invocation with
				// a dedicated error event before the terminal main.end; the
				// archive materialises it as a MAIN_ERROR jobstate.
				g.emit(ji(schema.MainError, endT).
					Set(schema.AttrLevel, bp.LevelError).
					SetInt(schema.AttrStatus, -1).
					SetInt(schema.AttrExitcode, exit).
					Set(schema.AttrStderrText, "synthetic failure injected"))
			}
			mainEnd := ji(schema.MainEnd, endT).
				SetInt(schema.AttrStatus, int64(exitStatus(exit))).
				SetInt(schema.AttrExitcode, exit).
				Set(schema.AttrSite, "cloud")
			if exit != 0 {
				mainEnd.Set(schema.AttrStderrText, "synthetic failure injected")
			}
			g.emit(mainEnd)
			jobEnds[jidx] = endT
			if endT > wfEnd {
				wfEnd = endT
			}
			if fails {
				if attempt == cfg.MaxRetries {
					anyFailed = true
					g.tr.FailedJobs++
				} else {
					g.tr.TotalRetries++
					ready = endT
				}
			} else {
				done = true
			}
		}
	}
	status := int64(0)
	if anyFailed {
		status = -1
	}
	g.emit(gbase(schema.XwfEnd, wfEnd+0.5).SetInt("restart_count", 0).SetInt(schema.AttrStatus, status))
	return wfEnd + 0.5
}

// emitMetaRoot generates a root workflow whose jobs each spawn one
// sub-workflow, then generates the sub-workflows themselves. Hosts are
// shared across sub-workflows through one slot pool, matching how the
// DART bundles competed for the TrianaCloud nodes.
func (g *gen) emitMetaRoot(rootUUID string, subJobs []int, start time.Time, hosts []string) {
	cfg := g.cfg
	at := func(sec float64) time.Time { return start.Add(time.Duration(sec * float64(time.Second))) }
	base := func(typ string, sec float64) *bp.Event {
		return bp.New(typ, at(sec)).Set(schema.AttrXwfID, rootUUID).Set(schema.AttrLevel, bp.LevelInfo)
	}
	slots := newSlots(hosts, cfg.SlotsPerHost)
	g.emit(base(schema.WfPlan, 0).
		Set("submit.hostname", "desktop").
		Set("dax.label", cfg.Label+"-meta").
		Set(schema.AttrRootXwf, rootUUID))
	g.emit(base(schema.StaticStart, 0))
	subUUIDs := make([]string, len(subJobs))
	for i := range subJobs {
		jobID := fmt.Sprintf("subwf_j%03d", i)
		subUUIDs[i] = uuid.NewV5(uuid.NamespaceStampede,
			fmt.Sprintf("%s-%d-sub%d", cfg.Label, cfg.Seed, i)).String()
		g.emit(base(schema.JobInfo, 0).
			Set(schema.AttrJobID, jobID).
			Set("type_desc", "sub-workflow").
			SetInt("clustered", 0).
			SetInt("max_retries", 0).
			Set(schema.AttrExecutable, "triana-bundle").
			SetInt("task_count", 0))
	}
	g.emit(base(schema.StaticEnd, 0))
	g.emit(base(schema.XwfStart, 0.2).SetInt("restart_count", 0))
	g.tr.SubUUIDs = subUUIDs

	wfEnd := 0.2
	for i, n := range subJobs {
		jobID := fmt.Sprintf("subwf_j%03d", i)
		ji := func(typ string, sec float64) *bp.Event {
			return base(typ, sec).Set(schema.AttrJobID, jobID).SetInt(schema.AttrJobInstID, 1)
		}
		subStart := 0.3 + 0.05*float64(i) // staggered HTTP POSTs
		g.emit(ji(schema.SubmitStart, subStart))
		g.emit(ji(schema.SubmitEnd, subStart+0.02).SetInt(schema.AttrStatus, 0))
		g.emit(base(schema.MapSubwfJob, subStart+0.02).
			Set(schema.AttrSubwfID, subUUIDs[i]).
			Set(schema.AttrJobID, jobID).
			SetInt(schema.AttrJobInstID, 1))
		g.emit(ji(schema.MainStart, subStart+0.05))

		subEnd := g.emitWorkflow(subUUIDs[i], rootUUID, rootUUID, n, subStart+0.1, slots)

		g.emit(ji(schema.MainEnd, subEnd+0.05).
			SetInt(schema.AttrStatus, 0).
			SetInt(schema.AttrExitcode, 0).
			Set(schema.AttrSite, "cloud"))
		if subEnd+0.05 > wfEnd {
			wfEnd = subEnd + 0.05
		}
	}
	g.emit(base(schema.XwfEnd, wfEnd+0.2).SetInt("restart_count", 0).SetInt(schema.AttrStatus, 0))
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func exitStatus(exit int64) int {
	if exit == 0 {
		return 0
	}
	return -1
}

func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}
