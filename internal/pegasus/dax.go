// Package pegasus implements a Pegasus-style workflow management system:
// abstract workflows (DAX), a planner that maps them onto executable
// workflows for a target site — clustering tasks into jobs (the
// many-to-many task-to-job cardinality of the Stampede model) and adding
// auxiliary data-staging jobs that exist only in the executable workflow —
// a DAGMan-like executor that runs jobs on the condor substrate with
// retries, and a monitord normalizer that emits the Stampede event stream.
//
// Together with the triana package this demonstrates the paper's central
// claim: two very different engines feeding one monitoring data model.
package pegasus

import (
	"fmt"
)

// AbsTask is one task of the abstract workflow: a logical transformation
// plus a workload model (how long its invocation takes on the target
// resources).
type AbsTask struct {
	ID             string
	Transformation string
	Args           string
	// RuntimeSeconds is the modeled invocation duration.
	RuntimeSeconds float64
	// SubDAX makes this a sub-workflow task: instead of an executable,
	// the planner produces a dax job that recursively plans and runs the
	// nested abstract workflow — Pegasus's layered hierarchical
	// workflows, which the analyzer drills down through.
	SubDAX *DAX
}

// DAX is the abstract workflow: tasks and dependencies, independent of
// any resources. It must be a directed acyclic graph.
type DAX struct {
	Label string
	Tasks []AbsTask
	// Edges are (parent, child) task-ID pairs.
	Edges [][2]string
}

// Validate checks structural invariants: unique non-empty task IDs, edges
// referencing known tasks, and acyclicity.
func (d *DAX) Validate() error {
	if d.Label == "" {
		return fmt.Errorf("pegasus: DAX without a label")
	}
	if len(d.Tasks) == 0 {
		return fmt.Errorf("pegasus: DAX %q has no tasks", d.Label)
	}
	ids := make(map[string]bool, len(d.Tasks))
	for _, t := range d.Tasks {
		if t.ID == "" {
			return fmt.Errorf("pegasus: DAX %q has a task with empty id", d.Label)
		}
		if ids[t.ID] {
			return fmt.Errorf("pegasus: DAX %q has duplicate task %q", d.Label, t.ID)
		}
		if t.Transformation == "" && t.SubDAX == nil {
			return fmt.Errorf("pegasus: task %q has no transformation", t.ID)
		}
		if t.SubDAX != nil {
			if err := t.SubDAX.Validate(); err != nil {
				return fmt.Errorf("pegasus: sub-workflow of task %q: %w", t.ID, err)
			}
		}
		ids[t.ID] = true
	}
	adj := make(map[string][]string)
	indeg := make(map[string]int)
	for _, e := range d.Edges {
		if !ids[e[0]] || !ids[e[1]] {
			return fmt.Errorf("pegasus: edge %v references unknown task", e)
		}
		if e[0] == e[1] {
			return fmt.Errorf("pegasus: self-edge on %q", e[0])
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		indeg[e[1]]++
	}
	// Kahn's algorithm detects cycles.
	var queue []string
	for _, t := range d.Tasks {
		if indeg[t.ID] == 0 {
			queue = append(queue, t.ID)
		}
	}
	seen := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		seen++
		for _, c := range adj[n] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if seen != len(d.Tasks) {
		return fmt.Errorf("pegasus: DAX %q contains a cycle", d.Label)
	}
	return nil
}

// Levels returns each task's depth: the longest path from any root, so
// horizontal clustering groups tasks that can run concurrently.
func (d *DAX) Levels() map[string]int {
	parents := make(map[string][]string)
	children := make(map[string][]string)
	indeg := make(map[string]int)
	for _, e := range d.Edges {
		parents[e[1]] = append(parents[e[1]], e[0])
		children[e[0]] = append(children[e[0]], e[1])
		indeg[e[1]]++
	}
	level := make(map[string]int, len(d.Tasks))
	var queue []string
	for _, t := range d.Tasks {
		if indeg[t.ID] == 0 {
			queue = append(queue, t.ID)
			level[t.ID] = 0
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range children[n] {
			if level[n]+1 > level[c] {
				level[c] = level[n] + 1
			}
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	return level
}

// Diamond returns the canonical four-task diamond workflow (preprocess,
// two parallel analyses, combine) used across examples and the
// cross-engine experiment.
func Diamond(runtime float64) *DAX {
	return &DAX{
		Label: "diamond",
		Tasks: []AbsTask{
			{ID: "preprocess", Transformation: "preprocess", RuntimeSeconds: runtime / 2},
			{ID: "findrange_a", Transformation: "findrange", RuntimeSeconds: runtime},
			{ID: "findrange_b", Transformation: "findrange", RuntimeSeconds: runtime},
			{ID: "analyze", Transformation: "analyze", RuntimeSeconds: runtime / 2},
		},
		Edges: [][2]string{
			{"preprocess", "findrange_a"},
			{"preprocess", "findrange_b"},
			{"findrange_a", "analyze"},
			{"findrange_b", "analyze"},
		},
	}
}

// Sweep returns a wide fan-out DAX: a prepare task, n parallel workers of
// the given transformation, and a collect task — the montage/CyberShake
// shape at adjustable scale.
func Sweep(label string, n int, workerRuntime float64) *DAX {
	d := &DAX{Label: label}
	d.Tasks = append(d.Tasks, AbsTask{ID: "prepare", Transformation: "prepare", RuntimeSeconds: 2})
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("work_%04d", i)
		d.Tasks = append(d.Tasks, AbsTask{ID: id, Transformation: "work", RuntimeSeconds: workerRuntime})
		d.Edges = append(d.Edges, [2]string{"prepare", id}, [2]string{id, "collect"})
	}
	d.Tasks = append(d.Tasks, AbsTask{ID: "collect", Transformation: "collect", RuntimeSeconds: 2})
	return d
}
