package pegasus

import (
	"context"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"time"

	"repro/internal/condor"
	"repro/internal/uuid"
	"repro/internal/wfclock"
)

// ExecConfig configures one executable-workflow run.
type ExecConfig struct {
	// Pool is the scheduling substrate jobs are submitted to.
	Pool *condor.Pool
	// Clock drives timestamps; use the same clock as the pool.
	Clock wfclock.Clock
	// Appender receives the normalized Stampede events via monitord.
	Appender Appender
	// SubmitHost names the machine running the engine.
	SubmitHost string
	// FailureRate injects per-instance failures (exit code 1) with this
	// probability; retries then exercise the job-instance model.
	FailureRate float64
	// Seed makes failure injection reproducible.
	Seed int64
}

// RunReport summarises one workflow execution. Sub-workflow runs spawned
// by dax jobs report through SubReports; RunRescue fills Restarts.
type RunReport struct {
	WfUUID     string
	Succeeded  int
	Failed     int
	Retries    int
	Restarts   int
	Status     int64 // 0 ok, -1 when any job exhausted its retries
	Elapsed    time.Duration
	SubReports []*RunReport
}

// Engine is the DAGMan-like executor: it releases jobs as their parents
// succeed, submits them to the pool, evaluates exit codes, and retries
// failed instances up to each job's MaxRetries.
type Engine struct {
	cfg ExecConfig
}

// NewEngine builds an executor.
func NewEngine(cfg ExecConfig) (*Engine, error) {
	if cfg.Pool == nil {
		return nil, fmt.Errorf("pegasus: engine needs a condor pool")
	}
	if cfg.Clock == nil {
		cfg.Clock = wfclock.Real
	}
	if cfg.SubmitHost == "" {
		cfg.SubmitHost = "submit-host"
	}
	return &Engine{cfg: cfg}, nil
}

// Run executes the workflow to completion and returns the report. Events
// flow to the appender throughout, so a concurrent loader sees the run
// live. Dax jobs (sub-workflows) are planned with the parent's
// configuration and executed recursively.
func (e *Engine) Run(ctx context.Context, ew *EW) (*RunReport, error) {
	return e.run(ctx, ew, uuid.New().String(), "", "", newRestartState(), 0)
}

// RunRescue executes the workflow and, when jobs remain failed, re-runs
// it as DAGMan rescue DAGs do: the same workflow UUID with an incremented
// restart_count, re-emitting the static description (the archive must
// deduplicate it) and re-submitting only the jobs that have not yet
// succeeded. It stops after maxRestarts rescue attempts or on success.
func (e *Engine) RunRescue(ctx context.Context, ew *EW, maxRestarts int) (*RunReport, error) {
	wfUUID := uuid.New().String()
	rs := newRestartState()
	var report *RunReport
	for restart := 0; ; restart++ {
		var err error
		report, err = e.run(ctx, ew, wfUUID, "", "", rs, int64(restart))
		if err != nil {
			return report, err
		}
		report.Restarts = restart
		if report.Status == 0 || restart >= maxRestarts {
			return report, nil
		}
	}
}

// restartState carries what rescue runs need to remember between
// attempts: which jobs already succeeded and how many instances each job
// has consumed (submit sequence numbers keep increasing across restarts).
type restartState struct {
	mu        sync.Mutex
	completed map[string]bool
	attempts  map[string]int64
}

func newRestartState() *restartState {
	return &restartState{completed: map[string]bool{}, attempts: map[string]int64{}}
}

func (rs *restartState) isDone(job string) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.completed[job]
}

func (rs *restartState) markDone(job string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.completed[job] = true
}

func (rs *restartState) nextSeq(job string) int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.attempts[job]++
	return rs.attempts[job]
}

func (e *Engine) run(ctx context.Context, ew *EW, wfUUID, parentUUID, rootUUID string, rs *restartState, restart int64) (*RunReport, error) {
	clk := e.cfg.Clock
	var mon *Monitord
	if e.cfg.Appender != nil {
		mon = NewMonitord(e.cfg.Appender, wfUUID, e.cfg.SubmitHost)
		mon.ParentUUID = parentUUID
		mon.RootUUID = rootUUID
		mon.EmitPlan(ew, clk.Now())
		mon.XwfStart(clk.Now(), restart)
	}
	start := clk.Now()
	// Failure decisions are a pure function of (seed, workflow, job,
	// attempt): runs are reproducible regardless of goroutine scheduling,
	// and a rescue re-attempt of the same job gets a fresh draw.
	chance := func(job string, seq int64) float64 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d/%s/%s/%d", e.cfg.Seed, ew.Label, job, seq)
		return float64(h.Sum64()%1_000_000) / 1_000_000
	}

	// Dependency bookkeeping.
	indeg := make(map[string]int, len(ew.Jobs))
	children := make(map[string][]string)
	for _, j := range ew.Jobs {
		indeg[j.ID] = 0
	}
	for _, edge := range ew.Edges {
		indeg[edge[1]]++
		children[edge[0]] = append(children[edge[0]], edge[1])
	}

	type outcome struct {
		job     *Job
		ok      bool
		retries int
		sub     *RunReport
	}
	results := make(chan outcome, len(ew.Jobs))
	root := rootUUID
	if root == "" {
		root = wfUUID
	}
	launch := func(j *Job) {
		go func() {
			if rs.isDone(j.ID) {
				// Rescue run: this job already succeeded in an earlier
				// attempt; release its children without re-running it.
				results <- outcome{job: j, ok: true}
				return
			}
			if j.SubDAX != nil {
				ok, retries, sub := e.runSubDAX(ctx, ew, j, wfUUID, root, mon, chance, rs)
				if ok {
					rs.markDone(j.ID)
				}
				results <- outcome{job: j, ok: ok, retries: retries, sub: sub}
				return
			}
			ok, retries, err := e.runJob(ctx, ew, j, wfUUID, mon, chance, rs)
			if err != nil {
				results <- outcome{job: j, ok: false, retries: retries}
				return
			}
			if ok {
				rs.markDone(j.ID)
			}
			results <- outcome{job: j, ok: ok, retries: retries}
		}()
	}

	pending := len(ew.Jobs)
	report := &RunReport{WfUUID: wfUUID}
	for _, j := range ew.Jobs {
		if indeg[j.ID] == 0 {
			launch(j)
		}
	}
	skipped := map[string]bool{}
	for pending > 0 {
		var res outcome
		select {
		case res = <-results:
		case <-ctx.Done():
			if mon != nil {
				mon.XwfEnd(clk.Now(), restart, -1)
			}
			return report, ctx.Err()
		}
		pending--
		report.Retries += res.retries
		if res.sub != nil {
			report.SubReports = append(report.SubReports, res.sub)
		}
		if res.ok {
			report.Succeeded++
			for _, c := range children[res.job.ID] {
				indeg[c]--
				if indeg[c] == 0 && !skipped[c] {
					launch(ew.Job(c))
				}
			}
		} else {
			report.Failed++
			// Descendants can never run; drop them from pending.
			var stack []string
			stack = append(stack, children[res.job.ID]...)
			for len(stack) > 0 {
				c := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if skipped[c] {
					continue
				}
				skipped[c] = true
				pending--
				stack = append(stack, children[c]...)
			}
		}
	}
	report.Elapsed = clk.Since(start)
	if report.Failed > 0 {
		report.Status = -1
	}
	if mon != nil {
		mon.XwfEnd(clk.Now(), restart, report.Status)
	}
	return report, nil
}

// runSubDAX executes a dax job: it plans the nested abstract workflow
// with the parent's configuration and runs it recursively, retrying the
// whole sub-workflow on failure as DAGMan retries subdax jobs. The child
// run's events land on the same appender; the parent emits the
// hierarchy-linking events and a summarising invocation record.
func (e *Engine) runSubDAX(ctx context.Context, ew *EW, j *Job, wfUUID, rootUUID string, mon *Monitord, chance func(string, int64) float64, rs *restartState) (bool, int, *RunReport) {
	clk := e.cfg.Clock
	retries := 0
	var lastReport *RunReport
	for attempt := 0; attempt <= j.MaxRetries; attempt++ {
		seq := rs.nextSeq(j.ID)
		childUUID := uuid.New().String()
		if mon != nil {
			mon.SubmitStart(j.ID, seq, clk.Now())
			mon.Submitted(j.ID, seq, clk.Now())
			mon.MapSubwfJob(j.ID, seq, childUUID, clk.Now())
			mon.Executing(j.ID, seq, clk.Now(), ew.Site, e.cfg.SubmitHost, "127.0.0.1")
		}
		childEW, err := Plan(j.SubDAX, ew.PlanCfg)
		if err != nil {
			if mon != nil {
				mon.Terminated(j.ID, seq, clk.Now(), ew.Site, 1, "planning failed: "+err.Error())
			}
			return false, retries, nil
		}
		start := clk.Now()
		report, err := e.run(ctx, childEW, childUUID, wfUUID, rootUUID, newRestartState(), 0)
		if err != nil {
			return false, retries, report
		}
		lastReport = report
		exit := int64(0)
		stderr := ""
		if report.Status != 0 {
			exit = 1
			stderr = fmt.Sprintf("sub-workflow %s failed (%d job failures)", childUUID, report.Failed)
		}
		if mon != nil {
			mon.Invocation(j.ID, seq, InvocationRecord{
				InvID:          1,
				TaskID:         j.TaskIDs[0],
				Transformation: j.Transformation,
				Executable:     j.Executable,
				Start:          start,
				DurSeconds:     clk.Since(start).Seconds(),
				Exit:           exit,
				Hostname:       e.cfg.SubmitHost,
				Site:           ew.Site,
			})
			mon.Terminated(j.ID, seq, clk.Now(), ew.Site, exit, stderr)
		}
		if exit == 0 {
			return true, retries, lastReport
		}
		if attempt < j.MaxRetries {
			retries++
		}
	}
	return false, retries, lastReport
}

// runJob drives one job through its retry loop. It returns whether the
// job eventually succeeded and how many retries it consumed.
func (e *Engine) runJob(ctx context.Context, ew *EW, j *Job, wfUUID string, mon *Monitord, chance func(string, int64) float64, rs *restartState) (bool, int, error) {
	clk := e.cfg.Clock
	retries := 0
	for attempt := 0; attempt <= j.MaxRetries; attempt++ {
		seq := rs.nextSeq(j.ID)
		fails := chance(j.ID, seq) < e.cfg.FailureRate
		exit := 0
		if fails {
			exit = 1
		}
		if mon != nil {
			mon.SubmitStart(j.ID, seq, clk.Now())
		}
		done, err := e.cfg.Pool.Submit(condor.JobSpec{
			ID:         fmt.Sprintf("%s+%d", j.ID, seq),
			Executable: j.Executable,
			Args:       j.Args,
			Site:       ew.Site,
			Duration:   wfclock.DurationSeconds(j.RuntimeSeconds),
			ExitCode:   exit,
		})
		if err != nil {
			return false, retries, err
		}
		if mon != nil {
			mon.Submitted(j.ID, seq, clk.Now())
		}
		var term condor.Event
		select {
		case term = <-done:
		case <-ctx.Done():
			return false, retries, ctx.Err()
		}
		execStart := term.Time.Add(-wfclock.DurationSeconds(j.RuntimeSeconds))
		if mon != nil {
			mon.Executing(j.ID, seq, execStart, term.Site, term.Hostname, term.IP)
			e.emitInvocations(ew, j, seq, execStart, term, mon)
			stderr := ""
			if exit != 0 {
				stderr = fmt.Sprintf("transformation %s failed on %s (injected fault)", j.Transformation, term.Hostname)
			}
			mon.Terminated(j.ID, seq, term.Time, term.Site, int64(term.ExitCode), stderr)
		}
		if term.ExitCode == 0 {
			return true, retries, nil
		}
		if attempt < j.MaxRetries {
			retries++
		}
	}
	return false, retries, nil
}

// emitInvocations renders the kickstart records of one job instance: one
// invocation per abstract task (sequential shares of the job window for
// clustered jobs), or a single auxiliary invocation for staging jobs.
func (e *Engine) emitInvocations(ew *EW, j *Job, seq int64, execStart time.Time, term condor.Event, mon *Monitord) {
	if len(j.TaskIDs) == 0 {
		mon.Invocation(j.ID, seq, InvocationRecord{
			InvID:          1,
			Transformation: j.Transformation,
			Executable:     j.Executable,
			Start:          execStart,
			DurSeconds:     j.RuntimeSeconds,
			CPUSeconds:     j.RuntimeSeconds * 0.9,
			Exit:           int64(term.ExitCode),
			Hostname:       term.Hostname,
			Site:           term.Site,
		})
		return
	}
	taskRuntime := map[string]float64{}
	for _, t := range ew.DAX.Tasks {
		taskRuntime[t.ID] = t.RuntimeSeconds
	}
	cursor := execStart
	for i, tid := range j.TaskIDs {
		dur := taskRuntime[tid]
		exit := int64(0)
		// A failing clustered job fails at its last member invocation.
		if term.ExitCode != 0 && i == len(j.TaskIDs)-1 {
			exit = int64(term.ExitCode)
		}
		mon.Invocation(j.ID, seq, InvocationRecord{
			InvID:          int64(i + 1),
			TaskID:         tid,
			Transformation: j.Transformation,
			Executable:     j.Executable,
			Args:           j.Args,
			Start:          cursor,
			DurSeconds:     dur,
			CPUSeconds:     dur * 0.93,
			Exit:           exit,
			Hostname:       term.Hostname,
			Site:           term.Site,
		})
		cursor = cursor.Add(wfclock.DurationSeconds(dur))
	}
}

// DagmanLogLine renders a condor event in classic DAGMan log style; the
// cross-checking tests use it to assert the normalizer agrees with the
// raw engine log.
func DagmanLogLine(ev condor.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s) %s", ev.Time.UTC().Format("01/02/06 15:04:05"), ev.JobID, ev.Type)
	if ev.Type == condor.EventExecute {
		fmt.Fprintf(&b, " host=%s", ev.Hostname)
	}
	if ev.Type == condor.EventTerminate {
		fmt.Fprintf(&b, " exit=%d", ev.ExitCode)
	}
	return b.String()
}
