package pegasus

import (
	"fmt"
	"sort"
)

// Job is one node of the executable workflow. A compute job carries one
// or more abstract tasks (clustering makes the mapping many-to-many);
// auxiliary jobs (stage-in, stage-out) carry none and exist only in the
// executable workflow, exactly the case the Stampede model calls out.
type Job struct {
	ID             string
	TypeDesc       string // "compute", "stage-in", "stage-out"
	Transformation string
	Executable     string
	Args           string
	TaskIDs        []string
	Clustered      bool
	// SubDAX marks a dax job: the executor recursively plans and runs
	// this nested workflow instead of submitting to the pool.
	SubDAX *DAX
	// RuntimeSeconds is the modeled execution time: the sum of member
	// task runtimes for clustered jobs.
	RuntimeSeconds float64
	MaxRetries     int
}

// EW is the executable workflow produced by the planner.
type EW struct {
	Label string
	DAX   *DAX
	Site  string
	Jobs  []*Job
	// Edges are (parent, child) job-ID pairs.
	Edges [][2]string
	// PlanCfg records the configuration this workflow was planned with;
	// sub-workflows are planned with the same configuration.
	PlanCfg PlanConfig

	byID map[string]*Job
}

// Job returns a job by ID, nil when absent.
func (ew *EW) Job(id string) *Job { return ew.byID[id] }

// PlanConfig drives the mapping from abstract to executable workflow.
type PlanConfig struct {
	// Site is the target execution site.
	Site string
	// ClusterSize groups up to this many same-transformation tasks of the
	// same workflow level into one clustered job; 0 or 1 disables
	// clustering.
	ClusterSize int
	// StageIn/StageOut add the auxiliary data-staging jobs.
	StageIn  bool
	StageOut bool
	// MaxRetries is recorded on every job for the DAGMan retry logic.
	MaxRetries int
	// AuxRuntimeSeconds models the staging jobs' duration (default 1s).
	AuxRuntimeSeconds float64
}

// Plan maps the abstract workflow onto an executable workflow:
// horizontal clustering by (level, transformation), then auxiliary
// stage-in/stage-out jobs fencing the compute jobs.
func Plan(dax *DAX, cfg PlanConfig) (*EW, error) {
	if err := dax.Validate(); err != nil {
		return nil, err
	}
	if cfg.Site == "" {
		return nil, fmt.Errorf("pegasus: plan needs a target site")
	}
	if cfg.AuxRuntimeSeconds == 0 {
		cfg.AuxRuntimeSeconds = 1
	}
	ew := &EW{Label: dax.Label, DAX: dax, Site: cfg.Site, PlanCfg: cfg, byID: map[string]*Job{}}

	taskByID := make(map[string]AbsTask, len(dax.Tasks))
	for _, t := range dax.Tasks {
		taskByID[t.ID] = t
	}
	levels := dax.Levels()

	// Group tasks into clusters.
	type groupKey struct {
		level int
		xform string
	}
	groups := map[groupKey][]string{}
	var keys []groupKey
	var subdaxTasks []AbsTask
	for _, t := range dax.Tasks {
		if t.SubDAX != nil {
			subdaxTasks = append(subdaxTasks, t)
			continue
		}
		k := groupKey{levels[t.ID], t.Transformation}
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], t.ID)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].level != keys[j].level {
			return keys[i].level < keys[j].level
		}
		return keys[i].xform < keys[j].xform
	})

	jobOfTask := map[string]*Job{}
	addJob := func(j *Job) {
		ew.Jobs = append(ew.Jobs, j)
		ew.byID[j.ID] = j
	}
	for _, k := range keys {
		tasks := groups[k]
		size := cfg.ClusterSize
		if size <= 1 {
			size = 1
		}
		for start := 0; start < len(tasks); start += size {
			end := start + size
			if end > len(tasks) {
				end = len(tasks)
			}
			chunk := tasks[start:end]
			var job *Job
			if len(chunk) == 1 {
				t := taskByID[chunk[0]]
				job = &Job{
					ID:             t.ID,
					TypeDesc:       "compute",
					Transformation: t.Transformation,
					Executable:     "/opt/" + t.Transformation,
					Args:           t.Args,
					TaskIDs:        []string{t.ID},
					RuntimeSeconds: t.RuntimeSeconds,
					MaxRetries:     cfg.MaxRetries,
				}
			} else {
				job = &Job{
					ID:             fmt.Sprintf("merge_%s_l%d_%d", k.xform, k.level, start/size),
					TypeDesc:       "compute",
					Transformation: k.xform,
					Executable:     "/opt/pegasus-cluster",
					TaskIDs:        append([]string(nil), chunk...),
					Clustered:      len(chunk) > 1,
					MaxRetries:     cfg.MaxRetries,
				}
				for _, tid := range chunk {
					job.RuntimeSeconds += taskByID[tid].RuntimeSeconds
				}
			}
			addJob(job)
			for _, tid := range chunk {
				jobOfTask[tid] = job
			}
		}
	}

	// Sub-workflow tasks become dedicated dax jobs, never clustered.
	for _, t := range subdaxTasks {
		job := &Job{
			ID:             t.ID,
			TypeDesc:       "dax",
			Transformation: "pegasus::subdax",
			Executable:     "/opt/pegasus-plan",
			TaskIDs:        []string{t.ID},
			SubDAX:         t.SubDAX,
			MaxRetries:     cfg.MaxRetries,
		}
		addJob(job)
		jobOfTask[t.ID] = job
	}

	// Job edges derived from task edges, deduplicated, intra-job edges
	// dropped (clustering subsumes them).
	seen := map[[2]string]bool{}
	for _, e := range dax.Edges {
		pj, cj := jobOfTask[e[0]], jobOfTask[e[1]]
		if pj == cj {
			continue
		}
		k := [2]string{pj.ID, cj.ID}
		if !seen[k] {
			seen[k] = true
			ew.Edges = append(ew.Edges, k)
		}
	}

	// Auxiliary staging jobs fence the computation.
	indeg := map[string]int{}
	outdeg := map[string]int{}
	for _, e := range ew.Edges {
		outdeg[e[0]]++
		indeg[e[1]]++
	}
	computeJobs := append([]*Job(nil), ew.Jobs...)
	if cfg.StageIn {
		si := &Job{
			ID: "stage_in_0", TypeDesc: "stage-in", Transformation: "pegasus::transfer",
			Executable: "/opt/pegasus-transfer", RuntimeSeconds: cfg.AuxRuntimeSeconds,
			MaxRetries: cfg.MaxRetries,
		}
		addJob(si)
		for _, j := range computeJobs {
			if indeg[j.ID] == 0 {
				ew.Edges = append(ew.Edges, [2]string{si.ID, j.ID})
			}
		}
	}
	if cfg.StageOut {
		so := &Job{
			ID: "stage_out_0", TypeDesc: "stage-out", Transformation: "pegasus::transfer",
			Executable: "/opt/pegasus-transfer", RuntimeSeconds: cfg.AuxRuntimeSeconds,
			MaxRetries: cfg.MaxRetries,
		}
		addJob(so)
		for _, j := range computeJobs {
			if outdeg[j.ID] == 0 {
				ew.Edges = append(ew.Edges, [2]string{j.ID, so.ID})
			}
		}
	}
	return ew, nil
}
