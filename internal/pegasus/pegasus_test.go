package pegasus

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/bp"
	"repro/internal/condor"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/triana"
	"repro/internal/wfclock"
)

var epoch = time.Date(2012, 3, 13, 12, 0, 0, 0, time.UTC)

func TestDAXValidate(t *testing.T) {
	if err := Diamond(10).Validate(); err != nil {
		t.Fatalf("diamond invalid: %v", err)
	}
	bad := []*DAX{
		{Label: ""},
		{Label: "x"},
		{Label: "x", Tasks: []AbsTask{{ID: "", Transformation: "t"}}},
		{Label: "x", Tasks: []AbsTask{{ID: "a", Transformation: "t"}, {ID: "a", Transformation: "t"}}},
		{Label: "x", Tasks: []AbsTask{{ID: "a"}}},
		{Label: "x", Tasks: []AbsTask{{ID: "a", Transformation: "t"}}, Edges: [][2]string{{"a", "ghost"}}},
		{Label: "x", Tasks: []AbsTask{{ID: "a", Transformation: "t"}}, Edges: [][2]string{{"a", "a"}}},
		{Label: "x", Tasks: []AbsTask{
			{ID: "a", Transformation: "t"}, {ID: "b", Transformation: "t"},
		}, Edges: [][2]string{{"a", "b"}, {"b", "a"}}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDAXLevels(t *testing.T) {
	lv := Diamond(10).Levels()
	want := map[string]int{"preprocess": 0, "findrange_a": 1, "findrange_b": 1, "analyze": 2}
	for k, v := range want {
		if lv[k] != v {
			t.Errorf("level[%s] = %d, want %d", k, lv[k], v)
		}
	}
}

func TestPlanUnclustered(t *testing.T) {
	ew, err := Plan(Diamond(10), PlanConfig{Site: "cluster", StageIn: true, StageOut: true, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ew.Jobs) != 6 { // 4 compute + 2 staging
		t.Fatalf("jobs = %d", len(ew.Jobs))
	}
	si := ew.Job("stage_in_0")
	if si == nil || si.TypeDesc != "stage-in" || len(si.TaskIDs) != 0 {
		t.Fatalf("stage_in = %+v", si)
	}
	// stage_in must precede preprocess; analyze must precede stage_out.
	hasEdge := func(p, c string) bool {
		for _, e := range ew.Edges {
			if e[0] == p && e[1] == c {
				return true
			}
		}
		return false
	}
	if !hasEdge("stage_in_0", "preprocess") || !hasEdge("analyze", "stage_out_0") {
		t.Fatalf("staging edges missing: %v", ew.Edges)
	}
	if hasEdge("stage_in_0", "analyze") {
		t.Fatal("stage_in wired to non-root job")
	}
}

func TestPlanClustering(t *testing.T) {
	dax := Sweep("sweep", 10, 5)
	ew, err := Plan(dax, PlanConfig{Site: "cluster", ClusterSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 10 workers cluster into ceil(10/4)=3 jobs; prepare and collect stay
	// single (cluster of 1 at their levels).
	var clustered, taskTotal int
	for _, j := range ew.Jobs {
		taskTotal += len(j.TaskIDs)
		if j.Clustered {
			clustered++
			if j.RuntimeSeconds < 5 {
				t.Errorf("clustered runtime = %v", j.RuntimeSeconds)
			}
		}
	}
	if clustered != 3 {
		t.Fatalf("clustered jobs = %d, want 3", clustered)
	}
	if taskTotal != 12 {
		t.Fatalf("tasks mapped = %d, want 12", taskTotal)
	}
	// The clustered job of 4 has runtime 4*5=20.
	for _, j := range ew.Jobs {
		if j.Clustered && len(j.TaskIDs) == 4 && j.RuntimeSeconds != 20 {
			t.Errorf("cluster of 4 runtime = %v, want 20", j.RuntimeSeconds)
		}
	}
	// No duplicate or intra-cluster edges.
	seen := map[[2]string]bool{}
	for _, e := range ew.Edges {
		if e[0] == e[1] {
			t.Fatalf("self edge %v", e)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := Plan(Diamond(1), PlanConfig{}); err == nil {
		t.Error("plan without site accepted")
	}
	if _, err := Plan(&DAX{Label: "bad"}, PlanConfig{Site: "s"}); err == nil {
		t.Error("invalid dax accepted")
	}
}

// newTestEngine builds a pool + engine pair over a scaled clock with a
// collecting appender. The caller closes the pool.
func newTestEngine(t *testing.T, failureRate float64, seed int64) (*triana.CollectAppender, *condor.Pool, *Engine) {
	t.Helper()
	clk := wfclock.NewScaled(epoch, 2000)
	app := &triana.CollectAppender{}
	pool, err := condor.NewPool(clk, 2*time.Second, []condor.Site{{
		Name: "cluster",
		Hosts: []condor.HostSpec{
			{Hostname: "node1", IP: "10.0.0.1", Slots: 2},
			{Hostname: "node2", IP: "10.0.0.2", Slots: 2},
		},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ExecConfig{
		Pool: pool, Clock: clk, Appender: app,
		SubmitHost: "submit.example.org", FailureRate: failureRate, Seed: seed,
	})
	if err != nil {
		pool.Close()
		t.Fatal(err)
	}
	return app, pool, eng
}

// runWorkflow executes an EW on a fresh pool and returns collected events
// plus the report.
func runWorkflow(t *testing.T, ew *EW, failureRate float64, seed int64) (*triana.CollectAppender, *RunReport) {
	t.Helper()
	app, pool, eng := newTestEngine(t, failureRate, seed)
	defer pool.Close()
	report, err := eng.Run(context.Background(), ew)
	if err != nil {
		t.Fatal(err)
	}
	return app, report
}

func loadInto(t *testing.T, app *triana.CollectAppender) *query.QI {
	t.Helper()
	a := archive.NewInMemory()
	for _, ev := range app.Events() {
		parsed, err := bp.Parse(ev.Format())
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Apply(parsed); err != nil {
			t.Fatalf("apply %s: %v", ev.Type, err)
		}
	}
	return query.New(a)
}

func TestDiamondRunEndToEnd(t *testing.T) {
	ew, err := Plan(Diamond(20), PlanConfig{Site: "cluster", StageIn: true, StageOut: true, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	app, report := runWorkflow(t, ew, 0, 1)
	if report.Failed != 0 || report.Succeeded != 6 || report.Status != 0 {
		t.Fatalf("report = %+v", report)
	}
	// Validate all events against the schema.
	v, err := schema.NewValidator()
	if err != nil {
		t.Fatal(err)
	}
	v.Strict = true
	for i, ev := range app.Events() {
		if err := v.Validate(ev); err != nil {
			t.Errorf("event %d: %v", i, err)
		}
	}
	q := loadInto(t, app)
	wf, _ := q.WorkflowByUUID(report.WfUUID)
	if wf == nil {
		t.Fatal("workflow missing")
	}
	summary, _ := stats.Compute(q, wf.ID, true)
	if summary.Tasks.Total != 4 || summary.Tasks.Succeeded != 4 {
		t.Errorf("tasks = %+v", summary.Tasks)
	}
	if summary.Jobs.Total != 6 || summary.Jobs.Succeeded != 6 {
		t.Errorf("jobs = %+v", summary.Jobs)
	}
	// Dependencies respected: analyze starts after both findranges end.
	invs, _ := q.Invocations(wf.ID)
	var analyzeStart time.Time
	var findEnd time.Time
	for _, inv := range invs {
		switch inv.AbsTaskID {
		case "analyze":
			analyzeStart = inv.StartTime
		case "findrange_a", "findrange_b":
			end := inv.StartTime.Add(wfclock.DurationSeconds(inv.RemoteDuration))
			if end.After(findEnd) {
				findEnd = end
			}
		}
	}
	if analyzeStart.Before(findEnd.Add(-time.Second)) {
		t.Errorf("analyze started %v before findrange finished %v", analyzeStart, findEnd)
	}
	// Queue time visible from the negotiation delay.
	jobs, _ := q.Jobs(wf.ID)
	for _, j := range jobs {
		insts, _ := q.JobInstances(j.ID)
		d, _ := q.InstanceDelays(insts[0].ID)
		if d.QueueTime < time.Second {
			t.Errorf("job %s queue time %v, want >= negotiation delay", j.ExecJobID, d.QueueTime)
		}
	}
}

func TestClusteredRunManyToManyMapping(t *testing.T) {
	dax := Sweep("sweep", 8, 5)
	ew, err := Plan(dax, PlanConfig{Site: "cluster", ClusterSize: 4, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	app, report := runWorkflow(t, ew, 0, 2)
	if report.Failed != 0 {
		t.Fatalf("report = %+v", report)
	}
	q := loadInto(t, app)
	wf, _ := q.WorkflowByUUID(report.WfUUID)
	summary, _ := stats.Compute(q, wf.ID, true)
	// 10 abstract tasks (prepare + 8 work + collect) in 4 jobs.
	if summary.Tasks.Total != 10 || summary.Tasks.Succeeded != 10 {
		t.Errorf("tasks = %+v", summary.Tasks)
	}
	if summary.Jobs.Total != 4 {
		t.Errorf("jobs = %+v", summary.Jobs)
	}
	// Each clustered instance carries one invocation per member task.
	jobs, _ := q.Jobs(wf.ID)
	for _, j := range jobs {
		if !j.Clustered {
			continue
		}
		insts, _ := q.JobInstances(j.ID)
		invs, _ := q.InvocationsForInstance(insts[0].ID)
		if len(invs) != int(j.TaskCount) {
			t.Errorf("job %s: %d invocations for %d tasks", j.ExecJobID, len(invs), j.TaskCount)
		}
	}
	// Tasks link back to their clustered job.
	tasks, _ := q.Tasks(wf.ID)
	for _, task := range tasks {
		if task.JobID == 0 {
			t.Errorf("task %s unmapped", task.AbsTaskID)
		}
	}
}

func TestRetriesProduceMultipleInstances(t *testing.T) {
	ew, err := Plan(Sweep("retry", 12, 3), PlanConfig{Site: "cluster", MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	app, report := runWorkflow(t, ew, 0.35, 7)
	if report.Retries == 0 {
		t.Skip("no retries injected with this seed")
	}
	q := loadInto(t, app)
	wf, _ := q.WorkflowByUUID(report.WfUUID)
	summary, _ := stats.Compute(q, wf.ID, true)
	if summary.Jobs.Retries != report.Retries {
		t.Errorf("archive retries = %d, engine %d", summary.Jobs.Retries, report.Retries)
	}
	if summary.Jobs.Succeeded != report.Succeeded || summary.Jobs.Failed != report.Failed {
		t.Errorf("summary %+v vs report %+v", summary.Jobs, report)
	}
}

func TestFailurePropagationSkipsDescendants(t *testing.T) {
	// Force guaranteed failure: rate 1.0 and no retries. Everything
	// downstream of the first failure must be Incomplete in the archive.
	ew, err := Plan(Diamond(5), PlanConfig{Site: "cluster", MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	app, report := runWorkflow(t, ew, 1.0, 3)
	if report.Status != -1 || report.Failed == 0 {
		t.Fatalf("report = %+v", report)
	}
	q := loadInto(t, app)
	wf, _ := q.WorkflowByUUID(report.WfUUID)
	summary, _ := stats.Compute(q, wf.ID, true)
	if summary.Jobs.Failed != report.Failed {
		t.Errorf("failed: %d vs %d", summary.Jobs.Failed, report.Failed)
	}
	if summary.Jobs.Incomplete == 0 {
		t.Error("no incomplete jobs despite failure propagation")
	}
	states, _ := q.WorkflowStates(wf.ID)
	last := states[len(states)-1]
	if last.State != archive.WFStateTerminated || last.Status != -1 {
		t.Errorf("final wf state = %+v", last)
	}
}

func TestDagmanLogLine(t *testing.T) {
	ev := condor.Event{
		Type: condor.EventTerminate, JobID: "analyze+1",
		Time: epoch, ExitCode: 1, Hostname: "node1",
	}
	line := DagmanLogLine(ev)
	for _, want := range []string{"analyze+1", "JOB_TERMINATED", "exit=1"} {
		if !contains(line, want) {
			t.Errorf("log line %q missing %q", line, want)
		}
	}
	exec := DagmanLogLine(condor.Event{Type: condor.EventExecute, JobID: "j", Time: epoch, Hostname: "node2"})
	if !contains(exec, "host=node2") {
		t.Errorf("exec line %q", exec)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
