package pegasus

import (
	"context"
	"testing"

	"repro/internal/archive"
	"repro/internal/relstore"
	"repro/internal/triana"
)

func TestRunRescueEventuallySucceeds(t *testing.T) {
	// 60% per-instance failure rate and no per-job retries: the first run
	// almost certainly fails jobs; rescue runs must finish the rest while
	// skipping already-successful jobs.
	ew, err := Plan(Sweep("rescue", 10, 5), PlanConfig{Site: "cluster", MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	clkApp, report := runRescueWorkflow(t, ew, 0.6, 15, 20)
	if report.Status != 0 {
		t.Fatalf("workflow never recovered: %+v", report)
	}
	if report.Restarts == 0 {
		t.Skip("first run succeeded despite 60% failure rate")
	}

	q := loadInto(t, clkApp)
	wf, _ := q.WorkflowByUUID(report.WfUUID)
	if wf == nil {
		t.Fatal("workflow missing")
	}

	// One workflow row despite repeated plan/static emission.
	if n, _ := q.Workflows(); len(n) != 1 {
		t.Fatalf("workflows = %d, want 1 (restarts share the uuid)", len(n))
	}
	// Static description deduplicated: exactly 12 jobs, 12 tasks.
	jobs, _ := q.Jobs(wf.ID)
	if len(jobs) != 12 {
		t.Fatalf("jobs = %d, want 12", len(jobs))
	}
	tasks, _ := q.Tasks(wf.ID)
	if len(tasks) != 12 {
		t.Fatalf("tasks = %d, want 12", len(tasks))
	}
	// workflowstate carries one start/end pair per restart with the right
	// restart counts.
	states, _ := q.WorkflowStates(wf.ID)
	wantPairs := report.Restarts + 1
	var starts, ends int
	for _, s := range states {
		switch s.State {
		case archive.WFStateStarted:
			starts++
		case archive.WFStateTerminated:
			ends++
		}
	}
	if starts != wantPairs || ends != wantPairs {
		t.Errorf("state pairs = %d/%d, want %d", starts, ends, wantPairs)
	}
	// The final termination is a success.
	last := states[len(states)-1]
	if last.State != archive.WFStateTerminated || last.Status != 0 {
		t.Errorf("final state = %+v", last)
	}
	// Submit sequences increase across restarts: some job has an instance
	// with job_submit_seq > 1, and no job re-ran after succeeding (its
	// last instance has exit 0 and is unique in success).
	maxSeq := int64(0)
	for _, j := range jobs {
		insts, _ := q.JobInstances(j.ID)
		successes := 0
		for _, inst := range insts {
			if inst.SubmitSeq > maxSeq {
				maxSeq = inst.SubmitSeq
			}
			if inst.HasExitcode && inst.Exitcode == 0 {
				successes++
			}
		}
		if successes > 1 {
			t.Errorf("job %s succeeded %d times; rescue must not re-run finished jobs", j.ExecJobID, successes)
		}
	}
	if maxSeq < 2 {
		t.Errorf("max submit seq = %d; restarts did not continue the sequence", maxSeq)
	}
}

func TestRunRescueGivesUpAtCap(t *testing.T) {
	ew, err := Plan(Diamond(5), PlanConfig{Site: "cluster", MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	_, report := runRescueWorkflow(t, ew, 1.0, 2, 20)
	if report.Status == 0 {
		t.Fatal("always-failing workflow reported success")
	}
	if report.Restarts != 2 {
		t.Errorf("restarts = %d, want cap 2", report.Restarts)
	}
}

// runRescueWorkflow mirrors runWorkflow but drives RunRescue.
func runRescueWorkflow(t *testing.T, ew *EW, failureRate float64, maxRestarts int, seed int64) (*triana.CollectAppender, *RunReport) {
	t.Helper()
	app, pool, eng := newTestEngine(t, failureRate, seed)
	defer pool.Close()
	report, err := eng.RunRescue(context.Background(), ew, maxRestarts)
	if err != nil {
		t.Fatal(err)
	}
	return app, report
}

// Sanity: the relstore unique machinery the dedup relies on is what the
// archive actually uses (guards against schema drift).
func TestStaticDedupKeysExist(t *testing.T) {
	for _, ts := range archive.Schemas() {
		if ts.Name == archive.TTask || ts.Name == archive.TJob {
			if len(ts.Unique) == 0 {
				t.Errorf("table %s lost its unique constraint", ts.Name)
			}
		}
	}
	_ = relstore.TableSchema{}
}
