package pegasus

import (
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/stats"
)

// hierarchicalDAX builds a two-level workflow: a prepare task, two
// sub-workflow tasks each wrapping a diamond, and a collect task.
func hierarchicalDAX() *DAX {
	return &DAX{
		Label: "hierarchical",
		Tasks: []AbsTask{
			{ID: "prepare", Transformation: "prepare", RuntimeSeconds: 2},
			{ID: "subwf_a", SubDAX: Diamond(10)},
			{ID: "subwf_b", SubDAX: Diamond(10)},
			{ID: "collect", Transformation: "collect", RuntimeSeconds: 2},
		},
		Edges: [][2]string{
			{"prepare", "subwf_a"},
			{"prepare", "subwf_b"},
			{"subwf_a", "collect"},
			{"subwf_b", "collect"},
		},
	}
}

func TestSubDAXValidateAndPlan(t *testing.T) {
	dax := hierarchicalDAX()
	if err := dax.Validate(); err != nil {
		t.Fatal(err)
	}
	// A broken nested DAX must fail validation at the parent.
	bad := &DAX{Label: "p", Tasks: []AbsTask{{ID: "s", SubDAX: &DAX{Label: "child"}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty nested dax accepted")
	}

	ew, err := Plan(dax, PlanConfig{Site: "cluster", MaxRetries: 1, ClusterSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	var daxJobs int
	for _, j := range ew.Jobs {
		if j.SubDAX != nil {
			daxJobs++
			if j.TypeDesc != "dax" || j.Clustered {
				t.Errorf("dax job = %+v", j)
			}
		}
	}
	if daxJobs != 2 {
		t.Fatalf("dax jobs = %d", daxJobs)
	}
	// Edges must route through the dax jobs.
	found := false
	for _, e := range ew.Edges {
		if e[0] == "prepare" && e[1] == "subwf_a" {
			found = true
		}
	}
	if !found {
		t.Error("edge into dax job missing")
	}
}

func TestHierarchicalRunEndToEnd(t *testing.T) {
	ew, err := Plan(hierarchicalDAX(), PlanConfig{Site: "cluster", MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	app, report := runWorkflow(t, ew, 0, 1)
	if report.Status != 0 {
		t.Fatalf("report = %+v", report)
	}
	if len(report.SubReports) != 2 {
		t.Fatalf("sub reports = %d", len(report.SubReports))
	}
	for _, sr := range report.SubReports {
		if sr.Status != 0 || sr.Succeeded != 4 {
			t.Errorf("sub report = %+v", sr)
		}
	}

	q := loadInto(t, app)
	root, _ := q.WorkflowByUUID(report.WfUUID)
	if root == nil {
		t.Fatal("root missing")
	}
	subs, err := q.SubWorkflows(root.ID)
	if err != nil || len(subs) != 2 {
		t.Fatalf("archive subs = %d, %v", len(subs), err)
	}
	for _, sub := range subs {
		if sub.RootUUID != report.WfUUID {
			t.Errorf("sub root = %s", sub.RootUUID)
		}
	}
	summary, _ := stats.Compute(q, root.ID, true)
	// Root: 4 tasks; each diamond: 4 tasks => 12 total.
	if summary.Tasks.Total != 12 || summary.Tasks.Succeeded != 12 {
		t.Errorf("tasks = %+v", summary.Tasks)
	}
	if summary.SubWorkflows.Total != 2 || summary.SubWorkflows.Succeeded != 2 {
		t.Errorf("subwf = %+v", summary.SubWorkflows)
	}
	// Jobs: root 4 + 2 diamonds x 4 = 12.
	if summary.Jobs.Total != 12 {
		t.Errorf("jobs = %+v", summary.Jobs)
	}
}

func TestHierarchicalFailureDrillDown(t *testing.T) {
	// Every instance fails: the sub-workflows fail, the dax jobs fail,
	// and the analyzer must surface the failing branches.
	ew, err := Plan(hierarchicalDAX(), PlanConfig{Site: "cluster", MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	app, report := runWorkflow(t, ew, 1.0, 5)
	if report.Status != -1 {
		t.Fatalf("report = %+v", report)
	}
	q := loadInto(t, app)
	root, _ := q.WorkflowByUUID(report.WfUUID)
	rep, err := analyzer.Analyze(q, root.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() {
		t.Fatal("failing hierarchy reported healthy")
	}
	// prepare fails at the root level, so the dax jobs never launch and
	// there are no sub-workflows; rerun with only the root task healthy
	// is covered by the targeted case below.
	if rep.Failed == 0 {
		t.Error("no root-level failure")
	}
}

func TestHierarchicalSubFailureSurfaces(t *testing.T) {
	// A hierarchy whose only failure is inside a sub-workflow: the dax
	// job must fail, the analyzer must drill into the child.
	dax := &DAX{
		Label: "one-sub",
		Tasks: []AbsTask{
			{ID: "subwf", SubDAX: Diamond(5)},
		},
	}
	ew, err := Plan(dax, PlanConfig{Site: "cluster", MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	app, report := runWorkflow(t, ew, 1.0, 7)
	if report.Status != -1 {
		t.Fatalf("status = %d", report.Status)
	}
	q := loadInto(t, app)
	root, _ := q.WorkflowByUUID(report.WfUUID)
	rep, err := analyzer.Analyze(q, root.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 {
		t.Errorf("root failed jobs = %d (the dax job)", rep.Failed)
	}
	if len(rep.FailedJobs) != 1 || !strings.Contains(rep.FailedJobs[0].StderrText, "sub-workflow") {
		t.Errorf("dax job failure detail = %+v", rep.FailedJobs)
	}
	if len(rep.SubReports) != 1 {
		t.Fatalf("analyzer did not drill into the child: %d sub-reports", len(rep.SubReports))
	}
	child := rep.SubReports[0]
	if child.Failed == 0 {
		t.Error("child report shows no failures")
	}
	text := rep.Render()
	if !strings.Contains(text, child.Workflow.UUID) {
		t.Error("render does not include the child workflow")
	}
}
