package pegasus

import (
	"sync"
	"time"

	"repro/internal/bp"
	"repro/internal/schema"
)

// Appender receives normalized Stampede events. The triana package's
// appenders (file, bus, collect) satisfy it structurally, so both engines
// share delivery machinery without depending on each other.
type Appender interface {
	Append(ev *bp.Event) error
}

// Monitord is the Pegasus log normalizer: the component that, in the real
// system, tails the DAGMan and kickstart logs and emits NetLogger events
// conforming to the Stampede schema. Here the engine feeds it directly;
// the output is the same normalized BP stream.
type Monitord struct {
	appender Appender
	wfUUID   string
	hostname string
	// ParentUUID and RootUUID place this run in a workflow hierarchy;
	// both empty for a top-level run (root defaults to the run itself).
	ParentUUID string
	RootUUID   string

	mu       sync.Mutex
	appErr   error
	appended int
}

// NewMonitord builds a normalizer for one workflow run.
func NewMonitord(appender Appender, wfUUID, submitHost string) *Monitord {
	return &Monitord{appender: appender, wfUUID: wfUUID, hostname: submitHost}
}

// Err returns the first appender failure.
func (m *Monitord) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.appErr
}

// Appended counts delivered events.
func (m *Monitord) Appended() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.appended
}

func (m *Monitord) append(ev *bp.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.appender.Append(ev); err != nil {
		if m.appErr == nil {
			m.appErr = err
		}
		return
	}
	m.appended++
}

func (m *Monitord) ev(typ string, ts time.Time) *bp.Event {
	return bp.New(typ, ts).
		Set(schema.AttrLevel, bp.LevelInfo).
		Set(schema.AttrXwfID, m.wfUUID)
}

func (m *Monitord) ji(typ string, ts time.Time, jobID string, seq int64) *bp.Event {
	return m.ev(typ, ts).Set(schema.AttrJobID, jobID).SetInt(schema.AttrJobInstID, seq)
}

// EmitPlan records the planning event and the full static description of
// both workflows: the DAX's tasks and edges, the planned jobs and edges,
// and the many-to-many task-to-job mapping.
func (m *Monitord) EmitPlan(ew *EW, ts time.Time) {
	root := m.RootUUID
	if root == "" {
		root = m.wfUUID
	}
	plan := m.ev(schema.WfPlan, ts).
		Set("submit.hostname", m.hostname).
		Set("dax.label", ew.Label).
		Set("planner.version", "5.0-sim").
		Set(schema.AttrRootXwf, root)
	if m.ParentUUID != "" {
		plan.Set(schema.AttrParentXwf, m.ParentUUID)
	}
	m.append(plan)
	m.append(m.ev(schema.StaticStart, ts))
	for _, t := range ew.DAX.Tasks {
		m.append(m.ev(schema.TaskInfo, ts).
			Set(schema.AttrTaskID, t.ID).
			Set("type_desc", "compute").
			Set(schema.AttrTransform, t.Transformation).
			Set(schema.AttrArgv, t.Args))
	}
	for _, e := range ew.DAX.Edges {
		m.append(m.ev(schema.TaskEdge, ts).
			Set("parent.task.id", e[0]).
			Set("child.task.id", e[1]))
	}
	for _, j := range ew.Jobs {
		m.append(m.ev(schema.JobInfo, ts).
			Set(schema.AttrJobID, j.ID).
			Set("type_desc", j.TypeDesc).
			SetInt("clustered", boolToInt(j.Clustered)).
			SetInt("max_retries", int64(j.MaxRetries)).
			Set(schema.AttrExecutable, j.Executable).
			Set(schema.AttrArgv, j.Args).
			SetInt("task_count", int64(len(j.TaskIDs))))
	}
	for _, e := range ew.Edges {
		m.append(m.ev(schema.JobEdge, ts).
			Set("parent.job.id", e[0]).
			Set("child.job.id", e[1]))
	}
	for _, j := range ew.Jobs {
		for _, tid := range j.TaskIDs {
			m.append(m.ev(schema.MapTaskJob, ts).
				Set(schema.AttrTaskID, tid).
				Set(schema.AttrJobID, j.ID))
		}
	}
	m.append(m.ev(schema.StaticEnd, ts))
}

// XwfStart marks execution start.
func (m *Monitord) XwfStart(ts time.Time, restart int64) {
	m.append(m.ev(schema.XwfStart, ts).SetInt("restart_count", restart))
}

// XwfEnd marks execution end with the overall status (0 or -1).
func (m *Monitord) XwfEnd(ts time.Time, restart int64, status int64) {
	m.append(m.ev(schema.XwfEnd, ts).
		SetInt("restart_count", restart).
		SetInt(schema.AttrStatus, status))
}

// SubmitStart records a job instance being handed to the scheduler.
func (m *Monitord) SubmitStart(jobID string, seq int64, ts time.Time) {
	m.append(m.ji(schema.SubmitStart, ts, jobID, seq))
}

// Submitted records the scheduler acknowledging the submission.
func (m *Monitord) Submitted(jobID string, seq int64, ts time.Time) {
	m.append(m.ji(schema.SubmitEnd, ts, jobID, seq).SetInt(schema.AttrStatus, 0))
}

// Executing records the main job starting on a host.
func (m *Monitord) Executing(jobID string, seq int64, ts time.Time, site, hostname, ip string) {
	m.append(m.ji(schema.MainStart, ts, jobID, seq))
	m.append(m.ji(schema.HostInfo, ts, jobID, seq).
		Set(schema.AttrSite, site).
		Set(schema.AttrHostname, hostname).
		Set("ip", ip))
}

// InvocationRecord is one kickstart record for an invocation within a job
// instance.
type InvocationRecord struct {
	InvID          int64
	TaskID         string // empty for auxiliary jobs
	Transformation string
	Executable     string
	Args           string
	Start          time.Time
	DurSeconds     float64
	CPUSeconds     float64
	Exit           int64
	Hostname       string
	Site           string
}

// Invocation emits the inv.start/inv.end pair for one record.
func (m *Monitord) Invocation(jobID string, seq int64, rec InvocationRecord) {
	m.append(m.ji(schema.InvStart, rec.Start, jobID, seq).SetInt(schema.AttrInvID, rec.InvID))
	end := rec.Start.Add(time.Duration(rec.DurSeconds * float64(time.Second)))
	ev := m.ji(schema.InvEnd, end, jobID, seq).
		SetInt(schema.AttrInvID, rec.InvID).
		Set(schema.AttrStartTime, rec.Start.UTC().Format(bp.TimeFormat)).
		SetFloat(schema.AttrDur, rec.DurSeconds).
		SetInt(schema.AttrExitcode, rec.Exit).
		Set(schema.AttrTransform, rec.Transformation).
		Set(schema.AttrExecutable, rec.Executable).
		Set(schema.AttrHostname, rec.Hostname).
		Set(schema.AttrSite, rec.Site)
	if rec.CPUSeconds > 0 {
		ev.SetFloat(schema.AttrRemoteCPU, rec.CPUSeconds)
	}
	if rec.TaskID != "" {
		ev.Set(schema.AttrTaskID, rec.TaskID)
	}
	if rec.Args != "" {
		ev.Set(schema.AttrArgv, rec.Args)
	}
	m.append(ev)
}

// Terminated records the main job ending, then the DAGMan postscript
// evaluating its exit code.
func (m *Monitord) Terminated(jobID string, seq int64, ts time.Time, site string, exit int64, stderr string) {
	m.append(m.ji(schema.MainTerm, ts, jobID, seq).SetInt(schema.AttrStatus, statusOf(exit)))
	end := m.ji(schema.MainEnd, ts, jobID, seq).
		SetInt(schema.AttrStatus, statusOf(exit)).
		SetInt(schema.AttrExitcode, exit).
		Set(schema.AttrSite, site).
		SetInt("multiplier_factor", 1)
	if stderr != "" {
		end.Set(schema.AttrStderrText, stderr)
	}
	m.append(end)
	m.append(m.ji(schema.PostStart, ts, jobID, seq))
	m.append(m.ji(schema.PostEnd, ts, jobID, seq).
		SetInt(schema.AttrStatus, statusOf(exit)).
		SetInt(schema.AttrExitcode, exit))
}

// MapSubwfJob links a child run to the dax job instance that spawned it.
func (m *Monitord) MapSubwfJob(jobID string, seq int64, childUUID string, ts time.Time) {
	m.append(m.ev(schema.MapSubwfJob, ts).
		Set(schema.AttrSubwfID, childUUID).
		Set(schema.AttrJobID, jobID).
		SetInt(schema.AttrJobInstID, seq))
}

func statusOf(exit int64) int64 {
	if exit == 0 {
		return 0
	}
	return -1
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
