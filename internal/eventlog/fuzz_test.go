package eventlog

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzRecordRoundTrip exercises the frame codec both ways: a valid
// encode must decode back exactly, and no mutation — bit flips anywhere
// in the frame, truncation at any length, or arbitrary garbage bytes —
// may ever produce a wrong record or a panic. Corruption is detected
// (ErrCorrupt or errShort), never silently accepted with different
// content.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add([]byte("ts=2012-11-10T00:01:02.000003Z event=stampede.xwf.start level=Info"), uint64(1), uint16(0), byte(0))
	f.Add([]byte(""), uint64(7), uint16(3), byte(0xFF))
	f.Add([]byte("not a bp line at all \x00\x01\x02"), uint64(1<<40), uint16(12), byte(1))
	f.Add(bytes.Repeat([]byte{0xFF}, 64), uint64(0), uint16(40), byte(0x80))

	f.Fuzz(func(t *testing.T, payload []byte, seq uint64, pos uint16, flip byte) {
		if len(payload) > MaxRecordBytes {
			payload = payload[:MaxRecordBytes]
		}
		frame := appendRecord(nil, seq, payload)

		// Round trip: the frame decodes to exactly what was encoded.
		rec, n, err := decodeRecord(frame, MaxRecordBytes)
		if err != nil {
			t.Fatalf("valid frame failed to decode: %v", err)
		}
		if n != len(frame) || rec.Seq != seq || !bytes.Equal(rec.Line, payload) || rec.CID != contentID(payload) {
			t.Fatalf("round trip mismatch: n=%d seq=%d", n, rec.Seq)
		}
		// Trailing garbage after a frame must not change its decode.
		rec2, n2, err := decodeRecord(append(append([]byte(nil), frame...), 0xAB, 0xCD), MaxRecordBytes)
		if err != nil || n2 != len(frame) || !bytes.Equal(rec2.Line, payload) {
			t.Fatalf("frame with trailing bytes decoded differently: %v", err)
		}

		// Every truncation is detected as short or corrupt, never valid.
		cut := int(pos) % len(frame)
		if _, _, err := decodeRecord(frame[:cut], MaxRecordBytes); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", cut, len(frame))
		} else if !errors.Is(err, errShort) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation produced unexpected error: %v", err)
		}

		// A bit flip anywhere in the frame is detected — unless the flip
		// is a no-op (flip == 0) or lands in the length field in a way
		// that still frames a shorter-but-valid... it cannot: the CRC
		// covers the length, so any effective change breaks the checksum.
		if flip != 0 {
			mut := append([]byte(nil), frame...)
			mut[cut] ^= flip
			rec3, _, err := decodeRecord(mut, MaxRecordBytes)
			if err == nil {
				t.Fatalf("flipped byte %d (xor %#x) still decoded: seq=%d line=%q", cut, flip, rec3.Seq, rec3.Line)
			}
		}

		// Arbitrary garbage never panics (the payload doubles as garbage
		// input here; decode errors are fine, panics are the failure).
		decodeRecord(payload, MaxRecordBytes)
	})
}
