package eventlog

import (
	"path/filepath"
	"testing"

	"repro/internal/archive"
	"repro/internal/relstore"
)

// rebuildIntoHash replays [1, upTo) into arch and returns the snapshot
// hash, closing the archive.
func rebuildIntoHash(t *testing.T, lg *Log, upTo uint64, arch *archive.Archive) string {
	t.Helper()
	if _, err := RebuildInto(lg, upTo, arch); err != nil {
		t.Fatalf("rebuild upTo %d: %v", upTo, err)
	}
	defer arch.Close()
	sn := arch.Snapshot()
	defer sn.Close()
	h, err := sn.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestRebuildHashIndependentOfPartitionCount replays the same log prefix
// into 1-, 4- and 16-partition stores and requires identical snapshot
// hashes: partitioning must be invisible to the materialized state, not
// just to the query API. This is what lets a partitioned live store be
// audited against a single-partition rebuild.
func TestRebuildHashIndependentOfPartitionCount(t *testing.T) {
	lg := buildPropertyLog(t, t.TempDir())
	defer lg.Close()
	last := lg.NextSeq() - 1

	for _, upTo := range []uint64{last / 2, 0} {
		want := rebuildHash(t, lg, upTo) // archive.NewInMemory: 1 partition
		for _, parts := range []int{4, 16} {
			got := rebuildIntoHash(t, lg, upTo, archive.NewInMemoryN(parts))
			if got != want {
				t.Fatalf("upTo %d: %d-partition rebuild hash %s, want %s (1 partition)",
					upTo, parts, got, want)
			}
		}
	}
}

// TestDurablePartitionedRecoveryMatchesRebuild is the crash matrix at
// the system level: the log prefix [1, K) is materialized into a durable
// 4-partition store with checkpoints every 64 records per partition
// (several fire mid-load), the store is closed and recovered from
// checkpoint + WAL tail, and the recovered hash must equal a fresh
// in-memory Rebuild of the same prefix — recovery is bit-identical to
// replaying history, at every probe point.
func TestDurablePartitionedRecoveryMatchesRebuild(t *testing.T) {
	lg := buildPropertyLog(t, t.TempDir())
	defer lg.Close()
	last := lg.NextSeq() - 1

	for _, upTo := range []uint64{last / 3, last / 2, 0} {
		dir := filepath.Join(t.TempDir(), "store")
		arch, err := archive.OpenDir(dir, relstore.Options{Partitions: 4, CheckpointEvery: 64})
		if err != nil {
			t.Fatal(err)
		}
		live := rebuildIntoHash(t, lg, upTo, arch) // closes arch

		want := rebuildHash(t, lg, upTo)
		if live != want {
			t.Fatalf("upTo %d: durable partitioned load hash %s != in-memory rebuild %s", upTo, live, want)
		}

		reopened, err := archive.OpenDir(dir, relstore.Options{})
		if err != nil {
			t.Fatalf("upTo %d: recovery: %v", upTo, err)
		}
		info, err := relstore.InspectDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if info.Partitions != 4 {
			t.Fatalf("upTo %d: recovered partition map has %d partitions, want 4", upTo, info.Partitions)
		}
		ckpts := 0
		for _, pi := range info.Parts {
			if pi.CheckpointSeq > 0 {
				ckpts++
			}
		}
		if upTo == 0 && ckpts == 0 {
			t.Fatalf("full load took no checkpoints despite CheckpointEvery=64: %+v", info.Parts)
		}
		sn := reopened.Snapshot()
		got, err := sn.Hash()
		sn.Close()
		reopened.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("upTo %d: checkpoint+WAL-tail recovery hash %s, want %s", upTo, got, want)
		}
	}
}
