package eventlog

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/relstore"
	"repro/internal/synth"
)

// propertyScenario is a small mixed-engine stream with malformed lines
// and job failures injected, so the replayed log exercises the lenient
// paths, not just the happy one.
func propertyScenario() *synth.Scenario {
	return &synth.Scenario{
		Name: "replay-property",
		Seed: 77,
		Tenants: []synth.Tenant{
			{Name: "peg", Engine: "pegasus", Weight: 2, Workflow: synth.Shape{Jobs: 10, Width: 3, TasksPerJob: 2}},
			{Name: "dart", Engine: "dart", Weight: 1, Workflow: synth.Shape{Jobs: 6, SubWorkflows: 2}},
			{Name: "tri", Engine: "triana", Weight: 1},
		},
		Arrival: synth.Schedule{Phases: []synth.Phase{{Mode: "constant", Seconds: 1, Rate: 3000}}},
		Faults:  synth.Faults{MalformedRate: 0.02, JobFailureRate: 0.1, MaxRetries: 2},
	}
}

// buildPropertyLog appends a scenario stream to a fresh log (small
// segments, so the probes cross segment boundaries) and returns it open.
func buildPropertyLog(t *testing.T, dir string) *Log {
	t.Helper()
	sc := propertyScenario()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	stream, err := synth.BuildStream(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := Open(dir, Options{SegmentBytes: 128 << 10, FlushBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range stream.Lines {
		if stream.Lines[i].Drop {
			continue
		}
		if _, err := lg.Append(stream.Lines[i].Body); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Flush(); err != nil {
		t.Fatal(err)
	}
	if lg.Segments() < 2 {
		t.Fatalf("property log should span segments, got %d", lg.Segments())
	}
	return lg
}

// rebuildHash replays [1, upTo) and returns the snapshot hash of the
// resulting store.
func rebuildHash(t *testing.T, lg *Log, upTo uint64) string {
	t.Helper()
	arch, _, err := Rebuild(lg, upTo)
	if err != nil {
		t.Fatalf("rebuild upTo %d: %v", upTo, err)
	}
	defer arch.Close()
	sn := arch.Snapshot()
	defer sn.Close()
	h, err := sn.Hash()
	if err != nil {
		t.Fatalf("hash upTo %d: %v", upTo, err)
	}
	return h
}

// probeSeqs picks seqs across the log: start, segment boundaries, interior
// points, the exact end, and past-the-end.
func probeSeqs(last uint64) []uint64 {
	return []uint64{1, 2, last / 7, last / 3, last / 2, last - last/5, last, last + 1, 0}
}

// TestReplayDeterministic is the core property of the whole subsystem:
// the materialized store is a pure function of the log prefix. Replaying
// [1, seq) twice yields bit-identical relstore snapshot hashes at every
// probed seq — there is no wall clock, scheduling artifact, or iteration
// order anywhere in the replay path that can leak into the store.
func TestReplayDeterministic(t *testing.T) {
	lg := buildPropertyLog(t, t.TempDir())
	defer lg.Close()
	last := lg.NextSeq() - 1

	var prevHash string
	var prevSeq uint64
	seen := 0
	for _, seq := range probeSeqs(last) {
		h1 := rebuildHash(t, lg, seq)
		h2 := rebuildHash(t, lg, seq)
		if h1 != h2 {
			t.Fatalf("seq %d: replay-twice hashes differ: %s vs %s", seq, h1, h2)
		}
		// Growing the prefix must change the store (the stream has no
		// trailing no-op records at these probes); identical hashes for
		// different prefixes would mean the hash is insensitive.
		if prevHash != "" && seq > prevSeq && seq <= last+1 && prevSeq <= last && h1 == prevHash {
			t.Fatalf("seq %d and %d hash identically: hash not state-sensitive", prevSeq, seq)
		}
		prevHash, prevSeq = h1, seq
		seen++
	}
	if seen < 5 {
		t.Fatalf("only %d probes ran", seen)
	}

	// upTo 0 (whole log) and upTo last+1 are the same prefix by
	// definition and must agree.
	if h0, hAll := rebuildHash(t, lg, 0), rebuildHash(t, lg, last+1); h0 != hAll {
		t.Fatalf("upTo=0 hash %s != upTo=last+1 hash %s", h0, hAll)
	}
}

// TestReplayAfterCrashRecovery: tearing the final record off the log and
// recovering must materialize exactly the same store as an intact log
// replayed to the same surviving prefix — crash recovery loses the torn
// suffix and nothing else.
func TestReplayAfterCrashRecovery(t *testing.T) {
	base := t.TempDir()
	intact := buildPropertyLog(t, filepath.Join(base, "intact"))
	defer intact.Close()
	last := intact.NextSeq() - 1

	// Copy the log directory, then tear the last segment mid-record.
	crashDir := filepath.Join(base, "crash")
	if err := os.MkdirAll(crashDir, 0o755); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(base, "intact", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("glob: %v", err)
	}
	for _, p := range segs {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if p == segs[len(segs)-1] {
			data = data[:len(data)-11] // mid-frame tear
		}
		if err := os.WriteFile(filepath.Join(crashDir, filepath.Base(p)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	recovered, err := Open(crashDir, Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer recovered.Close()
	survived := recovered.NextSeq() - 1
	if survived >= last || survived == 0 {
		t.Fatalf("tear did not shorten the log: survived %d of %d", survived, last)
	}

	// At every probed seq within the surviving prefix, the recovered log
	// and the intact log materialize identical stores.
	for _, seq := range probeSeqs(survived) {
		if seq > survived+1 && seq != 0 {
			continue
		}
		want := seq
		if seq == 0 || seq > survived {
			want = survived + 1 // recovered log's full extent
		}
		hRec := rebuildHash(t, recovered, seq)
		hRef := rebuildHash(t, intact, want)
		if hRec != hRef {
			t.Fatalf("seq %d: post-recovery hash %s != reference %s", seq, hRec, hRef)
		}
	}
}

// TestSnapshotHashOrderInsensitive: the hash reads the canonical
// serialization, so two handles on the same store state hash equal, and
// the hash is stable across repeated calls on one snapshot.
func TestSnapshotHashOrderInsensitive(t *testing.T) {
	lg := buildPropertyLog(t, t.TempDir())
	defer lg.Close()
	arch, _, err := Rebuild(lg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	sn1 := arch.Snapshot()
	defer sn1.Close()
	sn2 := arch.Snapshot()
	defer sn2.Close()
	hash := func(sn *relstore.Snapshot) string {
		h, err := sn.Hash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	if a, b := hash(sn1), hash(sn2); a != b {
		t.Fatalf("two snapshots of one state hash differently: %s vs %s", a, b)
	}
	if a, b := hash(sn1), hash(sn1); a != b {
		t.Fatalf("repeated hash of one snapshot differs: %s vs %s", a, b)
	}
}
