package eventlog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// collect drains a cursor into copied records.
func collect(t *testing.T, c *Cursor) []Record {
	t.Helper()
	var out []Record
	for {
		rec, err := c.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("cursor: %v", err)
		}
		out = append(out, Record{Seq: rec.Seq, CID: rec.CID, Line: append([]byte(nil), rec.Line...)})
	}
}

func line(i int) []byte {
	return []byte(fmt.Sprintf("ts=2012-11-10T00:00:%02d.000001Z event=stampede.test level=Info seq=%d", i%60, i))
}

func TestAppendReadRoundTrip(t *testing.T) {
	lg, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	const n = 500
	for i := 0; i < n; i++ {
		seq, err := lg.Append(line(i))
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("append %d: seq %d, want %d", i, seq, want)
		}
	}
	c, err := lg.Cursor(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, c)
	if len(recs) != n {
		t.Fatalf("read %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d", i, r.Seq)
		}
		if !bytes.Equal(r.Line, line(i)) {
			t.Fatalf("record %d: line %q, want %q", i, r.Line, line(i))
		}
		if r.CID != contentID(line(i)) {
			t.Fatalf("record %d: cid mismatch", i)
		}
	}
	if got := lg.Appends(); got != n {
		t.Fatalf("Appends() = %d, want %d", got, n)
	}
}

func TestCursorRanges(t *testing.T) {
	lg, err := Open(t.TempDir(), Options{SegmentBytes: 2 << 10, FlushBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	const n = 300
	for i := 0; i < n; i++ {
		if _, err := lg.Append(line(i)); err != nil {
			t.Fatal(err)
		}
	}
	if lg.Segments() < 2 {
		t.Fatalf("expected multiple segments, got %d", lg.Segments())
	}
	cases := []struct{ from, to, wantFirst, wantN uint64 }{
		{1, 0, 1, n},
		{0, 0, 1, n},
		{100, 200, 100, 100},
		{n, 0, n, 1},
		{n + 1, 0, 0, 0},
		{50, 50, 0, 0},
		{250, 9999, 250, n - 249},
	}
	for _, tc := range cases {
		c, err := lg.Cursor(tc.from, tc.to)
		if err != nil {
			t.Fatal(err)
		}
		recs := collect(t, c)
		if uint64(len(recs)) != tc.wantN {
			t.Fatalf("[%d,%d): got %d records, want %d", tc.from, tc.to, len(recs), tc.wantN)
		}
		if tc.wantN > 0 && recs[0].Seq != tc.wantFirst {
			t.Fatalf("[%d,%d): first seq %d, want %d", tc.from, tc.to, recs[0].Seq, tc.wantFirst)
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Seq != recs[i-1].Seq+1 {
				t.Fatalf("seq gap at %d: %d -> %d", i, recs[i-1].Seq, recs[i].Seq)
			}
		}
	}
}

func TestReopenContinuesSeq(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := lg.Append(line(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	lg2, err := Open(dir, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if got := lg2.NextSeq(); got != 101 {
		t.Fatalf("NextSeq after reopen = %d, want 101", got)
	}
	for i := 100; i < 200; i++ {
		if _, err := lg2.Append(line(i)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := lg2.Cursor(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, c)
	if len(recs) != 200 {
		t.Fatalf("got %d records after reopen+append, want 200", len(recs))
	}
	for i, r := range recs {
		if !bytes.Equal(r.Line, line(i)) {
			t.Fatalf("record %d: line %q, want %q", i, r.Line, line(i))
		}
	}
}

func TestSegmentRollKeepsSizeBound(t *testing.T) {
	const segBytes = 4 << 10
	dir := t.TempDir()
	lg, err := Open(dir, Options{SegmentBytes: segBytes, FlushBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if _, err := lg.Append(line(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 2 {
		t.Fatalf("expected roll to multiple segments, got %d", len(ents))
	}
	for _, e := range ents {
		fi, err := os.Stat(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		// A flush is at most FlushBytes + one record over; the roll check
		// runs before the write, so size stays within SegmentBytes plus
		// one flush worth of slack.
		if fi.Size() > segBytes+1024 {
			t.Fatalf("segment %s is %d bytes, roll threshold %d", e.Name(), fi.Size(), segBytes)
		}
	}
}

func TestInfo(t *testing.T) {
	lg, err := Open(t.TempDir(), Options{SegmentBytes: 2 << 10, FlushBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	const n = 120
	for i := 0; i < n; i++ {
		if _, err := lg.Append(line(i)); err != nil {
			t.Fatal(err)
		}
	}
	info, err := lg.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != n || info.FirstSeq != 1 || info.NextSeq != n+1 {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Segments) != lg.Segments() {
		t.Fatalf("info lists %d segments, log has %d", len(info.Segments), lg.Segments())
	}
	var sum int
	for _, sg := range info.Segments {
		sum += sg.Records
	}
	if sum != n {
		t.Fatalf("segment record counts sum to %d, want %d", sum, n)
	}
}

func TestEmptyLog(t *testing.T) {
	lg, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	c, err := lg.Cursor(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if recs := collect(t, c); len(recs) != 0 {
		t.Fatalf("empty log yielded %d records", len(recs))
	}
	info, err := lg.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 0 || info.NextSeq != 1 {
		t.Fatalf("info = %+v", info)
	}
}

func TestClosedLogRejectsAppend(t *testing.T) {
	lg, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on closed log: %v, want ErrClosed", err)
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	lg, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if _, err := lg.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversized append accepted")
	}
	if _, err := lg.Append(line(0)); err != nil {
		t.Fatalf("append after rejected oversize: %v", err)
	}
}

func TestReadOnlyOpen(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := lg.Append(line(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, err := ro.Append(line(0)); err == nil {
		t.Fatal("read-only log accepted an append")
	}
	c, err := ro.Cursor(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if recs := collect(t, c); len(recs) != 10 {
		t.Fatalf("read-only cursor got %d records, want 10", len(recs))
	}
	if _, err := Open(filepath.Join(dir, "missing"), Options{ReadOnly: true}); err == nil {
		t.Fatal("read-only open of a missing dir succeeded")
	}
}

// TestCursorAfterClose: Close documents that open cursors keep reading,
// and Cursor() explicitly supports closed logs — so a cursor created
// after Close must still see every flushed record, including the ones in
// the final segment (regression: Close used to zero the flushed-size
// snapshot, making post-Close cursors read the last segment as empty).
func TestCursorAfterClose(t *testing.T) {
	lg, err := Open(t.TempDir(), Options{SegmentBytes: 2 << 10, FlushBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := lg.Append(line(i)); err != nil {
			t.Fatal(err)
		}
	}
	if lg.Segments() < 2 {
		t.Fatalf("expected multiple segments, got %d", lg.Segments())
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := lg.Cursor(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, c)
	if len(recs) != n {
		t.Fatalf("cursor after Close got %d records, want %d", len(recs), n)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cursor after Close: %v", err)
	}
}

// TestAppendFlushReattachesRecoveredSegment: a crash between a roll's
// header write and its first record flush leaves a header-only segment;
// after reopen, the first group flush triggered from Append must re-open
// that segment for appending (regression: Append's inline flush used to
// create-with-O_EXCL and fail with "file exists").
func TestAppendFlushReattachesRecoveredSegment(t *testing.T) {
	dir := t.TempDir()
	var h [segHeaderSize]byte
	copy(h[0:4], segMagic)
	binary.LittleEndian.PutUint32(h[4:8], segVersion)
	binary.LittleEndian.PutUint64(h[8:16], 1)
	if err := os.WriteFile(filepath.Join(dir, segName(1)), h[:], 0o644); err != nil {
		t.Fatal(err)
	}
	lg, err := Open(dir, Options{FlushBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if got := lg.NextSeq(); got != 1 {
		t.Fatalf("NextSeq after header-only recovery = %d, want 1", got)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := lg.Append(line(i)); err != nil {
			t.Fatalf("append %d after header-only recovery: %v", i, err)
		}
	}
	if got := lg.Segments(); got != 1 {
		t.Fatalf("log grew to %d segments, want the recovered one reused", got)
	}
	c, err := lg.Cursor(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if recs := collect(t, c); len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
}

// TestCursorPointInTime: records appended after a cursor is created are
// not visible through it.
func TestCursorPointInTime(t *testing.T) {
	lg, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	for i := 0; i < 50; i++ {
		if _, err := lg.Append(line(i)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := lg.Cursor(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 100; i++ {
		if _, err := lg.Append(line(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Flush(); err != nil {
		t.Fatal(err)
	}
	if recs := collect(t, c); len(recs) != 50 {
		t.Fatalf("point-in-time cursor got %d records, want 50", len(recs))
	}
}
