package eventlog

import (
	"context"
	"fmt"
	"time"

	"repro/internal/archive"
	"repro/internal/loader"
	"repro/internal/mq"
	"repro/internal/wfclock"
)

// Rebuild replays the log's records [1, upTo) through the lenient loader
// into a fresh in-memory archive and returns it with the load stats.
// upTo == 0 replays the whole log. The archive+relstore that results is
// a pure function of the log prefix: replaying the same range twice
// yields stores with identical snapshot hashes (property-tested), which
// is what makes the log the source of truth and the store a disposable
// materialization.
func Rebuild(lg *Log, upTo uint64) (*archive.Archive, loader.Stats, error) {
	arch := archive.NewInMemory()
	stats, err := RebuildInto(lg, upTo, arch)
	return arch, stats, err
}

// RebuildInto replays [1, upTo) into an existing (expected-empty)
// archive, e.g. a durable one created by archive.Open for point-in-time
// recovery.
//
// Determinism rules, in order of subtlety:
//
//   - The loader runs sequential (Shards: 1). The sharded pipeline
//     interleaves per-workflow apply order across shards, which would
//     make primary-key assignment depend on scheduling.
//   - The flush ticker runs on a manual clock that never advances, so
//     batch boundaries depend only on record count, never on how fast
//     this machine replays. (Batch boundaries don't change final state
//     anyway — but determinism by construction beats determinism by
//     argument.)
//   - Records are fed through the same Consume path live ingest uses, so
//     malformed-line accounting classifies identically to the original
//     run; nothing re-derives or re-synthesizes data.
func RebuildInto(lg *Log, upTo uint64, arch *archive.Archive) (loader.Stats, error) {
	ld, err := loader.New(arch, loader.Options{
		Validate: true,
		Lenient:  true,
		Shards:   1,
		Clock:    wfclock.NewManual(time.Unix(0, 0)),
	})
	if err != nil {
		return loader.Stats{}, err
	}
	cur, err := lg.Cursor(1, upTo)
	if err != nil {
		return loader.Stats{}, err
	}

	msgs := make(chan mq.Message, 256)
	errc := make(chan error, 1)
	go func() {
		defer close(msgs)
		for {
			rec, err := cur.Next()
			if err != nil {
				if cur.Err() != nil {
					errc <- cur.Err()
				}
				close(errc)
				return
			}
			// Consume takes ownership of Body; the cursor reuses its
			// buffer, so hand over a copy.
			msgs <- mq.Message{Body: append([]byte(nil), rec.Line...)}
		}
	}()

	stats, err := ld.Consume(context.Background(), msgs)
	if err != nil {
		// Drain so the feeder goroutine can exit.
		for range msgs {
		}
		<-errc
		return stats, err
	}
	if cerr, ok := <-errc; ok && cerr != nil {
		return stats, fmt.Errorf("eventlog: rebuild read: %w", cerr)
	}
	return stats, nil
}
