// Package eventlog is the durable source of truth for the monitoring
// pipeline: an append-only, segmented, checksummed log of every raw BP
// line the loader ingests, written *before* the parser touches it so
// malformed lines are preserved alongside well-formed events.
//
// The design follows the event-log-as-truth discipline of production
// monitoring stores (CMS persists every message so views can be rebuilt;
// R-GMA producers republish history to late joiners): the archive and
// relstore become a materialization of this log, reconstructible
// bit-identically at any point by Rebuild. Three rules make that replay
// deterministic:
//
//   - Logical clocks only. Every record carries a monotonic seq assigned
//     at append time; no wall-clock value exists anywhere in the framing
//     or the replay path, so replaying tomorrow yields the same store as
//     replaying today (snapshot-hash property tests enforce this).
//   - Content-addressed records. Each record's id is a 64-bit FNV-1a
//     hash of its exact payload bytes, verified on every read, so a
//     record's identity is its content, not its position or its arrival
//     time.
//   - Checksummed framing. Each record is framed with a CRC32C trailer
//     covering length, seq, id and payload; a crash mid-write leaves a
//     torn tail that Open detects and truncates back to the last valid
//     record.
//
// Layout: a log directory holds fixed-size segment files named
// %020d.seg by the seq of their first record. Each segment starts with a
// 16-byte header (magic, version, base seq) followed by back-to-back
// records:
//
//	segment: | "EVLG" | version u32 | base seq u64 | record* |
//	record:  | len u32 | seq u64 | cid u64 | payload | crc32c u32 |
//
// All integers are little-endian. Records never span segments.
//
// The write path is built for the loader's ingest rate: Append encodes
// into a reused in-memory buffer (zero allocations in steady state,
// enforced by alloc tests) and the buffer is group-flushed to the active
// segment when it crosses Options.FlushBytes, so per-line cost is a hash,
// a checksum and a memcpy. Durability is bounded by the flush granularity
// — a crash loses at most the unflushed tail, which recovery then
// truncates cleanly.
package eventlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Frame geometry. A record is recHeaderSize bytes of header, the payload,
// and a 4-byte CRC32C trailer computed over everything before it.
const (
	recHeaderSize  = 4 + 8 + 8 // len u32, seq u64, cid u64
	recTrailerSize = 4         // crc32c
	recOverhead    = recHeaderSize + recTrailerSize

	segHeaderSize = 4 + 4 + 8 // magic, version, base seq
	segMagic      = "EVLG"
	segVersion    = 1
	segSuffix     = ".seg"

	// MaxRecordBytes bounds one payload, matching the 1 MiB line cap of
	// the BP stream reader. A length field above it marks the frame
	// corrupt immediately, so a torn length can never make recovery
	// wait for gigabytes of phantom payload.
	MaxRecordBytes = 1 << 20
)

// Defaults for Options.
const (
	DefaultSegmentBytes = 64 << 20
	DefaultFlushBytes   = 256 << 10
)

// Errors surfaced by the decode and read paths.
var (
	// ErrCorrupt marks a frame whose checksum, content id, length or seq
	// does not hold. Inside the log body (not the tail) it is fatal.
	ErrCorrupt = errors.New("eventlog: corrupt record")
	// errShort marks an incomplete frame: a torn tail, or simply the end
	// of the flushed bytes.
	errShort = errors.New("eventlog: short record")
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("eventlog: log closed")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// contentID is the 64-bit FNV-1a hash of a record's payload: the
// content address every record carries and every read verifies. Inlined
// rather than hash/fnv so the append hot path allocates nothing.
func contentID(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Options tunes a Log. The zero value means the defaults.
type Options struct {
	// SegmentBytes is the roll threshold: a flush that would push the
	// active segment past it starts a new segment first, so segments
	// stay under this size (one oversized record is the only exception).
	SegmentBytes int64
	// FlushBytes is the group-flush threshold: appended records buffer
	// in memory until this many bytes accumulate, then reach the file in
	// one write. Crash durability is bounded by this amount.
	FlushBytes int
	// Sync fsyncs the active segment on every flush. Off by default —
	// the log's replay guarantees only need the frame checksums; turn it
	// on when the log must survive power loss, not just process death.
	Sync bool
	// ReadOnly opens the log for inspection and replay without touching
	// the files: a torn tail is reported but not truncated, and Append
	// is refused.
	ReadOnly bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.FlushBytes == 0 {
		o.FlushBytes = DefaultFlushBytes
	}
	return o
}

// Record is one decoded log entry: its logical clock, its content
// address, and the raw line bytes exactly as ingested.
type Record struct {
	Seq  uint64
	CID  uint64
	Line []byte // valid until the cursor's next call; copy to retain
}

// segment is one on-disk segment file.
type segment struct {
	base uint64 // seq of the first record
	path string
}

func segName(base uint64) string {
	return fmt.Sprintf("%020d%s", base, segSuffix)
}

// Log is an append-only event log over one directory. Append, Flush,
// Cursor and the accessors are safe for concurrent use; the group-flush
// buffer is guarded by one mutex, so concurrent appenders serialize the
// (cheap) encode and share flushes.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	segs    []segment
	f       *os.File // active segment (last of segs); nil until first flush
	size    int64    // flushed bytes of the active segment
	buf     []byte   // pending encoded records
	bufBase uint64   // seq of the first buffered record
	next    uint64   // next seq to assign (first record is seq 1)
	closed  bool

	truncated int64  // torn-tail bytes dropped (or, read-only: detected) at Open
	appends   uint64 // records appended by this Log instance
	bytes     uint64 // encoded bytes appended by this Log instance
}

// Open opens (creating if needed) the log directory, recovers the tail
// of the last segment — truncating past the last valid record unless
// Options.ReadOnly — and returns the log positioned to append at the
// next seq.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if opts.ReadOnly {
		if _, err := os.Stat(dir); err != nil {
			return nil, err
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, next: 1}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, perr := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if perr != nil {
			continue
		}
		l.segs = append(l.segs, segment{base: base, path: filepath.Join(dir, name)})
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].base < l.segs[j].base })
	if err := l.recover(); err != nil {
		return nil, err
	}
	mSegments.Set(int64(len(l.segs)))
	return l, nil
}

// recover scans the last segment, establishes the next seq, and truncates
// any torn tail. Only the last segment can be torn by a crash; earlier
// segments were completed by a roll and are verified lazily by cursors.
func (l *Log) recover() error {
	for len(l.segs) > 0 {
		last := l.segs[len(l.segs)-1]
		base, lastSeq, n, validEnd, err := scanSegment(last.path, MaxRecordBytes)
		if err != nil {
			// The header itself is unreadable: the crash hit segment
			// creation before any record landed. Drop the file and
			// recover from the previous segment instead.
			fi, serr := os.Stat(last.path)
			if serr == nil {
				l.truncated += fi.Size()
			}
			if !l.opts.ReadOnly {
				if rerr := os.Remove(last.path); rerr != nil {
					return rerr
				}
			}
			l.segs = l.segs[:len(l.segs)-1]
			continue
		}
		if base != last.base {
			return fmt.Errorf("eventlog: segment %s header base %d does not match its name", last.path, base)
		}
		fi, err := os.Stat(last.path)
		if err != nil {
			return err
		}
		if tail := fi.Size() - validEnd; tail > 0 {
			l.truncated += tail
			if !l.opts.ReadOnly {
				if err := os.Truncate(last.path, validEnd); err != nil {
					return err
				}
			}
		}
		if n == 0 {
			l.next = base
		} else {
			l.next = lastSeq + 1
		}
		l.size = validEnd
		return nil
	}
	l.next = 1
	l.size = 0
	return nil
}

// scanSegment walks one segment file front to back, verifying every
// frame, and reports the header base, the last valid seq, the number of
// valid records, and the byte offset just past the last valid record.
// An unreadable or mismatched header is an error; a bad record merely
// ends the scan (that is the torn tail).
func scanSegment(path string, maxRecord int) (base, lastSeq uint64, n int, validEnd int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if len(data) < segHeaderSize || string(data[0:4]) != segMagic ||
		binary.LittleEndian.Uint32(data[4:8]) != segVersion {
		return 0, 0, 0, 0, fmt.Errorf("eventlog: %s: bad segment header", path)
	}
	base = binary.LittleEndian.Uint64(data[8:16])
	off := int64(segHeaderSize)
	want := base
	for {
		rec, sz, derr := decodeRecord(data[off:], maxRecord)
		if derr != nil || rec.Seq != want {
			return base, lastSeq, n, off, nil
		}
		lastSeq = rec.Seq
		want++
		n++
		off += int64(sz)
	}
}

// appendRecord encodes one frame onto buf and returns the extended slice.
func appendRecord(buf []byte, seq uint64, payload []byte) []byte {
	off := len(buf)
	var h [recHeaderSize]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(h[4:12], seq)
	binary.LittleEndian.PutUint64(h[12:20], contentID(payload))
	buf = append(buf, h[:]...)
	buf = append(buf, payload...)
	var c [recTrailerSize]byte
	binary.LittleEndian.PutUint32(c[:], crc32.Checksum(buf[off:], crcTable))
	return append(buf, c[:]...)
}

// decodeRecord parses one frame at the start of b. It returns the record
// (Line aliases b) and the total frame size. errShort means b ends before
// the frame does — a torn tail or simply the end of the flushed bytes;
// ErrCorrupt means the frame is complete but fails its checks. Corruption
// is always detected, never a panic (FuzzRecordRoundTrip enforces this).
func decodeRecord(b []byte, maxRecord int) (Record, int, error) {
	if len(b) < recOverhead {
		return Record{}, 0, errShort
	}
	n := int(binary.LittleEndian.Uint32(b[0:4]))
	if n > maxRecord {
		return Record{}, 0, ErrCorrupt
	}
	total := recOverhead + n
	if len(b) < total {
		return Record{}, 0, errShort
	}
	body := b[:recHeaderSize+n]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(b[recHeaderSize+n:total]) {
		return Record{}, 0, ErrCorrupt
	}
	rec := Record{
		Seq:  binary.LittleEndian.Uint64(b[4:12]),
		CID:  binary.LittleEndian.Uint64(b[12:20]),
		Line: b[recHeaderSize : recHeaderSize+n],
	}
	if contentID(rec.Line) != rec.CID {
		return Record{}, 0, ErrCorrupt
	}
	return rec, total, nil
}

// Append assigns the next seq to line and buffers its frame; the buffer
// reaches the active segment when it crosses FlushBytes (or on Flush or
// Close). The returned seq is the record's logical clock. line may be
// reused by the caller immediately. Steady state allocates nothing.
func (l *Log) Append(line []byte) (uint64, error) {
	if len(line) > MaxRecordBytes {
		return 0, fmt.Errorf("eventlog: record of %d bytes exceeds the %d cap", len(line), MaxRecordBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.opts.ReadOnly {
		return 0, errors.New("eventlog: log opened read-only")
	}
	seq := l.next
	l.next++
	if len(l.buf) == 0 {
		l.bufBase = seq
	}
	was := len(l.buf)
	l.buf = appendRecord(l.buf, seq, line)
	grew := uint64(len(l.buf) - was)
	l.appends++
	l.bytes += grew
	mAppends.Inc()
	mBytes.Add(grew)
	if len(l.buf) >= l.opts.FlushBytes {
		if err := l.flushAttachedLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// flushLocked writes the pending buffer to the active segment, rolling to
// a new segment first when the write would push it past SegmentBytes.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if l.f != nil && l.size+int64(len(l.buf)) > l.opts.SegmentBytes && l.size > segHeaderSize {
		if err := l.closeActiveLocked(); err != nil {
			return err
		}
	}
	if l.f == nil {
		if err := l.openSegmentLocked(l.bufBase); err != nil {
			return err
		}
	}
	t0 := time.Now()
	if _, err := l.f.Write(l.buf); err != nil {
		return err
	}
	if l.opts.Sync {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	mFlushLatency.ObserveSince(t0)
	l.size += int64(len(l.buf))
	l.buf = l.buf[:0]
	return nil
}

// openSegmentLocked creates a fresh segment whose first record is seq
// base and makes it the active file.
func (l *Log) openSegmentLocked(base uint64) error {
	path := filepath.Join(l.dir, segName(base))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var h [segHeaderSize]byte
	copy(h[0:4], segMagic)
	binary.LittleEndian.PutUint32(h[4:8], segVersion)
	binary.LittleEndian.PutUint64(h[8:16], base)
	if _, err := f.Write(h[:]); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.size = segHeaderSize
	l.segs = append(l.segs, segment{base: base, path: path})
	mSegments.Set(int64(len(l.segs)))
	return nil
}

func (l *Log) closeActiveLocked() error {
	if l.f == nil {
		return nil
	}
	if l.opts.Sync {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	// l.size is deliberately left alone: it still describes the flushed
	// bytes of the last segment, which cursors created after Close (an
	// explicitly supported case) snapshot as their read limit. A roll
	// resets it via openSegmentLocked when the next segment starts.
	err := l.f.Close()
	l.f = nil
	return err
}

// reopenActiveLocked re-opens the last recovered segment for appending.
// Called lazily on the first flush after Open found existing segments.
func (l *Log) reopenActiveLocked() error {
	last := l.segs[len(l.segs)-1]
	f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	return nil
}

// Flush forces buffered records to the active segment file.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.flushAttachedLocked()
}

// flushAttachedLocked flushes, first re-attaching to a recovered segment
// when Open left one behind (l.f nil but segments exist and the last one
// has room).
func (l *Log) flushAttachedLocked() error {
	if len(l.buf) > 0 && l.f == nil && len(l.segs) > 0 &&
		l.size+int64(len(l.buf)) <= l.opts.SegmentBytes {
		if err := l.reopenActiveLocked(); err != nil {
			return err
		}
	}
	return l.flushLocked()
}

// Sync flushes and fsyncs the active segment regardless of Options.Sync.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.flushAttachedLocked(); err != nil {
		return err
	}
	if l.f != nil {
		return l.f.Sync()
	}
	return nil
}

// Close flushes pending records and closes the active segment. The log
// rejects further appends; open cursors keep reading.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.flushAttachedLocked(); err != nil {
		l.closeActiveLocked()
		return err
	}
	return l.closeActiveLocked()
}

// NextSeq returns the seq the next appended record will carry.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Appends returns how many records this Log instance appended.
func (l *Log) Appends() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}

// AppendedBytes returns how many encoded bytes this instance appended.
func (l *Log) AppendedBytes() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// TruncatedBytes reports the torn-tail bytes Open dropped (or, for a
// read-only log, detected) during recovery.
func (l *Log) TruncatedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

// Segments returns the number of segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// SegmentInfo describes one segment for inspection.
type SegmentInfo struct {
	Base    uint64 `json:"base"`
	LastSeq uint64 `json:"last_seq"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
	Path    string `json:"path"`
}

// Info describes the whole log for inspection.
type Info struct {
	Segments  []SegmentInfo `json:"segments"`
	FirstSeq  uint64        `json:"first_seq"` // 0 when the log is empty
	NextSeq   uint64        `json:"next_seq"`
	Records   int           `json:"records"`
	Bytes     int64         `json:"bytes"`
	Truncated int64         `json:"truncated_bytes"` // torn tail dropped at Open
}

// Info scans every segment (verifying all frames on the way) and returns
// the log's shape. It is an integrity pass, not a hot-path call.
func (l *Log) Info() (Info, error) {
	l.mu.Lock()
	if err := l.flushAttachedLocked(); err != nil && !errors.Is(err, ErrClosed) {
		l.mu.Unlock()
		return Info{}, err
	}
	segs := append([]segment(nil), l.segs...)
	info := Info{NextSeq: l.next, Truncated: l.truncated}
	l.mu.Unlock()

	for i, sg := range segs {
		base, lastSeq, n, validEnd, err := scanSegment(sg.path, MaxRecordBytes)
		if err != nil {
			return info, err
		}
		fi, err := os.Stat(sg.path)
		if err != nil {
			return info, err
		}
		if validEnd != fi.Size() && i != len(segs)-1 {
			return info, fmt.Errorf("eventlog: %s: %w at offset %d", sg.path, ErrCorrupt, validEnd)
		}
		if info.FirstSeq == 0 && n > 0 {
			info.FirstSeq = base
		}
		info.Records += n
		info.Bytes += validEnd
		info.Segments = append(info.Segments, SegmentInfo{
			Base: base, LastSeq: lastSeq, Records: n, Bytes: validEnd, Path: sg.path,
		})
	}
	return info, nil
}
