package eventlog

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// Cursor streams records for a [from, to) seq range, in seq order,
// across segment boundaries. Every frame it returns has passed the CRC,
// content-id and seq-continuity checks; a bad frame in the body of the
// log is reported as corruption, while a bad frame at the very tail of
// the last segment (a torn write racing the cursor) ends the stream
// cleanly at the last valid record.
//
// A cursor reads a point-in-time view: the segment list and flushed size
// are snapshotted at creation, so records appended afterwards are not
// seen. The Record returned by Next aliases an internal buffer — its
// Line is valid only until the following Next call.
type Cursor struct {
	segs  []segment
	limit uint64 // first seq NOT returned
	last  int64  // flushed byte size of the final segment

	from uint64 // next seq to return
	si   int    // index into segs of the open segment
	data []byte // current segment contents (up to the flushed size)
	off  int64
	want uint64 // seq the next frame in this segment must carry
	err  error
}

// Cursor returns a cursor over [from, to). to==0 means "to the end of
// the log as of this call". Pending appends are flushed first so the
// cursor sees everything appended so far. Seqs below the log's first
// record (or a from ≥ to) simply yield an empty stream.
func (l *Log) Cursor(from, to uint64) (*Cursor, error) {
	l.mu.Lock()
	if !l.closed {
		if err := l.flushAttachedLocked(); err != nil {
			l.mu.Unlock()
			return nil, err
		}
	}
	segs := append([]segment(nil), l.segs...)
	next := l.next
	last := l.size
	l.mu.Unlock()

	if from == 0 {
		from = 1
	}
	if to == 0 || to > next {
		to = next
	}
	c := &Cursor{segs: segs, limit: to, last: last, from: from, si: -1}
	return c, nil
}

// Next returns the next record in the range, or io.EOF when the range is
// exhausted. Any other error means the log body is corrupt; the cursor
// is then spent.
func (c *Cursor) Next() (Record, error) {
	if c.err != nil {
		return Record{}, c.err
	}
	for {
		if c.from >= c.limit {
			return c.fail(io.EOF)
		}
		if c.si < 0 {
			if err := c.seek(); err != nil {
				return c.fail(err)
			}
			if c.si < 0 { // range starts past every segment
				return c.fail(io.EOF)
			}
		}
		rec, sz, err := decodeRecord(c.data[c.off:], MaxRecordBytes)
		switch {
		case err == nil && rec.Seq == c.want:
			c.off += int64(sz)
			c.want++
			if rec.Seq < c.from {
				continue // skipping up to the start of the range
			}
			c.from = rec.Seq + 1
			return rec, nil
		case errors.Is(err, errShort) && int(c.off) == len(c.data):
			// Clean end of this segment's records.
			if err := c.advance(); err != nil {
				return c.fail(err)
			}
		case c.si == len(c.segs)-1:
			// A torn or corrupt tail on the final segment: the log
			// simply ends at the last valid record.
			return c.fail(io.EOF)
		default:
			return c.fail(fmt.Errorf("eventlog: %s: %w at offset %d",
				c.segs[c.si].path, ErrCorrupt, c.off))
		}
	}
}

func (c *Cursor) fail(err error) (Record, error) {
	c.err = err
	c.data = nil
	return Record{}, err
}

// Err returns the error that ended iteration, nil while the cursor is
// still live, and nil after a clean io.EOF.
func (c *Cursor) Err() error {
	if c.err == nil || errors.Is(c.err, io.EOF) {
		return nil
	}
	return c.err
}

// seek opens the segment containing c.from (or the first segment after
// it, when c.from predates the log).
func (c *Cursor) seek() error {
	if len(c.segs) == 0 {
		return io.EOF
	}
	// Last segment whose base is ≤ from; if from predates all bases,
	// start at segment 0 and skip forward.
	i := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].base > c.from }) - 1
	if i < 0 {
		i = 0
	}
	return c.open(i)
}

// open loads segment i and positions the cursor at its first record.
func (c *Cursor) open(i int) error {
	sg := c.segs[i]
	data, err := os.ReadFile(sg.path)
	if err != nil {
		return err
	}
	if i == len(c.segs)-1 && int64(len(data)) > c.last {
		// The writer appended (or a torn write landed) after our
		// snapshot; honor the point-in-time view.
		data = data[:c.last]
	}
	if len(data) < segHeaderSize || string(data[0:4]) != segMagic {
		if i == len(c.segs)-1 {
			return io.EOF // torn segment creation
		}
		return fmt.Errorf("eventlog: %s: bad segment header", sg.path)
	}
	c.si = i
	c.data = data
	c.off = segHeaderSize
	c.want = sg.base
	return nil
}

// advance moves to the next segment, verifying seq continuity across the
// boundary.
func (c *Cursor) advance() error {
	if c.si+1 >= len(c.segs) {
		return io.EOF
	}
	next := c.segs[c.si+1]
	if next.base != c.want {
		return fmt.Errorf("eventlog: gap between segments: %s ends at seq %d, %s starts at %d",
			c.segs[c.si].path, c.want-1, next.path, next.base)
	}
	return c.open(c.si + 1)
}
