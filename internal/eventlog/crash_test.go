package eventlog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// lastSegment returns the path of the highest-base segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return matches[len(matches)-1] // %020d names sort lexicographically
}

// buildCrashLog writes n records and returns the byte offset where the
// final record's frame begins in the last segment, so the crash tests
// can tear precisely inside it.
func buildCrashLog(t *testing.T, dir string, n int) (lastFrameStart, fileSize int64) {
	t.Helper()
	lg, err := Open(dir, Options{SegmentBytes: 4 << 10, FlushBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := lg.Append(line(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	// Find the final frame by scanning the last segment.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(segHeaderSize)
	for {
		_, sz, derr := decodeRecord(data[off:], MaxRecordBytes)
		if derr != nil {
			t.Fatalf("intact log failed to scan at %d: %v", off, derr)
		}
		if off+int64(sz) == int64(len(data)) {
			return off, int64(len(data))
		}
		off += int64(sz)
	}
}

// TestCrashRecoveryEveryOffset is the killed-mid-batch test: for every
// byte offset inside the final record's frame, simulate a crash that
// left the segment (a) truncated there, and (b) truncated there with
// garbage appended. Reopen must recover to exactly the surviving prefix
// — all earlier records intact, the torn record gone — and keep the log
// appendable.
func TestCrashRecoveryEveryOffset(t *testing.T) {
	const n = 40
	base := t.TempDir()
	intactDir := filepath.Join(base, "intact")
	frameStart, fileSize := buildCrashLog(t, intactDir, n)
	segName := filepath.Base(lastSegment(t, intactDir))
	intactSeg, err := os.ReadFile(filepath.Join(intactDir, segName))
	if err != nil {
		t.Fatal(err)
	}

	for variant, garbage := range map[string][]byte{
		"truncated": nil,
		// 0xFF garbage: the torn length field reads 0xFFFFFFFF, over
		// MaxRecordBytes, so it can never masquerade as a frame.
		"garbage": bytes.Repeat([]byte{0xFF}, 37),
	} {
		for cut := frameStart; cut < fileSize; cut++ {
			dir := filepath.Join(base, fmt.Sprintf("%s-%d", variant, cut))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			torn := append(append([]byte(nil), intactSeg[:cut]...), garbage...)
			if err := os.WriteFile(filepath.Join(dir, segName), torn, 0o644); err != nil {
				t.Fatal(err)
			}

			lg, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("%s at %d: reopen: %v", variant, cut, err)
			}
			if got, want := lg.NextSeq(), uint64(n); got != want {
				t.Fatalf("%s at %d: NextSeq %d, want %d (torn final record dropped)", variant, cut, got, want)
			}
			// Truncation is reported whenever torn bytes existed; a cut at
			// exactly the frame boundary with no garbage leaves a clean
			// (shorter) file with nothing to drop.
			if tornBytes := (cut - frameStart) + int64(len(garbage)); (lg.TruncatedBytes() > 0) != (tornBytes > 0) {
				t.Fatalf("%s at %d: recovery truncated %d bytes, torn %d", variant, cut, lg.TruncatedBytes(), tornBytes)
			}
			// The file is physically clean: reopening again truncates
			// nothing further.
			c, err := lg.Cursor(1, 0)
			if err != nil {
				t.Fatal(err)
			}
			recs := collect(t, c)
			if len(recs) != n-1 {
				t.Fatalf("%s at %d: %d surviving records, want %d", variant, cut, len(recs), n-1)
			}
			for i, r := range recs {
				if !bytes.Equal(r.Line, line(i)) {
					t.Fatalf("%s at %d: record %d corrupted: %q", variant, cut, i, r.Line)
				}
			}
			// Recovery leaves the log appendable; the reassigned seq
			// reuses the torn record's slot.
			seq, err := lg.Append([]byte("post-crash append"))
			if err != nil || seq != uint64(n) {
				t.Fatalf("%s at %d: post-recovery append: seq %d err %v", variant, cut, seq, err)
			}
			if err := lg.Close(); err != nil {
				t.Fatal(err)
			}
			if err := os.RemoveAll(dir); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestCrashRecoveryTornFirstSegment covers the earlier-crash case: the
// crash hit during segment creation, leaving a file shorter than its
// header (or with a scrambled header). Recovery drops the unreadable
// segment and continues from the previous one.
func TestCrashRecoveryTornFirstSegment(t *testing.T) {
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"partial-header", []byte("EVL")},
		{"bad-magic", append([]byte("XXXX\x01\x00\x00\x00"), make([]byte, 8)...)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, segName(1)), tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			lg, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen over torn segment: %v", err)
			}
			defer lg.Close()
			if got := lg.NextSeq(); got != 1 {
				t.Fatalf("NextSeq %d, want 1", got)
			}
			if seq, err := lg.Append(line(0)); err != nil || seq != 1 {
				t.Fatalf("append after dropping torn segment: seq %d err %v", seq, err)
			}
		})
	}
}

// TestRecoveryIdempotent: recovering an already-clean log changes
// nothing and drops nothing.
func TestRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := lg.Append(line(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		lg, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if lg.TruncatedBytes() != 0 {
			t.Fatalf("round %d: clean log reported %d truncated bytes", round, lg.TruncatedBytes())
		}
		if got := lg.NextSeq(); got != 26 {
			t.Fatalf("round %d: NextSeq %d", round, got)
		}
		if err := lg.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
