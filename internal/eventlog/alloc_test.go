//go:build !race

// Allocation budget for the append fast path, enforced: a loader tap
// that allocates per line would tax every ingested event. The race
// detector inflates allocation counts, so this file is excluded from
// -race runs; the plain CI pass runs it.

package eventlog

import "testing"

// TestAppendAllocFree pins steady-state Append at zero allocations: the
// frame encodes into the reused group-flush buffer, the content hash and
// CRC are computed inline, and the telemetry increments are atomics. The
// warm-up rounds grow the buffer to its steady size (flushes reslice it
// to length zero, keeping capacity) and open the first segment, so the
// measured runs do nothing but hash, checksum and memcpy.
func TestAppendAllocFree(t *testing.T) {
	lg, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	payload := line(1)
	for i := 0; i < 4096; i++ {
		if _, err := lg.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(10000, func() {
		if _, err := lg.Append(payload); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("Append: %.3f allocs/record", avg)
	if avg != 0 {
		t.Errorf("Append allocates %.3f/record, want 0", avg)
	}
}
