package eventlog

import "repro/internal/telemetry"

// Eventlog telemetry, registered on the process-wide default registry.
// Append increments are single atomics so the write hot path stays
// allocation-free (the alloc tests cover Append with these live).
var (
	mAppends = telemetry.NewCounter("stampede_eventlog_appends_total",
		"Records appended to the event log.")
	mBytes = telemetry.NewCounter("stampede_eventlog_bytes_total",
		"Encoded bytes appended to the event log (framing included).")
	mSegments = telemetry.NewGauge("stampede_eventlog_segments",
		"Segment files in the event log directory.")
	mFlushLatency = telemetry.NewHistogram("stampede_eventlog_flush_latency_seconds",
		"Latency of group-flush writes to the active segment.",
		telemetry.DurationBuckets)
)
