// Package core is the top-level Stampede facade: it assembles the
// paper's three-layer model — message bus, high-performance loader over
// the common data model, and the query interface with its analysis tools
// — into one monitoring service that a workflow engine plugs into with a
// single Appender.
//
// The typical wiring, mirroring Figure 1:
//
//	st, _ := core.Start(core.Config{})          // bus + loader + archive
//	defer st.Stop()
//	log := triana.NewStampedeLog(st.Appender()) // engine-side normalizer
//	... run workflows; events stream through the bus into the archive ...
//	st.WaitLoaded(ctx, log.Appended())          // real-time, not post-mortem
//	summary, _ := st.Statistics(log.WorkflowUUID(), true)
package core

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/analyzer"
	"repro/internal/archive"
	"repro/internal/bp"
	"repro/internal/dashboard"
	"repro/internal/loader"
	"repro/internal/mq"
	"repro/internal/query"
	"repro/internal/stats"
)

// Config tunes the monitoring service.
type Config struct {
	// DatabasePath persists the archive to a WAL file; empty keeps it in
	// memory.
	DatabasePath string
	// QueueName and Topic configure the bus binding (defaults: "stampede"
	// bound to "stampede.#", exactly the published deployment).
	QueueName string
	Topic     string
	// BatchSize and FlushEvery tune the loader (see loader.Options).
	BatchSize  int
	FlushEvery time.Duration
	// Shards is the loader's apply-shard count; 0 or 1 keeps the
	// sequential path, N > 1 loads distinct workflows in parallel (see
	// loader.Options.Shards).
	Shards int
	// Validate runs schema validation on every event (default on; set
	// SkipValidation to disable for trusted producers).
	SkipValidation bool
	// Lenient makes malformed or invalid events non-fatal.
	Lenient bool
}

// Stampede is a running monitoring service.
type Stampede struct {
	broker *mq.Broker
	arch   *archive.Archive
	ldr    *loader.Loader
	qi     *query.QI
	queue  *mq.Queue

	cancel context.CancelFunc
	done   chan struct{}
	stats  loader.Stats
	runErr error
}

// Start brings up the service: an in-process topic broker, a durable
// queue bound to the Stampede topic space, and a loader consuming it into
// the archive.
func Start(cfg Config) (*Stampede, error) {
	if cfg.QueueName == "" {
		cfg.QueueName = "stampede"
	}
	if cfg.Topic == "" {
		cfg.Topic = "stampede.#"
	}
	var arch *archive.Archive
	var err error
	if cfg.DatabasePath != "" {
		arch, err = archive.Open(cfg.DatabasePath)
	} else {
		arch = archive.NewInMemory()
	}
	if err != nil {
		return nil, err
	}
	ldr, err := loader.New(arch, loader.Options{
		BatchSize:  cfg.BatchSize,
		FlushEvery: cfg.FlushEvery,
		Validate:   !cfg.SkipValidation,
		Lenient:    cfg.Lenient,
		Shards:     cfg.Shards,
	})
	if err != nil {
		arch.Close()
		return nil, err
	}
	broker := mq.NewBroker()
	q, err := broker.DeclareQueue(cfg.QueueName, mq.QueueOpts{Durable: true})
	if err != nil {
		arch.Close()
		return nil, err
	}
	if err := broker.Bind(cfg.QueueName, cfg.Topic); err != nil {
		arch.Close()
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Stampede{
		broker: broker,
		arch:   arch,
		ldr:    ldr,
		qi:     query.New(arch),
		queue:  q,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		st, err := ldr.ConsumeQueue(ctx, q)
		s.stats = st
		if err != nil && ctx.Err() == nil {
			s.runErr = err
		}
	}()
	return s, nil
}

// Broker exposes the bus for additional consumers (live dashboards,
// anomaly detectors) or for a TCP server front-end.
func (s *Stampede) Broker() *mq.Broker { return s.broker }

// Archive exposes the relational archive.
func (s *Stampede) Archive() *archive.Archive { return s.arch }

// Query returns the query interface over the live archive.
func (s *Stampede) Query() *query.QI { return s.qi }

// Appender returns an appender that publishes events onto the bus; hand
// it to a triana.StampedeLog or pegasus.Monitord.
func (s *Stampede) Appender() BusAppender { return BusAppender{broker: s.broker} }

// BusAppender publishes BP events to the service's broker. It satisfies
// both engines' Appender interfaces.
type BusAppender struct {
	broker *mq.Broker
}

// Append implements the Appender contract.
func (a BusAppender) Append(ev *bp.Event) error {
	a.broker.Publish(ev.Type, []byte(ev.Format()))
	return nil
}

// WaitLoaded blocks until the loader has folded at least n events into
// the archive (or ctx ends). Producers know how many events they emitted;
// this is how tests and examples establish "the archive is caught up".
func (s *Stampede) WaitLoaded(ctx context.Context, n uint64) error {
	for {
		if s.arch.Applied() >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("core: archive at %d/%d events: %w", s.arch.Applied(), n, ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Serve exposes the service's bus over TCP so engines in other processes
// can publish events to it (the remote-AMQP deployment of the paper).
// The returned address is "host:port"; call the returned stop function to
// close the listener.
func (s *Stampede) Serve(addr string) (string, func() error, error) {
	srv, err := mq.NewServer(s.broker, addr)
	if err != nil {
		return "", nil, err
	}
	return srv.Addr(), srv.Close, nil
}

// WaitQuiesced blocks until every event published to the bus so far has
// been folded into the archive: the queue is drained and the loader's
// batch buffer flushed. Use it after a workflow engine finishes to make
// "the archive is caught up" explicit without counting events by hand.
func (s *Stampede) WaitQuiesced(ctx context.Context) error {
	for {
		published := s.broker.Stats().Published
		if s.queue.Len() == 0 && s.arch.Applied() >= published {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("core: archive at %d/%d events: %w",
				s.arch.Applied(), published, ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Stop shuts down the loader and closes the archive, returning the load
// statistics.
func (s *Stampede) Stop() (loader.Stats, error) {
	s.cancel()
	<-s.done
	err := s.runErr
	if cerr := s.arch.Close(); err == nil {
		err = cerr
	}
	return s.stats, err
}

// workflowID resolves a UUID to the archive row id.
func (s *Stampede) workflowID(wfUUID string) (int64, error) {
	wf, err := s.qi.WorkflowByUUID(wfUUID)
	if err != nil {
		return 0, err
	}
	if wf == nil {
		return 0, fmt.Errorf("core: no workflow %s in archive", wfUUID)
	}
	return wf.ID, nil
}

// Statistics computes the stampede_statistics summary for a workflow.
func (s *Stampede) Statistics(wfUUID string, recurse bool) (*stats.Summary, error) {
	id, err := s.workflowID(wfUUID)
	if err != nil {
		return nil, err
	}
	return stats.Compute(s.qi, id, recurse)
}

// Breakdown computes the per-transformation breakdown (breakdown.txt).
func (s *Stampede) Breakdown(wfUUID string, recurse bool) ([]stats.BreakdownRow, error) {
	id, err := s.workflowID(wfUUID)
	if err != nil {
		return nil, err
	}
	return stats.Breakdown(s.qi, id, recurse)
}

// JobsReport computes the per-job report (jobs.txt).
func (s *Stampede) JobsReport(wfUUID string) ([]stats.JobRow, error) {
	id, err := s.workflowID(wfUUID)
	if err != nil {
		return nil, err
	}
	return stats.JobsReport(s.qi, id)
}

// Analyze runs the stampede_analyzer over a workflow hierarchy.
func (s *Stampede) Analyze(wfUUID string) (*analyzer.Report, error) {
	id, err := s.workflowID(wfUUID)
	if err != nil {
		return nil, err
	}
	return analyzer.Analyze(s.qi, id, true)
}

// Progress computes the Figure 7 progress series for a workflow.
func (s *Stampede) Progress(wfUUID string) (map[string][]stats.ProgressPoint, error) {
	id, err := s.workflowID(wfUUID)
	if err != nil {
		return nil, err
	}
	return stats.ProgressSeries(s.qi, id)
}

// Dashboard returns the HTTP handler of the live web dashboard, with the
// service's bus wired in so the status page shows broker traffic and
// drop counts alongside workflow state.
func (s *Stampede) Dashboard() http.Handler {
	d := dashboard.New(s.qi)
	d.SetBus(s.broker)
	return d
}
