package core

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/mq"
	"repro/internal/triana"
)

func runGraph(t *testing.T, st *Stampede, g *triana.TaskGraph) *triana.StampedeLog {
	t.Helper()
	before := st.Archive().Applied()
	log := triana.NewStampedeLog(st.Appender())
	sched := triana.NewScheduler(g, triana.Options{Mode: triana.SingleStep, Listeners: []triana.Listener{log}})
	if _, err := sched.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := st.WaitLoaded(ctx, before+uint64(log.Appended())); err != nil {
		t.Fatal(err)
	}
	return log
}

func demoGraph() *triana.TaskGraph {
	g := triana.NewTaskGraph("demo")
	a := g.MustAddTask("src", &triana.FuncUnit{UnitName: "src", Fn: func(*triana.ProcessContext) ([]any, error) {
		return []any{1}, nil
	}})
	b := g.MustAddTask("sink", &triana.FuncUnit{UnitName: "sink", Fn: func(*triana.ProcessContext) ([]any, error) {
		return nil, nil
	}})
	_, _ = g.Connect(a, b)
	return g
}

func TestStartRunQueryStop(t *testing.T) {
	st, err := Start(Config{FlushEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	log := runGraph(t, st, demoGraph())

	summary, err := st.Statistics(log.WorkflowUUID(), true)
	if err != nil {
		t.Fatal(err)
	}
	if summary.Jobs.Total != 2 || summary.Jobs.Succeeded != 2 {
		t.Errorf("summary = %+v", summary.Jobs)
	}
	rows, err := st.Breakdown(log.WorkflowUUID(), true)
	if err != nil || len(rows) == 0 {
		t.Errorf("breakdown: %d rows, %v", len(rows), err)
	}
	jobs, err := st.JobsReport(log.WorkflowUUID())
	if err != nil || len(jobs) != 2 {
		t.Errorf("jobs report: %d rows, %v", len(jobs), err)
	}
	rep, err := st.Analyze(log.WorkflowUUID())
	if err != nil || !rep.Healthy() {
		t.Errorf("analyze: %+v, %v", rep, err)
	}
	prog, err := st.Progress(log.WorkflowUUID())
	if err != nil || len(prog) != 1 {
		t.Errorf("progress: %d series, %v", len(prog), err)
	}
	loadStats, err := st.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if loadStats.Loaded != uint64(log.Appended()) {
		t.Errorf("loaded %d, appended %d", loadStats.Loaded, log.Appended())
	}
	if loadStats.Invalid != 0 {
		t.Errorf("invalid = %d", loadStats.Invalid)
	}
}

func TestPersistentArchiveAcrossRestarts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stampede.db")
	st, err := Start(Config{DatabasePath: path, FlushEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	log := runGraph(t, st, demoGraph())
	if _, err := st.Stop(); err != nil {
		t.Fatal(err)
	}

	re, err := Start(Config{DatabasePath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Stop()
	summary, err := re.Statistics(log.WorkflowUUID(), true)
	if err != nil {
		t.Fatal(err)
	}
	if summary.Jobs.Total != 2 {
		t.Errorf("persisted jobs = %d", summary.Jobs.Total)
	}
}

func TestDashboardServesLiveArchive(t *testing.T) {
	st, err := Start(Config{FlushEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	runGraph(t, st, demoGraph())
	srv := httptest.NewServer(st.Dashboard())
	defer srv.Close()
	resp, err := httptestGet(srv.URL + "/api/workflows")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) < 10 {
		t.Fatalf("dashboard response too small: %q", resp)
	}
}

func TestUnknownWorkflowErrors(t *testing.T) {
	st, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	if _, err := st.Statistics("00000000-0000-0000-0000-000000000000", true); err == nil {
		t.Error("statistics for unknown workflow succeeded")
	}
	if _, err := st.Analyze("00000000-0000-0000-0000-000000000000"); err == nil {
		t.Error("analyze for unknown workflow succeeded")
	}
}

func TestTwoEnginesOneArchive(t *testing.T) {
	// The paper's headline: independently developed engines sharing one
	// monitoring infrastructure. Run two separate Triana graphs (standing
	// in for separate engine processes) into the same service and check
	// both appear.
	st, err := Start(Config{FlushEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	log1 := runGraph(t, st, demoGraph())
	log2 := runGraph(t, st, demoGraph())
	if log1.WorkflowUUID() == log2.WorkflowUUID() {
		t.Fatal("runs share a uuid")
	}
	wfs, err := st.Query().Workflows()
	if err != nil || len(wfs) != 2 {
		t.Fatalf("workflows = %d, %v", len(wfs), err)
	}
	if n, _ := st.Archive().Store().Count(archive.TJobInstance); n != 4 {
		t.Errorf("instances = %d", n)
	}
}

func TestServeTCPRemoteEngine(t *testing.T) {
	// Full remote deployment: the engine publishes over TCP to the
	// service's bus; the loader consumes it into the archive.
	st, err := Start(Config{FlushEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	addr, stop, err := st.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	client, err := mq.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	wfLog := triana.NewStampedeLog(&triana.ClientAppender{Client: client})
	sched := triana.NewScheduler(demoGraph(), triana.Options{
		Mode: triana.SingleStep, Listeners: []triana.Listener{wfLog},
	})
	if _, err := sched.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Events may still be in TCP flight when the engine returns, so wait
	// on the explicit count (WaitQuiesced only covers events that have
	// already reached the bus).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := st.WaitLoaded(ctx, uint64(wfLog.Appended())); err != nil {
		t.Fatal(err)
	}
	summary, err := st.Statistics(wfLog.WorkflowUUID(), true)
	if err != nil {
		t.Fatal(err)
	}
	if summary.Jobs.Succeeded != 2 {
		t.Fatalf("summary over TCP = %+v", summary.Jobs)
	}
}

func TestWaitQuiescedTimesOut(t *testing.T) {
	st, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// An unreachable target with a dead context must fail promptly.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := st.WaitLoaded(ctx, 10); err == nil {
		t.Error("WaitLoaded with dead context succeeded")
	}
	st.Stop()
}

func httptestGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(body), nil
}
