// Package trianacloud implements the TrianaCloud distributed-execution
// substrate of the paper's §V-D and §VI: a broker that receives workflow
// "bundles" over HTTP POST and a pool of worker nodes that execute each
// bundle as a Triana sub-workflow, with per-node concurrency limits (the
// DART deployment ran 16-task bundles four tasks at a time on each of
// eight cloud nodes).
package trianacloud

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/dart"
	"repro/internal/triana"
	"repro/internal/wfclock"
)

// workUnitSecond is the modeled duration of the lightweight auxiliary
// tasks (input preparation, Output_0): the paper's tables report them at
// 1.0 second.
const workUnitSecond = time.Second

// Bundle is the unit of distribution: a named sub-workflow carrying the
// command lines of its executable tasks plus the Stampede hierarchy
// linkage. It is the SHIWA-bundle stand-in, serialized as JSON for the
// HTTP POST.
type Bundle struct {
	// Name is the parent job's identifier for this sub-workflow, e.g.
	// "bundle-03".
	Name string `json:"name"`
	// Commands are the DART command lines this bundle executes.
	Commands []string `json:"commands"`
	// ParentUUID and RootUUID wire the sub-workflow into the Stampede
	// hierarchy; ParentJobID is the job in the parent workflow that
	// submitted this bundle.
	ParentUUID  string `json:"parent_uuid"`
	RootUUID    string `json:"root_uuid"`
	ParentJobID string `json:"parent_job_id"`
	// MaxConcurrent bounds how many executable tasks run at once on the
	// node (the paper's 4). Zero means unlimited.
	MaxConcurrent int `json:"max_concurrent"`
	// SimulateOnly skips the real SHS computation and only occupies the
	// slot for the cost-model duration. High-speedup virtual-clock runs
	// use it so real compute time (amplified by the clock scale) cannot
	// distort the recorded durations.
	SimulateOnly bool `json:"simulate_only"`
}

// Marshal renders the bundle as JSON.
func (b Bundle) Marshal() ([]byte, error) { return json.Marshal(b) }

// UnmarshalBundle parses a JSON bundle.
func UnmarshalBundle(data []byte) (Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("trianacloud: bad bundle: %w", err)
	}
	if b.Name == "" {
		return b, fmt.Errorf("trianacloud: bundle without a name")
	}
	if len(b.Commands) == 0 {
		return b, fmt.Errorf("trianacloud: bundle %q has no commands", b.Name)
	}
	return b, nil
}

// buildGraph constructs the bundle's Triana task graph, mirroring the
// paper's sub-workflow shape: a unit task that prepares the inputs, one
// exec task per command (throttled by the node's slot semaphore), and a
// zipper task that collates outputs into the results folder.
func buildGraph(b Bundle, clk wfclock.Clock, slots chan struct{}) (*triana.TaskGraph, error) {
	g := triana.NewTaskGraph(b.Name)
	lo := 0
	hi := len(b.Commands) - 1
	prep := g.MustAddTask(fmt.Sprintf("unit:%d-%d", lo, hi), &triana.WorkUnit{
		UnitName: "prepare-inputs",
		Desc:     "unit",
		Duration: workUnitSecond,
		Clock:    clk,
		Fn: func(*triana.ProcessContext) ([]any, error) {
			return []any{b.Commands}, nil
		},
	})
	// The zipper collates every exec output into the results folder; the
	// paper's tables report it at ~1 second.
	zipper := g.MustAddTask("file.zipper", &triana.WorkUnit{
		UnitName: "zipper",
		Desc:     "file",
		Duration: workUnitSecond,
		Clock:    clk,
		Fn: func(ctx *triana.ProcessContext) ([]any, error) {
			gathered := make([]any, len(ctx.Inputs))
			copy(gathered, ctx.Inputs)
			return []any{gathered}, nil
		},
	})
	for i, cmd := range b.Commands {
		point, err := dart.ParseCommand(cmd)
		if err != nil {
			return nil, err
		}
		point.Index = i
		exec := g.MustAddTask(fmt.Sprintf("processing.exec%d", i), newExecUnit(point, clk, slots, b.SimulateOnly))
		if _, err := g.Connect(prep, exec); err != nil {
			return nil, err
		}
		if _, err := g.Connect(exec, zipper); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// newExecUnit builds the unit for one DART execution: it waits for a node
// slot, performs the real SHS computation (unless simulateOnly), and
// occupies the slot until the cost-model duration has elapsed on the
// virtual clock, so recorded durations follow the calibrated model even
// when the real computation finishes earlier.
func newExecUnit(point dart.SweepPoint, clk wfclock.Clock, slots chan struct{}, simulateOnly bool) triana.Unit {
	return &triana.FuncUnit{
		UnitName: "dart-exec",
		Desc:     "processing",
		Fn: func(ctx *triana.ProcessContext) ([]any, error) {
			if slots != nil {
				slots <- struct{}{}
				defer func() { <-slots }()
			}
			start := clk.Now()
			var result any
			if !simulateOnly {
				res, err := dart.Run(point)
				if err != nil {
					return nil, err
				}
				result = res
			}
			if remaining := wfclock.DurationSeconds(point.CostSeconds()) - clk.Since(start); remaining > 0 {
				clk.Sleep(remaining)
			}
			return []any{result}, nil
		},
	}
}
