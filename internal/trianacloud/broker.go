package trianacloud

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/bp"
	"repro/internal/schema"
	"repro/internal/triana"
	"repro/internal/wfclock"
)

// Node is one cloud worker: it executes bundles one at a time, with
// MaxConcurrent of each bundle's tasks running simultaneously (the DART
// deployment: 1 core per instance, 4 concurrent Java threads).
type Node struct {
	Hostname string
	Site     string
	Clock    wfclock.Clock
	Appender triana.Appender
}

// BundleResult reports one finished bundle.
type BundleResult struct {
	Bundle    string  `json:"bundle"`
	Node      string  `json:"node"`
	WfUUID    string  `json:"wf_uuid"`
	Succeeded bool    `json:"succeeded"`
	Tasks     int     `json:"tasks"`
	Seconds   float64 `json:"seconds"` // virtual seconds of wall time
	Error     string  `json:"error,omitempty"`
}

// RunBundle executes one bundle synchronously on the node.
func (n *Node) RunBundle(ctx context.Context, b Bundle) BundleResult {
	res := BundleResult{Bundle: b.Name, Node: n.Hostname}
	clk := n.Clock
	if clk == nil {
		clk = wfclock.Real
	}
	var slots chan struct{}
	if b.MaxConcurrent > 0 {
		slots = make(chan struct{}, b.MaxConcurrent)
	}
	g, err := buildGraph(b, clk, slots)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	var log *triana.StampedeLog
	opts := triana.Options{Mode: triana.SingleStep, Clock: clk, Hostname: n.Hostname}
	if n.Appender != nil {
		log = triana.NewStampedeLog(n.Appender)
		log.ParentUUID = b.ParentUUID
		log.RootUUID = b.RootUUID
		log.Hostname = n.Hostname
		if n.Site != "" {
			log.Site = n.Site
		}
		opts.Listeners = []triana.Listener{log}
	}
	start := clk.Now()
	sched := triana.NewScheduler(g, opts)
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			sched.Stop()
		case <-stopWatch:
		}
	}()
	report, err := sched.Run(ctx)
	close(stopWatch)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.WfUUID = report.RunUUID
	res.Tasks = report.Completed
	res.Seconds = clk.Since(start).Seconds()
	res.Succeeded = report.Err == nil
	if report.Err != nil {
		res.Error = report.Err.Error()
	}
	// Tie the child run into the parent workflow's hierarchy.
	if n.Appender != nil && b.ParentUUID != "" && b.ParentJobID != "" {
		ev := bp.New(schema.MapSubwfJob, clk.Now()).
			Set(schema.AttrLevel, bp.LevelInfo).
			Set(schema.AttrXwfID, b.ParentUUID).
			Set(schema.AttrSubwfID, report.RunUUID).
			Set(schema.AttrJobID, b.ParentJobID).
			SetInt(schema.AttrJobInstID, 1)
		_ = n.Appender.Append(ev)
	}
	return res
}

// Broker accepts bundles over HTTP and dispatches them to its node pool:
// each node runs one bundle at a time, pulling the next from the queue
// when free.
type Broker struct {
	nodes []*Node
	queue chan Bundle
	srv   *http.Server
	ln    net.Listener

	mu       sync.Mutex
	results  []BundleResult
	accepted int
	done     chan struct{} // signalled on every completion
	wg       sync.WaitGroup
	cancel   context.CancelFunc
}

// NewBroker starts a broker listening on addr (":0" for ephemeral) with
// the given worker pool.
func NewBroker(addr string, nodes []*Node) (*Broker, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("trianacloud: broker needs at least one node")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	b := &Broker{
		nodes:  nodes,
		queue:  make(chan Bundle, 1024),
		ln:     ln,
		done:   make(chan struct{}, 4096),
		cancel: cancel,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /bundles", b.handleSubmit)
	mux.HandleFunc("GET /results", b.handleResults)
	mux.HandleFunc("GET /status", b.handleStatus)
	b.srv = &http.Server{Handler: mux}
	go b.srv.Serve(ln)
	for _, n := range nodes {
		b.wg.Add(1)
		go b.worker(ctx, n)
	}
	return b, nil
}

// URL returns the broker's base URL.
func (b *Broker) URL() string { return "http://" + b.ln.Addr().String() }

// Close stops accepting and shuts the workers down.
func (b *Broker) Close() error {
	b.cancel()
	close(b.queue)
	err := b.srv.Close()
	b.wg.Wait()
	return err
}

func (b *Broker) worker(ctx context.Context, n *Node) {
	defer b.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case bundle, ok := <-b.queue:
			if !ok {
				return
			}
			res := n.RunBundle(ctx, bundle)
			b.mu.Lock()
			b.results = append(b.results, res)
			b.mu.Unlock()
			select {
			case b.done <- struct{}{}:
			default:
			}
		}
	}
}

func (b *Broker) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 10<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	bundle, err := UnmarshalBundle(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	select {
	case b.queue <- bundle:
	default:
		http.Error(w, "queue full", http.StatusServiceUnavailable)
		return
	}
	b.mu.Lock()
	b.accepted++
	b.mu.Unlock()
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, `{"accepted":%q}`, bundle.Name)
}

func (b *Broker) handleResults(w http.ResponseWriter, r *http.Request) {
	b.mu.Lock()
	out := append([]BundleResult(nil), b.results...)
	b.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func (b *Broker) handleStatus(w http.ResponseWriter, r *http.Request) {
	b.mu.Lock()
	status := struct {
		Nodes    int `json:"nodes"`
		Accepted int `json:"accepted"`
		Finished int `json:"finished"`
		Queued   int `json:"queued"`
	}{len(b.nodes), b.accepted, len(b.results), len(b.queue)}
	b.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(status)
}

// Results returns a snapshot of finished bundles.
func (b *Broker) Results() []BundleResult {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]BundleResult(nil), b.results...)
}

// WaitFinished blocks until count bundles have finished or the context
// ends, returning the results so far.
func (b *Broker) WaitFinished(ctx context.Context, count int) ([]BundleResult, error) {
	for {
		b.mu.Lock()
		n := len(b.results)
		b.mu.Unlock()
		if n >= count {
			return b.Results(), nil
		}
		select {
		case <-ctx.Done():
			return b.Results(), ctx.Err()
		case <-b.done:
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Client submits bundles to a broker over HTTP, as the parent workflow's
// submission tasks do.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// Submit POSTs one bundle.
func (c *Client) Submit(ctx context.Context, bundle Bundle) error {
	data, err := bundle.Marshal()
	if err != nil {
		return err
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/bundles", bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("trianacloud: submit %s: %s: %s", bundle.Name, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// Status fetches the broker's status counters.
func (c *Client) Status(ctx context.Context) (nodes, accepted, finished, queued int, err error) {
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/status", nil)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer resp.Body.Close()
	var st struct {
		Nodes    int `json:"nodes"`
		Accepted int `json:"accepted"`
		Finished int `json:"finished"`
		Queued   int `json:"queued"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, 0, 0, 0, err
	}
	return st.Nodes, st.Accepted, st.Finished, st.Queued, nil
}
