package trianacloud

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/bp"
	"repro/internal/dart"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/triana"
	"repro/internal/wfclock"
)

var epoch = time.Date(2012, 3, 13, 12, 0, 0, 0, time.UTC)

func TestBundleMarshalRoundTrip(t *testing.T) {
	b := Bundle{
		Name:          "bundle-00",
		Commands:      []string{"java -jar dart.jar -shs -harmonics 5 -compression 0.40 -input audio_corpus"},
		ParentUUID:    "ea17e8ac-02ac-4909-b5e3-16e367392556",
		RootUUID:      "ea17e8ac-02ac-4909-b5e3-16e367392556",
		ParentJobID:   "submit-bundle-00",
		MaxConcurrent: 4,
	}
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != b.Name || len(back.Commands) != 1 || back.MaxConcurrent != 4 {
		t.Fatalf("round trip = %+v", back)
	}
	if _, err := UnmarshalBundle([]byte(`{"name":""}`)); err == nil {
		t.Error("nameless bundle accepted")
	}
	if _, err := UnmarshalBundle([]byte(`{"name":"x"}`)); err == nil {
		t.Error("commandless bundle accepted")
	}
	if _, err := UnmarshalBundle([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSplitBundles(t *testing.T) {
	cmds := make([]string, 306)
	chunks := SplitBundles(cmds, 16)
	if len(chunks) != 20 {
		t.Fatalf("chunks = %d, want 20 (the paper's bundle count)", len(chunks))
	}
	total := 0
	for i, c := range chunks {
		total += len(c)
		if i < 19 && len(c) != 16 {
			t.Errorf("chunk %d has %d", i, len(c))
		}
	}
	if total != 306 || len(chunks[19]) != 2 {
		t.Fatalf("total=%d last=%d", total, len(chunks[19]))
	}
	if got := SplitBundles(cmds, 0); len(got) != 1 {
		t.Errorf("per=0 chunks = %d", len(got))
	}
}

func TestNodeRunsBundle(t *testing.T) {
	clk := wfclock.NewScaled(epoch, 2000)
	app := &triana.CollectAppender{}
	node := &Node{Hostname: "trianaworker1", Site: "trianacloud", Clock: clk, Appender: app}
	cmds := make([]string, 4)
	for i, p := range dart.Sweep()[:4] {
		cmds[i] = p.Command()
	}
	res := node.RunBundle(context.Background(), Bundle{
		Name: "bundle-x", Commands: cmds, MaxConcurrent: 2,
	})
	if !res.Succeeded {
		t.Fatalf("bundle failed: %s", res.Error)
	}
	if res.Tasks != 6 { // prep + 4 exec + zipper
		t.Errorf("tasks = %d, want 6", res.Tasks)
	}
	if res.WfUUID == "" || res.Node != "trianaworker1" {
		t.Errorf("result = %+v", res)
	}
	// 4 execs of >=36s, 2 at a time => at least ~72 virtual seconds.
	if res.Seconds < 60 {
		t.Errorf("bundle took %.0f virtual seconds, implausibly fast", res.Seconds)
	}
	// Events carry the worker hostname.
	sawHost := false
	for _, ev := range app.Events() {
		if ev.Type == schema.HostInfo && ev.Get(schema.AttrHostname) == "trianaworker1" {
			sawHost = true
		}
	}
	if !sawHost {
		t.Error("no host.info with worker hostname")
	}
}

func TestBrokerHTTPFlow(t *testing.T) {
	clk := wfclock.NewScaled(epoch, 5000)
	app := &triana.CollectAppender{}
	nodes := []*Node{
		{Hostname: "w1", Clock: clk, Appender: app},
		{Hostname: "w2", Clock: clk, Appender: app},
	}
	broker, err := NewBroker("127.0.0.1:0", nodes)
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	client := &Client{BaseURL: broker.URL()}

	pts := dart.Sweep()
	for i := 0; i < 3; i++ {
		bundle := Bundle{
			Name:          fmt.Sprintf("bundle-%02d", i),
			Commands:      []string{pts[i].Command(), pts[i+3].Command()},
			MaxConcurrent: 2,
		}
		if err := client.Submit(context.Background(), bundle); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results, err := broker.WaitFinished(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	usedNodes := map[string]bool{}
	for _, r := range results {
		if !r.Succeeded {
			t.Errorf("bundle %s failed: %s", r.Bundle, r.Error)
		}
		usedNodes[r.Node] = true
	}
	if len(usedNodes) != 2 {
		t.Errorf("3 bundles on 2 nodes used %d nodes", len(usedNodes))
	}
	nodesN, accepted, finished, _, err := client.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if nodesN != 2 || accepted != 3 || finished != 3 {
		t.Errorf("status = %d %d %d", nodesN, accepted, finished)
	}
}

func TestBrokerRejectsBadBundle(t *testing.T) {
	broker, err := NewBroker("127.0.0.1:0", []*Node{{Hostname: "w1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	c := &Client{BaseURL: broker.URL()}
	if err := c.Submit(context.Background(), Bundle{Name: "x"}); err == nil {
		t.Error("empty bundle accepted by broker")
	}
}

// runDARTScaled executes a complete (scaled-down or full) DART experiment
// and loads all events into an archive.
func runDARTScaled(t *testing.T, commands []string, perBundle, nNodes int, scale float64) (*query.QI, *DARTResult) {
	t.Helper()
	clk := wfclock.NewScaled(epoch, scale)
	app := &triana.CollectAppender{}
	nodes := make([]*Node, nNodes)
	for i := range nodes {
		nodes[i] = &Node{
			Hostname: fmt.Sprintf("trianaworker%d", i+1),
			Site:     "trianacloud",
			Clock:    clk,
			Appender: app,
		}
	}
	broker, err := NewBroker("127.0.0.1:0", nodes)
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	cfg := DARTConfig{
		Commands:             commands,
		TasksPerBundle:       perBundle,
		MaxConcurrentPerNode: 4,
		SimulateOnly:         true,
		Broker:               &Client{BaseURL: broker.URL()},
		Appender:             app,
		Clock:                clk,
		Hostname:             "desktop",
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	result, err := RunDART(ctx, cfg, broker)
	if err != nil {
		t.Fatal(err)
	}

	a := archive.NewInMemory()
	for _, ev := range app.Events() {
		parsed, err := bp.Parse(ev.Format())
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Apply(parsed); err != nil {
			t.Fatalf("apply %s: %v", ev.Type, err)
		}
	}
	return query.New(a), result
}

func TestDARTSmallEndToEnd(t *testing.T) {
	cmds := make([]string, 12)
	for i, p := range dart.Sweep()[:12] {
		cmds[i] = p.Command()
	}
	q, result := runDARTScaled(t, cmds, 4, 2, 5000)
	if len(result.Bundles) != 3 {
		t.Fatalf("bundles = %d", len(result.Bundles))
	}
	root, err := q.WorkflowByUUID(result.RootUUID)
	if err != nil || root == nil {
		t.Fatalf("root: %v %v", root, err)
	}
	subs, _ := q.SubWorkflows(root.ID)
	if len(subs) != 3 {
		t.Fatalf("sub-workflows in archive = %d", len(subs))
	}
	summary, err := stats.Compute(q, root.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	// Root: 3 submit + 1 monitor; subs: 12 exec + 3 prep + 3 zipper.
	wantTasks := 12 + 3 + 3 + 3 + 1
	if summary.Tasks.Total != wantTasks || summary.Tasks.Succeeded != wantTasks {
		t.Errorf("tasks = %+v, want %d", summary.Tasks, wantTasks)
	}
	if summary.SubWorkflows.Succeeded != 3 {
		t.Errorf("subwf = %+v", summary.SubWorkflows)
	}
	if summary.Jobs.Failed != 0 || summary.Jobs.Retries != 0 {
		t.Errorf("jobs = %+v", summary.Jobs)
	}
	if summary.WallTime <= 0 || summary.CumulativeJobWallTime <= summary.WallTime {
		t.Errorf("walltime=%v cumulative=%v", summary.WallTime, summary.CumulativeJobWallTime)
	}
	// Breakdown: exec durations must sit in the paper's band.
	rows, _ := stats.Breakdown(q, root.ID, true)
	for _, r := range rows {
		if r.Type == "dart-exec" {
			if r.Min < 30 || r.Max > 90 {
				t.Errorf("exec durations [%.0f, %.0f] outside plausible band", r.Min, r.Max)
			}
			if r.Count != 12 {
				t.Errorf("exec count = %d", r.Count)
			}
		}
	}
	// Figure 7 series: one per bundle, all completing.
	series, err := stats.ProgressSeries(q, root.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("progress series = %d", len(series))
	}
}

func TestDARTWorkerQueueTimeVisible(t *testing.T) {
	// More bundles than nodes: later bundles must show submission->execute
	// delay at the job level (the remote queue time of Table IV).
	cmds := make([]string, 8)
	for i, p := range dart.Sweep()[:8] {
		cmds[i] = p.Command()
	}
	q, result := runDARTScaled(t, cmds, 2, 1, 5000) // 4 bundles, 1 node
	root, _ := q.WorkflowByUUID(result.RootUUID)
	subs, _ := q.SubWorkflows(root.ID)
	if len(subs) != 4 {
		t.Fatalf("subs = %d", len(subs))
	}
	// Bundle start times on one node must be serialized: total virtual
	// span >= sum of per-bundle spans (roughly).
	var totalSpan float64
	for _, b := range result.Bundles {
		totalSpan += b.Seconds
	}
	wall, _ := q.Walltime(root.ID)
	if wall.Seconds() < totalSpan*0.8 {
		t.Errorf("wall %.0fs but serialized bundles need %.0fs", wall.Seconds(), totalSpan)
	}
}
