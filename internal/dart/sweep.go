package dart

import (
	"fmt"
	"strconv"
	"strings"
)

// The DART experiment sweeps the SHS parameter space with 306 runs (the
// paper's input file lists 306 command lines). The sweep here crosses 17
// harmonic counts with 18 compression factors: 17 × 18 = 306 points, the
// same cardinality with the same two head-line knobs the SHS algorithm
// exposes.

// SweepHarmonics and SweepCompressions define the grid.
var (
	SweepHarmonics    = harmonicsRange(1, 17) // 1..17
	SweepCompressions = compressionRange(18)  // 0.05, 0.10, ... 0.90
)

func harmonicsRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for h := lo; h <= hi; h++ {
		out = append(out, h)
	}
	return out
}

func compressionRange(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.05 * float64(i+1)
	}
	return out
}

// SweepPoint is one execution of the DART experiment.
type SweepPoint struct {
	Index       int
	Harmonics   int
	Compression float64
}

// Params returns the SHS parameters for this point.
func (p SweepPoint) Params() SHSParams {
	return SHSParams{NumHarmonics: p.Harmonics, Compression: p.Compression}.Defaults()
}

// Command renders the point as the command-line string format the
// workflow input file carries (one line per execution).
func (p SweepPoint) Command() string {
	return fmt.Sprintf("java -jar dart.jar -shs -harmonics %d -compression %.2f -input audio_corpus", p.Harmonics, p.Compression)
}

// ParseCommand recovers a SweepPoint from its command line.
func ParseCommand(line string) (SweepPoint, error) {
	fields := strings.Fields(line)
	var p SweepPoint
	sawH, sawC := false, false
	for i := 0; i < len(fields)-1; i++ {
		switch fields[i] {
		case "-harmonics":
			h, err := strconv.Atoi(fields[i+1])
			if err != nil {
				return p, fmt.Errorf("dart: bad -harmonics in %q: %v", line, err)
			}
			p.Harmonics = h
			sawH = true
		case "-compression":
			c, err := strconv.ParseFloat(fields[i+1], 64)
			if err != nil {
				return p, fmt.Errorf("dart: bad -compression in %q: %v", line, err)
			}
			p.Compression = c
			sawC = true
		}
	}
	if !sawH || !sawC {
		return p, fmt.Errorf("dart: command %q lacks sweep parameters", line)
	}
	return p, nil
}

// Sweep enumerates all 306 sweep points in input-file order.
func Sweep() []SweepPoint {
	out := make([]SweepPoint, 0, len(SweepHarmonics)*len(SweepCompressions))
	i := 0
	for _, h := range SweepHarmonics {
		for _, c := range SweepCompressions {
			out = append(out, SweepPoint{Index: i, Harmonics: h, Compression: c})
			i++
		}
	}
	return out
}

// InputFile renders the sweep as the newline-separated command list that
// is the parent workflow's single input file in the paper.
func InputFile() string {
	pts := Sweep()
	var b strings.Builder
	for _, p := range pts {
		b.WriteString(p.Command())
		b.WriteByte('\n')
	}
	return b.String()
}

// CostSeconds is the calibrated runtime model for one sweep point on a
// TrianaCloud worker: the paper's exec tasks take roughly 36–75 seconds,
// growing with the number of harmonics each candidate must sum. The model
// is base + per-harmonic cost, clamped to the observed band.
func (p SweepPoint) CostSeconds() float64 {
	cost := 32.0 + 2.6*float64(p.Harmonics) + 4.0*p.Compression
	if cost < 36 {
		cost = 36
	}
	if cost > 75 {
		cost = 75
	}
	return cost
}

// RunResult is what one DART execution writes to its output file.
type RunResult struct {
	Point    SweepPoint
	Accuracy float64
	Frames   int
}

// Run executes one sweep point against the evaluation corpus: a set of
// synthesized tones (including missing-fundamental cases) with known
// pitch. It returns the measured detection accuracy. This is the real
// work each exec task performs in the reproduced workflow.
func Run(p SweepPoint) (RunResult, error) {
	params := p.Params()
	corpus := []struct {
		sig   Signal
		truth float64
	}{
		{Synthesize(ToneSpec{F0: 220, Harmonics: 6, Decay: 0.7, Noise: 0.1, Seconds: 0.5, Seed: 1}), 220},
		{Synthesize(ToneSpec{F0: 440, Harmonics: 5, Decay: 0.6, Noise: 0.2, Seconds: 0.5, Seed: 2}), 440},
		{Synthesize(ToneSpec{F0: 110, Harmonics: 8, Decay: 0.8, Noise: 0.1, Seconds: 0.5, Seed: 3}), 110},
		{MissingFundamental(ToneSpec{F0: 330, Harmonics: 6, Decay: 0.7, Seconds: 0.5}), 330},
	}
	var res RunResult
	res.Point = p
	var accSum float64
	for _, c := range corpus {
		track, err := DetectPitch(c.sig, params)
		if err != nil {
			return res, err
		}
		res.Frames += len(track.Frames)
		accSum += Accuracy(track, c.truth, 0.05)
	}
	res.Accuracy = accSum / float64(len(corpus))
	return res, nil
}
