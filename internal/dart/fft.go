// Package dart implements the DART Music Information Retrieval workload
// the paper's experiment runs (§VI): Sub-Harmonic Summation (SHS) pitch
// detection over audio, the 306-point parameter sweep that drives the
// Triana workflow, and a calibrated runtime cost model so the sweep's
// virtual-clock execution reproduces the 36–75 second task durations of
// Tables II–IV.
//
// The paper distributed a DART JAR and audio corpus we do not have; the
// detector here is a from-scratch implementation of the same algorithm
// run on synthesized harmonic signals, so every "exec" task in the
// reproduced workflow performs real signal-processing work.
package dart

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. The length of x must be a power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("dart: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, step*float64(k)))
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	return nil
}

// Spectrum returns the magnitude spectrum of real samples, windowed with
// a Hann window and zero-padded to the next power of two. Only the first
// half (up to Nyquist) is returned.
func Spectrum(samples []float64) ([]float64, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("dart: empty frame")
	}
	n := 1
	for n < len(samples) {
		n <<= 1
	}
	buf := make([]complex128, n)
	for i, s := range samples {
		// Hann window tapers frame edges to reduce spectral leakage.
		w := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(len(samples)-1)))
		if len(samples) == 1 {
			w = 1
		}
		buf[i] = complex(s*w, 0)
	}
	if err := FFT(buf); err != nil {
		return nil, err
	}
	mag := make([]float64, n/2)
	for i := range mag {
		mag[i] = cmplx.Abs(buf[i])
	}
	return mag, nil
}
