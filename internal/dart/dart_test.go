package dart

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"
)

func TestFFTKnownTransform(t *testing.T) {
	// DFT of [1,0,0,0] is [1,1,1,1].
	x := []complex128{1, 0, 0, 0}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSineProducesPeak(t *testing.T) {
	const n = 1024
	const rate = 8000.0
	const f = 500.0
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(2*math.Pi*f*float64(i)/rate), 0)
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	peak, peakBin := 0.0, 0
	for i := 0; i < n/2; i++ {
		if m := cmplx.Abs(x[i]); m > peak {
			peak, peakBin = m, i
		}
	}
	wantBin := int(f / rate * n)
	if peakBin < wantBin-1 || peakBin > wantBin+1 {
		t.Fatalf("peak at bin %d, want ~%d", peakBin, wantBin)
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	const n = 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(0.3*float64(i))+0.5*math.Cos(1.7*float64(i)), 0)
	}
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / n
			sum += x[j] * cmplx.Exp(complex(0, angle))
		}
		want[k] = sum
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for k := range x {
		if cmplx.Abs(x[k]-want[k]) > 1e-9 {
			t.Fatalf("bin %d: fft %v vs dft %v", k, x[k], want[k])
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 12, 1000} {
		if err := FFT(make([]complex128, n)); err == nil {
			t.Errorf("FFT accepted length %d", n)
		}
	}
}

func TestSpectrumErrors(t *testing.T) {
	if _, err := Spectrum(nil); err == nil {
		t.Error("empty frame accepted")
	}
}

func TestDetectPitchPureTones(t *testing.T) {
	for _, f0 := range []float64{110, 220, 440, 880} {
		sig := Synthesize(ToneSpec{F0: f0, Harmonics: 5, Decay: 0.7, Seconds: 0.5, Seed: 42})
		track, err := DetectPitch(sig, SHSParams{})
		if err != nil {
			t.Fatalf("f0=%v: %v", f0, err)
		}
		got := track.Median()
		if math.Abs(got-f0)/f0 > 0.03 {
			t.Errorf("f0=%v: detected %v", f0, got)
		}
	}
}

func TestDetectPitchMissingFundamental(t *testing.T) {
	// SHS's defining property: recovering the pitch when the fundamental
	// is absent from the spectrum.
	sig := MissingFundamental(ToneSpec{F0: 330, Harmonics: 6, Decay: 0.8, Seconds: 0.5})
	track, err := DetectPitch(sig, SHSParams{NumHarmonics: 8, Compression: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	got := track.Median()
	if math.Abs(got-330)/330 > 0.05 {
		t.Errorf("missing fundamental: detected %v, want ~330", got)
	}
}

func TestDetectPitchNoisy(t *testing.T) {
	sig := Synthesize(ToneSpec{F0: 220, Harmonics: 6, Decay: 0.7, Noise: 0.5, Seconds: 0.5, Seed: 7})
	track, err := DetectPitch(sig, SHSParams{})
	if err != nil {
		t.Fatal(err)
	}
	got := track.Median()
	if math.Abs(got-220)/220 > 0.05 {
		t.Errorf("noisy tone: detected %v", got)
	}
}

func TestDetectPitchErrors(t *testing.T) {
	short := Signal{Rate: 8000, Samples: make([]float64, 10)}
	if _, err := DetectPitch(short, SHSParams{}); err == nil {
		t.Error("short signal accepted")
	}
	sig := Synthesize(ToneSpec{F0: 220, Seconds: 0.3})
	if _, err := DetectPitch(sig, SHSParams{MinF0: 500, MaxF0: 100}); err == nil {
		t.Error("inverted F0 range accepted")
	}
}

func TestAccuracyMetric(t *testing.T) {
	track := PitchTrack{Frames: []float64{220, 221, 219, 0, 440}}
	// 3 of 4 voiced frames within 5% of 220.
	if got := Accuracy(track, 220, 0.05); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("accuracy = %v, want 0.75", got)
	}
	if Accuracy(track, 0, 0.05) != 0 {
		t.Error("zero truth accepted")
	}
	if Accuracy(PitchTrack{Frames: []float64{0, 0}}, 220, 0.05) != 0 {
		t.Error("unvoiced track nonzero")
	}
}

func TestSweepHas306Points(t *testing.T) {
	pts := Sweep()
	if len(pts) != 306 {
		t.Fatalf("sweep = %d points, want 306", len(pts))
	}
	seen := map[[2]int]bool{}
	for i, p := range pts {
		if p.Index != i {
			t.Fatalf("point %d has index %d", i, p.Index)
		}
		key := [2]int{p.Harmonics, int(p.Compression * 100)}
		if seen[key] {
			t.Fatalf("duplicate point %+v", p)
		}
		seen[key] = true
	}
	lines := strings.Split(strings.TrimSpace(InputFile()), "\n")
	if len(lines) != 306 {
		t.Fatalf("input file has %d lines", len(lines))
	}
}

func TestCommandRoundTrip(t *testing.T) {
	for _, p := range Sweep()[:20] {
		back, err := ParseCommand(p.Command())
		if err != nil {
			t.Fatal(err)
		}
		if back.Harmonics != p.Harmonics || math.Abs(back.Compression-p.Compression) > 0.005 {
			t.Fatalf("round trip %+v -> %+v", p, back)
		}
	}
	if _, err := ParseCommand("java -jar dart.jar"); err == nil {
		t.Error("command without params accepted")
	}
}

func TestCostModelInPaperBand(t *testing.T) {
	for _, p := range Sweep() {
		c := p.CostSeconds()
		if c < 36 || c > 75 {
			t.Fatalf("cost %v outside the paper's 36-75s band for %+v", c, p)
		}
	}
	// More harmonics must not be cheaper.
	lo := SweepPoint{Harmonics: 2, Compression: 0.5}.CostSeconds()
	hi := SweepPoint{Harmonics: 16, Compression: 0.5}.CostSeconds()
	if hi < lo {
		t.Fatalf("cost model not monotone in harmonics: %v vs %v", lo, hi)
	}
}

func TestRunProducesAccuracy(t *testing.T) {
	// A reasonable operating point should detect well on the corpus.
	res, err := Run(SweepPoint{Harmonics: 8, Compression: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.6 {
		t.Errorf("accuracy = %v at a good operating point", res.Accuracy)
	}
	if res.Frames == 0 {
		t.Error("no frames analyzed")
	}
	// A degenerate operating point (single harmonic) must do worse on the
	// missing-fundamental corpus than the good one.
	bad, err := Run(SweepPoint{Harmonics: 1, Compression: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Accuracy > res.Accuracy {
		t.Errorf("1-harmonic sweep point (%v) beat 8-harmonic (%v)", bad.Accuracy, res.Accuracy)
	}
}
