package dart

import (
	"fmt"
	"math"
)

// SHSParams are the Sub-Harmonic Summation parameters the DART experiment
// sweeps to find optimal settings.
type SHSParams struct {
	// NumHarmonics is how many harmonics contribute to each candidate's
	// score.
	NumHarmonics int
	// Compression is the per-harmonic weight decay h^(n-1) factor: the
	// n-th harmonic contributes Compression^(n-1) of its magnitude.
	Compression float64
	// FrameSize is the analysis window in samples (rounded up to a power
	// of two internally).
	FrameSize int
	// HopSize is the stride between frames; defaults to FrameSize/2.
	HopSize int
	// MinF0 and MaxF0 bound the pitch search range in Hz.
	MinF0, MaxF0 float64
}

// Defaults fills unset fields with the DART-like defaults.
func (p SHSParams) Defaults() SHSParams {
	if p.NumHarmonics == 0 {
		p.NumHarmonics = 5
	}
	if p.Compression == 0 {
		p.Compression = 0.8
	}
	if p.FrameSize == 0 {
		p.FrameSize = 1024
	}
	if p.HopSize == 0 {
		p.HopSize = p.FrameSize / 2
	}
	if p.MinF0 == 0 {
		p.MinF0 = 60
	}
	if p.MaxF0 == 0 {
		p.MaxF0 = 1500
	}
	return p
}

// PitchTrack is the per-frame pitch estimate sequence.
type PitchTrack struct {
	Frames []float64 // estimated F0 per frame, Hz; 0 for unvoiced/empty
	Params SHSParams
}

// Median returns the median voiced pitch estimate, 0 when no frame was
// voiced.
func (t PitchTrack) Median() float64 {
	voiced := make([]float64, 0, len(t.Frames))
	for _, f := range t.Frames {
		if f > 0 {
			voiced = append(voiced, f)
		}
	}
	if len(voiced) == 0 {
		return 0
	}
	// Insertion sort: frames counts are small.
	for i := 1; i < len(voiced); i++ {
		for j := i; j > 0 && voiced[j] < voiced[j-1]; j-- {
			voiced[j], voiced[j-1] = voiced[j-1], voiced[j]
		}
	}
	return voiced[len(voiced)/2]
}

// DetectPitch runs sub-harmonic summation over the signal and returns the
// per-frame pitch track. For each frame's magnitude spectrum, every
// candidate F0 bin is scored as the compressed sum of the magnitudes at
// its harmonic multiples; the best-scoring candidate wins the frame.
func DetectPitch(s Signal, params SHSParams) (PitchTrack, error) {
	p := params.Defaults()
	if len(s.Samples) < p.FrameSize {
		return PitchTrack{}, fmt.Errorf("dart: signal shorter (%d) than frame (%d)", len(s.Samples), p.FrameSize)
	}
	if p.MinF0 <= 0 || p.MaxF0 <= p.MinF0 {
		return PitchTrack{}, fmt.Errorf("dart: bad F0 range [%g, %g]", p.MinF0, p.MaxF0)
	}
	track := PitchTrack{Params: p}
	for off := 0; off+p.FrameSize <= len(s.Samples); off += p.HopSize {
		frame := s.Samples[off : off+p.FrameSize]
		mag, err := Spectrum(frame)
		if err != nil {
			return PitchTrack{}, err
		}
		f0 := shsFrame(mag, s.Rate, p)
		track.Frames = append(track.Frames, f0)
	}
	if len(track.Frames) == 0 {
		return PitchTrack{}, fmt.Errorf("dart: no frames produced")
	}
	return track, nil
}

// shsFrame scores candidate fundamentals over one magnitude spectrum.
func shsFrame(mag []float64, rate int, p SHSParams) float64 {
	nfft := len(mag) * 2
	binHz := float64(rate) / float64(nfft)
	minBin := int(p.MinF0 / binHz)
	if minBin < 1 {
		minBin = 1
	}
	maxBin := int(p.MaxF0 / binHz)
	if maxBin >= len(mag) {
		maxBin = len(mag) - 1
	}
	if maxBin <= minBin {
		return 0
	}
	scores := make([]float64, maxBin+1)
	var bestScore float64
	bestBin := 0
	for b := minBin; b <= maxBin; b++ {
		var score float64
		w := 1.0
		for h := 1; h <= p.NumHarmonics; h++ {
			hb := b * h
			if hb >= len(mag) {
				break
			}
			score += w * mag[hb]
			w *= p.Compression
		}
		scores[b] = score
		if score > bestScore {
			bestScore, bestBin = score, b
		}
	}
	// Voicing gate: a frame whose best score is indistinguishable from
	// the spectrum's mean energy is unvoiced.
	var mean float64
	for _, m := range mag {
		mean += m
	}
	mean /= float64(len(mag))
	if bestScore < 4*mean {
		return 0
	}
	// Parabolic interpolation on the SHS score around the winning bin
	// refines the estimate below bin resolution. The offset is clamped to
	// half a bin: beyond that the parabola model is meaningless.
	f := float64(bestBin)
	if bestBin > minBin && bestBin < maxBin {
		a, b, c := scores[bestBin-1], scores[bestBin], scores[bestBin+1]
		denom := a - 2*b + c
		if math.Abs(denom) > 1e-12 {
			off := 0.5 * (a - c) / denom
			if off > 0.5 {
				off = 0.5
			}
			if off < -0.5 {
				off = -0.5
			}
			f += off
		}
	}
	return f * binHz
}

// Accuracy scores a pitch track against a known ground-truth F0: the
// fraction of voiced frames whose estimate is within tol (relative). This
// is the metric the DART sweep optimises over its parameter space.
func Accuracy(track PitchTrack, truth float64, tol float64) float64 {
	if truth <= 0 || len(track.Frames) == 0 {
		return 0
	}
	good, voiced := 0, 0
	for _, f := range track.Frames {
		if f <= 0 {
			continue
		}
		voiced++
		if math.Abs(f-truth)/truth <= tol {
			good++
		}
	}
	if voiced == 0 {
		return 0
	}
	return float64(good) / float64(voiced)
}
