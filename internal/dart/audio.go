package dart

import (
	"math"
	"math/rand"
)

// Signal is mono PCM audio with a sample rate.
type Signal struct {
	Rate    int
	Samples []float64
}

// ToneSpec describes one synthesized note: a fundamental with decaying
// harmonics plus optional noise — the stand-in for the paper's audio
// corpus.
type ToneSpec struct {
	F0        float64 // fundamental frequency, Hz
	Harmonics int     // number of harmonics including the fundamental
	Decay     float64 // amplitude ratio between successive harmonics (0..1)
	Noise     float64 // white-noise amplitude relative to the fundamental
	Seconds   float64
	Rate      int
	Seed      int64
}

// Synthesize renders the tone.
func Synthesize(spec ToneSpec) Signal {
	if spec.Rate == 0 {
		spec.Rate = 8000
	}
	if spec.Harmonics < 1 {
		spec.Harmonics = 1
	}
	if spec.Seconds == 0 {
		spec.Seconds = 1
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	n := int(spec.Seconds * float64(spec.Rate))
	s := Signal{Rate: spec.Rate, Samples: make([]float64, n)}
	for i := 0; i < n; i++ {
		t := float64(i) / float64(spec.Rate)
		var v float64
		amp := 1.0
		for h := 1; h <= spec.Harmonics; h++ {
			v += amp * math.Sin(2*math.Pi*spec.F0*float64(h)*t)
			amp *= spec.Decay
		}
		if spec.Noise > 0 {
			v += spec.Noise * (2*rng.Float64() - 1)
		}
		s.Samples[i] = v
	}
	return s
}

// MissingFundamental renders a tone whose fundamental component is
// removed, the classic case where naive peak-picking fails but
// sub-harmonic summation still recovers the pitch.
func MissingFundamental(spec ToneSpec) Signal {
	if spec.Rate == 0 {
		spec.Rate = 8000
	}
	if spec.Harmonics < 3 {
		spec.Harmonics = 3
	}
	if spec.Seconds == 0 {
		spec.Seconds = 1
	}
	n := int(spec.Seconds * float64(spec.Rate))
	s := Signal{Rate: spec.Rate, Samples: make([]float64, n)}
	for i := 0; i < n; i++ {
		t := float64(i) / float64(spec.Rate)
		var v float64
		amp := spec.Decay // start at the 2nd harmonic's amplitude
		for h := 2; h <= spec.Harmonics; h++ {
			v += amp * math.Sin(2*math.Pi*spec.F0*float64(h)*t)
			amp *= spec.Decay
		}
		s.Samples[i] = v
	}
	return s
}
