package analyzer

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/bp"
	"repro/internal/loader"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/synth"
)

func load(t *testing.T, cfg synth.Config) (*query.QI, *synth.Trace, int64) {
	t.Helper()
	tr := synth.Generate(cfg)
	a := archive.NewInMemory()
	l, err := loader.New(a, loader.Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadReader(&buf); err != nil {
		t.Fatal(err)
	}
	q := query.New(a)
	wf, err := q.WorkflowByUUID(tr.RootUUID)
	if err != nil || wf == nil {
		t.Fatalf("root missing: %v", err)
	}
	return q, tr, wf.ID
}

func TestAnalyzeHealthyWorkflow(t *testing.T) {
	q, _, root := load(t, synth.Config{Seed: 1, Jobs: 12})
	r, err := Analyze(q, root, true)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Healthy() {
		t.Fatalf("healthy workflow reported unhealthy: %+v", r)
	}
	if r.Total != 12 || r.Succeeded != 12 {
		t.Errorf("counts: %+v", r)
	}
	if len(r.FailedJobs) != 0 {
		t.Errorf("failed jobs on clean run: %v", r.FailedJobs)
	}
}

func TestAnalyzeFailuresDetail(t *testing.T) {
	q, tr, root := load(t, synth.Config{Seed: 11, Jobs: 40, FailureRate: 0.4, MaxRetries: 1})
	if tr.FailedJobs == 0 {
		t.Skip("no failures with this seed")
	}
	r, err := Analyze(q, root, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed != tr.FailedJobs {
		t.Errorf("failed = %d, trace %d", r.Failed, tr.FailedJobs)
	}
	if len(r.FailedJobs) != r.Failed {
		t.Errorf("detail blocks = %d, failed = %d", len(r.FailedJobs), r.Failed)
	}
	for _, fj := range r.FailedJobs {
		if fj.Exitcode == 0 {
			t.Errorf("%s: exitcode 0 in failure block", fj.ExecJobID)
		}
		if fj.LastState != archive.JSFailure {
			t.Errorf("%s: last state %q", fj.ExecJobID, fj.LastState)
		}
		if fj.StderrText == "" {
			t.Errorf("%s: captured stderr missing", fj.ExecJobID)
		}
		if fj.LastStateTime.IsZero() {
			t.Errorf("%s: no state timestamp", fj.ExecJobID)
		}
	}
	text := r.Render()
	for _, want := range []string{"# jobs failed", "captured stderr", "exitcode"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestAnalyzeDrillDownOnlySurfacesFailingBranches(t *testing.T) {
	// A hierarchy with failures somewhere in the sub-workflows: the root
	// report should include only failing branches as sub-reports.
	q, tr, root := load(t, synth.Config{Seed: 13, Jobs: 60, SubWorkflows: 6, FailureRate: 0.25, MaxRetries: 0})
	r, err := Analyze(q, root, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.FailedJobs == 0 {
		t.Skip("no failures with this seed")
	}
	if len(r.SubReports) == 0 {
		t.Fatal("failures exist but no sub-report surfaced")
	}
	totalSubFailures := 0
	for _, sr := range r.SubReports {
		if sr.Failed == 0 && sr.Incomplete == 0 {
			t.Errorf("healthy sub-workflow %s surfaced", sr.Workflow.UUID)
		}
		totalSubFailures += sr.Failed
	}
	if totalSubFailures != tr.FailedJobs {
		t.Errorf("sub-report failures = %d, trace = %d", totalSubFailures, tr.FailedJobs)
	}
	// The root's own submission jobs all succeeded.
	if r.Failed != 0 {
		t.Errorf("root-level failed = %d", r.Failed)
	}
}

func TestAnalyzeCleanHierarchyHasNoSubReports(t *testing.T) {
	q, _, root := load(t, synth.Config{Seed: 2, Jobs: 24, SubWorkflows: 3})
	r, err := Analyze(q, root, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SubReports) != 0 {
		t.Errorf("clean hierarchy surfaced %d sub-reports", len(r.SubReports))
	}
	if !r.Healthy() {
		t.Error("clean hierarchy unhealthy")
	}
}

func TestAnalyzeHeldJobs(t *testing.T) {
	// A job paused mid-run (held.start without a release): the analyzer
	// must count it as incomplete and held.
	a := archive.NewInMemory()
	wf := "aaaaaaaa-bbbb-4ccc-8ddd-eeeeeeeeeeee"
	t0 := time.Date(2012, 3, 13, 12, 0, 0, 0, time.UTC)
	ji := func(typ string, sec int) *bp.Event {
		return bp.New(typ, t0.Add(time.Duration(sec)*time.Second)).
			Set(schema.AttrXwfID, wf).Set(schema.AttrJobID, "stuck").SetInt(schema.AttrJobInstID, 1)
	}
	for _, ev := range []*bp.Event{
		bp.New(schema.WfPlan, t0).Set(schema.AttrXwfID, wf).
			Set("submit.hostname", "desktop").Set(schema.AttrRootXwf, wf),
		ji(schema.SubmitStart, 1),
		ji(schema.HeldStart, 2),
	} {
		if err := a.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	q := query.New(a)
	wfRow, _ := q.WorkflowByUUID(wf)
	r, err := Analyze(q, wfRow.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Incomplete != 1 || r.Held != 1 {
		t.Fatalf("report = %+v, want 1 incomplete, 1 held", r)
	}
	if r.Healthy() {
		t.Error("held workflow reported healthy")
	}
	text := r.Render()
	if !strings.Contains(text, "held") {
		t.Errorf("render missing held count:\n%s", text)
	}
}

func TestAnalyzeUnknownWorkflow(t *testing.T) {
	q, _, _ := load(t, synth.Config{Seed: 1, Jobs: 2})
	if _, err := Analyze(q, 99999, false); err == nil {
		t.Fatal("analyze of missing workflow succeeded")
	}
}
