// Package analyzer implements stampede_analyzer, the troubleshooting tool
// of the paper's §VII-B: a summary of how many jobs succeeded and failed,
// detail for every failed job (last known state, output/error files, and
// any captured stdout/stderr), and interactive-style drill-down through
// the sub-workflow hierarchy so failures in layered workflows can be
// localised level by level.
package analyzer

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/query"
)

// FailedJob is the per-failure detail block the analyzer prints.
type FailedJob struct {
	ExecJobID     string
	Tries         int64
	LastState     string
	LastStateTime time.Time
	Exitcode      int64
	Site          string
	Host          string
	StdoutFile    string
	StderrFile    string
	StdoutText    string
	StderrText    string
}

// Report is the analyzer's result for one workflow, with nested reports
// for failed or incomplete sub-workflows when drilling down.
type Report struct {
	Workflow   query.Workflow
	Total      int
	Succeeded  int
	Failed     int
	Incomplete int
	Held       int
	FailedJobs []FailedJob
	SubReports []*Report
}

// Analyze inspects a workflow. With recurse set it descends into every
// sub-workflow that has failures or unfinished jobs, mirroring how the
// interactive tool lets the user drill down the hierarchy.
func Analyze(q *query.QI, wfID int64, recurse bool) (*Report, error) {
	// One snapshot covers the whole report, recursion included: Snapshot on
	// the pinned QI the recursive calls receive is a no-op.
	q, done := q.Snapshot()
	defer done()
	wf, err := q.Workflow(wfID)
	if err != nil {
		return nil, err
	}
	r := &Report{Workflow: *wf}
	jobs, err := q.Jobs(wfID)
	if err != nil {
		return nil, err
	}
	subwfByJob := map[int64]string{}
	for _, j := range jobs {
		r.Total++
		insts, err := q.JobInstances(j.ID)
		if err != nil {
			return nil, err
		}
		if len(insts) == 0 {
			r.Incomplete++
			continue
		}
		last := insts[len(insts)-1]
		if last.SubwfUUID != "" {
			subwfByJob[j.ID] = last.SubwfUUID
		}
		states, err := q.JobStates(last.ID)
		if err != nil {
			return nil, err
		}
		var lastState query.StateRecord
		if len(states) > 0 {
			lastState = states[len(states)-1]
		}
		switch {
		case !last.HasExitcode:
			r.Incomplete++
			if lastState.State == "JOB_HELD" {
				r.Held++
			}
		case last.Exitcode == 0:
			r.Succeeded++
		default:
			r.Failed++
			fj := FailedJob{
				ExecJobID:     j.ExecJobID,
				Tries:         last.SubmitSeq,
				Exitcode:      last.Exitcode,
				Site:          last.Site,
				Host:          last.Hostname,
				StdoutFile:    last.StdoutFile,
				StderrFile:    last.StderrFile,
				StdoutText:    last.StdoutText,
				StderrText:    last.StderrText,
				LastState:     lastState.State,
				LastStateTime: lastState.Timestamp,
			}
			r.FailedJobs = append(r.FailedJobs, fj)
		}
	}
	if recurse {
		subs, err := q.SubWorkflows(wfID)
		if err != nil {
			return nil, err
		}
		for _, sub := range subs {
			sr, err := Analyze(q, sub.ID, true)
			if err != nil {
				return nil, err
			}
			// The top level lists everything; deeper levels are retained
			// only when something needs attention, as the interactive
			// tool surfaces only failing branches.
			if sr.Failed > 0 || sr.Incomplete > 0 || len(sr.SubReports) > 0 {
				r.SubReports = append(r.SubReports, sr)
			}
		}
	}
	return r, nil
}

// Healthy reports whether the workflow and its analyzed descendants have
// no failures and no unfinished jobs.
func (r *Report) Healthy() bool {
	return r.Failed == 0 && r.Incomplete == 0 && len(r.SubReports) == 0
}

// Render formats the report in the analyzer's console style.
func (r *Report) Render() string {
	var b strings.Builder
	r.render(&b, 0)
	return b.String()
}

func (r *Report) render(b *strings.Builder, depth int) {
	ind := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s************************************\n", ind)
	fmt.Fprintf(b, "%s Workflow %s", ind, r.Workflow.UUID)
	if r.Workflow.DaxLabel != "" {
		fmt.Fprintf(b, " (%s)", r.Workflow.DaxLabel)
	}
	b.WriteString("\n")
	fmt.Fprintf(b, "%s Total jobs       : %4d\n", ind, r.Total)
	fmt.Fprintf(b, "%s # jobs succeeded : %4d\n", ind, r.Succeeded)
	fmt.Fprintf(b, "%s # jobs failed    : %4d\n", ind, r.Failed)
	fmt.Fprintf(b, "%s # jobs incomplete: %4d\n", ind, r.Incomplete)
	if r.Held > 0 {
		fmt.Fprintf(b, "%s # jobs held      : %4d\n", ind, r.Held)
	}
	for _, fj := range r.FailedJobs {
		fmt.Fprintf(b, "%s ---- failed job %s ----\n", ind, fj.ExecJobID)
		fmt.Fprintf(b, "%s   last state: %s at %s\n", ind, fj.LastState, fj.LastStateTime.Format(time.RFC3339))
		fmt.Fprintf(b, "%s   exitcode  : %d (try %d)\n", ind, fj.Exitcode, fj.Tries)
		if fj.Host != "" {
			fmt.Fprintf(b, "%s   ran on    : %s (site %s)\n", ind, fj.Host, fj.Site)
		}
		if fj.StdoutFile != "" {
			fmt.Fprintf(b, "%s   stdout    : %s\n", ind, fj.StdoutFile)
		}
		if fj.StderrFile != "" {
			fmt.Fprintf(b, "%s   stderr    : %s\n", ind, fj.StderrFile)
		}
		if fj.StdoutText != "" {
			fmt.Fprintf(b, "%s   captured stdout:\n%s\n", ind, indentText(fj.StdoutText, ind+"     "))
		}
		if fj.StderrText != "" {
			fmt.Fprintf(b, "%s   captured stderr:\n%s\n", ind, indentText(fj.StderrText, ind+"     "))
		}
	}
	for _, sr := range r.SubReports {
		sr.render(b, depth+1)
	}
}

func indentText(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
