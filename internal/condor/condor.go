// Package condor simulates the Condor scheduling substrate Pegasus
// submits to: a pool of sites, each with hosts exposing execution slots,
// a schedd that queues jobs FIFO per site, and a negotiator cycle that
// introduces the matchmaking latency real pools exhibit. Jobs carry a
// modeled duration and exit code (the workload model is the caller's);
// the pool contributes queue delays, host placement and lifecycle events
// — exactly the signals Stampede's job-level statistics (queue time,
// runtime, host) are built from.
package condor

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/wfclock"
)

// HostSpec describes one execution host.
type HostSpec struct {
	Hostname string
	IP       string
	Slots    int
}

// Site is a named resource with hosts.
type Site struct {
	Name  string
	Hosts []HostSpec
}

// JobSpec is one submission: what to run, where, for how long, and with
// what outcome. Duration is in the pool clock's time.
type JobSpec struct {
	ID         string
	Executable string
	Args       string
	Site       string
	Duration   time.Duration
	ExitCode   int
}

// EventType enumerates job lifecycle events, in Condor log vocabulary.
type EventType int

const (
	EventSubmit EventType = iota
	EventExecute
	EventTerminate
)

func (t EventType) String() string {
	switch t {
	case EventSubmit:
		return "SUBMIT"
	case EventExecute:
		return "EXECUTE"
	case EventTerminate:
		return "JOB_TERMINATED"
	}
	return "UNKNOWN"
}

// Event is one job lifecycle notification.
type Event struct {
	Type     EventType
	JobID    string
	Time     time.Time
	Site     string
	Hostname string
	IP       string
	ExitCode int
}

// Handler receives events; it is called from pool goroutines and must be
// safe for concurrent use.
type Handler func(Event)

// Pool is the simulated Condor pool.
type Pool struct {
	clock wfclock.Clock
	// NegotiationDelay models the matchmaking cycle: the minimum time a
	// job waits in the queue even when slots are idle.
	negotiationDelay time.Duration

	mu      sync.Mutex
	sites   map[string]*siteState
	handler Handler
	closed  bool
	wg      sync.WaitGroup
}

type siteState struct {
	site  Site
	queue chan *queuedJob
}

type queuedJob struct {
	spec JobSpec
	done chan Event // delivers the terminate event to waiters
}

// NewPool builds a pool over the sites. The handler may be nil.
func NewPool(clock wfclock.Clock, negotiationDelay time.Duration, sites []Site, handler Handler) (*Pool, error) {
	if clock == nil {
		clock = wfclock.Real
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("condor: pool needs at least one site")
	}
	p := &Pool{
		clock:            clock,
		negotiationDelay: negotiationDelay,
		sites:            make(map[string]*siteState, len(sites)),
		handler:          handler,
	}
	for _, s := range sites {
		if len(s.Hosts) == 0 {
			return nil, fmt.Errorf("condor: site %q has no hosts", s.Name)
		}
		st := &siteState{site: s, queue: make(chan *queuedJob, 65536)}
		p.sites[s.Name] = st
		for _, h := range s.Hosts {
			slots := h.Slots
			if slots <= 0 {
				slots = 1
			}
			for i := 0; i < slots; i++ {
				p.wg.Add(1)
				go p.slotWorker(st, h)
			}
		}
	}
	return p, nil
}

// Close drains the pool: submitted jobs still queued are abandoned.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, st := range p.sites {
		close(st.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Pool) emit(ev Event) {
	p.mu.Lock()
	h := p.handler
	p.mu.Unlock()
	if h != nil {
		h(ev)
	}
}

// Submit queues a job and returns a channel that delivers its terminate
// event. Submission itself emits EventSubmit.
func (p *Pool) Submit(spec JobSpec) (<-chan Event, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("condor: pool closed")
	}
	st, ok := p.sites[spec.Site]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("condor: unknown site %q", spec.Site)
	}
	qj := &queuedJob{spec: spec, done: make(chan Event, 1)}
	ev := Event{Type: EventSubmit, JobID: spec.ID, Time: p.clock.Now(), Site: spec.Site}
	p.emit(ev)
	select {
	case st.queue <- qj:
	default:
		return nil, fmt.Errorf("condor: site %q queue full", spec.Site)
	}
	return qj.done, nil
}

func (p *Pool) slotWorker(st *siteState, host HostSpec) {
	defer p.wg.Done()
	for qj := range st.queue {
		if p.negotiationDelay > 0 {
			p.clock.Sleep(p.negotiationDelay)
		}
		exec := Event{
			Type: EventExecute, JobID: qj.spec.ID, Time: p.clock.Now(),
			Site: st.site.Name, Hostname: host.Hostname, IP: host.IP,
		}
		p.emit(exec)
		if qj.spec.Duration > 0 {
			p.clock.Sleep(qj.spec.Duration)
		}
		term := Event{
			Type: EventTerminate, JobID: qj.spec.ID, Time: p.clock.Now(),
			Site: st.site.Name, Hostname: host.Hostname, IP: host.IP,
			ExitCode: qj.spec.ExitCode,
		}
		p.emit(term)
		qj.done <- term
	}
}

// Sites lists the configured site names.
func (p *Pool) Sites() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.sites))
	for name := range p.sites {
		out = append(out, name)
	}
	return out
}
