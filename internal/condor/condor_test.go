package condor

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/wfclock"
)

var epoch = time.Date(2012, 3, 13, 12, 0, 0, 0, time.UTC)

func onesite(hosts, slots int) []Site {
	hs := make([]HostSpec, hosts)
	for i := range hs {
		hs[i] = HostSpec{Hostname: fmt.Sprintf("node%d", i+1), IP: fmt.Sprintf("10.0.0.%d", i+1), Slots: slots}
	}
	return []Site{{Name: "cluster", Hosts: hs}}
}

func TestJobLifecycleEvents(t *testing.T) {
	clk := wfclock.NewScaled(epoch, 1000)
	var mu sync.Mutex
	var events []Event
	pool, err := NewPool(clk, 0, onesite(1, 1), func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	done, err := pool.Submit(JobSpec{ID: "j1", Site: "cluster", Duration: 10 * time.Second, ExitCode: 0})
	if err != nil {
		t.Fatal(err)
	}
	term := <-done
	if term.Type != EventTerminate || term.ExitCode != 0 || term.Hostname != "node1" {
		t.Fatalf("terminate = %+v", term)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Type != EventSubmit || events[1].Type != EventExecute || events[2].Type != EventTerminate {
		t.Fatalf("order = %v %v %v", events[0].Type, events[1].Type, events[2].Type)
	}
	if d := events[2].Time.Sub(events[1].Time); d < 8*time.Second || d > 20*time.Second {
		t.Fatalf("virtual runtime = %v, want ~10s", d)
	}
}

func TestQueueDelayWhenSlotsBusy(t *testing.T) {
	clk := wfclock.NewScaled(epoch, 1000)
	pool, err := NewPool(clk, 0, onesite(1, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	d1, _ := pool.Submit(JobSpec{ID: "a", Site: "cluster", Duration: 20 * time.Second})
	d2, _ := pool.Submit(JobSpec{ID: "b", Site: "cluster", Duration: 20 * time.Second})
	t1 := <-d1
	t2 := <-d2
	if gap := t2.Time.Sub(t1.Time); gap < 10*time.Second {
		t.Fatalf("second job finished only %v after first on a 1-slot pool", gap)
	}
}

func TestParallelismAcrossSlots(t *testing.T) {
	clk := wfclock.NewScaled(epoch, 1000)
	pool, err := NewPool(clk, 0, onesite(4, 2), nil) // 8 slots
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	start := clk.Now()
	var chans []<-chan Event
	for i := 0; i < 8; i++ {
		ch, err := pool.Submit(JobSpec{ID: fmt.Sprintf("j%d", i), Site: "cluster", Duration: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	hosts := map[string]bool{}
	for _, ch := range chans {
		ev := <-ch
		hosts[ev.Hostname] = true
	}
	elapsed := clk.Since(start)
	// 8 jobs x 30s on 8 slots should take ~30s, not 240s.
	if elapsed > 100*time.Second {
		t.Fatalf("8 jobs on 8 slots took %v virtual", elapsed)
	}
	if len(hosts) != 4 {
		t.Fatalf("jobs spread over %d hosts, want 4", len(hosts))
	}
}

func TestNegotiationDelay(t *testing.T) {
	clk := wfclock.NewScaled(epoch, 1000)
	var execAt, subAt time.Time
	var mu sync.Mutex
	pool, err := NewPool(clk, 5*time.Second, onesite(1, 1), func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev.Type {
		case EventSubmit:
			subAt = ev.Time
		case EventExecute:
			execAt = ev.Time
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	done, _ := pool.Submit(JobSpec{ID: "j", Site: "cluster", Duration: time.Second})
	<-done
	mu.Lock()
	defer mu.Unlock()
	if wait := execAt.Sub(subAt); wait < 4*time.Second {
		t.Fatalf("queue wait = %v, want >= ~5s negotiation delay", wait)
	}
}

func TestFailingJobExitCode(t *testing.T) {
	pool, err := NewPool(wfclock.NewScaled(epoch, 1000), 0, onesite(1, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	done, _ := pool.Submit(JobSpec{ID: "bad", Site: "cluster", Duration: time.Second, ExitCode: 42})
	if term := <-done; term.ExitCode != 42 {
		t.Fatalf("exit = %d", term.ExitCode)
	}
}

func TestErrors(t *testing.T) {
	if _, err := NewPool(nil, 0, nil, nil); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := NewPool(nil, 0, []Site{{Name: "s"}}, nil); err == nil {
		t.Error("hostless site accepted")
	}
	pool, err := NewPool(wfclock.Real, 0, onesite(1, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Submit(JobSpec{ID: "x", Site: "ghost"}); err == nil {
		t.Error("unknown site accepted")
	}
	pool.Close()
	pool.Close() // idempotent
	if _, err := pool.Submit(JobSpec{ID: "x", Site: "cluster"}); err == nil {
		t.Error("submit after close accepted")
	}
	if got := len(pool.Sites()); got != 1 {
		t.Errorf("sites = %d", got)
	}
}
