package telemetry

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestSumValue(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.SumValue("absent"); ok {
		t.Fatal("absent family reported ok")
	}

	v := r.CounterVec("reqs_total", "", "route")
	v.With("a").Add(3)
	v.With("b").Add(4)
	if got, ok := r.SumValue("reqs_total"); !ok || got != 7 {
		t.Fatalf("sum = %v, %v; want 7", got, ok)
	}
	if got, ok := r.SumValue("reqs_total", "a"); !ok || got != 3 {
		t.Fatalf("child a = %v, %v; want 3", got, ok)
	}
	if _, ok := r.SumValue("reqs_total", "zzz"); ok {
		t.Fatal("unknown child reported ok")
	}

	r.GaugeFunc("depth", "", func() float64 { return 12 })
	if got, ok := r.SumValue("depth"); !ok || got != 12 {
		t.Fatalf("func gauge = %v, %v; want 12", got, ok)
	}

	r.Histogram("lat", "", nil)
	if _, ok := r.SumValue("lat"); ok {
		t.Fatal("histogram family reported as scalar")
	}
}

func TestSumBuckets(t *testing.T) {
	r := NewRegistry()
	if _, _, ok := r.SumBuckets("absent"); ok {
		t.Fatal("absent family reported ok")
	}

	hv := r.HistogramVec("lat", "", []float64{1, 2}, "stage")
	hv.With("apply").Observe(0.5)
	hv.With("apply").Observe(1.5)
	hv.With("commit").Observe(0.5)

	upper, counts, ok := r.SumBuckets("lat")
	if !ok || len(upper) != 2 || len(counts) != 3 {
		t.Fatalf("layout = %v %v %v", upper, counts, ok)
	}
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 0 {
		t.Fatalf("summed counts = %v", counts)
	}
	_, counts, ok = r.SumBuckets("lat", "apply")
	if !ok || counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("apply counts = %v, %v", counts, ok)
	}

	r.Counter("scalar", "")
	if _, _, ok := r.SumBuckets("scalar"); ok {
		t.Fatal("scalar family reported as histogram")
	}
}

func TestHandleDebugExtras(t *testing.T) {
	HandleDebug("/test-extra", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	defer HandleDebug("/test-extra", nil)

	srv := httptest.NewServer(NewDebugMux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/test-extra")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("extra handler status = %d", resp.StatusCode)
	}

	// Replacing after the mux was built takes effect on the next request.
	HandleDebug("/test-extra", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	resp, err = http.Get(srv.URL + "/test-extra")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("replaced handler status = %d", resp.StatusCode)
	}
}
