package telemetry

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format version this
// package writes.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in the registry in the Prometheus
// text format: families sorted by name, children sorted by label values,
// histograms expanded into cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.write(bw)
	}
	// bufio carries the first write error through to Flush.
	return bw.Flush()
}

func (f *family) write(w *bufio.Writer) {
	// Snapshot children under the family lock; values are read outside it
	// (they are atomics or scrape funcs).
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()
	if len(children) == 0 {
		return
	}

	if f.help != "" {
		w.WriteString("# HELP ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(escapeHelp(f.help))
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.kind.String())
	w.WriteByte('\n')

	for i, key := range keys {
		values := strings.Split(key, "\xff")
		if key == "" {
			values = nil
		}
		switch c := children[i].(type) {
		case *Counter:
			writeSample(w, f.name, "", f.labels, values, "", strconv.FormatUint(c.Value(), 10))
		case *Gauge:
			writeSample(w, f.name, "", f.labels, values, "", strconv.FormatInt(c.Value(), 10))
		case funcGauge:
			writeSample(w, f.name, "", f.labels, values, "", formatFloat(c.fn()))
		case funcCounter:
			writeSample(w, f.name, "", f.labels, values, "", formatFloat(c.fn()))
		case *Histogram:
			// _count is derived from the cumulative bucket counts rather
			// than read from the separate count word: Observe bumps the
			// bucket and the count non-atomically as a pair, so a scrape
			// racing an observation could otherwise emit le="+Inf" !=
			// _count, which Prometheus treats as a malformed histogram.
			// Derivation keeps the invariant by construction — for the
			// empty histogram too (every bucket, +Inf, and _count all 0).
			var cum uint64
			for b := range c.counts {
				cum += c.counts[b].Load()
				le := "+Inf"
				if b < len(c.upper) {
					le = formatFloat(c.upper[b])
				}
				writeSample(w, f.name, "_bucket", f.labels, values, le, strconv.FormatUint(cum, 10))
			}
			writeSample(w, f.name, "_sum", f.labels, values, "", formatFloat(c.Sum()))
			writeSample(w, f.name, "_count", f.labels, values, "", strconv.FormatUint(cum, 10))
		}
	}
}

// writeSample renders one line: name[suffix]{labels,le="..."} value.
func writeSample(w *bufio.Writer, name, suffix string, labels, values []string, le, value string) {
	w.WriteString(name)
	w.WriteString(suffix)
	if len(values) > 0 || le != "" {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		if le != "" {
			if len(values) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(`le="`)
			w.WriteString(le)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry in the Prometheus text format; mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		// Errors here are client disconnects; the next scrape retries.
		_ = r.WritePrometheus(w)
	})
}

// Handler serves the Default registry.
func Handler() http.Handler { return defaultRegistry.Handler() }
