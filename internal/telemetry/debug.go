package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux returns a mux exposing the Default registry at /metrics and
// the net/http/pprof profiles under /debug/pprof/. The long-running cmds
// mount this behind their -debug-addr flag so a production incident can
// be profiled without a restart.
func NewDebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer serves NewDebugMux on addr in a background goroutine.
// It returns the bound address (useful with ":0") and a stop function.
func StartDebugServer(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewDebugMux()}
	go func() {
		// ErrServerClosed after stop; anything else has no one to tell.
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), srv.Close, nil
}
