package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// debugExtras holds handlers other subsystems hang off every debug mux
// (the health engine's /healthz, /readyz, /api/alerts, /api/buildinfo,
// /debug/bundle). Registration replaces: tests create engines freely and
// the most recent owner of a pattern wins. Resolution happens at request
// time so a handler registered after the server started still serves.
var (
	debugMu     sync.RWMutex
	debugExtras = make(map[string]http.Handler)
)

// HandleDebug registers (or replaces) a handler served on every debug mux
// at the given pattern. A nil handler unregisters. Patterns registered
// before NewDebugMux/StartDebugServer are mounted on the resulting mux;
// handlers may be swapped afterwards without re-mounting.
func HandleDebug(pattern string, h http.Handler) {
	debugMu.Lock()
	defer debugMu.Unlock()
	if h == nil {
		delete(debugExtras, pattern)
		return
	}
	debugExtras[pattern] = h
}

// NewDebugMux returns a mux exposing the Default registry at /metrics and
// the net/http/pprof profiles under /debug/pprof/. The long-running cmds
// mount this behind their -debug-addr flag so a production incident can
// be profiled without a restart.
func NewDebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	debugMu.RLock()
	patterns := make([]string, 0, len(debugExtras))
	for p := range debugExtras {
		patterns = append(patterns, p)
	}
	debugMu.RUnlock()
	for _, p := range patterns {
		p := p
		mux.HandleFunc(p, func(w http.ResponseWriter, r *http.Request) {
			debugMu.RLock()
			h := debugExtras[p]
			debugMu.RUnlock()
			if h == nil {
				http.NotFound(w, r)
				return
			}
			h.ServeHTTP(w, r)
		})
	}
	return mux
}

// StartDebugServer serves NewDebugMux on addr in a background goroutine.
// It returns the bound address (useful with ":0") and a stop function.
func StartDebugServer(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewDebugMux()}
	go func() {
		// ErrServerClosed after stop; anything else has no one to tell.
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), srv.Close, nil
}
