package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Error("get-or-create returned a different counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-2)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Errorf("SetMax lowered gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Errorf("SetMax = %d, want 9", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "a histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 102.65; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
	// Non-cumulative per-bucket: ≤0.1 gets 2 (0.05 and the boundary 0.1),
	// ≤1 gets 1, ≤10 gets 1, +Inf gets 1.
	want := []uint64{2, 1, 1, 1}
	for i := range want {
		if got := h.counts[i].Load(); got != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
}

func TestVecChildrenAndDelete(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs_total", "requests", "route")
	a := v.With("/a")
	if v.With("/a") != a {
		t.Error("With returned a different child for same labels")
	}
	a.Inc()
	v.With("/b").Add(2)

	g := r.GaugeVec("depth", "queue depth", "queue")
	g.With("q1").Set(3)
	g.SetFunc(func() float64 { return 42 }, "q2")
	g.Delete("q1")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`reqs_total{route="/a"} 1`,
		`reqs_total{route="/b"} 2`,
		`depth{queue="q2"} 42`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `depth{queue="q1"}`) {
		t.Errorf("deleted child still exposed:\n%s", out)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_events_total", "events seen").Add(3)
	r.GaugeFunc("app_temp", "a func gauge", func() float64 { return 1.5 })
	h := r.HistogramVec("app_lat_seconds", "latency", []float64{0.5, 1}, "route")
	h.With("/x").Observe(0.2)
	h.With("/x").Observe(3)
	r.CounterVec("app_odd_total", `quote " and slash \`, "k").With("a\"b\\c\nd").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP app_events_total events seen
# TYPE app_events_total counter
app_events_total 3
# HELP app_lat_seconds latency
# TYPE app_lat_seconds histogram
app_lat_seconds_bucket{route="/x",le="0.5"} 1
app_lat_seconds_bucket{route="/x",le="1"} 1
app_lat_seconds_bucket{route="/x",le="+Inf"} 2
app_lat_seconds_sum{route="/x"} 3.2
app_lat_seconds_count{route="/x"} 2
# HELP app_odd_total quote " and slash \\
# TYPE app_odd_total counter
app_odd_total{k="a\"b\\c\nd"} 1
# HELP app_temp a func gauge
# TYPE app_temp gauge
app_temp 1.5
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHotPathAllocFree is the satellite guarantee behind "cheap enough to
// leave always-on": every hot-path operation performs zero allocations.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", DurationBuckets)
	t0 := time.Now()
	cases := []struct {
		name string
		op   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(9) }},
		{"Gauge.SetMax", func() { g.SetMax(11) }},
		{"Histogram.Observe", func() { h.Observe(0.004) }},
		{"Histogram.ObserveSince", func() { h.ObserveSince(t0) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.op); allocs != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", tc.name, allocs)
		}
	}
}

// TestConcurrent hammers one family from many goroutines while scraping;
// meaningful under -race.
func TestConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c_total", "", "worker")
	h := r.Histogram("h_seconds", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := v.With(string(rune('a' + i)))
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	var total uint64
	for i := 0; i < 8; i++ {
		total += v.With(string(rune('a' + i))).Value()
	}
	if total != 8000 {
		t.Errorf("counter total = %d, want 8000", total)
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

// BenchmarkTelemetryOverhead proves the always-on claim: counter
// increments and histogram observes are single-digit nanoseconds and
// allocation-free (the alloc floor is additionally asserted by
// TestHotPathAllocFree, so a regression fails `go test`, not just a
// benchmark eyeball).
func BenchmarkTelemetryOverhead(b *testing.B) {
	r := NewRegistry()
	b.Run("CounterInc", func(b *testing.B) {
		c := r.Counter("bench_c_total", "")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("GaugeSet", func(b *testing.B) {
		g := r.Gauge("bench_g", "")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(int64(i))
		}
	})
	b.Run("HistogramObserve", func(b *testing.B) {
		h := r.Histogram("bench_h_seconds", "", DurationBuckets)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(0.0003)
		}
	})
	b.Run("CounterIncParallel", func(b *testing.B) {
		c := r.Counter("bench_cp_total", "")
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
}
