package telemetry

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

// scrape renders the registry and returns its lines.
func scrape(t *testing.T, r *Registry) []string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
}

// sampleValue finds the value of the exposition line with the exact
// name{labels} prefix, failing if it is absent.
func sampleValue(t *testing.T, lines []string, prefix string) string {
	t.Helper()
	for _, l := range lines {
		if rest, ok := strings.CutPrefix(l, prefix+" "); ok {
			return rest
		}
	}
	t.Fatalf("no sample %q in exposition:\n%s", prefix, strings.Join(lines, "\n"))
	return ""
}

// TestExpositionEmptyHistogram is the format regression test for the
// never-observed histogram: every cumulative bucket including le="+Inf"
// must appear with value 0, and _count and _sum must be 0 — not absent,
// and not disagreeing with the +Inf bucket.
func TestExpositionEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty_seconds", "never observed", []float64{0.1, 1})
	lines := scrape(t, r)

	for _, want := range []string{
		`empty_seconds_bucket{le="0.1"}`,
		`empty_seconds_bucket{le="1"}`,
		`empty_seconds_bucket{le="+Inf"}`,
		`empty_seconds_sum`,
		`empty_seconds_count`,
	} {
		if got := sampleValue(t, lines, want); got != "0" {
			t.Errorf("%s = %s, want 0", want, got)
		}
	}
}

func TestExpositionHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.5, 2, 50} { // last two overflow the max bucket
		h.Observe(v)
	}
	lines := scrape(t, r)
	if got := sampleValue(t, lines, `lat_seconds_bucket{le="0.1"}`); got != "1" {
		t.Errorf(`le="0.1" = %s, want 1`, got)
	}
	if got := sampleValue(t, lines, `lat_seconds_bucket{le="1"}`); got != "2" {
		t.Errorf(`le="1" = %s, want 2`, got)
	}
	if got := sampleValue(t, lines, `lat_seconds_bucket{le="+Inf"}`); got != "4" {
		t.Errorf(`le="+Inf" = %s, want 4`, got)
	}
	if got := sampleValue(t, lines, `lat_seconds_count`); got != "4" {
		t.Errorf("_count = %s, want 4", got)
	}
	if got := sampleValue(t, lines, `lat_seconds_sum`); got != "52.55" {
		t.Errorf("_sum = %s, want 52.55", got)
	}
}

// TestExpositionHistogramInvariantUnderLoad scrapes while observations
// race and asserts le="+Inf" == _count on every scrape. Before _count was
// derived from the cumulative buckets this could emit a histogram whose
// +Inf bucket disagreed with its count — malformed to Prometheus.
func TestExpositionHistogramInvariantUnderLoad(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("busy_seconds", "racing", []float64{0.1, 1})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					h.Observe(float64(i%3) * 0.3)
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		lines := scrape(t, r)
		inf := sampleValue(t, lines, `busy_seconds_bucket{le="+Inf"}`)
		count := sampleValue(t, lines, `busy_seconds_count`)
		if inf != count {
			close(stop)
			wg.Wait()
			t.Fatalf(`scrape %d: le="+Inf" = %s but _count = %s`, i, inf, count)
		}
		// Buckets must be monotonically cumulative too.
		b1, _ := strconv.ParseUint(sampleValue(t, lines, `busy_seconds_bucket{le="0.1"}`), 10, 64)
		b2, _ := strconv.ParseUint(sampleValue(t, lines, `busy_seconds_bucket{le="1"}`), 10, 64)
		bInf, _ := strconv.ParseUint(inf, 10, 64)
		if b1 > b2 || b2 > bInf {
			close(stop)
			wg.Wait()
			t.Fatalf("scrape %d: non-cumulative buckets %d, %d, %d", i, b1, b2, bInf)
		}
	}
	close(stop)
	wg.Wait()
}

func TestExpositionCounterFunc(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.CounterFunc("derived_total", "computed at scrape", func() float64 { n++; return n })
	lines := scrape(t, r)
	typed := false
	for _, l := range lines {
		if l == "# TYPE derived_total counter" {
			typed = true
		}
	}
	if !typed {
		t.Error("CounterFunc family not typed as counter")
	}
	if got := sampleValue(t, lines, "derived_total"); got != "42" {
		t.Errorf("derived_total = %s, want 42", got)
	}
	// A second scrape re-invokes the function: scrape-time semantics.
	if got := sampleValue(t, scrape(t, r), "derived_total"); got != "43" {
		t.Errorf("second scrape = %s, want 43", got)
	}
}
