// Package telemetry is the repo's self-monitoring layer: a stdlib-only
// metrics registry with lock-free counters and gauges, fixed-bucket
// latency histograms and labeled metric families, exposed in the
// Prometheus text format (expose.go) and optionally alongside
// net/http/pprof on a debug server (debug.go).
//
// The paper argues that a monitoring infrastructure must itself be
// observable in real time; this package is that layer for our own stack.
// Every hot path in the broker, loader, WAL and archive increments these
// metrics unconditionally, so the increment cost is held to a single
// atomic operation with zero allocations (BenchmarkTelemetryOverhead
// enforces this). Instrumentation sites pre-resolve labeled children at
// setup time — Vec.With does take a lock and must stay off hot paths.
//
// Metrics register on the package Default registry under get-or-create
// semantics: two instances of one subsystem share one family, which is
// the process-wide aggregation Prometheus expects.
package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Standard bucket layouts. DurationBuckets spans 10µs (an uncontended
// in-memory batch apply) to 10s (a pathological stall); SizeBuckets is
// powers of two up to the loader's largest sensible batch.
var (
	DurationBuckets = []float64{
		1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
	SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
)

// Counter is a monotonically increasing metric. Inc and Add are single
// atomic operations with no allocations.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer-valued metric that can go up and down. All methods
// are single atomic operations with no allocations.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// SetMax raises the gauge to v if v is larger: a lock-free high-water
// mark.
func (g *Gauge) SetMax(v int64) {
	for {
		old := g.v.Load()
		if v <= old || g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// funcGauge is a gauge evaluated at scrape time, for values the owner
// already tracks (channel depths, table row counts).
type funcGauge struct{ fn func() float64 }

// funcCounter is a counter evaluated at scrape time, for cumulative
// totals the owner already tracks as atomics (the bp event-pool stats).
// The function must be monotonically non-decreasing.
type funcCounter struct{ fn func() float64 }

// Histogram counts observations into fixed buckets. Observe is lock-free:
// one atomic add per bucket/count and a CAS loop for the sum, with no
// allocations.
type Histogram struct {
	upper  []float64 // bucket upper bounds, ascending; +Inf implied last
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DurationBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram buckets not ascending: %v", buckets))
		}
	}
	return &Histogram{
		upper:  buckets,
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with a fixed label schema and one child per
// label-value combination. Unlabeled metrics are a family with a single
// child under the empty key.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64

	mu       sync.RWMutex
	children map[string]any // *Counter | *Gauge | funcGauge | funcCounter | *Histogram
}

// labelKey joins label values into a map key. \xff never appears in
// well-formed label values (they are UTF-8 metric identifiers here).
func labelKey(values []string) string { return strings.Join(values, "\xff") }

func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = make()
	f.children[key] = c
	return c
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry, or use the package-level Default registry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that instrumented subsystems
// register on and debug servers expose.
func Default() *Registry { return defaultRegistry }

// family returns the named family, creating it on first use. Re-requests
// must agree on kind and label schema; a mismatch is a programming error
// and panics.
func (r *Registry) family(name, help string, k kind, labels []string, buckets []float64) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		f, ok = r.families[name]
		if !ok {
			f = &family{
				name: name, help: help, kind: k,
				labels:   append([]string(nil), labels...),
				buckets:  append([]float64(nil), buckets...),
				children: make(map[string]any),
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != k || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("telemetry: metric %s re-registered as %s(%v), was %s(%v)",
			name, k, labels, f.kind, f.labels))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("telemetry: metric %s re-registered with labels %v, was %v", name, labels, f.labels))
		}
	}
	return f
}

// Counter returns the unlabeled counter with this name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, nil, nil)
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the unlabeled gauge with this name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, nil, nil)
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers (or replaces) an unlabeled gauge whose value is
// computed by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindGauge, nil, nil)
	f.mu.Lock()
	f.children[""] = funcGauge{fn}
	f.mu.Unlock()
}

// CounterFunc registers (or replaces) an unlabeled counter whose value
// is computed by fn at scrape time. fn must be monotonically
// non-decreasing — use it to expose cumulative totals a subsystem
// already maintains, not derived values.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindCounter, nil, nil)
	f.mu.Lock()
	f.children[""] = funcCounter{fn}
	f.mu.Unlock()
}

// Histogram returns the unlabeled histogram with this name, creating it
// on first use. Buckets are upper bounds in ascending order; nil means
// DurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, kindHistogram, nil, buckets)
	return f.child(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family with this name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labels, nil)}
}

// With returns the child for the given label values, creating it on first
// use. Resolve children once at setup; this call locks.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family with this name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labels, nil)}
}

// With returns the child for the given label values, creating it on first
// use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// SetFunc installs (or replaces) a scrape-time gauge for the given label
// values, e.g. a queue-depth probe.
func (v *GaugeVec) SetFunc(fn func() float64, values ...string) {
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	v.f.mu.Lock()
	v.f.children[labelKey(values)] = funcGauge{fn}
	v.f.mu.Unlock()
}

// Delete removes the child for the given label values (e.g. when a queue
// is deleted). Unknown children are a no-op.
func (v *GaugeVec) Delete(values ...string) {
	v.f.mu.Lock()
	delete(v.f.children, labelKey(values))
	v.f.mu.Unlock()
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family with this name. All
// children share the bucket layout fixed at first registration.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, labels, buckets)}
}

// With returns the child for the given label values, creating it on first
// use. Resolve children once at setup; this call locks.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// Package-level conveniences over the Default registry; instrumented
// subsystems use these in their var blocks. "New" here means get-or-
// create: a second call with the same name returns the same metric.

// NewCounter returns a counter on the Default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.Counter(name, help) }

// NewGauge returns a gauge on the Default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.Gauge(name, help) }

// NewGaugeFunc registers a scrape-time gauge on the Default registry.
func NewGaugeFunc(name, help string, fn func() float64) { defaultRegistry.GaugeFunc(name, help, fn) }

// NewCounterFunc registers a scrape-time counter on the Default registry.
func NewCounterFunc(name, help string, fn func() float64) {
	defaultRegistry.CounterFunc(name, help, fn)
}

// NewHistogram returns a histogram on the Default registry.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return defaultRegistry.Histogram(name, help, buckets)
}

// NewCounterVec returns a labeled counter family on the Default registry.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return defaultRegistry.CounterVec(name, help, labels...)
}

// NewGaugeVec returns a labeled gauge family on the Default registry.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return defaultRegistry.GaugeVec(name, help, labels...)
}

// NewHistogramVec returns a labeled histogram family on the Default registry.
func NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return defaultRegistry.HistogramVec(name, help, buckets, labels...)
}
