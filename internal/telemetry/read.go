package telemetry

// Scrape-time read access for the health engine (internal/health): SLO
// signals are derived from metrics the hot paths already maintain, so
// evaluating them must not add instrumentation — only reads. Both
// accessors take the same locks as the exposition path and evaluate
// func-backed children outside any lock, exactly like WritePrometheus.

// SumValue returns the sum of a scalar (counter or gauge) family's
// children. With label values it returns just the child for that exact
// label-value combination. ok is false when the family does not exist,
// is a histogram, or the requested child is absent — callers treat that
// as "signal not available here", not zero.
func (r *Registry) SumValue(name string, labels ...string) (float64, bool) {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok || f.kind == kindHistogram {
		return 0, false
	}
	fns := make([]func() float64, 0, 4)
	sum := 0.0
	found := false
	f.mu.RLock()
	for key, c := range f.children {
		if len(labels) > 0 && key != labelKey(labels) {
			continue
		}
		found = true
		switch c := c.(type) {
		case *Counter:
			sum += float64(c.Value())
		case *Gauge:
			sum += float64(c.Value())
		case funcGauge:
			fns = append(fns, c.fn)
		case funcCounter:
			fns = append(fns, c.fn)
		}
	}
	f.mu.RUnlock()
	for _, fn := range fns {
		sum += fn()
	}
	return sum, found
}

// SumBuckets returns a histogram family's bucket layout and per-bucket
// observation counts (non-cumulative; the final slot is the +Inf
// bucket), summed across children or, with label values, for one exact
// child. The caller can difference successive reads to compute windowed
// quantiles without the hot path ever knowing.
func (r *Registry) SumBuckets(name string, labels ...string) (upper []float64, counts []uint64, ok bool) {
	r.mu.RLock()
	f, fok := r.families[name]
	r.mu.RUnlock()
	if !fok || f.kind != kindHistogram {
		return nil, nil, false
	}
	found := false
	f.mu.RLock()
	for key, c := range f.children {
		if len(labels) > 0 && key != labelKey(labels) {
			continue
		}
		h, hok := c.(*Histogram)
		if !hok {
			continue
		}
		if counts == nil {
			upper = h.upper
			counts = make([]uint64, len(h.counts))
		}
		found = true
		for i := range h.counts {
			counts[i] += h.counts[i].Load()
		}
	}
	f.mu.RUnlock()
	return upper, counts, found
}
