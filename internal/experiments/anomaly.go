package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/archive"
	"repro/internal/loader"
	"repro/internal/query"
	"repro/internal/synth"
)

// AnomalyResult quantifies the analysis layer (E7): straggler-host
// detection precision/recall over synthesized workflows with injected
// slowdowns, and the failure predictor's separation between healthy and
// failing runs — the capabilities the paper lists under "anomaly
// detection" and "performance prediction".
type AnomalyResult struct {
	// Straggler detection across trials.
	Trials         int
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	// Failure-prediction scores on held-out workflows.
	HealthyScore float64
	FailingScore float64
	// Runtime anomalies flagged on one straggler run vs one clean run.
	AnomaliesStraggler int
	AnomaliesClean     int
}

// Precision and Recall of straggler detection.
func (r *AnomalyResult) Precision() float64 {
	if r.TruePositives+r.FalsePositives == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalsePositives)
}

func (r *AnomalyResult) Recall() float64 {
	if r.TruePositives+r.FalseNegatives == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalseNegatives)
}

func loadSynth(cfg synth.Config) (*query.QI, *synth.Trace, int64, error) {
	tr := synth.Generate(cfg)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		return nil, nil, 0, err
	}
	a := archive.NewInMemory()
	l, err := loader.New(a, loader.Options{Validate: true})
	if err != nil {
		return nil, nil, 0, err
	}
	if _, err := l.LoadReader(&buf); err != nil {
		return nil, nil, 0, err
	}
	q := query.New(a)
	wf, err := q.WorkflowByUUID(tr.RootUUID)
	if err != nil || wf == nil {
		return nil, nil, 0, fmt.Errorf("root missing: %v", err)
	}
	return q, tr, wf.ID, nil
}

// RunAnomaly executes the full analysis experiment.
func RunAnomaly() (*AnomalyResult, error) {
	res := &AnomalyResult{}
	jt := []synth.JobType{{Name: "exec", MeanSeconds: 60, StddevPct: 0.08, Weight: 1}}

	// Straggler detection: 8 trials, each with one host slowed 4x.
	const trials = 8
	res.Trials = trials
	for trial := 0; trial < trials; trial++ {
		slowHost := trial % 4
		q, tr, id, err := loadSynth(synth.Config{
			Seed: int64(100 + trial), Jobs: 80, Hosts: 4, SlotsPerHost: 2,
			JobTypes:     jt,
			HostSlowdown: map[int]float64{slowHost: 4.0},
		})
		if err != nil {
			return nil, err
		}
		samples, err := analysis.HostSamples(q, id)
		if err != nil {
			return nil, err
		}
		reports := analysis.StragglerHosts(samples, 1.5, 5)
		found := false
		for _, r := range reports {
			if r.Straggler {
				if r.Host == tr.Hostnames[slowHost] {
					found = true
				} else {
					res.FalsePositives++
				}
			}
		}
		if found {
			res.TruePositives++
		} else {
			res.FalseNegatives++
		}
	}

	// Runtime anomaly counts: straggler run vs clean run.
	qs, _, ids, err := loadSynth(synth.Config{
		Seed: 9, Jobs: 120, Hosts: 6, SlotsPerHost: 2, JobTypes: jt,
		HostSlowdown: map[int]float64{2: 6.0},
	})
	if err != nil {
		return nil, err
	}
	// A 6x straggler sits dozens of sigma out; a 4-sigma threshold keeps
	// the clean run quiet while losing none of the real anomalies.
	det := analysis.NewRuntimeDetector()
	det.Threshold = 4
	anoms, err := analysis.DetectRuntimeAnomalies(qs, ids, det)
	if err != nil {
		return nil, err
	}
	res.AnomaliesStraggler = len(anoms)
	qc, _, idc, err := loadSynth(synth.Config{Seed: 10, Jobs: 120, Hosts: 6, SlotsPerHost: 2, JobTypes: jt})
	if err != nil {
		return nil, err
	}
	detClean := analysis.NewRuntimeDetector()
	detClean.Threshold = 4
	clean, err := analysis.DetectRuntimeAnomalies(qc, idc, detClean)
	if err != nil {
		return nil, err
	}
	res.AnomaliesClean = len(clean)

	// Failure prediction: train on 16 labeled runs, score 2 held-out.
	nb := analysis.NewNaiveBayes(analysis.FeatureDim)
	for seed := int64(0); seed < 8; seed++ {
		qg, _, idg, err := loadSynth(synth.Config{Seed: seed, Jobs: 30, JobTypes: jt})
		if err != nil {
			return nil, err
		}
		fg, err := analysis.WorkflowFeatures(qg, idg)
		if err != nil {
			return nil, err
		}
		if err := nb.Train(fg, false); err != nil {
			return nil, err
		}
		qb, trb, idb, err := loadSynth(synth.Config{
			Seed: seed + 50, Jobs: 30, JobTypes: jt, FailureRate: 0.4, MaxRetries: 2,
		})
		if err != nil {
			return nil, err
		}
		fb, err := analysis.WorkflowFeatures(qb, idb)
		if err != nil {
			return nil, err
		}
		if err := nb.Train(fb, trb.FailedJobs+trb.TotalRetries > 0); err != nil {
			return nil, err
		}
	}
	qh, _, idh, err := loadSynth(synth.Config{Seed: 77, Jobs: 30, JobTypes: jt})
	if err != nil {
		return nil, err
	}
	fh, err := analysis.WorkflowFeatures(qh, idh)
	if err != nil {
		return nil, err
	}
	res.HealthyScore, err = nb.Predict(fh)
	if err != nil {
		return nil, err
	}
	qf, _, idf, err := loadSynth(synth.Config{Seed: 177, Jobs: 30, JobTypes: jt, FailureRate: 0.4, MaxRetries: 2})
	if err != nil {
		return nil, err
	}
	ff, err := analysis.WorkflowFeatures(qf, idf)
	if err != nil {
		return nil, err
	}
	res.FailingScore, err = nb.Predict(ff)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RenderAnomaly formats the analysis-experiment report.
func RenderAnomaly(r *AnomalyResult) string {
	var b strings.Builder
	b.WriteString("Analysis experiment — anomaly detection and failure prediction\n")
	b.WriteString("(capabilities the paper's §IV lists; methodology follows its reference [37])\n\n")
	fmt.Fprintf(&b, "straggler-host detection over %d trials (one 4x-slow host each):\n", r.Trials)
	fmt.Fprintf(&b, "  precision %.2f  recall %.2f  (TP=%d FP=%d FN=%d)\n",
		r.Precision(), r.Recall(), r.TruePositives, r.FalsePositives, r.FalseNegatives)
	fmt.Fprintf(&b, "runtime anomaly flags: straggler run %d, clean run %d\n",
		r.AnomaliesStraggler, r.AnomaliesClean)
	fmt.Fprintf(&b, "failure predictor P(fail): healthy run %.3f, failing run %.3f\n",
		r.HealthyScore, r.FailingScore)
	return b.String()
}
