package experiments

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/bp"
	"repro/internal/dart"
	"repro/internal/loader"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/triana"
	"repro/internal/wfclock"
)

// This file implements the two experiments the paper defers to future
// work:
//
//   - §VIII: "running workflows of varying sizes through Triana and
//     evaluation of the loading performance" — the hypothesis being that
//     because both engines share nl_load, Triana traces load as fast as
//     Pegasus-shaped ones (TrianaLoadScaling).
//   - §V-A: "a workflow experiment that executes a data driven workflow
//     employing the continuous mode of operation of Triana"
//     (ContinuousDART).

// TrianaLoadRow is one point of the Triana loading-performance series.
type TrianaLoadRow struct {
	Tasks     int
	Events    int
	Rate      float64 // events/second through the loader
	SynthRate float64 // baseline: synthetic (Pegasus-shaped) trace of similar event count
}

// TrianaLoadScaling generates real Triana runs of varying sizes (N
// parallel work units on a scaled clock), loads their event streams, and
// compares the load rate against synthetic Pegasus-shaped traces with
// comparable event counts.
func TrianaLoadScaling(sizes []int) ([]TrianaLoadRow, error) {
	rows := make([]TrianaLoadRow, 0, len(sizes))
	for _, n := range sizes {
		clk := wfclock.NewScaled(Epoch, 100000)
		app := &triana.CollectAppender{}
		g := triana.NewTaskGraph(fmt.Sprintf("triana-scale-%d", n))
		src := g.MustAddTask("source", &triana.WorkUnit{
			UnitName: "source", Desc: "file", Duration: time.Second, Clock: clk,
		})
		sink := g.MustAddTask("sink", &triana.WorkUnit{
			UnitName: "sink", Desc: "file", Duration: time.Second, Clock: clk,
		})
		for i := 0; i < n; i++ {
			w := g.MustAddTask(fmt.Sprintf("work%04d", i), &triana.WorkUnit{
				UnitName: "work", Desc: "processing", Duration: 10 * time.Second, Clock: clk,
			})
			if _, err := g.Connect(src, w); err != nil {
				return nil, err
			}
			if _, err := g.Connect(w, sink); err != nil {
				return nil, err
			}
		}
		log := triana.NewStampedeLog(app)
		sched := triana.NewScheduler(g, triana.Options{
			Mode: triana.SingleStep, Clock: clk, Listeners: []triana.Listener{log},
		})
		if _, err := sched.Run(context.Background()); err != nil {
			return nil, err
		}
		// Render the run to BP text and measure the loader on it.
		var buf bytes.Buffer
		w := bp.NewWriter(&buf)
		for _, ev := range app.Events() {
			if err := w.Write(ev); err != nil {
				return nil, err
			}
		}
		if err := w.Flush(); err != nil {
			return nil, err
		}
		a := archive.NewInMemory()
		l, err := loader.New(a, loader.Options{Validate: true})
		if err != nil {
			return nil, err
		}
		st, err := l.LoadReader(&buf)
		if err != nil {
			return nil, err
		}
		row := TrianaLoadRow{Tasks: n + 2, Events: int(st.Loaded), Rate: st.Rate()}

		// Baseline: a synthetic trace with roughly the same event count
		// (synth emits ~12 events per job).
		synthJobs := row.Events / 12
		if synthJobs < 10 {
			synthJobs = 10
		}
		sa := archive.NewInMemory()
		sl, err := loader.New(sa, loader.Options{Validate: true})
		if err != nil {
			return nil, err
		}
		sst, err := sl.LoadReader(bytes.NewReader(TraceFor(synthJobs)))
		if err != nil {
			return nil, err
		}
		row.SynthRate = sst.Rate()
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTrianaLoad formats the E8 series.
func RenderTrianaLoad(rows []TrianaLoadRow) string {
	var b strings.Builder
	b.WriteString("Triana loading performance across workflow sizes (the conclusion's promised experiment)\n")
	b.WriteString("hypothesis: no penalty vs Pegasus-shaped traces, since both share nl_load\n\n")
	fmt.Fprintf(&b, "%8s %10s %14s %18s %8s\n", "tasks", "events", "triana ev/s", "pegasus-like ev/s", "ratio")
	for _, r := range rows {
		ratio := 0.0
		if r.SynthRate > 0 {
			ratio = r.Rate / r.SynthRate
		}
		fmt.Fprintf(&b, "%8d %10d %14.0f %18.0f %8.2f\n", r.Tasks, r.Events, r.Rate, r.SynthRate, ratio)
	}
	return b.String()
}

// ContinuousResult is the outcome of the data-driven continuous-mode
// experiment.
type ContinuousResult struct {
	Q             *query.QI
	WfID          int64
	WfUUID        string
	ChunksEmitted int
	Invocations   map[string]int // per job, from the archive
	StoppedEarly  bool
	DetectedPitch float64
}

// RunContinuousDART runs a data-driven streaming workflow in Triana's
// continuous mode: an audio source streams chunks, an SHS analyzer
// estimates pitch per chunk, and an accumulator releases the workflow
// through a local condition once the estimate is stable — the iterative
// threshold pattern of §V-A. Every chunk is one invocation of the
// analyzer job, exercising the multiple-invocations-per-job-instance
// mapping.
func RunContinuousDART(maxChunks int, f0 float64) (*ContinuousResult, error) {
	if maxChunks <= 0 {
		maxChunks = 50
	}
	app := &triana.CollectAppender{}
	g := triana.NewTaskGraph("dart-continuous")

	var stop atomic.Bool
	emitted := 0
	source := g.MustAddTask("audio-source", &triana.FuncUnit{
		UnitName: "audio-source", Desc: "source",
		Fn: func(ctx *triana.ProcessContext) ([]any, error) {
			if stop.Load() || ctx.Invocation > maxChunks {
				return nil, triana.ErrStopIteration
			}
			emitted++
			// Pace the stream: a real audio source delivers chunks at the
			// capture rate, so the downstream condition can release the
			// workflow before the whole stream is buffered.
			time.Sleep(2 * time.Millisecond)
			sig := dart.Synthesize(dart.ToneSpec{
				F0: f0, Harmonics: 6, Decay: 0.7, Noise: 0.3,
				Seconds: 0.2, Seed: int64(ctx.Invocation),
			})
			return []any{sig}, nil
		},
	})

	analyzer := g.MustAddTask("shs-analyzer", &triana.FuncUnit{
		UnitName: "shs-analyzer", Desc: "processing",
		Fn: func(ctx *triana.ProcessContext) ([]any, error) {
			sig, ok := ctx.Inputs[0].(dart.Signal)
			if !ok {
				return nil, fmt.Errorf("analyzer got %T", ctx.Inputs[0])
			}
			track, err := dart.DetectPitch(sig, dart.SHSParams{NumHarmonics: 8, Compression: 0.8})
			if err != nil {
				return nil, err
			}
			return []any{track.Median()}, nil
		},
	})

	var lastPitch float64
	stable := 0
	threshold := g.MustAddTask("stability-check", &triana.FuncUnit{
		UnitName: "stability-check", Desc: "unit",
		Fn: func(ctx *triana.ProcessContext) ([]any, error) {
			pitch, _ := ctx.Inputs[0].(float64)
			if pitch > 0 && lastPitch > 0 && absRel(pitch, lastPitch) < 0.03 {
				stable++
			} else {
				stable = 0
			}
			if pitch > 0 {
				lastPitch = pitch
			}
			// Local condition: three consecutive agreeing estimates end
			// the stream.
			if stable >= 3 {
				stop.Store(true)
			}
			return nil, nil
		},
	})
	if _, err := g.Connect(source, analyzer); err != nil {
		return nil, err
	}
	if _, err := g.Connect(analyzer, threshold); err != nil {
		return nil, err
	}

	log := triana.NewStampedeLog(app)
	sched := triana.NewScheduler(g, triana.Options{
		Mode: triana.Continuous, Listeners: []triana.Listener{log},
	})
	report, err := sched.Run(context.Background())
	if err != nil {
		return nil, err
	}
	if report.Err != nil {
		return nil, report.Err
	}

	a := archive.NewInMemory()
	for _, ev := range app.Events() {
		parsed, err := bp.Parse(ev.Format())
		if err != nil {
			return nil, err
		}
		if err := a.Apply(parsed); err != nil {
			return nil, err
		}
	}
	q := query.New(a)
	wf, err := q.WorkflowByUUID(report.RunUUID)
	if err != nil || wf == nil {
		return nil, fmt.Errorf("workflow missing: %v", err)
	}
	res := &ContinuousResult{
		Q: q, WfID: wf.ID, WfUUID: report.RunUUID,
		ChunksEmitted: emitted,
		Invocations:   map[string]int{},
		StoppedEarly:  emitted < maxChunks,
		DetectedPitch: lastPitch,
	}
	jobs, err := q.Jobs(wf.ID)
	if err != nil {
		return nil, err
	}
	for _, j := range jobs {
		insts, err := q.JobInstances(j.ID)
		if err != nil {
			return nil, err
		}
		for _, inst := range insts {
			invs, err := q.InvocationsForInstance(inst.ID)
			if err != nil {
				return nil, err
			}
			res.Invocations[j.ExecJobID] += len(invs)
		}
	}
	return res, nil
}

func absRel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b == 0 {
		return 1
	}
	return d / b
}

// RenderContinuous formats the E9 report.
func RenderContinuous(r *ContinuousResult) string {
	var b strings.Builder
	b.WriteString("Continuous-mode data-driven workflow (the §V-A future-work experiment)\n")
	b.WriteString("an audio stream analyzed until the pitch estimate stabilises\n\n")
	fmt.Fprintf(&b, "chunks streamed           : %d (stopped early by local condition: %v)\n",
		r.ChunksEmitted, r.StoppedEarly)
	fmt.Fprintf(&b, "final pitch estimate      : %.1f Hz\n", r.DetectedPitch)
	b.WriteString("invocations per job in the archive (one job instance each):\n")
	for _, job := range []string{"audio-source", "shs-analyzer", "stability-check"} {
		fmt.Fprintf(&b, "  %-16s %4d\n", job, r.Invocations[job])
	}
	summary, err := stats.Compute(r.Q, r.WfID, true)
	if err == nil {
		fmt.Fprintf(&b, "jobs: %d total, %d succeeded; tasks: %d\n",
			summary.Jobs.Total, summary.Jobs.Succeeded, summary.Tasks.Total)
	}
	return b.String()
}
