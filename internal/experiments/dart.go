// Package experiments contains the drivers that regenerate every table
// and figure of the paper's evaluation (§VII), plus the loader-scaling
// and analysis experiments the paper references. cmd/experiments renders
// them for humans; the repository-root benchmarks time them.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/archive"
	"repro/internal/bp"
	"repro/internal/dart"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/triana"
	"repro/internal/trianacloud"
	"repro/internal/wfclock"
)

// Epoch anchors every experiment's virtual timeline.
var Epoch = time.Date(2012, 3, 13, 12, 0, 0, 0, time.UTC)

// DARTOptions configures the reproduction of the paper's §VI experiment.
type DARTOptions struct {
	// Scale is the virtual-clock speed-up (default 2000: the 11-minute
	// run takes ~0.4 wall seconds).
	Scale float64
	// Nodes, TasksPerBundle and Concurrent mirror the paper's deployment:
	// 8 nodes, 16 executions per bundle, 4 concurrent per node.
	Nodes          int
	TasksPerBundle int
	Concurrent     int
	// RealSHS runs the actual pitch-detection computation inside every
	// exec task instead of only modeling its duration.
	RealSHS bool
	// Executions truncates the sweep for quick runs; 0 = all 306.
	Executions int
}

func (o *DARTOptions) fill() {
	if o.Scale == 0 {
		o.Scale = 2000
	}
	if o.Nodes == 0 {
		o.Nodes = 8
	}
	if o.TasksPerBundle == 0 {
		o.TasksPerBundle = 16
	}
	if o.Concurrent == 0 {
		o.Concurrent = 4
	}
}

// DARTData is a completed DART run loaded into an archive.
type DARTData struct {
	Q        *query.QI
	RootID   int64
	RootUUID string
	Summary  *stats.Summary
	Bundles  []trianacloud.BundleResult
	Events   int
}

// RunDART executes the full experiment — meta-workflow on the desktop,
// bundles over HTTP to the worker pool — and loads the resulting event
// stream into a fresh archive.
func RunDART(opts DARTOptions) (*DARTData, error) {
	opts.fill()
	clk := wfclock.NewScaled(Epoch, opts.Scale)
	app := &triana.CollectAppender{}
	nodes := make([]*trianacloud.Node, opts.Nodes)
	for i := range nodes {
		nodes[i] = &trianacloud.Node{
			Hostname: fmt.Sprintf("trianaworker%d", i+1),
			Site:     "trianacloud",
			Clock:    clk,
			Appender: app,
		}
	}
	broker, err := trianacloud.NewBroker("127.0.0.1:0", nodes)
	if err != nil {
		return nil, err
	}
	defer broker.Close()

	commands := strings.Split(strings.TrimSpace(dart.InputFile()), "\n")
	if opts.Executions > 0 && opts.Executions < len(commands) {
		commands = commands[:opts.Executions]
	}
	cfg := trianacloud.DARTConfig{
		Commands:             commands,
		TasksPerBundle:       opts.TasksPerBundle,
		MaxConcurrentPerNode: opts.Concurrent,
		SimulateOnly:         !opts.RealSHS,
		Broker:               &trianacloud.Client{BaseURL: broker.URL()},
		Appender:             app,
		Clock:                clk,
		Hostname:             "desktop",
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	result, err := trianacloud.RunDART(ctx, cfg, broker)
	if err != nil {
		return nil, err
	}

	a := archive.NewInMemory()
	events := app.Events()
	for _, ev := range events {
		parsed, err := bp.Parse(ev.Format())
		if err != nil {
			return nil, err
		}
		if err := a.Apply(parsed); err != nil {
			return nil, fmt.Errorf("apply %s: %w", ev.Type, err)
		}
	}
	q := query.New(a)
	root, err := q.WorkflowByUUID(result.RootUUID)
	if err != nil || root == nil {
		return nil, fmt.Errorf("root workflow missing: %v", err)
	}
	summary, err := stats.Compute(q, root.ID, true)
	if err != nil {
		return nil, err
	}
	return &DARTData{
		Q:        q,
		RootID:   root.ID,
		RootUUID: result.RootUUID,
		Summary:  summary,
		Bundles:  result.Bundles,
		Events:   len(events),
	}, nil
}

// Table1 renders the stampede-statistics summary with the paper's values
// alongside.
func Table1(d *DARTData) string {
	var b strings.Builder
	b.WriteString("Table I — summary output from stampede-statistics for the DART workflow\n")
	b.WriteString("(paper: Tasks 367/367 succeeded, Jobs 367/367, Sub WF 20/20, 0 retries;\n")
	b.WriteString(" wall time 11 min 1 s = 661 s; cumulative job wall time 11 h 10 m = 40224 s)\n\n")
	b.WriteString(d.Summary.Render())
	fmt.Fprintf(&b, "\nmeasured vs paper: wall %.0fs vs 661s; cumulative %.0fs vs 40224s; bundles %d vs 20\n",
		d.Summary.WallTime.Seconds(), d.Summary.CumulativeJobWallTime.Seconds(), len(d.Bundles))
	return b.String()
}

// Table2 renders breakdown.txt for one sub-workflow (the paper shows a
// late bundle whose execs run 36–75 s).
func Table2(d *DARTData) (string, error) {
	subs, err := d.Q.SubWorkflows(d.RootID)
	if err != nil {
		return "", err
	}
	if len(subs) == 0 {
		return "", fmt.Errorf("no sub-workflows")
	}
	last := subs[len(subs)-1]
	rows, err := stats.Breakdown(d.Q, last.ID, false)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — breakdown.txt for sub-workflow %s\n", last.UUID)
	b.WriteString("(paper: exec tasks 36–75 s; unit/Output/zipper tasks 1.0 s)\n\n")
	b.WriteString(stats.RenderBreakdown(rows))
	return b.String(), nil
}

// Table34 renders the two jobs.txt sections for one sub-workflow.
func Table34(d *DARTData) (string, error) {
	subs, err := d.Q.SubWorkflows(d.RootID)
	if err != nil {
		return "", err
	}
	if len(subs) == 0 {
		return "", fmt.Errorf("no sub-workflows")
	}
	sub := subs[len(subs)-1]
	rows, err := stats.JobsReport(d.Q, sub.ID)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tables III & IV — jobs.txt for sub-workflow %s\n", sub.UUID)
	b.WriteString("(paper: single try each, exec invocations ~51–64 s on one trianaworker,\n")
	b.WriteString(" queue times fractions of a second, exit 0)\n\n")
	b.WriteString(stats.RenderJobs(rows))
	return b.String(), nil
}

// Fig7 renders the progress-to-completion series: one curve per bundle,
// cumulative runtime vs wall clock.
func Fig7(d *DARTData) (string, error) {
	series, err := stats.ProgressSeries(d.Q, d.RootID)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 7 — progress to completion of DART workflow bundles\n")
	b.WriteString("(paper: 20 curves climbing to ~2000s cumulative runtime each within the 661s run)\n\n")
	b.WriteString(stats.RenderProgress(series))
	// Compact summary: final cumulative runtime per bundle.
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("\nfinal cumulative runtime per bundle:\n")
	for i, k := range keys {
		pts := series[k]
		final := pts[len(pts)-1]
		fmt.Fprintf(&b, "  bundle %2d: %6.0f s over %d invocations, finished at t=%.0fs\n",
			i, final.CumRuntime, final.Invocations, final.T)
	}
	return b.String(), nil
}
