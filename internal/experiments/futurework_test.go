package experiments

import (
	"strings"
	"testing"
)

func TestTrianaLoadScalingNoPenalty(t *testing.T) {
	rows, err := TrianaLoadScaling([]int{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Events <= r.Tasks {
			t.Errorf("events %d for %d tasks", r.Events, r.Tasks)
		}
		if r.Rate <= 0 || r.SynthRate <= 0 {
			t.Errorf("rates: %+v", r)
		}
		// The hypothesis: no order-of-magnitude penalty vs Pegasus-shaped
		// traces. Allow wide tolerance; the claim is about the shape.
		ratio := r.Rate / r.SynthRate
		if ratio < 0.25 || ratio > 4 {
			t.Errorf("triana/pegasus load ratio = %.2f at %d tasks", ratio, r.Tasks)
		}
	}
	if rows[1].Events <= rows[0].Events {
		t.Error("event counts not growing with size")
	}
	out := RenderTrianaLoad(rows)
	if !strings.Contains(out, "ratio") {
		t.Error("render incomplete")
	}
}

func TestContinuousDARTStopsOnCondition(t *testing.T) {
	r, err := RunContinuousDART(50, 220)
	if err != nil {
		t.Fatal(err)
	}
	if !r.StoppedEarly {
		t.Errorf("stream ran to the cap (%d chunks); local condition never fired", r.ChunksEmitted)
	}
	if r.ChunksEmitted < 4 {
		t.Errorf("stopped after only %d chunks; condition needs >=4", r.ChunksEmitted)
	}
	// The detected pitch must be near the synthesized 220 Hz.
	if r.DetectedPitch < 210 || r.DetectedPitch > 230 {
		t.Errorf("pitch = %.1f, want ~220", r.DetectedPitch)
	}
	// Every job has multiple invocations under a single job instance —
	// the §V-B continuous-mode mapping.
	for _, job := range []string{"audio-source", "shs-analyzer", "stability-check"} {
		if r.Invocations[job] < 2 {
			t.Errorf("%s: %d invocations, want streaming", job, r.Invocations[job])
		}
		if r.Invocations[job] != r.ChunksEmitted {
			t.Errorf("%s: %d invocations for %d chunks", job, r.Invocations[job], r.ChunksEmitted)
		}
	}
	out := RenderContinuous(r)
	if !strings.Contains(out, "stopped early") {
		t.Error("render incomplete")
	}
}

func TestContinuousDARTRespectsCap(t *testing.T) {
	// An unstable stream (no consistent pitch) must stop at the cap.
	r, err := RunContinuousDART(8, 0) // F0=0 synthesizes silence-ish noise
	if err != nil {
		t.Fatal(err)
	}
	if r.ChunksEmitted > 8 {
		t.Errorf("cap exceeded: %d", r.ChunksEmitted)
	}
}
