package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/archive"
	"repro/internal/bp"
	"repro/internal/condor"
	"repro/internal/pegasus"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/triana"
	"repro/internal/wfclock"
)

// CrossEngineResult compares the same abstract computation run through
// the two engines into one shared archive — the paper's central "generic
// approach" demonstration (E6).
type CrossEngineResult struct {
	Q           *query.QI
	PegasusUUID string
	TrianaUUID  string
	Pegasus     *stats.Summary
	Triana      *stats.Summary
}

// RunCrossEngine executes the diamond workflow on Pegasus (planned onto a
// Condor site, with clustering disabled so the task sets match) and on
// Triana (1:1 task-to-job), loading both event streams into one archive.
func RunCrossEngine(scale float64) (*CrossEngineResult, error) {
	if scale == 0 {
		scale = 2000
	}
	clk := wfclock.NewScaled(Epoch, scale)
	app := &triana.CollectAppender{}

	// Pegasus side.
	ew, err := pegasus.Plan(pegasus.Diamond(20), pegasus.PlanConfig{
		Site: "cluster", StageIn: true, StageOut: true, MaxRetries: 2,
	})
	if err != nil {
		return nil, err
	}
	pool, err := condor.NewPool(clk, time.Second, []condor.Site{{
		Name: "cluster",
		Hosts: []condor.HostSpec{
			{Hostname: "node1", IP: "10.0.0.1", Slots: 2},
			{Hostname: "node2", IP: "10.0.0.2", Slots: 2},
		},
	}}, nil)
	if err != nil {
		return nil, err
	}
	defer pool.Close()
	eng, err := pegasus.NewEngine(pegasus.ExecConfig{
		Pool: pool, Clock: clk, Appender: app, SubmitHost: "pegasus-submit",
	})
	if err != nil {
		return nil, err
	}
	pegReport, err := eng.Run(context.Background(), ew)
	if err != nil {
		return nil, err
	}

	// Triana side: the same diamond as a dataflow of units.
	g := triana.NewTaskGraph("diamond")
	mk := func(name string, dur float64) *triana.Task {
		return g.MustAddTask(name, &triana.WorkUnit{
			UnitName: name, Desc: "processing",
			Duration: wfclock.DurationSeconds(dur), Clock: clk,
		})
	}
	pre := mk("preprocess", 10)
	fa := mk("findrange_a", 20)
	fb := mk("findrange_b", 20)
	an := mk("analyze", 10)
	g.Connect(pre, fa)
	g.Connect(pre, fb)
	g.Connect(fa, an)
	g.Connect(fb, an)
	tlog := triana.NewStampedeLog(app)
	sched := triana.NewScheduler(g, triana.Options{Mode: triana.SingleStep, Clock: clk, Listeners: []triana.Listener{tlog}})
	if _, err := sched.Run(context.Background()); err != nil {
		return nil, err
	}

	// One archive for both runs: the Stampede data model does not care
	// which engine produced the events.
	a := archive.NewInMemory()
	for _, ev := range app.Events() {
		parsed, err := bp.Parse(ev.Format())
		if err != nil {
			return nil, err
		}
		if err := a.Apply(parsed); err != nil {
			return nil, err
		}
	}
	q := query.New(a)
	res := &CrossEngineResult{Q: q, PegasusUUID: pegReport.WfUUID, TrianaUUID: tlog.WorkflowUUID()}
	for _, pair := range []struct {
		uuid string
		dst  **stats.Summary
	}{{res.PegasusUUID, &res.Pegasus}, {res.TrianaUUID, &res.Triana}} {
		wf, err := q.WorkflowByUUID(pair.uuid)
		if err != nil || wf == nil {
			return nil, fmt.Errorf("workflow %s missing: %v", pair.uuid, err)
		}
		s, err := stats.Compute(q, wf.ID, true)
		if err != nil {
			return nil, err
		}
		*pair.dst = s
	}
	return res, nil
}

// RenderCrossEngine formats the side-by-side comparison.
func RenderCrossEngine(r *CrossEngineResult) string {
	var b strings.Builder
	b.WriteString("Cross-engine demonstration — the same diamond computation through both engines,\n")
	b.WriteString("one archive, one set of tools (the paper's generic-approach claim)\n\n")
	fmt.Fprintf(&b, "%-24s %12s %12s\n", "", "Pegasus", "Triana")
	row := func(name string, p, t any) { fmt.Fprintf(&b, "%-24s %12v %12v\n", name, p, t) }
	row("abstract tasks", r.Pegasus.Tasks.Total, r.Triana.Tasks.Total)
	row("tasks succeeded", r.Pegasus.Tasks.Succeeded, r.Triana.Tasks.Succeeded)
	row("executable jobs", r.Pegasus.Jobs.Total, r.Triana.Jobs.Total)
	row("jobs succeeded", r.Pegasus.Jobs.Succeeded, r.Triana.Jobs.Succeeded)
	row("wall time (s)", int(r.Pegasus.WallTime.Seconds()), int(r.Triana.WallTime.Seconds()))
	row("cumulative (s)", int(r.Pegasus.CumulativeJobWallTime.Seconds()), int(r.Triana.CumulativeJobWallTime.Seconds()))
	b.WriteString("\nPegasus plans auxiliary stage-in/stage-out jobs (6 jobs for 4 tasks);\n")
	b.WriteString("Triana maps tasks to jobs 1:1 (4 jobs) — both served by the same schema.\n")
	return b.String()
}
