package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/archive"
	"repro/internal/loader"
	"repro/internal/synth"
)

// LoaderScaleRow is one point of the loader-scaling experiment (E5): the
// paper's §IV-E claims nl_load "scales well for large workflows", up to
// CyberShake's O(10^6) tasks, and the conclusion promises a loading-
// performance evaluation across workflow sizes — this regenerates that
// series over synthesized traces.
type LoaderScaleRow struct {
	Jobs      int
	Events    int
	BatchSize int
	Elapsed   time.Duration
	Rate      float64 // events/second
}

// TraceFor synthesizes a workflow trace with the given number of jobs,
// rendered to BP text. Shared by the scaling experiment and the
// benchmarks so both measure the same inputs.
func TraceFor(jobs int) []byte {
	tr := synth.Generate(synth.Config{
		Seed:           int64(jobs),
		Jobs:           jobs,
		Width:          jobs / 10,
		Hosts:          16,
		SlotsPerHost:   4,
		FailureRate:    0.02,
		MaxRetries:     2,
		QueueDelayMean: 1,
		Label:          fmt.Sprintf("scale-%d", jobs),
	})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	return buf.Bytes()
}

// LoaderScale measures load throughput across workflow sizes at one batch
// size.
func LoaderScale(jobCounts []int, batchSize int, validate bool) ([]LoaderScaleRow, error) {
	rows := make([]LoaderScaleRow, 0, len(jobCounts))
	for _, jobs := range jobCounts {
		trace := TraceFor(jobs)
		a := archive.NewInMemory()
		l, err := loader.New(a, loader.Options{BatchSize: batchSize, Validate: validate})
		if err != nil {
			return nil, err
		}
		st, err := l.LoadReader(bytes.NewReader(trace))
		if err != nil {
			return nil, err
		}
		rows = append(rows, LoaderScaleRow{
			Jobs:      jobs,
			Events:    int(st.Loaded),
			BatchSize: batchSize,
			Elapsed:   st.Elapsed,
			Rate:      st.Rate(),
		})
	}
	return rows, nil
}

// LoaderBatchSweep measures throughput at one workflow size across batch
// sizes: the ablation for the paper's batched-insert design decision
// (§V-D). The archive is persistent so every batch pays a real commit
// (WAL write); each point is the best of three runs after a warm-up pass,
// so allocator and GC noise do not swamp the batch effect.
func LoaderBatchSweep(jobs int, batchSizes []int) ([]LoaderScaleRow, error) {
	trace := TraceFor(jobs)
	dir, err := os.MkdirTemp("", "stampede-batchsweep")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	run := 0
	once := func(bs int) (loader.Stats, error) {
		run++
		a, err := archive.Open(filepath.Join(dir, fmt.Sprintf("run%d.db", run)))
		if err != nil {
			return loader.Stats{}, err
		}
		defer a.Close()
		// Full durability: each committed batch is fsynced, as a
		// production SQL archive would.
		a.Store().SetSync(true)
		l, err := loader.New(a, loader.Options{BatchSize: bs, Validate: true})
		if err != nil {
			return loader.Stats{}, err
		}
		return l.LoadReader(bytes.NewReader(trace))
	}
	if _, err := once(batchSizes[0]); err != nil { // warm-up
		return nil, err
	}
	rows := make([]LoaderScaleRow, 0, len(batchSizes))
	for _, bs := range batchSizes {
		var best loader.Stats
		for rep := 0; rep < 3; rep++ {
			st, err := once(bs)
			if err != nil {
				return nil, err
			}
			if best.Loaded == 0 || st.Elapsed < best.Elapsed {
				best = st
			}
		}
		rows = append(rows, LoaderScaleRow{
			Jobs:      jobs,
			Events:    int(best.Loaded),
			BatchSize: bs,
			Elapsed:   best.Elapsed,
			Rate:      best.Rate(),
		})
	}
	return rows, nil
}

// RenderLoaderRows formats scaling rows as an aligned table.
func RenderLoaderRows(title string, rows []LoaderScaleRow) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%10s %10s %8s %12s %14s\n", "jobs", "events", "batch", "elapsed", "events/sec")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %10d %8d %12s %14.0f\n",
			r.Jobs, r.Events, r.BatchSize, r.Elapsed.Round(time.Millisecond), r.Rate)
	}
	return b.String()
}
