package experiments

import (
	"strings"
	"testing"
)

func TestRunDARTTruncated(t *testing.T) {
	d, err := RunDART(DARTOptions{Scale: 20000, Executions: 24, TasksPerBundle: 8, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 24 exec + 3 prep + 3 zipper + 3 submit + 1 monitor.
	if d.Summary.Tasks.Total != 34 {
		t.Errorf("tasks = %d", d.Summary.Tasks.Total)
	}
	if len(d.Bundles) != 3 {
		t.Errorf("bundles = %d", len(d.Bundles))
	}
	if d.Summary.Jobs.Failed != 0 {
		t.Errorf("failures: %+v", d.Summary.Jobs)
	}
}

func TestRunDARTFullPaperShape(t *testing.T) {
	// Scale 2000: fast enough for tests while keeping the per-event real
	// overhead (tens of microseconds, multiplied by the clock scale) well
	// below the modeled durations, even under the race detector's ~10x
	// slowdown.
	d, err := RunDART(DARTOptions{Scale: 2000})
	if err != nil {
		t.Fatal(err)
	}
	s := d.Summary
	// Table I exact counts.
	if s.Tasks.Total != 367 || s.Tasks.Succeeded != 367 {
		t.Errorf("tasks = %+v, want 367", s.Tasks)
	}
	if s.Jobs.Total != 367 || s.Jobs.Succeeded != 367 {
		t.Errorf("jobs = %+v, want 367", s.Jobs)
	}
	if s.SubWorkflows.Total != 20 || s.SubWorkflows.Succeeded != 20 {
		t.Errorf("subwf = %+v, want 20", s.SubWorkflows)
	}
	if s.Jobs.Retries != 0 || s.Tasks.Failed != 0 {
		t.Errorf("retries/failures: %+v %+v", s.Jobs, s.Tasks)
	}
	// Wall time within 2x of 661s in normal runs; under instrumentation
	// (race detector, loaded CI) per-event overhead is amplified by the
	// clock scale, so the upper bound is generous. Cumulative within ~2x
	// of 40224s; the headline ordering (cumulative >> wall) must hold
	// regardless.
	wall := s.WallTime.Seconds()
	cum := s.CumulativeJobWallTime.Seconds()
	if wall < 330 || wall > 3300 {
		t.Errorf("wall = %.0fs, paper 661s", wall)
	}
	if cum < 20112 || cum > 90000 {
		t.Errorf("cumulative = %.0fs, paper 40224s", cum)
	}
	if cum < 10*wall {
		t.Errorf("parallel overlap collapsed: cum %.0f vs wall %.0f", cum, wall)
	}

	// All four report artifacts render with their key content.
	t1 := Table1(d)
	for _, want := range []string{"Tasks", "367", "Sub WF", "wall time"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	t2, err := Table2(d)
	if err != nil || !strings.Contains(t2, "dart-exec") {
		t.Errorf("Table2: %v\n%s", err, t2)
	}
	t34, err := Table34(d)
	if err != nil || !strings.Contains(t34, "Queue Time") {
		t.Errorf("Table34: %v", err)
	}
	f7, err := Fig7(d)
	if err != nil || !strings.Contains(f7, "cum_runtime_s") {
		t.Errorf("Fig7: %v", err)
	}
	// Exec durations within the paper's band (36-75s) with tolerance for
	// clock-scale overhead.
	if !strings.Contains(t2, "dart-exec") {
		t.Error("no exec row")
	}
}

func TestLoaderScaleMonotoneEvents(t *testing.T) {
	rows, err := LoaderScale([]int{100, 500, 2000}, 512, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Events <= rows[i-1].Events {
			t.Errorf("events not growing: %+v", rows)
		}
	}
	for _, r := range rows {
		if r.Rate <= 0 {
			t.Errorf("rate = %v", r.Rate)
		}
	}
	out := RenderLoaderRows("title", rows)
	if !strings.Contains(out, "events/sec") {
		t.Error("render missing header")
	}
}

func TestLoaderBatchSweepShowsBatchingWin(t *testing.T) {
	rows, err := LoaderBatchSweep(300, []int{1, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// With durable commits, batch 512 must beat batch 1 clearly.
	if rows[1].Rate < 2*rows[0].Rate {
		t.Errorf("batching win too small: batch1 %.0f vs batch512 %.0f ev/s",
			rows[0].Rate, rows[1].Rate)
	}
}

func TestCrossEngineAgreement(t *testing.T) {
	r, err := RunCrossEngine(20000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pegasus.Tasks.Total != 4 || r.Triana.Tasks.Total != 4 {
		t.Errorf("task totals: %d vs %d", r.Pegasus.Tasks.Total, r.Triana.Tasks.Total)
	}
	if r.Pegasus.Jobs.Total != 6 {
		t.Errorf("pegasus jobs = %d (want 4 compute + 2 staging)", r.Pegasus.Jobs.Total)
	}
	if r.Triana.Jobs.Total != 4 {
		t.Errorf("triana jobs = %d (want 1:1)", r.Triana.Jobs.Total)
	}
	if r.Pegasus.Tasks.Succeeded != r.Triana.Tasks.Succeeded {
		t.Error("task outcomes diverge")
	}
	out := RenderCrossEngine(r)
	if !strings.Contains(out, "Pegasus") || !strings.Contains(out, "Triana") {
		t.Error("render incomplete")
	}
}

func TestAnomalyExperimentQuality(t *testing.T) {
	r, err := RunAnomaly()
	if err != nil {
		t.Fatal(err)
	}
	if r.Recall() < 0.9 {
		t.Errorf("straggler recall = %.2f", r.Recall())
	}
	if r.Precision() < 0.9 {
		t.Errorf("straggler precision = %.2f", r.Precision())
	}
	if r.AnomaliesStraggler == 0 {
		t.Error("no runtime anomalies on the straggler run")
	}
	if r.AnomaliesClean > 2 {
		t.Errorf("clean run flagged %d times", r.AnomaliesClean)
	}
	if r.FailingScore <= r.HealthyScore {
		t.Errorf("predictor: failing %.3f <= healthy %.3f", r.FailingScore, r.HealthyScore)
	}
	out := RenderAnomaly(r)
	if !strings.Contains(out, "precision") {
		t.Error("render incomplete")
	}
}
