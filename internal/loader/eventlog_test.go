package loader_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/eventlog"
	"repro/internal/experiments"
	"repro/internal/loader"
	"repro/internal/mq"
)

// tapStream is a trace with hostile lines interleaved: the tap contract
// is that every content line reaches the log — malformed ones included —
// while comments and blanks (file path only) do not.
func tapStream(t *testing.T) []byte {
	t.Helper()
	trace := experiments.TraceFor(200)
	var b bytes.Buffer
	b.WriteString("# comment header, never tapped\n\n")
	lines := bytes.Split(bytes.TrimRight(trace, "\n"), []byte("\n"))
	for i, ln := range lines {
		b.Write(ln)
		b.WriteByte('\n')
		if i%17 == 0 {
			fmt.Fprintf(&b, "garbage line %d with no equals signs\n", i)
		}
	}
	return b.Bytes()
}

// countContent counts content lines (non-blank, non-comment) in a stream.
func countContent(stream []byte) uint64 {
	n := uint64(0)
	for _, ln := range bytes.Split(stream, []byte("\n")) {
		trimmed := bytes.TrimSpace(ln)
		if len(trimmed) == 0 || trimmed[0] == '#' {
			continue
		}
		n++
	}
	return n
}

// runTapped loads a stream through the given loader configuration with
// an eventlog tap attached, via LoadReader or Consume, and returns the
// stats plus the log.
func runTapped(t *testing.T, shards int, consume bool, stream []byte) (loader.Stats, *eventlog.Log) {
	t.Helper()
	lg, err := eventlog.Open(t.TempDir(), eventlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lg.Close() })
	arch := archive.NewInMemory()
	t.Cleanup(func() { arch.Close() })
	ld, err := loader.New(arch, loader.Options{
		Shards:   shards,
		Validate: true,
		Lenient:  true,
		Tap: func(line []byte) error {
			_, terr := lg.Append(line)
			return terr
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var st loader.Stats
	if consume {
		msgs := make(chan mq.Message, 64)
		go func() {
			defer close(msgs)
			for _, ln := range bytes.Split(stream, []byte("\n")) {
				trimmed := bytes.TrimSpace(ln)
				if len(trimmed) == 0 || trimmed[0] == '#' {
					continue // the broker never carries comments
				}
				msgs <- mq.Message{Body: append([]byte(nil), trimmed...), TS: time.Now()}
			}
		}()
		st, err = ld.Consume(context.Background(), msgs)
	} else {
		st, err = ld.LoadReader(bytes.NewReader(stream))
	}
	if err != nil {
		t.Fatal(err)
	}
	return st, lg
}

// TestTapSeesEveryIngestPath: on all four ingest paths (reader/consume ×
// sequential/sharded), the log receives exactly read+malformed records,
// in content order for the sequential reader, with malformed lines
// preserved verbatim.
func TestTapSeesEveryIngestPath(t *testing.T) {
	stream := tapStream(t)
	want := countContent(stream)
	for _, tc := range []struct {
		name    string
		shards  int
		consume bool
	}{
		{"reader-sequential", 1, false},
		{"reader-sharded", 4, false},
		{"consume-sequential", 1, true},
		{"consume-sharded", 4, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, lg := runTapped(t, tc.shards, tc.consume, stream)
			if st.Malformed == 0 {
				t.Fatal("stream should contain malformed lines")
			}
			if got := lg.Appends(); got != st.Read+st.Malformed {
				t.Fatalf("log got %d records, loader read %d + malformed %d",
					got, st.Read, st.Malformed)
			}
			if got := lg.Appends(); got != want {
				t.Fatalf("log got %d records, stream has %d content lines", got, want)
			}
		})
	}
}

// TestTapPreservesContentOrderAndBytes: on the sequential reader path
// the log is byte-for-byte the content lines of the input, in order.
func TestTapPreservesContentOrderAndBytes(t *testing.T) {
	stream := tapStream(t)
	_, lg := runTapped(t, 1, false, stream)
	cur, err := lg.Cursor(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	var wantLines [][]byte
	for _, ln := range bytes.Split(stream, []byte("\n")) {
		trimmed := bytes.TrimSpace(ln)
		if len(trimmed) == 0 || trimmed[0] == '#' {
			continue
		}
		wantLines = append(wantLines, trimmed)
	}
	for {
		rec, err := cur.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if i >= len(wantLines) || !bytes.Equal(rec.Line, wantLines[i]) {
			t.Fatalf("record %d diverges from input line: %q", i, rec.Line)
		}
		i++
	}
	if i != len(wantLines) {
		t.Fatalf("log holds %d records, input had %d content lines", i, len(wantLines))
	}
}

// TestTapErrorFailsLoadEvenLenient: a failing tap is a durability
// failure and must abort the load on every path, lenient mode included.
func TestTapErrorFailsLoadEvenLenient(t *testing.T) {
	tapErr := errors.New("disk full")
	for _, shards := range []int{1, 4} {
		for _, consume := range []bool{false, true} {
			name := fmt.Sprintf("shards=%d consume=%v", shards, consume)
			arch := archive.NewInMemory()
			ld, err := loader.New(arch, loader.Options{
				Shards:   shards,
				Validate: true,
				Lenient:  true,
				Tap: func(line []byte) error {
					return tapErr
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if consume {
				msgs := make(chan mq.Message, 4)
				msgs <- mq.Message{Body: []byte("ts=2012-11-10T00:00:00.000001Z event=stampede.xwf.start")}
				close(msgs)
				_, err = ld.Consume(context.Background(), msgs)
			} else {
				_, err = ld.LoadReader(strings.NewReader("ts=2012-11-10T00:00:00.000001Z event=stampede.xwf.start\n"))
			}
			if err == nil || !errors.Is(err, tapErr) {
				t.Fatalf("%s: load with failing tap returned %v, want the tap error", name, err)
			}
			arch.Close()
		}
	}
}
