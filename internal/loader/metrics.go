package loader

import (
	"math"
	"strconv"
	"sync/atomic"

	"repro/internal/bp"
	"repro/internal/telemetry"
)

// Loader telemetry. Per-shard families are labeled by shard index; the
// sequential (unsharded) path reports as shard "0". Children are resolved
// once per pipeline in newBatch/newPipeline so the per-event path is pure
// atomic increments.
var (
	mRead = telemetry.NewCounter("stampede_loader_events_read_total",
		"Events parsed from files, readers and bus queues.")
	mMalformed = telemetry.NewCounter("stampede_loader_events_malformed_total",
		"Unparseable BP lines encountered.")
	mInvalid = telemetry.NewCounter("stampede_loader_events_invalid_total",
		"Events rejected by schema validation or the archive.")
	mUnknown = telemetry.NewCounter("stampede_loader_events_unknown_total",
		"Events whose type the archive does not materialise.")
	mShardApplied = telemetry.NewCounterVec("stampede_loader_shard_applied_total",
		"Events folded into the archive, per apply shard.", "shard")
	mShardBatches = telemetry.NewCounterVec("stampede_loader_shard_batches_total",
		"Batch flushes performed, per apply shard.", "shard")
	mShardQueueDepth = telemetry.NewGaugeVec("stampede_loader_shard_queue_depth",
		"Apply-queue depth observed at the last dequeue, per shard.", "shard")
	mShardQueueHighWater = telemetry.NewGaugeVec("stampede_loader_shard_queue_high_water",
		"Apply-queue depth high-water mark, per shard.", "shard")
	mBatchSize = telemetry.NewHistogram("stampede_loader_batch_size",
		"Events per flushed batch.", telemetry.SizeBuckets)
	mFlushSeconds = telemetry.NewHistogramVec("stampede_loader_flush_seconds",
		"Latency of one batch flush (archive apply + WAL commit), per shard.",
		telemetry.DurationBuckets, "shard")
)

func shardLabel(i int) string { return strconv.Itoa(i) }

// allocsPerEventBits holds the most recent allocations-per-event
// measurement as float64 bits; gauges are int64 so the fractional value
// is exposed through a GaugeFunc instead.
var allocsPerEventBits atomic.Uint64

// RecordAllocsPerEvent publishes a heap-allocations-per-loaded-event
// measurement on the stampede_loader_allocs_per_event gauge. The loader
// benchmarks compute it from runtime.MemStats deltas across a load; the
// gauge holds the last recorded value.
func RecordAllocsPerEvent(v float64) { allocsPerEventBits.Store(math.Float64bits(v)) }

func init() {
	telemetry.NewGaugeFunc("stampede_loader_allocs_per_event",
		"Heap allocations per loaded event, as last measured from MemStats deltas.",
		func() float64 { return math.Float64frombits(allocsPerEventBits.Load()) })
	// The pool stats are cumulative totals, so they expose as counters
	// (scrape-time funcs over the bp atomics), not gauges.
	telemetry.NewCounterFunc("stampede_loader_event_pool_hits_total",
		"Event-pool gets served by recycling an event.",
		func() float64 { h, _, _ := bp.PoolStats(); return float64(h) })
	telemetry.NewCounterFunc("stampede_loader_event_pool_misses_total",
		"Event-pool gets that had to allocate a fresh event.",
		func() float64 { _, m, _ := bp.PoolStats(); return float64(m) })
	telemetry.NewCounterFunc("stampede_loader_event_pool_returns_total",
		"Events released back to the event pool.",
		func() float64 { _, _, r := bp.PoolStats(); return float64(r) })
}
