package loader

import (
	"strconv"

	"repro/internal/telemetry"
)

// Loader telemetry. Per-shard families are labeled by shard index; the
// sequential (unsharded) path reports as shard "0". Children are resolved
// once per pipeline in newBatch/newPipeline so the per-event path is pure
// atomic increments.
var (
	mRead = telemetry.NewCounter("stampede_loader_events_read_total",
		"Events parsed from files, readers and bus queues.")
	mMalformed = telemetry.NewCounter("stampede_loader_events_malformed_total",
		"Unparseable BP lines encountered.")
	mInvalid = telemetry.NewCounter("stampede_loader_events_invalid_total",
		"Events rejected by schema validation or the archive.")
	mUnknown = telemetry.NewCounter("stampede_loader_events_unknown_total",
		"Events whose type the archive does not materialise.")
	mShardApplied = telemetry.NewCounterVec("stampede_loader_shard_applied_total",
		"Events folded into the archive, per apply shard.", "shard")
	mShardBatches = telemetry.NewCounterVec("stampede_loader_shard_batches_total",
		"Batch flushes performed, per apply shard.", "shard")
	mShardQueueDepth = telemetry.NewGaugeVec("stampede_loader_shard_queue_depth",
		"Apply-queue depth observed at the last dequeue, per shard.", "shard")
	mShardQueueHighWater = telemetry.NewGaugeVec("stampede_loader_shard_queue_high_water",
		"Apply-queue depth high-water mark, per shard.", "shard")
	mBatchSize = telemetry.NewHistogram("stampede_loader_batch_size",
		"Events per flushed batch.", telemetry.SizeBuckets)
	mFlushSeconds = telemetry.NewHistogramVec("stampede_loader_flush_seconds",
		"Latency of one batch flush (archive apply + WAL commit), per shard.",
		telemetry.DurationBuckets, "shard")
)

func shardLabel(i int) string { return strconv.Itoa(i) }
