package loader

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/bp"
	"repro/internal/mq"
	"repro/internal/relstore"
	"repro/internal/schema"
	"repro/internal/synth"
	"repro/internal/uuid"
	"repro/internal/wfclock"
)

// interleavedStream renders the given workflow streams line-interleaved
// (round-robin), the worst case for per-workflow ordering: consecutive
// source lines almost always belong to different workflows.
func interleavedStream(streams []string) string {
	var split [][]string
	max := 0
	for _, s := range streams {
		lines := strings.Split(strings.TrimSpace(s), "\n")
		split = append(split, lines)
		if len(lines) > max {
			max = len(lines)
		}
	}
	var b strings.Builder
	for i := 0; i < max; i++ {
		for _, lines := range split {
			if i < len(lines) {
				b.WriteString(lines[i])
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// tableCounts snapshots row counts for every table.
func tableCounts(t *testing.T, a *archive.Archive) map[string]int {
	t.Helper()
	m := map[string]int{}
	for _, table := range a.Store().TableNames() {
		n, err := a.Store().Count(table)
		if err != nil {
			t.Fatal(err)
		}
		m[table] = n
	}
	return m
}

// assertJobstateOrdering checks the tentpole's ordering guarantee: for
// every job instance, the jobstate rows ordered by their submit sequence
// must have monotonically non-decreasing timestamps — i.e. each
// workflow's timeline was applied in arrival order regardless of shard
// count.
func assertJobstateOrdering(t *testing.T, a *archive.Archive) {
	t.Helper()
	states, err := a.Store().Select(relstore.Query{Table: archive.TJobState})
	if err != nil {
		t.Fatal(err)
	}
	type last struct {
		seq int64
		ts  time.Time
	}
	byInst := map[int64]last{}
	// Select returns rows in primary-key order = insertion order per
	// instance, so walking them verifies both seq contiguity and ts
	// monotonicity.
	for _, r := range states {
		inst := r["job_instance_id"].(int64)
		seq := r["jobstate_submit_seq"].(int64)
		ts := r["timestamp"].(time.Time)
		prev, seen := byInst[inst]
		if seen {
			if seq != prev.seq+1 {
				t.Fatalf("instance %d: jobstate seq jumped %d -> %d", inst, prev.seq, seq)
			}
			if ts.Before(prev.ts) {
				t.Fatalf("instance %d: jobstate timeline went backwards: %v after %v", inst, ts, prev.ts)
			}
		} else if seq != 0 {
			t.Fatalf("instance %d: first jobstate seq = %d, want 0", inst, seq)
		}
		byInst[inst] = last{seq, ts}
	}
	if len(byInst) == 0 {
		t.Fatal("no jobstate rows to check")
	}
}

func TestParallelLoadMatchesSequential(t *testing.T) {
	const workflows = 9
	var streams []string
	for i := 0; i < workflows; i++ {
		streams = append(streams, workflowStream(uuid.New().String(), 6))
	}
	input := interleavedStream(streams)

	var want map[string]int
	for _, shards := range []int{1, 2, 4, 8} {
		a := archive.NewInMemory()
		l, err := New(a, Options{Validate: true, Shards: shards, BatchSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := l.LoadReader(strings.NewReader(input))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		wantEvents := uint64(workflows * (3 + 6*5))
		if stats.Read != wantEvents || stats.Loaded != wantEvents {
			t.Fatalf("shards=%d: stats=%+v, want read=loaded=%d", shards, stats, wantEvents)
		}
		if shards > 1 {
			if len(stats.Shards) != shards {
				t.Fatalf("shards=%d: got %d shard stats", shards, len(stats.Shards))
			}
			var sum uint64
			for _, ss := range stats.Shards {
				sum += ss.Applied
			}
			if sum != stats.Loaded {
				t.Fatalf("shards=%d: shard applied sum %d != loaded %d", shards, sum, stats.Loaded)
			}
		} else if len(stats.Shards) != 0 {
			t.Fatalf("sequential load reported shard stats: %+v", stats.Shards)
		}
		counts := tableCounts(t, a)
		if want == nil {
			want = counts
		} else {
			for table, n := range want {
				if counts[table] != n {
					t.Errorf("shards=%d: table %s = %d rows, want %d", shards, table, counts[table], n)
				}
			}
		}
		assertJobstateOrdering(t, a)
	}
}

// TestParallelSubworkflowLinkage loads hierarchical traces — where a
// child workflow's plan event references its parent's uuid, and parent
// and child route to different shards — and checks that sharding never
// loses the parent link: a regression test for plan events whose parent
// row had not been materialised yet when they applied.
func TestParallelSubworkflowLinkage(t *testing.T) {
	var streams []string
	roots := map[string]bool{}
	for seed := int64(1); seed <= 2; seed++ {
		tr := synth.Generate(synth.Config{Seed: seed, Jobs: 12, SubWorkflows: 4})
		var b strings.Builder
		if _, err := tr.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		streams = append(streams, b.String())
		roots[tr.RootUUID] = true
	}
	input := interleavedStream(streams)

	var want map[string]int
	for _, shards := range []int{1, 4, 8} {
		a := archive.NewInMemory()
		l, err := New(a, Options{Validate: true, Shards: shards, BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.LoadReader(strings.NewReader(input)); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		counts := tableCounts(t, a)
		if want == nil {
			want = counts
		} else {
			for table, n := range want {
				if counts[table] != n {
					t.Errorf("shards=%d: table %s = %d rows, want %d", shards, table, counts[table], n)
				}
			}
		}
		wfs, err := a.Store().Select(relstore.Query{Table: archive.TWorkflow})
		if err != nil {
			t.Fatal(err)
		}
		if len(wfs) != 2*(1+4) {
			t.Fatalf("shards=%d: %d workflow rows, want %d", shards, len(wfs), 2*(1+4))
		}
		for _, wf := range wfs {
			uuid := wf["wf_uuid"].(string)
			if roots[uuid] {
				continue
			}
			if _, ok := wf["parent_wf_id"].(int64); !ok {
				t.Errorf("shards=%d: sub-workflow %s lost its parent link (parent_wf_id=%v)",
					shards, uuid, wf["parent_wf_id"])
			}
		}
	}
}

// TestConsumeShardedStress is the satellite stress test: K workflows
// published concurrently from G goroutines through the bus into a sharded
// Consume, asserting final archive row counts and per-workflow jobstate
// ordering.
func TestConsumeShardedStress(t *testing.T) {
	const (
		K       = 12 // workflows
		G       = 4  // publisher goroutines
		jobs    = 5
		perWF   = 3 + jobs*5
		expects = K * perWF
	)
	broker := mq.NewBroker()
	q, err := broker.DeclareQueue("stampede", mq.QueueOpts{Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := broker.Bind("stampede", "stampede.#"); err != nil {
		t.Fatal(err)
	}
	a := archive.NewInMemory()
	l, err := New(a, Options{Validate: true, Shards: 4, BatchSize: 8, FlushEvery: 5 * time.Millisecond, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}

	loadDone := make(chan struct{})
	var stats Stats
	var loadErr error
	go func() {
		defer close(loadDone)
		stats, loadErr = l.ConsumeQueue(context.Background(), q)
	}()

	// Each publisher goroutine owns K/G workflows and publishes their
	// lines in order; ordering only matters per workflow, so concurrent
	// publishers are exactly the multi-engine scenario of the paper.
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := g; k < K; k += G {
				wf := fmt.Sprintf("%08d-1111-2222-3333-444455556666", k)
				for _, line := range strings.Split(strings.TrimSpace(workflowStream(wf, jobs)), "\n") {
					ev, err := bp.Parse(line)
					if err != nil {
						t.Errorf("parse: %v", err)
						return
					}
					broker.Publish(ev.Type, []byte(line))
				}
			}
		}(g)
	}
	wg.Wait()

	// Wait for the loader to drain the queue, then end the stream.
	deadline := time.Now().Add(10 * time.Second)
	for a.Applied() < expects {
		if time.Now().After(deadline) {
			t.Fatalf("archive stuck at %d/%d events", a.Applied(), expects)
		}
		time.Sleep(time.Millisecond)
	}
	broker.DeleteQueue("stampede")
	<-loadDone
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	if stats.Loaded != expects {
		t.Fatalf("loaded %d, want %d", stats.Loaded, expects)
	}
	counts := tableCounts(t, a)
	if counts[archive.TWorkflow] != K {
		t.Errorf("workflows = %d, want %d", counts[archive.TWorkflow], K)
	}
	if counts[archive.TJob] != K*jobs {
		t.Errorf("jobs = %d, want %d", counts[archive.TJob], K*jobs)
	}
	if counts[archive.TInvocation] != K*jobs {
		t.Errorf("invocations = %d, want %d", counts[archive.TInvocation], K*jobs)
	}
	// SUBMIT, EXECUTE, SUCCESS per instance.
	if counts[archive.TJobState] != K*jobs*3 {
		t.Errorf("jobstates = %d, want %d", counts[archive.TJobState], K*jobs*3)
	}
	assertJobstateOrdering(t, a)
}

// TestManualClockFlushNoSleep proves the FlushEvery path is deflaked: with
// a Manual clock and a one-hour flush interval, an under-filled batch
// becomes visible as soon as the virtual clock crosses the interval — no
// real time passes, so the test cannot be timing-dependent.
func TestManualClockFlushNoSleep(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			clock := wfclock.NewManual(t0)
			broker := mq.NewBroker()
			q, _ := broker.DeclareQueue("q", mq.QueueOpts{Durable: true})
			_ = broker.Bind("q", "stampede.#")
			a := archive.NewInMemory()
			// Huge batch size and huge interval: only a virtual-clock tick
			// can make the event visible.
			l, err := New(a, Options{
				BatchSize:  100000,
				FlushEvery: time.Hour,
				Shards:     shards,
				Clock:      clock,
			})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			loadDone := make(chan struct{})
			go func() {
				defer close(loadDone)
				_, _ = l.ConsumeQueue(ctx, q)
			}()
			wf := uuid.New().String()
			ev := bp.New(schema.XwfStart, t0).Set(schema.AttrXwfID, wf).SetInt("restart_count", 0)
			broker.Publish(ev.Type, []byte(ev.Format()))
			// Advance virtual time until the consumer has both buffered the
			// event and seen a tick. Yielding (not sleeping) lets the
			// consumer goroutine run between advances.
			deadline := time.Now().Add(5 * time.Second)
			for a.Applied() == 0 {
				if time.Now().After(deadline) {
					t.Fatal("virtual-clock tick did not flush the batch")
				}
				clock.Advance(2 * time.Hour)
				runtime.Gosched()
			}
			if n, _ := a.Store().Count(archive.TWorkflowState); n != 1 {
				t.Fatalf("workflowstate rows = %d, want 1", n)
			}
			cancel()
			<-loadDone
		})
	}
}

// TestParallelConsumeCancelFlushes mirrors TestConsumeContextCancel for
// the sharded path: cancellation returns ctx.Err() and flushes what was
// buffered.
func TestParallelConsumeCancelFlushes(t *testing.T) {
	broker := mq.NewBroker()
	q, _ := broker.DeclareQueue("q", mq.QueueOpts{Durable: true})
	_ = broker.Bind("q", "stampede.#")
	a := archive.NewInMemory()
	l, _ := New(a, Options{Shards: 4, BatchSize: 100000, FlushEvery: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	loadDone := make(chan error, 1)
	var stats Stats
	go func() {
		var err error
		stats, err = l.ConsumeQueue(ctx, q)
		loadDone <- err
	}()
	wf := uuid.New().String()
	ev := bp.New(schema.XwfStart, t0).Set(schema.AttrXwfID, wf).SetInt("restart_count", 0)
	broker.Publish(ev.Type, []byte(ev.Format()))
	// Wait for the pipeline to pick the message up before cancelling.
	deadline := time.Now().Add(5 * time.Second)
	for q.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never drained")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-loadDone
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("err = %v, want context canceled", err)
	}
	if stats.Loaded != 1 {
		t.Fatalf("loaded = %d, want the buffered event flushed on cancel", stats.Loaded)
	}
}

// TestParallelStrictFailure checks strict-mode error propagation through
// the pipeline: a schema-invalid event fails the load.
func TestParallelStrictFailure(t *testing.T) {
	a := archive.NewInMemory()
	l, _ := New(a, Options{Validate: true, Shards: 4})
	wf := uuid.New().String()
	input := workflowStream(wf, 2) +
		"ts=2012-03-13T12:35:38.000000Z event=stampede.xwf.start xwf.id=" + uuid.New().String() + "\n" // no restart_count
	stats, err := l.LoadReader(strings.NewReader(input))
	if err == nil {
		t.Fatal("invalid event loaded in strict sharded mode")
	}
	if stats.Invalid != 1 {
		t.Fatalf("stats = %+v, want invalid=1", stats)
	}
}
