package loader

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/archive"
	"repro/internal/bp"
	"repro/internal/relstore"
	"repro/internal/uuid"
)

// TestPoolRecycleInvisibleToReaders drives the sharded pipeline — pooled
// parse, batch commit, ReleaseEvent after flush — while concurrent
// snapshot readers continuously re-read the committed rows and touch every
// byte of every string value. The pool contract says committed rows retain
// only the events' immutable strings, never the Event structs or Attrs
// arrays that recycling rewrites; if any row aliased recycled memory, the
// readers here would race with the pool's rewrites and the race detector
// flags it (run under -race, where this test carries its weight). The test
// also asserts that recycling actually happened, so a silently disabled
// pool cannot turn it into a vacuous pass.
func TestPoolRecycleInvisibleToReaders(t *testing.T) {
	// Interleave several workflows round-robin so both shards stay busy and
	// batches commit continuously while readers scan.
	const wfs = 6
	const jobsPerWF = 40
	streams := make([][]string, wfs)
	for i := range streams {
		s := workflowStream(uuid.New().String(), jobsPerWF)
		streams[i] = strings.Split(strings.TrimRight(s, "\n"), "\n")
	}
	var trace bytes.Buffer
	for i := 0; ; i++ {
		wrote := false
		for _, s := range streams {
			if i < len(s) {
				trace.WriteString(s[i])
				trace.WriteByte('\n')
				wrote = true
			}
		}
		if !wrote {
			break
		}
	}

	_, _, returns0 := bp.PoolStats()
	a := archive.NewInMemory()
	l, err := New(a, Options{BatchSize: 32, Validate: true, Shards: 2, QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var scans atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := a.Snapshot()
				for _, tbl := range []string{archive.TJobState, archive.TInvocation, archive.TJob} {
					rows, err := sn.Select(relstore.Query{Table: tbl})
					if err != nil {
						t.Error(err)
						sn.Close()
						return
					}
					for _, row := range rows {
						for _, v := range row {
							s, ok := v.(string)
							if !ok {
								continue
							}
							sum := 0
							for i := 0; i < len(s); i++ {
								sum += int(s[i])
							}
							if len(s) > 0 && sum == 0 {
								t.Errorf("table %s: string value of NULs, recycled memory leaked into a row", tbl)
							}
						}
					}
				}
				sn.Close()
				scans.Add(1)
			}
		}()
	}

	st, err := l.LoadReader(bytes.NewReader(trace.Bytes()))
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(wfs * (3 + jobsPerW(jobsPerWF))); st.Loaded != want {
		t.Errorf("loaded %d events, want %d", st.Loaded, want)
	}
	if scans.Load() == 0 {
		t.Error("readers never completed a scan; the test observed nothing")
	}
	_, _, returns1 := bp.PoolStats()
	if returns1 == returns0 {
		t.Error("no events were recycled during the load; the test proved nothing")
	}
}

// jobsPerW counts the per-job events workflowStream emits (job.info,
// submit.start, main.start, inv.end, main.end).
func jobsPerW(n int) int { return 5 * n }
