package loader

import (
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/bp"
	"repro/internal/mq"
	"repro/internal/schema"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wfclock"
)

// shardIndex maps a workflow uuid to an apply shard.
func shardIndex(uuid string, shards int) int {
	return archive.StripeFor(uuid) % shards
}

// The sharded pipeline: one parse stage (the caller's goroutine), then per
// shard a validate worker feeding a batching applier over bounded
// channels. Events route to shards by hashing xwf.id, so every event of
// one workflow flows through one shard in arrival order — the archive's
// per-workflow ordering contract — while different workflows validate and
// apply concurrently. Bounded channels give backpressure end to end: a
// slow archive fills the apply queue, which blocks the validator, which
// fills the validate queue, which blocks the parser.
//
// The validate worker is paired one-per-shard rather than drawn from a
// free pool on purpose: a free pool could finish two events of the same
// workflow out of order, breaking the ordering guarantee the routing
// exists to provide. With validation disabled the stage is skipped
// entirely — the parser feeds the apply queue directly rather than
// paying a no-op channel hop per event.

type pipeline struct {
	l      *Loader
	ctx    context.Context
	cancel context.CancelFunc
	shards []*pshard
	wg     sync.WaitGroup

	emu sync.Mutex
	err error

	// Parser-owned counters (single producer goroutine).
	read      uint64
	malformed uint64
}

// pshard is one shard's channels, batch buffer and counters. Counter
// fields are single-writer: invalid belongs to the validate goroutine,
// the rest to the apply goroutine; finish() reads them after wg.Wait.
type pshard struct {
	idx        int
	validateCh chan *bp.Event // nil when validation is off
	applyCh    chan *bp.Event
	b          *batch

	invalid   uint64
	maxQueue  int
	batches   uint64
	flushTime time.Duration
	maxFlush  time.Duration

	// Pre-resolved telemetry children (label shard=idx).
	mQueueDepth *telemetry.Gauge
	mQueueHW    *telemetry.Gauge
}

func (l *Loader) newPipeline(ctx context.Context) *pipeline {
	pctx, cancel := context.WithCancel(ctx)
	p := &pipeline{l: l, ctx: pctx, cancel: cancel}
	for i := 0; i < l.opts.Shards; i++ {
		sh := &pshard{
			idx:         i,
			applyCh:     make(chan *bp.Event, l.opts.QueueDepth),
			b:           l.newBatch(i),
			mQueueDepth: mShardQueueDepth.With(shardLabel(i)),
			mQueueHW:    mShardQueueHighWater.With(shardLabel(i)),
		}
		sh.b.val = nil // validation happens in the shard's validate stage
		p.shards = append(p.shards, sh)
		if l.val != nil {
			sh.validateCh = make(chan *bp.Event, l.opts.QueueDepth)
			p.wg.Add(1)
			go func() { defer p.wg.Done(); sh.runValidate(p) }()
		}
		p.wg.Add(1)
		go func() { defer p.wg.Done(); sh.runApply(p) }()
	}
	return p
}

// fail records the first error and cancels the pipeline.
func (p *pipeline) fail(err error) {
	if err == nil {
		return
	}
	p.emu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.emu.Unlock()
	p.cancel()
}

func (p *pipeline) firstErr() error {
	p.emu.Lock()
	defer p.emu.Unlock()
	return p.err
}

// shardFor routes a parsed event to its shard. It reuses the archive's
// workflow-uuid hash so shard affinity and archive stripe affinity line
// up.
func (p *pipeline) shardFor(ev *bp.Event) *pshard {
	return p.shards[shardIndex(ev.Get(schema.AttrXwfID), len(p.shards))]
}

// dispatch hands an event to its shard, blocking for backpressure. It
// returns false when the pipeline was cancelled.
func (p *pipeline) dispatch(ev *bp.Event) bool {
	sh := p.shardFor(ev)
	ch := sh.validateCh
	if ch == nil {
		ch = sh.applyCh
	}
	select {
	case ch <- ev:
		return true
	case <-p.ctx.Done():
		return false
	}
}

// produceReader is the parse stage over an io.Reader source.
func (p *pipeline) produceReader(r io.Reader) {
	br := bp.NewReader(r)
	br.SetLenient(p.l.opts.Lenient)
	// Pooled events flow down the pipeline with ownership: parser →
	// validator → apply shard, which releases them after its batch
	// commits.
	br.SetPooled(true)
	if p.l.opts.Tap != nil {
		br.SetTap(p.l.opts.Tap)
	}
	if trace.Enabled() {
		br.SetSampler(trace.Sample)
	}
	for {
		ev, err := br.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			p.fail(err)
			break
		}
		if id, t0 := br.LastSample(); id != 0 {
			traceRead(id, t0, ev)
		}
		p.read++
		mRead.Inc()
		if !p.dispatch(ev) {
			// Cancelled before handoff: the event never reached a shard,
			// so ownership is still here.
			bp.ReleaseEvent(ev)
			break
		}
	}
	p.malformed = uint64(br.Skipped())
	mMalformed.Add(p.malformed)
}

// produceMsgs is the parse stage over an mq delivery channel.
func (p *pipeline) produceMsgs(msgs <-chan mq.Message) {
	for {
		select {
		case <-p.ctx.Done():
			return
		case m, ok := <-msgs:
			if !ok {
				return
			}
			if p.l.opts.Tap != nil {
				if err := p.l.opts.Tap(m.Body); err != nil {
					p.fail(err)
					return
				}
			}
			var id uint64
			var recvNS int64
			if trace.Enabled() {
				if id = trace.Sample(m.Body); id != 0 {
					recvNS = time.Now().UnixNano()
				}
			}
			ev, err := bp.ParseBytes(m.Body)
			if err != nil {
				p.malformed++
				mMalformed.Inc()
				if p.l.opts.Lenient {
					continue
				}
				p.fail(err)
				return
			}
			traceConsumed(id, recvNS, m, ev)
			p.read++
			mRead.Inc()
			if !p.dispatch(ev) {
				bp.ReleaseEvent(ev)
				return
			}
		}
	}
}

func (sh *pshard) runValidate(p *pipeline) {
	defer close(sh.applyCh)
	val := p.l.val
	for {
		select {
		case <-p.ctx.Done():
			return
		case ev, ok := <-sh.validateCh:
			if !ok {
				return
			}
			if val != nil {
				if err := val.Validate(ev); err != nil {
					sh.invalid++
					mInvalid.Inc()
					// Rejected events never reach the apply shard, so the
					// validator is their last owner.
					bp.ReleaseEvent(ev)
					if p.l.opts.Lenient {
						continue
					}
					p.fail(err)
					return
				}
				traceValidated(ev)
			}
			select {
			case sh.applyCh <- ev:
			case <-p.ctx.Done():
				return
			}
		}
	}
}

func (sh *pshard) runApply(p *pipeline) {
	ticker := wfclock.NewTicker(p.l.opts.Clock, p.l.opts.FlushEvery)
	defer ticker.Stop()
	flush := func() error {
		if len(sh.b.buf) == 0 {
			return nil
		}
		t0 := time.Now()
		err := sh.b.flush()
		d := time.Since(t0)
		sh.batches++
		sh.flushTime += d
		if d > sh.maxFlush {
			sh.maxFlush = d
		}
		return err
	}
	for {
		select {
		case <-p.ctx.Done():
			// Cancelled: drain events already handed to this shard,
			// then make them visible — like sequential Consume, where
			// every event read before cancel is in the batch it
			// flushes. Without the drain an event could be lost in
			// the queue when cancellation and delivery race.
		drain:
			for {
				select {
				case ev, ok := <-sh.applyCh:
					if !ok {
						break drain
					}
					sh.b.buf = append(sh.b.buf, ev)
				default:
					break drain
				}
			}
			if err := flush(); err != nil {
				p.fail(err)
			}
			return
		case <-ticker.C():
			if err := flush(); err != nil {
				p.fail(err)
				return
			}
		case ev, ok := <-sh.applyCh:
			if !ok {
				if err := flush(); err != nil {
					p.fail(err)
				}
				return
			}
			sh.mQueueDepth.Set(int64(len(sh.applyCh)))
			if depth := len(sh.applyCh) + 1; depth > sh.maxQueue {
				sh.maxQueue = depth
				sh.mQueueHW.SetMax(int64(depth))
			}
			sh.b.buf = append(sh.b.buf, ev)
			if len(sh.b.buf) >= p.l.opts.BatchSize {
				if err := flush(); err != nil {
					p.fail(err)
					return
				}
			}
		}
	}
}

// finish closes the feed, waits for every stage to drain, flushes the
// archive and aggregates stats. The producer must have returned before
// finish is called.
func (p *pipeline) finish(start time.Time) (Stats, error) {
	for _, sh := range p.shards {
		if sh.validateCh != nil {
			close(sh.validateCh) // runValidate drains, then closes applyCh
		} else {
			close(sh.applyCh)
		}
	}
	p.wg.Wait()
	p.cancel()
	if err := p.l.arch.Flush(); err != nil {
		p.fail(err)
	}
	agg := Stats{Read: p.read, Malformed: p.malformed}
	for _, sh := range p.shards {
		agg.Loaded += sh.b.stats.Loaded
		agg.Invalid += sh.invalid + sh.b.stats.Invalid
		agg.Unknown += sh.b.stats.Unknown
		agg.Shards = append(agg.Shards, ShardStats{
			Shard:        sh.idx,
			Applied:      sh.b.stats.Loaded,
			Batches:      sh.batches,
			MaxQueue:     sh.maxQueue,
			FlushTime:    sh.flushTime,
			MaxFlushTime: sh.maxFlush,
		})
	}
	agg.Elapsed = time.Since(start)
	p.l.account(agg)
	return agg, p.firstErr()
}

func (l *Loader) loadReaderParallel(r io.Reader) (Stats, error) {
	start := time.Now()
	p := l.newPipeline(context.Background())
	p.produceReader(r)
	return p.finish(start)
}

func (l *Loader) consumeParallel(ctx context.Context, msgs <-chan mq.Message) (Stats, error) {
	start := time.Now()
	p := l.newPipeline(ctx)
	p.produceMsgs(msgs)
	if err := ctx.Err(); err != nil {
		p.fail(err)
	}
	return p.finish(start)
}
