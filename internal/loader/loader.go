// Package loader implements nl_load with the stampede_loader module: it
// consumes NetLogger BP event streams (from files, readers or the message
// bus), validates them against the Stampede YANG schema, and folds them
// into the relational archive in batches.
//
// Batching is the paper's key loader design decision (§V-D notes inserts
// are batched "to improve the performance of Pegasus workflows logging");
// BenchmarkLoaderBatchSize at the repository root quantifies it. With
// Options.Shards > 1 the loader runs as a staged pipeline — parse stage,
// per-shard validators, per-shard batching appliers — routing events by
// xwf.id so per-workflow order is preserved while distinct workflows load
// in parallel (see pipeline.go).
package loader

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/bp"
	"repro/internal/mq"
	"repro/internal/schema"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wfclock"
)

// ViewObserver receives successfully applied events right after their
// batch commits, while the pooled events are still valid. Satisfied by
// *views.Views; an interface here keeps the loader free of a dependency
// on the serving layer (which itself builds on loader-adjacent packages
// for rebuilds and tests).
type ViewObserver interface {
	ObserveBatch(evs []*bp.Event)
}

// Options configures a Loader.
type Options struct {
	// BatchSize is how many events are folded into the archive per batch.
	// Zero means DefaultBatchSize; 1 disables batching. With shards, each
	// shard keeps its own batch buffer of this size.
	BatchSize int
	// FlushEvery bounds how long a streamed event may sit in the batch
	// buffer before being made visible in the archive. Zero means
	// DefaultFlushEvery. Only Consume uses it; file loads flush at EOF.
	FlushEvery time.Duration
	// Validate runs every event through the YANG schema validator before
	// loading (on by default in the published tooling). Invalid events
	// are rejected and counted.
	Validate bool
	// Lenient makes malformed BP lines and schema-invalid or unknown
	// events non-fatal: they are counted and skipped.
	Lenient bool
	// Shards is the number of parallel apply shards. Zero or one keeps
	// the classic single-goroutine path, byte-for-byte identical in
	// behaviour. With N > 1, events route to shards by xwf.id, so each
	// workflow's events stay ordered while different workflows apply in
	// parallel.
	Shards int
	// QueueDepth bounds the per-shard pipeline channels; a slow archive
	// backpressures producers instead of growing memory. Zero means
	// DefaultQueueDepth.
	QueueDepth int
	// Clock drives the FlushEvery ticker. Nil means the wall clock;
	// tests inject a wfclock.Manual to make timer flushes deterministic.
	Clock wfclock.Clock
	// Tap, when set, runs on every raw line before it is parsed —
	// malformed lines included — on all ingest paths (file, reader,
	// consume, sharded or not). The soak harness and ingest binaries use
	// it to append lines to the event log, making the log a faithful
	// record of the stream as it arrived, not of what parsed. The line
	// buffer is only valid for the duration of the call. A Tap error is
	// fatal to the load even in Lenient mode: leniency tolerates bad
	// data, not a broken durability layer.
	Tap func(line []byte) error
	// Views, when set, receives every successfully applied event right
	// after its batch commits (and before the events are recycled), so
	// materialized aggregates stay incremental with the archive — the
	// dashboard serves from them instead of scanning snapshots. All
	// ingest paths, sharded or not, feed the same instance. Must be a
	// non-nil implementation when set (typically *views.Views).
	Views ViewObserver
}

// Default tuning, matched to the loader-scaling bench.
const (
	DefaultBatchSize  = 512
	DefaultFlushEvery = 500 * time.Millisecond
	DefaultQueueDepth = 256
)

// ShardStats reports one apply shard's share of a load.
type ShardStats struct {
	Shard        int           // shard index
	Applied      uint64        // events folded by this shard
	Batches      uint64        // batch flushes performed
	MaxQueue     int           // apply-queue depth high-water mark
	FlushTime    time.Duration // cumulative time inside flushes
	MaxFlushTime time.Duration // worst single flush
}

// Stats counts what happened during a load.
type Stats struct {
	Read      uint64 // events parsed from the source
	Loaded    uint64 // events folded into the archive
	Invalid   uint64 // events rejected by schema validation
	Unknown   uint64 // events whose type the archive does not materialise
	Malformed uint64 // unparseable BP lines (lenient mode only)
	Elapsed   time.Duration
	// Shards holds per-shard counters when the load ran sharded (empty on
	// the sequential path), so the scaling experiment can report where
	// time goes.
	Shards []ShardStats

	// String() memo: the rendered line plus the counter values it was
	// rendered from, so periodic logging of unchanged stats reuses the
	// string instead of re-formatting every call.
	str    string
	strKey [6]uint64
}

// Rate returns loaded events per second.
func (s *Stats) Rate() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Loaded) / s.Elapsed.Seconds()
}

// String renders the counters as one log line. The line is built on
// demand and cached until a counter changes, so logging loops that print
// the same Stats repeatedly format it once.
func (s *Stats) String() string {
	key := [6]uint64{s.Read, s.Loaded, s.Invalid, s.Unknown, s.Malformed, uint64(s.Elapsed)}
	if s.str == "" || key != s.strKey {
		s.strKey = key
		s.str = s.format()
	}
	return s.str
}

func (s *Stats) format() string {
	var b []byte
	b = append(b, "read="...)
	b = strconv.AppendUint(b, s.Read, 10)
	b = append(b, " loaded="...)
	b = strconv.AppendUint(b, s.Loaded, 10)
	b = append(b, " invalid="...)
	b = strconv.AppendUint(b, s.Invalid, 10)
	b = append(b, " unknown="...)
	b = strconv.AppendUint(b, s.Unknown, 10)
	b = append(b, " malformed="...)
	b = strconv.AppendUint(b, s.Malformed, 10)
	b = append(b, " elapsed="...)
	b = append(b, s.Elapsed.String()...)
	b = append(b, " rate="...)
	b = strconv.AppendFloat(b, s.Rate(), 'f', 0, 64)
	b = append(b, "/s"...)
	return string(b)
}

// Loader loads BP event streams into one archive. A Loader may be used by
// one goroutine at a time per call, but separate calls (e.g. Consume on
// two queues) may run concurrently; the batch buffer is per-call.
type Loader struct {
	arch *archive.Archive
	val  *schema.Validator
	opts Options

	mu    sync.Mutex
	total Stats
}

// New returns a loader over arch.
func New(arch *archive.Archive, opts Options) (*Loader, error) {
	if opts.BatchSize == 0 {
		opts.BatchSize = DefaultBatchSize
	}
	if opts.BatchSize < 1 {
		return nil, fmt.Errorf("loader: batch size %d out of range", opts.BatchSize)
	}
	if opts.FlushEvery == 0 {
		opts.FlushEvery = DefaultFlushEvery
	}
	if opts.Shards == 0 {
		opts.Shards = 1
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("loader: shard count %d out of range", opts.Shards)
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.QueueDepth < 1 {
		return nil, fmt.Errorf("loader: queue depth %d out of range", opts.QueueDepth)
	}
	if opts.Clock == nil {
		opts.Clock = wfclock.Real
	}
	l := &Loader{arch: arch, opts: opts}
	if opts.Validate {
		v, err := schema.NewValidator()
		if err != nil {
			return nil, err
		}
		l.val = v
	}
	return l, nil
}

// TotalStats returns counters accumulated across every call on this
// loader.
func (l *Loader) TotalStats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

func (l *Loader) account(s Stats) {
	l.mu.Lock()
	l.total.Read += s.Read
	l.total.Loaded += s.Loaded
	l.total.Invalid += s.Invalid
	l.total.Unknown += s.Unknown
	l.total.Malformed += s.Malformed
	l.total.Elapsed += s.Elapsed
	l.mu.Unlock()
}

// batch is one goroutine's accumulation state. The sequential path owns a
// single batch with the validator attached; each pipeline shard owns one
// with val == nil (validation already happened upstream).
type batch struct {
	arch  *archive.Archive
	val   *schema.Validator
	opts  Options
	buf   []*bp.Event
	stats Stats

	// traced gathers the sampled events' trace context out of buf before
	// the flush releases them, so the queue/apply/commit spans can be
	// recorded after the events are back in the pool. Reused per flush.
	traced []tracedRef

	// Pre-resolved telemetry children for this shard.
	mApplied *telemetry.Counter
	mBatches *telemetry.Counter
	mFlush   *telemetry.Histogram
}

// tracedRef is the part of a sampled event's trace context that must
// outlive its release: the id, its workflow (an immutable GC-managed
// string, safe past release), and the last stage boundary.
type tracedRef struct {
	id uint64
	wf string
	ns int64
}

// newBatch builds the accumulation state for one apply shard (the
// sequential path is shard 0), resolving its telemetry children up front.
func (l *Loader) newBatch(shard int) *batch {
	s := shardLabel(shard)
	return &batch{
		arch: l.arch, val: l.val, opts: l.opts,
		mApplied: mShardApplied.With(s),
		mBatches: mShardBatches.With(s),
		mFlush:   mFlushSeconds.With(s),
	}
}

// add takes ownership of ev (a pooled event): it is either buffered until
// the batch commits or released here on the reject paths.
func (b *batch) add(ev *bp.Event) error {
	b.stats.Read++
	mRead.Inc()
	if b.val != nil {
		if err := b.val.Validate(ev); err != nil {
			b.stats.Invalid++
			mInvalid.Inc()
			// The validation error holds formatted copies, never the
			// event itself, so releasing before returning it is safe.
			bp.ReleaseEvent(ev)
			if b.opts.Lenient {
				return nil
			}
			return err
		}
		traceValidated(ev)
	}
	return b.addValidated(ev)
}

// traceValidated records the validate span for a sampled event and moves
// its stage boundary forward. Shared by the sequential path (batch.add)
// and the pipeline's validate workers.
func traceValidated(ev *bp.Event) {
	if ev.TraceID == 0 {
		return
	}
	now := time.Now().UnixNano()
	trace.Record(ev.TraceID, trace.StageValidate, ev.Get(schema.AttrXwfID), ev.TraceNS, now)
	ev.TraceNS = now
}

// traceConsumed records the route (broker dwell) and parse spans for a
// sampled bus message and stamps the trace context onto ev. id and
// recvNS come from the pre-parse sampling check; id == 0 is the
// unsampled fast path.
func traceConsumed(id uint64, recvNS int64, m mq.Message, ev *bp.Event) {
	if id == 0 {
		return
	}
	wf := ev.Get(schema.AttrXwfID)
	trace.Record(id, trace.StageRoute, wf, m.TS.UnixNano(), recvNS)
	now := time.Now().UnixNano()
	trace.Record(id, trace.StageParse, wf, recvNS, now)
	ev.TraceID, ev.TraceNS = id, now
}

// traceRead records the emit and parse spans for a sampled file/reader
// line. id and t0 come from the reader's pre-parse sampling hook
// (bp.Reader.SetSampler); id == 0 is the unsampled fast path, which paid
// only the line hash. The emit span runs from the event's own ts to the
// load (clamped to zero length when the ts is in the wall clock's future
// — scaled virtual engine clocks).
func traceRead(id uint64, t0 int64, ev *bp.Event) {
	if id == 0 {
		return
	}
	wf := ev.Get(schema.AttrXwfID)
	start := ev.TS.UnixNano()
	if start > t0 {
		start = t0
	}
	trace.Record(id, trace.StageEmit, wf, start, t0)
	now := time.Now().UnixNano()
	trace.Record(id, trace.StageParse, wf, t0, now)
	ev.TraceID, ev.TraceNS = id, now
}

// addValidated appends an already-validated event, flushing at BatchSize.
func (b *batch) addValidated(ev *bp.Event) error {
	b.buf = append(b.buf, ev)
	if len(b.buf) >= b.opts.BatchSize {
		return b.flush()
	}
	return nil
}

func (b *batch) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	mBatchSize.Observe(float64(len(b.buf)))
	loaded0, invalid0, unknown0 := b.stats.Loaded, b.stats.Invalid, b.stats.Unknown
	t0 := time.Now()
	err := b.applyAndCommit()
	b.mFlush.ObserveSince(t0)
	b.mBatches.Inc()
	b.mApplied.Add(b.stats.Loaded - loaded0)
	mInvalid.Add(b.stats.Invalid - invalid0)
	mUnknown.Add(b.stats.Unknown - unknown0)
	return err
}

// applyAndCommit folds the buffered events into the archive and makes
// them durable.
func (b *batch) applyAndCommit() error {
	// Gather sampled events' trace context before the flush releases
	// them. The queue span (validation to apply start) closes here; the
	// apply and commit spans are recorded once the batch is durable.
	b.traced = b.traced[:0]
	var applyStart int64
	if trace.Enabled() {
		for _, ev := range b.buf {
			if ev.TraceID != 0 {
				b.traced = append(b.traced, tracedRef{ev.TraceID, ev.Get(schema.AttrXwfID), ev.TraceNS})
			}
		}
		if len(b.traced) > 0 {
			applyStart = time.Now().UnixNano()
		}
	}
	// The batch path aborts at the first bad event; resume past it event
	// by event, classifying failures, until the tail is clean.
	rest := b.buf
	for len(rest) > 0 {
		n, err := b.arch.ApplyBatch(rest)
		b.stats.Loaded += uint64(n)
		if b.opts.Views != nil && n > 0 {
			// Fold the applied prefix into the materialized views before
			// the events are recycled. ApplyBatch published its epoch, so
			// every event observed here is already visible to snapshot
			// readers — the views trail the store, never lead it.
			b.opts.Views.ObserveBatch(rest[:n])
		}
		if err == nil {
			break
		}
		// rest[n] is the offender.
		rest = rest[n:]
		bad := rest[0]
		rest = rest[1:]
		switch {
		case errors.Is(err, archive.ErrUnknownEvent):
			b.stats.Unknown++
			if !b.opts.Lenient {
				b.releaseBuf()
				return fmt.Errorf("loader: %s: %w", bad.Type, err)
			}
		default:
			b.stats.Invalid++
			if !b.opts.Lenient {
				b.releaseBuf()
				return fmt.Errorf("loader: %s: %w", bad.Type, err)
			}
		}
	}
	b.releaseBuf()
	// Each batch is a transaction: committed data must reach the store's
	// durability layer before the next batch. In-memory archives make
	// this a no-op; persistent ones pay one write per batch, which is
	// exactly the cost the paper's batched inserts amortize. Concurrent
	// shard flushes group-commit inside the store, sharing fsyncs.
	if len(b.traced) == 0 {
		return b.arch.Flush()
	}
	applyEnd := time.Now().UnixNano()
	err := b.arch.Flush()
	commitEnd := time.Now().UnixNano()
	// The epoch read after the flush is the version at which every event
	// of this batch is visible to snapshot readers.
	epoch := b.arch.Store().Epoch()
	for _, tr := range b.traced {
		trace.Record(tr.id, trace.StageQueue, tr.wf, tr.ns, applyStart)
		trace.Record(tr.id, trace.StageApply, tr.wf, applyStart, applyEnd)
		trace.RecordCommit(tr.id, tr.wf, applyEnd, commitEnd, epoch)
	}
	b.traced = b.traced[:0]
	return err
}

// releaseBuf recycles the batch's events back to the event pool once the
// archive has folded (or rejected) them. The archive retains only the
// events' strings — immutable, GC-managed — never the events themselves,
// so recycling here cannot corrupt committed rows.
func (b *batch) releaseBuf() {
	for i, ev := range b.buf {
		bp.ReleaseEvent(ev)
		b.buf[i] = nil
	}
	b.buf = b.buf[:0]
}

// LoadReader loads a complete BP stream from r, flushing at EOF.
func (l *Loader) LoadReader(r io.Reader) (Stats, error) {
	if l.opts.Shards > 1 {
		return l.loadReaderParallel(r)
	}
	start := time.Now()
	br := bp.NewReader(r)
	br.SetLenient(l.opts.Lenient)
	// Pooled mode: the batch owns each event until its flush releases it.
	br.SetPooled(true)
	if l.opts.Tap != nil {
		br.SetTap(l.opts.Tap)
	}
	if trace.Enabled() {
		br.SetSampler(trace.Sample)
	}
	b := l.newBatch(0)
	for {
		ev, err := br.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			b.releaseBuf()
			b.stats.Elapsed = time.Since(start)
			l.account(b.stats)
			return b.stats, err
		}
		if id, t0 := br.LastSample(); id != 0 {
			traceRead(id, t0, ev)
		}
		if err := b.add(ev); err != nil {
			b.releaseBuf()
			b.stats.Elapsed = time.Since(start)
			l.account(b.stats)
			return b.stats, err
		}
	}
	err := b.flush()
	b.stats.Malformed = uint64(br.Skipped())
	mMalformed.Add(b.stats.Malformed)
	b.stats.Elapsed = time.Since(start)
	l.account(b.stats)
	return b.stats, err
}

// LoadFile loads a BP log file.
func (l *Loader) LoadFile(path string) (Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return Stats{}, err
	}
	defer f.Close()
	return l.LoadReader(f)
}

// Consume drains messages from an mq delivery channel until the channel
// closes or ctx is done, folding message bodies (BP lines) into the
// archive. Batches are flushed by size and by the FlushEvery ticker so
// live dashboards see events promptly; this is the realtime path the
// paper's DART run used.
func (l *Loader) Consume(ctx context.Context, msgs <-chan mq.Message) (Stats, error) {
	if l.opts.Shards > 1 {
		return l.consumeParallel(ctx, msgs)
	}
	start := time.Now()
	b := l.newBatch(0)
	ticker := wfclock.NewTicker(l.opts.Clock, l.opts.FlushEvery)
	defer ticker.Stop()
	finish := func(err error) (Stats, error) {
		if ferr := b.flush(); err == nil {
			err = ferr
		}
		if ferr := l.arch.Flush(); err == nil {
			err = ferr
		}
		b.stats.Elapsed = time.Since(start)
		l.account(b.stats)
		return b.stats, err
	}
	for {
		select {
		case <-ctx.Done():
			return finish(ctx.Err())
		case <-ticker.C():
			if err := b.flush(); err != nil {
				return finish(err)
			}
			if err := l.arch.Flush(); err != nil {
				return finish(err)
			}
		case m, ok := <-msgs:
			if !ok {
				return finish(nil)
			}
			if l.opts.Tap != nil {
				if err := l.opts.Tap(m.Body); err != nil {
					return finish(err)
				}
			}
			// Sampling runs on the raw body before the parse so the parse
			// span has a start; unsampled messages pay one hash.
			var id uint64
			var recvNS int64
			if trace.Enabled() {
				if id = trace.Sample(m.Body); id != 0 {
					recvNS = time.Now().UnixNano()
				}
			}
			ev, err := bp.ParseBytes(m.Body)
			if err != nil {
				b.stats.Malformed++
				mMalformed.Inc()
				if l.opts.Lenient {
					continue
				}
				return finish(err)
			}
			traceConsumed(id, recvNS, m, ev)
			if err := b.add(ev); err != nil {
				return finish(err)
			}
		}
	}
}

// ConsumeQueue is Consume over an in-process broker queue; it cancels the
// queue subscription when done.
func (l *Loader) ConsumeQueue(ctx context.Context, q *mq.Queue) (Stats, error) {
	ch := q.Consume()
	defer q.Cancel()
	return l.Consume(ctx, ch)
}
