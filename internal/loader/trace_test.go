package loader

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/mq"
	"repro/internal/synth"
	"repro/internal/trace"
)

// spansFor collects the default ring's spans for one trace id, keyed by
// stage.
func spansFor(id uint64) map[trace.Stage]trace.Span {
	out := map[trace.Stage]trace.Span{}
	for _, sp := range trace.Default().Spans() {
		if sp.ID == id {
			out[sp.Stage] = sp
		}
	}
	return out
}

// synthLines renders a deterministic synthetic workload and returns the
// BP byte stream plus its individual trimmed lines (the exact bytes the
// reader hashes for the sampling decision).
func synthLines(t *testing.T, cfg synth.Config) ([]byte, [][]byte) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := synth.Generate(cfg).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var lines [][]byte
	for _, l := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if l = bytes.TrimSpace(l); len(l) > 0 {
			lines = append(lines, l)
		}
	}
	return buf.Bytes(), lines
}

// checkPipelineTrace asserts a sampled event's spans cover the expected
// stages with monotonically chained boundaries and a visibility epoch.
func checkPipelineTrace(t *testing.T, id uint64, stages []trace.Stage) {
	t.Helper()
	spans := spansFor(id)
	for _, st := range stages {
		sp, ok := spans[st]
		if !ok {
			t.Fatalf("trace %x missing %v span (has %v)", id, st, spans)
		}
		if sp.End < sp.Start {
			t.Errorf("%v span runs backwards: %d -> %d", st, sp.Start, sp.End)
		}
	}
	// Stage boundaries chain: each stage starts where the previous ended.
	for i := 1; i < len(stages); i++ {
		prev, cur := spans[stages[i-1]], spans[stages[i]]
		if cur.Start != prev.End {
			t.Errorf("%v starts at %d but %v ended at %d", stages[i], cur.Start, stages[i-1], prev.End)
		}
	}
	if c := spans[trace.StageCommit]; c.Epoch == 0 {
		t.Error("commit span has no visibility epoch")
	}
	if _, ok := spans[trace.StageDropped]; ok {
		t.Errorf("trace %x has a drop tombstone on the successful path", id)
	}
}

// TestFileLoadTracesEndToEnd traces every event of a sequential file
// load and checks a sampled line's full emit-to-commit journey plus the
// workflow freshness watermark.
func TestFileLoadTracesEndToEnd(t *testing.T) {
	defer trace.SetSampleEvery(trace.DefaultSampleEvery)
	trace.SetSampleEvery(1)

	stream, lines := synthLines(t, synth.Config{Seed: 11, Jobs: 4})
	arch := archive.NewInMemory()
	defer arch.Close()
	l, err := New(arch, Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := l.LoadReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded == 0 {
		t.Fatal("nothing loaded")
	}

	id := trace.Sample(lines[0])
	checkPipelineTrace(t, id, []trace.Stage{
		trace.StageEmit, trace.StageParse, trace.StageValidate,
		trace.StageQueue, trace.StageApply, trace.StageCommit,
	})

	// The archive advanced this workflow's freshness watermark to its
	// newest applied event timestamp.
	wfUUID := wfOfLine(t, lines[0])
	wm, ok := trace.WatermarkOf(wfUUID)
	if !ok {
		t.Fatalf("no watermark for workflow %s", wfUUID)
	}
	if wm.IsZero() {
		t.Fatal("watermark never advanced")
	}
}

// TestShardedLoadTracesEndToEnd runs the same check through the sharded
// pipeline: per-shard validators and batching appliers must thread the
// trace context identically.
func TestShardedLoadTracesEndToEnd(t *testing.T) {
	defer trace.SetSampleEvery(trace.DefaultSampleEvery)
	trace.SetSampleEvery(1)

	stream, lines := synthLines(t, synth.Config{Seed: 13, Jobs: 6, SubWorkflows: 2})
	arch := archive.NewInMemory()
	defer arch.Close()
	l, err := New(arch, Options{Validate: true, Shards: 4, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadReader(bytes.NewReader(stream)); err != nil {
		t.Fatal(err)
	}

	id := trace.Sample(lines[0])
	checkPipelineTrace(t, id, []trace.Stage{
		trace.StageEmit, trace.StageParse, trace.StageValidate,
		trace.StageQueue, trace.StageApply, trace.StageCommit,
	})
}

// TestBusConsumeTracesRouteSpan feeds events through a broker queue and
// asserts the consumed trace records broker dwell as its route stage.
func TestBusConsumeTracesRouteSpan(t *testing.T) {
	defer trace.SetSampleEvery(trace.DefaultSampleEvery)
	trace.SetSampleEvery(1)

	_, lines := synthLines(t, synth.Config{Seed: 17, Jobs: 3})
	broker := mq.NewBroker()
	q, err := broker.Subscribe("#")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		broker.Publish("stampede.event", append([]byte(nil), l...))
	}

	arch := archive.NewInMemory()
	defer arch.Close()
	l, err := New(arch, Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() {
		// Let the consumer drain everything, then end the stream.
		for q.Len() > 0 {
			time.Sleep(time.Millisecond)
		}
		broker.DeleteQueue(q.Name())
	}()
	if _, err := l.ConsumeQueue(ctx, q); err != nil && ctx.Err() == nil {
		t.Fatal(err)
	}

	id := trace.Sample(lines[0])
	checkPipelineTrace(t, id, []trace.Stage{
		trace.StageRoute, trace.StageParse, trace.StageValidate,
		trace.StageQueue, trace.StageApply, trace.StageCommit,
	})
}

// wfOfLine extracts the xwf.id attribute from a raw BP line.
func wfOfLine(t *testing.T, line []byte) string {
	t.Helper()
	for _, f := range bytes.Fields(line) {
		if v, ok := bytes.CutPrefix(f, []byte("xwf.id=")); ok {
			return string(v)
		}
	}
	t.Fatalf("no xwf.id in %q", line)
	return ""
}
