package loader

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/bp"
	"repro/internal/mq"
	"repro/internal/relstore"
	"repro/internal/schema"
	"repro/internal/uuid"
)

var t0 = time.Date(2012, 3, 13, 12, 35, 38, 0, time.UTC)

// workflowStream renders a small but complete workflow as BP text: one
// workflow, n jobs each with one instance and one invocation.
func workflowStream(wf string, n int) string {
	var buf bytes.Buffer
	w := bp.NewWriter(&buf)
	at := func(sec int) time.Time { return t0.Add(time.Duration(sec) * time.Second) }
	emit := func(e *bp.Event) { _ = w.Write(e) }
	mk := func(typ string, sec int) *bp.Event {
		return bp.New(typ, at(sec)).Set(schema.AttrXwfID, wf)
	}
	emit(mk(schema.WfPlan, 0).Set("submit.hostname", "desktop").Set(schema.AttrRootXwf, wf))
	emit(mk(schema.XwfStart, 0).SetInt("restart_count", 0))
	for i := 0; i < n; i++ {
		job := fmt.Sprintf("job%03d", i)
		emit(mk(schema.JobInfo, 0).Set(schema.AttrJobID, job).Set("type_desc", "compute").
			SetInt("clustered", 0).SetInt("max_retries", 0).Set(schema.AttrExecutable, "/bin/x").SetInt("task_count", 1))
		ji := func(typ string, sec int) *bp.Event {
			return mk(typ, sec).Set(schema.AttrJobID, job).SetInt(schema.AttrJobInstID, 1)
		}
		emit(ji(schema.SubmitStart, i+1))
		emit(ji(schema.MainStart, i+2))
		emit(ji(schema.InvEnd, i+3).SetInt(schema.AttrInvID, 1).
			Set(schema.AttrStartTime, at(i+2).Format(bp.TimeFormat)).
			SetFloat(schema.AttrDur, 1).SetInt(schema.AttrExitcode, 0).Set(schema.AttrTransform, "x"))
		emit(ji(schema.MainEnd, i+3).SetInt(schema.AttrStatus, 0).SetInt(schema.AttrExitcode, 0))
	}
	emit(mk(schema.XwfEnd, n+5).SetInt("restart_count", 0).SetInt(schema.AttrStatus, 0))
	_ = w.Flush()
	return buf.String()
}

func TestLoadReaderEndToEnd(t *testing.T) {
	a := archive.NewInMemory()
	l, err := New(a, Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	wf := uuid.New().String()
	stats, err := l.LoadReader(strings.NewReader(workflowStream(wf, 10)))
	if err != nil {
		t.Fatal(err)
	}
	wantEvents := uint64(3 + 10*5) // plan+start+end plus 5 per job
	if stats.Read != wantEvents || stats.Loaded != wantEvents {
		t.Fatalf("stats = %+v, want read=loaded=%d", stats, wantEvents)
	}
	if n, _ := a.Store().Count(archive.TJob); n != 10 {
		t.Errorf("jobs = %d", n)
	}
	if n, _ := a.Store().Count(archive.TInvocation); n != 10 {
		t.Errorf("invocations = %d", n)
	}
	if stats.Rate() <= 0 {
		t.Error("rate not computed")
	}
}

func TestLoadFileMatchesReader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.bp")
	wf := uuid.New().String()
	if err := os.WriteFile(path, []byte(workflowStream(wf, 3)), 0o644); err != nil {
		t.Fatal(err)
	}
	a := archive.NewInMemory()
	l, _ := New(a, Options{Validate: true})
	stats, err := l.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded == 0 {
		t.Fatal("nothing loaded from file")
	}
	if _, err := l.LoadFile(filepath.Join(dir, "missing.bp")); err == nil {
		t.Error("missing file load succeeded")
	}
}

func TestValidationRejectsStrict(t *testing.T) {
	a := archive.NewInMemory()
	l, _ := New(a, Options{Validate: true})
	// xwf.start without mandatory restart_count.
	line := "ts=2012-03-13T12:35:38.000000Z event=stampede.xwf.start xwf.id=" + uuid.New().String() + "\n"
	stats, err := l.LoadReader(strings.NewReader(line))
	if err == nil {
		t.Fatal("invalid event loaded in strict mode")
	}
	if stats.Invalid != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestLenientSkipsBadLinesAndEvents(t *testing.T) {
	a := archive.NewInMemory()
	l, _ := New(a, Options{Validate: true, Lenient: true, BatchSize: 2})
	wf := uuid.New().String()
	input := "this is not bp\n" +
		"ts=2012-03-13T12:35:38.000000Z event=stampede.xwf.start xwf.id=" + wf + "\n" + // invalid: no restart_count
		"ts=2012-03-13T12:35:38.000000Z event=not.a.stampede.event\n" + // unknown type -> schema invalid
		workflowStream(wf, 2)
	stats, err := l.LoadReader(strings.NewReader(input))
	if err != nil {
		t.Fatalf("lenient load failed: %v", err)
	}
	if stats.Malformed != 1 {
		t.Errorf("malformed = %d, want 1", stats.Malformed)
	}
	if stats.Invalid != 2 {
		t.Errorf("invalid = %d, want 2", stats.Invalid)
	}
	if n, _ := a.Store().Count(archive.TJob); n != 2 {
		t.Errorf("jobs = %d", n)
	}
}

func TestLenientWithoutValidationCountsUnknown(t *testing.T) {
	a := archive.NewInMemory()
	l, _ := New(a, Options{Validate: false, Lenient: true, BatchSize: 4})
	wf := uuid.New().String()
	input := "ts=2012-03-13T12:35:38.000000Z event=custom.engine.event xwf.id=" + wf + "\n" +
		workflowStream(wf, 1)
	stats, err := l.LoadReader(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Unknown != 1 {
		t.Errorf("unknown = %d, want 1; stats=%+v", stats.Unknown, stats)
	}
	if n, _ := a.Store().Count(archive.TInvocation); n != 1 {
		t.Errorf("invocations = %d", n)
	}
}

func TestBatchSizesProduceIdenticalArchives(t *testing.T) {
	wf := uuid.New().String()
	input := workflowStream(wf, 20)
	var counts []map[string]int
	for _, bs := range []int{1, 7, 512} {
		a := archive.NewInMemory()
		l, _ := New(a, Options{Validate: true, BatchSize: bs})
		if _, err := l.LoadReader(strings.NewReader(input)); err != nil {
			t.Fatalf("batch size %d: %v", bs, err)
		}
		m := map[string]int{}
		for _, table := range a.Store().TableNames() {
			m[table], _ = a.Store().Count(table)
		}
		counts = append(counts, m)
	}
	for i := 1; i < len(counts); i++ {
		for table, n := range counts[0] {
			if counts[i][table] != n {
				t.Errorf("table %s differs across batch sizes: %d vs %d", table, n, counts[i][table])
			}
		}
	}
}

func TestConsumeFromBus(t *testing.T) {
	// Full realtime pipeline: publisher -> broker -> loader -> archive.
	broker := mq.NewBroker()
	q, err := broker.DeclareQueue("stampede", mq.QueueOpts{Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := broker.Bind("stampede", "stampede.#"); err != nil {
		t.Fatal(err)
	}
	a := archive.NewInMemory()
	l, _ := New(a, Options{Validate: true, FlushEvery: 10 * time.Millisecond})

	wf := uuid.New().String()
	lines := strings.Split(strings.TrimSpace(workflowStream(wf, 5)), "\n")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, line := range lines {
			ev, err := bp.Parse(line)
			if err != nil {
				t.Errorf("parse: %v", err)
				return
			}
			broker.Publish(ev.Type, []byte(line))
		}
		// Give the flush ticker a chance, then close the stream.
		time.Sleep(50 * time.Millisecond)
		broker.DeleteQueue("stampede")
	}()

	stats, err := l.ConsumeQueue(context.Background(), q)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != uint64(len(lines)) {
		t.Fatalf("loaded %d, want %d", stats.Loaded, len(lines))
	}
	if n, _ := a.Store().Count(archive.TJob); n != 5 {
		t.Errorf("jobs = %d", n)
	}
}

func TestConsumeContextCancel(t *testing.T) {
	broker := mq.NewBroker()
	q, _ := broker.DeclareQueue("q", mq.QueueOpts{Durable: true})
	_ = broker.Bind("q", "#")
	a := archive.NewInMemory()
	l, _ := New(a, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := l.ConsumeQueue(ctx, q)
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("err = %v, want context canceled", err)
	}
}

func TestConsumeFlushTickerMakesDataVisible(t *testing.T) {
	broker := mq.NewBroker()
	q, _ := broker.DeclareQueue("q", mq.QueueOpts{Durable: true})
	_ = broker.Bind("q", "stampede.#")
	a := archive.NewInMemory()
	// Huge batch size: only the ticker can flush.
	l, _ := New(a, Options{BatchSize: 100000, FlushEvery: 10 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		_, _ = l.ConsumeQueue(ctx, q)
	}()
	wf := uuid.New().String()
	ev := bp.New(schema.XwfStart, t0).Set(schema.AttrXwfID, wf).SetInt("restart_count", 0)
	broker.Publish(ev.Type, []byte(ev.Format()))
	deadline := time.After(3 * time.Second)
	for {
		if n, _ := a.Store().Count(archive.TWorkflowState); n == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("ticker flush did not make event visible")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	<-loadDone
}

func TestLoaderTotalStatsAccumulate(t *testing.T) {
	a := archive.NewInMemory()
	l, _ := New(a, Options{Validate: true})
	for i := 0; i < 3; i++ {
		wf := uuid.New().String()
		if _, err := l.LoadReader(strings.NewReader(workflowStream(wf, 1))); err != nil {
			t.Fatal(err)
		}
	}
	total := l.TotalStats()
	if total.Loaded != 3*8 {
		t.Fatalf("total loaded = %d, want 24", total.Loaded)
	}
}

func TestOptionsValidation(t *testing.T) {
	a := archive.NewInMemory()
	if _, err := New(a, Options{BatchSize: -1}); err == nil {
		t.Error("negative batch size accepted")
	}
}

func TestRelstoreIntegrationPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.db")
	st, err := relstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := archive.New(st)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := New(a, Options{Validate: true})
	wf := uuid.New().String()
	if _, err := l.LoadReader(strings.NewReader(workflowStream(wf, 4))); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := archive.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n, _ := re.Store().Count(archive.TJob); n != 4 {
		t.Fatalf("persisted jobs = %d", n)
	}
}
