// Package archive implements the Stampede relational archive: the
// paper's Figure 3 schema (workflow, workflowstate, task, task_edge, job,
// job_edge, job_instance, jobstate, invocation, host) on top of the
// relstore embedded database, plus the logic that folds a stream of
// schema-valid BP events into those tables — the role the
// stampede_loader database module plays in the published system.
package archive

import "repro/internal/relstore"

// Table names, matching Figure 3.
const (
	TWorkflow      = "workflow"
	TWorkflowState = "workflowstate"
	TTask          = "task"
	TTaskEdge      = "task_edge"
	TJob           = "job"
	TJobEdge       = "job_edge"
	TJobInstance   = "job_instance"
	TJobState      = "jobstate"
	TInvocation    = "invocation"
	THost          = "host"
)

// Workflow states recorded in workflowstate.
const (
	WFStateStarted    = "WORKFLOW_STARTED"
	WFStateTerminated = "WORKFLOW_TERMINATED"
)

// Job states recorded in jobstate, in the vocabulary stampede_statistics
// and the analyzer use (SUBMIT, EXECUTE, JOB_SUCCESS, ...).
const (
	JSSubmit      = "SUBMIT"
	JSSubmitted   = "SUBMITTED"
	JSHeld        = "JOB_HELD"
	JSReleased    = "JOB_RELEASED"
	JSExecute     = "EXECUTE"
	JSTerminated  = "JOB_TERMINATED"
	JSMainError   = "MAIN_ERROR"
	JSSuccess     = "JOB_SUCCESS"
	JSFailure     = "JOB_FAILURE"
	JSAborted     = "JOB_ABORTED"
	JSPreStarted  = "PRE_SCRIPT_STARTED"
	JSPreSuccess  = "PRE_SCRIPT_SUCCESS"
	JSPreFailure  = "PRE_SCRIPT_FAILURE"
	JSPostStarted = "POST_SCRIPT_STARTED"
	JSPostSuccess = "POST_SCRIPT_SUCCESS"
	JSPostFailure = "POST_SCRIPT_FAILURE"
)

// Schemas returns every table definition of the Stampede archive, in
// dependency order (referenced tables first).
func Schemas() []relstore.TableSchema {
	return []relstore.TableSchema{
		{
			Name: TWorkflow,
			Columns: []relstore.Column{
				{Name: "wf_uuid", Type: relstore.Str},
				{Name: "dax_label", Type: relstore.Str, Nullable: true},
				{Name: "dax_version", Type: relstore.Str, Nullable: true},
				{Name: "dax_file", Type: relstore.Str, Nullable: true},
				{Name: "dag_file_name", Type: relstore.Str, Nullable: true},
				{Name: "timestamp", Type: relstore.Time},
				{Name: "submit_hostname", Type: relstore.Str, Nullable: true},
				{Name: "submit_dir", Type: relstore.Str, Nullable: true},
				{Name: "planner_arguments", Type: relstore.Str, Nullable: true},
				{Name: "user", Type: relstore.Str, Nullable: true},
				{Name: "planner_version", Type: relstore.Str, Nullable: true},
				{Name: "root_wf_uuid", Type: relstore.Str, Nullable: true},
				{Name: "parent_wf_id", Type: relstore.Int, Nullable: true},
			},
			Unique:      [][]string{{"wf_uuid"}},
			Indexes:     [][]string{{"parent_wf_id"}, {"root_wf_uuid"}},
			ForeignKeys: []relstore.ForeignKey{{Column: "parent_wf_id", RefTable: TWorkflow, RefColumn: "id"}},
		},
		{
			Name: TWorkflowState,
			Columns: []relstore.Column{
				{Name: "wf_id", Type: relstore.Int},
				{Name: "state", Type: relstore.Str},
				{Name: "timestamp", Type: relstore.Time},
				{Name: "restart_count", Type: relstore.Int},
				{Name: "status", Type: relstore.Int, Nullable: true},
			},
			Indexes:     [][]string{{"wf_id"}},
			ForeignKeys: []relstore.ForeignKey{{Column: "wf_id", RefTable: TWorkflow, RefColumn: "id"}},
		},
		{
			Name: THost,
			Columns: []relstore.Column{
				{Name: "site", Type: relstore.Str},
				{Name: "hostname", Type: relstore.Str},
				{Name: "ip", Type: relstore.Str},
				{Name: "uname", Type: relstore.Str, Nullable: true},
				{Name: "total_memory", Type: relstore.Int, Nullable: true},
			},
			Unique: [][]string{{"site", "hostname", "ip"}},
		},
		{
			Name: TTask,
			Columns: []relstore.Column{
				{Name: "wf_id", Type: relstore.Int},
				{Name: "abs_task_id", Type: relstore.Str},
				{Name: "type_desc", Type: relstore.Str, Nullable: true},
				{Name: "transformation", Type: relstore.Str, Nullable: true},
				{Name: "argv", Type: relstore.Str, Nullable: true},
				{Name: "job_id", Type: relstore.Int, Nullable: true}, // set by wf.map.task_job
			},
			Unique:  [][]string{{"wf_id", "abs_task_id"}},
			Indexes: [][]string{{"wf_id"}, {"job_id"}},
			ForeignKeys: []relstore.ForeignKey{
				{Column: "wf_id", RefTable: TWorkflow, RefColumn: "id"},
				{Column: "job_id", RefTable: TJob, RefColumn: "id"},
			},
		},
		{
			Name: TTaskEdge,
			Columns: []relstore.Column{
				{Name: "wf_id", Type: relstore.Int},
				{Name: "parent_abs_task_id", Type: relstore.Str},
				{Name: "child_abs_task_id", Type: relstore.Str},
			},
			Unique:      [][]string{{"wf_id", "parent_abs_task_id", "child_abs_task_id"}},
			Indexes:     [][]string{{"wf_id"}},
			ForeignKeys: []relstore.ForeignKey{{Column: "wf_id", RefTable: TWorkflow, RefColumn: "id"}},
		},
		{
			Name: TJob,
			Columns: []relstore.Column{
				{Name: "wf_id", Type: relstore.Int},
				{Name: "exec_job_id", Type: relstore.Str},
				{Name: "type_desc", Type: relstore.Str, Nullable: true},
				{Name: "clustered", Type: relstore.Bool, Nullable: true},
				{Name: "max_retries", Type: relstore.Int, Nullable: true},
				{Name: "executable", Type: relstore.Str, Nullable: true},
				{Name: "argv", Type: relstore.Str, Nullable: true},
				{Name: "task_count", Type: relstore.Int, Nullable: true},
			},
			Unique:      [][]string{{"wf_id", "exec_job_id"}},
			Indexes:     [][]string{{"wf_id"}},
			ForeignKeys: []relstore.ForeignKey{{Column: "wf_id", RefTable: TWorkflow, RefColumn: "id"}},
		},
		{
			Name: TJobEdge,
			Columns: []relstore.Column{
				{Name: "wf_id", Type: relstore.Int},
				{Name: "parent_exec_job_id", Type: relstore.Str},
				{Name: "child_exec_job_id", Type: relstore.Str},
			},
			Unique:      [][]string{{"wf_id", "parent_exec_job_id", "child_exec_job_id"}},
			Indexes:     [][]string{{"wf_id"}},
			ForeignKeys: []relstore.ForeignKey{{Column: "wf_id", RefTable: TWorkflow, RefColumn: "id"}},
		},
		{
			Name: TJobInstance,
			Columns: []relstore.Column{
				{Name: "job_id", Type: relstore.Int},
				{Name: "job_submit_seq", Type: relstore.Int},
				{Name: "host_id", Type: relstore.Int, Nullable: true},
				{Name: "site", Type: relstore.Str, Nullable: true},
				{Name: "user", Type: relstore.Str, Nullable: true},
				{Name: "subwf_uuid", Type: relstore.Str, Nullable: true},
				{Name: "stdout_file", Type: relstore.Str, Nullable: true},
				{Name: "stdout_text", Type: relstore.Str, Nullable: true},
				{Name: "stderr_file", Type: relstore.Str, Nullable: true},
				{Name: "stderr_text", Type: relstore.Str, Nullable: true},
				{Name: "multiplier_factor", Type: relstore.Int, Nullable: true},
				{Name: "exitcode", Type: relstore.Int, Nullable: true},
				{Name: "local_duration", Type: relstore.Float, Nullable: true},
			},
			Unique:  [][]string{{"job_id", "job_submit_seq"}},
			Indexes: [][]string{{"job_id"}, {"host_id"}},
			ForeignKeys: []relstore.ForeignKey{
				{Column: "job_id", RefTable: TJob, RefColumn: "id"},
				{Column: "host_id", RefTable: THost, RefColumn: "id"},
			},
		},
		{
			Name: TJobState,
			Columns: []relstore.Column{
				{Name: "job_instance_id", Type: relstore.Int},
				{Name: "state", Type: relstore.Str},
				{Name: "timestamp", Type: relstore.Time},
				{Name: "jobstate_submit_seq", Type: relstore.Int},
			},
			Indexes:     [][]string{{"job_instance_id"}},
			ForeignKeys: []relstore.ForeignKey{{Column: "job_instance_id", RefTable: TJobInstance, RefColumn: "id"}},
		},
		{
			Name: TInvocation,
			Columns: []relstore.Column{
				{Name: "job_instance_id", Type: relstore.Int},
				{Name: "wf_id", Type: relstore.Int},
				{Name: "task_submit_seq", Type: relstore.Int},
				{Name: "start_time", Type: relstore.Time, Nullable: true},
				{Name: "remote_duration", Type: relstore.Float, Nullable: true},
				{Name: "remote_cpu_time", Type: relstore.Float, Nullable: true},
				{Name: "exitcode", Type: relstore.Int, Nullable: true},
				{Name: "transformation", Type: relstore.Str, Nullable: true},
				{Name: "executable", Type: relstore.Str, Nullable: true},
				{Name: "argv", Type: relstore.Str, Nullable: true},
				{Name: "abs_task_id", Type: relstore.Str, Nullable: true},
			},
			Unique:  [][]string{{"job_instance_id", "task_submit_seq"}},
			Indexes: [][]string{{"wf_id"}, {"job_instance_id"}},
			ForeignKeys: []relstore.ForeignKey{
				{Column: "job_instance_id", RefTable: TJobInstance, RefColumn: "id"},
				{Column: "wf_id", RefTable: TWorkflow, RefColumn: "id"},
			},
		},
	}
}
